// PR7: rack-scale multi-tenancy. One open-loop multi-tenant traffic mix
// (db/graph/mr tenants, hundreds of sessions) swept across rack shapes,
// admission-control limits, and a per-shard crash schedule. Reports virtual
// makespan, per-tenant latency, and the Jain fairness indices; the shape
// claims locked here: a 1x1 rack is the legacy system, answers are
// bit-identical across admission schedules, and the journal keeps a chaos
// run loss-free on every shard.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "net/faults.h"
#include "rack/traffic.h"

using namespace teleport;  // NOLINT

namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig RackConfig(int compute_nodes, int memory_shards) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 64 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  cfg.compute_nodes = compute_nodes;
  cfg.memory_shards = memory_shards;
  return cfg;
}

rack::TrafficConfig Traffic(uint64_t seed) {
  rack::TrafficConfig cfg;
  cfg.tenants = 4;
  cfg.sessions = 400;
  cfg.ops_per_session = 128;
  cfg.slice_pages = 64;
  cfg.mean_interarrival_ns = 20 * kMicrosecond;
  cfg.seed = seed;
  return cfg;
}

struct RackRun {
  rack::TrafficResult r;
  Nanos wall_ns = 0;
  uint64_t remote_bytes = 0;
};

RackRun RunShape(int nodes, int shards, const rack::TrafficConfig& cfg,
                 bool chaos = false, uint64_t chaos_seed = 1) {
  // Size the address space to exactly the tenants' slices so they spread
  // over every shard of the shape (256 pages = 4 x 64-page slices).
  ddc::MemorySystem ms(RackConfig(nodes, shards), sim::CostParams::Default(),
                       /*space_bytes=*/cfg.tenants * cfg.slice_pages * kPage);
  tp::PushdownRuntime runtime(&ms);
  net::FaultInjector inj(/*seed=*/chaos_seed);
  if (chaos) {
    ms.set_journal_enabled(true);
    for (int s = 0; s < shards; ++s) {
      inj.ScheduleCrashRestart(
          (2 + 2 * static_cast<Nanos>(s)) * kMillisecond,
          /*down_for=*/300 * kMicrosecond, /*node=*/s);
    }
    ms.fabric().set_fault_injector(&inj);
  }
  bench::WallTimer wall;
  RackRun out;
  out.r = rack::RunOpenLoop(ms, runtime, cfg);
  out.wall_ns = wall.ElapsedNs();
  out.remote_bytes = out.r.scopes.MergedMetrics().RemoteMemoryBytes();
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "PR7: multi-tenant open-loop traffic across rack shapes",
      "rack-scale tenancy (DRackSim-style N x M topology)");

  bool ok = true;

  // --- Rack-shape sweep: same 4-tenant mix, growing the rack. ------------
  struct Shape {
    int nodes, shards;
  };
  const Shape shapes[] = {{1, 1}, {2, 1}, {2, 2}, {4, 4}};
  std::printf("%-6s %14s %12s %12s %10s %10s\n", "rack", "makespan",
              "p50 lat", "p99 lat", "fair(cmpl)", "fair(net)");
  for (const Shape& s : shapes) {
    const RackRun run = RunShape(s.nodes, s.shards, Traffic(/*seed=*/21));
    ok &= run.r.failed == 0 && run.r.completed == 400;
    const Histogram lat = run.r.scopes.MergedLatency();
    std::printf("%dx%-4d %12lldns %10.0fns %10.0fns %10.3f %10.3f\n",
                s.nodes, s.shards,
                static_cast<long long>(run.r.makespan_ns), lat.Percentile(50),
                lat.Percentile(99), run.r.completion_fairness,
                run.r.remote_bytes_fairness);
    const std::string shape_name =
        std::to_string(s.nodes) + "x" + std::to_string(s.shards);
    bench::EmitBenchRecord({"pr7_rack", "open_loop_4t", shape_name,
                            run.r.makespan_ns, run.wall_ns, run.remote_bytes,
                            ""});
  }

  // --- Admission control on the 2x2 rack: defers, never changes answers. -
  std::printf("\n%-12s %12s %10s %10s\n", "admission", "makespan", "deferred",
              "checksum");
  uint64_t open_checksum = 0;
  for (const int limit : {0, 8, 2}) {
    rack::TrafficConfig cfg = Traffic(/*seed=*/22);
    cfg.max_concurrent = limit;
    const RackRun run = RunShape(2, 2, cfg);
    if (limit == 0) open_checksum = run.r.checksum;
    ok &= run.r.checksum == open_checksum;
    std::printf("%-12s %10lldns %10llu %10s\n",
                limit == 0 ? "unlimited" : std::to_string(limit).c_str(),
                static_cast<long long>(run.r.makespan_ns),
                static_cast<unsigned long long>(run.r.deferred),
                run.r.checksum == open_checksum ? "match" : "MISMATCH");
    bench::EmitBenchRecord({"pr7_rack",
                            "admission_" + std::to_string(limit), "2x2",
                            run.r.makespan_ns, run.wall_ns, run.remote_bytes,
                            ""});
  }

  // --- Chaos leg: per-shard crash-restarts with the journal on. ----------
  std::printf("\n%-8s %12s %8s %8s %10s\n", "chaos", "makespan", "failed",
              "fenced", "checksum");
  uint64_t chaos_checksum = 0;
  for (int rep = 0; rep < 2; ++rep) {
    const RackRun run =
        RunShape(2, 2, Traffic(/*seed=*/23), /*chaos=*/true, /*seed=*/5);
    if (rep == 0) chaos_checksum = run.r.checksum;
    ok &= run.r.failed == 0 && run.r.checksum == chaos_checksum;
    std::printf("rep %-4d %10lldns %8llu %8llu %10s\n", rep,
                static_cast<long long>(run.r.makespan_ns),
                static_cast<unsigned long long>(run.r.failed),
                static_cast<unsigned long long>(run.r.scopes.MergedMetrics()
                                                    .fenced_rpcs),
                run.r.checksum == chaos_checksum ? "match" : "MISMATCH");
    bench::EmitBenchRecord({"pr7_rack", "chaos_rep" + std::to_string(rep),
                            "2x2", run.r.makespan_ns, run.wall_ns,
                            run.remote_bytes, ""});
  }

  std::printf("\nevery leg completed all 400 sessions; answers %s across\n"
              "admission schedules and chaos repetitions.\n",
              ok ? "bit-identical" : "DEVIATE");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
