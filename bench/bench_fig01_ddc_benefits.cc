// Figure 1a: the benefit of disaggregated memory pools. When local memory
// is a small fraction of the working set, spilling an in-memory query to
// remote memory (base DDC) beats spilling to a local NVMe SSD, and
// TELEPORT widens the gap. Paper: 9.3x (base DDC) and 39.5x (TELEPORT)
// query speedup over the SSD configuration (memory-intensive TPC-H
// queries, geometric mean).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
};

}  // namespace

int main() {
  bench::PrintBanner("Figure 1a: remote memory vs NVMe SSD under memory "
                     "pressure",
                     "SIGMOD'22 TELEPORT, Fig 1a");

  constexpr double kSf = 2.0;
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.02;  // local memory ~2% of the working set

  const Case cases[] = {
      {"Q9", "q9", &db::RunQ9},
      {"Q3", "q3", &db::RunQ3},
      {"Q6", "q6", &db::RunQ6},
  };

  std::printf("%-4s %12s %12s %12s %10s %10s\n", "qry", "SSD (ms)",
              "DDC (ms)", "TELE (ms)", "DDC/ssd", "TELE/ssd");
  double geo_ddc = 1.0, geo_tele = 1.0;
  bool ok = true;
  for (const Case& c : cases) {
    auto ssd = bench::MakeDb(ddc::Platform::kLinuxSsd, kSf, deploy);
    const db::QueryResult r_ssd = c.fn(*ssd.ctx, *ssd.database, {});
    auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    const db::QueryResult r_ddc = c.fn(*base.ctx, *base.database, {});
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    db::QueryOptions opts;
    opts.runtime = tele.runtime.get();
    opts.push_ops = db::DefaultTeleportOps(c.query);
    const db::QueryResult r_tele = c.fn(*tele.ctx, *tele.database, opts);

    ok = ok && r_ssd.checksum == r_ddc.checksum &&
         r_ssd.checksum == r_tele.checksum;
    const double ddc_speedup = static_cast<double>(r_ssd.total_ns) /
                               static_cast<double>(r_ddc.total_ns);
    const double tele_speedup = static_cast<double>(r_ssd.total_ns) /
                                static_cast<double>(r_tele.total_ns);
    geo_ddc *= ddc_speedup;
    geo_tele *= tele_speedup;
    std::printf("%-4s %12.1f %12.1f %12.1f %9.1fx %9.1fx\n", c.label,
                ToMillis(r_ssd.total_ns), ToMillis(r_ddc.total_ns),
                ToMillis(r_tele.total_ns), ddc_speedup, tele_speedup);
  }
  geo_ddc = std::pow(geo_ddc, 1.0 / 3.0);
  geo_tele = std::pow(geo_tele, 1.0 / 3.0);
  std::printf("\n");
  bench::PrintComparison("base DDC speedup over SSD (geomean)", 9.3, geo_ddc);
  bench::PrintComparison("TELEPORT speedup over SSD (geomean)", 39.5,
                         geo_tele);
  const bool shape = geo_ddc > 2.0 && geo_tele > geo_ddc * 1.5;
  std::printf("\nshape (DDC >> SSD, TELEPORT >> DDC): %s; checksums %s\n",
              shape ? "holds" : "DEVIATES", ok ? "match" : "MISMATCH");
  bench::PrintFooter();
  return shape && ok ? 0 : 1;
}
