// Figure 6: ablation of TELEPORT's data-synchronization approaches on the
// S4 microbenchmark (a compute-intensive thread + a memory-intensive
// thread over a large region). Paper: vs the base DDC, migrating the whole
// process gives 2.9x, pushing only the memory-intensive thread with eager
// eviction 3.8x, and the default on-demand coherence 11x.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

int main() {
  bench::PrintBanner("Figure 6: data-sync ablation on the two-thread "
                     "microbenchmark",
                     "SIGMOD'22 TELEPORT, Fig 6 (S4)");

  MicroConfig cfg;
  cfg.region_bytes = 256 << 20;  // the paper's 50 GB region, scaled
  cfg.cache_bytes = 16 << 20;    // the 1 GB cache, scaled ~the same ratio
  cfg.accesses = 40'000;
  cfg.write_fraction = 0.3;      // some probes write (hash-table updates)

  const struct {
    MicroScenario scenario;
    double paper_speedup;  // over base DDC (0 = baseline row)
  } rows[] = {
      {MicroScenario::kLocal, 0},
      {MicroScenario::kBaseDdc, 0},
      {MicroScenario::kPushFullProcess, 2.9},
      {MicroScenario::kPushPerThread, 3.8},
      {MicroScenario::kPushCoherence, 11.0},
  };

  Nanos base_time = 0;
  double speedups[3] = {0, 0, 0};
  int si = 0;
  std::printf("%-24s %12s %10s %10s\n", "configuration", "time (ms)",
              "speedup", "paper");
  for (const auto& row : rows) {
    const MicroResult r = RunMicro(cfg, row.scenario);
    if (row.scenario == MicroScenario::kBaseDdc) base_time = r.time_ns;
    double speedup = 0;
    if (base_time > 0 && row.paper_speedup > 0) {
      speedup = static_cast<double>(base_time) /
                static_cast<double>(r.time_ns);
      speedups[si++] = speedup;
    }
    std::printf("%-24s %12.1f %9.1fx %9.1fx\n",
                std::string(MicroScenarioToString(row.scenario)).c_str(),
                ToMillis(r.time_ns), speedup, row.paper_speedup);
  }

  // Shape: full-process < per-thread < on-demand coherence, all > 1.
  const bool shape = speedups[0] > 1.0 && speedups[1] > speedups[0] &&
                     speedups[2] > speedups[1];
  std::printf("\nshape (coherence > per-thread > full-process > baseline): "
              "%s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
