// Figure 10: per-operator / per-phase breakdown of the most expensive
// query in each system, local vs DDC, annotated with the remote-memory
// traffic each component generates. Paper: one or two components dominate
// in every system — projection & hash join in Q9, finalize & scatter in
// SSSP, map(-shuffle) in WordCount.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

void Row(const std::string& name, Nanos local, Nanos ddc,
         uint64_t remote_bytes) {
  std::printf("  %-22s %10.1f %10.1f %11.2f\n", name.c_str(), ToMillis(local),
              ToMillis(ddc), static_cast<double>(remote_bytes) / (1 << 20));
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 10: where the DDC time goes, per system",
                     "SIGMOD'22 TELEPORT, Fig 10");

  bool ok = true;

  // --- Q9 in the columnar DBMS ------------------------------------------
  {
    auto local = bench::MakeDb(ddc::Platform::kLocal, 2.0);
    bench::WallTimer wall;
    const db::QueryResult rl = db::RunQ9(*local.ctx, *local.database, {});
    const Nanos local_wall = wall.ElapsedNs();
    auto base = bench::MakeDb(ddc::Platform::kBaseDdc, 2.0);
    sim::Tracer tracer;
    base.ms->set_tracer(&tracer);
    wall.Reset();
    const db::QueryResult rd = db::RunQ9(*base.ctx, *base.database, {});
    const Nanos ddc_wall = wall.ElapsedNs();
    ok = ok && rl.checksum == rd.checksum;
    const std::string trace = bench::MaybeWriteTrace(tracer, "fig10_q9_ddc");
    bench::EmitBenchRecord(
        {"fig10", "Q9", "Local", rl.total_ns, local_wall, 0, ""});
    bench::EmitBenchRecord({"fig10", "Q9", "BaseDDC", rd.total_ns, ddc_wall,
                            base.ctx->metrics().RemoteMemoryBytes(), trace});
    std::printf("TPC-H Q9 (MonetDB-like)      local(ms)    DDC(ms) "
                "remote(MiB)\n");
    Nanos max_ddc = 0;
    std::string dominant;
    for (size_t i = 0; i < rd.ops.size(); ++i) {
      Row(rd.ops[i].name, rl.ops[i].time_ns, rd.ops[i].time_ns,
          rd.ops[i].remote_bytes);
      if (rd.ops[i].time_ns > max_ddc) {
        max_ddc = rd.ops[i].time_ns;
        dominant = rd.ops[i].name;
      }
    }
    std::printf("  dominant DDC operator: %s (paper: Projection & "
                "HashJoin)\n\n",
                dominant.c_str());
    ok = ok && (dominant.find("HashJoin") != std::string::npos ||
                dominant.find("Projection") != std::string::npos);
  }

  // --- SSSP in the GAS engine ---------------------------------------------
  {
    auto local = bench::MakeGraph(ddc::Platform::kLocal, 50'000, 12);
    bench::WallTimer wall;
    const graph::GasResult rl = RunSssp(*local.ctx, local.graph, {});
    const Nanos local_wall = wall.ElapsedNs();
    auto base = bench::MakeGraph(ddc::Platform::kBaseDdc, 50'000, 12);
    wall.Reset();
    const graph::GasResult rd = RunSssp(*base.ctx, base.graph, {});
    const Nanos ddc_wall = wall.ElapsedNs();
    ok = ok && rl.checksum == rd.checksum;
    bench::EmitBenchRecord(
        {"fig10", "SSSP", "Local", rl.total_ns, local_wall, 0, ""});
    bench::EmitBenchRecord({"fig10", "SSSP", "BaseDDC", rd.total_ns, ddc_wall,
                            base.ctx->metrics().RemoteMemoryBytes(), ""});
    std::printf("SSSP (PowerGraph-like)       local(ms)    DDC(ms) "
                "remote(MiB)\n");
    for (size_t i = 0; i < rd.phases.size(); ++i) {
      Row(std::string(PhaseToString(rd.phases[i].phase)),
          rl.phases[i].time_ns, rd.phases[i].time_ns,
          rd.phases[i].remote_bytes);
    }
    const Nanos scatter = rd.Profile(graph::Phase::kScatter).time_ns;
    const Nanos finalize = rd.Profile(graph::Phase::kFinalize).time_ns;
    const Nanos apply = rd.Profile(graph::Phase::kApply).time_ns;
    std::printf("  dominant DDC phases: finalize+scatter (paper: same)\n\n");
    ok = ok && scatter + finalize > apply;
  }

  // --- WordCount in the MapReduce engine -----------------------------------
  {
    auto local = bench::MakeMr(ddc::Platform::kLocal, 4 << 20);
    bench::WallTimer wall;
    const mr::MrResult rl = RunWordCount(*local.ctx, local.corpus, {});
    const Nanos local_wall = wall.ElapsedNs();
    auto base = bench::MakeMr(ddc::Platform::kBaseDdc, 4 << 20);
    wall.Reset();
    const mr::MrResult rd = RunWordCount(*base.ctx, base.corpus, {});
    const Nanos ddc_wall = wall.ElapsedNs();
    ok = ok && rl.checksum == rd.checksum;
    bench::EmitBenchRecord(
        {"fig10", "WC", "Local", rl.total_ns, local_wall, 0, ""});
    bench::EmitBenchRecord({"fig10", "WC", "BaseDDC", rd.total_ns, ddc_wall,
                            base.ctx->metrics().RemoteMemoryBytes(), ""});
    std::printf("WordCount (Phoenix-like)     local(ms)    DDC(ms) "
                "remote(MiB)\n");
    for (size_t i = 0; i < rd.phases.size(); ++i) {
      Row(std::string(MrPhaseToString(rd.phases[i].phase)),
          rl.phases[i].time_ns, rd.phases[i].time_ns,
          rd.phases[i].remote_bytes);
    }
    const Nanos shuffle = rd.Profile(mr::MrPhase::kMapShuffle).time_ns;
    const Nanos compute = rd.Profile(mr::MrPhase::kMapCompute).time_ns;
    const double frac = static_cast<double>(shuffle) /
                        static_cast<double>(shuffle + compute);
    std::printf("  map-shuffle share of map time in DDC: %.0f%% (paper: "
                "95%%)\n\n",
                frac * 100);
    ok = ok && frac > 0.5;
  }

  std::printf("shape (one or two data-intensive components dominate each\n"
              "system's DDC execution): %s\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
