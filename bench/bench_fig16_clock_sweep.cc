// Figure 16: pushdown performance under different memory-pool computation
// power. Q9 with the memory pool's CPU clock throttled from 0.4 GHz to
// 2.5 GHz (compute pool: 2.1 GHz). Paper: speedup over the base DDC grows
// from 17x at 0.4 GHz and levels off at 29x above 1.7 GHz — modest
// memory-pool CPUs suffice.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

int main() {
  bench::PrintBanner("Figure 16: memory-pool clock speed vs Q9 speedup",
                     "SIGMOD'22 TELEPORT, Fig 16");

  constexpr double kSf = 2.0;
  auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
  const db::QueryResult r_base = db::RunQ9(*base.ctx, *base.database, {});

  const double kComputeGhz = 2.1;
  const double clocks_ghz[] = {0.4, 0.8, 1.2, 1.7, 2.1, 2.5};
  std::printf("%-10s %14s %12s\n", "clock", "TELEPORT (ms)", "speedup");
  std::vector<double> speedups;
  bool ok = true;
  for (const double ghz : clocks_ghz) {
    bench::DeployOptions opts;
    opts.memory_pool_clock_ratio = ghz / kComputeGhz;
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, opts);
    db::QueryOptions qopts;
    qopts.runtime = tele.runtime.get();
    qopts.push_ops = db::DefaultTeleportOps("q9");
    const db::QueryResult r = db::RunQ9(*tele.ctx, *tele.database, qopts);
    ok = ok && r.checksum == r_base.checksum;
    const double speedup = static_cast<double>(r_base.total_ns) /
                           static_cast<double>(r.total_ns);
    speedups.push_back(speedup);
    std::printf("%7.1fGHz %14.1f %11.1fx\n", ghz, ToMillis(r.total_ns),
                speedup);
  }

  // Shape: monotone non-decreasing, still a clear win at the slowest
  // clock, and diminishing returns at the top (plateau).
  bool monotone = true;
  for (size_t i = 1; i < speedups.size(); ++i) {
    monotone = monotone && speedups[i] >= speedups[i - 1] * 0.98;
  }
  const double tail_gain = speedups.back() / speedups[speedups.size() - 3];
  const bool plateau = tail_gain < 1.25;
  std::printf("\n");
  bench::PrintComparison("speedup at lowest clock (0.4 GHz)", 17.0,
                         speedups.front());
  bench::PrintComparison("speedup at plateau", 29.0, speedups.back());
  std::printf("\nshape (win even at 0.4 GHz; rising then plateauing): %s; "
              "checksums %s\n",
              monotone && plateau && speedups.front() > 1.5 ? "holds"
                                                            : "DEVIATES",
              ok ? "match" : "MISMATCH");
  bench::PrintFooter();
  return monotone && plateau && speedups.front() > 1.5 && ok ? 0 : 1;
}
