// PR6: virtual-time cost of the redo journal under the chaos schedule.
// Each engine workload runs the same seeded fault sweep twice — journal
// off (today's lossy crash semantics) and journal on (appends, group
// commits, and replay charged on virtual clocks) — and reports the
// overhead plus what the journal bought: zero lost pool writes.

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "db/query.h"
#include "graph/engine.h"
#include "mr/engine.h"
#include "net/faults.h"

using namespace teleport;  // NOLINT

namespace {

struct Run {
  Nanos virtual_ns = 0;
  Nanos wall_ns = 0;
  int64_t checksum = 0;
  uint64_t lost = 0;
  uint64_t recovered = 0;
  uint64_t journal_appends = 0;
};

void ArmChaos(ddc::MemorySystem& ms, tp::PushdownRuntime& runtime,
              net::FaultInjector& inj) {
  net::FaultSpec spec;
  spec.drop_p = 0.15;
  spec.delay_p = 0.10;
  spec.delay_ns = 3 * kMicrosecond;
  spec.dup_p = 0.05;
  inj.SetSpecAll(spec);
  inj.ScheduleCrashRestart(/*at=*/150 * kMicrosecond,
                           /*down_for=*/50 * kMicrosecond);
  inj.ScheduleCrashRestart(/*at=*/5 * kMillisecond,
                           /*down_for=*/500 * kMicrosecond);
  inj.ScheduleCrashRestart(/*at=*/20 * kMillisecond,
                           /*down_for=*/1 * kMillisecond);
  ms.fabric().set_fault_injector(&inj);
  ms.set_retry_seed(0xdb0);
  runtime.set_retry_seed(0xdb1);
}

Run RunQ6(bool journal) {
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.05;
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, 0.3, deploy);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(/*seed=*/13);
  ArmChaos(*d.ms, *d.runtime, inj);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  bench::WallTimer wall;
  const db::QueryResult r = db::RunQ6(*d.ctx, *d.database, opts);
  Run out;
  out.virtual_ns = r.total_ns;
  out.wall_ns = wall.ElapsedNs();
  out.checksum = r.checksum;
  out.lost = d.ms->lost_pool_writes();
  out.recovered = d.ms->recovered_pool_writes();
  out.journal_appends = d.ctx->metrics().journal_appends;
  return out;
}

Run RunSssp(bool journal) {
  auto d = bench::MakeGraph(ddc::Platform::kBaseDdc, 2000, 6);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(/*seed=*/13);
  ArmChaos(*d.ms, *d.runtime, inj);
  graph::GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = graph::DefaultTeleportPhases();
  bench::WallTimer wall;
  const graph::GasResult r = graph::RunSssp(*d.ctx, d.graph, opts);
  Run out;
  out.virtual_ns = r.total_ns;
  out.wall_ns = wall.ElapsedNs();
  out.checksum = r.checksum;
  out.lost = d.ms->lost_pool_writes();
  out.recovered = d.ms->recovered_pool_writes();
  out.journal_appends = d.ctx->metrics().journal_appends;
  return out;
}

Run RunWc(bool journal) {
  auto d = bench::MakeMr(ddc::Platform::kBaseDdc, 256 << 10);
  d.ms->set_journal_enabled(journal);
  net::FaultInjector inj(/*seed=*/13);
  ArmChaos(*d.ms, *d.runtime, inj);
  mr::MrOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = mr::DefaultTeleportPhases();
  bench::WallTimer wall;
  const mr::MrResult r = mr::RunWordCount(*d.ctx, d.corpus, opts);
  Run out;
  out.virtual_ns = r.total_ns;
  out.wall_ns = wall.ElapsedNs();
  out.checksum = r.checksum;
  out.lost = d.ms->lost_pool_writes();
  out.recovered = d.ms->recovered_pool_writes();
  out.journal_appends = d.ctx->metrics().journal_appends;
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "PR6: redo-journal overhead under the chaos schedule",
      "crash-restart hardening; journal off = pre-PR6 lossy semantics");

  struct Row {
    const char* name;
    Run (*run)(bool);
  };
  const Row rows[] = {{"q6", &RunQ6}, {"sssp", &RunSssp}, {"wc", &RunWc}};

  std::printf("%-6s %16s %16s %10s %10s %10s  %s\n", "wkld", "journal off",
              "journal on", "overhead", "lost off", "lost on", "results");
  bool ok = true;
  for (const Row& row : rows) {
    const Run off = row.run(/*journal=*/false);
    const Run on = row.run(/*journal=*/true);
    const double overhead = static_cast<double>(on.virtual_ns) /
                                static_cast<double>(off.virtual_ns) -
                            1.0;
    const bool match = on.checksum == off.checksum;
    // The whole point: the journal trades a small virtual-time overhead
    // for zero lost pool writes under the same crash schedule.
    ok &= match && on.lost == 0;
    std::printf("%-6s %14lldns %14lldns %9.2f%% %10llu %10llu  %s\n",
                row.name, static_cast<long long>(off.virtual_ns),
                static_cast<long long>(on.virtual_ns), overhead * 100.0,
                static_cast<unsigned long long>(off.lost),
                static_cast<unsigned long long>(on.lost),
                match ? "match" : "MISMATCH");
    bench::EmitBenchRecord({"pr6_journal", std::string(row.name) + "_journal_off",
                            "BaseDDC", off.virtual_ns, off.wall_ns, 0, ""});
    bench::EmitBenchRecord({"pr6_journal", std::string(row.name) + "_journal_on",
                            "BaseDDC", on.virtual_ns, on.wall_ns, 0, ""});
  }
  std::printf("\njournal on: every acknowledged pool write survives the\n"
              "crash-restarts; answers %s.\n",
              ok ? "bit-identical, zero losses" : "DEVIATE");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
