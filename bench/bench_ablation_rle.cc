// Ablation: run-length encoding of the resident-page list. §6 reports that
// RLE shrinks the list ~20x, small enough to ride in a single RDMA message
// with the pushdown request. This bench sweeps the cache size (and hence
// the resident-set size) and compares raw vs encoded message bytes, plus
// the measured compression of real pushdown calls issued after a scan
// workload.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/rle.h"

using namespace teleport;  // NOLINT

int main() {
  bench::PrintBanner("Ablation: resident-page-list compression (S6)",
                     "SIGMOD'22 TELEPORT, S6 (20x message-size reduction)");

  std::printf("%-14s %12s %12s %12s %12s\n", "cache", "resident", "raw (B)",
              "RLE (B)", "ratio");
  bool ok = true;
  for (const uint64_t cache_kib : {256, 1024, 4096, 16384}) {
    ddc::DdcConfig dc;
    dc.platform = ddc::Platform::kBaseDdc;
    dc.compute_cache_bytes = cache_kib << 10;
    dc.memory_pool_bytes = 512 << 20;
    ddc::MemorySystem ms(dc, sim::CostParams::Default(), 256 << 20);
    const ddc::VAddr data = ms.space().Alloc(64 << 20, "data");
    ms.SeedData();

    // A scan warms the cache with a mostly contiguous resident set, the
    // situation a pushdown call encounters in a DBMS (§5.1).
    auto ctx = ms.CreateContext(ddc::Pool::kCompute);
    const uint64_t page = ms.params().page_size;
    for (uint64_t off = 0; off < (cache_kib << 10); off += page) {
      (void)ctx->Load<int64_t>(data + off);
    }
    // Plus a sprinkle of random pages (index probes) that fragment it.
    for (int i = 0; i < 32; ++i) {
      ctx->Store<int64_t>(data + (i * 1237u % 16384) * page, 1);
    }

    const auto resident = ms.ResidentPages();
    const auto runs = RleEncode(resident);
    const uint64_t raw = RawSizeBytes(resident.size());
    const uint64_t rle = RleSizeBytes(runs);
    const double ratio = static_cast<double>(raw) / static_cast<double>(rle);
    std::printf("%10llu KiB %12zu %12llu %12llu %11.1fx\n",
                static_cast<unsigned long long>(cache_kib), resident.size(),
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(rle), ratio);
    // The encoded list must fit comfortably in one RDMA message (the raw
    // list would not at realistic cache sizes), and compression must reach
    // the paper's ~20x once the resident set is large enough for runs to
    // dominate the fragmentation.
    ok = ok && rle < 8192;
    if (resident.size() >= 512) ok = ok && ratio > 15.0;

    // And the runtime reports the same compression on a live call.
    tp::PushdownRuntime runtime(&ms);
    const Status st = runtime.Call(*ctx, [&](ddc::ExecutionContext& mc) {
      (void)mc.Load<int64_t>(data);
      return Status::OK();
    });
    TELEPORT_CHECK(st.ok());
    if (resident.size() >= 512) {
      ok = ok && runtime.last_page_list_compression() > 5.0;
    }
  }
  std::printf("\npaper: ~20x reduction makes the list fit one message; "
              "measured: %s\n",
              ok ? "holds (>=20x at realistic cache sizes, always <8 KiB)"
                 : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
