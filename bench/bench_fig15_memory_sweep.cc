// Figure 15: the benefit of growing physical memory for a workload larger
// than any single machine. Q9 at scale factor 200 (scaled down here), with
// total memory swept from far-below to above the working set. Paper: all
// platforms struggle at 1 GB; Linux improves until its chassis limit
// (128 GB); the base DDC's disaggregation cost dominates from 64 GB; and
// TELEPORT tracks Linux until the limit, ending 2.3x better than the best
// Linux point and 31.7x better than LegoOS at equal memory.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

int main() {
  bench::PrintBanner("Figure 15: performance vs provisioned memory (Q9)",
                     "SIGMOD'22 TELEPORT, Fig 15");

  // "SF 200" scaled: working set ~40 MiB; sweep memory 1/32 .. 2x of it.
  constexpr double kSf = 4.0;
  db::TpchConfig probe_cfg;
  probe_cfg.scale_factor = kSf;
  const uint64_t ws = db::EstimateTpchBytes(probe_cfg) * 3;  // + temporaries

  const double fractions[] = {1.0 / 32, 1.0 / 8, 1.0 / 2, 2.0};
  std::printf("%-12s %14s %14s %14s\n", "memory", "Linux (ms)", "DDC (ms)",
              "TELEPORT (ms)");
  std::vector<Nanos> linux_times, ddc_times, tele_times;
  for (const double f : fractions) {
    const uint64_t mem = static_cast<uint64_t>(
        f * static_cast<double>(ws));

    // Linux: local DRAM of this size, spilling to SSD.
    bench::DeployOptions ssd_opts;
    ssd_opts.cache_fraction = 1.0;  // overridden below via pool override
    auto ssd = bench::MakeDb(ddc::Platform::kLinuxSsd, kSf,
                             [&] {
                               bench::DeployOptions o;
                               o.cache_fraction =
                                   f;  // local DRAM = swept size
                               return o;
                             }());
    const db::QueryResult r_ssd = db::RunQ9(*ssd.ctx, *ssd.database, {});

    // DDC platforms: fixed small compute cache (2%), pool = swept size.
    bench::DeployOptions ddc_opts;
    ddc_opts.cache_fraction = 0.02;
    ddc_opts.pool_bytes_override = mem;
    auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, ddc_opts);
    const db::QueryResult r_ddc = db::RunQ9(*base.ctx, *base.database, {});
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, ddc_opts);
    db::QueryOptions topts;
    topts.runtime = tele.runtime.get();
    topts.push_ops = db::DefaultTeleportOps("q9");
    const db::QueryResult r_tele = db::RunQ9(*tele.ctx, *tele.database, topts);

    linux_times.push_back(r_ssd.total_ns);
    ddc_times.push_back(r_ddc.total_ns);
    tele_times.push_back(r_tele.total_ns);
    std::printf("%9.0f%%WS %14.1f %14.1f %14.1f\n", f * 100,
                ToMillis(r_ssd.total_ns), ToMillis(r_ddc.total_ns),
                ToMillis(r_tele.total_ns));
  }

  // Shape checks: (a) every platform improves with memory; (b) at ample
  // memory TELEPORT beats the base DDC decisively; (c) the base DDC's
  // residual disaggregation cost exceeds TELEPORT's.
  const size_t last = tele_times.size() - 1;
  const bool improves = linux_times[0] > linux_times[last] &&
                        ddc_times[0] > ddc_times[last] &&
                        tele_times[0] > tele_times[last];
  const double final_gap = static_cast<double>(ddc_times[last]) /
                           static_cast<double>(tele_times[last]);
  std::printf("\n");
  bench::PrintComparison("TELEPORT over LegoOS at full memory", 31.7,
                         final_gap);
  std::printf("\nshape (all improve with memory; TELEPORT decisively beats "
              "base DDC\nonce memory suffices): %s\n",
              improves && final_gap > 2.0 ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return improves && final_gap > 2.0 ? 0 : 1;
}
