// PR9: the contended fabric data plane. Two legs:
//
//  1. Microflow load-latency sweep — two compute nodes firing small
//     coherence probes into one shard at a swept offered load. The shared
//     shard controller (10 B/ns) saturates before either 7 B/ns link, so
//     the queued backend shows the classic knee (p99 diverging from p50 as
//     utilization approaches 1) while kIdeal stays perfectly flat. The
//     SmartNIC backend executes the probes NIC-side, skipping the
//     controller, which moves its knee out to per-link saturation — the
//     paper's case for near-data handling of small messages.
//
//  2. Rack-scale open-loop sweep — the PR7 multi-tenant traffic mix on a
//     2x2 rack across interarrival rates and all three backends, with a
//     bit-identical-repeat determinism gate per backend.
//
// Rows land in BENCH_PR9.json via TELEPORT_BENCH_JSON; percentile rows use
// the virtual_ns column for the percentile itself (workload suffix _p50 /
// _p99 says which).

#include <cstdint>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "net/fabric.h"
#include "rack/traffic.h"

using namespace teleport;  // NOLINT

namespace {

constexpr uint64_t kPage = 4096;

struct LoadPoint {
  double p50 = 0;
  double p99 = 0;
};

/// Two senders (links {0,0} and {1,0}) each posting one `bytes`-byte
/// coherence probe every `interarrival_ns`, offset half a period so the
/// controller sees an interleaved stream. Returns the sojourn (delivery -
/// send) percentiles over every probe.
LoadPoint MicroSweepPoint(net::Backend backend, Nanos interarrival_ns,
                          uint64_t bytes, int sends_per_node) {
  net::Fabric fabric(sim::CostParams::Default(), /*compute_nodes=*/2,
                     /*memory_nodes=*/1);
  fabric.set_backend(backend);
  Histogram sojourn;
  for (int i = 0; i < sends_per_node; ++i) {
    for (int src = 0; src < 2; ++src) {
      const Nanos now = static_cast<Nanos>(i) * interarrival_ns +
                        (src == 0 ? 0 : interarrival_ns / 2);
      const Nanos delivery = fabric.SendToMemory(
          net::Link{src, 0}, now, bytes, net::MessageKind::kCoherenceRequest);
      sojourn.Add(delivery - now);
    }
  }
  return {sojourn.Percentile(50), sojourn.Percentile(99)};
}

ddc::DdcConfig RackConfig() {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 64 * kPage;
  cfg.memory_pool_bytes = 1024 * kPage;
  cfg.compute_nodes = 2;
  cfg.memory_shards = 2;
  return cfg;
}

struct RackRun {
  rack::TrafficResult r;
  Nanos wall_ns = 0;
  uint64_t remote_bytes = 0;
};

RackRun RunRack(net::Backend backend, Nanos interarrival_ns) {
  rack::TrafficConfig cfg;
  cfg.tenants = 4;
  cfg.sessions = 300;
  cfg.ops_per_session = 128;
  cfg.slice_pages = 64;
  cfg.mean_interarrival_ns = interarrival_ns;
  cfg.seed = 29;
  ddc::MemorySystem ms(RackConfig(), sim::CostParams::Default(),
                       /*space_bytes=*/cfg.tenants * cfg.slice_pages * kPage);
  ms.fabric().set_backend(backend);
  tp::PushdownRuntime runtime(&ms);
  bench::WallTimer wall;
  RackRun out;
  out.r = rack::RunOpenLoop(ms, runtime, cfg);
  out.wall_ns = wall.ElapsedNs();
  out.remote_bytes = out.r.scopes.MergedMetrics().RemoteMemoryBytes();
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner("PR9: contended fabric load-latency sweeps",
                     "queued RDMA + SmartNIC backends vs the ideal model");

  bool ok = true;
  const net::Backend backends[] = {net::Backend::kIdeal,
                                   net::Backend::kQueuedRdma,
                                   net::Backend::kSmartNic};

  // --- Leg 1: microflow knee. 192 B probes, controller-bound topology. ---
  // Aggregate controller load is 2*192/(10*T); per-link load 192/(7*T):
  // the controller saturates near T=38 ns, each link near T=27 ns.
  const Nanos interarrivals[] = {160, 80, 48, 40, 36, 32, 24};
  constexpr uint64_t kProbeBytes = 192;
  constexpr int kSends = 4000;

  std::printf("%-8s", "iat(ns)");
  for (const net::Backend b : backends) {
    std::printf(" %10s-p50 %10s-p99", net::BackendToString(b).data(),
                net::BackendToString(b).data());
  }
  std::printf("\n");
  LoadPoint ideal_last, queued_at32, smart_at32, smart_at24, queued_low,
      smart_low;
  for (const Nanos iat : interarrivals) {
    std::printf("%-8lld", static_cast<long long>(iat));
    for (const net::Backend b : backends) {
      bench::WallTimer wall;
      const LoadPoint pt = MicroSweepPoint(b, iat, kProbeBytes, kSends);
      const Nanos wall_ns = wall.ElapsedNs();
      std::printf(" %14.0f %14.0f", pt.p50, pt.p99);
      const std::string name = net::BackendToString(b).data();
      const std::string load = "micro_iat" + std::to_string(iat);
      bench::EmitBenchRecord({"pr9_fabric", load + "_p50", name,
                              static_cast<Nanos>(pt.p50), wall_ns, 0, ""});
      bench::EmitBenchRecord({"pr9_fabric", load + "_p99", name,
                              static_cast<Nanos>(pt.p99), wall_ns, 0, ""});
      if (b == net::Backend::kIdeal) ideal_last = pt;
      if (iat == 32 && b == net::Backend::kQueuedRdma) queued_at32 = pt;
      if (iat == 32 && b == net::Backend::kSmartNic) smart_at32 = pt;
      if (iat == 24 && b == net::Backend::kSmartNic) smart_at24 = pt;
      if (iat == 160 && b == net::Backend::kQueuedRdma) queued_low = pt;
      if (iat == 160 && b == net::Backend::kSmartNic) smart_low = pt;
    }
    std::printf("\n");
  }
  // No knee without contention: the ideal model is load-independent and
  // tail-free at every point of the sweep.
  bool micro_ok = ideal_last.p50 == ideal_last.p99;
  // The queued backend knees once the shared controller is oversubscribed
  // (iat 32 ns ~ 1.2x controller capacity, links still at 0.86): p99 blows
  // up relative to the uncontended floor AND pulls away from its own p50.
  micro_ok &= queued_at32.p99 > 10 * queued_low.p99;
  micro_ok &= queued_at32.p99 > 1.5 * queued_at32.p50;
  // SmartNIC offload skips the controller for these probes, so the same
  // offered load stays flat — and the knee reappears only past per-link
  // saturation (iat 24 ns ~ 1.14x link capacity): shifted, not removed.
  micro_ok &= smart_at32.p99 < 1.5 * smart_low.p99;
  micro_ok &= smart_at24.p99 > 4 * smart_low.p99;
  ok &= micro_ok;
  std::printf("\nknee: queued p99 %.0fns at iat=32 (%.1fx its p50); "
              "smartnic %.0fns there, kneeing at iat=24 (%.0fns) — %s.\n",
              queued_at32.p99, queued_at32.p99 / queued_at32.p50,
              smart_at32.p99, smart_at24.p99,
              micro_ok ? "as modeled" : "GATE FAILED");

  // --- Leg 2: rack-scale open loop across backends and rates. ------------
  std::printf("\n%-10s %-12s %14s %12s %12s\n", "backend", "iat", "makespan",
              "p50", "p99");
  bool rack_ok = true;
  for (const net::Backend b : backends) {
    for (const Nanos iat : {40 * kMicrosecond, 10 * kMicrosecond,
                            2 * kMicrosecond}) {
      const RackRun run = RunRack(b, iat);
      rack_ok &= run.r.completed == 300 && run.r.failed == 0;
      std::printf("%-10s %-12lld %12lldns %10.0fns %10.0fns\n",
                  net::BackendToString(b).data(),
                  static_cast<long long>(iat),
                  static_cast<long long>(run.r.makespan_ns),
                  run.r.p50_latency_ns, run.r.p99_latency_ns);
      const std::string load =
          "openloop_iat" + std::to_string(iat / kMicrosecond) + "us";
      bench::EmitBenchRecord({"pr9_fabric", load,
                              net::BackendToString(b).data(),
                              run.r.makespan_ns, run.wall_ns,
                              run.remote_bytes, ""});
      // Determinism gate: the full rack run replays bit-identically under
      // every backend (chaos soak covers the injector paths).
      if (iat == 2 * kMicrosecond) {
        const RackRun rep = RunRack(b, iat);
        rack_ok &= rep.r.checksum == run.r.checksum &&
                   rep.r.makespan_ns == run.r.makespan_ns;
      }
    }
  }
  ok &= rack_ok;

  std::printf("\nmicro knee gates %s; rack runs complete and replay %s per "
              "backend.\n", micro_ok ? "pass" : "FAIL",
              rack_ok ? "bit-identically" : "NON-DETERMINISTICALLY");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
