// Figure 13: applying TELEPORT across the whole workload suite. Execution
// time normalized to local execution; the annotation is TELEPORT's speedup
// over the base DDC. Paper speedups: Q9 29.1x, Q3 3.2x, Q6 3.8x, SSSP 3x,
// RE 2.8x, CC 2x, WC 2.5x, Grep 4.7x.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/tenant_scopes.h"

using namespace teleport;  // NOLINT
using bench::SuiteConfig;
using bench::WorkloadTimes;

namespace {

/// PR7 per-tenant leg: three tenants run the same workload back to back on
/// ONE shared deployment (same memory system, cache, and pool), each scoped
/// into its own sim::TenantScopes slot. Returns the Jain index over the
/// tenants' virtual times; answers must agree across tenants.
struct TenantLeg {
  Nanos tenant_ns[3] = {0, 0, 0};
  double fairness = 1.0;
  bool checksums_match = true;
};

TenantLeg RunQ6Tenants() {
  bench::DeployOptions deploy;
  deploy.space_headroom = 4.0;  // three runs' worth of scratch buffers
  auto d = bench::MakeDb(ddc::Platform::kBaseDdc, 0.3, deploy);
  sim::TenantScopes scopes(3);
  db::QueryOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_ops = db::DefaultTeleportOps("q6");
  opts.scopes = &scopes;
  TenantLeg leg;
  int64_t checksum = 0;
  for (int t = 0; t < 3; ++t) {
    auto ctx = d.ms->CreateContext(ddc::Pool::kCompute, 0, t);
    const db::QueryResult r = db::RunQ6(*ctx, *d.database, opts);
    leg.tenant_ns[t] = r.total_ns;
    if (t == 0) checksum = r.checksum;
    leg.checksums_match &= r.checksum == checksum;
  }
  leg.fairness = sim::TenantScopes::JainIndex(
      {static_cast<double>(leg.tenant_ns[0]),
       static_cast<double>(leg.tenant_ns[1]),
       static_cast<double>(leg.tenant_ns[2])});
  return leg;
}

TenantLeg RunSsspTenants() {
  bench::DeployOptions deploy;
  deploy.space_headroom = 4.0;
  auto d = bench::MakeGraph(ddc::Platform::kBaseDdc, 2000, 6, deploy);
  sim::TenantScopes scopes(3);
  graph::GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = graph::DefaultTeleportPhases();
  opts.scopes = &scopes;
  TenantLeg leg;
  int64_t checksum = 0;
  for (int t = 0; t < 3; ++t) {
    auto ctx = d.ms->CreateContext(ddc::Pool::kCompute, 0, t);
    const graph::GasResult r = graph::RunSssp(*ctx, d.graph, opts);
    leg.tenant_ns[t] = r.total_ns;
    if (t == 0) checksum = r.checksum;
    leg.checksums_match &= r.checksum == checksum;
  }
  leg.fairness = sim::TenantScopes::JainIndex(
      {static_cast<double>(leg.tenant_ns[0]),
       static_cast<double>(leg.tenant_ns[1]),
       static_cast<double>(leg.tenant_ns[2])});
  return leg;
}

TenantLeg RunWcTenants() {
  bench::DeployOptions deploy;
  deploy.space_headroom = 4.0;
  auto d = bench::MakeMr(ddc::Platform::kBaseDdc, 256 << 10, deploy);
  sim::TenantScopes scopes(3);
  mr::MrOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = mr::DefaultTeleportPhases();
  opts.scopes = &scopes;
  TenantLeg leg;
  int64_t checksum = 0;
  for (int t = 0; t < 3; ++t) {
    auto ctx = d.ms->CreateContext(ddc::Pool::kCompute, 0, t);
    const mr::MrResult r = mr::RunWordCount(*ctx, d.corpus, opts);
    leg.tenant_ns[t] = r.total_ns;
    if (t == 0) checksum = r.checksum;
    leg.checksums_match &= r.checksum == checksum;
  }
  leg.fairness = sim::TenantScopes::JainIndex(
      {static_cast<double>(leg.tenant_ns[0]),
       static_cast<double>(leg.tenant_ns[1]),
       static_cast<double>(leg.tenant_ns[2])});
  return leg;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "Figure 13: TELEPORT across DBMS / graph / MapReduce workloads",
      "SIGMOD'22 TELEPORT, Fig 13");

  SuiteConfig cfg;
  const std::vector<WorkloadTimes> rows = bench::RunSuite(cfg);
  const double paper_speedup[] = {29.1, 3.2, 3.8, 3.0, 2.8, 2.0, 2.5, 4.7};

  std::printf("%-6s %14s %14s %14s %12s %8s  %s\n", "query", "DDC/local",
              "TELEPORT/local", "speedup", "paper", "win?", "results");
  int i = 0;
  bool ok = true;
  for (const WorkloadTimes& w : rows) {
    const double ddc_norm = static_cast<double>(w.ddc_ns) /
                            static_cast<double>(w.local_ns);
    const double tele_norm = static_cast<double>(w.teleport_ns) /
                             static_cast<double>(w.local_ns);
    const double speedup = static_cast<double>(w.ddc_ns) /
                           static_cast<double>(w.teleport_ns);
    const bool win = speedup > 1.2;
    ok &= win && w.checksums_match;
    std::printf("%-6s %13.1fx %13.1fx %13.1fx %11.1fx %8s  %s\n",
                w.name.c_str(), ddc_norm, tele_norm, speedup,
                paper_speedup[i], win ? "yes" : "NO",
                w.checksums_match ? "match" : "MISMATCH");
    ++i;
    bench::EmitBenchRecord(
        {"fig13", w.name, "Local", w.local_ns, w.local_wall_ns, 0, ""});
    bench::EmitBenchRecord({"fig13", w.name, "BaseDDC", w.ddc_ns,
                            w.ddc_wall_ns, w.ddc_remote_bytes, ""});
    bench::EmitBenchRecord({"fig13", w.name, "TELEPORT", w.teleport_ns,
                            w.teleport_wall_ns, w.teleport_remote_bytes, ""});
  }
  // --- PR7 per-tenant leg: one workload per engine, three tenants each on
  // a shared deployment. The tenants contend for the deployment's single
  // pool workqueue, so later tenants queue behind earlier ones — the Jain
  // index over virtual times quantifies the resulting unfairness (answers
  // still agree tenant-to-tenant).
  struct TenantRow {
    const char* name;
    TenantLeg (*run)();
  };
  const TenantRow tenant_rows[] = {{"q6", &RunQ6Tenants},
                                   {"sssp", &RunSsspTenants},
                                   {"wc", &RunWcTenants}};
  std::printf("\nper-tenant leg (3 tenants, shared TELEPORT deployment):\n");
  std::printf("%-6s %12s %12s %12s %10s  %s\n", "wkld", "tenant0",
              "tenant1", "tenant2", "fairness", "results");
  for (const TenantRow& row : tenant_rows) {
    const TenantLeg leg = row.run();
    ok &= leg.checksums_match;
    std::printf("%-6s %10lldns %10lldns %10lldns %10.3f  %s\n", row.name,
                static_cast<long long>(leg.tenant_ns[0]),
                static_cast<long long>(leg.tenant_ns[1]),
                static_cast<long long>(leg.tenant_ns[2]), leg.fairness,
                leg.checksums_match ? "match" : "MISMATCH");
    for (int t = 0; t < 3; ++t) {
      bench::EmitBenchRecord(
          {"fig13", std::string(row.name) + "_tenant" + std::to_string(t),
           "TELEPORT", leg.tenant_ns[t], 0, 0, ""});
    }
  }

  std::printf("\npaper: TELEPORT wins on every workload, up to an order of\n"
              "magnitude; measured shape %s.\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
