// Figure 13: applying TELEPORT across the whole workload suite. Execution
// time normalized to local execution; the annotation is TELEPORT's speedup
// over the base DDC. Paper speedups: Q9 29.1x, Q3 3.2x, Q6 3.8x, SSSP 3x,
// RE 2.8x, CC 2x, WC 2.5x, Grep 4.7x.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT
using bench::SuiteConfig;
using bench::WorkloadTimes;

int main() {
  bench::PrintBanner(
      "Figure 13: TELEPORT across DBMS / graph / MapReduce workloads",
      "SIGMOD'22 TELEPORT, Fig 13");

  SuiteConfig cfg;
  const std::vector<WorkloadTimes> rows = bench::RunSuite(cfg);
  const double paper_speedup[] = {29.1, 3.2, 3.8, 3.0, 2.8, 2.0, 2.5, 4.7};

  std::printf("%-6s %14s %14s %14s %12s %8s  %s\n", "query", "DDC/local",
              "TELEPORT/local", "speedup", "paper", "win?", "results");
  int i = 0;
  bool ok = true;
  for (const WorkloadTimes& w : rows) {
    const double ddc_norm = static_cast<double>(w.ddc_ns) /
                            static_cast<double>(w.local_ns);
    const double tele_norm = static_cast<double>(w.teleport_ns) /
                             static_cast<double>(w.local_ns);
    const double speedup = static_cast<double>(w.ddc_ns) /
                           static_cast<double>(w.teleport_ns);
    const bool win = speedup > 1.2;
    ok &= win && w.checksums_match;
    std::printf("%-6s %13.1fx %13.1fx %13.1fx %11.1fx %8s  %s\n",
                w.name.c_str(), ddc_norm, tele_norm, speedup,
                paper_speedup[i], win ? "yes" : "NO",
                w.checksums_match ? "match" : "MISMATCH");
    ++i;
    bench::EmitBenchRecord(
        {"fig13", w.name, "Local", w.local_ns, w.local_wall_ns, 0, ""});
    bench::EmitBenchRecord({"fig13", w.name, "BaseDDC", w.ddc_ns,
                            w.ddc_wall_ns, w.ddc_remote_bytes, ""});
    bench::EmitBenchRecord({"fig13", w.name, "TELEPORT", w.teleport_ns,
                            w.teleport_wall_ns, w.teleport_remote_bytes, ""});
  }
  std::printf("\npaper: TELEPORT wins on every workload, up to an order of\n"
              "magnitude; measured shape %s.\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
