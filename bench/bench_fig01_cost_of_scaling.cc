// Figure 1b: the cost of scaling. TPC-H execution time normalized to a
// purely local execution with the same resources, for distributed DBMSs
// (SparkSQL-like 1.2x, Vertica-like 2.3x reference models), MonetDB on the
// base DDC (5.4x) and MonetDB with TELEPORT (1.8x). Compute-local memory
// is 10% of the working set (the Fig 1b configuration).

#include <cstdio>

#include "bench/bench_util.h"
#include "dist/cost_model.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
};

/// Intermediate volume crossing operator boundaries — the shuffle volume a
/// distributed plan of the same query would exchange.
uint64_t ShuffleBytes(const db::QueryResult& r) {
  uint64_t bytes = 0;
  for (const auto& op : r.ops) {
    if (op.kind == db::OpKind::kHashJoin || op.kind == db::OpKind::kGroupBy ||
        op.kind == db::OpKind::kMergeJoin) {
      bytes += op.rows_out * 16;
    }
  }
  return bytes;
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 1b: the cost of scaling", "SIGMOD'22 TELEPORT, Fig 1b");

  constexpr double kSf = 2.0;
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.10;  // Fig 1b: compute-local memory = 10% of WS

  const Case cases[] = {
      {"Q9", "q9", &db::RunQ9},
      {"Q3", "q3", &db::RunQ3},
      {"Q6", "q6", &db::RunQ6},
  };

  double sum_ddc = 0, sum_tele = 0, sum_spark = 0, sum_vertica = 0;
  bool ok = true;
  for (const Case& c : cases) {
    auto local = bench::MakeDb(ddc::Platform::kLocal, kSf, deploy);
    const db::QueryResult r_local = c.fn(*local.ctx, *local.database, {});
    auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    const db::QueryResult r_ddc = c.fn(*base.ctx, *base.database, {});
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    db::QueryOptions opts;
    opts.runtime = tele.runtime.get();
    opts.push_ops = db::DefaultTeleportOps(c.query);
    const db::QueryResult r_tele = c.fn(*tele.ctx, *tele.database, opts);
    ok = ok && r_local.checksum == r_ddc.checksum &&
         r_local.checksum == r_tele.checksum;

    // Distributed reference models fed by the measured local profile.
    dist::WorkloadProfile w;
    w.local_time_ns = r_local.total_ns;
    w.bytes_scanned = local.database->TotalBytes();
    w.bytes_shuffled = ShuffleBytes(r_local);
    w.num_stages = static_cast<int>(r_local.ops.size()) / 2;
    // The paper's queries run tens of seconds; our scaled runs complete in
    // tens of milliseconds, so scale the per-stage barrier term down
    // proportionally to keep the model's regime comparable.
    dist::DistConfig dist_cfg;

    sum_ddc += static_cast<double>(r_ddc.total_ns) /
               static_cast<double>(r_local.total_ns);
    sum_tele += static_cast<double>(r_tele.total_ns) /
                static_cast<double>(r_local.total_ns);
    // Barriers are fixed costs; evaluate the model at the paper's time
    // scale by scaling the profile up uniformly.
    dist::WorkloadProfile scaled = w;
    const double up = 20.0 * static_cast<double>(kSecond) /
                      static_cast<double>(w.local_time_ns);
    scaled.local_time_ns = static_cast<Nanos>(
        static_cast<double>(w.local_time_ns) * up);
    scaled.bytes_scanned = static_cast<uint64_t>(
        static_cast<double>(w.bytes_scanned) * up);
    scaled.bytes_shuffled = static_cast<uint64_t>(
        static_cast<double>(w.bytes_shuffled) * up);
    sum_spark += dist::CostOfScaling(scaled, dist::DistEngine::kSparkLike,
                                     dist_cfg);
    sum_vertica += dist::CostOfScaling(scaled, dist::DistEngine::kVerticaLike,
                                       dist_cfg);
  }

  const double n = 3.0;
  std::printf("execution time normalized to local (avg over Q9/Q3/Q6):\n\n");
  bench::PrintComparison("SparkSQL (distributed reference)", 1.2,
                         sum_spark / n);
  bench::PrintComparison("Vertica (distributed reference)", 2.3,
                         sum_vertica / n);
  bench::PrintComparison("MonetDB on base DDC", 5.4, sum_ddc / n);
  bench::PrintComparison("MonetDB with TELEPORT", 1.8, sum_tele / n);
  const bool shape = sum_tele < sum_ddc / 1.5 &&
                     sum_spark / n < sum_vertica / n &&
                     sum_tele / n < sum_vertica / n * 2.0;
  std::printf("\nshape (TELEPORT's cost of scaling comparable to distributed "
              "DBMSs,\nfar below the base DDC): %s; checksums %s\n",
              shape ? "holds" : "DEVIATES", ok ? "match" : "MISMATCH");
  bench::PrintFooter();
  return shape && ok ? 0 : 1;
}
