// PR10: host-parallel simulation at bit-identical virtual time.
//
// Tier A: the multi-leg figure suite (24 independent deployments) on a
// LegRunner thread pool — identical WorkloadTimes at any thread count,
// wall-clock speedup when real cores exist.
// Tier B: one rack deployment with N compute nodes x N memory shards and N
// diagonal tasks (task t = node t, shard t), stepped by the conservative
// parallel engine under the fabric min-latency lookahead — bit-identical
// digests, virtual clocks, and metrics dumps vs the serial schedule at two
// fleet scales (2x2 and 4x4).
//
// Speedup gates self-calibrate to the host: this container may expose a
// single core, where parallel runs legitimately show ~1x; the floor is
// enforced only when std::thread::hardware_concurrency() provides the
// cores (or TELEPORT_PAR_FLOOR forces a value).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ddc/memory_system.h"
#include "rack/traffic.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"
#include "sim/parallel.h"

using namespace teleport;  // NOLINT

namespace {

constexpr uint64_t kPage = 4096;

// --- Tier A: the figure suite as parallel legs ------------------------------

bench::SuiteConfig SuiteScale() {
  bench::SuiteConfig cfg;
  cfg.db_scale_factor = 1.5;
  cfg.graph_vertices = 20'000;
  cfg.graph_degree = 8;
  cfg.mr_bytes = 1 << 20;
  return cfg;
}

bool SameSuite(const std::vector<bench::WorkloadTimes>& a,
               const std::vector<bench::WorkloadTimes>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].local_ns != b[i].local_ns ||
        a[i].ddc_ns != b[i].ddc_ns || a[i].teleport_ns != b[i].teleport_ns ||
        a[i].ddc_remote_bytes != b[i].ddc_remote_bytes ||
        a[i].teleport_remote_bytes != b[i].teleport_remote_bytes ||
        !a[i].checksums_match || !b[i].checksums_match) {
      return false;
    }
  }
  return true;
}

// --- Tier B: diagonal rack under the conservative parallel engine -----------

struct RackOutcome {
  std::vector<uint64_t> digests;
  std::vector<Nanos> clocks;
  std::vector<std::string> metrics;
  Nanos makespan = 0;
  Nanos wall_ns = 0;
  sim::Interleaver::ParCounters par;
};

/// N tasks on an NxN rack, task t pinned to (node t, shard t), each running
/// `rounds` rack::RunKernel passes (kinds cycling per round) confined to its
/// own shard-aligned slice. `host_threads` 1 = serial engine (with batched
/// handoffs), >1 = conservative parallel stepping.
RackOutcome RunDiagonalRack(int n, int host_threads, int rounds, int ops) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_nodes = n;
  cfg.memory_shards = n;
  cfg.compute_cache_bytes = 16 * kPage;
  cfg.memory_pool_bytes = 64ULL * kPage * static_cast<uint64_t>(n);
  const uint64_t slice_pages = 32;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(),
                       static_cast<uint64_t>(n) * slice_pages * kPage);
  TELEPORT_CHECK(ms.pages_per_shard() == slice_pages)
      << "slice/shard misalignment: " << ms.pages_per_shard();

  std::vector<ddc::VAddr> slices;
  for (int t = 0; t < n; ++t) {
    const ddc::VAddr s =
        ms.space().Alloc(slice_pages * kPage, "slice" + std::to_string(t));
    TELEPORT_CHECK(ms.ShardOf(ms.space().PageOf(s)) == t);
    TELEPORT_CHECK(
        ms.ShardOf(ms.space().PageOf(s + slice_pages * kPage - 1)) == t);
    slices.push_back(s);
  }
  ms.SeedData();

  RackOutcome out;
  out.digests.assign(static_cast<size_t>(n), 0);
  std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
  std::vector<std::unique_ptr<sim::CoopTask>> tasks;
  sim::Interleaver il;
  const bool eligible = sim::ParallelEligible(ms);
  TELEPORT_CHECK(eligible);  // plain rack: ideal backend, no observers
  for (int t = 0; t < n; ++t) {
    ctxs.push_back(ms.CreateContext(ddc::Pool::kCompute, /*node=*/t,
                                    /*tenant=*/t));
    ddc::ExecutionContext* ctx = ctxs.back().get();
    const ddc::VAddr slice = slices[static_cast<size_t>(t)];
    uint64_t* digest = &out.digests[static_cast<size_t>(t)];
    tasks.push_back(std::make_unique<sim::CoopTask>(
        std::vector<ddc::ExecutionContext*>{ctx},
        [ctx, slice, slice_pages, rounds, ops, t, digest] {
          for (int r = 0; r < rounds; ++r) {
            const auto kind = static_cast<rack::WorkloadKind>((t + r) % 4);
            *digest += rack::RunKernel(*ctx, kind, slice, slice_pages * kPage,
                                       ops, 0x9e37 + 131 * t + r);
          }
        },
        /*quantum=*/8, sim::TaskPartition{t, t}));
    il.Add(tasks.back().get());
  }
  il.set_host_threads(host_threads);
  il.set_lookahead(ms.fabric().MinDeliveryLatencyNs());
  bench::WallTimer wall;
  out.makespan = il.Run();
  out.wall_ns = wall.ElapsedNs();
  out.par = il.par_counters();
  for (int t = 0; t < n; ++t) {
    out.clocks.push_back(ctxs[static_cast<size_t>(t)]->now());
    out.metrics.push_back(ctxs[static_cast<size_t>(t)]->metrics().ToString());
  }
  return out;
}

bool SameRack(const RackOutcome& a, const RackOutcome& b) {
  return a.digests == b.digests && a.clocks == b.clocks &&
         a.metrics == b.metrics && a.makespan == b.makespan;
}

double Speedup(Nanos serial_wall, Nanos parallel_wall) {
  return parallel_wall > 0
             ? static_cast<double>(serial_wall) /
                   static_cast<double>(parallel_wall)
             : 0.0;
}

/// Floor for the 8-thread suite speedup gate: TELEPORT_PAR_FLOOR when set,
/// else scaled to the visible cores (0 = skip the gate; a 1-core container
/// cannot show wall-clock parallelism, only determinism).
double SpeedupFloor() {
  const char* env = std::getenv("TELEPORT_PAR_FLOOR");
  if (env != nullptr && *env != '\0') return std::atof(env);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw >= 8) return 3.0;
  if (hw >= 4) return 1.8;
  return 0.0;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "PR10: host-parallel simulation",
      "multi-threaded figure legs + conservative parallel stepping, "
      "bit-identical virtual time");
  bool ok = true;

  // --- Tier A: figure suite, 1 vs 8 host threads. -------------------------
  const bench::SuiteConfig scale = SuiteScale();
  bench::SuiteConfig serial_cfg = scale;
  serial_cfg.host_threads = 1;
  bench::SuiteConfig par_cfg = scale;
  par_cfg.host_threads = 8;

  bench::WallTimer wall;
  const auto suite_t1 = bench::RunSuite(serial_cfg);
  const Nanos suite_t1_wall = wall.ElapsedNs();
  wall.Reset();
  const auto suite_t8 = bench::RunSuite(par_cfg);
  const Nanos suite_t8_wall = wall.ElapsedNs();

  const bool suite_same = SameSuite(suite_t1, suite_t8);
  ok &= suite_same;
  Nanos suite_virtual = 0;
  for (const auto& w : suite_t1) {
    suite_virtual += w.local_ns + w.ddc_ns + w.teleport_ns;
  }
  const double suite_speedup = Speedup(suite_t1_wall, suite_t8_wall);
  std::printf("suite (24 legs): t1 %.2fs  t8 %.2fs  speedup %.2fx  "
              "results %s\n",
              suite_t1_wall / 1e9, suite_t8_wall / 1e9, suite_speedup,
              suite_same ? "identical" : "DIVERGED");
  bench::EmitBenchRecord({"pr10_parallel", "suite_t1", "LegRunner",
                          suite_virtual, suite_t1_wall, 0, ""});
  bench::EmitBenchRecord({"pr10_parallel", "suite_t8", "LegRunner",
                          suite_virtual, suite_t8_wall, 0, ""});

  // --- Tier B: diagonal racks at two fleet scales, serial vs parallel. ----
  for (const int n : {2, 4}) {
    const int rounds = 6;
    const int ops = n == 2 ? 1500 : 700;
    const RackOutcome serial = RunDiagonalRack(n, 1, rounds, ops);
    const RackOutcome parallel = RunDiagonalRack(n, 8, rounds, ops);
    const bool same = SameRack(serial, parallel);
    ok &= same;
    const double speedup = Speedup(serial.wall_ns, parallel.wall_ns);
    std::printf(
        "rack %dx%d: serial %.2fs (batched quanta %llu)  parallel %.2fs "
        "(batches %llu, parallel steps %llu, stalls %llu)  speedup %.2fx  "
        "virtual %s\n",
        n, n, serial.wall_ns / 1e9,
        static_cast<unsigned long long>(serial.par.batched_quanta),
        parallel.wall_ns / 1e9,
        static_cast<unsigned long long>(parallel.par.batches),
        static_cast<unsigned long long>(parallel.par.parallel_steps),
        static_cast<unsigned long long>(parallel.par.lookahead_stalls),
        speedup, same ? "bit-identical" : "DIVERGED");
    const std::string leg = "rack" + std::to_string(n) + "x" +
                            std::to_string(n);
    bench::EmitBenchRecord({"pr10_parallel", leg + "_t1", "Interleaver",
                            serial.makespan, serial.wall_ns, 0, ""});
    bench::EmitBenchRecord({"pr10_parallel", leg + "_t8", "Interleaver",
                            parallel.makespan, parallel.wall_ns, 0, ""});
    // The parallel engine must actually batch when given real partitions.
    ok &= parallel.par.batches > 0;
    if (n == 4) ok &= parallel.par.parallel_steps > 0;
  }

  // --- Speedup floor (self-gated to the visible cores). -------------------
  const double floor = SpeedupFloor();
  if (floor > 0.0) {
    const bool fast_enough = suite_speedup >= floor;
    std::printf("speedup floor: %.2fx required, %.2fx measured — %s\n",
                floor, suite_speedup, fast_enough ? "ok" : "FAILED");
    ok &= fast_enough;
  } else {
    std::printf("speedup floor: skipped (%u hardware threads visible; "
                "determinism gates still enforced)\n",
                std::thread::hardware_concurrency());
  }

  bench::PrintComparison("suite speedup (8 threads)", 10.0, suite_speedup);
  bench::PrintFooter();
  if (!ok) {
    std::printf("PR10 GATE FAILED\n");
    return 1;
  }
  std::printf("all PR10 gates passed\n");
  return 0;
}
