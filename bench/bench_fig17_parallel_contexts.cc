// Figure 17: parallel processing of concurrent pushdown requests. Eight
// compute-pool threads issue a parallel aggregation over Lineitem; the
// memory pool has two physical cores and 1..4 user contexts. Paper:
// speedup over a single context grows with parallelism but with
// diminishing returns once contexts exceed the physical cores (context
// switching).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

int main() {
  bench::PrintBanner("Figure 17: concurrent pushdowns vs user contexts",
                     "SIGMOD'22 TELEPORT, Fig 17");

  // Measure one shard of the parallel aggregation as a pushdown call to
  // obtain its busy/stall profile. The caller has dirtied part of its
  // shard, so the pushed function stalls on coherence round trips — the
  // off-core time that lets extra user contexts overlap useful work.
  constexpr double kSf = 4.0;
  constexpr int kThreads = 8;
  auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
  auto& lineitem = tele.database->lineitem;
  const uint64_t shard_rows = lineitem.rows / kThreads;
  auto caller = tele.ms->CreateContext(ddc::Pool::kCompute);
  Nanos busy = 0, stall = 0;
  {
    // The caller thread has recently written part of its shard (the
    // application state a worker is in when it pushes down); the pushed
    // function stalls on coherence round trips for those pages.
    const db::Column& qty = lineitem.Col("l_quantity");
    const uint64_t page_rows = tele.ms->params().page_size / 8;
    for (uint64_t r = 0; r < shard_rows / 4; r += page_rows) {
      qty.Set(*caller, r, qty.Get(*caller, r));
    }
    const Status st = tele.runtime->Call(*caller, [&](ddc::ExecutionContext&
                                                          mem_ctx) {
      // SUM(l_quantity) with a filter over one shard, in the memory pool.
      int64_t sum = 0;
      for (uint64_t r = 0; r < shard_rows; ++r) {
        const int64_t q = qty.Get(mem_ctx, r);
        if (q < 24) sum += q;
        mem_ctx.ChargeCpu(3);
      }
      (void)sum;
      return Status::OK();
    });
    TELEPORT_CHECK(st.ok());
    const tp::PushdownBreakdown& bd = tele.runtime->last_breakdown();
    // Off-core time: coherence round trips for the caller-dirtied pages
    // plus the per-request transfer segments.
    stall = bd.online_sync_ns + bd.request_transfer_ns +
            bd.response_transfer_ns;
    busy = bd.function_exec_ns;
  }
  std::printf("per-request profile: busy %.2f ms, stall %.2f ms\n\n",
              ToMillis(busy), ToMillis(stall));

  const auto params = sim::CostParams::Default();
  constexpr int kCores = 2;  // the Fig 17 memory-pool configuration
  std::printf("%-10s %14s %12s\n", "contexts", "makespan (ms)", "speedup");
  std::vector<double> speedups;
  const Nanos m1 =
      tp::InstancePoolMakespan(kThreads, busy, stall, 1, kCores, params);
  for (int contexts = 1; contexts <= 4; ++contexts) {
    const Nanos m = tp::InstancePoolMakespan(kThreads, busy, stall, contexts,
                                             kCores, params);
    const double speedup = static_cast<double>(m1) / static_cast<double>(m);
    speedups.push_back(speedup);
    std::printf("%10d %14.1f %11.2fx\n", contexts, ToMillis(m), speedup);
  }

  const double gain12 = speedups[1] / speedups[0];
  const double gain24 = speedups[3] / speedups[1];
  std::printf("\n");
  bench::PrintComparison("speedup at 2 contexts (2 cores)", 1.9, speedups[1]);
  bench::PrintComparison("speedup at 4 contexts", 2.5, speedups[3]);
  const bool shape = speedups[1] > 1.6 && gain24 < gain12 / 1.2 &&
                     speedups[3] >= speedups[1] * 0.9;
  std::printf("\nshape (near-linear to the core count, diminishing "
              "beyond): %s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
