// Figure 14: query speedups from disaggregated memory pools compared to
// NVMe SSDs, per query. Paper: the base DDC (LegoOS) is 10x / 65x / 80x
// faster than Linux+SSD for Q9 / Q3 / Q6; TELEPORT raises this to
// 330x / 210x / 310x.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
  double paper_ddc;
  double paper_tele;
};

}  // namespace

int main() {
  bench::PrintBanner("Figure 14: per-query speedup over NVMe SSD",
                     "SIGMOD'22 TELEPORT, Fig 14");

  constexpr double kSf = 2.0;
  bench::DeployOptions deploy;
  deploy.cache_fraction = 0.02;  // 1 GB of 50 GB in the paper

  const Case cases[] = {
      {"Q9", "q9", &db::RunQ9, 10, 330},
      {"Q3", "q3", &db::RunQ3, 65, 210},
      {"Q6", "q6", &db::RunQ6, 80, 310},
  };

  std::printf("%-4s %11s %11s %11s | %9s %9s | %9s %9s\n", "qry", "SSD(ms)",
              "DDC(ms)", "TELE(ms)", "DDC/ssd", "paper", "TELE/ssd",
              "paper");
  bool ok = true;
  for (const Case& c : cases) {
    auto ssd = bench::MakeDb(ddc::Platform::kLinuxSsd, kSf, deploy);
    const db::QueryResult r_ssd = c.fn(*ssd.ctx, *ssd.database, {});
    auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    const db::QueryResult r_ddc = c.fn(*base.ctx, *base.database, {});
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, deploy);
    db::QueryOptions opts;
    opts.runtime = tele.runtime.get();
    opts.push_ops = db::DefaultTeleportOps(c.query);
    const db::QueryResult r_tele = c.fn(*tele.ctx, *tele.database, opts);

    ok = ok && r_ssd.checksum == r_ddc.checksum &&
         r_ssd.checksum == r_tele.checksum;
    const double ddc_speedup = static_cast<double>(r_ssd.total_ns) /
                               static_cast<double>(r_ddc.total_ns);
    const double tele_speedup = static_cast<double>(r_ssd.total_ns) /
                                static_cast<double>(r_tele.total_ns);
    ok = ok && ddc_speedup > 1.5 && tele_speedup > ddc_speedup;
    std::printf("%-4s %11.1f %11.1f %11.1f | %8.1fx %8.0fx | %8.1fx %8.0fx\n",
                c.label, ToMillis(r_ssd.total_ns), ToMillis(r_ddc.total_ns),
                ToMillis(r_tele.total_ns), ddc_speedup, c.paper_ddc,
                tele_speedup, c.paper_tele);
  }
  std::printf(
      "\nnote: our SSD model charges a flat per-page swap cost and does not\n"
      "model queue-depth collapse under thrashing, so measured gaps are\n"
      "smaller than the paper's; ordering (SSD << DDC << TELEPORT) and the\n"
      "order-of-magnitude claim are what this bench checks: %s\n",
      ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
