#ifndef TELEPORT_BENCH_BENCH_UTIL_H_
#define TELEPORT_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/query.h"
#include "graph/engine.h"
#include "mr/engine.h"
#include "sim/parallel.h"
#include "sim/tracer.h"
#include "teleport/pushdown.h"

namespace teleport::bench {

/// A complete DBMS deployment on one simulated platform.
struct DbDeployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<db::TpchDatabase> database;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;  // DDC platforms only
};

/// Deployment knobs shared by every figure: the paper's testbed uses a
/// compute-local cache that is ~2% of the working set (1 GB vs 50 GB),
/// a memory pool with ample capacity, and (by default) one memory-pool
/// core at the compute pool's clock (§7.1).
struct DeployOptions {
  double cache_fraction = 0.02;
  double pool_multiple = 8.0;  ///< memory pool = multiple x working set
  uint64_t pool_bytes_override = 0;
  double memory_pool_clock_ratio = 1.0;
  int memory_pool_cores = 1;
  /// Sequential prefetch depth of the compute cache (0 = off).
  int prefetch_pages = 0;
  /// Multiplies the deployment's virtual address space. >1 leaves headroom
  /// for re-running a workload on the same deployment (each run allocates
  /// fresh scratch buffers), e.g. the PR7 per-tenant legs.
  double space_headroom = 1.0;
};

DbDeployment MakeDb(ddc::Platform platform, double scale_factor,
                    const DeployOptions& opts = {});

struct GraphDeployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  graph::Graph graph;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

GraphDeployment MakeGraph(ddc::Platform platform, uint64_t vertices,
                          uint64_t degree, const DeployOptions& opts = {});

struct MrDeployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  mr::TextCorpus corpus;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

MrDeployment MakeMr(ddc::Platform platform, uint64_t corpus_bytes,
                    const DeployOptions& opts = {});

/// Scale knobs for the eight-workload suite (Figs 3 and 13).
struct SuiteConfig {
  double db_scale_factor = 6.0;
  uint64_t graph_vertices = 50'000;
  uint64_t graph_degree = 12;
  uint64_t mr_bytes = 4 << 20;
  DeployOptions deploy;
  bool run_teleport = true;
  /// Host threads for the leg runner: each (workload, platform) leg is an
  /// independent deployment, so RunSuite farms them out via RunLegs.
  /// 0 reads TELEPORT_HOST_THREADS; 1 runs serially. Results are identical
  /// at any value — legs share no simulator state and are merged in leg
  /// order — only wall-clock fields (machine-dependent by design) vary.
  int host_threads = 0;
};

/// One workload measured on up to three platforms. teleport_ns is 0 when
/// the TELEPORT leg was skipped.
struct WorkloadTimes {
  std::string name;
  Nanos local_ns = 0;
  Nanos ddc_ns = 0;
  Nanos teleport_ns = 0;
  /// Host wall-clock of each leg (steady_clock), excluding deployment
  /// generation — the simulator-performance axis, orthogonal to the
  /// virtual times above.
  Nanos local_wall_ns = 0;
  Nanos ddc_wall_ns = 0;
  Nanos teleport_wall_ns = 0;
  /// Metrics::RemoteMemoryBytes() of the DDC / TELEPORT deployments after
  /// the run (the local leg never touches the fabric).
  uint64_t ddc_remote_bytes = 0;
  uint64_t teleport_remote_bytes = 0;
  bool checksums_match = true;
};

/// Runs Q9/Q3/Q6, SSSP/RE/CC, WC/Grep on fresh deployments per platform —
/// the Figure 3 and Figure 13 measurement loop.
std::vector<WorkloadTimes> RunSuite(const SuiteConfig& config);

/// One machine-readable result row of a figure run. Records accumulate as
/// JSON lines (one object per line) so CI can concatenate every figure's
/// output into a single BENCH_PR4.json artifact.
struct BenchRecord {
  std::string figure;    ///< e.g. "fig13"
  std::string workload;  ///< e.g. "Q6"
  std::string platform;  ///< ddc::PlatformToString, or "TELEPORT"
  Nanos virtual_ns = 0;
  /// Host wall-clock of the measured region (0 when not measured). Unlike
  /// every other field this is machine-dependent by design: it tracks the
  /// simulator's own speed, not the simulated system's.
  Nanos wall_ns = 0;
  uint64_t remote_memory_bytes = 0;
  std::string trace;  ///< path of the Chrome trace for this row, "" if none
};

/// Host wall-clock stopwatch for BenchRecord::wall_ns.
class WallTimer {
 public:
  WallTimer();
  /// Nanoseconds since construction (or the last Reset()).
  Nanos ElapsedNs() const;
  void Reset();

 private:
  int64_t t0_;
};

/// Deterministic single-line JSON encoding of one record (golden-locked in
/// tests/golden/format_golden_test.cc).
std::string BenchRecordToJson(const BenchRecord& record);

/// Appends `BenchRecordToJson(record)` + '\n' to the file named by the
/// TELEPORT_BENCH_JSON environment variable. No-op when it is unset, so
/// interactive bench runs stay side-effect free. Inside a RunLegs leg the
/// line goes to that leg's private buffer instead and reaches the file when
/// the runner flushes buffers in leg order — so the JSONL a parallel run
/// produces is byte-identical to a serial run of the same legs.
void EmitBenchRecord(const BenchRecord& record);

/// Runs independent figure legs on a sim::LegRunner host-thread pool.
/// Isolation contract: each leg builds (or exclusively owns) its own
/// deployments — MemorySystem, Fabric, contexts, Metrics, Tracer, RNG
/// streams — and communicates results only through its own slot of a
/// caller-provided output vector. EmitBenchRecord output is buffered per
/// leg and flushed in leg index order (nested RunLegs compose: an inner
/// flush lands in the enclosing leg's buffer). `host_threads` 0 reads
/// TELEPORT_HOST_THREADS.
void RunLegs(const std::vector<std::function<void()>>& legs,
             int host_threads = 0);

/// Writes `tracer`'s Chrome trace to $TELEPORT_TRACE_DIR/<stem>.trace.json
/// and returns that path; returns "" (writing nothing) when the variable
/// is unset.
std::string MaybeWriteTrace(const sim::Tracer& tracer,
                            const std::string& stem);

/// Formatting helpers so every bench binary reports the same way.
void PrintBanner(const std::string& title, const std::string& paper_ref);
void PrintFooter();

/// "paper X vs measured Y" line for EXPERIMENTS.md-ready output.
void PrintComparison(const std::string& label, double paper, double measured,
                     const std::string& unit = "x");

}  // namespace teleport::bench

#endif  // TELEPORT_BENCH_BENCH_UTIL_H_
