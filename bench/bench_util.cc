#include "bench/bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace teleport::bench {

namespace {

ddc::DdcConfig BaseConfig(ddc::Platform platform, uint64_t working_set,
                          const DeployOptions& opts) {
  ddc::DdcConfig dc;
  dc.platform = platform;
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096, static_cast<uint64_t>(opts.cache_fraction *
                                       static_cast<double>(working_set)));
  dc.memory_pool_bytes =
      opts.pool_bytes_override != 0
          ? opts.pool_bytes_override
          : static_cast<uint64_t>(opts.pool_multiple *
                                  static_cast<double>(working_set));
  dc.memory_pool_clock_ratio = opts.memory_pool_clock_ratio;
  dc.memory_pool_cores = opts.memory_pool_cores;
  dc.prefetch_pages = opts.prefetch_pages;
  return dc;
}

}  // namespace

DbDeployment MakeDb(ddc::Platform platform, double scale_factor,
                    const DeployOptions& opts) {
  DbDeployment d;
  db::TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  const uint64_t bytes = db::EstimateTpchBytes(cfg);
  // Queries allocate sizable intermediates (selection vectors, hash
  // tables); give the address space ample headroom.
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, bytes, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(bytes * 12 * opts.space_headroom));
  d.database = db::GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

GraphDeployment MakeGraph(ddc::Platform platform, uint64_t vertices,
                          uint64_t degree, const DeployOptions& opts) {
  GraphDeployment d;
  graph::GraphConfig gc;
  gc.vertices = vertices;
  gc.avg_degree = degree;
  const uint64_t bytes = graph::EstimateGraphBytes(gc);
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, bytes, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(bytes * 6 * opts.space_headroom));
  d.graph = graph::GenerateGraph(d.ms.get(), gc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

MrDeployment MakeMr(ddc::Platform platform, uint64_t corpus_bytes,
                    const DeployOptions& opts) {
  MrDeployment d;
  mr::TextConfig tc;
  tc.bytes = corpus_bytes;
  // The MapReduce working set is dominated by the shuffle / reduce
  // buffers, several times the input volume; size the cache off that.
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, corpus_bytes * 8, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(corpus_bytes * 40 * opts.space_headroom));
  d.corpus = mr::GenerateText(d.ms.get(), tc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

std::vector<WorkloadTimes> RunSuite(const SuiteConfig& config) {
  std::vector<WorkloadTimes> out;

  // --- MonetDB-like DBMS: Q9, Q3, Q6 -------------------------------------
  struct DbCase {
    const char* label;
    const char* query;
    db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                          const db::QueryOptions&);
  };
  const DbCase db_cases[] = {
      {"Q9", "q9", &db::RunQ9},
      {"Q3", "q3", &db::RunQ3},
      {"Q6", "q6", &db::RunQ6},
  };
  for (const DbCase& c : db_cases) {
    WorkloadTimes w;
    w.name = c.label;
    auto local = MakeDb(ddc::Platform::kLocal, config.db_scale_factor,
                        config.deploy);
    WallTimer wall;
    const db::QueryResult rl = c.fn(*local.ctx, *local.database, {});
    w.local_ns = rl.total_ns;
    w.local_wall_ns = wall.ElapsedNs();
    auto base = MakeDb(ddc::Platform::kBaseDdc, config.db_scale_factor,
                       config.deploy);
    wall.Reset();
    const db::QueryResult rd = c.fn(*base.ctx, *base.database, {});
    w.ddc_ns = rd.total_ns;
    w.ddc_wall_ns = wall.ElapsedNs();
    w.ddc_remote_bytes = base.ctx->metrics().RemoteMemoryBytes();
    w.checksums_match = rl.checksum == rd.checksum;
    if (config.run_teleport) {
      auto tele = MakeDb(ddc::Platform::kBaseDdc, config.db_scale_factor,
                         config.deploy);
      db::QueryOptions opts;
      opts.runtime = tele.runtime.get();
      opts.push_ops = db::DefaultTeleportOps(c.query);
      wall.Reset();
      const db::QueryResult rt = c.fn(*tele.ctx, *tele.database, opts);
      w.teleport_ns = rt.total_ns;
      w.teleport_wall_ns = wall.ElapsedNs();
      w.teleport_remote_bytes = tele.ctx->metrics().RemoteMemoryBytes();
      w.checksums_match = w.checksums_match && rl.checksum == rt.checksum;
    }
    out.push_back(w);
  }

  // --- PowerGraph-like engine: SSSP, RE, CC --------------------------------
  struct GraphCase {
    const char* label;
    graph::GasResult (*fn)(ddc::ExecutionContext&, const graph::Graph&,
                           const graph::GasOptions&);
  };
  const GraphCase graph_cases[] = {
      {"SSSP", &graph::RunSssp},
      {"RE", &graph::RunReachability},
      {"CC", &graph::RunConnectedComponents},
  };
  for (const GraphCase& c : graph_cases) {
    WorkloadTimes w;
    w.name = c.label;
    auto local = MakeGraph(ddc::Platform::kLocal, config.graph_vertices,
                           config.graph_degree, config.deploy);
    WallTimer wall;
    const graph::GasResult rl = c.fn(*local.ctx, local.graph, {});
    w.local_ns = rl.total_ns;
    w.local_wall_ns = wall.ElapsedNs();
    auto base = MakeGraph(ddc::Platform::kBaseDdc, config.graph_vertices,
                          config.graph_degree, config.deploy);
    wall.Reset();
    const graph::GasResult rd = c.fn(*base.ctx, base.graph, {});
    w.ddc_ns = rd.total_ns;
    w.ddc_wall_ns = wall.ElapsedNs();
    w.ddc_remote_bytes = base.ctx->metrics().RemoteMemoryBytes();
    w.checksums_match = rl.checksum == rd.checksum;
    if (config.run_teleport) {
      auto tele = MakeGraph(ddc::Platform::kBaseDdc, config.graph_vertices,
                            config.graph_degree, config.deploy);
      graph::GasOptions opts;
      opts.runtime = tele.runtime.get();
      opts.push_phases = graph::DefaultTeleportPhases();
      wall.Reset();
      const graph::GasResult rt = c.fn(*tele.ctx, tele.graph, opts);
      w.teleport_ns = rt.total_ns;
      w.teleport_wall_ns = wall.ElapsedNs();
      w.teleport_remote_bytes = tele.ctx->metrics().RemoteMemoryBytes();
      w.checksums_match = w.checksums_match && rl.checksum == rt.checksum;
    }
    out.push_back(w);
  }

  // --- Phoenix-like MapReduce: WC, Grep ------------------------------------
  struct MrCase {
    const char* label;
    bool grep;
  };
  const MrCase mr_cases[] = {{"WC", false}, {"Grep", true}};
  for (const MrCase& c : mr_cases) {
    WorkloadTimes w;
    w.name = c.label;
    auto run = [&](MrDeployment& d, const mr::MrOptions& opts) {
      return c.grep ? RunGrep(*d.ctx, d.corpus, "wab", opts)
                    : RunWordCount(*d.ctx, d.corpus, opts);
    };
    auto local = MakeMr(ddc::Platform::kLocal, config.mr_bytes, config.deploy);
    WallTimer wall;
    const mr::MrResult rl = run(local, {});
    w.local_ns = rl.total_ns;
    w.local_wall_ns = wall.ElapsedNs();
    auto base = MakeMr(ddc::Platform::kBaseDdc, config.mr_bytes,
                       config.deploy);
    wall.Reset();
    const mr::MrResult rd = run(base, {});
    w.ddc_ns = rd.total_ns;
    w.ddc_wall_ns = wall.ElapsedNs();
    w.ddc_remote_bytes = base.ctx->metrics().RemoteMemoryBytes();
    w.checksums_match = rl.checksum == rd.checksum;
    if (config.run_teleport) {
      auto tele = MakeMr(ddc::Platform::kBaseDdc, config.mr_bytes,
                         config.deploy);
      mr::MrOptions opts;
      opts.runtime = tele.runtime.get();
      opts.push_phases = mr::DefaultTeleportPhases(c.grep);
      wall.Reset();
      const mr::MrResult rt = run(tele, opts);
      w.teleport_ns = rt.total_ns;
      w.teleport_wall_ns = wall.ElapsedNs();
      w.teleport_remote_bytes = tele.ctx->metrics().RemoteMemoryBytes();
      w.checksums_match = w.checksums_match && rl.checksum == rt.checksum;
    }
    out.push_back(w);
  }

  return out;
}

namespace {

void AppendJsonField(std::string& out, const char* key,
                     const std::string& value, bool last = false) {
  out += '"';
  out += key;
  out += "\":\"";
  // Record fields are paths and identifiers; escape the two characters
  // that could break the JSON framing.
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += last ? "\"" : "\",";
}

}  // namespace

std::string BenchRecordToJson(const BenchRecord& record) {
  std::string out = "{";
  AppendJsonField(out, "figure", record.figure);
  AppendJsonField(out, "workload", record.workload);
  AppendJsonField(out, "platform", record.platform);
  out += "\"virtual_ns\":" + std::to_string(record.virtual_ns) + ",";
  out += "\"wall_ns\":" + std::to_string(record.wall_ns) + ",";
  out += "\"remote_memory_bytes\":" +
         std::to_string(record.remote_memory_bytes) + ",";
  AppendJsonField(out, "trace", record.trace, /*last=*/true);
  out += "}";
  return out;
}

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallTimer::WallTimer() : t0_(WallNowNs()) {}

Nanos WallTimer::ElapsedNs() const {
  return static_cast<Nanos>(WallNowNs() - t0_);
}

void WallTimer::Reset() { t0_ = WallNowNs(); }

void EmitBenchRecord(const BenchRecord& record) {
  const char* path = std::getenv("TELEPORT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  const std::string line = BenchRecordToJson(record) + "\n";
  std::fwrite(line.data(), 1, line.size(), f);
  std::fclose(f);
}

std::string MaybeWriteTrace(const sim::Tracer& tracer,
                            const std::string& stem) {
  const char* dir = std::getenv("TELEPORT_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  const std::string path = std::string(dir) + "/" + stem + ".trace.json";
  if (!tracer.WriteChromeJson(path)) return "";
  return path;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

void PrintFooter() {
  std::printf("--------------------------------------------------------------\n\n");
}

void PrintComparison(const std::string& label, double paper, double measured,
                     const std::string& unit) {
  std::printf("  %-34s paper %7.1f%s   measured %7.1f%s\n", label.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

}  // namespace teleport::bench
