#include "bench/bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace teleport::bench {

namespace {

ddc::DdcConfig BaseConfig(ddc::Platform platform, uint64_t working_set,
                          const DeployOptions& opts) {
  ddc::DdcConfig dc;
  dc.platform = platform;
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096, static_cast<uint64_t>(opts.cache_fraction *
                                       static_cast<double>(working_set)));
  dc.memory_pool_bytes =
      opts.pool_bytes_override != 0
          ? opts.pool_bytes_override
          : static_cast<uint64_t>(opts.pool_multiple *
                                  static_cast<double>(working_set));
  dc.memory_pool_clock_ratio = opts.memory_pool_clock_ratio;
  dc.memory_pool_cores = opts.memory_pool_cores;
  dc.prefetch_pages = opts.prefetch_pages;
  return dc;
}

}  // namespace

DbDeployment MakeDb(ddc::Platform platform, double scale_factor,
                    const DeployOptions& opts) {
  DbDeployment d;
  db::TpchConfig cfg;
  cfg.scale_factor = scale_factor;
  const uint64_t bytes = db::EstimateTpchBytes(cfg);
  // Queries allocate sizable intermediates (selection vectors, hash
  // tables); give the address space ample headroom.
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, bytes, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(bytes * 12 * opts.space_headroom));
  d.database = db::GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

GraphDeployment MakeGraph(ddc::Platform platform, uint64_t vertices,
                          uint64_t degree, const DeployOptions& opts) {
  GraphDeployment d;
  graph::GraphConfig gc;
  gc.vertices = vertices;
  gc.avg_degree = degree;
  const uint64_t bytes = graph::EstimateGraphBytes(gc);
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, bytes, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(bytes * 6 * opts.space_headroom));
  d.graph = graph::GenerateGraph(d.ms.get(), gc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

MrDeployment MakeMr(ddc::Platform platform, uint64_t corpus_bytes,
                    const DeployOptions& opts) {
  MrDeployment d;
  mr::TextConfig tc;
  tc.bytes = corpus_bytes;
  // The MapReduce working set is dominated by the shuffle / reduce
  // buffers, several times the input volume; size the cache off that.
  d.ms = std::make_unique<ddc::MemorySystem>(
      BaseConfig(platform, corpus_bytes * 8, opts), sim::CostParams::Default(),
      static_cast<uint64_t>(corpus_bytes * 40 * opts.space_headroom));
  d.corpus = mr::GenerateText(d.ms.get(), tc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(
        d.ms.get(), opts.memory_pool_cores);
  }
  return d;
}

std::vector<WorkloadTimes> RunSuite(const SuiteConfig& config) {
  // Every (workload, platform) pair is an independent leg on its own
  // deployment — the suite is embarrassingly parallel, which is exactly
  // what Tier A of the host-parallel engine exploits. Legs record into
  // index-addressed slots; the merge below runs after RunLegs returns, so
  // the output (and the cross-platform checksum comparison) is identical
  // at any thread count.
  struct DbCase {
    const char* label;
    const char* query;
    db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                          const db::QueryOptions&);
  };
  const DbCase db_cases[] = {
      {"Q9", "q9", &db::RunQ9},
      {"Q3", "q3", &db::RunQ3},
      {"Q6", "q6", &db::RunQ6},
  };
  struct GraphCase {
    const char* label;
    graph::GasResult (*fn)(ddc::ExecutionContext&, const graph::Graph&,
                           const graph::GasOptions&);
  };
  const GraphCase graph_cases[] = {
      {"SSSP", &graph::RunSssp},
      {"RE", &graph::RunReachability},
      {"CC", &graph::RunConnectedComponents},
  };
  struct MrCase {
    const char* label;
    bool grep;
  };
  const MrCase mr_cases[] = {{"WC", false}, {"Grep", true}};

  struct LegResult {
    Nanos virtual_ns = 0;
    Nanos wall_ns = 0;
    uint64_t remote_bytes = 0;
    int64_t checksum = 0;
  };
  enum { kLocal = 0, kDdc = 1, kTeleport = 2 };
  constexpr int kWorkloads = 8;  // Q9 Q3 Q6 | SSSP RE CC | WC Grep
  std::vector<std::array<LegResult, 3>> res(kWorkloads);
  std::vector<std::function<void()>> legs;

  auto platform_of = [](int p) {
    return p == kLocal ? ddc::Platform::kLocal : ddc::Platform::kBaseDdc;
  };
  const int num_platforms = config.run_teleport ? 3 : 2;
  for (int w = 0; w < kWorkloads; ++w) {
    for (int p = 0; p < num_platforms; ++p) {
      legs.push_back([&config, &db_cases, &graph_cases, &mr_cases, &res,
                      platform_of, w, p] {
        LegResult& r = res[static_cast<size_t>(w)][static_cast<size_t>(p)];
        if (w < 3) {
          const DbCase& c = db_cases[w];
          auto d = MakeDb(platform_of(p), config.db_scale_factor,
                          config.deploy);
          db::QueryOptions opts;
          if (p == kTeleport) {
            opts.runtime = d.runtime.get();
            opts.push_ops = db::DefaultTeleportOps(c.query);
          }
          WallTimer wall;
          const db::QueryResult q = c.fn(*d.ctx, *d.database, opts);
          r.virtual_ns = q.total_ns;
          r.wall_ns = wall.ElapsedNs();
          r.checksum = q.checksum;
          if (p != kLocal) r.remote_bytes = d.ctx->metrics().RemoteMemoryBytes();
        } else if (w < 6) {
          const GraphCase& c = graph_cases[w - 3];
          auto d = MakeGraph(platform_of(p), config.graph_vertices,
                             config.graph_degree, config.deploy);
          graph::GasOptions opts;
          if (p == kTeleport) {
            opts.runtime = d.runtime.get();
            opts.push_phases = graph::DefaultTeleportPhases();
          }
          WallTimer wall;
          const graph::GasResult q = c.fn(*d.ctx, d.graph, opts);
          r.virtual_ns = q.total_ns;
          r.wall_ns = wall.ElapsedNs();
          r.checksum = q.checksum;
          if (p != kLocal) r.remote_bytes = d.ctx->metrics().RemoteMemoryBytes();
        } else {
          const MrCase& c = mr_cases[w - 6];
          auto d = MakeMr(platform_of(p), config.mr_bytes, config.deploy);
          mr::MrOptions opts;
          if (p == kTeleport) {
            opts.runtime = d.runtime.get();
            opts.push_phases = mr::DefaultTeleportPhases(c.grep);
          }
          WallTimer wall;
          const mr::MrResult q = c.grep
                                     ? RunGrep(*d.ctx, d.corpus, "wab", opts)
                                     : RunWordCount(*d.ctx, d.corpus, opts);
          r.virtual_ns = q.total_ns;
          r.wall_ns = wall.ElapsedNs();
          r.checksum = q.checksum;
          if (p != kLocal) r.remote_bytes = d.ctx->metrics().RemoteMemoryBytes();
        }
      });
    }
  }
  RunLegs(legs, config.host_threads);

  const char* names[kWorkloads] = {"Q9", "Q3",   "Q6", "SSSP",
                                   "RE", "CC",   "WC", "Grep"};
  std::vector<WorkloadTimes> out;
  out.reserve(kWorkloads);
  for (int w = 0; w < kWorkloads; ++w) {
    const auto& r = res[static_cast<size_t>(w)];
    WorkloadTimes t;
    t.name = names[w];
    t.local_ns = r[kLocal].virtual_ns;
    t.local_wall_ns = r[kLocal].wall_ns;
    t.ddc_ns = r[kDdc].virtual_ns;
    t.ddc_wall_ns = r[kDdc].wall_ns;
    t.ddc_remote_bytes = r[kDdc].remote_bytes;
    t.checksums_match = r[kLocal].checksum == r[kDdc].checksum;
    if (config.run_teleport) {
      t.teleport_ns = r[kTeleport].virtual_ns;
      t.teleport_wall_ns = r[kTeleport].wall_ns;
      t.teleport_remote_bytes = r[kTeleport].remote_bytes;
      t.checksums_match =
          t.checksums_match && r[kLocal].checksum == r[kTeleport].checksum;
    }
    out.push_back(t);
  }
  return out;
}

namespace {

void AppendJsonField(std::string& out, const char* key,
                     const std::string& value, bool last = false) {
  out += '"';
  out += key;
  out += "\":\"";
  // Record fields are paths and identifiers; escape the two characters
  // that could break the JSON framing.
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += last ? "\"" : "\",";
}

}  // namespace

std::string BenchRecordToJson(const BenchRecord& record) {
  std::string out = "{";
  AppendJsonField(out, "figure", record.figure);
  AppendJsonField(out, "workload", record.workload);
  AppendJsonField(out, "platform", record.platform);
  out += "\"virtual_ns\":" + std::to_string(record.virtual_ns) + ",";
  out += "\"wall_ns\":" + std::to_string(record.wall_ns) + ",";
  out += "\"remote_memory_bytes\":" +
         std::to_string(record.remote_memory_bytes) + ",";
  AppendJsonField(out, "trace", record.trace, /*last=*/true);
  out += "}";
  return out;
}

namespace {

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallTimer::WallTimer() : t0_(WallNowNs()) {}

Nanos WallTimer::ElapsedNs() const {
  return static_cast<Nanos>(WallNowNs() - t0_);
}

void WallTimer::Reset() { t0_ = WallNowNs(); }

namespace {

/// Per-thread redirect for EmitBenchRecord: while a RunLegs leg runs, its
/// JSONL lines accumulate here instead of hitting the output file, so legs
/// finishing out of order cannot interleave their records. nullptr (the
/// default, and always the state outside RunLegs) means "write through".
thread_local std::string* t_bench_sink = nullptr;

/// Appends raw, already-framed JSONL text: to the enclosing leg's buffer
/// when one is active (nested RunLegs), else to $TELEPORT_BENCH_JSON.
void AppendBenchOutput(const std::string& text) {
  if (text.empty()) return;
  if (t_bench_sink != nullptr) {
    *t_bench_sink += text;
    return;
  }
  const char* path = std::getenv("TELEPORT_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

}  // namespace

void EmitBenchRecord(const BenchRecord& record) {
  AppendBenchOutput(BenchRecordToJson(record) + "\n");
}

void RunLegs(const std::vector<std::function<void()>>& legs,
             int host_threads) {
  if (host_threads <= 0) host_threads = sim::HostThreadsFromEnv();
  std::vector<std::string> buffers(legs.size());
  std::vector<std::function<void()>> jobs;
  jobs.reserve(legs.size());
  for (size_t i = 0; i < legs.size(); ++i) {
    jobs.push_back([&legs, &buffers, i] {
      std::string* prev = t_bench_sink;  // the calling thread may be a leg
      t_bench_sink = &buffers[i];        // of an enclosing RunLegs
      legs[i]();
      t_bench_sink = prev;
    });
  }
  sim::LegRunner(host_threads).Run(jobs);
  for (const std::string& buf : buffers) AppendBenchOutput(buf);
}

std::string MaybeWriteTrace(const sim::Tracer& tracer,
                            const std::string& stem) {
  const char* dir = std::getenv("TELEPORT_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return "";
  const std::string path = std::string(dir) + "/" + stem + ".trace.json";
  if (!tracer.WriteChromeJson(path)) return "";
  return path;
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

void PrintFooter() {
  std::printf("--------------------------------------------------------------\n\n");
}

void PrintComparison(const std::string& label, double paper, double measured,
                     const std::string& unit) {
  std::printf("  %-34s paper %7.1f%s   measured %7.1f%s\n", label.c_str(),
              paper, unit.c_str(), measured, unit.c_str());
}

}  // namespace teleport::bench
