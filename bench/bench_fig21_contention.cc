// Figure 21: application performance as the contention rate between the
// compute-pool thread and the pushed thread grows from 0.0001% to 1%.
// Paper: local and base DDC are flat (their contention is NUMA-local);
// TELEPORT's default protocol degrades noticeably from ~0.1% (2.1s ->
// 2.3s -> 3.7s); the Weak Ordering relaxation stays flat.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"
#include "rack/traffic.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

namespace {

/// PR7 per-tenant leg: Fig 21's contention knob at rack scale. Four
/// db/graph/mr tenants run the same open-loop traffic twice on a 2x2 rack —
/// once on private address slices (isolated) and once all fighting over ONE
/// shared slice (the tenants' analogue of the figure's read-write
/// contention) — and the latency inflation is the contention cost.
rack::TrafficResult RunTenantLeg(bool shared) {
  ddc::DdcConfig dc;
  dc.platform = ddc::Platform::kBaseDdc;
  dc.compute_cache_bytes = 64 * 4096;
  dc.memory_pool_bytes = 1024 * 4096;
  dc.compute_nodes = 2;
  dc.memory_shards = 2;
  ddc::MemorySystem ms(dc, sim::CostParams::Default(),
                       /*space_bytes=*/4ull * 64 * 4096);
  tp::PushdownRuntime runtime(&ms);
  rack::TrafficConfig cfg;
  cfg.tenants = 4;
  cfg.sessions = 200;
  cfg.ops_per_session = 128;
  cfg.slice_pages = 64;
  cfg.mean_interarrival_ns = 20 * kMicrosecond;
  cfg.shared_slice = shared;
  cfg.seed = 2101;
  return rack::RunOpenLoop(ms, runtime, cfg);
}

}  // namespace

int main() {
  bench::PrintBanner("Figure 21: performance under read-write contention",
                     "SIGMOD'22 TELEPORT, Fig 21 (S7.6)");

  const double rates[] = {0.000001, 0.00001, 0.0001, 0.001, 0.01};
  const MicroScenario scenarios[] = {
      MicroScenario::kLocal, MicroScenario::kBaseDdc,
      MicroScenario::kPushCoherence, MicroScenario::kPushWeakOrdering};

  std::printf("%-12s", "rate");
  for (const auto s : scenarios) {
    std::printf(" %21s", std::string(MicroScenarioToString(s)).c_str());
  }
  std::printf("\n");

  double default_low = 0, default_high = 0;
  double relaxed_low = 0, relaxed_high = 0;
  double base_low = 0, base_high = 0;
  for (const double rate : rates) {
    MicroConfig cfg;
    cfg.region_bytes = 64 << 20;
    cfg.cache_bytes = 2 << 20;
    cfg.accesses = 150'000;
    cfg.contention_rate = rate;
    std::printf("%10.4f%%", rate * 100);
    for (const auto s : scenarios) {
      const MicroResult r = RunMicro(cfg, s);
      std::printf(" %19.1fms", ToMillis(r.time_ns));
      if (s == MicroScenario::kPushCoherence) {
        if (rate == rates[0]) default_low = ToMillis(r.time_ns);
        if (rate == rates[4]) default_high = ToMillis(r.time_ns);
      }
      if (s == MicroScenario::kPushWeakOrdering) {
        if (rate == rates[0]) relaxed_low = ToMillis(r.time_ns);
        if (rate == rates[4]) relaxed_high = ToMillis(r.time_ns);
      }
      if (s == MicroScenario::kBaseDdc) {
        if (rate == rates[0]) base_low = ToMillis(r.time_ns);
        if (rate == rates[4]) base_high = ToMillis(r.time_ns);
      }
    }
    std::printf("\n");
  }

  std::printf("\n");
  bench::PrintComparison("default protocol: 1%% vs lowest rate",
                         3.7 / 2.1, default_high / default_low);
  bench::PrintComparison("relaxed protocol: 1%% vs lowest rate", 1.0,
                         relaxed_high / relaxed_low);
  // Shape: the default protocol degrades with contention; the relaxation
  // and the base DDC stay (nearly) flat. (Our degradation factor is milder
  // than the paper's 1.8x: the simulated coherence fault costs ~4us vs the
  // ~16us effective ping-pong cost on their testbed; see EXPERIMENTS.md.)
  const bool shape = default_high > default_low * 1.1 &&
                     relaxed_high < relaxed_low * 1.1 &&
                     base_high < base_low * 1.1;
  std::printf("\nshape (default degrades past ~0.1%%; relaxed & baselines "
              "flat): %s\n",
              shape ? "holds" : "DEVIATES");

  // --- PR7 per-tenant leg: contention between tenants on a 2x2 rack. -----
  const rack::TrafficResult isolated = RunTenantLeg(/*shared=*/false);
  const rack::TrafficResult contended = RunTenantLeg(/*shared=*/true);
  const double p50_iso = isolated.scopes.MergedLatency().Percentile(50);
  const double p50_con = contended.scopes.MergedLatency().Percentile(50);
  std::printf("\nper-tenant leg (4 tenants, 2x2 rack, 200 sessions):\n");
  std::printf("%-10s %12s %12s %10s\n", "slices", "makespan", "p50 lat",
              "fair(cmpl)");
  std::printf("%-10s %10lldns %10.0fns %10.3f\n", "private",
              static_cast<long long>(isolated.makespan_ns), p50_iso,
              isolated.completion_fairness);
  std::printf("%-10s %10lldns %10.0fns %10.3f\n", "shared",
              static_cast<long long>(contended.makespan_ns), p50_con,
              contended.completion_fairness);
  bench::EmitBenchRecord({"fig21", "tenants_private", "2x2",
                          isolated.makespan_ns, 0, 0, ""});
  bench::EmitBenchRecord({"fig21", "tenants_shared", "2x2",
                          contended.makespan_ns, 0, 0, ""});
  // Shape: cross-tenant sharing serializes the traffic behind one home
  // shard's workqueue — the same "contention costs latency" claim as the
  // thread-level figure, one level up.
  const bool tenant_shape = p50_con > p50_iso &&
                            isolated.failed == 0 && contended.failed == 0;
  std::printf("\ntenant contention inflates p50 by %.2fx: %s\n",
              p50_iso > 0 ? p50_con / p50_iso : 0.0,
              tenant_shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return (shape && tenant_shape) ? 0 : 1;
}
