// Figure 21: application performance as the contention rate between the
// compute-pool thread and the pushed thread grows from 0.0001% to 1%.
// Paper: local and base DDC are flat (their contention is NUMA-local);
// TELEPORT's default protocol degrades noticeably from ~0.1% (2.1s ->
// 2.3s -> 3.7s); the Weak Ordering relaxation stays flat.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

int main() {
  bench::PrintBanner("Figure 21: performance under read-write contention",
                     "SIGMOD'22 TELEPORT, Fig 21 (S7.6)");

  const double rates[] = {0.000001, 0.00001, 0.0001, 0.001, 0.01};
  const MicroScenario scenarios[] = {
      MicroScenario::kLocal, MicroScenario::kBaseDdc,
      MicroScenario::kPushCoherence, MicroScenario::kPushWeakOrdering};

  std::printf("%-12s", "rate");
  for (const auto s : scenarios) {
    std::printf(" %21s", std::string(MicroScenarioToString(s)).c_str());
  }
  std::printf("\n");

  double default_low = 0, default_high = 0;
  double relaxed_low = 0, relaxed_high = 0;
  double base_low = 0, base_high = 0;
  for (const double rate : rates) {
    MicroConfig cfg;
    cfg.region_bytes = 64 << 20;
    cfg.cache_bytes = 2 << 20;
    cfg.accesses = 150'000;
    cfg.contention_rate = rate;
    std::printf("%10.4f%%", rate * 100);
    for (const auto s : scenarios) {
      const MicroResult r = RunMicro(cfg, s);
      std::printf(" %19.1fms", ToMillis(r.time_ns));
      if (s == MicroScenario::kPushCoherence) {
        if (rate == rates[0]) default_low = ToMillis(r.time_ns);
        if (rate == rates[4]) default_high = ToMillis(r.time_ns);
      }
      if (s == MicroScenario::kPushWeakOrdering) {
        if (rate == rates[0]) relaxed_low = ToMillis(r.time_ns);
        if (rate == rates[4]) relaxed_high = ToMillis(r.time_ns);
      }
      if (s == MicroScenario::kBaseDdc) {
        if (rate == rates[0]) base_low = ToMillis(r.time_ns);
        if (rate == rates[4]) base_high = ToMillis(r.time_ns);
      }
    }
    std::printf("\n");
  }

  std::printf("\n");
  bench::PrintComparison("default protocol: 1%% vs lowest rate",
                         3.7 / 2.1, default_high / default_low);
  bench::PrintComparison("relaxed protocol: 1%% vs lowest rate", 1.0,
                         relaxed_high / relaxed_low);
  // Shape: the default protocol degrades with contention; the relaxation
  // and the base DDC stay (nearly) flat. (Our degradation factor is milder
  // than the paper's 1.8x: the simulated coherence fault costs ~4us vs the
  // ~16us effective ping-pong cost on their testbed; see EXPERIMENTS.md.)
  const bool shape = default_high > default_low * 1.1 &&
                     relaxed_high < relaxed_low * 1.1 &&
                     base_high < base_low * 1.1;
  std::printf("\nshape (default degrades past ~0.1%%; relaxed & baselines "
              "flat): %s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
