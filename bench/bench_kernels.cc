// Google-benchmark micro-kernels for the simulator itself: host-side
// throughput of the access path, the coherence fault path, RLE encoding,
// and the interleaver. These guard the *simulator's* performance (how much
// real time a simulated access costs), which bounds how large a scaled
// experiment can be.

#include <benchmark/benchmark.h>

#include "common/rle.h"
#include "common/rng.h"
#include "ddc/memory_system.h"
#include "sim/interleaver.h"
#include "teleport/pushdown.h"

namespace teleport {
namespace {

constexpr uint64_t kPage = 4096;

ddc::DdcConfig DdcCfg(uint64_t cache_pages) {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kBaseDdc;
  c.compute_cache_bytes = cache_pages * kPage;
  c.memory_pool_bytes = 1u << 30;
  return c;
}

void BM_SequentialLoads(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->Load<int64_t>(a + off));
    off = (off + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialLoads);

// The same sequential walk, fast path disabled — the denominator of the
// CI wall-clock smoke check (scalar vs bulk on one machine, same build).
void BM_SequentialLoadsScalar(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  ms.set_scalar_datapath(true);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->Load<int64_t>(a + off));
    off = (off + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialLoadsScalar);

// Sequential walk through a caller-held cursor (the engines' inner-loop
// idiom): the pin declares sequential intent, so every same-page access
// after the first is a single closed-form charge.
void BM_CursorLoads(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  ddc::Cursor cur(*ctx);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cur.Load<int64_t>(a + off));
    off = (off + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CursorLoads);

void BM_CursorLoadsScalar(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  ms.set_scalar_datapath(true);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  ddc::Cursor cur(*ctx);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cur.Load<int64_t>(a + off));
    off = (off + 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CursorLoadsScalar);

// Extent transfers: one LoadSpan per 512-element run, batched into
// per-page charges on the fast path.
void BM_SpanLoads(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  int64_t buf[512];
  uint64_t off = 0;
  for (auto _ : state) {
    ctx->LoadSpan<int64_t>(a + off, buf, 512);
    benchmark::DoNotOptimize(buf[0]);
    off = (off + sizeof(buf)) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_SpanLoads);

void BM_SpanFill(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  uint64_t off = 0;
  for (auto _ : state) {
    ctx->Fill<int64_t>(a + off, 7, 512);
    off = (off + 512 * 8) % (64 << 20);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_SpanFill);

void BM_RandomLoads(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 256 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ctx->Load<int64_t>(a + rng.Uniform((64 << 20) / 8) * 8));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomLoads);

void BM_LocalPlatformLoads(benchmark::State& state) {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kLocal;
  ddc::MemorySystem ms(c, sim::CostParams::Default(), 64 << 20);
  const ddc::VAddr a = ms.space().Alloc(32 << 20, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx->Load<int64_t>(a + off));
    off = (off + 8) % (32 << 20);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LocalPlatformLoads);

void BM_CoherenceFaultRoundTrip(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(4096), sim::CostParams::Default(), 64 << 20);
  const ddc::VAddr a = ms.space().Alloc(1024 * kPage, "d");
  ms.SeedData();
  auto cc = ms.CreateContext(ddc::Pool::kCompute);
  for (uint64_t p = 0; p < 1024; ++p) cc->Store<int64_t>(a + p * kPage, 1);
  ms.BeginPushdownSession(ddc::CoherenceMode::kMesi);
  auto mc = ms.CreateContext(ddc::Pool::kMemory);
  uint64_t p = 0;
  for (auto _ : state) {
    // Ping-pong ownership of a page between the pools.
    mc->Store<int64_t>(a + p * kPage, 2);
    cc->Store<int64_t>(a + p * kPage, 3);
    p = (p + 1) % 1024;
  }
  ms.EndPushdownSession();
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_CoherenceFaultRoundTrip);

void BM_RleEncodeResidentList(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  std::vector<PageEntry> pages;
  Rng rng(7);
  uint64_t p = 0;
  for (uint64_t i = 0; i < n; ++i) {
    p += rng.Bernoulli(0.9) ? 1 : 5;  // mostly contiguous
    pages.push_back({p, rng.Bernoulli(0.3)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RleEncode(pages));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_RleEncodeResidentList)->Arg(1024)->Arg(65536);

void BM_InterleaverStep(benchmark::State& state) {
  class Spin : public sim::Task {
   public:
    Nanos clock() const override { return clock_; }
    bool done() const override { return false; }
    void Step() override { clock_ += 10; }

   private:
    Nanos clock_ = 0;
  };
  Spin tasks[8];
  sim::Interleaver il;
  for (auto& t : tasks) il.Add(&t);
  Nanos deadline = 0;
  for (auto _ : state) {
    deadline += 1000;
    il.RunUntil(deadline);
  }
  state.SetItemsProcessed(state.iterations() * 100 * 8);
}
BENCHMARK(BM_InterleaverStep);

void BM_PushdownCallOverhead(benchmark::State& state) {
  ddc::MemorySystem ms(DdcCfg(256), sim::CostParams::Default(), 16 << 20);
  const ddc::VAddr a = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  tp::PushdownRuntime runtime(&ms);
  auto caller = ms.CreateContext(ddc::Pool::kCompute);
  for (auto _ : state) {
    const Status st = runtime.Call(*caller, [&](ddc::ExecutionContext& mc) {
      benchmark::DoNotOptimize(mc.Load<int64_t>(a));
      return Status::OK();
    });
    if (!st.ok()) state.SkipWithError("pushdown failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushdownCallOverhead);

}  // namespace
}  // namespace teleport

BENCHMARK_MAIN();
