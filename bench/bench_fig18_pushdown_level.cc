// Figure 18: varying the level of pushdown. Q9's eight operators are
// ranked by the S7.4 memory-intensity metric (remote accesses per second,
// profiled on the base DDC); we then push the top 0 / 1 / 4 / 6 / 8 to a
// memory pool with 50% / 25% of the compute pool's clock. Paper (50%
// clock): top-1 3.3x, top-4 27x, top-6 26x, all 24x — being too
// aggressive backfires once low-intensity operators are shipped to the
// weaker cores.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

int main() {
  bench::PrintBanner("Figure 18: level of pushdown under constrained "
                     "memory-pool compute",
                     "SIGMOD'22 TELEPORT, Fig 18a/18b + the S7.4 metric");

  constexpr double kSf = 2.0;

  // Profiling run on the base DDC to rank operators by memory intensity.
  auto profile_dep = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
  const db::QueryResult profile =
      db::RunQ9(*profile_dep.ctx, *profile_dep.database, {});
  const std::vector<std::string> ranked = db::RankByMemoryIntensity(profile);
  std::printf("operators by memory intensity (base DDC profiling run):\n");
  for (size_t i = 0; i < ranked.size(); ++i) {
    const auto& op = profile.Op(ranked[i]);
    std::printf("  %zu. %-22s %8.1f MB/s remote\n", i + 1, ranked[i].c_str(),
                op.MemoryIntensity() / 1e6);
  }
  std::printf("\n");

  const int levels[] = {0, 1, 4, 6, 8};
  const double paper_50[] = {1.0, 3.3, 27.0, 26.0, 24.0};
  bool ok = true;
  for (const double clock_ratio : {0.5, 0.25}) {
    std::printf("memory-pool clock at %.0f%% of compute pool:\n",
                clock_ratio * 100);
    std::printf("  %-8s %14s %10s%s\n", "level", "time (ms)", "speedup",
                clock_ratio == 0.5 ? "      paper" : "");
    bench::DeployOptions opts;
    opts.memory_pool_clock_ratio = clock_ratio;
    Nanos none_time = 0;
    std::vector<double> speedups;
    for (size_t li = 0; li < std::size(levels); ++li) {
      const int level = levels[li];
      auto dep = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, opts);
      db::QueryOptions qopts;
      qopts.runtime = dep.runtime.get();
      for (int i = 0; i < level; ++i) qopts.push_ops.insert(ranked[i]);
      const db::QueryResult r = db::RunQ9(*dep.ctx, *dep.database, qopts);
      ok = ok && r.checksum == profile.checksum;
      if (level == 0) none_time = r.total_ns;
      const double speedup = static_cast<double>(none_time) /
                             static_cast<double>(r.total_ns);
      speedups.push_back(speedup);
      if (clock_ratio == 0.5) {
        std::printf("  top %-4d %14.1f %9.2fx %9.1fx\n", level,
                    ToMillis(r.total_ns), speedup, paper_50[li]);
      } else {
        std::printf("  top %-4d %14.1f %9.2fx\n", level, ToMillis(r.total_ns),
                    speedup);
      }
    }
    // Shape: pushing the top operators wins big, and the benefit of the
    // last push levels dries up (or reverses) once low-intensity,
    // compute-heavier operators land on the throttled cores. The effect
    // is magnified at the lower clock (paper: Fig 18b vs 18a).
    double best = 0;
    for (const double s : speedups) best = std::max(best, s);
    const double first_gain = speedups[1] / speedups[0];
    const double last_gain = speedups.back() / speedups[speedups.size() - 2];
    const bool diminishing = last_gain < 1.0 + (first_gain - 1.0) * 0.10;
    std::printf("  diminishing/negative return of the last push level "
                "(gain %+.1f%%): %s\n\n",
                (last_gain - 1.0) * 100, diminishing ? "holds" : "DEVIATES");
    ok = ok && diminishing && best > 1.5;
  }
  bench::PrintFooter();
  return ok ? 0 : 1;
}
