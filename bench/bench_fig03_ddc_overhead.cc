// Figure 3: DDC performance overhead compared to a monolithic server, for
// the three TPC-H queries with the highest disaggregation cost (Q9, Q3,
// Q6), three graph queries (SSSP, RE, CC) and two MapReduce jobs (WC,
// Grep). Paper: slowdowns range from 5x up to 52.4x, dominated by remote
// memory accesses.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT
using bench::SuiteConfig;
using bench::WorkloadTimes;

int main() {
  bench::PrintBanner("Figure 3: cost of running unmodified systems on a DDC",
                     "SIGMOD'22 TELEPORT, Fig 3 (local vs base DDC)");

  SuiteConfig cfg;
  cfg.run_teleport = false;
  const std::vector<WorkloadTimes> rows = bench::RunSuite(cfg);

  // Approximate per-bar values read off the paper's log-scale plot.
  const double paper_slowdown[] = {52.4, 20.0, 8.0, 5.0, 5.0, 5.0, 10.0, 6.0};

  std::printf("%-6s %12s %12s %10s %14s  %s\n", "query", "local (ms)",
              "DDC (ms)", "slowdown", "paper(approx)", "results");
  int i = 0;
  bool all_in_band = true;
  for (const WorkloadTimes& w : rows) {
    const double slow = static_cast<double>(w.ddc_ns) /
                        static_cast<double>(w.local_ns);
    std::printf("%-6s %12.1f %12.1f %9.1fx %13.1fx  %s\n", w.name.c_str(),
                ToMillis(w.local_ns), ToMillis(w.ddc_ns), slow,
                paper_slowdown[i], w.checksums_match ? "match" : "MISMATCH");
    all_in_band &= slow > 2.0;
    ++i;
  }
  std::printf("\npaper: slowdowns range 5x..52.4x; measured range holds the "
              "same order: %s\n",
              all_in_band ? "yes (all workloads slow down substantially)"
                          : "NO");
  bench::PrintFooter();
  return all_in_band ? 0 : 1;
}
