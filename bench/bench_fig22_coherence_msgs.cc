// Figure 22: the number of coherence messages TELEPORT's protocol
// exchanges as the contention rate grows. Paper: the default protocol's
// message count grows roughly linearly with the contention rate (reaching
// ~10^6 at 1%); the Weak Ordering relaxation no longer changes with the
// rate.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

int main() {
  bench::PrintBanner("Figure 22: coherence messages vs contention rate",
                     "SIGMOD'22 TELEPORT, Fig 22 (S7.6)");

  const double rates[] = {0.000001, 0.00001, 0.0001, 0.001, 0.01};
  std::printf("%-12s %22s %22s\n", "rate", "TELEPORT(default)",
              "TELEPORT(relaxed)");
  uint64_t default_first = 0, default_last = 0;
  uint64_t relaxed_first = 0, relaxed_last = 0;
  uint64_t prev_default = 0;
  bool monotone = true;
  for (const double rate : rates) {
    MicroConfig cfg;
    cfg.region_bytes = 64 << 20;
    cfg.cache_bytes = 2 << 20;
    cfg.accesses = 150'000;
    cfg.contention_rate = rate;
    const MicroResult def = RunMicro(cfg, MicroScenario::kPushCoherence);
    const MicroResult rel = RunMicro(cfg, MicroScenario::kPushWeakOrdering);
    std::printf("%10.4f%% %22llu %22llu\n", rate * 100,
                static_cast<unsigned long long>(def.coherence_messages),
                static_cast<unsigned long long>(rel.coherence_messages));
    if (rate == rates[0]) {
      default_first = def.coherence_messages;
      relaxed_first = rel.coherence_messages;
    }
    default_last = def.coherence_messages;
    relaxed_last = rel.coherence_messages;
    monotone = monotone && def.coherence_messages >= prev_default;
    prev_default = def.coherence_messages;
  }

  // Shape: default grows by orders of magnitude with the rate; relaxed is
  // flat (its residual messages come from data movement, not contention).
  const bool shape = monotone &&
                     default_last > default_first * 50 &&
                     relaxed_last < relaxed_first * 2 + 16;
  std::printf("\nshape (default ~linear in rate; relaxed flat): %s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
