#ifndef TELEPORT_BENCH_MICRO_H_
#define TELEPORT_BENCH_MICRO_H_

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace teleport::bench {

/// The §4 microbenchmark application: a compute-intensive thread (arithmetic
/// expression evaluation) running concurrently with a memory-intensive
/// thread (random probes over a large region), optionally contending on a
/// small set of shared pages. Drives Figs 6, 7, 21 and 22.
struct MicroConfig {
  /// The memory-intensive thread's probe region (paper: 50 GB, scaled).
  uint64_t region_bytes = 64 << 20;
  /// Compute-local cache (paper: 1 GB, scaled to the same ~2% ratio).
  uint64_t cache_bytes = 1 << 20;
  /// Random accesses issued by the memory-intensive thread.
  uint64_t accesses = 200'000;
  /// Arithmetic ops of the compute-intensive thread; 0 = auto-size so both
  /// threads take the same time locally (as in Fig 6: "each thread
  /// finishes in 1s").
  uint64_t compute_ops = 0;
  /// Fraction of the memory thread's probes that write.
  double write_fraction = 0.0;
  /// Probability per operation unit that a thread writes a shared page
  /// (Fig 21's contention rate; both threads request write permissions).
  double contention_rate = 0.0;
  uint64_t shared_pages = 16;
  /// Fig 7: the threads write *disjoint halves* of the shared pages —
  /// false sharing at page granularity.
  bool false_sharing = false;
  /// §4.2 reader-writer contention: the compute thread READS the shared
  /// pages while the pushed thread writes them. The PSO relaxation keeps
  /// the reader's copy mapped read-only instead of invalidating it.
  bool reader_writer = false;
  /// Operations per interleaver step (concurrency granularity).
  int batch = 64;
  uint64_t seed = 42;
};

/// Execution strategies compared across the microbenchmark figures.
enum class MicroScenario {
  kLocal,                   ///< monolithic Linux
  kBaseDdc,                 ///< unmodified on the disaggregated OS
  kPushFullProcess,         ///< Fig 6: migrate the whole process
  kPushPerThread,           ///< Fig 6: push the memory thread, evict its
                            ///  memory eagerly, no online coherence
  kPushCoherence,           ///< default on-demand MESI-style coherence
  kPushPso,                 ///< §4.2 PSO relaxation
  kPushWeakOrdering,        ///< §4.2 Weak Ordering relaxation
  kPushNoCoherenceSyncmem,  ///< coherence off + manual syncmem (Fig 7)
};

std::string_view MicroScenarioToString(MicroScenario s);

struct MicroResult {
  Nanos time_ns = 0;               ///< parallel-region wall time
  uint64_t coherence_messages = 0;
  uint64_t net_messages = 0;
  uint64_t remote_bytes = 0;
};

/// Runs the microbenchmark under one scenario. Deterministic in cfg.seed.
MicroResult RunMicro(const MicroConfig& cfg, MicroScenario scenario);

}  // namespace teleport::bench

#endif  // TELEPORT_BENCH_MICRO_H_
