// Ablation: coherence protocol variants under write-write contention.
// §4.2 describes three relaxations of the default write-invalidate
// protocol — PSO (downgrade instead of invalidate), Weak Ordering (no
// invalidation traffic), and fully manual syncmem. This bench sweeps them
// on the §4 microbenchmark at two contention rates, reporting both time
// and protocol traffic.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

int main() {
  bench::PrintBanner("Ablation: coherence protocol relaxations (S4.2)",
                     "SIGMOD'22 TELEPORT, S4.2 + S7.6");

  const MicroScenario scenarios[] = {
      MicroScenario::kPushCoherence,          // default MESI-style
      MicroScenario::kPushPso,                // PSO relaxation
      MicroScenario::kPushWeakOrdering,       // Weak Ordering
      MicroScenario::kPushNoCoherenceSyncmem  // coherence off + syncmem
  };

  bool ok = true;
  for (const double rate : {0.001, 0.02}) {
    MicroConfig cfg;
    cfg.region_bytes = 64 << 20;
    cfg.cache_bytes = 2 << 20;
    cfg.accesses = 150'000;
    cfg.write_fraction = 0.3;
    cfg.contention_rate = rate;
    std::printf("contention rate %.1f%%:\n", rate * 100);
    uint64_t msgs_default = 0, msgs_pso = 0, msgs_wo = 0;
    Nanos time_default = 0, time_wo = 0;
    for (const MicroScenario s : scenarios) {
      const MicroResult r = RunMicro(cfg, s);
      std::printf("  %-26s %9.2f ms  %8llu coherence msgs\n",
                  std::string(MicroScenarioToString(s)).c_str(),
                  ToMillis(r.time_ns),
                  static_cast<unsigned long long>(r.coherence_messages));
      if (s == MicroScenario::kPushCoherence) {
        msgs_default = r.coherence_messages;
        time_default = r.time_ns;
      }
      if (s == MicroScenario::kPushPso) msgs_pso = r.coherence_messages;
      if (s == MicroScenario::kPushWeakOrdering) {
        msgs_wo = r.coherence_messages;
        time_wo = r.time_ns;
      }
    }
    // Shape: relaxations trade consistency for traffic — Weak Ordering
    // eliminates contention messages entirely and is never slower than
    // the default; PSO sits at or below the default's message count.
    ok = ok && msgs_wo < msgs_default / 4 + 8 && msgs_pso <= msgs_default &&
         time_wo <= time_default;
    std::printf("\n");
  }
  // §4.2's PSO case: reader-writer contention. The compute thread READS
  // the shared pages while the pushed thread writes them; PSO keeps the
  // reader's copy mapped read-only instead of invalidating it, so the
  // ping-pong disappears.
  std::printf("reader-writer contention (compute reads, pushed writes):\n");
  MicroConfig rw;
  rw.region_bytes = 64 << 20;
  rw.cache_bytes = 2 << 20;
  rw.accesses = 150'000;
  rw.write_fraction = 0.3;
  rw.contention_rate = 0.02;
  rw.reader_writer = true;
  const MicroResult rw_mesi = RunMicro(rw, MicroScenario::kPushCoherence);
  const MicroResult rw_pso = RunMicro(rw, MicroScenario::kPushPso);
  std::printf("  %-26s %9.2f ms  %8llu coherence msgs\n",
              "TELEPORT(coherence)", ToMillis(rw_mesi.time_ns),
              static_cast<unsigned long long>(rw_mesi.coherence_messages));
  std::printf("  %-26s %9.2f ms  %8llu coherence msgs\n\n", "TELEPORT(PSO)",
              ToMillis(rw_pso.time_ns),
              static_cast<unsigned long long>(rw_pso.coherence_messages));
  ok = ok && rw_pso.coherence_messages < rw_mesi.coherence_messages / 4 + 8 &&
       rw_pso.time_ns <= rw_mesi.time_ns;

  std::printf("shape (WO eliminates write-write traffic; PSO eliminates "
              "reader-writer\nping-pong; relaxations never slower): %s\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
