// Figure 12: pushing the Q_filter operators (projection, selection,
// aggregation) to the memory pool one at a time. Paper: TELEPORT is
// 5.5x / 2.4x / 2.1x faster than the base DDC per operator, and the DDC
// baseline is 3-6x slower than local.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT
using bench::DbDeployment;

int main() {
  bench::PrintBanner("Figure 12: Q_filter operator pushdown",
                     "SIGMOD'22 TELEPORT, Fig 12 (the S5.1 microbenchmark)");

  constexpr double kSf = 4.0;  // a larger lineitem: this is a scan query
  const char* ops[] = {"Projection", "Selection", "Aggregation"};
  const double paper_speedup[] = {5.5, 2.4, 2.1};

  // One run per platform; the TELEPORT leg re-runs pushing one operator at
  // a time so each bar isolates that operator's pushdown benefit.
  auto local = bench::MakeDb(ddc::Platform::kLocal, kSf);
  const db::QueryResult r_local = db::RunQFilter(*local.ctx, *local.database, {});
  auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
  const db::QueryResult r_base = db::RunQFilter(*base.ctx, *base.database, {});

  std::printf("%-12s %11s %11s %11s %9s %9s\n", "operator", "local(ms)",
              "DDC(ms)", "TELE(ms)", "speedup", "paper");
  bool ok = r_local.checksum == r_base.checksum;
  for (int i = 0; i < 3; ++i) {
    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
    db::QueryOptions opts;
    opts.runtime = tele.runtime.get();
    opts.push_ops = {ops[i]};
    const db::QueryResult r_tele =
        db::RunQFilter(*tele.ctx, *tele.database, opts);
    ok = ok && r_tele.checksum == r_local.checksum;
    const Nanos t_local = r_local.Op(ops[i]).time_ns;
    const Nanos t_base = r_base.Op(ops[i]).time_ns;
    const Nanos t_tele = r_tele.Op(ops[i]).time_ns;
    const double speedup =
        static_cast<double>(t_base) / static_cast<double>(t_tele);
    ok = ok && speedup > 1.2;
    std::printf("%-12s %11.2f %11.2f %11.2f %8.1fx %8.1fx\n", ops[i],
                ToMillis(t_local), ToMillis(t_base), ToMillis(t_tele),
                speedup, paper_speedup[i]);
  }
  std::printf("\nchecksums across deployments: %s\n", ok ? "match" : "MISMATCH");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
