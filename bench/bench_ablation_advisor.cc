// Ablation: the cost-based pushdown advisor (the automation §5.1 leaves as
// future work, driven by the §7.4 memory-intensity idea). For Q9 and Q6 at
// several memory-pool clock ratios we compare four policies: push nothing,
// the paper's hand-picked set (§5.1), the advisor's choice, and push
// everything. The advisor should track the best policy without profiling
// more than one baseline run.

#include <cstdio>

#include "bench/bench_util.h"
#include "db/advisor.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
};

Nanos RunWith(const Case& c, double clock_ratio,
              const std::set<std::string>* push_ops, bool push_all,
              int64_t expect_checksum) {
  bench::DeployOptions dopts;
  dopts.memory_pool_clock_ratio = clock_ratio;
  auto dep = bench::MakeDb(ddc::Platform::kBaseDdc, 6.0, dopts);
  db::QueryOptions qopts;
  if (push_ops != nullptr || push_all) {
    qopts.runtime = dep.runtime.get();
    qopts.push_all = push_all;
    if (push_ops) qopts.push_ops = *push_ops;
  }
  const db::QueryResult r = c.fn(*dep.ctx, *dep.database, qopts);
  TELEPORT_CHECK(r.checksum == expect_checksum) << c.label;
  return r.total_ns;
}

}  // namespace

int main() {
  bench::PrintBanner("Ablation: cost-based pushdown advisor",
                     "SIGMOD'22 TELEPORT, S5.1/S7.4 (automated operator "
                     "placement)");

  const Case cases[] = {
      {"Q9", "q9", &db::RunQ9},
      {"Q6", "q6", &db::RunQ6},
  };
  const double ratios[] = {1.0, 0.5, 0.25};

  bool ok = true;
  for (const Case& c : cases) {
    // One profiling run on the base DDC feeds the advisor.
    auto profile_dep = bench::MakeDb(ddc::Platform::kBaseDdc, 6.0);
    const db::QueryResult profile =
        c.fn(*profile_dep.ctx, *profile_dep.database, {});

    std::printf("%s:\n", c.label);
    for (const double ratio : ratios) {
      db::AdvisorParams ap;
      ap.memory_pool_clock_ratio = ratio;
      const db::PushdownPlan plan = db::AdvisePushdown(profile, ap);

      const auto paper_set = db::DefaultTeleportOps(c.query);
      const Nanos none = RunWith(c, ratio, nullptr, false, profile.checksum);
      const Nanos paper =
          RunWith(c, ratio, &paper_set, false, profile.checksum);
      const Nanos advisor =
          RunWith(c, ratio, &plan.push_ops, false, profile.checksum);
      const Nanos all = RunWith(c, ratio, nullptr, true, profile.checksum);

      const Nanos best = std::min(std::min(none, paper), std::min(advisor, all));
      std::printf("  clock %4.0f%%: none %8.1fms  paper-set %8.1fms  "
                  "advisor %8.1fms (%zu ops)  all %8.1fms\n",
                  ratio * 100, ToMillis(none), ToMillis(paper),
                  ToMillis(advisor), plan.push_ops.size(), ToMillis(all));
      // The advisor must be within 25% of the best policy at every ratio
      // and always at least as good as pushing nothing.
      ok = ok && advisor <= none &&
           static_cast<double>(advisor) <= 1.25 * static_cast<double>(best);
    }
    std::printf("\n");
  }
  std::printf("shape (advisor tracks the best policy across clock ratios): "
              "%s\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
