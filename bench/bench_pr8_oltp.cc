// PR8: DDC-resident B+-tree OLTP engine. Four YCSB mixes (update-heavy A,
// read-mostly B, read-only C, scan/insert E) run as four interleaved
// sessions under OCC, swept across probe pushdown on/off and journal
// on/off. Reports committed throughput (virtual time), abort rate, and
// remote traffic; the shape claims locked here: the final table content is
// bit-identical across pushdown and journal settings (the determinism
// contract), no transaction ever gives up, and only contended mixes abort.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "ddc/memory_system.h"
#include "oltp/btree.h"
#include "oltp/txn.h"
#include "oltp/workload.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"

using namespace teleport;  // NOLINT

namespace {

constexpr uint64_t kPage = 4096;
constexpr int kSessions = 4;

struct Mix {
  const char* name;
  double read, update, insert;  // remainder after these three is scan
  int scan_length;
  bool zipfian;
};

constexpr Mix kMixes[] = {
    {"ycsb_a", 0.50, 0.50, 0.00, 0, true},   // update-heavy, hotspot
    {"ycsb_b", 0.95, 0.05, 0.00, 0, true},   // read-mostly
    {"ycsb_c", 1.00, 0.00, 0.00, 0, false},  // read-only, uniform
    {"ycsb_e", 0.00, 0.00, 0.05, 8, false},  // short scans + inserts
};

oltp::YcsbConfig WorkloadFor(const Mix& mix) {
  oltp::YcsbConfig cfg;
  cfg.sessions = kSessions;
  cfg.txns_per_session = 32;
  cfg.ops_per_txn = 4;
  cfg.keyspace = 256;
  cfg.read_fraction = mix.read;
  cfg.update_fraction = mix.update;
  cfg.insert_fraction = mix.insert;
  cfg.zipfian = mix.zipfian;
  cfg.scan_length = mix.scan_length;
  cfg.seed = 71;
  return cfg;
}

struct Outcome {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t gave_up = 0;
  uint64_t content = 0;
  Nanos makespan_ns = 0;
  Nanos wall_ns = 0;
  uint64_t remote_bytes = 0;
};

Outcome RunMix(const Mix& mix, bool push, bool journal) {
  bench::WallTimer wall;
  ddc::DdcConfig dcfg;
  dcfg.platform = ddc::Platform::kBaseDdc;
  dcfg.compute_cache_bytes = 48 * kPage;  // small: descents evict and fault
  dcfg.memory_pool_bytes = 4096 * kPage;
  ddc::MemorySystem ms(dcfg, sim::CostParams::Default(), 32 << 20);
  ms.set_journal_enabled(journal);
  tp::PushdownRuntime runtime(&ms);
  auto ctx0 = ms.CreateContext(ddc::Pool::kCompute);
  oltp::BTreeOptions opts;
  opts.arena_pages = 512;
  opts.push_probes = push;
  opts.runtime = &runtime;
  oltp::BTree tree(&ms, *ctx0, opts);
  const oltp::YcsbConfig cfg = WorkloadFor(mix);
  oltp::PreloadTable(*ctx0, tree, cfg.keyspace);
  ms.SeedData();
  oltp::TxnManager mgr(&ms, &tree);

  std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
  std::vector<oltp::YcsbResult> results(kSessions);
  {
    std::vector<std::unique_ptr<sim::CoopTask>> tasks;
    sim::Interleaver il;
    for (int s = 0; s < kSessions; ++s) {
      ctxs.push_back(ms.CreateContext(ddc::Pool::kCompute, 0, s));
      ddc::ExecutionContext* ctx = ctxs.back().get();
      oltp::TxnManager* m = &mgr;
      tasks.push_back(std::make_unique<sim::CoopTask>(
          std::vector<ddc::ExecutionContext*>{ctx},
          [ctx, m, cfg, &results, s] {
            results[static_cast<size_t>(s)] = RunYcsbSession(*ctx, *m, cfg, s);
          },
          // Coarse interleaving: page-sized leaves make descents yield-heavy
          // and every yield is a real ucontext switch, so a fine quantum
          // costs wall-clock without changing the throughput being reported
          // (the correctness suites sweep fine-grained schedules).
          /*quantum=*/16));
      il.Add(tasks.back().get());
    }
    sim::RandomSchedule schedule(/*seed=*/42);
    il.set_schedule(&schedule);
    il.Run();
  }
  Outcome out;
  for (int s = 0; s < kSessions; ++s) {
    out.commits += results[static_cast<size_t>(s)].committed;
    out.aborts += results[static_cast<size_t>(s)].aborted;
    out.gave_up += results[static_cast<size_t>(s)].gave_up;
    out.makespan_ns = std::max(out.makespan_ns, ctxs[static_cast<size_t>(s)]->now());
    out.remote_bytes += ctxs[static_cast<size_t>(s)]->metrics().RemoteMemoryBytes();
  }
  out.content = tree.ContentDigest(*ctx0);
  out.wall_ns = wall.ElapsedNs();
  return out;
}

}  // namespace

int main() {
  bench::PrintBanner(
      "PR8: B+-tree OLTP under OCC — YCSB mixes x pushdown x journal",
      "TELEPORT pushdown-accelerated index probes");

  bool ok = true;
  std::printf("%-8s %-6s %-8s %8s %8s %8s %12s %12s\n", "mix", "probes",
              "journal", "commits", "aborts", "abort%", "makespan",
              "ktxn/s(virt)");
  for (const Mix& mix : kMixes) {
    uint64_t mix_content = 0;
    bool first = true;
    for (const bool push : {false, true}) {
      for (const bool journal : {false, true}) {
        const Outcome o = RunMix(mix, push, journal);
        // Locked shape: content is schedule/pushdown/journal-independent,
        // nothing gives up, and the read-only mix never aborts.
        if (first) {
          mix_content = o.content;
          first = false;
        }
        ok &= o.content == mix_content && o.gave_up == 0;
        if (mix.update == 0.0 && mix.insert == 0.0) ok &= o.aborts == 0;
        const double abort_pct =
            o.commits == 0 ? 0.0
                           : 100.0 * static_cast<double>(o.aborts) /
                                 static_cast<double>(o.commits + o.aborts);
        const double ktps = o.makespan_ns == 0
                                ? 0.0
                                : static_cast<double>(o.commits) * 1e6 /
                                      static_cast<double>(o.makespan_ns);
        std::printf("%-8s %-6s %-8s %8llu %8llu %7.1f%% %10lldns %12.1f\n",
                    mix.name, push ? "push" : "local",
                    journal ? "on" : "off",
                    static_cast<unsigned long long>(o.commits),
                    static_cast<unsigned long long>(o.aborts), abort_pct,
                    static_cast<long long>(o.makespan_ns), ktps);
        bench::EmitBenchRecord(
            {"pr8_oltp",
             std::string(mix.name) + (journal ? "/journal" : ""),
             push ? "push" : "local", o.makespan_ns, o.wall_ns,
             o.remote_bytes, ""});
      }
    }
  }

  std::printf("\nall mixes: content bit-identical across pushdown and "
              "journal settings,\nzero transactions gave up; read-only mix "
              "abort-free: %s\n",
              ok ? "yes" : "VIOLATED");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
