#include "bench/micro.h"

#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rle.h"
#include "common/rng.h"
#include "ddc/memory_system.h"
#include "sim/interleaver.h"

namespace teleport::bench {

namespace {

using ddc::CoherenceMode;
using ddc::ExecutionContext;
using ddc::MemorySystem;
using ddc::VAddr;

/// One simulated application thread: either pure arithmetic (the
/// compute-intensive thread) or random probes over the big region (the
/// memory-intensive thread). Both optionally contend on shared pages.
class UnitTask : public sim::Task {
 public:
  enum class Kind { kCompute, kMemory };

  UnitTask(Kind kind, ExecutionContext* ctx, const MicroConfig& cfg,
           VAddr region, VAddr shared, uint64_t ops_per_unit, uint64_t seed,
           bool upper_half)
      : kind_(kind),
        ctx_(ctx),
        cfg_(cfg),
        region_(region),
        shared_(shared),
        ops_per_unit_(ops_per_unit),
        rng_(seed),
        upper_half_(upper_half),
        contend_with_reads_(cfg.reader_writer &&
                            kind == Kind::kCompute) {}

  Nanos clock() const override { return ctx_->now(); }
  bool done() const override { return units_done_ >= cfg_.accesses; }

  void Step() override {
    const uint64_t page_size = ctx_->memory_system().params().page_size;
    for (int i = 0; i < cfg_.batch && !done(); ++i, ++units_done_) {
      if (kind_ == Kind::kCompute) {
        ctx_->ChargeCpu(ops_per_unit_);
      } else {
        const VAddr addr =
            region_ + rng_.Uniform(cfg_.region_bytes / 8) * 8;
        if (cfg_.write_fraction > 0 && rng_.Bernoulli(cfg_.write_fraction)) {
          ctx_->Store<int64_t>(addr, static_cast<int64_t>(units_done_));
        } else {
          (void)ctx_->Load<int64_t>(addr);
        }
      }
      if (cfg_.contention_rate > 0 && rng_.Bernoulli(cfg_.contention_rate)) {
        // Contended access to a shared page; under false sharing each
        // thread stays in its own half of the page (not actually shared
        // data, but the same page). In reader-writer mode the compute
        // thread only reads.
        const uint64_t page = rng_.Uniform(cfg_.shared_pages);
        uint64_t offset = rng_.Uniform(page_size / 2 / 8) * 8;
        if (cfg_.false_sharing && upper_half_) offset += page_size / 2;
        const VAddr addr = shared_ + page * page_size + offset;
        if (contend_with_reads_) {
          (void)ctx_->Load<int64_t>(addr);
        } else {
          ctx_->Store<int64_t>(addr, 1);
        }
      }
    }
  }

 private:
  Kind kind_;
  ExecutionContext* ctx_;
  const MicroConfig& cfg_;
  VAddr region_;
  VAddr shared_;
  uint64_t ops_per_unit_;
  Rng rng_;
  bool upper_half_;
  bool contend_with_reads_;
  uint64_t units_done_ = 0;
};

/// Wraps one or more body tasks in a pushdown call driven step-by-step, so
/// a concurrent compute-pool thread can interact with the pushed function
/// through the coherence protocol. Mirrors PushdownRuntime's cost sequence.
class PushdownTask : public sim::Task {
 public:
  PushdownTask(MemorySystem* ms, ExecutionContext* caller,
               std::vector<sim::Task*> bodies, MicroScenario scenario,
               VAddr region, uint64_t region_bytes)
      : ms_(ms),
        caller_(caller),
        bodies_(std::move(bodies)),
        scenario_(scenario),
        region_(region),
        region_bytes_(region_bytes) {}

  Nanos clock() const override {
    if (!started_) return caller_->now();
    if (finished_) return caller_->now();
    return CurrentBody()->clock();
  }
  bool done() const override { return finished_; }

  void Step() override {
    if (!started_) {
      Setup();
      started_ = true;
      return;
    }
    sim::Task* body = CurrentBody();
    if (!body->done()) body->Step();
    while (body_index_ < bodies_.size() && bodies_[body_index_]->done()) {
      const size_t finished = body_index_;
      ++body_index_;
      // Bodies share the memory pool's single core: the next one resumes
      // where the previous one left off on the timeline.
      if (body_index_ < bodies_.size() && finished < mem_ctxs_.size() &&
          body_index_ < mem_ctxs_.size()) {
        mem_ctxs_[body_index_]->clock().AdvanceTo(
            mem_ctxs_[finished]->now());
      }
    }
    if (body_index_ >= bodies_.size()) Teardown();
  }

  /// The memory-side contexts the bodies run in must have their clocks
  /// aligned to the post-setup time; Setup() does that through this hook.
  void AddMemContext(ExecutionContext* mem_ctx) {
    mem_ctxs_.push_back(mem_ctx);
  }

 private:
  sim::Task* CurrentBody() const {
    return bodies_[body_index_ < bodies_.size() ? body_index_
                                                : bodies_.size() - 1];
  }

  void Setup() {
    const auto& params = ms_->params();
    uint64_t req_bytes = 192;
    uint64_t resident = 0;
    CoherenceMode mode = CoherenceMode::kNone;
    switch (scenario_) {
      case MicroScenario::kPushCoherence:
      case MicroScenario::kPushPso:
      case MicroScenario::kPushWeakOrdering: {
        const auto pages = ms_->ResidentPages();
        resident = pages.size();
        caller_->AdvanceTime(static_cast<Nanos>(resident) *
                             params.resident_scan_ns);
        req_bytes += RleSizeBytes(RleEncode(pages));
        mode = scenario_ == MicroScenario::kPushCoherence
                   ? CoherenceMode::kMesi
                   : (scenario_ == MicroScenario::kPushPso
                          ? CoherenceMode::kPso
                          : CoherenceMode::kWeakOrdering);
        break;
      }
      case MicroScenario::kPushNoCoherenceSyncmem:
        // Manual pre-synchronization of everything dirty (§4.2).
        ms_->Syncmem(*caller_, 0, ms_->space().used_bytes());
        break;
      case MicroScenario::kPushPerThread:
        // Evict only the pushed thread's memory (Fig 6).
        ms_->FlushRange(*caller_, region_, region_bytes_, /*drop=*/true);
        break;
      case MicroScenario::kPushFullProcess:
        flushed_ = ms_->FlushAllCache(*caller_, /*drop=*/true);
        break;
      default:
        TELEPORT_CHECK(false) << "not a pushdown scenario";
    }
    const Nanos arrive =
        ms_->fabric().SendToMemory(caller_->now(), req_bytes);
    caller_->metrics().net_messages += 1;
    caller_->metrics().net_bytes += req_bytes;
    ms_->BeginPushdownSession(mode);
    const Nanos setup_ns = params.context_fixed_ns +
                           static_cast<Nanos>(resident) * params.pte_clone_ns;
    for (ExecutionContext* mc : mem_ctxs_) {
      mc->clock().Reset(arrive + setup_ns);
    }
  }

  void Teardown() {
    const auto& params = ms_->params();
    ms_->EndPushdownSession();
    Nanos end = 0;
    for (ExecutionContext* mc : mem_ctxs_) {
      if (mc->now() > end) end = mc->now();
    }
    const Nanos resp = ms_->fabric().SendToCompute(
        end + params.context_fixed_ns / 4, 192);
    caller_->metrics().net_messages += 1;
    caller_->metrics().net_bytes += 192;
    caller_->clock().AdvanceTo(resp);
    if (scenario_ == MicroScenario::kPushFullProcess) {
      ms_->BulkRefetch(*caller_, flushed_);
    }
    caller_->metrics().pushdown_calls += 1;
    finished_ = true;
  }

  MemorySystem* ms_;
  ExecutionContext* caller_;
  std::vector<sim::Task*> bodies_;
  size_t body_index_ = 0;
  MicroScenario scenario_;
  VAddr region_;
  uint64_t region_bytes_;
  uint64_t flushed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  std::vector<ExecutionContext*> mem_ctxs_;
};

}  // namespace

std::string_view MicroScenarioToString(MicroScenario s) {
  switch (s) {
    case MicroScenario::kLocal:
      return "Local";
    case MicroScenario::kBaseDdc:
      return "BaseDDC";
    case MicroScenario::kPushFullProcess:
      return "TELEPORT(per process)";
    case MicroScenario::kPushPerThread:
      return "TELEPORT(per thread)";
    case MicroScenario::kPushCoherence:
      return "TELEPORT(coherence)";
    case MicroScenario::kPushPso:
      return "TELEPORT(PSO)";
    case MicroScenario::kPushWeakOrdering:
      return "TELEPORT(relaxed)";
    case MicroScenario::kPushNoCoherenceSyncmem:
      return "TELEPORT(syncmem)";
  }
  return "Unknown";
}

MicroResult RunMicro(const MicroConfig& cfg, MicroScenario scenario) {
  ddc::DdcConfig dc;
  dc.platform = scenario == MicroScenario::kLocal ? ddc::Platform::kLocal
                                                  : ddc::Platform::kBaseDdc;
  dc.compute_cache_bytes = cfg.cache_bytes;
  dc.memory_pool_bytes = cfg.region_bytes * 4 + (64 << 20);
  MemorySystem ms(dc, sim::CostParams::Default(),
                  cfg.region_bytes + (16 << 20));

  const VAddr region = ms.space().Alloc(cfg.region_bytes, "micro.region");
  const uint64_t page_size = ms.params().page_size;
  const VAddr shared =
      ms.space().Alloc(cfg.shared_pages * page_size, "micro.shared");
  ms.SeedData();

  // Warm phase (untimed context): populate the compute cache with region
  // pages and map the shared pages read-only, the state an application
  // would be in when it decides to push down.
  {
    auto warm = ms.CreateContext(ddc::Pool::kCompute);
    Rng wr(cfg.seed + 1);
    const uint64_t warm_accesses = 4 * cfg.cache_bytes / page_size;
    for (uint64_t i = 0; i < warm_accesses; ++i) {
      const VAddr addr = region + wr.Uniform(cfg.region_bytes / 8) * 8;
      if (cfg.write_fraction > 0 && wr.Bernoulli(cfg.write_fraction)) {
        warm->Store<int64_t>(addr, 1);
      } else {
        (void)warm->Load<int64_t>(addr);
      }
    }
    for (uint64_t p = 0; p < cfg.shared_pages; ++p) {
      (void)warm->Load<int64_t>(shared + p * page_size);
    }
  }

  // Auto-size the compute thread so both threads take equal time locally.
  const uint64_t ops_per_unit =
      cfg.compute_ops > 0
          ? cfg.compute_ops / cfg.accesses
          : static_cast<uint64_t>(
                static_cast<double>(ms.params().dram_random_access_ns) /
                ms.params().cpu_ns_per_op);

  MicroResult result;
  std::vector<std::unique_ptr<ExecutionContext>> ctxs;
  auto new_ctx = [&](ddc::Pool pool) {
    ctxs.push_back(ms.CreateContext(pool));
    return ctxs.back().get();
  };

  sim::Interleaver il;
  std::vector<std::unique_ptr<sim::Task>> tasks;

  switch (scenario) {
    case MicroScenario::kLocal:
    case MicroScenario::kBaseDdc: {
      auto* ca = new_ctx(ddc::Pool::kCompute);
      auto* cb = new_ctx(ddc::Pool::kCompute);
      tasks.push_back(std::make_unique<UnitTask>(
          UnitTask::Kind::kCompute, ca, cfg, region, shared, ops_per_unit,
          cfg.seed + 2, /*upper_half=*/false));
      tasks.push_back(std::make_unique<UnitTask>(
          UnitTask::Kind::kMemory, cb, cfg, region, shared, ops_per_unit,
          cfg.seed + 3, /*upper_half=*/true));
      break;
    }
    case MicroScenario::kPushFullProcess: {
      // Both threads migrate; they serialize on the memory pool's single
      // core (§4's naive baseline): the PushdownTask runs body A to
      // completion, then body B resuming at A's finish time.
      auto* caller = new_ctx(ddc::Pool::kCompute);
      auto* ma = new_ctx(ddc::Pool::kMemory);
      auto* mb = new_ctx(ddc::Pool::kMemory);
      auto body_a = std::make_unique<UnitTask>(
          UnitTask::Kind::kCompute, ma, cfg, region, shared, ops_per_unit,
          cfg.seed + 2, false);
      auto body_b = std::make_unique<UnitTask>(
          UnitTask::Kind::kMemory, mb, cfg, region, shared, ops_per_unit,
          cfg.seed + 3, true);
      auto push = std::make_unique<PushdownTask>(
          &ms, caller, std::vector<sim::Task*>{body_a.get(), body_b.get()},
          scenario, region, cfg.region_bytes);
      push->AddMemContext(ma);
      push->AddMemContext(mb);
      tasks.push_back(std::move(body_a));  // owned here; driven via push
      tasks.push_back(std::move(body_b));
      il.Add(push.get());
      tasks.push_back(std::move(push));
      break;
    }
    default: {
      // Compute thread stays; memory thread is pushed down.
      auto* ca = new_ctx(ddc::Pool::kCompute);
      auto* caller = new_ctx(ddc::Pool::kCompute);
      auto* mb = new_ctx(ddc::Pool::kMemory);
      tasks.push_back(std::make_unique<UnitTask>(
          UnitTask::Kind::kCompute, ca, cfg, region, shared, ops_per_unit,
          cfg.seed + 2, false));
      il.Add(tasks.back().get());
      auto body = std::make_unique<UnitTask>(
          UnitTask::Kind::kMemory, mb, cfg, region, shared, ops_per_unit,
          cfg.seed + 3, true);
      auto push = std::make_unique<PushdownTask>(
          &ms, caller, std::vector<sim::Task*>{body.get()}, scenario, region,
          cfg.region_bytes);
      push->AddMemContext(mb);
      il.Add(push.get());
      tasks.push_back(std::move(body));
      tasks.push_back(std::move(push));
      break;
    }
  }

  if (scenario == MicroScenario::kLocal ||
      scenario == MicroScenario::kBaseDdc) {
    for (auto& t : tasks) il.Add(t.get());
  }
  result.time_ns = il.Run();

  // The syncmem variant pays its manual post-synchronization once at the
  // end (flush what the compute thread dirtied meanwhile).
  if (scenario == MicroScenario::kPushNoCoherenceSyncmem) {
    ms.Syncmem(*ctxs.front(), shared, cfg.shared_pages * page_size);
    if (ctxs.front()->now() > result.time_ns) {
      result.time_ns = ctxs.front()->now();
    }
  }

  for (const auto& ctx : ctxs) {
    result.coherence_messages += ctx->metrics().coherence_messages;
    result.net_messages += ctx->metrics().net_messages;
    result.remote_bytes += ctx->metrics().RemoteMemoryBytes();
  }
  return result;
}

}  // namespace teleport::bench
