// Ablation: compute-cache replacement policy vs pushdown. §2.2 observes
// that scan phases "are a poor fit for typical LRU-based caching
// strategies" — but also that no caching strategy rescues the DDC. This
// bench runs Q9 and Q6 under LRU / FIFO / CLOCK caches and compares
// against TELEPORT: the policy moves the needle by percents, pushdown by
// multiples.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
};

}  // namespace

int main() {
  bench::PrintBanner("Ablation: cache replacement policy vs pushdown",
                     "SIGMOD'22 TELEPORT, S2.2 (caching strategies are "
                     "insufficient)");

  constexpr double kSf = 6.0;
  const Case cases[] = {
      {"Q6", "q6", &db::RunQ6},
      {"Q9", "q9", &db::RunQ9},
  };
  const ddc::CachePolicy policies[] = {
      ddc::CachePolicy::kLru, ddc::CachePolicy::kFifo,
      ddc::CachePolicy::kClock};

  bool ok = true;
  for (const Case& c : cases) {
    auto local = bench::MakeDb(ddc::Platform::kLocal, kSf);
    const db::QueryResult r_local = c.fn(*local.ctx, *local.database, {});
    std::printf("%s (local %.1f ms)\n", c.label, ToMillis(r_local.total_ns));

    Nanos best_policy = 0, worst_policy = 0;
    for (const ddc::CachePolicy policy : policies) {
      // The policy lives on DdcConfig; construct the deployment directly.
      db::TpchConfig cfg;
      cfg.scale_factor = kSf;
      ddc::DdcConfig dc;
      dc.platform = ddc::Platform::kBaseDdc;
      const uint64_t bytes = db::EstimateTpchBytes(cfg);
      dc.compute_cache_bytes = static_cast<uint64_t>(0.02 * bytes);
      dc.memory_pool_bytes = bytes * 8;
      dc.cache_policy = policy;
      ddc::MemorySystem ms(dc, sim::CostParams::Default(), bytes * 12);
      auto database = db::GenerateTpch(&ms, cfg);
      auto ctx = ms.CreateContext(ddc::Pool::kCompute);
      const db::QueryResult r = c.fn(*ctx, *database, {});
      ok = ok && r.checksum == r_local.checksum;
      if (best_policy == 0 || r.total_ns < best_policy) {
        best_policy = r.total_ns;
      }
      if (r.total_ns > worst_policy) worst_policy = r.total_ns;
      std::printf("  base DDC, %-5s cache %12.1f ms  (%.1fx local)\n",
                  std::string(CachePolicyToString(policy)).c_str(),
                  ToMillis(r.total_ns),
                  static_cast<double>(r.total_ns) /
                      static_cast<double>(r_local.total_ns));
    }

    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
    db::QueryOptions qopts;
    qopts.runtime = tele.runtime.get();
    qopts.push_ops = db::DefaultTeleportOps(c.query);
    const db::QueryResult r_tele = c.fn(*tele.ctx, *tele.database, qopts);
    ok = ok && r_tele.checksum == r_local.checksum;
    std::printf("  TELEPORT (LRU cache)    %12.1f ms  (%.1fx local)\n\n",
                ToMillis(r_tele.total_ns),
                static_cast<double>(r_tele.total_ns) /
                    static_cast<double>(r_local.total_ns));
    // The claim: policy spread is small relative to the pushdown win.
    const double policy_spread = static_cast<double>(worst_policy) /
                                 static_cast<double>(best_policy);
    const double pushdown_gain = static_cast<double>(best_policy) /
                                 static_cast<double>(r_tele.total_ns);
    ok = ok && pushdown_gain > policy_spread;
  }
  std::printf("shape (no replacement policy approaches the pushdown win): "
              "%s\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
