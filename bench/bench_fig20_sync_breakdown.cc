// Figures 19 and 20: the cost components of a pushdown call, and the
// factor analysis of eager vs on-demand data synchronization with a 1 GB
// (scaled) dirty compute cache. Paper: eager sync ~3.5s per call vs ~0.3s
// on-demand (user-function time excluded); on-demand pays a little more in
// user-context setup (per-PTE checks) and wins everywhere else.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT
using tp::PushdownBreakdown;
using tp::PushdownFlags;
using tp::SyncStrategy;

namespace {

/// Builds a deployment whose compute cache (the paper's 1 GB, scaled to
/// 32 MiB) is full of dirty pages, then issues one pushdown and returns
/// the runtime's breakdown. The pushed function touches a small slice of
/// pool data so the user-function term stays negligible, as in Fig 20.
PushdownBreakdown MeasureOneCall(SyncStrategy sync, const char* label) {
  ddc::DdcConfig dc;
  dc.platform = ddc::Platform::kBaseDdc;
  dc.compute_cache_bytes = 32 << 20;
  dc.memory_pool_bytes = 512 << 20;
  ddc::MemorySystem ms(dc, sim::CostParams::Default(), 256 << 20);
  sim::Tracer tracer;
  ms.set_tracer(&tracer);
  const ddc::VAddr working = ms.space().Alloc(64 << 20, "working");
  const ddc::VAddr remote = ms.space().Alloc(1 << 20, "pool_slice");
  ms.SeedData();

  tp::PushdownRuntime runtime(&ms);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  // Dirty the whole cache, the state a write-heavy application is in when
  // it decides to push down.
  const uint64_t page = ms.params().page_size;
  for (uint64_t off = 0; off < (64ull << 20); off += page) {
    ctx->Store<int64_t>(working + off, 1);
  }
  ctx->clock().Reset(0);

  PushdownFlags flags;
  flags.sync = sync;
  bench::WallTimer wall;
  const Status st = runtime.Call(
      *ctx,
      [&](ddc::ExecutionContext& mem_ctx) {
        for (uint64_t off = 0; off < (1u << 20); off += page) {
          (void)mem_ctx.Load<int64_t>(remote + off);
        }
        return Status::OK();
      },
      flags);
  TELEPORT_CHECK(st.ok());
  const Nanos call_wall = wall.ElapsedNs();
  const PushdownBreakdown bd = runtime.last_breakdown();
  const std::string trace =
      bench::MaybeWriteTrace(tracer, std::string("fig20_") + label);
  bench::EmitBenchRecord({"fig20", label, "TELEPORT", bd.Total(), call_wall,
                          ctx->metrics().RemoteMemoryBytes(), trace});
  return bd;
}

void PrintBreakdown(const char* label, const PushdownBreakdown& bd) {
  std::printf("%-14s pre=%.1fms req=%.3fms setup=%.1fms exec=%.2fms "
              "online=%.2fms resp=%.3fms post=%.1fms  total=%.1fms\n",
              label, ToMillis(bd.pre_sync_ns),
              ToMillis(bd.request_transfer_ns), ToMillis(bd.context_setup_ns),
              ToMillis(bd.function_exec_ns), ToMillis(bd.online_sync_ns),
              ToMillis(bd.response_transfer_ns), ToMillis(bd.post_sync_ns),
              ToMillis(bd.Total()));
}

}  // namespace

int main() {
  bench::PrintBanner("Figures 19+20: pushdown cost components; eager vs "
                     "on-demand sync",
                     "SIGMOD'22 TELEPORT, Figs 19 & 20 (S7.5)");

  // Figure 19: the component taxonomy.
  std::printf("Fig 19 components of a pushdown call (determining factors):\n"
              "  1 pre-pushdown sync      <- sync method, cache size\n"
              "  2 request transfer       <- message size, network\n"
              "  3 user context setup     <- sync method, cache size\n"
              "  4 function exec + online sync <- user fn; method, cache\n"
              "  5 response transfer      <- message size, network\n"
              "  6 post-pushdown sync     <- sync method, cache size\n\n");

  const PushdownBreakdown eager =
      MeasureOneCall(SyncStrategy::kEager, "eager");
  const PushdownBreakdown on_demand =
      MeasureOneCall(SyncStrategy::kOnDemand, "on_demand");
  PrintBreakdown("eager sync", eager);
  PrintBreakdown("on-demand", on_demand);

  // Exclude the user function term, as the paper does.
  const Nanos eager_overhead = eager.Total() - eager.function_exec_ns;
  const Nanos ondemand_overhead =
      on_demand.Total() - on_demand.function_exec_ns;
  const double ratio = static_cast<double>(eager_overhead) /
                       static_cast<double>(ondemand_overhead);
  std::printf("\n");
  bench::PrintComparison("eager / on-demand overhead ratio", 3500.0 / 300.0,
                         ratio);
  const bool shape =
      ratio > 3.0 &&
      eager.pre_sync_ns > 10 * on_demand.pre_sync_ns &&
      eager.post_sync_ns > on_demand.post_sync_ns &&
      on_demand.context_setup_ns > eager.context_setup_ns;
  std::printf("\nshape (on-demand ~an order of magnitude cheaper; its only\n"
              "extra cost is context setup): %s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
