// Figure 7: false sharing between the compute-pool thread and the pushed
// thread — they write disjoint halves of the same pages, so the default
// coherence protocol ping-pongs. Paper: with false sharing the default
// coherence reaches only 4.6x over the base DDC, while disabling coherence
// and synchronizing manually with syncmem restores the 11x of Fig 6.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro.h"

using namespace teleport;  // NOLINT
using bench::MicroConfig;
using bench::MicroResult;
using bench::MicroScenario;

int main() {
  bench::PrintBanner("Figure 7: manual syncmem vs coherence under false "
                     "sharing",
                     "SIGMOD'22 TELEPORT, Fig 7 (S4.2)");

  MicroConfig cfg;
  cfg.region_bytes = 64 << 20;
  cfg.cache_bytes = 2 << 20;
  cfg.accesses = 150'000;
  cfg.write_fraction = 0.3;
  cfg.false_sharing = true;
  cfg.contention_rate = 0.02;  // frequent writes to falsely-shared pages
  cfg.shared_pages = 8;

  const MicroResult local = RunMicro(cfg, MicroScenario::kLocal);
  const MicroResult base = RunMicro(cfg, MicroScenario::kBaseDdc);
  const MicroResult coherent = RunMicro(cfg, MicroScenario::kPushCoherence);
  const MicroResult syncmem =
      RunMicro(cfg, MicroScenario::kPushNoCoherenceSyncmem);

  auto speedup = [&](const MicroResult& r) {
    return static_cast<double>(base.time_ns) / static_cast<double>(r.time_ns);
  };
  std::printf("%-24s %12s %10s %10s %14s\n", "configuration", "time (ms)",
              "speedup", "paper", "coherence msgs");
  std::printf("%-24s %12.1f %10s %10s %14llu\n", "Local",
              ToMillis(local.time_ns), "-", "-",
              static_cast<unsigned long long>(local.coherence_messages));
  std::printf("%-24s %12.1f %10s %10s %14llu\n", "BaseDDC",
              ToMillis(base.time_ns), "-", "-",
              static_cast<unsigned long long>(base.coherence_messages));
  std::printf("%-24s %12.1f %9.1fx %9.1fx %14llu\n", "TELEPORT(coherence)",
              ToMillis(coherent.time_ns), speedup(coherent), 4.6,
              static_cast<unsigned long long>(coherent.coherence_messages));
  std::printf("%-24s %12.1f %9.1fx %9.1fx %14llu\n", "TELEPORT(syncmem)",
              ToMillis(syncmem.time_ns), speedup(syncmem), 11.0,
              static_cast<unsigned long long>(syncmem.coherence_messages));

  // Shape: false sharing makes the default protocol chatter; manual
  // syncmem eliminates the ping-pong and wins.
  const bool shape = speedup(syncmem) > speedup(coherent) * 1.2 &&
                     coherent.coherence_messages >
                         10 * syncmem.coherence_messages;
  std::printf("\nshape (syncmem beats default coherence when false sharing "
              "occurs): %s\n",
              shape ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return shape ? 0 : 1;
}
