// Figure 11: the flexibility of TELEPORT — the operators pushed down in
// each system and how little code each took. The paper reports, for every
// operator, the lines changed in the host system and the size of the
// pushed function. We print the paper's numbers next to this repo's
// equivalents: pushdown here is the same "selective wrapping of existing
// function calls" (one runtime.Call around an operator kernel), and the
// pushed code is the kernel itself.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

struct InventoryRow {
  const char* system;
  const char* op;
  const char* functionality;
  int paper_change;
  int paper_pushed;
  const char* repo_kernel;  // the function that executes in the pool here
};

constexpr InventoryRow kRows[] = {
    {"MonetDB (400K LoC)", "Projection",
     "get a subset of columns from records", 117, 51,
     "db::ProjectGather"},
    {"", "Aggregation", "apply an aggregate function over tuples", 214, 60,
     "db::AggrSum / db::GroupSumDense"},
    {"", "Selection", "select tuples with filters to a temp table", 302, 58,
     "db::SelectCompare / db::SelectStrContains"},
    {"", "HashJoin", "scan outer, probe hash index, emit results", 75, 42,
     "db::HashBuild + db::HashProbe"},
    {"PowerGraph (150K LoC)", "Finalize",
     "partition and shuffle graph among workers", 77, 52,
     "graph::RunGas finalize phase"},
    {"", "Scatter", "exchange and combine messages between vertices", 82, 39,
     "graph::RunGas scatter phase"},
    {"", "Gather", "aggregate messages, apply a user function", 82, 39,
     "graph::RunGas gather phase"},
    {"Phoenix (2K LoC)", "MapShuffle",
     "shuffle map key-values to reduce buffers", 173, 28,
     "mr::RunPipeline map-shuffle phase"},
};

}  // namespace

int main() {
  bench::PrintBanner("Figure 11: pushdown inventory and code-change sizes",
                     "SIGMOD'22 TELEPORT, Fig 11 (table)");

  std::printf("%-22s %-12s %-44s %7s %7s\n", "system", "operator",
              "functionality", "change", "pushed");
  for (const InventoryRow& r : kRows) {
    std::printf("%-22s %-12s %-44s %7d %7d\n", r.system, r.op,
                r.functionality, r.paper_change, r.paper_pushed);
    std::printf("%-22s %-12s -> this repo: wrapped kernel %s\n", "", "",
                r.repo_kernel);
  }
  std::printf(
      "\nIn this reproduction every pushdown is literally one wrapper:\n"
      "  runtime->Call(ctx, [&](ExecutionContext& mem) { kernel(mem, ...); "
      "})\n"
      "(see db/query.cc PlanExecutor::Run, graph/engine.cc "
      "PhaseRunner::Run,\n"
      "mr/engine.cc MrRunner::Run) — 3-6 lines per operator, matching the\n"
      "paper's claim that changes are negligible relative to each system.\n");
  bench::PrintFooter();
  return 0;
}
