// Ablation: OS-level prefetching vs compute pushdown. §2.2 argues that
// "OS-level optimizations in existing DDC platforms such as caching and
// prefetching ... on their own, are insufficient". This bench enables a
// LegoOS-style sequential prefetcher in the compute-pool cache at depths
// 0 / 4 / 16 and compares against TELEPORT: prefetching recovers much of
// the loss of the sequential-scan query (Q6) but little of the
// random-access join query (Q9), and TELEPORT beats every prefetch depth.

#include <cstdio>

#include "bench/bench_util.h"

using namespace teleport;  // NOLINT

namespace {

struct Case {
  const char* label;
  const char* query;
  db::QueryResult (*fn)(ddc::ExecutionContext&, const db::TpchDatabase&,
                        const db::QueryOptions&);
};

}  // namespace

int main() {
  bench::PrintBanner("Ablation: sequential prefetching vs pushdown",
                     "SIGMOD'22 TELEPORT, S2.2 claim (prefetching is "
                     "insufficient)");

  constexpr double kSf = 6.0;
  const Case cases[] = {
      {"Q6 (sequential scans)", "q6", &db::RunQ6},
      {"Q9 (join-heavy)", "q9", &db::RunQ9},
  };
  const int depths[] = {0, 4, 16};

  bool ok = true;
  for (const Case& c : cases) {
    auto local = bench::MakeDb(ddc::Platform::kLocal, kSf);
    const db::QueryResult r_local = c.fn(*local.ctx, *local.database, {});

    std::printf("%s (local %.1f ms)\n", c.label, ToMillis(r_local.total_ns));
    Nanos base_no_prefetch = 0;
    Nanos best_prefetch = 0;
    for (const int depth : depths) {
      bench::DeployOptions opts;
      opts.prefetch_pages = depth;
      auto base = bench::MakeDb(ddc::Platform::kBaseDdc, kSf, opts);
      const db::QueryResult r = c.fn(*base.ctx, *base.database, {});
      ok = ok && r.checksum == r_local.checksum;
      if (depth == 0) base_no_prefetch = r.total_ns;
      best_prefetch = r.total_ns;
      std::printf("  base DDC, prefetch depth %-3d %10.1f ms  (%.1fx local, "
                  "%.2fx vs no prefetch)\n",
                  depth, ToMillis(r.total_ns),
                  static_cast<double>(r.total_ns) /
                      static_cast<double>(r_local.total_ns),
                  static_cast<double>(base_no_prefetch) /
                      static_cast<double>(r.total_ns));
    }

    auto tele = bench::MakeDb(ddc::Platform::kBaseDdc, kSf);
    db::QueryOptions qopts;
    qopts.runtime = tele.runtime.get();
    qopts.push_ops = db::DefaultTeleportOps(c.query);
    const db::QueryResult r_tele = c.fn(*tele.ctx, *tele.database, qopts);
    ok = ok && r_tele.checksum == r_local.checksum;
    std::printf("  TELEPORT (no prefetch)       %10.1f ms  (%.1fx local)\n",
                ToMillis(r_tele.total_ns),
                static_cast<double>(r_tele.total_ns) /
                    static_cast<double>(r_local.total_ns));
    // The claim: even the deepest prefetcher leaves TELEPORT ahead.
    ok = ok && r_tele.total_ns < best_prefetch;
    std::printf("\n");
  }
  std::printf("shape (prefetching helps but pushdown still wins): %s\n",
              ok ? "holds" : "DEVIATES");
  bench::PrintFooter();
  return ok ? 0 : 1;
}
