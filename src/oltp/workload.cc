#include "oltp/workload.h"

#include <cmath>

#include "common/logging.h"

namespace teleport::oltp {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  TELEPORT_CHECK(n >= 1);
  zetan_ = 0;
  for (uint64_t i = 1; i <= n_; ++i) {
    zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfGenerator::Sample(double u) const {
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < zeta2_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

void PreloadTable(ddc::ExecutionContext& ctx, BTree& tree, uint64_t keyspace) {
  for (uint64_t key = 0; key < keyspace; ++key) {
    tree.Insert(ctx, key, Mix64(key),
                RecordMeta::Pack(/*version=*/0, /*present=*/true));
  }
}

namespace {

enum class OpKind { kRead, kUpdate, kInsert, kScan };

OpKind PickOp(const YcsbConfig& cfg, double p) {
  if (p < cfg.read_fraction) return OpKind::kRead;
  if (p < cfg.read_fraction + cfg.update_fraction) return OpKind::kUpdate;
  if (p < cfg.read_fraction + cfg.update_fraction + cfg.insert_fraction) {
    return OpKind::kInsert;
  }
  return OpKind::kScan;
}

}  // namespace

YcsbResult RunYcsbSession(ddc::ExecutionContext& ctx, TxnManager& mgr,
                          const YcsbConfig& cfg, int session) {
  YcsbResult out;
  const ZipfGenerator zipf(cfg.keyspace, cfg.zipfian ? cfg.zipf_theta : 0.5);
  for (int t = 0; t < cfg.txns_per_session; ++t) {
    const sim::Metrics before = ctx.metrics();
    const Nanos start = ctx.now();
    int attempts = 0;
    for (;;) {
      ++attempts;
      // Reseeded per attempt from (seed, session, txn) only: a retry
      // replays the identical op stream.
      Rng rng(Mix64(cfg.seed ^ Mix64((static_cast<uint64_t>(session) << 32) |
                                     static_cast<uint64_t>(t))));
      Txn txn(&mgr, session);
      uint64_t attempt_scan_records = 0;
      uint64_t attempt_scan_digest = 0;
      for (int op = 0; op < cfg.ops_per_txn; ++op) {
        const OpKind kind = PickOp(cfg, rng.NextDouble());
        const uint64_t rank = cfg.zipfian
                                  ? zipf.Sample(rng.NextDouble())
                                  : rng.Uniform(cfg.keyspace);
        // Popular ranks hash to scattered keys (standard YCSB trick) so a
        // zipfian hotspot is not also a B+-tree locality hotspot.
        const uint64_t key = Mix64(rank) % cfg.keyspace;
        switch (kind) {
          case OpKind::kRead:
            txn.Read(ctx, key);
            break;
          case OpKind::kUpdate:
            txn.Update(ctx, key, (rng.Next() & 0xffff) | 1);
            break;
          case OpKind::kInsert: {
            // Keys unique per (session, txn, op): blind inserts commute.
            const uint64_t fresh =
                cfg.keyspace +
                (static_cast<uint64_t>(session) *
                     static_cast<uint64_t>(cfg.txns_per_session) +
                 static_cast<uint64_t>(t)) *
                    static_cast<uint64_t>(cfg.ops_per_txn) +
                static_cast<uint64_t>(op);
            txn.Put(fresh, Mix64(fresh ^ cfg.seed));
            break;
          }
          case OpKind::kScan: {
            const Txn::ScanResult sr = txn.Scan(ctx, key, cfg.scan_length);
            attempt_scan_records += sr.records;
            attempt_scan_digest ^= sr.digest;
            break;
          }
        }
      }
      if (txn.Commit(ctx)) {
        ++out.committed;
        out.commit_digest ^=
            Mix64((static_cast<uint64_t>(session) << 32) |
                  static_cast<uint64_t>(t));
        out.scan_records += attempt_scan_records;
        out.scan_digest ^= attempt_scan_digest;
        break;
      }
      ++out.aborted;
      if (cfg.max_retries > 0 && attempts > cfg.max_retries) {
        ++out.gave_up;
        break;
      }
      ++ctx.metrics().txn_retries;
    }
    if (cfg.scopes != nullptr) {
      cfg.scopes->Record(cfg.base_tenant, ctx.metrics().Diff(before),
                         ctx.now() - start);
    }
  }
  return out;
}

}  // namespace teleport::oltp
