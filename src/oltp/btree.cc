#include "oltp/btree.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace teleport::oltp {

namespace {

/// splitmix64 finalizer: digest folds and derived values.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kMetaRoot = 0;
constexpr uint64_t kMetaHeight = 8;
constexpr uint64_t kMetaBump = 16;
constexpr uint64_t kMetaFreeHead = 24;

}  // namespace

BTree::BTree(ddc::MemorySystem* ms, ddc::ExecutionContext& ctx,
             const BTreeOptions& opts)
    : ms_(ms), opts_(opts), page_(ms->space().page_size()) {
  TELEPORT_CHECK(page_ >= kEntries + 2 * kRecordStride)
      << "page too small for a B+-tree node";
  const int derived_leaf = static_cast<int>((page_ - kEntries) / kRecordStride);
  const int derived_inner = static_cast<int>((page_ - kEntries) / kInnerStride);
  leaf_cap_ = opts_.max_leaf_entries > 0
                  ? std::min(opts_.max_leaf_entries, derived_leaf)
                  : derived_leaf;
  inner_cap_ = opts_.max_inner_entries > 0
                   ? std::min(opts_.max_inner_entries, derived_inner)
                   : derived_inner;
  TELEPORT_CHECK(leaf_cap_ >= 4 && inner_cap_ >= 4)
      << "entry capacities too small to keep split/merge invariants";
  if (opts_.push_probes) {
    TELEPORT_CHECK(opts_.runtime != nullptr)
        << "push_probes requires a PushdownRuntime";
  }
  if (opts_.runtime != nullptr) {
    kernel_probe_leaf_ = opts_.runtime->RegisterKernel("ProbeLeaf");
    kernel_traverse_inner_ = opts_.runtime->RegisterKernel("TraverseInner");
    // Probes must degrade, not fail, when the fabric misbehaves (§3.2).
    opts_.probe_flags.fallback = tp::FallbackPolicy::kLocal;
  }
  meta_ = ms_->space().Alloc(page_, "btree.meta");
  arena_bytes_ = opts_.arena_pages * page_;
  arena_ = ms_->space().Alloc(arena_bytes_, "btree.arena");
  ctx.Store<uint64_t>(meta_ + kMetaBump, 0);
  ctx.Store<uint64_t>(meta_ + kMetaFreeHead, 0);
  const ddc::VAddr root = AllocNode(ctx, /*leaf=*/true);
  ctx.Store<uint64_t>(meta_ + kMetaRoot, root);
  ctx.Store<uint64_t>(meta_ + kMetaHeight, 1);
}

ddc::VAddr BTree::AllocNode(ddc::ExecutionContext& ctx, bool leaf) {
  ddc::VAddr node = ctx.Load<uint64_t>(meta_ + kMetaFreeHead);
  if (node != 0) {
    ctx.Store<uint64_t>(meta_ + kMetaFreeHead,
                        ctx.Load<uint64_t>(node + kHdrNext));
  } else {
    const uint64_t off = ctx.Load<uint64_t>(meta_ + kMetaBump);
    TELEPORT_CHECK(off + page_ <= arena_bytes_) << "btree arena exhausted";
    ctx.Store<uint64_t>(meta_ + kMetaBump, off + page_);
    node = arena_ + off;
  }
  // Fresh nodes are fully scrubbed so no stale key can ever re-match at a
  // recycled slot address.
  ctx.Fill<uint64_t>(node, 0, page_ / 8);
  ctx.Store<uint32_t>(node + kHdrIsLeaf, leaf ? 1 : 0);
  return node;
}

void BTree::FreeNode(ddc::ExecutionContext& ctx, ddc::VAddr node) {
  ctx.Fill<uint64_t>(node, 0, page_ / 8);  // scrub dead copies
  ctx.Store<uint64_t>(node + kHdrNext,
                      ctx.Load<uint64_t>(meta_ + kMetaFreeHead));
  ctx.Store<uint64_t>(meta_ + kMetaFreeHead, node);
}

void BTree::BeginWrite(ddc::ExecutionContext& ctx, ddc::VAddr node) {
  const uint64_t v = ctx.Load<uint64_t>(node + kHdrVersion);
  TELEPORT_DCHECK((v & 1) == 0) << "nested structural writer on one node";
  ctx.Store<uint64_t>(node + kHdrVersion, v + 1);
}

void BTree::EndWrite(ddc::ExecutionContext& ctx, ddc::VAddr node) {
  const uint64_t v = ctx.Load<uint64_t>(node + kHdrVersion);
  TELEPORT_DCHECK((v & 1) == 1);
  ctx.Store<uint64_t>(node + kHdrVersion, v + 1);
}

BTree::NodeView BTree::ReadNode(ddc::ExecutionContext& ctx,
                                ddc::VAddr node) const {
  NodeView out;
  for (;;) {
    const uint64_t v0 = ctx.Load<uint64_t>(node + kHdrVersion);
    if ((v0 & 1) != 0) {  // structural writer mid-flight: retry
      ctx.ChargeCpu(1);
      continue;
    }
    const uint32_t count = ctx.Load<uint32_t>(node + kHdrCount);
    const uint32_t leaf = ctx.Load<uint32_t>(node + kHdrIsLeaf);
    const uint64_t next = ctx.Load<uint64_t>(node + kHdrNext);
    out.is_leaf = leaf != 0;
    out.count = static_cast<int>(count);
    out.next = next;
    const size_t words =
        static_cast<size_t>(count) * (leaf != 0 ? 4 : 2);
    out.words.resize(words);
    if (words > 0) {
      ctx.LoadSpan<uint64_t>(node + kEntries, out.words.data(), words);
    }
    const uint64_t v1 = ctx.Load<uint64_t>(node + kHdrVersion);
    if (v1 == v0) return out;
    ctx.ChargeCpu(1);  // raced a structural writer: retry
  }
}

int BTree::LowerBound(const NodeView& v, uint64_t key) const {
  const int stride = v.stride_words();
  int lo = 0;
  int hi = v.count;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (v.words[static_cast<size_t>(mid * stride)] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTree::ChildIndex(const NodeView& v, uint64_t key) const {
  // Last separator <= key; entry 0's separator acts as -infinity.
  int i = LowerBound(v, key);
  if (i < v.count && v.key(i) == key) return i;
  return i > 0 ? i - 1 : 0;
}

ddc::VAddr BTree::DescendToLeaf(ddc::ExecutionContext& ctx,
                                uint64_t key) const {
  ddc::VAddr node = ctx.Load<uint64_t>(meta_ + kMetaRoot);
  for (;;) {
    const NodeView v = ReadNode(ctx, node);
    if (v.is_leaf) return node;
    TELEPORT_CHECK(v.count > 0) << "empty inner node";
    node = v.words[static_cast<size_t>(ChildIndex(v, key) * 2 + 1)];
  }
}

ddc::VAddr BTree::FindRecord(ddc::ExecutionContext& ctx, uint64_t key) {
  ddc::VAddr node = DescendToLeaf(ctx, key);
  for (;;) {
    const NodeView v = ReadNode(ctx, node);
    // B-link hop: a concurrent split may have moved the key to the right
    // sibling between the descend and this snapshot.
    if (v.count > 0 && key > v.key(v.count - 1) && v.next != 0) {
      node = v.next;
      continue;
    }
    const int idx = LowerBound(v, key);
    if (idx < v.count && v.key(idx) == key) {
      return node + kEntries + static_cast<uint64_t>(idx) * kRecordStride;
    }
    return 0;
  }
}

ddc::VAddr BTree::ProbeRecord(ddc::ExecutionContext& ctx, uint64_t key) {
  if (!opts_.push_probes) return FindRecord(ctx, key);
  ddc::VAddr addr = 0;
  tp::PushdownFlags flags = opts_.probe_flags;
  flags.kernel = kernel_probe_leaf_;
  const Status st = opts_.runtime->Call(
      ctx,
      [&](ddc::ExecutionContext& mem_ctx) -> Status {
        addr = FindRecord(mem_ctx, key);
        return Status::OK();
      },
      flags);
  if (!st.ok()) return FindRecord(ctx, key);  // degrade to the local path
  return addr;
}

ddc::VAddr BTree::FindLeaf(ddc::ExecutionContext& ctx, uint64_t key) {
  if (!opts_.push_probes) return DescendToLeaf(ctx, key);
  ddc::VAddr leaf = 0;
  tp::PushdownFlags flags = opts_.probe_flags;
  flags.kernel = kernel_traverse_inner_;
  const Status st = opts_.runtime->Call(
      ctx,
      [&](ddc::ExecutionContext& mem_ctx) -> Status {
        leaf = DescendToLeaf(mem_ctx, key);
        return Status::OK();
      },
      flags);
  if (!st.ok()) return DescendToLeaf(ctx, key);
  return leaf;
}

BTree::SplitResult BTree::InsertRec(ddc::ExecutionContext& ctx,
                                    ddc::VAddr node, uint64_t depth,
                                    uint64_t key, ddc::VAddr* slot) {
  NodeView v = ReadNode(ctx, node);
  if (!v.is_leaf) {
    const int ci = ChildIndex(v, key);
    const ddc::VAddr child = v.words[static_cast<size_t>(ci * 2 + 1)];
    const SplitResult sr = InsertRec(ctx, child, depth + 1, key, slot);
    if (sr.right == 0) return {};
    // Insert (sep, right) after the child that split.
    v = ReadNode(ctx, node);  // re-read: the child insert may have split us? no
    std::vector<uint64_t> words = v.words;
    const size_t at = static_cast<size_t>(ci + 1) * 2;
    words.insert(words.begin() + static_cast<ptrdiff_t>(at),
                 {sr.sep, sr.right});
    const int newcount = v.count + 1;
    if (newcount <= inner_cap_) {
      BeginWrite(ctx, node);
      ctx.StoreSpan<uint64_t>(node + kEntries + at * 8, words.data() + at,
                              words.size() - at);
      ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(newcount));
      EndWrite(ctx, node);
      return {};
    }
    // Split the inner node.
    const int mid = newcount / 2;
    const ddc::VAddr right = AllocNode(ctx, /*leaf=*/false);
    BeginWrite(ctx, right);
    ctx.StoreSpan<uint64_t>(right + kEntries,
                            words.data() + static_cast<size_t>(mid) * 2,
                            static_cast<size_t>(newcount - mid) * 2);
    ctx.Store<uint32_t>(right + kHdrCount,
                        static_cast<uint32_t>(newcount - mid));
    EndWrite(ctx, right);
    BeginWrite(ctx, node);
    ctx.StoreSpan<uint64_t>(node + kEntries, words.data(),
                            static_cast<size_t>(mid) * 2);
    ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(mid));
    // Scrub the vacated region: stale separators must not survive.
    ctx.Fill<uint64_t>(node + kEntries + static_cast<uint64_t>(mid) * 16, 0,
                       static_cast<uint64_t>(v.count - mid) * 2);
    EndWrite(ctx, node);
    ++splits_;
    ++ctx.metrics().btree_splits;
    return {words[static_cast<size_t>(mid) * 2], right};
  }
  // Leaf.
  int idx = LowerBound(v, key);
  if (idx < v.count && v.key(idx) == key) {
    *slot = node + kEntries + static_cast<uint64_t>(idx) * kRecordStride;
    return {};
  }
  std::vector<uint64_t> words = v.words;
  words.insert(words.begin() + static_cast<ptrdiff_t>(idx) * 4,
               {key, 0, RecordMeta::Pack(0, false), 0});
  const int newcount = v.count + 1;
  if (newcount <= leaf_cap_) {
    BeginWrite(ctx, node);
    ctx.StoreSpan<uint64_t>(node + kEntries + static_cast<uint64_t>(idx) * 32,
                            words.data() + static_cast<size_t>(idx) * 4,
                            words.size() - static_cast<size_t>(idx) * 4);
    ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(newcount));
    EndWrite(ctx, node);
    *slot = node + kEntries + static_cast<uint64_t>(idx) * kRecordStride;
    return {};
  }
  // Split the leaf.
  const int mid = newcount / 2;
  const ddc::VAddr right = AllocNode(ctx, /*leaf=*/true);
  BeginWrite(ctx, right);
  ctx.StoreSpan<uint64_t>(right + kEntries,
                          words.data() + static_cast<size_t>(mid) * 4,
                          static_cast<size_t>(newcount - mid) * 4);
  ctx.Store<uint32_t>(right + kHdrCount, static_cast<uint32_t>(newcount - mid));
  ctx.Store<uint64_t>(right + kHdrNext, v.next);
  EndWrite(ctx, right);
  BeginWrite(ctx, node);
  ctx.StoreSpan<uint64_t>(node + kEntries, words.data(),
                          static_cast<size_t>(mid) * 4);
  ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(mid));
  ctx.Store<uint64_t>(node + kHdrNext, right);
  // Scrub moved-out entries so stale record addresses cannot re-match.
  ctx.Fill<uint64_t>(node + kEntries + static_cast<uint64_t>(mid) * 32, 0,
                     static_cast<uint64_t>(v.count - mid) * 4);
  EndWrite(ctx, node);
  ++splits_;
  ++ctx.metrics().btree_splits;
  *slot = idx < mid
              ? node + kEntries + static_cast<uint64_t>(idx) * kRecordStride
              : right + kEntries +
                    static_cast<uint64_t>(idx - mid) * kRecordStride;
  return {words[static_cast<size_t>(mid) * 4], right};
}

ddc::VAddr BTree::InsertSlot(ddc::ExecutionContext& ctx, uint64_t key) {
  ddc::VAddr slot = 0;
  const ddc::VAddr root = ctx.Load<uint64_t>(meta_ + kMetaRoot);
  const SplitResult sr = InsertRec(ctx, root, 0, key, &slot);
  if (sr.right != 0) {
    const ddc::VAddr nr = AllocNode(ctx, /*leaf=*/false);
    BeginWrite(ctx, nr);
    const uint64_t entries[4] = {0, root, sr.sep, sr.right};
    ctx.StoreSpan<uint64_t>(nr + kEntries, entries, 4);
    ctx.Store<uint32_t>(nr + kHdrCount, 2);
    EndWrite(ctx, nr);
    ctx.Store<uint64_t>(meta_ + kMetaRoot, nr);
    ctx.Store<uint64_t>(meta_ + kMetaHeight,
                        ctx.Load<uint64_t>(meta_ + kMetaHeight) + 1);
  }
  TELEPORT_CHECK(slot != 0);
  return slot;
}

bool BTree::Insert(ddc::ExecutionContext& ctx, uint64_t key, uint64_t value,
                   uint64_t meta) {
  const ddc::VAddr slot = InsertSlot(ctx, key);
  const bool existed = RecordMeta::Present(ctx.Load<uint64_t>(slot + 16));
  ctx.Store<uint64_t>(slot + 8, value);
  ctx.Store<uint64_t>(slot + 16, meta);
  return !existed;
}

bool BTree::DeleteRec(ddc::ExecutionContext& ctx, ddc::VAddr node,
                      uint64_t depth, uint64_t key, bool* found) {
  const NodeView v = ReadNode(ctx, node);
  if (v.is_leaf) {
    const int idx = LowerBound(v, key);
    if (idx >= v.count || v.key(idx) != key) return false;
    *found = true;
    std::vector<uint64_t> words = v.words;
    words.erase(words.begin() + static_cast<ptrdiff_t>(idx) * 4,
                words.begin() + static_cast<ptrdiff_t>(idx + 1) * 4);
    BeginWrite(ctx, node);
    if (!words.empty() && static_cast<size_t>(idx) * 4 < words.size()) {
      ctx.StoreSpan<uint64_t>(
          node + kEntries + static_cast<uint64_t>(idx) * 32,
          words.data() + static_cast<size_t>(idx) * 4,
          words.size() - static_cast<size_t>(idx) * 4);
    }
    ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(v.count - 1));
    ctx.Fill<uint64_t>(
        node + kEntries + static_cast<uint64_t>(v.count - 1) * 32, 0,
        4);  // scrub the vacated tail slot
    EndWrite(ctx, node);
    return v.count - 1 < leaf_cap_ / 2;
  }
  const int ci = ChildIndex(v, key);
  const ddc::VAddr child = v.words[static_cast<size_t>(ci * 2 + 1)];
  if (!DeleteRec(ctx, child, depth + 1, key, found)) return false;
  RebalanceChild(ctx, node, ci);
  const NodeView after = ReadNode(ctx, node);
  return after.count < inner_cap_ / 2;
}

void BTree::RebalanceChild(ddc::ExecutionContext& ctx, ddc::VAddr parent,
                           int idx) {
  const NodeView pv = ReadNode(ctx, parent);
  if (pv.count < 2) return;  // lone child (root path): nothing to borrow from
  // Merge into the left sibling when one exists; otherwise pull the right
  // sibling in. Borrow instead when the sibling has entries to spare.
  const int li = idx > 0 ? idx - 1 : idx;      // left node of the pair
  const int ri = li + 1;                       // right node of the pair
  const ddc::VAddr left = pv.words[static_cast<size_t>(li * 2 + 1)];
  const ddc::VAddr right = pv.words[static_cast<size_t>(ri * 2 + 1)];
  const NodeView lv = ReadNode(ctx, left);
  const NodeView rv = ReadNode(ctx, right);
  const int cap = lv.is_leaf ? leaf_cap_ : inner_cap_;
  const int stride = lv.is_leaf ? 4 : 2;
  const uint64_t stride_bytes = lv.is_leaf ? kRecordStride : kInnerStride;
  const int min_fill = cap / 2;
  auto write_node = [&](ddc::VAddr node, const std::vector<uint64_t>& words,
                        int old_count) {
    const int count = static_cast<int>(words.size()) / stride;
    BeginWrite(ctx, node);
    if (!words.empty()) {
      ctx.StoreSpan<uint64_t>(node + kEntries, words.data(), words.size());
    }
    ctx.Store<uint32_t>(node + kHdrCount, static_cast<uint32_t>(count));
    if (old_count > count) {
      ctx.Fill<uint64_t>(node + kEntries + static_cast<uint64_t>(count) *
                                               stride_bytes,
                         0, static_cast<uint64_t>(old_count - count) * stride);
    }
    EndWrite(ctx, node);
  };
  auto set_separator = [&](int entry, uint64_t sep) {
    BeginWrite(ctx, parent);
    ctx.Store<uint64_t>(parent + kEntries + static_cast<uint64_t>(entry) * 16,
                        sep);
    EndWrite(ctx, parent);
  };
  if (lv.count + rv.count <= cap) {
    // Merge right into left.
    std::vector<uint64_t> words = lv.words;
    words.insert(words.end(), rv.words.begin(), rv.words.end());
    if (lv.is_leaf) {
      BeginWrite(ctx, left);
      ctx.Store<uint64_t>(left + kHdrNext, rv.next);
      EndWrite(ctx, left);
    }
    write_node(left, words, lv.count);
    FreeNode(ctx, right);
    // Drop the right node's separator entry from the parent.
    std::vector<uint64_t> pw = pv.words;
    pw.erase(pw.begin() + static_cast<ptrdiff_t>(ri) * 2,
             pw.begin() + static_cast<ptrdiff_t>(ri + 1) * 2);
    BeginWrite(ctx, parent);
    if (static_cast<size_t>(ri) * 2 < pw.size()) {
      ctx.StoreSpan<uint64_t>(parent + kEntries + static_cast<uint64_t>(ri) * 16,
                              pw.data() + static_cast<size_t>(ri) * 2,
                              pw.size() - static_cast<size_t>(ri) * 2);
    }
    ctx.Store<uint32_t>(parent + kHdrCount,
                        static_cast<uint32_t>(pv.count - 1));
    ctx.Fill<uint64_t>(
        parent + kEntries + static_cast<uint64_t>(pv.count - 1) * 16, 0, 2);
    EndWrite(ctx, parent);
    ++merges_;
    ++ctx.metrics().btree_merges;
    return;
  }
  // Borrow: move one entry across the boundary toward the underfull side.
  if (lv.count < min_fill && rv.count > min_fill) {
    std::vector<uint64_t> lw = lv.words;
    std::vector<uint64_t> rw = rv.words;
    lw.insert(lw.end(), rw.begin(), rw.begin() + stride);
    rw.erase(rw.begin(), rw.begin() + stride);
    write_node(left, lw, lv.count);
    write_node(right, rw, rv.count);
    set_separator(ri, rw[0]);
  } else if (rv.count < min_fill && lv.count > min_fill) {
    std::vector<uint64_t> lw = lv.words;
    std::vector<uint64_t> rw = rv.words;
    rw.insert(rw.begin(), lw.end() - stride, lw.end());
    lw.erase(lw.end() - stride, lw.end());
    write_node(left, lw, lv.count);
    write_node(right, rw, rv.count);
    set_separator(ri, rw[0]);
  }
}

bool BTree::Delete(ddc::ExecutionContext& ctx, uint64_t key) {
  bool found = false;
  const ddc::VAddr root = ctx.Load<uint64_t>(meta_ + kMetaRoot);
  DeleteRec(ctx, root, 0, key, &found);
  // Collapse a one-child inner root.
  const NodeView rv = ReadNode(ctx, root);
  if (!rv.is_leaf && rv.count == 1) {
    ctx.Store<uint64_t>(meta_ + kMetaRoot, rv.words[1]);
    ctx.Store<uint64_t>(meta_ + kMetaHeight,
                        ctx.Load<uint64_t>(meta_ + kMetaHeight) - 1);
    FreeNode(ctx, root);
  }
  return found;
}

uint64_t BTree::height(ddc::ExecutionContext& ctx) const {
  return ctx.Load<uint64_t>(meta_ + kMetaHeight);
}

BTree::Audit BTree::AuditStructure(ddc::ExecutionContext& ctx) const {
  Audit out;
  struct Frame {
    ddc::VAddr node;
    uint64_t depth;
    uint64_t lo;      ///< inclusive lower bound (separator)
    bool has_lo;
    uint64_t hi;      ///< exclusive upper bound
    bool has_hi;
  };
  const ddc::VAddr root = ctx.Load<uint64_t>(meta_ + kMetaRoot);
  const uint64_t height_now = ctx.Load<uint64_t>(meta_ + kMetaHeight);
  std::vector<Frame> stack{{root, 1, 0, false, 0, false}};
  std::vector<ddc::VAddr> leaves_in_order;
  bool have_prev_key = false;
  uint64_t prev_key = 0;
  auto fail = [&](const std::string& msg) {
    if (out.ok) {
      out.ok = false;
      out.error = msg;
    }
  };
  // Depth-first, left to right, so leaves append in key order.
  while (!stack.empty() && out.ok) {
    const Frame f = stack.back();
    stack.pop_back();
    const NodeView v = ReadNode(ctx, f.node);
    const int cap = v.is_leaf ? leaf_cap_ : inner_cap_;
    if (f.node != root && v.count < cap / 2) {
      std::ostringstream os;
      os << "underfull node at depth " << f.depth << ": " << v.count << " < "
         << cap / 2;
      fail(os.str());
      break;
    }
    if (v.is_leaf) {
      if (f.depth != height_now) {
        fail("leaf off the uniform depth (unbalanced tree)");
        break;
      }
      out.depth = f.depth;
      leaves_in_order.push_back(f.node);
      for (int i = 0; i < v.count; ++i) {
        const uint64_t k = v.key(i);
        if (have_prev_key && k <= prev_key) {
          fail("keys not strictly increasing in order");
          break;
        }
        if ((f.has_lo && k < f.lo) || (f.has_hi && k >= f.hi)) {
          fail("leaf key outside its separator range");
          break;
        }
        prev_key = k;
        have_prev_key = true;
        ++out.records;
        out.digest = Mix(out.digest ^ k);
        out.digest = Mix(out.digest ^ v.words[static_cast<size_t>(i * 4 + 1)]);
        out.digest = Mix(out.digest ^ v.words[static_cast<size_t>(i * 4 + 2)]);
      }
      continue;
    }
    if (v.count < (f.node == root ? 2 : 2)) {
      fail("inner node with fewer than two children");
      break;
    }
    // Push children right-to-left so the leftmost pops first.
    for (int i = v.count - 1; i >= 0; --i) {
      Frame c;
      c.node = v.words[static_cast<size_t>(i * 2 + 1)];
      c.depth = f.depth + 1;
      if (i == 0) {
        c.lo = f.lo;
        c.has_lo = f.has_lo;
      } else {
        c.lo = v.key(i);
        c.has_lo = true;
      }
      if (i + 1 < v.count) {
        c.hi = v.key(i + 1);
        c.has_hi = true;
      } else {
        c.hi = f.hi;
        c.has_hi = f.has_hi;
      }
      stack.push_back(c);
    }
  }
  if (out.ok) {
    // Leaf chain must enumerate exactly the in-order leaves.
    ddc::VAddr chain = leaves_in_order.empty() ? 0 : leaves_in_order.front();
    for (size_t i = 0; i < leaves_in_order.size(); ++i) {
      if (chain != leaves_in_order[i]) {
        fail("leaf chain disagrees with in-order traversal");
        break;
      }
      chain = ReadNode(ctx, chain).next;
    }
    if (out.ok && chain != 0) fail("leaf chain runs past the last leaf");
  }
  return out;
}

uint64_t BTree::ContentDigest(ddc::ExecutionContext& ctx) const {
  uint64_t digest = 0;
  ddc::VAddr node = ctx.Load<uint64_t>(meta_ + kMetaRoot);
  // Leftmost leaf.
  for (;;) {
    const NodeView v = ReadNode(ctx, node);
    if (v.is_leaf) break;
    TELEPORT_CHECK(v.count > 0);
    node = v.words[1];
  }
  while (node != 0) {
    const NodeView v = ReadNode(ctx, node);
    for (int i = 0; i < v.count; ++i) {
      const uint64_t meta = v.words[static_cast<size_t>(i * 4 + 2)];
      if (!RecordMeta::Present(meta)) continue;
      digest = Mix(digest ^ v.key(i));
      digest = Mix(digest ^ v.words[static_cast<size_t>(i * 4 + 1)]);
      digest = Mix(digest ^ RecordMeta::Version(meta));
    }
    node = v.next;
  }
  return digest;
}

}  // namespace teleport::oltp
