#include "oltp/txn.h"

#include <algorithm>

#include "common/logging.h"

namespace teleport::oltp {

namespace {

// Record word offsets within a leaf slot ({key, value, meta, seq}).
constexpr uint64_t kValueOff = 8;
constexpr uint64_t kMetaOff = 16;
constexpr uint64_t kSeqOff = 24;
using Kind = ddc::CoherenceEvent::Kind;

/// splitmix64 finalizer: scan digest folds.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Txn::WriteOp* Txn::FindWrite(uint64_t key) {
  for (WriteOp& w : writes_) {
    if (w.key == key) return &w;
  }
  return nullptr;
}

Txn::ReadResult Txn::Read(ddc::ExecutionContext& ctx, uint64_t key) {
  if (const WriteOp* w = FindWrite(key)) {
    return {/*found=*/true, w->value, /*version=*/0};
  }
  BTree& tree = mgr_->tree();
  ddc::MemorySystem& ms = *mgr_->ms_;
  for (;;) {
    const ddc::VAddr slot = tree.ProbeRecord(ctx, key);
    if (slot == 0) {
      // Absent keys read as committed version 0 and still join the read
      // set: a concurrent insert of this key must fail our validation.
      reads_.emplace_back(key, 0);
      ms.NotifyTxnEvent(Kind::kTxnRead, key, 0, session_, ctx.now());
      return {};
    }
    const uint64_t s0 = ctx.Load<uint64_t>(slot + kSeqOff);
    if ((s0 & 1) != 0) {  // committer mid-flight on this record
      ctx.ChargeCpu(1);
      continue;
    }
    if (ctx.Load<uint64_t>(slot) != key) continue;  // stale addr: re-probe
    const uint64_t meta = ctx.Load<uint64_t>(slot + kMetaOff);
    const uint64_t value = ctx.Load<uint64_t>(slot + kValueOff);
    // The snapshot is consistent iff the seq word held still (it bumps on
    // every lock acquire and release and is never restored — unlike meta,
    // which an abort rolls back to its exact old word) and the slot still
    // holds our key (a split may have shifted records under us).
    const uint64_t s1 = ctx.Load<uint64_t>(slot + kSeqOff);
    if (s1 != s0 || ctx.Load<uint64_t>(slot) != key) {
      ctx.ChargeCpu(1);
      continue;
    }
    const uint64_t version = RecordMeta::Version(meta);
    reads_.emplace_back(key, version);
    ms.NotifyTxnEvent(Kind::kTxnRead, key, version, session_, ctx.now());
    return {RecordMeta::Present(meta), value, version};
  }
}

void Txn::Update(ddc::ExecutionContext& ctx, uint64_t key, uint64_t delta) {
  const ReadResult r = Read(ctx, key);
  const uint64_t base = r.found ? r.value : 0;
  Put(key, base + delta);
}

void Txn::Put(uint64_t key, uint64_t value) {
  if (WriteOp* w = FindWrite(key)) {
    w->value = value;
    return;
  }
  writes_.push_back({key, value});
}

Txn::ScanResult Txn::Scan(ddc::ExecutionContext& ctx, uint64_t start,
                          int max_records) {
  ScanResult out;
  BTree& tree = mgr_->tree();
  ddc::VAddr node = tree.FindLeaf(ctx, start);
  uint64_t cursor = start;
  while (node != 0 && out.records < static_cast<uint64_t>(max_records)) {
    const BTree::NodeView v = tree.ReadNode(ctx, node);
    for (int i = 0;
         i < v.count && out.records < static_cast<uint64_t>(max_records);
         ++i) {
      const uint64_t key = v.key(i);
      if (key < cursor) continue;
      // Re-read the record through the full point-read protocol (seq-lock
      // snapshot + read-set entry + kTxnRead): the node snapshot above is
      // only trusted for *keys* — values and meta are written outside the
      // node seqlock and may be torn or provisional in `v.words`.
      const ReadResult r = Read(ctx, key);
      if (!r.found) continue;  // absent marker
      out.digest = Mix(out.digest ^ key);
      out.digest = Mix(out.digest ^ r.value);
      ++out.records;
    }
    cursor = v.count > 0 ? v.key(v.count - 1) + 1 : cursor;
    node = v.next;
  }
  return out;
}

void Txn::AcquireLatch(ddc::ExecutionContext& ctx) {
  // latch_ is host state: the test is free and cannot yield, so the
  // test-then-set pair is atomic under cooperative scheduling. Waiters pay
  // charged CPU (which yields) between probes.
  while (mgr_->latch_) ctx.ChargeCpu(1);
  mgr_->latch_ = true;
  ctx.ChargeCpu(1);  // acquisition cost, paid with the latch held
}

void Txn::ReleaseLatch() { mgr_->latch_ = false; }

ddc::VAddr Txn::ResolveLocked(ddc::ExecutionContext& ctx, uint64_t key) {
  return mgr_->tree().FindRecord(ctx, key);
}

bool Txn::Commit(ddc::ExecutionContext& ctx) {
  TELEPORT_CHECK(!done_) << "Txn objects are single-shot";
  done_ = true;
  ddc::MemorySystem& ms = *mgr_->ms_;
  BTree& tree = mgr_->tree();
  std::sort(writes_.begin(), writes_.end(),
            [](const WriteOp& a, const WriteOp& b) { return a.key < b.key; });
  AcquireLatch(ctx);
  // 1. Install provisional writes in key order, each under its record's
  //    seq lock (acquired *before* the stores so concurrent readers spin
  //    instead of observing half-written records).
  for (const WriteOp& w : writes_) {
    const ddc::VAddr slot = tree.InsertSlot(ctx, w.key);
    const uint64_t seq = ctx.Load<uint64_t>(slot + kSeqOff);
    TELEPORT_DCHECK((seq & 1) == 0) << "record locked while latch held";
    ctx.Store<uint64_t>(slot + kSeqOff, seq + 1);
    const uint64_t old_value = ctx.Load<uint64_t>(slot + kValueOff);
    const uint64_t old_meta = ctx.Load<uint64_t>(slot + kMetaOff);
    const uint64_t new_version = RecordMeta::Version(old_meta) + 1;
    ctx.Store<uint64_t>(slot + kValueOff, w.value);
    ctx.Store<uint64_t>(slot + kMetaOff,
                        RecordMeta::Pack(new_version, /*present=*/true));
    undo_.push_back({w.key, old_value, old_meta});
    ms.NotifyTxnEvent(Kind::kTxnWrite, w.key, new_version, session_,
                      ctx.now());
  }
  // 2. Validate the read set against current committed versions. Own
  //    writes compare against the pre-install meta captured in the undo
  //    log; everything else is re-resolved under the latch (exact — only
  //    the latch holder mutates the tree or any record).
  bool valid = true;
  if (ms.protocol_mutation() != ddc::ProtocolMutation::kSkipOccValidation) {
    for (const auto& [key, version] : reads_) {
      const UndoEntry* own = nullptr;
      for (const UndoEntry& u : undo_) {
        if (u.key == key) {
          own = &u;
          break;
        }
      }
      uint64_t current = 0;
      if (own != nullptr) {
        current = RecordMeta::Version(own->old_meta);
      } else {
        const ddc::VAddr slot = ResolveLocked(ctx, key);
        if (slot != 0) {
          current = RecordMeta::Version(ctx.Load<uint64_t>(slot + kMetaOff));
        }
      }
      ++ctx.metrics().txn_reads_validated;
      if (current != version) valid = false;
    }
  }
  if (valid) {
    // 3a. Commit: publish the sequence point first, then release each
    //     record's seq lock (the installed words are the committed state).
    //     Readers of a still-locked record spin, so none can observe a new
    //     version before the kTxnCommit event lands at the checker.
    const uint64_t seq_no = ++mgr_->commit_seq_;
    ms.NotifyTxnEvent(Kind::kTxnCommit, 0, seq_no, session_, ctx.now());
    for (const WriteOp& w : writes_) {
      const ddc::VAddr slot = ResolveLocked(ctx, w.key);
      TELEPORT_CHECK(slot != 0);
      const uint64_t seq = ctx.Load<uint64_t>(slot + kSeqOff);
      ctx.Store<uint64_t>(slot + kSeqOff, seq + 1);
    }
    ++ctx.metrics().txn_commits;
    if (mgr_->tracer_ != nullptr) {
      mgr_->tracer_->Instant(kTraceCategory, kTraceCommit, ctx.now(),
                             sim::kTrackCompute);
    }
    ReleaseLatch();
    return true;
  }
  // 3b. Abort: roll back in reverse install order. Each kTxnUndo is
  //     emitted *before* its restoring stores — the record is still
  //     seq-locked at that point, so no reader can emit a kTxnRead of the
  //     key between the checker discharging the obligation and the old
  //     words actually reappearing.
  ms.NotifyTxnEvent(Kind::kTxnAbort, 0, 0, session_, ctx.now());
  const bool skip_undo =
      ms.protocol_mutation() == ddc::ProtocolMutation::kSkipAbortUndo;
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    const ddc::VAddr slot = ResolveLocked(ctx, it->key);
    TELEPORT_CHECK(slot != 0);
    if (!skip_undo) {
      ms.NotifyTxnEvent(Kind::kTxnUndo, it->key,
                        RecordMeta::Version(it->old_meta), session_,
                        ctx.now());
      ctx.Store<uint64_t>(slot + kValueOff, it->old_value);
      ++ctx.metrics().txn_undo_writes;
    }
    // kSkipAbortUndo: restore meta (version validation can never tell) but
    // leave the provisional value in place and emit no kTxnUndo — a pure
    // value corruption only the checker's undo obligations catch.
    ctx.Store<uint64_t>(slot + kMetaOff, it->old_meta);
    const uint64_t seq = ctx.Load<uint64_t>(slot + kSeqOff);
    ctx.Store<uint64_t>(slot + kSeqOff, seq + 1);  // fresh, never-restored
  }
  ++ctx.metrics().txn_aborts;
  if (mgr_->tracer_ != nullptr) {
    mgr_->tracer_->Instant(kTraceCategory, kTraceAbort, ctx.now(),
                           sim::kTrackCompute);
  }
  ReleaseLatch();
  return false;
}

}  // namespace teleport::oltp
