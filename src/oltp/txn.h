#ifndef TELEPORT_OLTP_TXN_H_
#define TELEPORT_OLTP_TXN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "ddc/memory_system.h"
#include "oltp/btree.h"
#include "sim/tracer.h"

namespace teleport::oltp {

/// Trace vocabulary of the OLTP engine (locked by the format golden test).
inline constexpr const char* kTraceCategory = "oltp";
inline constexpr const char* kTraceCommit = "TxnCommit";
inline constexpr const char* kTraceAbort = "TxnAbort";

/// Shared commit path of one table: the global commit latch, the commit
/// sequence counter, and the tree. The latch lives in *host* memory on
/// purpose — checking it costs nothing and cannot yield, so test-and-set
/// is atomic under cooperative scheduling; waiters burn charged CPU (which
/// yields) between probes, so latch hold time is fully visible to the
/// schedule explorer.
class TxnManager {
 public:
  TxnManager(ddc::MemorySystem* ms, BTree* tree, sim::Tracer* tracer = nullptr)
      : ms_(ms), tree_(tree), tracer_(tracer) {}

  TxnManager(const TxnManager&) = delete;
  TxnManager& operator=(const TxnManager&) = delete;

  BTree& tree() { return *tree_; }
  ddc::MemorySystem& memory_system() { return *ms_; }
  /// Commit sequence of the latest committed transaction (0 = none yet).
  uint64_t commit_seq() const { return commit_seq_; }

 private:
  friend class Txn;
  ddc::MemorySystem* ms_;
  BTree* tree_;
  sim::Tracer* tracer_;
  bool latch_ = false;
  uint64_t commit_seq_ = 0;
};

/// One optimistic transaction (OCC, install-then-validate).
///
/// Execution phase: reads go through the tree latch-free (optionally as
/// pushdown probes) and record (key, version) in the read set; writes are
/// buffered, invisible to every other session.
///
/// Commit phase, entirely under the manager's global latch:
///   1. *Install* each buffered write in key order: find-or-create the
///      record, acquire its seq lock (odd), store the provisional value and
///      meta (version = old + 1), emit kTxnWrite. Installed records stay
///      seq-locked, so concurrent readers spin rather than observe them.
///   2. *Validate* the read set: every read (key, version) must still match
///      the record's current committed version (own writes validate against
///      the pre-install meta from the undo log). kSkipOccValidation skips
///      this step — the planted lost-update bug.
///   3a. On success: bump the commit sequence, emit kTxnCommit, release
///       each record's seq lock (the installed words are now the committed
///       state).
///   3b. On failure: emit kTxnAbort, then roll back in reverse key order —
///       for each installed record emit kTxnUndo, restore value and meta to
///       the exact pre-install words, and release the seq lock with a fresh
///       (never-restored) seq value. kSkipAbortUndo releases the lock and
///       restores meta but leaves the provisional *value* in place — the
///       planted dirty-abort bug, invisible to version validation and
///       caught only by the checker's undo obligations (invariant #7c).
///
/// A Txn object is single-shot: aborted transactions are retried by
/// constructing a fresh Txn (the workload layer does this).
class Txn {
 public:
  Txn(TxnManager* mgr, int session) : mgr_(mgr), session_(session) {}

  struct ReadResult {
    bool found = false;     ///< a present (committed or own-write) record
    uint64_t value = 0;
    uint64_t version = 0;   ///< committed version observed (0 for own write)
  };

  /// Point read. Sees this transaction's own buffered writes; otherwise
  /// snapshots the record via its seq lock, appends (key, version) to the
  /// read set, and emits kTxnRead. Absent keys read as version 0.
  ReadResult Read(ddc::ExecutionContext& ctx, uint64_t key);

  /// Read-modify-write: buffered value becomes (current value + delta).
  /// Reads through Read(), so the RMW is guarded by OCC validation.
  void Update(ddc::ExecutionContext& ctx, uint64_t key, uint64_t delta);

  /// Blind write: buffer `value` for `key` (insert if absent). No read-set
  /// entry — last committed writer wins, which is serializable for blind
  /// writes.
  void Put(uint64_t key, uint64_t value);

  /// Range scan: up to `max_records` present records with key >= `start`,
  /// walking the leaf chain from FindLeaf (pushdown-able). Every returned
  /// record is snapshotted through its seq lock, appended to the read set,
  /// and emitted as kTxnRead. No phantom protection: the *set* of keys seen
  /// is not validated, only the versions of the records actually read, so
  /// scan results are schedule-dependent (the differential harness excludes
  /// them from cross-schedule digests).
  struct ScanResult {
    uint64_t records = 0;
    uint64_t digest = 0;  ///< fold of (key, value) over the records seen
  };
  ScanResult Scan(ddc::ExecutionContext& ctx, uint64_t start, int max_records);

  /// Runs the commit protocol above. Returns true on commit (bumps
  /// txn_commits), false on validation failure (bumps txn_aborts; all
  /// installed writes rolled back). Read-only transactions still validate.
  bool Commit(ddc::ExecutionContext& ctx);

  size_t read_set_size() const { return reads_.size(); }
  size_t write_set_size() const { return writes_.size(); }

 private:
  struct WriteOp {
    uint64_t key = 0;
    uint64_t value = 0;
  };
  struct UndoEntry {
    uint64_t key = 0;
    uint64_t old_value = 0;
    uint64_t old_meta = 0;
  };

  WriteOp* FindWrite(uint64_t key);
  void AcquireLatch(ddc::ExecutionContext& ctx);
  void ReleaseLatch();
  /// Record address for `key` under the latch (exact: no concurrent
  /// structural writer can exist while we hold it).
  ddc::VAddr ResolveLocked(ddc::ExecutionContext& ctx, uint64_t key);

  TxnManager* mgr_;
  int session_;
  std::vector<std::pair<uint64_t, uint64_t>> reads_;  ///< (key, version)
  std::vector<WriteOp> writes_;
  std::vector<UndoEntry> undo_;
  bool done_ = false;
};

}  // namespace teleport::oltp

#endif  // TELEPORT_OLTP_TXN_H_
