#ifndef TELEPORT_OLTP_WORKLOAD_H_
#define TELEPORT_OLTP_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "oltp/txn.h"
#include "sim/tenant_scopes.h"

namespace teleport::oltp {

/// YCSB-style transactional mix over one table.
///
/// Determinism contract (the differential harness leans on every clause):
///  - A transaction's op stream is a pure function of (seed, session, txn
///    index) — never of values read — so an aborted transaction retries
///    with the *identical* ops.
///  - Updates are commutative read-modify-writes (value += delta), inserts
///    use keys unique to their (session, txn, op), and every transaction
///    retries until it commits (max_retries = 0). Under those rules the
///    final table content and the set of committed (session, txn) pairs
///    are schedule-independent; only timing, abort counts, and scan
///    results move with the schedule.
struct YcsbConfig {
  int sessions = 4;           ///< used by callers to derive session ids
  int txns_per_session = 32;
  int ops_per_txn = 4;
  uint64_t keyspace = 256;    ///< preloaded keys [0, keyspace)
  /// Op-mix fractions; remainder after read+update+insert is scan.
  double read_fraction = 0.5;
  double update_fraction = 0.35;
  double insert_fraction = 0.05;
  bool zipfian = false;       ///< zipfian vs uniform key popularity
  double zipf_theta = 0.99;
  int scan_length = 8;
  uint64_t seed = 1;
  /// Abort retry budget per transaction; 0 = retry until commit (the
  /// schedule-independent mode).
  int max_retries = 0;
  /// Optional per-tenant attribution: each committed transaction records
  /// its context-metrics diff and end-to-end latency under `base_tenant`.
  sim::TenantScopes* scopes = nullptr;
  int base_tenant = 0;
};

/// YCSB zipfian key popularity (Gray et al. quantile transform), rank 0 the
/// most popular. Construction is O(n) (zeta precomputation); sampling O(1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);
  /// Maps a uniform u in [0, 1) to a rank in [0, n).
  uint64_t Sample(double u) const;

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double zeta2_;
  double alpha_;
  double eta_;
};

/// Populates keys [0, keyspace) with value Mix64(key), version 0, present.
/// Run before any session starts (single-threaded).
void PreloadTable(ddc::ExecutionContext& ctx, BTree& tree, uint64_t keyspace);

/// One session's aggregate outcome.
struct YcsbResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;       ///< validation failures across all attempts
  uint64_t gave_up = 0;       ///< transactions that exhausted max_retries
  /// XOR-fold over Mix64 of every committed (session, txn) pair:
  /// order-independent, so schedule-independent when every txn commits.
  uint64_t commit_digest = 0;
  uint64_t scan_records = 0;  ///< schedule-dependent (no phantom protection)
  uint64_t scan_digest = 0;   ///< schedule-dependent
};

/// Runs one session's transactions to completion on `ctx` (designed as a
/// sim::CoopTask body; equally runnable standalone for the sequential
/// golden). Scan results only count for the committed attempt of each
/// transaction.
YcsbResult RunYcsbSession(ddc::ExecutionContext& ctx, TxnManager& mgr,
                          const YcsbConfig& cfg, int session);

/// splitmix64 finalizer shared by the workload digests and key derivation.
uint64_t Mix64(uint64_t x);

}  // namespace teleport::oltp

#endif  // TELEPORT_OLTP_WORKLOAD_H_
