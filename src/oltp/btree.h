#ifndef TELEPORT_OLTP_BTREE_H_
#define TELEPORT_OLTP_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ddc/memory_system.h"
#include "teleport/pushdown.h"

namespace teleport::oltp {

/// Record metadata word, packed into one uint64 so a reader can snapshot a
/// record's visibility state with a single charged load:
///   bit 0      reserved (legacy lock bit; the OLTP layer locks through the
///                        record's *seq* word instead — see below)
///   bit 1      present — 0 is an absent marker (pre-insert slot / never
///                        committed insert)
///   bits 2..63 version — committed-version counter for OCC validation;
///                        preloaded records start at 0, each committed
///                        install bumps by exactly one
///
/// The fourth record word, *seq*, is a per-record seqlock: odd means a
/// committing/aborting transaction is mid-flight on this record, and it is
/// bumped on every acquire AND every release — never restored. That
/// monotonicity is load-bearing: an abort restores value and meta to their
/// exact pre-install words, so a reader snapshotting meta→value→meta could
/// otherwise capture a provisional value between two identical meta reads
/// (ABA). The seq word cannot ABA.
struct RecordMeta {
  static constexpr uint64_t kLockBit = 1;
  static constexpr uint64_t kPresentBit = 2;
  static uint64_t Pack(uint64_t version, bool present, bool locked = false) {
    return (version << 2) | (present ? kPresentBit : 0) |
           (locked ? kLockBit : 0);
  }
  static uint64_t Version(uint64_t meta) { return meta >> 2; }
  static bool Present(uint64_t meta) { return (meta & kPresentBit) != 0; }
  static bool Locked(uint64_t meta) { return (meta & kLockBit) != 0; }
};

/// Tuning and offload knobs of one tree instance.
struct BTreeOptions {
  /// Node arena size in pages. Every node occupies one full page.
  uint64_t arena_pages = 1024;
  /// Logical entry capacities; 0 derives from the page size. Small caps
  /// force deep trees and frequent split/merge on tiny key sets (property
  /// tests); nodes still occupy whole pages either way, so structural ops
  /// always cross page boundaries.
  int max_leaf_entries = 0;
  int max_inner_entries = 0;
  /// Offload index probes (ProbeLeaf / TraverseInner) through `runtime`
  /// instead of descending with compute-side loads. Record reads and all
  /// structural writes stay compute-side either way.
  bool push_probes = false;
  tp::PushdownRuntime* runtime = nullptr;
  /// Flags template for pushed probes; the kernel id is filled in by the
  /// tree (RegisterKernel) and `fallback` defaults to kLocal so a faulted
  /// probe degrades to the local descend instead of failing the txn.
  tp::PushdownFlags probe_flags;
};

/// A B+-tree laid out in DDC address space: fixed-size nodes sized to
/// pages, one record per leaf slot, leaves chained for range scans.
///
/// Concurrency contract (PR8):
///  - *Structural* modifications (insert-slot, split, delete, merge/borrow)
///    are single-writer — the OLTP layer serializes them under its global
///    commit latch; the property test drives them from one context.
///  - *Reads* are latch-free: every node carries a seqlock version word
///    (even = stable) bumped around each structural modification, and
///    readers retry a node snapshot until the version holds still. Record
///    payloads are guarded separately by each record's per-record seq word
///    (see RecordMeta), so a probe never blocks on a committing
///    transaction — only the record read does, and only for that record.
///  - Vacated entry regions (split move-out, delete compaction) are
///    scrubbed to zero so a stale slot address can never re-match its old
///    key: stale readers re-probe instead of reading dead copies.
///
/// Virtual-time costs ride the ordinary ExecutionContext accesses: node
/// snapshots are span loads (extent fast path, per-element under
/// TELEPORT_SCALAR_DATAPATH), probes optionally pushdown.
class BTree {
 public:
  /// Bytes per leaf record: {key, value, meta, seq}.
  static constexpr uint64_t kRecordStride = 32;

  /// Allocates the node arena + meta page from `ms->space()` and creates an
  /// empty root leaf. `ctx` is charged for the initialization stores.
  BTree(ddc::MemorySystem* ms, ddc::ExecutionContext& ctx,
        const BTreeOptions& opts);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // --- Structural writers (single-writer; see class comment) --------------

  /// Finds the leaf slot for `key`, creating an absent-marker record
  /// (value 0, meta absent/v0) if the key is not present — splitting leaves
  /// and inners on the way as needed. Returns the record's address.
  ddc::VAddr InsertSlot(ddc::ExecutionContext& ctx, uint64_t key);

  /// Convenience for preload/property tests: find-or-create the slot and
  /// store `value`/`meta` into it. Returns false if the key already had a
  /// present record (value/meta still overwritten).
  bool Insert(ddc::ExecutionContext& ctx, uint64_t key, uint64_t value,
              uint64_t meta);

  /// Removes `key`'s record entirely (structural delete with borrow/merge
  /// rebalancing). Returns false if the key was not in the tree. Used by
  /// the property test; the OLTP layer retires records with absent markers
  /// instead.
  bool Delete(ddc::ExecutionContext& ctx, uint64_t key);

  // --- Latch-free readers --------------------------------------------------

  /// Compute-side descend to `key`'s record address, 0 if absent.
  ddc::VAddr FindRecord(ddc::ExecutionContext& ctx, uint64_t key);

  /// Probe for `key`'s record address: the ProbeLeaf pushdown kernel when
  /// `push_probes` is set (full pool-side descend + leaf search), the local
  /// descend otherwise.
  ddc::VAddr ProbeRecord(ddc::ExecutionContext& ctx, uint64_t key);

  /// Leaf that covers `key` (scan start): the TraverseInner pushdown kernel
  /// when `push_probes` is set, a local descend otherwise.
  ddc::VAddr FindLeaf(ddc::ExecutionContext& ctx, uint64_t key);

  /// Stable snapshot of one node (seqlock retry loop). Exposed for the
  /// scan path and tests.
  struct NodeView {
    bool is_leaf = false;
    uint64_t next = 0;  ///< next leaf (0 at the tail); 0 for inners
    /// Leaf: (key, value, meta, seq) quads. Inner: (separator, child) pairs.
    std::vector<uint64_t> words;
    int count = 0;
    int stride_words() const { return is_leaf ? 4 : 2; }
    uint64_t key(int i) const {
      return words[static_cast<size_t>(i * stride_words())];
    }
  };
  NodeView ReadNode(ddc::ExecutionContext& ctx, ddc::VAddr node) const;

  // --- Introspection -------------------------------------------------------

  uint64_t height(ddc::ExecutionContext& ctx) const;
  int leaf_capacity() const { return leaf_cap_; }
  int inner_capacity() const { return inner_cap_; }
  uint64_t splits() const { return splits_; }
  uint64_t merges() const { return merges_; }

  /// Full structural audit for the property test: in-order key sortedness,
  /// uniform leaf depth, fill-factor bounds (every non-root node holds at
  /// least ceil(cap/2) - 1 entries), leaf-chain consistency, and a digest
  /// folded over the in-order (key, value, meta) stream — by construction
  /// identical for any two trees with the same logical content, regardless
  /// of shape.
  struct Audit {
    bool ok = true;
    std::string error;
    uint64_t records = 0;  ///< leaf entries (absent markers included)
    uint64_t depth = 0;
    uint64_t digest = 0;
  };
  Audit AuditStructure(ddc::ExecutionContext& ctx) const;

  /// In-order digest over *visible* records only: fold of (key, value,
  /// version) for every present record. The OLTP differential harness
  /// compares this across schedules — it is a function of logical content,
  /// not tree shape.
  uint64_t ContentDigest(ddc::ExecutionContext& ctx) const;

 private:
  // Node header layout (all nodes occupy one page):
  //   +0  u64 seqlock version   +8 u32 count   +12 u32 is_leaf
  //   +16 u64 next (leaf chain / free list)    +24 u64 reserved
  //   +32 entries (leaf stride 32, inner stride 16)
  static constexpr uint64_t kHdrVersion = 0;
  static constexpr uint64_t kHdrCount = 8;
  static constexpr uint64_t kHdrIsLeaf = 12;
  static constexpr uint64_t kHdrNext = 16;
  static constexpr uint64_t kEntries = 32;
  static constexpr uint64_t kInnerStride = 16;

  ddc::VAddr AllocNode(ddc::ExecutionContext& ctx, bool leaf);
  void FreeNode(ddc::ExecutionContext& ctx, ddc::VAddr node);
  /// Seqlock writer guards.
  void BeginWrite(ddc::ExecutionContext& ctx, ddc::VAddr node);
  void EndWrite(ddc::ExecutionContext& ctx, ddc::VAddr node);

  /// Recursive insert workhorse: returns the new right sibling's (first
  /// separator, node) when `node` split, else {0, 0}.
  struct SplitResult {
    uint64_t sep = 0;
    ddc::VAddr right = 0;
  };
  SplitResult InsertRec(ddc::ExecutionContext& ctx, ddc::VAddr node,
                        uint64_t depth, uint64_t key, ddc::VAddr* slot);
  /// Recursive delete: returns true if `node` is now underfull.
  bool DeleteRec(ddc::ExecutionContext& ctx, ddc::VAddr node, uint64_t depth,
                 uint64_t key, bool* found);
  void RebalanceChild(ddc::ExecutionContext& ctx, ddc::VAddr parent, int idx);

  ddc::VAddr DescendToLeaf(ddc::ExecutionContext& ctx, uint64_t key) const;
  int LowerBound(const NodeView& v, uint64_t key) const;
  /// Inner child index covering `key` (last separator <= key; entry 0 acts
  /// as -inf).
  int ChildIndex(const NodeView& v, uint64_t key) const;

  ddc::MemorySystem* ms_;
  BTreeOptions opts_;
  uint64_t page_ = 0;  ///< page size (node size)
  int leaf_cap_ = 0;
  int inner_cap_ = 0;
  ddc::VAddr meta_ = 0;   ///< meta page: root, height, bump cursor, free list
  ddc::VAddr arena_ = 0;  ///< node arena base
  uint64_t arena_bytes_ = 0;
  int kernel_probe_leaf_ = -1;
  int kernel_traverse_inner_ = -1;
  uint64_t splits_ = 0;
  uint64_t merges_ = 0;
};

}  // namespace teleport::oltp

#endif  // TELEPORT_OLTP_BTREE_H_
