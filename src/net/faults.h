#ifndef TELEPORT_NET_FAULTS_H_
#define TELEPORT_NET_FAULTS_H_

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "net/fabric.h"

namespace teleport::net {

/// Per-MessageKind transient fault probabilities. All zero by default, so an
/// attached injector with default specs perturbs nothing.
struct FaultSpec {
  double drop_p = 0.0;   ///< message lost in flight; the sender sees silence
  double delay_p = 0.0;  ///< message held up by `delay_ns` before the wire
  double dup_p = 0.0;    ///< message delivered twice (bytes counted twice)
  Nanos delay_ns = 0;    ///< extra latency applied on a delay event
};

/// Verdict for one message send.
struct FaultDecision {
  bool dropped = false;
  int copies = 1;            ///< 2 when duplicated
  Nanos extra_delay_ns = 0;  ///< sender-side stall before serialization
};

/// One scheduled outage of a compute<->memory link. While an outage covers
/// the current virtual time the targeted memory node is unreachable; the
/// window heals at `until` (exclusive). Windows are always finite —
/// permanent loss is expressed with Fabric::InjectFailureWindow, which keeps
/// the paper's panic semantics (§3.2).
struct OutageWindow {
  Nanos from = 0;
  Nanos until = 0;
  /// Crash-restart of the memory node (distinct from a permanent crash):
  /// when the node comes back at `until`, dirty compute-cache pages survive
  /// but unflushed memory-pool writes since the last Syncmem are lost and
  /// reported (MemorySystem::ApplyPoolRestarts).
  bool crash_restart = false;
  /// Memory node (pool shard) the window targets. Windows on different
  /// nodes are independent timelines: they may overlap freely, and each
  /// node's crash-restart count advances only with its own windows.
  int node = 0;
};

/// Seeded, deterministic fault-injection fabric consulted by the Fabric per
/// message. Two fault families:
///
///  - Probabilistic per-kind events (drop / delay / duplicate), drawn from a
///    dedicated xoshiro stream PER LINK PER DIRECTION, deterministically
///    seeded from (seed, src, dst, direction). A link's fault sequence is a
///    pure function of its own send sequence: adding or removing traffic on
///    link A never reshuffles which sends on link B get faulted. (The seed
///    shared one stream across all links in global send order, which made
///    every link's fault pattern depend on unrelated topology-wide traffic;
///    faults_test locks the isolation.)
///  - Scheduled outages on the virtual timeline, keyed by memory node:
///    transient link flaps and per-node crash-restart windows.
///
/// The injector never touches clocks or channels itself; the Fabric applies
/// its decisions so all lost time is accounted on virtual clocks.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  uint64_t seed() const { return seed_; }

  // --- Configuration ------------------------------------------------------

  void SetSpec(MessageKind kind, const FaultSpec& spec) {
    specs_[Index(kind)] = spec;
  }
  void SetSpecAll(const FaultSpec& spec) { specs_.fill(spec); }
  const FaultSpec& spec(MessageKind kind) const { return specs_[Index(kind)]; }

  /// Retransmission timeout of the transport-level reliability layer: a
  /// dropped message on a non-RPC path (coherence, writebacks, syncmem) is
  /// resent this much later, preserving the reliable-RDMA contract of §4.1.
  void set_link_rto_ns(Nanos rto) { link_rto_ns_ = rto; }
  Nanos link_rto_ns() const { return link_rto_ns_; }

  /// Schedules one outage window [from, until) on `node`. `until` must be
  /// > `from`.
  ///
  /// Windows on the SAME node must be pairwise disjoint: an overlap aborts
  /// with a message naming both windows, because merging would have to pick
  /// one `crash_restart` flag and silently change recovery semantics.
  /// Touching windows (`until == next.from`) are allowed — the timeline
  /// treats them as healed for the single instant in between. Windows on
  /// DIFFERENT nodes are unrelated and may overlap arbitrarily (two shards
  /// of a rack can be down at once). Windows may be added in any order; the
  /// injector keeps each node's timeline sorted and answers all queries by
  /// binary search.
  void AddOutage(Nanos from, Nanos until, bool crash_restart = false,
                 int node = 0);

  /// Schedules `count` link flaps of `duration` each, the k-th starting at
  /// `start + k * period`. Windows must not overlap (period > duration).
  void AddLinkFlaps(Nanos start, Nanos duration, Nanos period, int count,
                    int node = 0);

  /// Schedules a crash of memory node `node` at `at` that restarts
  /// `down_for` later.
  void ScheduleCrashRestart(Nanos at, Nanos down_for, int node = 0) {
    AddOutage(at, at + down_for, /*crash_restart=*/true, node);
  }

  // --- Per-send consultation (mutates the RNG stream) ---------------------

  /// Decides the fate of one message of `kind` sent at `now` over `link` in
  /// the given direction, drawing from that link+direction's own stream.
  /// Counted in the injector's event totals; scheduled outages are NOT
  /// applied here (the Fabric checks LinkUpAt separately so reachability
  /// stays a const query).
  FaultDecision OnSend(MessageKind kind, Nanos now, Link link,
                       bool to_memory);
  /// Legacy single-link form: the {0, 0} compute->memory stream.
  FaultDecision OnSend(MessageKind kind, Nanos now) {
    return OnSend(kind, now, Link{}, /*to_memory=*/true);
  }

  /// Records a message lost to an outage window (bookkeeping only).
  void CountOutageDrop() { ++outage_drops_; }

  // --- Timeline queries (const, deterministic) ----------------------------

  /// False while any scheduled outage window on `node` covers `now`.
  bool LinkUpAt(Nanos now, int node = 0) const;

  /// End of the outage window on `node` covering `now`, or -1 if that link
  /// is up. All injector windows are finite, so this never means "forever".
  Nanos HealsAt(Nanos now, int node = 0) const;

  /// True if the outage on `node` covering `now` is a crash-restart.
  bool InCrashRestartAt(Nanos now, int node = 0) const;

  /// Number of crash-restart windows of `node` fully completed
  /// (until <= now): that node has crashed and come back that many times.
  /// MemorySystem applies the lost-write bookkeeping per shard when its
  /// count advances.
  int CrashRestartsCompletedBy(Nanos now, int node = 0) const;

  /// Scheduled windows of one node, sorted by `from` (empty for a node with
  /// no schedule). For tests and linear-scan cross-checks.
  const std::vector<OutageWindow>& outages(int node = 0) const;

  /// Total scheduled windows across every node.
  size_t total_windows() const;

  // --- Event totals -------------------------------------------------------

  uint64_t drops() const { return drops_; }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t delays() const { return delays_; }
  uint64_t outage_drops() const { return outage_drops_; }
  uint64_t drops_of(MessageKind kind) const { return drops_by_kind_[Index(kind)]; }
  /// Total injected events of every family.
  uint64_t fault_events() const {
    return drops_ + duplicates_ + delays_ + outage_drops_;
  }

  std::string ToString() const;

  /// Reseeds every per-link RNG stream and clears event counters. The
  /// configured specs and outage schedule are kept, so a Reset + identical
  /// send sequence replays the identical fault pattern.
  void Reset();

 private:
  static size_t Index(MessageKind kind) {
    return static_cast<size_t>(kind);
  }

  /// One memory node's outage schedule plus its derived timeline indexes,
  /// rebuilt by AddOutage. Disjoint windows sorted by `from` are also
  /// sorted by `until`, so `untils` is an ascending key for "how many
  /// windows completed by t"; `crash_prefix[i]` counts crash-restart
  /// windows among the first i.
  struct NodeTimeline {
    std::vector<OutageWindow> outages;  ///< sorted by `from`, disjoint
    std::vector<Nanos> untils;
    std::vector<int> crash_prefix{0};
  };

  /// Window on `node` containing `now`, or nullptr. O(log n) over that
  /// node's sorted windows.
  const OutageWindow* WindowCovering(Nanos now, int node) const;

  /// The (link, direction) stream, created on first use. Seeding depends
  /// only on (seed_, src, dst, direction) — never on creation order — so
  /// lazily growing the map cannot perturb determinism.
  Rng& StreamFor(Link link, bool to_memory);

  uint64_t seed_;
  /// Per-(link, direction) fault streams, keyed by
  /// src << 32 | dst << 1 | to_memory (node ids are ints, so dst << 1 stays
  /// below the src field).
  std::unordered_map<uint64_t, Rng> streams_;
  std::array<FaultSpec, kNumMessageKinds> specs_{};
  std::vector<NodeTimeline> nodes_;  ///< index = memory node id; grown lazily

  Nanos link_rto_ns_ = 50 * kMicrosecond;

  uint64_t drops_ = 0;
  uint64_t duplicates_ = 0;
  uint64_t delays_ = 0;
  uint64_t outage_drops_ = 0;
  std::array<uint64_t, kNumMessageKinds> drops_by_kind_{};
};

}  // namespace teleport::net

#endif  // TELEPORT_NET_FAULTS_H_
