#include "net/fabric.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "net/faults.h"
#include "sim/metrics.h"
#include "sim/tracer.h"

namespace teleport::net {

std::string_view BackendToString(Backend backend) {
  switch (backend) {
    case Backend::kIdeal:
      return "ideal";
    case Backend::kQueuedRdma:
      return "queued_rdma";
    case Backend::kSmartNic:
      return "smartnic";
  }
  return "unknown";
}

Backend BackendFromEnv() {
  const char* v = std::getenv("TELEPORT_FABRIC_BACKEND");
  if (v == nullptr || v[0] == '\0') return Backend::kIdeal;
  if (std::strcmp(v, "queued_rdma") == 0) return Backend::kQueuedRdma;
  if (std::strcmp(v, "smartnic") == 0) return Backend::kSmartNic;
  return Backend::kIdeal;
}

std::string_view MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPushdownRequest:
      return "PushdownRequest";
    case MessageKind::kPushdownResponse:
      return "PushdownResponse";
    case MessageKind::kPageFaultRequest:
      return "PageFaultRequest";
    case MessageKind::kPageFaultReply:
      return "PageFaultReply";
    case MessageKind::kCoherenceRequest:
      return "CoherenceRequest";
    case MessageKind::kCoherenceReply:
      return "CoherenceReply";
    case MessageKind::kPageReturn:
      return "PageReturn";
    case MessageKind::kSyncmem:
      return "Syncmem";
    case MessageKind::kTryCancel:
      return "TryCancel";
    case MessageKind::kHeartbeat:
      return "Heartbeat";
  }
  return "Unknown";
}

Nanos Channel::Send(Nanos now, uint64_t bytes, const sim::CostParams& params) {
  Nanos delivery = now + params.NetTransfer(bytes);
  // Reliable FIFO on the virtual timeline: a message never overtakes one
  // already in flight. Sends reach the channel in host-call order, not
  // virtual-time order (cooperative tasks run with unsynchronized clocks),
  // so three cases arise:
  //  - now >= last_send_: this message is logically newest; it queues
  //    behind everything committed (clamp to last_delivery_).
  //  - now < last_send_ but the transfer would still be on the wire at
  //    last_send_ (delivery >= last_send_): it overlaps a committed
  //    transfer. The committed delivery was already returned to its
  //    caller and cannot be retroactively delayed, so the serial wire
  //    queues this one behind it instead. The seed exempted every
  //    out-of-order-time send from the clamp, which let an overlapping
  //    message be delivered before one already in flight
  //    (fabric_test's regression demonstrates the reordering).
  //  - delivery < last_send_: the transfer provably completed before the
  //    newest committed send touched the wire; it keeps its own timeline.
  if (delivery >= last_send_ && delivery < last_delivery_) {
    delivery = last_delivery_;
  }
  if (now > last_send_) last_send_ = now;
  if (delivery > last_delivery_) last_delivery_ = delivery;
  ++messages_sent_;
  bytes_sent_ += bytes;
  return delivery;
}

Nanos Channel::CommitAt(Nanos now, uint64_t bytes, Nanos delivery) {
  // The queued backend serializes a lagging send behind committed queue
  // residency (shared servers included) before this point; the clamp here
  // is the last line of the reliable-FIFO contract, binding when a
  // SmartNIC-offloaded message would overtake a host-path one whose
  // controller service dominated its delivery.
  if (delivery < last_delivery_) delivery = last_delivery_;
  if (now > last_send_) last_send_ = now;
  last_delivery_ = delivery;
  ++messages_sent_;
  bytes_sent_ += bytes;
  return delivery;
}

void Channel::Reset() {
  messages_sent_ = 0;
  bytes_sent_ = 0;
  last_send_ = 0;
  last_delivery_ = 0;
}

namespace {

/// Serialization time of `bytes` at `bytes_per_ns`, matching NetTransfer's
/// truncation so kIdeal and queued single-flow numbers agree byte-for-byte.
Nanos SerializationNs(uint64_t bytes, double bytes_per_ns) {
  return static_cast<Nanos>(static_cast<double>(bytes) / bytes_per_ns);
}

}  // namespace

Nanos Fabric::WireSend(Channel& ch, bool to_memory, Link link, Nanos now,
                       uint64_t bytes, MessageKind kind) {
  if (backend_ == Backend::kIdeal) return ch.Send(now, bytes, params_);

  QueueState& qs = QState(to_memory, link);
  const bool offload = SmartNicOffloaded(kind, bytes);

  // Doorbell-batched verb submission: a send within the batch window of
  // this queue pair's previous doorbell rides the posted verb; otherwise it
  // pays the WQE-build + doorbell cost before touching any queue. A lagging
  // virtual-time send always coalesces (its doorbell was provably already
  // rung), keeping submission monotone and replay-deterministic.
  Nanos submit = now;
  if (qs.last_doorbell >= 0 &&
      now <= qs.last_doorbell + params_.doorbell_batch_window_ns) {
    ++coalesced_doorbells_;
    ++pending_.doorbells_coalesced;
  } else {
    submit += params_.verb_overhead_ns;
    ++doorbells_;
    ++pending_.doorbells;
  }
  if (now > qs.last_doorbell) qs.last_doorbell = now;

  // Service start: behind this queue's committed residency AND the shared
  // per-node NIC AND (host path only) the shared per-shard controller.
  // This is the satellite-3 clamp generalized: a lagging send serializes
  // behind committed queue occupancy, not just the last delivery.
  Nanos& nic = nic_busy_[static_cast<size_t>(link.src)];
  Nanos& ctrl = ctrl_busy_[static_cast<size_t>(link.dst)];
  Nanos start = std::max(submit, qs.busy_until);
  start = std::max(start, nic);
  if (!offload) start = std::max(start, ctrl);

  // Occupancy this message observed: committed transfers still in flight
  // when it starts service (its own slot included).
  while (!qs.inflight.empty() && qs.inflight.front() <= start) {
    qs.inflight.pop_front();
  }
  const uint64_t depth = qs.inflight.size() + 1;

  // Each resource serves the bytes at its own rate and is pipelined: it can
  // accept the next message as soon as these bytes are pushed through it.
  // Delivery waits for the slowest resource on the message's path.
  const Nanos link_ser = SerializationNs(bytes, params_.net_bytes_per_ns);
  const Nanos nic_ser = SerializationNs(bytes, params_.nic_bytes_per_ns);
  const Nanos ctrl_ser =
      offload ? 0 : SerializationNs(bytes, params_.ctrl_bytes_per_ns);
  qs.busy_until = start + link_ser;
  nic = start + nic_ser;
  if (!offload) ctrl = start + ctrl_ser;
  const Nanos delivery = start + std::max({link_ser, nic_ser, ctrl_ser}) +
                         params_.net_latency_ns;
  qs.inflight.push_back(delivery);

  const size_t k = static_cast<size_t>(kind);
  if (depth > peak_depth_by_kind_[k]) peak_depth_by_kind_[k] = depth;
  const Nanos wait = start - submit;
  if (wait > 0) {
    ++queued_by_kind_[k];
    queue_wait_by_kind_[k] += static_cast<uint64_t>(wait);
    ++pending_.queued_sends;
    pending_.queue_wait_ns += static_cast<uint64_t>(wait);
    if (tracer_ != nullptr) {
      tracer_->Span("fabricq", MessageKindToString(kind), submit, wait,
                    sim::kTrackFabric);
    }
  }
  if (offload) {
    ++smartnic_offloads_;
    ++pending_.smartnic_offloads;
  }
  return ch.CommitAt(now, bytes, delivery);
}

void Fabric::TraceSend(bool to_memory, Link link, MessageKind kind,
                       uint64_t bytes, Nanos at) {
  if (tracer_ == nullptr) return;
  std::string args = "\"bytes\":" + std::to_string(bytes) + ",\"to\":\"";
  args += to_memory ? "memory" : "compute";
  args += '"';
  if (link.src != 0 || link.dst != 0) {
    args += ",\"link\":\"c" + std::to_string(link.src) + "-m" +
            std::to_string(link.dst) + "\"";
  }
  tracer_->Instant("fabric", MessageKindToString(kind), at, sim::kTrackFabric,
                   std::move(args));
}

Nanos Fabric::ReliableDeliver(Channel& ch, bool to_memory, Link link,
                              Nanos now, uint64_t bytes, MessageKind kind) {
  if (injector_ == nullptr) {
    CountDelivered(kind, bytes, 1);
    TraceSend(to_memory, link, kind, bytes, now);
    return WireSend(ch, to_memory, link, now, bytes, kind);
  }
  Nanos t = now;
  // A scheduled outage of this link's memory node holds the message at the
  // NIC until the link heals. (Injector windows are always finite; a
  // permanent failure is the panic path, which callers check before
  // sending.)
  {
    const Nanos heal = injector_->HealsAt(t, link.dst);
    if (heal > t) t = heal;
  }
  // Transport-level reliability: each drop is retransmitted one link-RTO
  // later, so delivery is delayed but never lost (§4.1 "reliable RDMA").
  // The retransmit count is capped so a drop_p=1.0 schedule cannot spin
  // forever; past the cap the transport escalates and delivery succeeds.
  FaultDecision d = injector_->OnSend(kind, t, link, to_memory);
  for (int rexmit = 0; d.dropped && rexmit < 64; ++rexmit) {
    t += injector_->link_rto_ns();
    const Nanos heal = injector_->HealsAt(t, link.dst);
    if (heal > t) t = heal;
    d = injector_->OnSend(kind, t, link, to_memory);
  }
  if (d.dropped) d = FaultDecision{};
  t += d.extra_delay_ns;
  CountDelivered(kind, bytes, d.copies);
  TraceSend(to_memory, link, kind, bytes, t);
  Nanos delivery = WireSend(ch, to_memory, link, t, bytes, kind);
  for (int c = 1; c < d.copies; ++c) {
    WireSend(ch, to_memory, link, t, bytes, kind);  // dup occupies the wire
  }
  return delivery;
}

SendOutcome Fabric::TryDeliver(Channel& ch, bool to_memory, Link link,
                               Nanos now, uint64_t bytes, MessageKind kind) {
  if (injector_ == nullptr) {
    CountDelivered(kind, bytes, 1);
    TraceSend(to_memory, link, kind, bytes, now);
    return SendOutcome{true, WireSend(ch, to_memory, link, now, bytes, kind)};
  }
  if (!injector_->LinkUpAt(now, link.dst)) {
    injector_->CountOutageDrop();
    return SendOutcome{false, 0};
  }
  const FaultDecision d = injector_->OnSend(kind, now, link, to_memory);
  if (d.dropped) return SendOutcome{false, 0};
  CountDelivered(kind, bytes, d.copies);
  const Nanos t = now + d.extra_delay_ns;
  TraceSend(to_memory, link, kind, bytes, t);
  Nanos delivery = WireSend(ch, to_memory, link, t, bytes, kind);
  for (int c = 1; c < d.copies; ++c) {
    WireSend(ch, to_memory, link, t, bytes, kind);
  }
  return SendOutcome{true, delivery, d.copies};
}

Nanos Fabric::RoundTripFromCompute(Link link, Nanos now, uint64_t req_bytes,
                                   uint64_t resp_bytes, Nanos handler_ns,
                                   MessageKind req_kind,
                                   MessageKind resp_kind) {
  const Nanos arrive = ReliableDeliver(C2m(link), /*to_memory=*/true, link,
                                       now, req_bytes, req_kind);
  // A SmartNIC-offloaded request is answered by the NIC-side executor
  // instead of the host round trip through the controller's workqueue.
  const Nanos handler = SmartNicOffloaded(req_kind, req_bytes)
                            ? params_.smartnic_handler_ns
                            : handler_ns;
  const Nanos reply_sent = arrive + handler;
  return ReliableDeliver(M2c(link), /*to_memory=*/false, link, reply_sent,
                         resp_bytes, resp_kind);
}

Nanos Fabric::RoundTripFromMemory(Link link, Nanos now, uint64_t req_bytes,
                                  uint64_t resp_bytes, Nanos handler_ns,
                                  MessageKind req_kind,
                                  MessageKind resp_kind) {
  const Nanos arrive = ReliableDeliver(M2c(link), /*to_memory=*/false, link,
                                       now, req_bytes, req_kind);
  const Nanos handler = SmartNicOffloaded(req_kind, req_bytes)
                            ? params_.smartnic_handler_ns
                            : handler_ns;
  const Nanos reply_sent = arrive + handler;
  return ReliableDeliver(C2m(link), /*to_memory=*/true, link, reply_sent,
                         resp_bytes, resp_kind);
}

RpcOutcome Fabric::TryRoundTripFromCompute(Link link, Nanos now,
                                           uint64_t req_bytes,
                                           uint64_t resp_bytes,
                                           Nanos handler_ns,
                                           MessageKind req_kind,
                                           MessageKind resp_kind) {
  const SendOutcome req = TryDeliver(C2m(link), /*to_memory=*/true, link,
                                     now, req_bytes, req_kind);
  if (!req.delivered) return RpcOutcome{false, 0};
  const Nanos handler = SmartNicOffloaded(req_kind, req_bytes)
                            ? params_.smartnic_handler_ns
                            : handler_ns;
  const Nanos reply_sent = req.deliver_at + handler;
  const SendOutcome resp = TryDeliver(M2c(link), /*to_memory=*/false, link,
                                      reply_sent, resp_bytes, resp_kind);
  if (!resp.delivered) return RpcOutcome{false, 0};
  return RpcOutcome{true, resp.deliver_at};
}

Nanos Fabric::SendGatherToMemory(Link link, Nanos now,
                                 const std::vector<uint64_t>& segments,
                                 MessageKind kind) {
  uint64_t total = 0;
  for (const uint64_t b : segments) total += b;
  if (backend_ != Backend::kIdeal) {
    ++sg_sends_;
    sg_segments_ += segments.size();
    pending_.sg_segments += segments.size();
  }
  return SendToMemory(link, now, total, kind);
}

Nanos Fabric::SendGatherToCompute(Link link, Nanos now,
                                  const std::vector<uint64_t>& segments,
                                  MessageKind kind) {
  uint64_t total = 0;
  for (const uint64_t b : segments) total += b;
  if (backend_ != Backend::kIdeal) {
    ++sg_sends_;
    sg_segments_ += segments.size();
    pending_.sg_segments += segments.size();
  }
  return SendToCompute(link, now, total, kind);
}

Nanos Fabric::QueueBacklogNs(Link link, Nanos now) const {
  if (backend_ == Backend::kIdeal) return 0;
  const Nanos nic = nic_busy_[static_cast<size_t>(link.src)];
  const Nanos ctrl = ctrl_busy_[static_cast<size_t>(link.dst)];
  Nanos backlog = 0;
  for (const bool to_memory : {true, false}) {
    const QueueState& qs = QState(to_memory, link);
    const Nanos start = std::max({qs.busy_until, nic, ctrl});
    if (start > now) backlog += start - now;
  }
  return backlog;
}

void Fabric::DrainQueueStats(sim::Metrics& m) {
  // kIdeal never touches the queue machinery, so pending_ stays all-zero and
  // draining would be a no-op — except that the reset below is a plain write
  // to shared fabric state, which tasks co-stepped by the parallel engine
  // (only ever eligible under kIdeal) would race on. Skip it entirely.
  if (backend_ == Backend::kIdeal) return;
  m.netq_queued_sends += pending_.queued_sends;
  m.netq_queue_wait_ns += pending_.queue_wait_ns;
  m.netq_doorbells += pending_.doorbells;
  m.netq_doorbells_coalesced += pending_.doorbells_coalesced;
  m.netq_sg_segments += pending_.sg_segments;
  m.netq_smartnic_offloads += pending_.smartnic_offloads;
  pending_ = PendingQueueStats{};
}

bool Fabric::ReachableAt(Nanos now, int memory_node) const {
  const size_t m = CheckedNode(memory_node);
  if (reachable_[m] == 0) return false;
  if (fail_from_[m] >= 0 && now >= fail_from_[m] &&
      (fail_until_[m] == kNeverHeals || now < fail_until_[m])) {
    return false;
  }
  if (injector_ != nullptr && !injector_->LinkUpAt(now, memory_node)) {
    return false;
  }
  return true;
}

Nanos Fabric::NextReachableAt(Nanos now, int memory_node) const {
  const size_t m = CheckedNode(memory_node);
  if (reachable_[m] == 0) return kNeverHeals;
  Nanos t = now;
  // Iterate because an injector outage may begin exactly where the injected
  // failure window ends (and vice versa).
  for (int iter = 0; iter < 64; ++iter) {
    if (fail_from_[m] >= 0 && t >= fail_from_[m] &&
        (fail_until_[m] == kNeverHeals || t < fail_until_[m])) {
      if (fail_until_[m] == kNeverHeals) return kNeverHeals;
      t = fail_until_[m];
      continue;
    }
    if (injector_ != nullptr) {
      const Nanos heal = injector_->HealsAt(t, memory_node);
      if (heal > t) {
        t = heal;
        continue;
      }
    }
    return t;
  }
  return t;
}

std::string Fabric::KindBreakdownToString() const {
  std::ostringstream os;
  os << "fabric{";
  bool first = true;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const MessageKind kind = static_cast<MessageKind>(k);
    if (messages_of(kind) == 0) continue;
    if (!first) os << " ";
    first = false;
    os << MessageKindToString(kind) << "=" << messages_of(kind) << "/"
       << bytes_of(kind) << "B";
  }
  os << "}";
  return os.str();
}

std::string Fabric::QueueBreakdownToString() const {
  std::ostringstream os;
  os << "fabricq{";
  bool first = true;
  auto sep = [&] {
    if (!first) os << " ";
    first = false;
  };
  for (int k = 0; k < kNumMessageKinds; ++k) {
    const size_t i = static_cast<size_t>(k);
    if (queued_by_kind_[i] == 0 && peak_depth_by_kind_[i] == 0) continue;
    sep();
    os << MessageKindToString(static_cast<MessageKind>(k)) << "="
       << queued_by_kind_[i] << "/" << queue_wait_by_kind_[i] << "ns/peak"
       << peak_depth_by_kind_[i];
  }
  if (doorbells_ != 0 || coalesced_doorbells_ != 0) {
    sep();
    os << "doorbells=" << doorbells_ << "+" << coalesced_doorbells_ << "c";
  }
  if (sg_sends_ != 0) {
    sep();
    os << "sg=" << sg_sends_ << "/" << sg_segments_ << "seg";
  }
  if (smartnic_offloads_ != 0) {
    sep();
    os << "offloads=" << smartnic_offloads_;
  }
  os << "}";
  return os.str();
}

void Fabric::Reset() {
  for (Channel& ch : compute_to_memory_) ch.Reset();
  for (Channel& ch : memory_to_compute_) ch.Reset();
  std::fill(reachable_.begin(), reachable_.end(), 1);
  std::fill(fail_from_.begin(), fail_from_.end(), -1);
  std::fill(fail_until_.begin(), fail_until_.end(), kNeverHeals);
  for (auto& n : messages_by_kind_) n.store(0, std::memory_order_relaxed);
  for (auto& n : bytes_by_kind_) n.store(0, std::memory_order_relaxed);
  for (QueueState& qs : q_c2m_) qs = QueueState{};
  for (QueueState& qs : q_m2c_) qs = QueueState{};
  std::fill(nic_busy_.begin(), nic_busy_.end(), 0);
  std::fill(ctrl_busy_.begin(), ctrl_busy_.end(), 0);
  queued_by_kind_.fill(0);
  queue_wait_by_kind_.fill(0);
  peak_depth_by_kind_.fill(0);
  doorbells_ = 0;
  coalesced_doorbells_ = 0;
  sg_sends_ = 0;
  sg_segments_ = 0;
  smartnic_offloads_ = 0;
  pending_ = PendingQueueStats{};
  if (injector_ != nullptr) injector_->Reset();
}

}  // namespace teleport::net
