#include "net/fabric.h"

namespace teleport::net {

std::string_view MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPushdownRequest:
      return "PushdownRequest";
    case MessageKind::kPushdownResponse:
      return "PushdownResponse";
    case MessageKind::kPageFaultRequest:
      return "PageFaultRequest";
    case MessageKind::kPageFaultReply:
      return "PageFaultReply";
    case MessageKind::kCoherenceRequest:
      return "CoherenceRequest";
    case MessageKind::kCoherenceReply:
      return "CoherenceReply";
    case MessageKind::kPageReturn:
      return "PageReturn";
    case MessageKind::kSyncmem:
      return "Syncmem";
    case MessageKind::kTryCancel:
      return "TryCancel";
    case MessageKind::kHeartbeat:
      return "Heartbeat";
  }
  return "Unknown";
}

Nanos Channel::Send(Nanos now, uint64_t bytes, const sim::CostParams& params) {
  Nanos delivery = now + params.NetTransfer(bytes);
  // Reliable FIFO: a message never overtakes one sent earlier on the
  // virtual timeline. (Simulated threads may issue sends out of host-call
  // order; a message sent at an earlier virtual time is logically first
  // and is not clamped by later ones.)
  if (now >= last_send_ && delivery < last_delivery_) {
    delivery = last_delivery_;
  }
  if (now > last_send_) last_send_ = now;
  if (delivery > last_delivery_) last_delivery_ = delivery;
  ++messages_sent_;
  bytes_sent_ += bytes;
  return delivery;
}

void Channel::Reset() {
  messages_sent_ = 0;
  bytes_sent_ = 0;
  last_send_ = 0;
  last_delivery_ = 0;
}

Nanos Fabric::RoundTripFromCompute(Nanos now, uint64_t req_bytes,
                                   uint64_t resp_bytes, Nanos handler_ns) {
  const Nanos arrive = compute_to_memory_.Send(now, req_bytes, params_);
  const Nanos reply_sent = arrive + handler_ns;
  return memory_to_compute_.Send(reply_sent, resp_bytes, params_);
}

Nanos Fabric::RoundTripFromMemory(Nanos now, uint64_t req_bytes,
                                  uint64_t resp_bytes, Nanos handler_ns) {
  const Nanos arrive = memory_to_compute_.Send(now, req_bytes, params_);
  const Nanos reply_sent = arrive + handler_ns;
  return compute_to_memory_.Send(reply_sent, resp_bytes, params_);
}

void Fabric::Reset() {
  compute_to_memory_.Reset();
  memory_to_compute_.Reset();
  reachable_ = true;
  fail_from_ = -1;
  fail_until_ = -1;
}

}  // namespace teleport::net
