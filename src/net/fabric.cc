#include "net/fabric.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "net/faults.h"
#include "sim/tracer.h"

namespace teleport::net {

std::string_view MessageKindToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPushdownRequest:
      return "PushdownRequest";
    case MessageKind::kPushdownResponse:
      return "PushdownResponse";
    case MessageKind::kPageFaultRequest:
      return "PageFaultRequest";
    case MessageKind::kPageFaultReply:
      return "PageFaultReply";
    case MessageKind::kCoherenceRequest:
      return "CoherenceRequest";
    case MessageKind::kCoherenceReply:
      return "CoherenceReply";
    case MessageKind::kPageReturn:
      return "PageReturn";
    case MessageKind::kSyncmem:
      return "Syncmem";
    case MessageKind::kTryCancel:
      return "TryCancel";
    case MessageKind::kHeartbeat:
      return "Heartbeat";
  }
  return "Unknown";
}

Nanos Channel::Send(Nanos now, uint64_t bytes, const sim::CostParams& params) {
  Nanos delivery = now + params.NetTransfer(bytes);
  // Reliable FIFO on the virtual timeline: a message never overtakes one
  // already in flight. Sends reach the channel in host-call order, not
  // virtual-time order (cooperative tasks run with unsynchronized clocks),
  // so three cases arise:
  //  - now >= last_send_: this message is logically newest; it queues
  //    behind everything committed (clamp to last_delivery_).
  //  - now < last_send_ but the transfer would still be on the wire at
  //    last_send_ (delivery >= last_send_): it overlaps a committed
  //    transfer. The committed delivery was already returned to its
  //    caller and cannot be retroactively delayed, so the serial wire
  //    queues this one behind it instead. The seed exempted every
  //    out-of-order-time send from the clamp, which let an overlapping
  //    message be delivered before one already in flight
  //    (fabric_test's regression demonstrates the reordering).
  //  - delivery < last_send_: the transfer provably completed before the
  //    newest committed send touched the wire; it keeps its own timeline.
  if (delivery >= last_send_ && delivery < last_delivery_) {
    delivery = last_delivery_;
  }
  if (now > last_send_) last_send_ = now;
  if (delivery > last_delivery_) last_delivery_ = delivery;
  ++messages_sent_;
  bytes_sent_ += bytes;
  return delivery;
}

void Channel::Reset() {
  messages_sent_ = 0;
  bytes_sent_ = 0;
  last_send_ = 0;
  last_delivery_ = 0;
}

void Fabric::TraceSend(bool to_memory, Link link, MessageKind kind,
                       uint64_t bytes, Nanos at) {
  if (tracer_ == nullptr) return;
  std::string args = "\"bytes\":" + std::to_string(bytes) + ",\"to\":\"";
  args += to_memory ? "memory" : "compute";
  args += '"';
  if (link.src != 0 || link.dst != 0) {
    args += ",\"link\":\"c" + std::to_string(link.src) + "-m" +
            std::to_string(link.dst) + "\"";
  }
  tracer_->Instant("fabric", MessageKindToString(kind), at, sim::kTrackFabric,
                   std::move(args));
}

Nanos Fabric::ReliableDeliver(Channel& ch, bool to_memory, Link link,
                              Nanos now, uint64_t bytes, MessageKind kind) {
  if (injector_ == nullptr) {
    CountDelivered(kind, bytes, 1);
    TraceSend(to_memory, link, kind, bytes, now);
    return ch.Send(now, bytes, params_);
  }
  Nanos t = now;
  // A scheduled outage of this link's memory node holds the message at the
  // NIC until the link heals. (Injector windows are always finite; a
  // permanent failure is the panic path, which callers check before
  // sending.)
  {
    const Nanos heal = injector_->HealsAt(t, link.dst);
    if (heal > t) t = heal;
  }
  // Transport-level reliability: each drop is retransmitted one link-RTO
  // later, so delivery is delayed but never lost (§4.1 "reliable RDMA").
  // The retransmit count is capped so a drop_p=1.0 schedule cannot spin
  // forever; past the cap the transport escalates and delivery succeeds.
  FaultDecision d = injector_->OnSend(kind, t);
  for (int rexmit = 0; d.dropped && rexmit < 64; ++rexmit) {
    t += injector_->link_rto_ns();
    const Nanos heal = injector_->HealsAt(t, link.dst);
    if (heal > t) t = heal;
    d = injector_->OnSend(kind, t);
  }
  if (d.dropped) d = FaultDecision{};
  t += d.extra_delay_ns;
  CountDelivered(kind, bytes, d.copies);
  TraceSend(to_memory, link, kind, bytes, t);
  Nanos delivery = ch.Send(t, bytes, params_);
  for (int c = 1; c < d.copies; ++c) {
    ch.Send(t, bytes, params_);  // duplicate occupies the wire too
  }
  return delivery;
}

SendOutcome Fabric::TryDeliver(Channel& ch, bool to_memory, Link link,
                               Nanos now, uint64_t bytes, MessageKind kind) {
  if (injector_ == nullptr) {
    CountDelivered(kind, bytes, 1);
    TraceSend(to_memory, link, kind, bytes, now);
    return SendOutcome{true, ch.Send(now, bytes, params_)};
  }
  if (!injector_->LinkUpAt(now, link.dst)) {
    injector_->CountOutageDrop();
    return SendOutcome{false, 0};
  }
  const FaultDecision d = injector_->OnSend(kind, now);
  if (d.dropped) return SendOutcome{false, 0};
  CountDelivered(kind, bytes, d.copies);
  const Nanos t = now + d.extra_delay_ns;
  TraceSend(to_memory, link, kind, bytes, t);
  Nanos delivery = ch.Send(t, bytes, params_);
  for (int c = 1; c < d.copies; ++c) {
    ch.Send(t, bytes, params_);
  }
  return SendOutcome{true, delivery, d.copies};
}

Nanos Fabric::RoundTripFromCompute(Link link, Nanos now, uint64_t req_bytes,
                                   uint64_t resp_bytes, Nanos handler_ns,
                                   MessageKind req_kind,
                                   MessageKind resp_kind) {
  const Nanos arrive = ReliableDeliver(C2m(link), /*to_memory=*/true, link,
                                       now, req_bytes, req_kind);
  const Nanos reply_sent = arrive + handler_ns;
  return ReliableDeliver(M2c(link), /*to_memory=*/false, link, reply_sent,
                         resp_bytes, resp_kind);
}

Nanos Fabric::RoundTripFromMemory(Link link, Nanos now, uint64_t req_bytes,
                                  uint64_t resp_bytes, Nanos handler_ns,
                                  MessageKind req_kind,
                                  MessageKind resp_kind) {
  const Nanos arrive = ReliableDeliver(M2c(link), /*to_memory=*/false, link,
                                       now, req_bytes, req_kind);
  const Nanos reply_sent = arrive + handler_ns;
  return ReliableDeliver(C2m(link), /*to_memory=*/true, link, reply_sent,
                         resp_bytes, resp_kind);
}

RpcOutcome Fabric::TryRoundTripFromCompute(Link link, Nanos now,
                                           uint64_t req_bytes,
                                           uint64_t resp_bytes,
                                           Nanos handler_ns,
                                           MessageKind req_kind,
                                           MessageKind resp_kind) {
  const SendOutcome req = TryDeliver(C2m(link), /*to_memory=*/true, link,
                                     now, req_bytes, req_kind);
  if (!req.delivered) return RpcOutcome{false, 0};
  const Nanos reply_sent = req.deliver_at + handler_ns;
  const SendOutcome resp = TryDeliver(M2c(link), /*to_memory=*/false, link,
                                      reply_sent, resp_bytes, resp_kind);
  if (!resp.delivered) return RpcOutcome{false, 0};
  return RpcOutcome{true, resp.deliver_at};
}

bool Fabric::ReachableAt(Nanos now, int memory_node) const {
  const size_t m = CheckedNode(memory_node);
  if (reachable_[m] == 0) return false;
  if (fail_from_[m] >= 0 && now >= fail_from_[m] &&
      (fail_until_[m] == kNeverHeals || now < fail_until_[m])) {
    return false;
  }
  if (injector_ != nullptr && !injector_->LinkUpAt(now, memory_node)) {
    return false;
  }
  return true;
}

Nanos Fabric::NextReachableAt(Nanos now, int memory_node) const {
  const size_t m = CheckedNode(memory_node);
  if (reachable_[m] == 0) return kNeverHeals;
  Nanos t = now;
  // Iterate because an injector outage may begin exactly where the injected
  // failure window ends (and vice versa).
  for (int iter = 0; iter < 64; ++iter) {
    if (fail_from_[m] >= 0 && t >= fail_from_[m] &&
        (fail_until_[m] == kNeverHeals || t < fail_until_[m])) {
      if (fail_until_[m] == kNeverHeals) return kNeverHeals;
      t = fail_until_[m];
      continue;
    }
    if (injector_ != nullptr) {
      const Nanos heal = injector_->HealsAt(t, memory_node);
      if (heal > t) {
        t = heal;
        continue;
      }
    }
    return t;
  }
  return t;
}

std::string Fabric::KindBreakdownToString() const {
  std::ostringstream os;
  os << "fabric{";
  bool first = true;
  for (int k = 0; k < kNumMessageKinds; ++k) {
    if (messages_by_kind_[static_cast<size_t>(k)] == 0) continue;
    if (!first) os << " ";
    first = false;
    os << MessageKindToString(static_cast<MessageKind>(k)) << "="
       << messages_by_kind_[static_cast<size_t>(k)] << "/"
       << bytes_by_kind_[static_cast<size_t>(k)] << "B";
  }
  os << "}";
  return os.str();
}

void Fabric::Reset() {
  for (Channel& ch : compute_to_memory_) ch.Reset();
  for (Channel& ch : memory_to_compute_) ch.Reset();
  std::fill(reachable_.begin(), reachable_.end(), 1);
  std::fill(fail_from_.begin(), fail_from_.end(), -1);
  std::fill(fail_until_.begin(), fail_until_.end(), kNeverHeals);
  messages_by_kind_.fill(0);
  bytes_by_kind_.fill(0);
  if (injector_ != nullptr) injector_->Reset();
}

}  // namespace teleport::net
