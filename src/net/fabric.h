#ifndef TELEPORT_NET_FABRIC_H_
#define TELEPORT_NET_FABRIC_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "sim/cost_model.h"

namespace teleport::net {

/// Kinds of messages exchanged between the compute pool and the memory-pool
/// controller. Mirrors the RPC vocabulary of §3.2 and §4.1.
enum class MessageKind {
  kPushdownRequest,
  kPushdownResponse,
  kPageFaultRequest,   ///< compute -> memory: fetch page / permissions
  kPageFaultReply,     ///< memory -> compute: page data / grant
  kCoherenceRequest,   ///< either direction: invalidate / downgrade
  kCoherenceReply,
  kPageReturn,         ///< dirty page flushed back on request
  kSyncmem,
  kTryCancel,
  kHeartbeat,
};

std::string_view MessageKindToString(MessageKind kind);

/// One direction of the simulated RDMA link. Reliable and FIFO: delivery
/// times are monotone in send order, which §4.1's concurrent-fault argument
/// depends on ("enforced using reliable RDMA connections").
class Channel {
 public:
  /// Sends `bytes` at virtual time `now`; returns the delivery time at the
  /// receiver (latency + serialization, no earlier than any previous
  /// delivery on this channel).
  Nanos Send(Nanos now, uint64_t bytes, const sim::CostParams& params);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  Nanos last_delivery() const { return last_delivery_; }

  void Reset();

 private:
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  Nanos last_send_ = 0;
  Nanos last_delivery_ = 0;
};

/// The point-to-point fabric between the compute pool and the memory-pool
/// controller: one reliable-FIFO channel per direction plus a reachability
/// flag driven by the heartbeat thread (§3.2, failure handling).
class Fabric {
 public:
  explicit Fabric(const sim::CostParams& params) : params_(params) {}

  /// Synchronous round trip from the compute side: request of `req_bytes`,
  /// reply of `resp_bytes`, plus remote handler time. Returns the completion
  /// time as observed by the caller who started at `now`.
  Nanos RoundTripFromCompute(Nanos now, uint64_t req_bytes,
                             uint64_t resp_bytes, Nanos handler_ns);

  /// Same, initiated from the memory side.
  Nanos RoundTripFromMemory(Nanos now, uint64_t req_bytes,
                            uint64_t resp_bytes, Nanos handler_ns);

  /// One-way message compute -> memory; returns delivery time.
  Nanos SendToMemory(Nanos now, uint64_t bytes) {
    return compute_to_memory_.Send(now, bytes, params_);
  }

  /// One-way message memory -> compute; returns delivery time.
  Nanos SendToCompute(Nanos now, uint64_t bytes) {
    return memory_to_compute_.Send(now, bytes, params_);
  }

  const sim::CostParams& params() const { return params_; }

  /// Simulates a network / memory-node hardware failure: subsequent
  /// pushdown attempts observe an unreachable pool. (The real system
  /// triggers a kernel panic, §3.2; we surface Status::Unavailable.)
  void set_reachable(bool reachable) { reachable_ = reachable; }
  bool reachable() const { return reachable_; }

  /// Failure injection: the pool becomes unreachable on the virtual
  /// timeline at `from` (forever if `until` <= `from`). Heartbeats and
  /// pushdowns evaluate reachability at their own send time.
  void InjectFailureWindow(Nanos from, Nanos until = 0) {
    fail_from_ = from;
    fail_until_ = until;
  }
  bool ReachableAt(Nanos now) const {
    if (!reachable_) return false;
    if (fail_from_ < 0) return true;
    if (now < fail_from_) return true;
    return fail_until_ > fail_from_ && now >= fail_until_;
  }

  uint64_t total_messages() const {
    return compute_to_memory_.messages_sent() +
           memory_to_compute_.messages_sent();
  }
  uint64_t total_bytes() const {
    return compute_to_memory_.bytes_sent() + memory_to_compute_.bytes_sent();
  }

  const Channel& compute_to_memory() const { return compute_to_memory_; }
  const Channel& memory_to_compute() const { return memory_to_compute_; }

  void Reset();

 private:
  sim::CostParams params_;
  Channel compute_to_memory_;
  Channel memory_to_compute_;
  bool reachable_ = true;
  Nanos fail_from_ = -1;
  Nanos fail_until_ = -1;
};

}  // namespace teleport::net

#endif  // TELEPORT_NET_FABRIC_H_
