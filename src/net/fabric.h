#ifndef TELEPORT_NET_FABRIC_H_
#define TELEPORT_NET_FABRIC_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/logging.h"
#include "common/units.h"
#include "sim/cost_model.h"

namespace teleport::sim {
class Tracer;
}

namespace teleport::net {

/// Kinds of messages exchanged between the compute pool and the memory-pool
/// controller. Mirrors the RPC vocabulary of §3.2 and §4.1.
enum class MessageKind {
  kPushdownRequest,
  kPushdownResponse,
  kPageFaultRequest,   ///< compute -> memory: fetch page / permissions
  kPageFaultReply,     ///< memory -> compute: page data / grant
  kCoherenceRequest,   ///< either direction: invalidate / downgrade
  kCoherenceReply,
  kPageReturn,         ///< dirty page flushed back on request
  kSyncmem,
  kTryCancel,
  kHeartbeat,
};

/// Number of MessageKind values; sizes the per-kind accounting tables.
inline constexpr int kNumMessageKinds = 10;

std::string_view MessageKindToString(MessageKind kind);

class FaultInjector;

/// Result of a send that may be lost to fault injection: `delivered` is
/// always true on a fabric without an injector.
struct SendOutcome {
  bool delivered = true;
  Nanos deliver_at = 0;  ///< meaningful only when delivered
  /// Copies that reached the receiver (2 on an injected duplicate). The
  /// reliable paths always report 1: transport-level dedup hides copies the
  /// same way it hides drops. Try* callers see every copy so end-to-end
  /// exactly-once (idempotency tokens + pool-side dedup) can be exercised.
  int copies = 1;
};

/// Result of a fault-aware round trip (TryRoundTripFromCompute).
struct RpcOutcome {
  bool ok = true;
  Nanos done = 0;  ///< completion time at the caller when ok
};

/// One direction of the simulated RDMA link. Reliable and FIFO: delivery
/// times are monotone in send order, which §4.1's concurrent-fault argument
/// depends on ("enforced using reliable RDMA connections").
class Channel {
 public:
  /// Sends `bytes` at virtual time `now`; returns the delivery time at the
  /// receiver (latency + serialization, no earlier than any previous
  /// delivery on this channel).
  Nanos Send(Nanos now, uint64_t bytes, const sim::CostParams& params);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  Nanos last_delivery() const { return last_delivery_; }

  void Reset();

 private:
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  Nanos last_send_ = 0;
  Nanos last_delivery_ = 0;
};

/// The point-to-point fabric between the compute pool and the memory-pool
/// controller: one reliable-FIFO channel per direction plus a reachability
/// flag driven by the heartbeat thread (§3.2, failure handling).
///
/// An optional FaultInjector perturbs traffic deterministically: one-way
/// `Send*` paths stay reliable (a drop is hidden by a transport-level
/// retransmit, delaying delivery), while the `Try*` paths surface drops to
/// the caller so the TELEPORT retry/backoff layer can handle them.
class Fabric {
 public:
  /// Sentinel for a failure window that never heals (permanent pool loss —
  /// the §3.2 kernel-panic case).
  static constexpr Nanos kNeverHeals = -1;

  explicit Fabric(const sim::CostParams& params) : params_(params) {}

  /// Synchronous round trip from the compute side: request of `req_bytes`,
  /// reply of `resp_bytes`, plus remote handler time. Returns the completion
  /// time as observed by the caller who started at `now`.
  Nanos RoundTripFromCompute(
      Nanos now, uint64_t req_bytes, uint64_t resp_bytes, Nanos handler_ns,
      MessageKind req_kind = MessageKind::kPageFaultRequest,
      MessageKind resp_kind = MessageKind::kPageFaultReply);

  /// Same, initiated from the memory side.
  Nanos RoundTripFromMemory(
      Nanos now, uint64_t req_bytes, uint64_t resp_bytes, Nanos handler_ns,
      MessageKind req_kind = MessageKind::kCoherenceRequest,
      MessageKind resp_kind = MessageKind::kCoherenceReply);

  /// One-way message compute -> memory; returns delivery time. Reliable:
  /// injected drops delay delivery (transport retransmit) instead of losing
  /// the message.
  Nanos SendToMemory(Nanos now, uint64_t bytes,
                     MessageKind kind = MessageKind::kPageReturn) {
    return ReliableDeliver(compute_to_memory_, now, bytes, kind);
  }

  /// One-way message memory -> compute; returns delivery time.
  Nanos SendToCompute(Nanos now, uint64_t bytes,
                      MessageKind kind = MessageKind::kPageFaultReply) {
    return ReliableDeliver(memory_to_compute_, now, bytes, kind);
  }

  /// Fault-visible sends: a drop (probabilistic, or a scheduled outage
  /// covering `now`) is surfaced to the caller, who is expected to apply a
  /// RetryPolicy. Without an injector these behave exactly like Send*.
  SendOutcome TrySendToMemory(Nanos now, uint64_t bytes, MessageKind kind) {
    return TryDeliver(compute_to_memory_, now, bytes, kind);
  }
  SendOutcome TrySendToCompute(Nanos now, uint64_t bytes, MessageKind kind) {
    return TryDeliver(memory_to_compute_, now, bytes, kind);
  }

  /// Fault-visible round trip from the compute side: fails when either the
  /// request or the reply is dropped (the caller cannot distinguish the two
  /// — it just never hears back before its retransmission timeout).
  RpcOutcome TryRoundTripFromCompute(Nanos now, uint64_t req_bytes,
                                     uint64_t resp_bytes, Nanos handler_ns,
                                     MessageKind req_kind,
                                     MessageKind resp_kind);

  const sim::CostParams& params() const { return params_; }

  /// Simulates a network / memory-node hardware failure: subsequent
  /// pushdown attempts observe an unreachable pool. (The real system
  /// triggers a kernel panic, §3.2; we surface Status::Unavailable.)
  void set_reachable(bool reachable) { reachable_ = reachable; }
  bool reachable() const { return reachable_; }

  /// Failure injection: the pool becomes unreachable on the virtual
  /// timeline at `from`, healing at `until` (exclusive). `until` defaults
  /// to kNeverHeals — a permanent failure, the paper's panic case. Passing
  /// `until <= from` (other than the sentinel) is a contract violation and
  /// aborts; it historically meant "forever" silently.
  void InjectFailureWindow(Nanos from, Nanos until = kNeverHeals) {
    TELEPORT_CHECK(until == kNeverHeals || until > from)
        << "failure window must be either permanent (until == kNeverHeals) "
           "or a real interval (until > from); got from=" << from
        << " until=" << until;
    fail_from_ = from;
    fail_until_ = until;
  }

  /// Heartbeats and pushdowns evaluate reachability at their own send time.
  /// Considers the manual flag, the injected failure window, and any
  /// scheduled injector outage (link flap / crash-restart).
  bool ReachableAt(Nanos now) const;

  /// Hard (panic-class) unreachability: the manual flag or an injected
  /// failure window, ignoring injector outages. The §3.2 runtime panics on
  /// these; injector outages are transient (flap / restartable node) and are
  /// handled by the retry layer instead.
  bool HardDownAt(Nanos now) const {
    if (!reachable_) return true;
    return fail_from_ >= 0 && now >= fail_from_ &&
           (fail_until_ == kNeverHeals || now < fail_until_);
  }

  /// Earliest virtual time >= `now` at which the pool is reachable again:
  /// `now` itself when currently reachable, the end of the covering
  /// transient window, or kNeverHeals for a permanent failure. This is what
  /// the §3.2 local-fallback policy consults to distinguish a restartable
  /// pool from a lost one.
  Nanos NextReachableAt(Nanos now) const;

  /// Deterministic fault injection; non-owning, may be nullptr.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Structured-event tracing of every delivered message, labeled by
  /// MessageKind; non-owning, may be nullptr (no events, no cost).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  sim::Tracer* tracer() const { return tracer_; }

  uint64_t total_messages() const {
    return compute_to_memory_.messages_sent() +
           memory_to_compute_.messages_sent();
  }
  uint64_t total_bytes() const {
    return compute_to_memory_.bytes_sent() + memory_to_compute_.bytes_sent();
  }

  /// Per-kind breakdown over both directions (delivered copies, including
  /// duplicates; drops are visible in the injector's counters instead).
  /// Separates coherence vs control traffic for Fig 22-style benches.
  uint64_t messages_of(MessageKind kind) const {
    return messages_by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t bytes_of(MessageKind kind) const {
    return bytes_by_kind_[static_cast<size_t>(kind)];
  }
  std::string KindBreakdownToString() const;

  const Channel& compute_to_memory() const { return compute_to_memory_; }
  const Channel& memory_to_compute() const { return memory_to_compute_; }

  void Reset();

 private:
  /// Reliable delivery: accounts the message per kind, applies injector
  /// delay/duplicate events, and hides drops behind transport retransmits.
  Nanos ReliableDeliver(Channel& ch, Nanos now, uint64_t bytes,
                        MessageKind kind);
  /// Fault-visible delivery: drops (and outages covering `now`) fail the
  /// send and are reported to the caller.
  SendOutcome TryDeliver(Channel& ch, Nanos now, uint64_t bytes,
                         MessageKind kind);

  /// Emits a per-kind instant event for a message entering the wire at
  /// `at`; no-op without an attached tracer.
  void TraceSend(const Channel& ch, MessageKind kind, uint64_t bytes,
                 Nanos at);

  void CountDelivered(MessageKind kind, uint64_t bytes, int copies) {
    messages_by_kind_[static_cast<size_t>(kind)] +=
        static_cast<uint64_t>(copies);
    bytes_by_kind_[static_cast<size_t>(kind)] +=
        bytes * static_cast<uint64_t>(copies);
  }

  sim::CostParams params_;
  Channel compute_to_memory_;
  Channel memory_to_compute_;
  bool reachable_ = true;
  Nanos fail_from_ = -1;
  Nanos fail_until_ = kNeverHeals;
  FaultInjector* injector_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::array<uint64_t, kNumMessageKinds> messages_by_kind_{};
  std::array<uint64_t, kNumMessageKinds> bytes_by_kind_{};
};

}  // namespace teleport::net

#endif  // TELEPORT_NET_FABRIC_H_
