#ifndef TELEPORT_NET_FABRIC_H_
#define TELEPORT_NET_FABRIC_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/units.h"
#include "sim/cost_model.h"

namespace teleport::sim {
class Tracer;
struct Metrics;
}  // namespace teleport::sim

namespace teleport::net {

/// Kinds of messages exchanged between the compute pool and the memory-pool
/// controller. Mirrors the RPC vocabulary of §3.2 and §4.1.
enum class MessageKind {
  kPushdownRequest,
  kPushdownResponse,
  kPageFaultRequest,   ///< compute -> memory: fetch page / permissions
  kPageFaultReply,     ///< memory -> compute: page data / grant
  kCoherenceRequest,   ///< either direction: invalidate / downgrade
  kCoherenceReply,
  kPageReturn,         ///< dirty page flushed back on request
  kSyncmem,
  kTryCancel,
  kHeartbeat,
};

/// Number of MessageKind values; sizes the per-kind accounting tables.
inline constexpr int kNumMessageKinds = 10;

std::string_view MessageKindToString(MessageKind kind);

/// Pluggable transport cost model of the fabric (PR9).
///
///  - kIdeal: the PR1-8 model — constant latency plus per-link
///    serialization, infinite NIC/controller capacity. Every pre-PR9 golden
///    is locked against this backend, and it stays the default.
///  - kQueuedRdma: contended data plane. Each direction of each link is a
///    FIFO service queue of finite bandwidth, multiplexed over a shared
///    per-compute-node NIC and a shared per-shard controller, with
///    doorbell-batched verb submission. One tenant's burst inflates a
///    neighbor's p99 (they share the NIC/controller servers).
///  - kSmartNic: kQueuedRdma, except coherence directory lookups and small
///    pushdown probes execute on the NIC — they skip the shard controller
///    queue and replace the host handler with the NIC-side handler time.
///
/// All three backends are deterministic: queue state is a pure function of
/// the send sequence (order, times, sizes), so RandomSchedule replays of the
/// same schedule evolve the queues bit-identically.
enum class Backend {
  kIdeal,
  kQueuedRdma,
  kSmartNic,
};

std::string_view BackendToString(Backend backend);

/// Backend selected by the TELEPORT_FABRIC_BACKEND environment variable
/// ("ideal" / "queued_rdma" / "smartnic"); kIdeal when unset, empty, or
/// unrecognized. Read once per Fabric construction, mirroring the
/// TELEPORT_SCALAR_DATAPATH / TELEPORT_JOURNAL knob pattern.
Backend BackendFromEnv();

class FaultInjector;

/// One (compute node, memory node) pair of the rack. The default-constructed
/// link is the degenerate 1x1 topology's single pair, so every pre-rack call
/// site addresses link {0, 0} implicitly.
struct Link {
  int src = 0;  ///< compute-pool client (blade) index
  int dst = 0;  ///< memory-pool shard (controller) index
};

/// Result of a send that may be lost to fault injection: `delivered` is
/// always true on a fabric without an injector.
struct SendOutcome {
  bool delivered = true;
  Nanos deliver_at = 0;  ///< meaningful only when delivered
  /// Copies that reached the receiver (2 on an injected duplicate). The
  /// reliable paths always report 1: transport-level dedup hides copies the
  /// same way it hides drops. Try* callers see every copy so end-to-end
  /// exactly-once (idempotency tokens + pool-side dedup) can be exercised.
  int copies = 1;
};

/// Result of a fault-aware round trip (TryRoundTripFromCompute).
struct RpcOutcome {
  bool ok = true;
  Nanos done = 0;  ///< completion time at the caller when ok
};

/// One direction of one simulated RDMA link. Reliable and FIFO: delivery
/// times are monotone in send order, which §4.1's concurrent-fault argument
/// depends on ("enforced using reliable RDMA connections").
///
/// The committed-transfer timeline (`last_send_` / `last_delivery_`) belongs
/// to exactly one (src, dst) link: a lagging send to shard B must never be
/// serialized behind an unrelated in-flight transfer to shard A. The fabric
/// therefore owns one Channel per direction per link, never one shared
/// channel routing multiple destinations (fabric_rack_test locks this).
/// Under the contended backends the per-link FIFO timeline is NOT the whole
/// story: all links of one compute node additionally share that node's NIC
/// and all links into one shard share its controller, so a send can queue
/// behind traffic of an unrelated link. That shared-server state lives in
/// the Fabric (it spans channels); the Channel still owns the per-link
/// committed timeline and enforces the final FIFO clamp via CommitAt.
class Channel {
 public:
  /// Sends `bytes` at virtual time `now`; returns the delivery time at the
  /// receiver (latency + serialization, no earlier than any previous
  /// delivery on this channel). This is the kIdeal wire model.
  Nanos Send(Nanos now, uint64_t bytes, const sim::CostParams& params);

  /// Commits a transfer whose delivery time a contended backend computed
  /// from queue occupancy: applies the per-channel reliable-FIFO clamp
  /// (delivery never precedes a committed delivery) and updates counters.
  Nanos CommitAt(Nanos now, uint64_t bytes, Nanos delivery);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  Nanos last_delivery() const { return last_delivery_; }

  void Reset();

 private:
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  Nanos last_send_ = 0;
  Nanos last_delivery_ = 0;
};

/// The rack fabric between N compute-pool clients and M memory-pool shards:
/// one reliable-FIFO channel per direction per (src, dst) link, plus
/// per-memory-node reachability driven by the heartbeat thread (§3.2,
/// failure handling). The default 1x1 construction is the paper's
/// point-to-point topology, and every legacy (link-less) entry point
/// addresses link {0, 0}, so single-pool callers are unchanged.
///
/// An optional FaultInjector perturbs traffic deterministically: one-way
/// `Send*` paths stay reliable (a drop is hidden by a transport-level
/// retransmit, delaying delivery), while the `Try*` paths surface drops to
/// the caller so the TELEPORT retry/backoff layer can handle them.
/// Probabilistic faults draw from a per-link, per-direction stream seeded
/// from (seed, src, dst, direction), so perturbing traffic on one link
/// never reshuffles which sends on another link get faulted (PR9 fixed the
/// earlier single global stream); scheduled outages are keyed by the link's
/// memory node.
class Fabric {
 public:
  /// Sentinel for a failure window that never heals (permanent pool loss —
  /// the §3.2 kernel-panic case).
  static constexpr Nanos kNeverHeals = -1;

  explicit Fabric(const sim::CostParams& params, int compute_nodes = 1,
                  int memory_nodes = 1)
      : params_(params),
        compute_nodes_(compute_nodes),
        memory_nodes_(memory_nodes),
        compute_to_memory_(
            static_cast<size_t>(compute_nodes) * memory_nodes),
        memory_to_compute_(
            static_cast<size_t>(compute_nodes) * memory_nodes),
        reachable_(static_cast<size_t>(memory_nodes), 1),
        fail_from_(static_cast<size_t>(memory_nodes), -1),
        fail_until_(static_cast<size_t>(memory_nodes), kNeverHeals),
        backend_(BackendFromEnv()),
        q_c2m_(static_cast<size_t>(compute_nodes) * memory_nodes),
        q_m2c_(static_cast<size_t>(compute_nodes) * memory_nodes),
        nic_busy_(static_cast<size_t>(compute_nodes), 0),
        ctrl_busy_(static_cast<size_t>(memory_nodes), 0) {
    TELEPORT_CHECK(compute_nodes >= 1 && memory_nodes >= 1)
        << "a rack has at least one compute node and one memory shard; got "
        << compute_nodes << "x" << memory_nodes;
  }

  /// Transport cost model; kIdeal unless TELEPORT_FABRIC_BACKEND selected a
  /// contended backend at construction. Switching backends mid-run is legal
  /// only on an idle fabric (committed queue state is per-backend).
  Backend backend() const { return backend_; }
  void set_backend(Backend backend) { backend_ = backend; }

  int compute_nodes() const { return compute_nodes_; }
  int memory_nodes() const { return memory_nodes_; }

  /// Synchronous round trip from the compute side: request of `req_bytes`,
  /// reply of `resp_bytes`, plus remote handler time. Returns the completion
  /// time as observed by the caller who started at `now`.
  Nanos RoundTripFromCompute(
      Link link, Nanos now, uint64_t req_bytes, uint64_t resp_bytes,
      Nanos handler_ns, MessageKind req_kind = MessageKind::kPageFaultRequest,
      MessageKind resp_kind = MessageKind::kPageFaultReply);
  Nanos RoundTripFromCompute(
      Nanos now, uint64_t req_bytes, uint64_t resp_bytes, Nanos handler_ns,
      MessageKind req_kind = MessageKind::kPageFaultRequest,
      MessageKind resp_kind = MessageKind::kPageFaultReply) {
    return RoundTripFromCompute(Link{}, now, req_bytes, resp_bytes,
                                handler_ns, req_kind, resp_kind);
  }

  /// Same, initiated from the memory side of `link`.
  Nanos RoundTripFromMemory(
      Link link, Nanos now, uint64_t req_bytes, uint64_t resp_bytes,
      Nanos handler_ns, MessageKind req_kind = MessageKind::kCoherenceRequest,
      MessageKind resp_kind = MessageKind::kCoherenceReply);
  Nanos RoundTripFromMemory(
      Nanos now, uint64_t req_bytes, uint64_t resp_bytes, Nanos handler_ns,
      MessageKind req_kind = MessageKind::kCoherenceRequest,
      MessageKind resp_kind = MessageKind::kCoherenceReply) {
    return RoundTripFromMemory(Link{}, now, req_bytes, resp_bytes, handler_ns,
                               req_kind, resp_kind);
  }

  /// One-way message compute -> memory; returns delivery time. Reliable:
  /// injected drops delay delivery (transport retransmit) instead of losing
  /// the message.
  Nanos SendToMemory(Link link, Nanos now, uint64_t bytes,
                     MessageKind kind = MessageKind::kPageReturn) {
    return ReliableDeliver(C2m(link), /*to_memory=*/true, link, now, bytes,
                           kind);
  }
  Nanos SendToMemory(Nanos now, uint64_t bytes,
                     MessageKind kind = MessageKind::kPageReturn) {
    return SendToMemory(Link{}, now, bytes, kind);
  }

  /// One-way message memory -> compute; returns delivery time.
  Nanos SendToCompute(Link link, Nanos now, uint64_t bytes,
                      MessageKind kind = MessageKind::kPageFaultReply) {
    return ReliableDeliver(M2c(link), /*to_memory=*/false, link, now, bytes,
                           kind);
  }
  Nanos SendToCompute(Nanos now, uint64_t bytes,
                      MessageKind kind = MessageKind::kPageFaultReply) {
    return SendToCompute(Link{}, now, bytes, kind);
  }

  /// Fault-visible sends: a drop (probabilistic, or a scheduled outage of
  /// the link's memory node covering `now`) is surfaced to the caller, who
  /// is expected to apply a RetryPolicy. Without an injector these behave
  /// exactly like Send*.
  SendOutcome TrySendToMemory(Link link, Nanos now, uint64_t bytes,
                              MessageKind kind) {
    return TryDeliver(C2m(link), /*to_memory=*/true, link, now, bytes, kind);
  }
  SendOutcome TrySendToMemory(Nanos now, uint64_t bytes, MessageKind kind) {
    return TrySendToMemory(Link{}, now, bytes, kind);
  }
  SendOutcome TrySendToCompute(Link link, Nanos now, uint64_t bytes,
                               MessageKind kind) {
    return TryDeliver(M2c(link), /*to_memory=*/false, link, now, bytes, kind);
  }
  SendOutcome TrySendToCompute(Nanos now, uint64_t bytes, MessageKind kind) {
    return TrySendToCompute(Link{}, now, bytes, kind);
  }

  /// Scatter-gather send: one verb whose gather list covers `segments` byte
  /// counts (the extent/span streaming paths post one WQE per shard instead
  /// of one per page). Counts as ONE message of sum(segments) bytes; under
  /// kIdeal this is exactly SendToMemory of the total, so span-path goldens
  /// are unchanged, while the contended backends ring one doorbell for the
  /// whole list and account the per-segment fan-in.
  Nanos SendGatherToMemory(Link link, Nanos now,
                           const std::vector<uint64_t>& segments,
                           MessageKind kind = MessageKind::kPageReturn);
  Nanos SendGatherToCompute(Link link, Nanos now,
                            const std::vector<uint64_t>& segments,
                            MessageKind kind = MessageKind::kPageFaultReply);

  /// Fault-visible round trip from the compute side: fails when either the
  /// request or the reply is dropped (the caller cannot distinguish the two
  /// — it just never hears back before its retransmission timeout).
  RpcOutcome TryRoundTripFromCompute(Link link, Nanos now, uint64_t req_bytes,
                                     uint64_t resp_bytes, Nanos handler_ns,
                                     MessageKind req_kind,
                                     MessageKind resp_kind);
  RpcOutcome TryRoundTripFromCompute(Nanos now, uint64_t req_bytes,
                                     uint64_t resp_bytes, Nanos handler_ns,
                                     MessageKind req_kind,
                                     MessageKind resp_kind) {
    return TryRoundTripFromCompute(Link{}, now, req_bytes, resp_bytes,
                                   handler_ns, req_kind, resp_kind);
  }

  const sim::CostParams& params() const { return params_; }

  /// Minimum one-way delivery latency of any link: the propagation floor
  /// below which no message — under any backend, with or without queueing —
  /// can cross the fabric. This is the conservative lookahead of the
  /// parallel discrete-event engine (Interleaver::set_lookahead): two tasks
  /// whose clocks differ by less than this cannot influence each other
  /// within the current batch even in principle.
  Nanos MinDeliveryLatencyNs() const { return params_.net_latency_ns; }

  /// Simulates a network / memory-node hardware failure: subsequent
  /// pushdown attempts observe an unreachable pool. (The real system
  /// triggers a kernel panic, §3.2; we surface Status::Unavailable.)
  /// The link-less form flips every memory node — the whole pool side of
  /// the rack — which on a 1x1 fabric is exactly the old semantics.
  void set_reachable(bool reachable) {
    for (auto& r : reachable_) r = reachable ? 1 : 0;
  }
  void set_node_reachable(int memory_node, bool reachable) {
    reachable_[CheckedNode(memory_node)] = reachable ? 1 : 0;
  }
  bool reachable(int memory_node = 0) const {
    return reachable_[CheckedNode(memory_node)] != 0;
  }

  /// Failure injection: memory node `memory_node` becomes unreachable on
  /// the virtual timeline at `from`, healing at `until` (exclusive).
  /// `until` defaults to kNeverHeals — a permanent failure, the paper's
  /// panic case. Passing `until <= from` (other than the sentinel) is a
  /// contract violation and aborts; it historically meant "forever"
  /// silently.
  void InjectFailureWindowOn(int memory_node, Nanos from,
                             Nanos until = kNeverHeals) {
    TELEPORT_CHECK(until == kNeverHeals || until > from)
        << "failure window must be either permanent (until == kNeverHeals) "
           "or a real interval (until > from); got from=" << from
        << " until=" << until;
    fail_from_[CheckedNode(memory_node)] = from;
    fail_until_[CheckedNode(memory_node)] = until;
  }
  void InjectFailureWindow(Nanos from, Nanos until = kNeverHeals) {
    InjectFailureWindowOn(0, from, until);
  }

  /// Heartbeats and pushdowns evaluate reachability at their own send time.
  /// Considers the per-node manual flag, the injected failure window, and
  /// any scheduled injector outage (link flap / crash-restart) of that node.
  bool ReachableAt(Nanos now, int memory_node = 0) const;

  /// Hard (panic-class) unreachability: the manual flag or an injected
  /// failure window, ignoring injector outages. The §3.2 runtime panics on
  /// these; injector outages are transient (flap / restartable node) and are
  /// handled by the retry layer instead.
  bool HardDownAt(Nanos now, int memory_node = 0) const {
    const size_t m = CheckedNode(memory_node);
    if (reachable_[m] == 0) return true;
    return fail_from_[m] >= 0 && now >= fail_from_[m] &&
           (fail_until_[m] == kNeverHeals || now < fail_until_[m]);
  }

  /// Earliest virtual time >= `now` at which memory node `memory_node` is
  /// reachable again: `now` itself when currently reachable, the end of the
  /// covering transient window, or kNeverHeals for a permanent failure.
  /// This is what the §3.2 local-fallback policy consults to distinguish a
  /// restartable pool from a lost one.
  Nanos NextReachableAt(Nanos now, int memory_node = 0) const;

  /// Deterministic fault injection; non-owning, may be nullptr.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Structured-event tracing of every delivered message, labeled by
  /// MessageKind; non-owning, may be nullptr (no events, no cost).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  sim::Tracer* tracer() const { return tracer_; }

  uint64_t total_messages() const {
    uint64_t n = 0;
    for (const Channel& ch : compute_to_memory_) n += ch.messages_sent();
    for (const Channel& ch : memory_to_compute_) n += ch.messages_sent();
    return n;
  }
  uint64_t total_bytes() const {
    uint64_t n = 0;
    for (const Channel& ch : compute_to_memory_) n += ch.bytes_sent();
    for (const Channel& ch : memory_to_compute_) n += ch.bytes_sent();
    return n;
  }

  /// Per-kind breakdown over both directions of every link (delivered
  /// copies, including duplicates; drops are visible in the injector's
  /// counters instead). Separates coherence vs control traffic for
  /// Fig 22-style benches.
  uint64_t messages_of(MessageKind kind) const {
    return messages_by_kind_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  uint64_t bytes_of(MessageKind kind) const {
    return bytes_by_kind_[static_cast<size_t>(kind)].load(
        std::memory_order_relaxed);
  }
  std::string KindBreakdownToString() const;

  // --- Contended-backend observability (all zero under kIdeal) ------------

  /// Committed queue residency ahead of a message entering `link` at `now`,
  /// both directions, including the shared NIC/controller servers. This is
  /// what a congestion-aware heartbeat deadline adds to its budget: the
  /// local NIC can see its own committed backlog, so a saturated-but-
  /// healthy shard is not mistaken for a dead one.
  Nanos QueueBacklogNs(Link link, Nanos now) const;
  Nanos QueueBacklogNs(Nanos now) const {
    return QueueBacklogNs(Link{}, now);
  }

  /// True when the active backend executes this message NIC-side (skipping
  /// the shard controller queue and the host handler): coherence directory
  /// traffic always, pushdown probes when small enough.
  bool SmartNicOffloaded(MessageKind kind, uint64_t bytes) const {
    if (backend_ != Backend::kSmartNic) return false;
    switch (kind) {
      case MessageKind::kCoherenceRequest:
      case MessageKind::kCoherenceReply:
        return true;
      case MessageKind::kPushdownRequest:
        return bytes <= params_.smartnic_max_bytes;
      default:
        return false;
    }
  }

  /// Per-kind queueing: sends that waited behind committed residency, their
  /// total wait, and the peak occupancy (in-flight transfers) observed.
  uint64_t queued_sends_of(MessageKind kind) const {
    return queued_by_kind_[static_cast<size_t>(kind)];
  }
  Nanos queue_wait_of(MessageKind kind) const {
    return static_cast<Nanos>(queue_wait_by_kind_[static_cast<size_t>(kind)]);
  }
  uint64_t peak_queue_depth_of(MessageKind kind) const {
    return peak_depth_by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t doorbells() const { return doorbells_; }
  uint64_t coalesced_doorbells() const { return coalesced_doorbells_; }
  uint64_t sg_sends() const { return sg_sends_; }
  uint64_t sg_segments() const { return sg_segments_; }
  uint64_t smartnic_offloads() const { return smartnic_offloads_; }

  /// Per-kind queueing breakdown, "fabricq{Kind=n/waitns/peakD ...}" plus
  /// the doorbell / scatter-gather / offload totals. Kinds that never
  /// queued are elided, and an untouched (or kIdeal) fabric prints exactly
  /// "fabricq{}", so pre-PR9 dumps that append this stay byte-identical.
  std::string QueueBreakdownToString() const;

  /// Folds the queue counters accumulated since the last drain into `m`'s
  /// netq_* fields and clears the pending deltas. The fabric has no
  /// ExecutionContext of its own, so the ddc/teleport charge points drain
  /// after each send to attribute queueing to the context that caused it.
  void DrainQueueStats(sim::Metrics& m);

  const Channel& compute_to_memory(Link link = Link{}) const {
    return compute_to_memory_[LinkIndex(link)];
  }
  const Channel& memory_to_compute(Link link = Link{}) const {
    return memory_to_compute_[LinkIndex(link)];
  }

  void Reset();

 private:
  size_t LinkIndex(Link link) const {
    TELEPORT_DCHECK(link.src >= 0 && link.src < compute_nodes_ &&
                    link.dst >= 0 && link.dst < memory_nodes_);
    return static_cast<size_t>(link.src) * memory_nodes_ + link.dst;
  }
  size_t CheckedNode(int memory_node) const {
    TELEPORT_DCHECK(memory_node >= 0 && memory_node < memory_nodes_);
    return static_cast<size_t>(memory_node);
  }
  Channel& C2m(Link link) { return compute_to_memory_[LinkIndex(link)]; }
  Channel& M2c(Link link) { return memory_to_compute_[LinkIndex(link)]; }

  /// One direction of one link's contended-backend queue state. The shared
  /// NIC/controller busy horizons live beside these in the Fabric; together
  /// they are a pure function of the send sequence, which is what keeps
  /// RandomSchedule replays bit-identical.
  struct QueueState {
    Nanos busy_until = 0;      ///< committed wire residency of this queue
    Nanos last_doorbell = -1;  ///< newest verb submission time (-1 = none)
    std::deque<Nanos> inflight;  ///< committed completion times, FIFO
  };
  QueueState& QState(bool to_memory, Link link) {
    return (to_memory ? q_c2m_ : q_m2c_)[LinkIndex(link)];
  }
  const QueueState& QState(bool to_memory, Link link) const {
    return (to_memory ? q_c2m_ : q_m2c_)[LinkIndex(link)];
  }

  /// Dispatches one wire transfer under the active backend: Channel::Send
  /// for kIdeal, the queued service model otherwise (doorbell batching,
  /// shared-server occupancy, per-kind queue accounting, trace span on a
  /// non-zero wait), finishing with the channel's FIFO commit.
  Nanos WireSend(Channel& ch, bool to_memory, Link link, Nanos now,
                 uint64_t bytes, MessageKind kind);

  /// Reliable delivery: accounts the message per kind, applies injector
  /// delay/duplicate events, and hides drops behind transport retransmits.
  /// Outage windows consulted are those of the link's memory node.
  Nanos ReliableDeliver(Channel& ch, bool to_memory, Link link, Nanos now,
                        uint64_t bytes, MessageKind kind);
  /// Fault-visible delivery: drops (and outages of the link's memory node
  /// covering `now`) fail the send and are reported to the caller.
  SendOutcome TryDeliver(Channel& ch, bool to_memory, Link link, Nanos now,
                         uint64_t bytes, MessageKind kind);

  /// Emits a per-kind instant event for a message entering the wire at
  /// `at`; no-op without an attached tracer. The {0, 0} link keeps the
  /// pre-rack event shape byte-for-byte; other links add a "link" field.
  void TraceSend(bool to_memory, Link link, MessageKind kind, uint64_t bytes,
                 Nanos at);

  void CountDelivered(MessageKind kind, uint64_t bytes, int copies) {
    // Relaxed atomics: links are otherwise pairwise-disjoint, and these
    // whole-fabric totals are commutative sums, so parallel tasks on
    // disjoint links may bump them concurrently without changing any
    // readable value at a batch boundary.
    messages_by_kind_[static_cast<size_t>(kind)].fetch_add(
        static_cast<uint64_t>(copies), std::memory_order_relaxed);
    bytes_by_kind_[static_cast<size_t>(kind)].fetch_add(
        bytes * static_cast<uint64_t>(copies), std::memory_order_relaxed);
  }

  sim::CostParams params_;
  int compute_nodes_ = 1;
  int memory_nodes_ = 1;
  std::vector<Channel> compute_to_memory_;  ///< [src * memory_nodes_ + dst]
  std::vector<Channel> memory_to_compute_;  ///< [src * memory_nodes_ + dst]
  std::vector<uint8_t> reachable_;          ///< per memory node
  std::vector<Nanos> fail_from_;            ///< per memory node
  std::vector<Nanos> fail_until_;           ///< per memory node
  FaultInjector* injector_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::array<std::atomic<uint64_t>, kNumMessageKinds> messages_by_kind_{};
  std::array<std::atomic<uint64_t>, kNumMessageKinds> bytes_by_kind_{};

  // Contended-backend state (untouched while backend_ == kIdeal).
  Backend backend_ = Backend::kIdeal;
  std::vector<QueueState> q_c2m_;  ///< [src * memory_nodes_ + dst]
  std::vector<QueueState> q_m2c_;  ///< [src * memory_nodes_ + dst]
  std::vector<Nanos> nic_busy_;    ///< per compute node, both directions
  std::vector<Nanos> ctrl_busy_;   ///< per memory shard, both directions
  std::array<uint64_t, kNumMessageKinds> queued_by_kind_{};
  std::array<uint64_t, kNumMessageKinds> queue_wait_by_kind_{};
  std::array<uint64_t, kNumMessageKinds> peak_depth_by_kind_{};
  uint64_t doorbells_ = 0;
  uint64_t coalesced_doorbells_ = 0;
  uint64_t sg_sends_ = 0;
  uint64_t sg_segments_ = 0;
  uint64_t smartnic_offloads_ = 0;
  /// Deltas since the last DrainQueueStats, folded into a context's netq_*
  /// metrics by the charge point that triggered the traffic.
  struct PendingQueueStats {
    uint64_t queued_sends = 0;
    uint64_t queue_wait_ns = 0;
    uint64_t doorbells = 0;
    uint64_t doorbells_coalesced = 0;
    uint64_t sg_segments = 0;
    uint64_t smartnic_offloads = 0;
  } pending_;
};

}  // namespace teleport::net

#endif  // TELEPORT_NET_FABRIC_H_
