#include "net/faults.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace teleport::net {

void FaultInjector::AddOutage(Nanos from, Nanos until, bool crash_restart) {
  TELEPORT_CHECK(until > from)
      << "outage windows are finite: until (" << until
      << ") must be > from (" << from
      << "); use Fabric::InjectFailureWindow for a permanent failure";
  for (const OutageWindow& w : outages_) {
    TELEPORT_CHECK(until <= w.from || from >= w.until)
        << "outage [" << from << ", " << until << ") overlaps scheduled ["
        << w.from << ", " << w.until
        << "); windows must be disjoint (touching endpoints are fine) — "
           "merge them at the call site if one outage is intended";
  }
  outages_.push_back(OutageWindow{from, until, crash_restart});
  std::sort(outages_.begin(), outages_.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.from < b.from;
            });
  // Rebuild the derived timeline indexes (see header). Disjointness makes
  // the until-order match the from-order, so both stay binary-searchable.
  untils_.clear();
  crash_prefix_.assign(1, 0);
  untils_.reserve(outages_.size());
  crash_prefix_.reserve(outages_.size() + 1);
  for (const OutageWindow& w : outages_) {
    untils_.push_back(w.until);
    crash_prefix_.push_back(crash_prefix_.back() + (w.crash_restart ? 1 : 0));
  }
}

void FaultInjector::AddLinkFlaps(Nanos start, Nanos duration, Nanos period,
                                 int count) {
  TELEPORT_CHECK(duration > 0 && count >= 0);
  TELEPORT_CHECK(count <= 1 || period > duration)
      << "flap period must exceed the flap duration";
  for (int k = 0; k < count; ++k) {
    const Nanos from = start + static_cast<Nanos>(k) * period;
    AddOutage(from, from + duration, /*crash_restart=*/false);
  }
}

FaultDecision FaultInjector::OnSend(MessageKind kind, Nanos now) {
  (void)now;
  FaultDecision d;
  const FaultSpec& s = specs_[Index(kind)];
  if (s.drop_p > 0.0 && rng_.Bernoulli(s.drop_p)) {
    d.dropped = true;
    ++drops_;
    ++drops_by_kind_[Index(kind)];
    return d;
  }
  if (s.dup_p > 0.0 && rng_.Bernoulli(s.dup_p)) {
    d.copies = 2;
    ++duplicates_;
  }
  if (s.delay_p > 0.0 && rng_.Bernoulli(s.delay_p)) {
    d.extra_delay_ns = s.delay_ns;
    ++delays_;
  }
  return d;
}

const OutageWindow* FaultInjector::WindowCovering(Nanos now) const {
  // First window with from > now; the only candidate covering `now` is the
  // one before it (windows are disjoint and sorted by from).
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), now,
      [](Nanos t, const OutageWindow& w) { return t < w.from; });
  if (it == outages_.begin()) return nullptr;
  --it;
  return now < it->until ? &*it : nullptr;
}

bool FaultInjector::LinkUpAt(Nanos now) const {
  return WindowCovering(now) == nullptr;
}

Nanos FaultInjector::HealsAt(Nanos now) const {
  const OutageWindow* w = WindowCovering(now);
  return w != nullptr ? w->until : -1;
}

bool FaultInjector::InCrashRestartAt(Nanos now) const {
  const OutageWindow* w = WindowCovering(now);
  return w != nullptr && w->crash_restart;
}

int FaultInjector::CrashRestartsCompletedBy(Nanos now) const {
  // Windows with until <= now form a prefix of the until-sorted list;
  // crash_prefix_ turns its length into a crash-restart count.
  const auto idx = static_cast<size_t>(
      std::upper_bound(untils_.begin(), untils_.end(), now) - untils_.begin());
  return crash_prefix_[idx];
}

std::string FaultInjector::ToString() const {
  std::ostringstream os;
  os << "faults{seed=" << seed_ << " drops=" << drops_
     << " dups=" << duplicates_ << " delays=" << delays_
     << " outage_drops=" << outage_drops_
     << " windows=" << outages_.size() << "}";
  return os.str();
}

void FaultInjector::Reset() {
  rng_ = Rng(seed_);
  drops_ = 0;
  duplicates_ = 0;
  delays_ = 0;
  outage_drops_ = 0;
  drops_by_kind_.fill(0);
}

}  // namespace teleport::net
