#include "net/faults.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace teleport::net {

void FaultInjector::AddOutage(Nanos from, Nanos until, bool crash_restart) {
  TELEPORT_CHECK(until > from)
      << "outage windows are finite: until (" << until
      << ") must be > from (" << from
      << "); use Fabric::InjectFailureWindow for a permanent failure";
  for (const OutageWindow& w : outages_) {
    TELEPORT_CHECK(until <= w.from || from >= w.until)
        << "outage [" << from << ", " << until << ") overlaps ["
        << w.from << ", " << w.until << ")";
  }
  outages_.push_back(OutageWindow{from, until, crash_restart});
  std::sort(outages_.begin(), outages_.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.from < b.from;
            });
}

void FaultInjector::AddLinkFlaps(Nanos start, Nanos duration, Nanos period,
                                 int count) {
  TELEPORT_CHECK(duration > 0 && count >= 0);
  TELEPORT_CHECK(count <= 1 || period > duration)
      << "flap period must exceed the flap duration";
  for (int k = 0; k < count; ++k) {
    const Nanos from = start + static_cast<Nanos>(k) * period;
    AddOutage(from, from + duration, /*crash_restart=*/false);
  }
}

FaultDecision FaultInjector::OnSend(MessageKind kind, Nanos now) {
  (void)now;
  FaultDecision d;
  const FaultSpec& s = specs_[Index(kind)];
  if (s.drop_p > 0.0 && rng_.Bernoulli(s.drop_p)) {
    d.dropped = true;
    ++drops_;
    ++drops_by_kind_[Index(kind)];
    return d;
  }
  if (s.dup_p > 0.0 && rng_.Bernoulli(s.dup_p)) {
    d.copies = 2;
    ++duplicates_;
  }
  if (s.delay_p > 0.0 && rng_.Bernoulli(s.delay_p)) {
    d.extra_delay_ns = s.delay_ns;
    ++delays_;
  }
  return d;
}

bool FaultInjector::LinkUpAt(Nanos now) const {
  for (const OutageWindow& w : outages_) {
    if (now >= w.from && now < w.until) return false;
    if (w.from > now) break;  // sorted; no later window can cover `now`
  }
  return true;
}

Nanos FaultInjector::HealsAt(Nanos now) const {
  for (const OutageWindow& w : outages_) {
    if (now >= w.from && now < w.until) return w.until;
    if (w.from > now) break;
  }
  return -1;
}

bool FaultInjector::InCrashRestartAt(Nanos now) const {
  for (const OutageWindow& w : outages_) {
    if (now >= w.from && now < w.until) return w.crash_restart;
    if (w.from > now) break;
  }
  return false;
}

int FaultInjector::CrashRestartsCompletedBy(Nanos now) const {
  int n = 0;
  for (const OutageWindow& w : outages_) {
    if (w.crash_restart && w.until <= now) ++n;
  }
  return n;
}

std::string FaultInjector::ToString() const {
  std::ostringstream os;
  os << "faults{seed=" << seed_ << " drops=" << drops_
     << " dups=" << duplicates_ << " delays=" << delays_
     << " outage_drops=" << outage_drops_
     << " windows=" << outages_.size() << "}";
  return os.str();
}

void FaultInjector::Reset() {
  rng_ = Rng(seed_);
  drops_ = 0;
  duplicates_ = 0;
  delays_ = 0;
  outage_drops_ = 0;
  drops_by_kind_.fill(0);
}

}  // namespace teleport::net
