#include "net/faults.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace teleport::net {

void FaultInjector::AddOutage(Nanos from, Nanos until, bool crash_restart,
                              int node) {
  TELEPORT_CHECK(until > from)
      << "outage windows are finite: until (" << until
      << ") must be > from (" << from
      << "); use Fabric::InjectFailureWindow for a permanent failure";
  TELEPORT_CHECK(node >= 0) << "outage node must be >= 0, got " << node;
  if (static_cast<size_t>(node) >= nodes_.size()) {
    nodes_.resize(static_cast<size_t>(node) + 1);
  }
  NodeTimeline& tl = nodes_[static_cast<size_t>(node)];
  // Disjointness is a per-node contract: windows on other nodes describe
  // other links of the rack and may overlap this one freely.
  for (const OutageWindow& w : tl.outages) {
    TELEPORT_CHECK(until <= w.from || from >= w.until)
        << "outage [" << from << ", " << until << ") on node " << node
        << " overlaps scheduled [" << w.from << ", " << w.until
        << "); windows on one node must be disjoint (touching endpoints are "
           "fine) — merge them at the call site if one outage is intended";
  }
  tl.outages.push_back(OutageWindow{from, until, crash_restart, node});
  std::sort(tl.outages.begin(), tl.outages.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.from < b.from;
            });
  // Rebuild the derived timeline indexes (see header). Disjointness makes
  // the until-order match the from-order, so both stay binary-searchable.
  tl.untils.clear();
  tl.crash_prefix.assign(1, 0);
  tl.untils.reserve(tl.outages.size());
  tl.crash_prefix.reserve(tl.outages.size() + 1);
  for (const OutageWindow& w : tl.outages) {
    tl.untils.push_back(w.until);
    tl.crash_prefix.push_back(tl.crash_prefix.back() +
                              (w.crash_restart ? 1 : 0));
  }
}

void FaultInjector::AddLinkFlaps(Nanos start, Nanos duration, Nanos period,
                                 int count, int node) {
  TELEPORT_CHECK(duration > 0 && count >= 0);
  TELEPORT_CHECK(count <= 1 || period > duration)
      << "flap period must exceed the flap duration";
  for (int k = 0; k < count; ++k) {
    const Nanos from = start + static_cast<Nanos>(k) * period;
    AddOutage(from, from + duration, /*crash_restart=*/false, node);
  }
}

Rng& FaultInjector::StreamFor(Link link, bool to_memory) {
  const uint64_t key = (static_cast<uint64_t>(link.src) << 32) |
                       (static_cast<uint64_t>(link.dst) << 1) |
                       (to_memory ? 1u : 0u);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    // splitmix64 finalizer over (seed, key): stream seeds are decorrelated
    // across links/directions yet a pure function of identity, so the map
    // may grow in any order without perturbing any existing stream.
    uint64_t z = seed_ + 0x9e3779b97f4a7c15ULL * (key + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    it = streams_.emplace(key, Rng(z ^ (z >> 31))).first;
  }
  return it->second;
}

FaultDecision FaultInjector::OnSend(MessageKind kind, Nanos now, Link link,
                                    bool to_memory) {
  (void)now;
  FaultDecision d;
  const FaultSpec& s = specs_[Index(kind)];
  Rng& rng = StreamFor(link, to_memory);
  if (s.drop_p > 0.0 && rng.Bernoulli(s.drop_p)) {
    d.dropped = true;
    ++drops_;
    ++drops_by_kind_[Index(kind)];
    return d;
  }
  if (s.dup_p > 0.0 && rng.Bernoulli(s.dup_p)) {
    d.copies = 2;
    ++duplicates_;
  }
  if (s.delay_p > 0.0 && rng.Bernoulli(s.delay_p)) {
    d.extra_delay_ns = s.delay_ns;
    ++delays_;
  }
  return d;
}

const OutageWindow* FaultInjector::WindowCovering(Nanos now, int node) const {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) return nullptr;
  const NodeTimeline& tl = nodes_[static_cast<size_t>(node)];
  // First window with from > now; the only candidate covering `now` is the
  // one before it (windows on one node are disjoint and sorted by from).
  auto it = std::upper_bound(
      tl.outages.begin(), tl.outages.end(), now,
      [](Nanos t, const OutageWindow& w) { return t < w.from; });
  if (it == tl.outages.begin()) return nullptr;
  --it;
  return now < it->until ? &*it : nullptr;
}

bool FaultInjector::LinkUpAt(Nanos now, int node) const {
  return WindowCovering(now, node) == nullptr;
}

Nanos FaultInjector::HealsAt(Nanos now, int node) const {
  const OutageWindow* w = WindowCovering(now, node);
  return w != nullptr ? w->until : -1;
}

bool FaultInjector::InCrashRestartAt(Nanos now, int node) const {
  const OutageWindow* w = WindowCovering(now, node);
  return w != nullptr && w->crash_restart;
}

int FaultInjector::CrashRestartsCompletedBy(Nanos now, int node) const {
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) return 0;
  const NodeTimeline& tl = nodes_[static_cast<size_t>(node)];
  // Windows with until <= now form a prefix of the until-sorted list;
  // crash_prefix turns its length into a crash-restart count.
  const auto idx = static_cast<size_t>(
      std::upper_bound(tl.untils.begin(), tl.untils.end(), now) -
      tl.untils.begin());
  return tl.crash_prefix[idx];
}

const std::vector<OutageWindow>& FaultInjector::outages(int node) const {
  static const std::vector<OutageWindow> kEmpty;
  if (node < 0 || static_cast<size_t>(node) >= nodes_.size()) return kEmpty;
  return nodes_[static_cast<size_t>(node)].outages;
}

size_t FaultInjector::total_windows() const {
  size_t n = 0;
  for (const NodeTimeline& tl : nodes_) n += tl.outages.size();
  return n;
}

std::string FaultInjector::ToString() const {
  std::ostringstream os;
  os << "faults{seed=" << seed_ << " drops=" << drops_
     << " dups=" << duplicates_ << " delays=" << delays_
     << " outage_drops=" << outage_drops_
     << " windows=" << total_windows() << "}";
  return os.str();
}

void FaultInjector::Reset() {
  // Dropping the map reseeds lazily: each stream's seed is a pure function
  // of (seed_, link, direction), so recreation replays identical sequences.
  streams_.clear();
  drops_ = 0;
  duplicates_ = 0;
  delays_ = 0;
  outage_drops_ = 0;
  drops_by_kind_.fill(0);
}

}  // namespace teleport::net
