#ifndef TELEPORT_SIM_PARALLEL_H_
#define TELEPORT_SIM_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace teleport::sim {

/// Reads TELEPORT_HOST_THREADS. Unset, empty, non-numeric, or < 1 all mean
/// 1 (the serial path); values are clamped to kMaxHostThreads so a typo
/// cannot fork thousands of threads.
int HostThreadsFromEnv();

inline constexpr int kMaxHostThreads = 256;

/// Tier A of the host-parallel engine: runs independent jobs — whole figure
/// legs, each owning a private MemorySystem/Fabric/Metrics/Tracer arena — on
/// a pool of host threads. The runner provides scheduling only; isolation is
/// the caller's contract (a job must not touch another job's arena; shared
/// simulator totals such as log level or fabric byte counters are relaxed
/// atomics, so cross-leg interleaving cannot change any per-leg result).
/// Output determinism is restored by the caller collecting per-job results
/// into index-addressed slots and merging them in job order after Run
/// returns — see bench::RunLegs, which buffers each leg's BenchRecord JSONL
/// through a thread-local sink and flushes in leg order, byte-identical to
/// a serial run.
class LegRunner {
 public:
  /// n <= 1 (or a single job) runs everything inline on the calling thread.
  explicit LegRunner(int host_threads) : host_threads_(host_threads) {}

  /// Executes every job to completion. Jobs are claimed in index order from
  /// a shared atomic cursor (deterministic claim order, nondeterministic
  /// placement — which is fine, results are merged by index). A job that
  /// throws aborts the process: legs are simulations whose failures are
  /// bugs, not recoverable conditions.
  void Run(const std::vector<std::function<void()>>& jobs);

  int host_threads() const { return host_threads_; }

 private:
  int host_threads_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_PARALLEL_H_
