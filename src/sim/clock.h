#ifndef TELEPORT_SIM_CLOCK_H_
#define TELEPORT_SIM_CLOCK_H_

#include "common/logging.h"
#include "common/units.h"

namespace teleport::sim {

/// Per-actor virtual clock. All simulated time in the repo flows through
/// explicit Advance() calls, so runs are deterministic and independent of
/// the host machine.
class VirtualClock {
 public:
  VirtualClock() = default;
  explicit VirtualClock(Nanos start) : now_(start) {}

  Nanos now() const { return now_; }

  /// Moves time forward by `delta` (must be non-negative).
  void Advance(Nanos delta) {
    TELEPORT_DCHECK(delta >= 0);
    now_ += delta;
  }

  /// Jumps to `t` if it is in the future; no-op otherwise. Used when an
  /// actor blocks on a resource that frees up at time t.
  void AdvanceTo(Nanos t) {
    if (t > now_) now_ = t;
  }

  void Reset(Nanos t = 0) { now_ = t; }

 private:
  Nanos now_ = 0;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_CLOCK_H_
