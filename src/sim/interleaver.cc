#include "sim/interleaver.h"

#include <limits>

namespace teleport::sim {

namespace {
constexpr Nanos kForever = std::numeric_limits<Nanos>::max();
}  // namespace

Nanos Interleaver::Run() { return RunUntil(kForever); }

Nanos Interleaver::RunUntil(Nanos deadline) {
  Nanos max_clock = 0;
  while (true) {
    Task* next = nullptr;
    for (Task* t : tasks_) {
      if (t->done()) continue;
      if (t->clock() >= deadline) continue;
      if (next == nullptr || t->clock() < next->clock()) next = t;
    }
    if (next == nullptr) break;
    next->Step();
    if (next->clock() > max_clock) max_clock = next->clock();
  }
  for (Task* t : tasks_) {
    if (t->clock() > max_clock) max_clock = t->clock();
  }
  return max_clock;
}

}  // namespace teleport::sim
