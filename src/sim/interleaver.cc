#include "sim/interleaver.h"

#include <limits>
#include <sstream>

#include "common/logging.h"

namespace teleport::sim {

namespace {
constexpr Nanos kForever = std::numeric_limits<Nanos>::max();
}  // namespace

size_t SmallestClockSchedule::Pick(const std::vector<size_t>& runnable,
                                   const std::vector<Task*>& tasks) {
  size_t best = runnable.front();
  for (const size_t i : runnable) {
    if (tasks[i]->clock() < tasks[best]->clock()) best = i;
  }
  return best;  // runnable is ascending, so ties keep registration order
}

size_t RandomSchedule::Pick(const std::vector<size_t>& runnable,
                            const std::vector<Task*>& tasks) {
  const std::vector<size_t>* pool = &runnable;
  if (max_skew_ != kUnboundedSkew) {
    Nanos min_clock = tasks[runnable.front()]->clock();
    for (const size_t i : runnable) {
      if (tasks[i]->clock() < min_clock) min_clock = tasks[i]->clock();
    }
    eligible_.clear();
    for (const size_t i : runnable) {
      if (tasks[i]->clock() <= min_clock + max_skew_) eligible_.push_back(i);
    }
    pool = &eligible_;  // never empty: the min-clock task always qualifies
  }
  return (*pool)[rng_.Uniform(pool->size())];
}

size_t ReplaySchedule::Pick(const std::vector<size_t>& runnable,
                            const std::vector<Task*>& tasks) {
  if (pos_ < trace_.size()) {
    const size_t wanted = trace_[pos_++];
    for (const size_t i : runnable) {
      if (i == wanted) return i;
    }
    ++divergences_;  // trace names a task that is done/blocked here
  } else if (!trace_.empty()) {
    ++divergences_;  // trace exhausted before the scenario finished
  }
  return fallback_.Pick(runnable, tasks);
}

std::string TraceToString(const std::vector<uint32_t>& trace) {
  std::ostringstream os;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) os << ",";
    os << trace[i];
  }
  return os.str();
}

std::vector<uint32_t> TraceFromString(const std::string& s) {
  std::vector<uint32_t> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    size_t pos = 0;
    const unsigned long v = std::stoul(tok, &pos);
    TELEPORT_CHECK(pos > 0) << "malformed trace token: " << tok;
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

Nanos Interleaver::Run() { return RunUntil(kForever); }

Nanos Interleaver::RunUntil(Nanos deadline) {
  SmallestClockSchedule default_schedule;
  Schedule* schedule = schedule_ != nullptr ? schedule_ : &default_schedule;
  std::vector<size_t> runnable;
  Nanos max_clock = 0;
  while (true) {
    runnable.clear();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      Task* t = tasks_[i];
      if (t->done()) continue;
      if (t->clock() >= deadline) continue;
      runnable.push_back(i);
    }
    if (runnable.empty()) break;
    const size_t pick = schedule->Pick(runnable, tasks_);
    TELEPORT_DCHECK(!tasks_[pick]->done());
    if (record_trace_) trace_.push_back(static_cast<uint32_t>(pick));
    tasks_[pick]->Step();
    if (tasks_[pick]->clock() > max_clock) max_clock = tasks_[pick]->clock();
  }
  for (Task* t : tasks_) {
    if (t->clock() > max_clock) max_clock = t->clock();
  }
  return max_clock;
}

}  // namespace teleport::sim
