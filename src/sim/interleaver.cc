#include "sim/interleaver.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace teleport::sim {

namespace {
constexpr Nanos kForever = std::numeric_limits<Nanos>::max();
}  // namespace

size_t SmallestClockSchedule::Pick(const std::vector<size_t>& runnable,
                                   const std::vector<Task*>& tasks) {
  size_t best = runnable.front();
  for (const size_t i : runnable) {
    if (tasks[i]->clock() < tasks[best]->clock()) best = i;
  }
  return best;  // runnable is ascending, so ties keep registration order
}

size_t RandomSchedule::Pick(const std::vector<size_t>& runnable,
                            const std::vector<Task*>& tasks) {
  const std::vector<size_t>* pool = &runnable;
  if (max_skew_ != kUnboundedSkew) {
    Nanos min_clock = tasks[runnable.front()]->clock();
    for (const size_t i : runnable) {
      if (tasks[i]->clock() < min_clock) min_clock = tasks[i]->clock();
    }
    eligible_.clear();
    for (const size_t i : runnable) {
      if (tasks[i]->clock() <= min_clock + max_skew_) eligible_.push_back(i);
    }
    pool = &eligible_;  // never empty: the min-clock task always qualifies
  }
  return (*pool)[rng_.Uniform(pool->size())];
}

size_t ReplaySchedule::Pick(const std::vector<size_t>& runnable,
                            const std::vector<Task*>& tasks) {
  if (pos_ < trace_.size()) {
    const size_t wanted = trace_[pos_++];
    for (const size_t i : runnable) {
      if (i == wanted) return i;
    }
    ++divergences_;  // trace names a task that is done/blocked here
  } else if (!trace_.empty()) {
    ++divergences_;  // trace exhausted before the scenario finished
  }
  return fallback_.Pick(runnable, tasks);
}

std::string TraceToString(const std::vector<uint32_t>& trace) {
  std::ostringstream os;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) os << ",";
    os << trace[i];
  }
  return os.str();
}

std::vector<uint32_t> TraceFromString(const std::string& s) {
  std::vector<uint32_t> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    size_t pos = 0;
    const unsigned long v = std::stoul(tok, &pos);
    TELEPORT_CHECK(pos > 0) << "malformed trace token: " << tok;
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

Nanos Interleaver::Run() { return RunUntil(kForever); }

void Interleaver::FlushParCounters(Metrics& m) {
  m.par_batches += par_.batches;
  m.par_parallel_steps += par_.parallel_steps;
  m.par_lookahead_stalls += par_.lookahead_stalls;
  m.par_handoff_waits += par_.handoff_waits;
  m.par_batched_quanta += par_.batched_quanta;
  par_ = ParCounters{};
}

Nanos Interleaver::RunUntil(Nanos deadline) {
  if (host_threads_ > 1 && schedule_ == nullptr && !record_trace_) {
    return RunUntilParallel(deadline);
  }
  SmallestClockSchedule default_schedule;
  Schedule* schedule = schedule_ != nullptr ? schedule_ : &default_schedule;
  std::vector<size_t> runnable;
  Nanos max_clock = 0;
  while (true) {
    runnable.clear();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      Task* t = tasks_[i];
      if (t->done()) continue;
      if (t->clock() >= deadline) continue;
      runnable.push_back(i);
    }
    if (runnable.empty()) break;
    if (schedule_ == nullptr) {
      // Default smallest-clock policy with batched handoffs: the pick may
      // run quanta back to back while it would remain the pick anyway —
      // its clock below the runner-up's (or equal, when the pick's lower
      // registration index wins the tie) and below the deadline. Quantum
      // boundaries, charges, and (recorded) trace entries are identical to
      // the unbatched loop; only park/unpark round trips are saved.
      size_t pick = runnable.front();
      for (const size_t i : runnable) {
        if (tasks_[i]->clock() < tasks_[pick]->clock()) pick = i;
      }
      size_t runner_up = tasks_.size();
      for (const size_t i : runnable) {
        if (i == pick) continue;
        if (runner_up == tasks_.size() ||
            tasks_[i]->clock() < tasks_[runner_up]->clock()) {
          runner_up = i;
        }
      }
      Nanos bound = deadline;
      bool inclusive = false;
      if (runner_up != tasks_.size() &&
          tasks_[runner_up]->clock() < deadline) {
        bound = tasks_[runner_up]->clock();
        inclusive = pick < runner_up;
      }
      TELEPORT_DCHECK(!tasks_[pick]->done());
      const uint64_t quanta = tasks_[pick]->StepBatch(bound, inclusive);
      par_.handoff_waits += 1;
      par_.batched_quanta += quanta - 1;
      if (record_trace_) {
        trace_.insert(trace_.end(), quanta, static_cast<uint32_t>(pick));
      }
      if (tasks_[pick]->clock() > max_clock) {
        max_clock = tasks_[pick]->clock();
      }
      continue;
    }
    const size_t pick = schedule->Pick(runnable, tasks_);
    TELEPORT_DCHECK(!tasks_[pick]->done());
    if (record_trace_) trace_.push_back(static_cast<uint32_t>(pick));
    tasks_[pick]->Step();
    par_.handoff_waits += 1;
    if (tasks_[pick]->clock() > max_clock) max_clock = tasks_[pick]->clock();
  }
  for (Task* t : tasks_) {
    if (t->clock() > max_clock) max_clock = t->clock();
  }
  return max_clock;
}

Nanos Interleaver::RunUntilParallel(Nanos deadline) {
  // Conservative (CMB-style, null-message-free) commit loop. Each round:
  //   1. order the runnable tasks by (clock, registration index) — the
  //      exact serial smallest-clock order;
  //   2. admit tasks in that order while their clock is inside the
  //      lookahead window AND they conflict with no already-admitted and
  //      no already-excluded task (the excluded check preserves the serial
  //      relative order of every conflicting pair: a task never overtakes
  //      an earlier-ordered task it shares a node or shard with);
  //   3. step the whole batch concurrently (split-phase), then barrier.
  // Steps inside a batch touch pairwise-disjoint simulator state, so they
  // commute; across batches, each shared resource sees its operations in
  // serial order — which is why the result is bit-identical to serial.
  std::vector<size_t> order, batch, excluded;
  Nanos max_clock = 0;
  while (true) {
    order.clear();
    for (size_t i = 0; i < tasks_.size(); ++i) {
      Task* t = tasks_[i];
      if (t->done()) continue;
      if (t->clock() >= deadline) continue;
      order.push_back(i);
    }
    if (order.empty()) break;
    std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
      return tasks_[a]->clock() < tasks_[b]->clock();
    });
    const Nanos min_clock = tasks_[order.front()]->clock();
    const bool windowed = lookahead_ != kUnboundedLookahead;
    batch.clear();
    excluded.clear();
    for (size_t k = 0; k < order.size(); ++k) {
      const size_t i = order[k];
      if (!batch.empty()) {
        if (windowed && tasks_[i]->clock() - min_clock >= lookahead_) {
          // Sorted order: everything from here on is outside the window.
          par_.lookahead_stalls += order.size() - k;
          break;
        }
        if (batch.size() >= static_cast<size_t>(host_threads_)) break;
      }
      const TaskPartition p = tasks_[i]->partition();
      bool conflict = false;
      for (const size_t j : batch) {
        if (p.ConflictsWith(tasks_[j]->partition())) conflict = true;
      }
      for (const size_t j : excluded) {
        if (p.ConflictsWith(tasks_[j]->partition())) conflict = true;
      }
      (conflict ? excluded : batch).push_back(i);
    }
    TELEPORT_DCHECK(!batch.empty());
    if (batch.size() == 1) {
      tasks_[batch.front()]->Step();
    } else {
      for (const size_t i : batch) tasks_[i]->BeginStep();
      for (const size_t i : batch) tasks_[i]->FinishStep();
      par_.parallel_steps += batch.size();
    }
    par_.batches += 1;
    par_.handoff_waits += batch.size();
    for (const size_t i : batch) {
      if (tasks_[i]->clock() > max_clock) max_clock = tasks_[i]->clock();
    }
  }
  for (Task* t : tasks_) {
    if (t->clock() > max_clock) max_clock = t->clock();
  }
  return max_clock;
}

}  // namespace teleport::sim
