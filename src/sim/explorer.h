#ifndef TELEPORT_SIM_EXPLORER_H_
#define TELEPORT_SIM_EXPLORER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/interleaver.h"

namespace teleport::sim {

/// One fresh instance of the concurrency scenario under exploration. The
/// explorer re-creates the scenario from scratch for every schedule it
/// enumerates (simulated state is cheap to rebuild and there is no way to
/// roll a MemorySystem back), so a scenario must be a pure function of its
/// constructor arguments.
class ExplorationScenario {
 public:
  virtual ~ExplorationScenario() = default;

  /// The tasks to interleave, in registration order. Owned by the scenario;
  /// pointers stay valid for the scenario's lifetime.
  virtual std::vector<Task*> tasks() = 0;

  /// Digest of the semantically relevant simulation state (task progress,
  /// page permissions, data values) at the current instant. Used for
  /// visited-state pruning: two prefixes reaching the same hash have
  /// identical futures, so only one is expanded. Return values must be a
  /// pure function of the executed prefix. Only consulted when
  /// Options::prune_visited is set.
  virtual uint64_t StateHash() { return 0; }

  /// Called when a complete schedule (all tasks done) finishes, with the
  /// trace of task indices that produced it.
  virtual void OnComplete(const std::vector<uint32_t>& trace) { (void)trace; }
};

/// Bounded exhaustive depth-first enumeration of task interleavings: every
/// distinct sequence of scheduling choices over the scenario's tasks is
/// executed once, in lexicographic order of the choice indices. Suitable
/// for small task graphs (2 tasks x a handful of steps — the state space is
/// the binomial C(a+b, a)); the bounds below keep a misconfigured scenario
/// from running away.
class DfsExplorer {
 public:
  struct Options {
    /// Stop after this many complete schedules.
    uint64_t max_schedules = 1'000'000;
    /// Longest schedule (total Step() calls) the explorer will follow.
    int max_steps = 64;
    /// Prune branches whose post-prefix StateHash() was already expanded.
    /// Requires the scenario to implement StateHash().
    bool prune_visited = false;
  };

  struct Stats {
    uint64_t schedules_run = 0;   ///< complete schedules executed
    uint64_t states_visited = 0;  ///< distinct StateHash values expanded
    uint64_t prunes = 0;          ///< branches cut by visited-state hashing
    uint64_t replays = 0;         ///< scenario re-creations (cost metric)
    bool truncated = false;       ///< a bound fired before exhaustion
  };

  using Factory = std::function<std::unique_ptr<ExplorationScenario>()>;

  /// Enumerates schedules of `factory`'s scenario under `opts`.
  static Stats Explore(const Factory& factory, const Options& opts);
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_EXPLORER_H_
