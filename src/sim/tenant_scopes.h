#ifndef TELEPORT_SIM_TENANT_SCOPES_H_
#define TELEPORT_SIM_TENANT_SCOPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "sim/metrics.h"

namespace teleport::sim {

/// Per-tenant accounting for multi-tenant racks (PR7): one Metrics plus one
/// latency Histogram per tenant, merging into a global view through the
/// exact same algebra the rest of the simulator uses (Metrics::Add and
/// Histogram::Merge), so scoped totals are provably a partition of the
/// global totals — MergedMetrics() over the scopes equals the sum of every
/// diff ever attributed, field by field.
///
/// The scopes are an attribution layer, not a data path: contexts still own
/// their Metrics; engines snapshot-and-diff around a tenant's work and feed
/// the diff here. A 1-tenant instance is byte-equivalent to the legacy
/// single global view.
class TenantScopes {
 public:
  /// `tenants` >= 1 accounting slots, all zeroed.
  explicit TenantScopes(int tenants = 1);

  int tenants() const { return static_cast<int>(metrics_.size()); }

  /// Direct access to one tenant's counters (CHECK-bounded).
  Metrics& metrics(int tenant);
  const Metrics& metrics(int tenant) const;
  Histogram& latency(int tenant);
  const Histogram& latency(int tenant) const;

  /// Attributes one completed unit of work: the context-metrics diff for
  /// the work plus its end-to-end virtual latency.
  void Record(int tenant, const Metrics& diff, int64_t latency_ns);

  /// Element-wise sum of every tenant's counters (the global view).
  Metrics MergedMetrics() const;

  /// Merge of every tenant's latency histogram (the global distribution).
  Histogram MergedLatency() const;

  /// Completed work units (latency samples) attributed to `tenant`.
  uint64_t completed(int tenant) const { return latency(tenant).count(); }

  /// Jain's fairness index over arbitrary per-tenant allocations:
  /// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly fair, 1/n = one
  /// tenant got everything. An all-zero vector reports 1 (nothing was
  /// allocated, so nothing was allocated unfairly).
  static double JainIndex(const std::vector<double>& xs);

  /// Jain index over per-tenant completed work units.
  double CompletionFairness() const;

  /// Jain index over per-tenant remote-memory bytes (the contended
  /// resource of Fig 21).
  double RemoteBytesFairness() const;

  /// Per-tenant one-line summaries plus the merged view.
  std::string ToString() const;

 private:
  std::vector<Metrics> metrics_;
  std::vector<Histogram> latency_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_TENANT_SCOPES_H_
