#include "sim/tenant_scopes.h"

#include <sstream>

#include "common/logging.h"

namespace teleport::sim {

TenantScopes::TenantScopes(int tenants) {
  TELEPORT_CHECK(tenants >= 1) << "need at least one tenant scope";
  metrics_.resize(static_cast<size_t>(tenants));
  latency_.resize(static_cast<size_t>(tenants));
}

Metrics& TenantScopes::metrics(int tenant) {
  TELEPORT_CHECK(tenant >= 0 && tenant < tenants())
      << "tenant " << tenant << " outside [0, " << tenants() << ")";
  return metrics_[static_cast<size_t>(tenant)];
}

const Metrics& TenantScopes::metrics(int tenant) const {
  TELEPORT_CHECK(tenant >= 0 && tenant < tenants())
      << "tenant " << tenant << " outside [0, " << tenants() << ")";
  return metrics_[static_cast<size_t>(tenant)];
}

Histogram& TenantScopes::latency(int tenant) {
  TELEPORT_CHECK(tenant >= 0 && tenant < tenants())
      << "tenant " << tenant << " outside [0, " << tenants() << ")";
  return latency_[static_cast<size_t>(tenant)];
}

const Histogram& TenantScopes::latency(int tenant) const {
  TELEPORT_CHECK(tenant >= 0 && tenant < tenants())
      << "tenant " << tenant << " outside [0, " << tenants() << ")";
  return latency_[static_cast<size_t>(tenant)];
}

void TenantScopes::Record(int tenant, const Metrics& diff,
                          int64_t latency_ns) {
  metrics(tenant).Add(diff);
  latency(tenant).Add(latency_ns);
}

Metrics TenantScopes::MergedMetrics() const {
  Metrics merged;
  for (const Metrics& m : metrics_) merged.Add(m);
  return merged;
}

Histogram TenantScopes::MergedLatency() const {
  Histogram merged;
  for (const Histogram& h : latency_) merged.Merge(h);
  return merged;
}

double TenantScopes::JainIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

double TenantScopes::CompletionFairness() const {
  std::vector<double> xs;
  xs.reserve(latency_.size());
  for (const Histogram& h : latency_) {
    xs.push_back(static_cast<double>(h.count()));
  }
  return JainIndex(xs);
}

double TenantScopes::RemoteBytesFairness() const {
  std::vector<double> xs;
  xs.reserve(metrics_.size());
  for (const Metrics& m : metrics_) {
    xs.push_back(static_cast<double>(m.RemoteMemoryBytes()));
  }
  return JainIndex(xs);
}

std::string TenantScopes::ToString() const {
  std::ostringstream os;
  for (int t = 0; t < tenants(); ++t) {
    os << "tenant " << t << ": completed=" << completed(t)
       << " remote_bytes=" << metrics(t).RemoteMemoryBytes()
       << " latency={" << latency(t).ToString() << "}\n";
  }
  os << "merged: completed=" << MergedLatency().count()
     << " remote_bytes=" << MergedMetrics().RemoteMemoryBytes()
     << " completion_fairness=" << CompletionFairness()
     << " remote_bytes_fairness=" << RemoteBytesFairness();
  return os.str();
}

}  // namespace teleport::sim
