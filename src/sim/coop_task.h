#ifndef TELEPORT_SIM_COOP_TASK_H_
#define TELEPORT_SIM_COOP_TASK_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "ddc/memory_system.h"
#include "sim/interleaver.h"

namespace teleport::sim {

/// Adapts straight-line simulated code (an engine query, a pushdown, an
/// interfering mutator) into a steppable Task without rewriting it as a
/// state machine. The body runs on a dedicated host thread that is parked
/// except while the scheduler is inside Step(): every charged access / CPU
/// batch on the hooked ExecutionContexts counts toward a quantum, and when
/// the quantum fills the body parks and Step() returns. Exactly one thread
/// is ever runnable (strict mutex/condvar handoff), so execution remains
/// fully deterministic — the host thread is a coroutine substitute, not a
/// source of parallelism.
///
/// The hooked contexts must be used by no other CoopTask; the body must
/// confine its simulated work to them (work on un-hooked contexts simply
/// never yields, which coarsens — but never corrupts — the interleaving).
class CoopTask : public Task {
 public:
  /// `ctxs`: the contexts whose accesses drive preemption; ctxs[0] is the
  /// primary (its virtual clock dominates ours between handoffs). `body`
  /// runs once on the worker thread. `quantum` = charged operations per
  /// Step() (1 gives the finest interleaving). `partition` opts the task
  /// into conservative parallel stepping (Interleaver::set_host_threads);
  /// a non-exclusive partition is a promise that the body touches pages of
  /// exactly that memory shard from exactly that compute node, runs no
  /// pushdown sessions, and takes no cross-task host locks (e.g. the OLTP
  /// commit latch) — violations are data races, which the TSAN CI job and
  /// the two-scale bit-identity tests exist to catch.
  CoopTask(std::vector<ddc::ExecutionContext*> ctxs,
           std::function<void()> body, int quantum = 1,
           TaskPartition partition = {});

  /// Joins the worker. If the task was abandoned mid-run (explorer bounds,
  /// failed test), the body is unwound with a private exception from its
  /// next yield point — bodies must not catch(...) across yield points.
  ~CoopTask() override;

  CoopTask(const CoopTask&) = delete;
  CoopTask& operator=(const CoopTask&) = delete;

  Nanos clock() const override;
  bool done() const override;
  void Step() override;

  TaskPartition partition() const override { return partition_; }

  /// Split-phase Step: BeginStep wakes the worker and returns immediately;
  /// FinishStep blocks until the quantum committed. Between the two, the
  /// worker runs concurrently with other batch members' workers on real
  /// host threads — the only place true parallelism enters the simulator.
  void BeginStep() override;
  void FinishStep() override;

  /// Runs consecutive quanta without parking while the task clock stays
  /// below `bound` (or equal when `inclusive`), paying one condvar round
  /// trip for the whole run instead of one per quantum. Quantum boundaries
  /// and charges are identical to repeated Step() — only host-side parking
  /// is elided.
  uint64_t StepBatch(Nanos bound, bool inclusive) override;

 private:
  enum class Turn { kScheduler, kWorker };
  struct Abort {};  // thrown into an abandoned body to unwind it

  static void YieldHook(void* self);
  void WorkerMain();
  /// Parks the worker until the scheduler hands the turn back.
  void ParkWorker(std::unique_lock<std::mutex>& lk);
  /// Max virtual clock across the hooked contexts. Called from the worker
  /// while it holds the turn (contexts quiescent to everyone else).
  Nanos WorkerClock() const;

  std::vector<ddc::ExecutionContext*> ctxs_;
  std::function<void()> body_;
  const int quantum_;
  const TaskPartition partition_;
  int used_ = 0;  // charged ops in the current quantum (worker-only)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kScheduler;
  bool done_ = false;
  bool aborting_ = false;
  // Batch-handoff window (see StepBatch). Written by the scheduler under
  // mu_ before the turn handoff, read by the worker after it — the condvar
  // handoff orders them. batch_continues_ flows back the same way.
  bool batch_active_ = false;
  Nanos batch_bound_ = 0;
  bool batch_inclusive_ = false;
  uint64_t batch_continues_ = 0;
  std::thread worker_;
};

/// True when `ms` is configured so disjoint-(node, shard) CoopTasks may
/// legally step in parallel: the ideal fabric backend (contended backends
/// serialize through shared queue state), no fault injector (its RNG
/// sequence depends on global delivery order), no coherence observer and no
/// tracer (both append to shared logs whose order is the output). Callers
/// fall back to host_threads = 1 when this is false — results are identical
/// either way, only wall clock differs.
bool ParallelEligible(ddc::MemorySystem& ms);

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_COOP_TASK_H_
