#ifndef TELEPORT_SIM_COOP_TASK_H_
#define TELEPORT_SIM_COOP_TASK_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/units.h"
#include "ddc/memory_system.h"
#include "sim/interleaver.h"

namespace teleport::sim {

/// Adapts straight-line simulated code (an engine query, a pushdown, an
/// interfering mutator) into a steppable Task without rewriting it as a
/// state machine. The body runs on a dedicated host thread that is parked
/// except while the scheduler is inside Step(): every charged access / CPU
/// batch on the hooked ExecutionContexts counts toward a quantum, and when
/// the quantum fills the body parks and Step() returns. Exactly one thread
/// is ever runnable (strict mutex/condvar handoff), so execution remains
/// fully deterministic — the host thread is a coroutine substitute, not a
/// source of parallelism.
///
/// The hooked contexts must be used by no other CoopTask; the body must
/// confine its simulated work to them (work on un-hooked contexts simply
/// never yields, which coarsens — but never corrupts — the interleaving).
class CoopTask : public Task {
 public:
  /// `ctxs`: the contexts whose accesses drive preemption; ctxs[0] is the
  /// primary (its virtual clock dominates ours between handoffs). `body`
  /// runs once on the worker thread. `quantum` = charged operations per
  /// Step() (1 gives the finest interleaving).
  CoopTask(std::vector<ddc::ExecutionContext*> ctxs,
           std::function<void()> body, int quantum = 1);

  /// Joins the worker. If the task was abandoned mid-run (explorer bounds,
  /// failed test), the body is unwound with a private exception from its
  /// next yield point — bodies must not catch(...) across yield points.
  ~CoopTask() override;

  CoopTask(const CoopTask&) = delete;
  CoopTask& operator=(const CoopTask&) = delete;

  Nanos clock() const override;
  bool done() const override;
  void Step() override;

 private:
  enum class Turn { kScheduler, kWorker };
  struct Abort {};  // thrown into an abandoned body to unwind it

  static void YieldHook(void* self);
  void WorkerMain();
  /// Parks the worker until the scheduler hands the turn back.
  void ParkWorker(std::unique_lock<std::mutex>& lk);

  std::vector<ddc::ExecutionContext*> ctxs_;
  std::function<void()> body_;
  const int quantum_;
  int used_ = 0;  // charged ops in the current quantum (worker-only)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Turn turn_ = Turn::kScheduler;
  bool done_ = false;
  bool aborting_ = false;
  std::thread worker_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_COOP_TASK_H_
