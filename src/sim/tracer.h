#ifndef TELEPORT_SIM_TRACER_H_
#define TELEPORT_SIM_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "sim/clock.h"

namespace teleport::sim {

/// Trace tracks ("tid" in the Chrome trace model). One virtual process, one
/// lane per simulated resource, so Perfetto renders the pushdown lifecycle,
/// fabric traffic, and coherence protocol as parallel swimlanes.
inline constexpr int kTrackCompute = 0;     ///< compute-pool contexts
inline constexpr int kTrackMemoryPool = 1;  ///< memory-pool instances
inline constexpr int kTrackFabric = 2;      ///< per-MessageKind sends
inline constexpr int kTrackCoherence = 3;   ///< §4.1 protocol transitions
inline constexpr int kNumTracks = 4;

std::string_view TrackName(int tid);

/// One structured event on the virtual timeline. Names and categories are
/// interned; `args` is a preformatted JSON object body (no braces), e.g.
/// `"page":12,"bytes":4096`, or empty.
struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',  ///< span: [ts, ts + dur]
    kInstant = 'i',   ///< point event at ts
  };
  Phase phase;
  uint32_t cat;   ///< interned category index
  uint32_t name;  ///< interned name index
  int tid;
  Nanos ts;
  Nanos dur;  ///< complete events only; 0 for instants
  std::string args;
};

/// Deterministic structured-event recorder on virtual time.
///
/// The tracer is a pure observer: recording an event never advances any
/// virtual clock, so an attached tracer is invisible to the simulation —
/// metrics, answers, and completion times are bit-identical with and
/// without one (`tracer_test` asserts this). Call sites hold a nullable
/// `Tracer*`; a null pointer costs one branch (the "disabled build").
///
/// Every completed span also feeds a per-`cat/name` latency Histogram, the
/// per-phase rollup behind the Fig 19/20-style attribution tables.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Records a completed span of `dur` virtual nanos starting at `begin`.
  void Span(std::string_view cat, std::string_view name, Nanos begin,
            Nanos dur, int tid, std::string args = {});

  /// Records a point event at virtual time `at`.
  void Instant(std::string_view cat, std::string_view name, Nanos at, int tid,
               std::string args = {});

  /// Caps the stored event list (rollups keep accumulating past the cap so
  /// the per-phase statistics stay complete); default 4M events.
  void set_max_events(uint64_t n) { max_events_ = n; }
  uint64_t dropped_events() const { return dropped_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::string_view CatOf(const TraceEvent& ev) const {
    return strings_[ev.cat];
  }
  std::string_view NameOf(const TraceEvent& ev) const {
    return strings_[ev.name];
  }

  /// Latency histogram of spans named `cat/name`; nullptr if none recorded.
  const Histogram* SpanLatency(std::string_view cat,
                               std::string_view name) const;

  /// Per-phase rollup: one line per `cat/name` key (sorted), each the
  /// histogram's count/mean/p50/p99/max summary. Format is golden-locked.
  std::string RollupToString() const;

  /// Serializes every event as Chrome `trace_event` JSON, loadable in
  /// chrome://tracing or https://ui.perfetto.dev. Timestamps are virtual
  /// nanoseconds rendered as microseconds with exact integer math, so the
  /// output is byte-identical across same-seed runs.
  std::string ToChromeJson() const;

  /// Writes ToChromeJson() to `path`; returns false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

  void Reset();

 private:
  uint32_t Intern(std::string_view s);
  void Record(TraceEvent::Phase phase, std::string_view cat,
              std::string_view name, Nanos ts, Nanos dur, int tid,
              std::string args);

  std::vector<std::string> strings_;
  std::map<std::string, uint32_t, std::less<>> intern_;
  std::vector<TraceEvent> events_;
  uint64_t max_events_ = uint64_t{1} << 22;
  uint64_t dropped_ = 0;
  std::map<std::string, Histogram, std::less<>> rollup_;
};

/// RAII span guard: opens a span on construction and completes it when the
/// enclosing scope exits, reading begin/end from `clock`. A null tracer
/// makes both ends a single branch — the zero-cost-when-disabled path.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const VirtualClock& clock, std::string_view cat,
            std::string_view name, int tid)
      : tracer_(tracer),
        clock_(&clock),
        cat_(cat),
        name_(name),
        tid_(tid),
        begin_(tracer == nullptr ? 0 : clock.now()) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a preformatted JSON args fragment to the span.
  void set_args(std::string args) { args_ = std::move(args); }

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->Span(cat_, name_, begin_, clock_->now() - begin_, tid_,
                    std::move(args_));
    }
  }

 private:
  Tracer* tracer_;
  const VirtualClock* clock_;
  std::string_view cat_;
  std::string_view name_;
  int tid_;
  Nanos begin_;
  std::string args_;
};

#define TELEPORT_TRACE_CONCAT_INNER(a, b) a##b
#define TELEPORT_TRACE_CONCAT(a, b) TELEPORT_TRACE_CONCAT_INNER(a, b)

/// Scope guard: spans the rest of the enclosing scope on `tracer` (nullable
/// Tracer*), timed on `clock` (a VirtualClock). Zero virtual-time cost
/// always; one branch of host cost when `tracer` is null.
#define TELEPORT_TRACE(tracer, clock, cat, name, tid)             \
  ::teleport::sim::TraceSpan TELEPORT_TRACE_CONCAT(trace_span_,   \
                                                   __LINE__)(     \
      (tracer), (clock), (cat), (name), (tid))

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_TRACER_H_
