#include "sim/tracer.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace teleport::sim {

namespace {

/// Virtual nanos -> Chrome microseconds ("ts"/"dur" fields) with exact
/// integer math: "1234567" ns becomes "1234.567". No floating point, so
/// same-seed traces are byte-identical.
void AppendMicros(std::string& out, Nanos ns) {
  TELEPORT_DCHECK(ns >= 0);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string_view TrackName(int tid) {
  switch (tid) {
    case kTrackCompute:
      return "compute";
    case kTrackMemoryPool:
      return "memory-pool";
    case kTrackFabric:
      return "fabric";
    case kTrackCoherence:
      return "coherence";
    default:
      return "other";
  }
}

uint32_t Tracer::Intern(std::string_view s) {
  const auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  const auto id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(s);
  intern_.emplace(strings_.back(), id);
  return id;
}

void Tracer::Record(TraceEvent::Phase phase, std::string_view cat,
                    std::string_view name, Nanos ts, Nanos dur, int tid,
                    std::string args) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  TraceEvent ev;
  ev.phase = phase;
  ev.cat = Intern(cat);
  ev.name = Intern(name);
  ev.tid = tid;
  ev.ts = ts;
  ev.dur = dur;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
}

void Tracer::Span(std::string_view cat, std::string_view name, Nanos begin,
                  Nanos dur, int tid, std::string args) {
  TELEPORT_DCHECK(dur >= 0);
  std::string key(cat);
  key += '/';
  key += name;
  rollup_[std::move(key)].Add(dur);
  Record(TraceEvent::Phase::kComplete, cat, name, begin, dur, tid,
         std::move(args));
}

void Tracer::Instant(std::string_view cat, std::string_view name, Nanos at,
                     int tid, std::string args) {
  Record(TraceEvent::Phase::kInstant, cat, name, at, 0, tid, std::move(args));
}

const Histogram* Tracer::SpanLatency(std::string_view cat,
                                     std::string_view name) const {
  std::string key(cat);
  key += '/';
  key += name;
  const auto it = rollup_.find(key);
  return it == rollup_.end() ? nullptr : &it->second;
}

std::string Tracer::RollupToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, hist] : rollup_) {
    if (!first) os << "\n";
    first = false;
    os << key << ": " << hist.ToString();
  }
  return os.str();
}

std::string Tracer::ToChromeJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  // Thread metadata first, so the swimlanes carry resource names.
  for (int tid = 0; tid < kNumTracks; ++tid) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonString(out, TrackName(tid));
    out += "}}";
  }
  for (const TraceEvent& ev : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += static_cast<char>(ev.phase);
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(ev.tid);
    out += ",\"ts\":";
    AppendMicros(out, ev.ts);
    if (ev.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":";
      AppendMicros(out, ev.dur);
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ",\"cat\":";
    AppendJsonString(out, strings_[ev.cat]);
    out += ",\"name\":";
    AppendJsonString(out, strings_[ev.name]);
    if (!ev.args.empty()) {
      out += ",\"args\":{";
      out += ev.args;
      out += '}';
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

void Tracer::Reset() {
  strings_.clear();
  intern_.clear();
  events_.clear();
  dropped_ = 0;
  rollup_.clear();
}

}  // namespace teleport::sim
