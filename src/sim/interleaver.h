#ifndef TELEPORT_SIM_INTERLEAVER_H_
#define TELEPORT_SIM_INTERLEAVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/metrics.h"

namespace teleport::sim {

/// Placement of a task on the simulated rack, consumed by the parallel
/// engine (Interleaver::set_host_threads) to decide which tasks may step
/// concurrently. Two tasks conflict — and are never co-stepped — when
/// either is exclusive or they share a compute node or a memory shard: a
/// node's tasks share that node's cache LRU, a shard's tasks share its pool
/// LRU/journal, so only fully disjoint pairs commute. The default is
/// exclusive, which serializes the task against everything (the pre-PR10
/// behavior, and the only safe choice for tasks that run pushdown sessions,
/// take host locks, or touch pages outside one shard).
struct TaskPartition {
  int node = -1;   ///< compute node owned by this task; -1 = exclusive
  int shard = -1;  ///< memory shard confining its pages; -1 = exclusive
  bool exclusive() const { return node < 0 || shard < 0; }
  bool ConflictsWith(const TaskPartition& o) const {
    return exclusive() || o.exclusive() || node == o.node || shard == o.shard;
  }
};

/// A resumable simulated thread. Concrete tasks wrap an ExecutionContext and
/// perform a small batch of work per Step(), advancing their virtual clock.
class Task {
 public:
  virtual ~Task() = default;

  /// Current position of this task on the virtual timeline.
  virtual Nanos clock() const = 0;

  /// True once the task has no more work.
  virtual bool done() const = 0;

  /// Performs the next batch of work. Called only while !done().
  virtual void Step() = 0;

  /// Rack placement for conservative parallel stepping; exclusive unless a
  /// concrete task opts in (sim::CoopTask's partition constructor arg).
  virtual TaskPartition partition() const { return {}; }

  /// Split-phase Step for parallel batches: BeginStep launches the next
  /// step without waiting for it, FinishStep blocks until it committed.
  /// The engine calls BeginStep on every member of a batch, then FinishStep
  /// on every member, so CoopTask workers overlap on host threads. The
  /// defaults run Step() inline — always correct, just serial.
  virtual void BeginStep() { Step(); }
  virtual void FinishStep() {}

  /// Runs consecutive quanta without returning to the scheduler while the
  /// task's clock stays below `bound` (or equal to it when `inclusive`),
  /// i.e. while the default smallest-clock policy would keep picking this
  /// task anyway. Returns the number of quanta executed (>= 1) — the
  /// scheduler would have dispatched exactly that many Step()s. CoopTask
  /// overrides this so N same-window quanta pay one park/unpark round trip
  /// instead of N; the default is a single Step().
  virtual uint64_t StepBatch(Nanos bound, bool inclusive) {
    (void)bound;
    (void)inclusive;
    Step();
    return 1;
  }
};

/// A scheduling policy for the Interleaver: given the indices of the
/// currently runnable tasks (ascending registration order), picks which one
/// steps next. Policies must be deterministic functions of their own state
/// and the arguments so any run can be replayed from its recorded trace.
class Schedule {
 public:
  virtual ~Schedule() = default;

  /// Returns one element of `runnable`. `tasks` is the interleaver's full
  /// registration list (for clock inspection); `runnable` is never empty.
  virtual size_t Pick(const std::vector<size_t>& runnable,
                      const std::vector<Task*>& tasks) = 0;
};

/// The conservative default: always advances the unfinished task with the
/// smallest virtual clock (ties broken by registration order). With small
/// step quanta this approximates true concurrency closely while staying
/// bit-reproducible; it is the policy every benchmark runs under.
class SmallestClockSchedule : public Schedule {
 public:
  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;
};

/// Seeded-random exploration schedule: picks uniformly among the runnable
/// tasks, optionally restricted to those within `max_skew` of the minimum
/// clock (an unbounded skew lets one simulated thread race arbitrarily far
/// ahead, which is legal but unphysical; a bound keeps schedules plausible).
/// Distinct seeds yield distinct interleavings with overwhelming
/// probability, and the same seed replays bit-identically.
class RandomSchedule : public Schedule {
 public:
  static constexpr Nanos kUnboundedSkew = -1;

  explicit RandomSchedule(uint64_t seed, Nanos max_skew = kUnboundedSkew)
      : rng_(seed), max_skew_(max_skew) {}

  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;

 private:
  Rng rng_;
  Nanos max_skew_;
  std::vector<size_t> eligible_;  // scratch, reused across picks
};

/// Replays a recorded schedule trace (the per-step task indices emitted by
/// Interleaver trace recording). When the trace is exhausted — or names a
/// task that is not currently runnable, which can happen after the scenario
/// under replay was edited — it falls back to smallest-clock and counts the
/// divergence, so a reproducer degrades loudly instead of deadlocking.
class ReplaySchedule : public Schedule {
 public:
  explicit ReplaySchedule(std::vector<uint32_t> trace)
      : trace_(std::move(trace)) {}

  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;

  uint64_t divergences() const { return divergences_; }

 private:
  std::vector<uint32_t> trace_;
  size_t pos_ = 0;
  uint64_t divergences_ = 0;
  SmallestClockSchedule fallback_;
};

/// Compact text form of a schedule trace ("0,1,1,0"), for failure messages
/// and reproducer dumps.
std::string TraceToString(const std::vector<uint32_t>& trace);

/// Inverse of TraceToString; ignores whitespace. Malformed entries abort.
std::vector<uint32_t> TraceFromString(const std::string& s);

/// Deterministic scheduler for concurrent simulated threads. The policy is
/// pluggable: the default SmallestClockSchedule approximates fair parallel
/// progress (used by the Figs 6/7/21/22 microbenchmarks, where a
/// compute-pool thread runs concurrently with a pushed-down function and the
/// two interact through the page-coherence protocol); RandomSchedule and the
/// DfsExplorer sweep alternative interleavings for the concurrency tests.
class Interleaver {
 public:
  /// Host-execution counters of one Run(): how the engine dispatched work,
  /// not what the simulated system did. Deliberately kept out of the
  /// contexts' Metrics — they depend on the host-thread/lookahead config,
  /// so folding them in would break cross-thread-count bit-identity. A
  /// caller that wants them in a dump calls FlushParCounters explicitly.
  struct ParCounters {
    uint64_t batches = 0;          ///< commit rounds (parallel engine only)
    uint64_t parallel_steps = 0;   ///< steps committed in batches of >= 2
    uint64_t lookahead_stalls = 0; ///< runnable tasks held back by horizon
    uint64_t handoff_waits = 0;    ///< scheduler->task dispatch round trips
    uint64_t batched_quanta = 0;   ///< extra quanta run without a handoff
  };

  /// Sentinel lookahead: batch every runnable task regardless of clock
  /// skew. Sound only for fully disjoint partitions (which is the only
  /// thing the engine ever co-steps anyway); the conservative choice is
  /// the fabric's minimum delivery latency (Fabric::MinDeliveryLatencyNs).
  static constexpr Nanos kUnboundedLookahead = -1;

  /// Registers a task. Does not take ownership; tasks must outlive Run().
  void Add(Task* task) { tasks_.push_back(task); }

  /// Installs a scheduling policy (non-owning; nullptr restores the
  /// default). The policy must outlive Run().
  void set_schedule(Schedule* schedule) { schedule_ = schedule; }

  /// Records the index of the task chosen at every step into trace().
  void set_record_trace(bool on) { record_trace_ = on; }
  const std::vector<uint32_t>& trace() const { return trace_; }

  /// Opt-in conservative parallel stepping (TELEPORT_HOST_THREADS): with
  /// n > 1, tasks pinned to pairwise-disjoint (node, shard) partitions
  /// whose clocks lie within the lookahead window step concurrently, in
  /// batches committed in virtual-time order. Requires the default
  /// schedule and no trace recording; otherwise (and with n == 1, the
  /// default) the serial path runs. Bit-identity vs serial holds because
  /// (a) batch membership is a pure function of task clocks and
  /// registration order, (b) steps of disjoint partitions touch disjoint
  /// simulator state (shared totals are relaxed atomic sums, which are
  /// order-independent), and (c) for any two conflicting tasks the commit
  /// order of their steps equals the serial smallest-clock order.
  void set_host_threads(int n) { host_threads_ = n; }

  /// Lookahead window of the parallel engine in virtual nanoseconds: tasks
  /// more than this far ahead of the minimum clock wait (counted as
  /// lookahead stalls). Callers derive it from the fabric's minimum
  /// one-way delivery latency; kUnboundedLookahead disables the window.
  void set_lookahead(Nanos ns) { lookahead_ = ns; }

  const ParCounters& par_counters() const { return par_; }

  /// Adds the engine counters to `m`'s par_* fields and zeroes them. Not
  /// called implicitly — see ParCounters.
  void FlushParCounters(Metrics& m);

  /// Runs all tasks to completion; returns the maximum finishing clock
  /// (the simulated wall time of the parallel region).
  Nanos Run();

  /// Runs until `deadline` on the virtual timeline (tasks whose clock is
  /// already past it are left untouched). Returns the max clock seen.
  Nanos RunUntil(Nanos deadline);

 private:
  Nanos RunUntilParallel(Nanos deadline);

  std::vector<Task*> tasks_;
  Schedule* schedule_ = nullptr;
  bool record_trace_ = false;
  std::vector<uint32_t> trace_;
  int host_threads_ = 1;
  Nanos lookahead_ = 0;
  ParCounters par_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_INTERLEAVER_H_
