#ifndef TELEPORT_SIM_INTERLEAVER_H_
#define TELEPORT_SIM_INTERLEAVER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace teleport::sim {

/// A resumable simulated thread. Concrete tasks wrap an ExecutionContext and
/// perform a small batch of work per Step(), advancing their virtual clock.
class Task {
 public:
  virtual ~Task() = default;

  /// Current position of this task on the virtual timeline.
  virtual Nanos clock() const = 0;

  /// True once the task has no more work.
  virtual bool done() const = 0;

  /// Performs the next batch of work. Called only while !done().
  virtual void Step() = 0;
};

/// A scheduling policy for the Interleaver: given the indices of the
/// currently runnable tasks (ascending registration order), picks which one
/// steps next. Policies must be deterministic functions of their own state
/// and the arguments so any run can be replayed from its recorded trace.
class Schedule {
 public:
  virtual ~Schedule() = default;

  /// Returns one element of `runnable`. `tasks` is the interleaver's full
  /// registration list (for clock inspection); `runnable` is never empty.
  virtual size_t Pick(const std::vector<size_t>& runnable,
                      const std::vector<Task*>& tasks) = 0;
};

/// The conservative default: always advances the unfinished task with the
/// smallest virtual clock (ties broken by registration order). With small
/// step quanta this approximates true concurrency closely while staying
/// bit-reproducible; it is the policy every benchmark runs under.
class SmallestClockSchedule : public Schedule {
 public:
  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;
};

/// Seeded-random exploration schedule: picks uniformly among the runnable
/// tasks, optionally restricted to those within `max_skew` of the minimum
/// clock (an unbounded skew lets one simulated thread race arbitrarily far
/// ahead, which is legal but unphysical; a bound keeps schedules plausible).
/// Distinct seeds yield distinct interleavings with overwhelming
/// probability, and the same seed replays bit-identically.
class RandomSchedule : public Schedule {
 public:
  static constexpr Nanos kUnboundedSkew = -1;

  explicit RandomSchedule(uint64_t seed, Nanos max_skew = kUnboundedSkew)
      : rng_(seed), max_skew_(max_skew) {}

  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;

 private:
  Rng rng_;
  Nanos max_skew_;
  std::vector<size_t> eligible_;  // scratch, reused across picks
};

/// Replays a recorded schedule trace (the per-step task indices emitted by
/// Interleaver trace recording). When the trace is exhausted — or names a
/// task that is not currently runnable, which can happen after the scenario
/// under replay was edited — it falls back to smallest-clock and counts the
/// divergence, so a reproducer degrades loudly instead of deadlocking.
class ReplaySchedule : public Schedule {
 public:
  explicit ReplaySchedule(std::vector<uint32_t> trace)
      : trace_(std::move(trace)) {}

  size_t Pick(const std::vector<size_t>& runnable,
              const std::vector<Task*>& tasks) override;

  uint64_t divergences() const { return divergences_; }

 private:
  std::vector<uint32_t> trace_;
  size_t pos_ = 0;
  uint64_t divergences_ = 0;
  SmallestClockSchedule fallback_;
};

/// Compact text form of a schedule trace ("0,1,1,0"), for failure messages
/// and reproducer dumps.
std::string TraceToString(const std::vector<uint32_t>& trace);

/// Inverse of TraceToString; ignores whitespace. Malformed entries abort.
std::vector<uint32_t> TraceFromString(const std::string& s);

/// Deterministic scheduler for concurrent simulated threads. The policy is
/// pluggable: the default SmallestClockSchedule approximates fair parallel
/// progress (used by the Figs 6/7/21/22 microbenchmarks, where a
/// compute-pool thread runs concurrently with a pushed-down function and the
/// two interact through the page-coherence protocol); RandomSchedule and the
/// DfsExplorer sweep alternative interleavings for the concurrency tests.
class Interleaver {
 public:
  /// Registers a task. Does not take ownership; tasks must outlive Run().
  void Add(Task* task) { tasks_.push_back(task); }

  /// Installs a scheduling policy (non-owning; nullptr restores the
  /// default). The policy must outlive Run().
  void set_schedule(Schedule* schedule) { schedule_ = schedule; }

  /// Records the index of the task chosen at every step into trace().
  void set_record_trace(bool on) { record_trace_ = on; }
  const std::vector<uint32_t>& trace() const { return trace_; }

  /// Runs all tasks to completion; returns the maximum finishing clock
  /// (the simulated wall time of the parallel region).
  Nanos Run();

  /// Runs until `deadline` on the virtual timeline (tasks whose clock is
  /// already past it are left untouched). Returns the max clock seen.
  Nanos RunUntil(Nanos deadline);

 private:
  std::vector<Task*> tasks_;
  Schedule* schedule_ = nullptr;
  bool record_trace_ = false;
  std::vector<uint32_t> trace_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_INTERLEAVER_H_
