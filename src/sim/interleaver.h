#ifndef TELEPORT_SIM_INTERLEAVER_H_
#define TELEPORT_SIM_INTERLEAVER_H_

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace teleport::sim {

/// A resumable simulated thread. Concrete tasks wrap an ExecutionContext and
/// perform a small batch of work per Step(), advancing their virtual clock.
class Task {
 public:
  virtual ~Task() = default;

  /// Current position of this task on the virtual timeline.
  virtual Nanos clock() const = 0;

  /// True once the task has no more work.
  virtual bool done() const = 0;

  /// Performs the next batch of work. Called only while !done().
  virtual void Step() = 0;
};

/// Deterministic conservative scheduler for concurrent simulated threads:
/// always advances the unfinished task with the smallest virtual clock
/// (ties broken by registration order). With small step quanta this
/// approximates true concurrency closely while staying bit-reproducible.
///
/// Used by the multi-threaded microbenchmarks of Figs 6/7/21/22, where a
/// compute-pool thread runs concurrently with a pushed-down function and the
/// two interact through the page-coherence protocol.
class Interleaver {
 public:
  /// Registers a task. Does not take ownership; tasks must outlive Run().
  void Add(Task* task) { tasks_.push_back(task); }

  /// Runs all tasks to completion; returns the maximum finishing clock
  /// (the simulated wall time of the parallel region).
  Nanos Run();

  /// Runs until `deadline` on the virtual timeline (tasks whose clock is
  /// already past it are left untouched). Returns the max clock seen.
  Nanos RunUntil(Nanos deadline);

 private:
  std::vector<Task*> tasks_;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_INTERLEAVER_H_
