#ifndef TELEPORT_SIM_COST_MODEL_H_
#define TELEPORT_SIM_COST_MODEL_H_

#include <cstdint>

#include "common/units.h"

namespace teleport::sim {

/// All timing constants of the simulated testbed in one place.
///
/// Defaults reproduce the paper's evaluation platform (§7): Intel Xeon
/// E5-2630L compute nodes, a 56 Gb/s / 1.2 us InfiniBand fabric (Mellanox
/// CX-3 + EDR switch), a memory pool with a single controller, and a 1 TB
/// NVMe SSD storage pool (3 GB/s sequential, 600 K IOPS random at depth).
///
/// Every cost charged anywhere in the simulator comes from this struct, so a
/// bench can re-run an experiment under a different hardware assumption by
/// swapping parameters.
struct CostParams {
  // --- Page layout -------------------------------------------------------
  uint64_t page_size = 4096;

  // --- Network fabric (InfiniBand EDR, CX-3) -----------------------------
  /// One-way message latency.
  Nanos net_latency_ns = 1'200;
  /// Fabric bandwidth in bytes per nanosecond (56 Gb/s = 7 GB/s).
  double net_bytes_per_ns = 7.0;
  /// Software overhead of handling one page-fault RPC on the remote side
  /// (kernel workqueue wakeup, page-table walk, NIC doorbell).
  Nanos fault_handler_ns = 900;
  /// Extra per-message protocol overhead of the coherence engine; the paper
  /// reports 1.6 us average coherence message latency vs the raw 1.2 us.
  Nanos coherence_overhead_ns = 400;

  // --- Contended fabric (kQueuedRdma / kSmartNic backends only) -----------
  /// Aggregate capacity of one compute node's NIC, shared by every link of
  /// that node in both directions (12.5 GB/s = 100 Gb/s host NIC).
  double nic_bytes_per_ns = 12.5;
  /// Aggregate capacity of one memory shard's controller, shared by every
  /// compute node talking to that shard (slightly above the link rate, so a
  /// single flow is link-bound but two concurrent tenants contend here).
  double ctrl_bytes_per_ns = 10.0;
  /// Verb submission cost (WQE build + doorbell write) charged when a send
  /// cannot ride a previously rung doorbell.
  Nanos verb_overhead_ns = 250;
  /// Submissions within this window of the queue pair's previous doorbell
  /// coalesce into one verb (doorbell batching).
  Nanos doorbell_batch_window_ns = 400;
  /// NIC-side handler time of a SmartNIC-offloaded message (coherence
  /// directory lookup / small pushdown probe), replacing fault_handler_ns.
  Nanos smartnic_handler_ns = 150;
  /// Largest request the SmartNIC executes on-NIC; bigger ones take the
  /// host path through the shard controller queue.
  uint64_t smartnic_max_bytes = 256;
  /// Heartbeat liveness budget: a probe whose round trip exceeds this (plus
  /// the fabric's committed queue backlog, which the prober can observe
  /// locally) declares the shard dead. See PushdownRuntime::CheckHeartbeat.
  Nanos heartbeat_deadline_ns = 5 * kMillisecond;

  // --- DRAM (both compute-local cache and memory pool) -------------------
  /// Cost of an access that stays within the previously touched page
  /// (stream-like; hardware prefetch effective).
  Nanos dram_seq_access_ns = 2;
  /// Additional per-byte cost of sequential DRAM traffic (~40 GB/s).
  double dram_seq_ns_per_byte = 0.025;
  /// Cost of an access that lands on a different page than the previous one
  /// (row miss / TLB pressure).
  Nanos dram_random_access_ns = 100;
  /// Minor page fault (first touch of an anonymous page, zero-fill).
  Nanos minor_fault_ns = 1'500;
  /// Local read-only -> writable permission upgrade (PTE flip + TLB flush).
  Nanos perm_upgrade_ns = 300;

  // --- CPU ----------------------------------------------------------------
  /// Cost of one "simple operation" (compare, add, hash step) on a
  /// compute-pool core at full clock (2.1 GHz).
  double cpu_ns_per_op = 0.48;
  /// Clock-speed ratio of memory-pool cores relative to compute-pool cores
  /// (§7.3 throttling experiment). 1.0 = same clock.
  double memory_pool_clock_ratio = 1.0;
  /// Context-switch penalty in the memory pool when more user contexts are
  /// runnable than physical cores (§7.3, Fig 17).
  Nanos context_switch_ns = 3'000;

  // --- NVMe SSD storage pool ----------------------------------------------
  /// Latency of a random 4 KiB page read on the swap path (queue-depth-1
  /// NVMe latency plus kernel swap-in overhead and readahead pollution).
  Nanos ssd_random_page_ns = 100'000;
  /// Page read that sequentially follows the previous faulting page.
  /// Swap-in readahead helps but the per-page kernel swap path keeps this
  /// far above the drive's raw 3 GB/s sequential rating.
  Nanos ssd_seq_page_ns = 25'000;
  /// Page writeback cost (write buffering hides some latency).
  Nanos ssd_write_page_ns = 30'000;

  // --- TELEPORT runtime ----------------------------------------------------
  /// Per-PTE cost of cloning the caller page table and applying the
  /// Fig-8 invalidation pass when instantiating a temporary user context.
  Nanos pte_clone_ns = 950;
  /// Per-entry cost of scanning the compute cache to build the resident
  /// page list at the start of pushdown.
  Nanos resident_scan_ns = 60;
  /// Fixed cost of instantiating / recycling the temporary user context
  /// (kernel thread wakeup, vfork-like attach).
  Nanos context_fixed_ns = 25'000;
  /// Per-page cost of the eager-synchronization strawman (one RDMA write
  /// with doorbell + completion per page, Fig 20).
  Nanos eager_sync_per_page_ns = 5'000;

  /// Time for a message of `bytes` payload to traverse the fabric.
  Nanos NetTransfer(uint64_t bytes) const {
    return net_latency_ns +
           static_cast<Nanos>(static_cast<double>(bytes) / net_bytes_per_ns);
  }

  /// Time to move one page across the fabric (fault reply, writeback).
  Nanos NetPageTransfer() const { return NetTransfer(page_size); }

  /// CPU time of `ops` simple operations on a core with the given clock
  /// ratio (1.0 = compute-pool clock).
  Nanos Cpu(uint64_t ops, double clock_ratio = 1.0) const {
    return static_cast<Nanos>(static_cast<double>(ops) * cpu_ns_per_op /
                              clock_ratio);
  }

  /// The paper's default testbed configuration.
  static CostParams Default() { return CostParams{}; }
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_COST_MODEL_H_
