#include "sim/metrics.h"

#include <sstream>

namespace teleport::sim {

std::string Metrics::ToString() const {
  std::ostringstream os;
  os << "cache: hits=" << cache_hits << " misses=" << cache_misses
     << " evictions=" << cache_evictions << " writebacks=" << dirty_writebacks
     << "\n";
  os << "net: messages=" << net_messages << " bytes=" << net_bytes
     << " from_mem=" << bytes_from_memory_pool
     << " to_mem=" << bytes_to_memory_pool << "\n";
  os << "memory pool: hits=" << memory_pool_hits
     << " faults=" << memory_pool_faults << "\n";
  os << "storage: reads=" << storage_reads << " writes=" << storage_writes
     << "\n";
  os << "coherence: messages=" << coherence_messages
     << " invalidations=" << coherence_invalidations
     << " downgrades=" << coherence_downgrades
     << " page_returns=" << coherence_page_returns << "\n";
  os << "teleport: pushdowns=" << pushdown_calls
     << " syncmem_pages=" << syncmem_pages << "\n";
  os << "resilience: fault_events=" << fault_events << " retries=" << retries
     << " fallbacks=" << fallbacks << " lost_pool_writes=" << lost_pool_writes
     << "\n";
  os << "cpu: ops=" << cpu_ops;
  return os.str();
}

}  // namespace teleport::sim
