#include "sim/metrics.h"

#include <sstream>
#include <string_view>

namespace teleport::sim {

namespace {

/// Display name of a ToString section; group tokens must be identifiers so
/// the X-macro can stringize them, hence this one mapping.
std::string_view GroupLabel(std::string_view group) {
  return group == "memory_pool" ? "memory pool" : group;
}

}  // namespace

std::string Metrics::ToString() const {
  struct Row {
    std::string_view group;
    std::string_view label;
    uint64_t value;
  };
  const Row rows[] = {
#define TELEPORT_SIM_METRICS_ROW(field, group, label) {#group, #label, field},
      TELEPORT_SIM_METRICS_FIELDS(TELEPORT_SIM_METRICS_ROW)
#undef TELEPORT_SIM_METRICS_ROW
  };
  // Opt-in groups are elided while all-zero so golden dumps predating the
  // feature stay byte-identical: txn exists only when the OLTP engine ran,
  // netq only when a contended fabric backend (non-kIdeal) was active, par
  // only when a caller flushed Interleaver host-dispatch counters.
  bool txn_all_zero = true;
  bool netq_all_zero = true;
  bool par_all_zero = true;
  for (const Row& r : rows) {
    if (r.group == "txn" && r.value != 0) txn_all_zero = false;
    if (r.group == "netq" && r.value != 0) netq_all_zero = false;
    if (r.group == "par" && r.value != 0) par_all_zero = false;
  }
  std::ostringstream os;
  std::string_view current;
  for (const Row& r : rows) {
    if (r.group == "none") continue;
    if (r.group == "txn" && txn_all_zero) continue;
    if (r.group == "netq" && netq_all_zero) continue;
    if (r.group == "par" && par_all_zero) continue;
    if (r.group != current) {
      if (!current.empty()) os << "\n";
      os << GroupLabel(r.group) << ": ";
      current = r.group;
    } else {
      os << " ";
    }
    os << r.label << "=" << r.value;
  }
  return os.str();
}

}  // namespace teleport::sim
