#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace teleport::sim {

int HostThreadsFromEnv() {
  const char* env = std::getenv("TELEPORT_HOST_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    TELEPORT_LOG(kWarning) << "ignoring malformed TELEPORT_HOST_THREADS=\""
                           << env << "\"";
    return 1;
  }
  if (v < 1) return 1;
  if (v > kMaxHostThreads) return kMaxHostThreads;
  return static_cast<int>(v);
}

void LegRunner::Run(const std::vector<std::function<void()>>& jobs) {
  if (jobs.empty()) return;
  const size_t workers =
      std::min(static_cast<size_t>(host_threads_ < 1 ? 1 : host_threads_),
               jobs.size());
  if (workers <= 1) {
    for (const auto& job : jobs) job();
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      jobs[i]();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is pool member 0
  for (std::thread& t : pool) t.join();
}

}  // namespace teleport::sim
