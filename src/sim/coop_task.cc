#include "sim/coop_task.h"

#include "common/logging.h"

namespace teleport::sim {

CoopTask::CoopTask(std::vector<ddc::ExecutionContext*> ctxs,
                   std::function<void()> body, int quantum,
                   TaskPartition partition)
    : ctxs_(std::move(ctxs)),
      body_(std::move(body)),
      quantum_(quantum),
      partition_(partition) {
  TELEPORT_CHECK(!ctxs_.empty()) << "CoopTask needs at least one context";
  TELEPORT_CHECK(quantum_ > 0);
  worker_ = std::thread([this] { WorkerMain(); });
}

CoopTask::~CoopTask() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!done_) {
      aborting_ = true;
      turn_ = Turn::kWorker;
      cv_.notify_all();
      cv_.wait(lk, [this] { return done_; });
    }
  }
  worker_.join();
}

Nanos CoopTask::clock() const {
  // Only called while the worker is parked (strict handoff), so the
  // contexts' clocks are quiescent; the lock orders their writes before us.
  std::unique_lock<std::mutex> lk(mu_);
  Nanos max_now = 0;
  for (const ddc::ExecutionContext* ctx : ctxs_) {
    if (ctx->now() > max_now) max_now = ctx->now();
  }
  return max_now;
}

bool CoopTask::done() const {
  std::unique_lock<std::mutex> lk(mu_);
  return done_;
}

void CoopTask::Step() {
  std::unique_lock<std::mutex> lk(mu_);
  TELEPORT_DCHECK(!done_);
  turn_ = Turn::kWorker;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::kScheduler || done_; });
}

void CoopTask::BeginStep() {
  std::unique_lock<std::mutex> lk(mu_);
  TELEPORT_DCHECK(!done_);
  turn_ = Turn::kWorker;
  cv_.notify_all();
}

void CoopTask::FinishStep() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return turn_ == Turn::kScheduler || done_; });
}

uint64_t CoopTask::StepBatch(Nanos bound, bool inclusive) {
  std::unique_lock<std::mutex> lk(mu_);
  TELEPORT_DCHECK(!done_);
  batch_active_ = true;
  batch_bound_ = bound;
  batch_inclusive_ = inclusive;
  batch_continues_ = 0;
  turn_ = Turn::kWorker;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::kScheduler || done_; });
  batch_active_ = false;
  return batch_continues_ + 1;
}

Nanos CoopTask::WorkerClock() const {
  Nanos max_now = 0;
  for (const ddc::ExecutionContext* ctx : ctxs_) {
    if (ctx->now() > max_now) max_now = ctx->now();
  }
  return max_now;
}

void CoopTask::YieldHook(void* self) {
  auto* t = static_cast<CoopTask*>(self);
  if (++t->used_ < t->quantum_) return;
  t->used_ = 0;
  if (t->batch_active_) {
    // The scheduler is parked waiting for our handoff, so the batch fields
    // and our contexts are quiescent: deciding here — would the
    // smallest-clock policy re-pick us anyway? — needs no lock. If yes,
    // keep running; this elides the park/unpark round trip the serial
    // scheduler would otherwise pay per quantum (satellite 6).
    const Nanos c = t->WorkerClock();
    if (c < t->batch_bound_ || (t->batch_inclusive_ && c == t->batch_bound_)) {
      ++t->batch_continues_;
      return;
    }
  }
  std::unique_lock<std::mutex> lk(t->mu_);
  t->turn_ = Turn::kScheduler;
  t->cv_.notify_all();
  t->ParkWorker(lk);
}

void CoopTask::ParkWorker(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk, [this] { return turn_ == Turn::kWorker; });
  if (aborting_) throw Abort{};
}

void CoopTask::WorkerMain() {
  {
    // Wait for the first Step() before touching anything.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return turn_ == Turn::kWorker; });
    if (aborting_) {
      done_ = true;
      cv_.notify_all();
      return;
    }
  }
  for (ddc::ExecutionContext* ctx : ctxs_) {
    ctx->set_yield_hook(&CoopTask::YieldHook, this);
  }
  try {
    body_();
  } catch (const Abort&) {
    // Abandoned mid-run; unwind silently.
  }
  for (ddc::ExecutionContext* ctx : ctxs_) {
    ctx->set_yield_hook(nullptr, nullptr);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_ = true;
  turn_ = Turn::kScheduler;
  cv_.notify_all();
}

bool ParallelEligible(ddc::MemorySystem& ms) {
  return ms.fabric().backend() == net::Backend::kIdeal &&
         ms.fabric().fault_injector() == nullptr &&
         ms.coherence_observer() == nullptr && ms.tracer() == nullptr;
}

}  // namespace teleport::sim
