#include "sim/coop_task.h"

#include "common/logging.h"

namespace teleport::sim {

CoopTask::CoopTask(std::vector<ddc::ExecutionContext*> ctxs,
                   std::function<void()> body, int quantum)
    : ctxs_(std::move(ctxs)), body_(std::move(body)), quantum_(quantum) {
  TELEPORT_CHECK(!ctxs_.empty()) << "CoopTask needs at least one context";
  TELEPORT_CHECK(quantum_ > 0);
  worker_ = std::thread([this] { WorkerMain(); });
}

CoopTask::~CoopTask() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!done_) {
      aborting_ = true;
      turn_ = Turn::kWorker;
      cv_.notify_all();
      cv_.wait(lk, [this] { return done_; });
    }
  }
  worker_.join();
}

Nanos CoopTask::clock() const {
  // Only called while the worker is parked (strict handoff), so the
  // contexts' clocks are quiescent; the lock orders their writes before us.
  std::unique_lock<std::mutex> lk(mu_);
  Nanos max_now = 0;
  for (const ddc::ExecutionContext* ctx : ctxs_) {
    if (ctx->now() > max_now) max_now = ctx->now();
  }
  return max_now;
}

bool CoopTask::done() const {
  std::unique_lock<std::mutex> lk(mu_);
  return done_;
}

void CoopTask::Step() {
  std::unique_lock<std::mutex> lk(mu_);
  TELEPORT_DCHECK(!done_);
  turn_ = Turn::kWorker;
  cv_.notify_all();
  cv_.wait(lk, [this] { return turn_ == Turn::kScheduler || done_; });
}

void CoopTask::YieldHook(void* self) {
  auto* t = static_cast<CoopTask*>(self);
  if (++t->used_ < t->quantum_) return;
  t->used_ = 0;
  std::unique_lock<std::mutex> lk(t->mu_);
  t->turn_ = Turn::kScheduler;
  t->cv_.notify_all();
  t->ParkWorker(lk);
}

void CoopTask::ParkWorker(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk, [this] { return turn_ == Turn::kWorker; });
  if (aborting_) throw Abort{};
}

void CoopTask::WorkerMain() {
  {
    // Wait for the first Step() before touching anything.
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this] { return turn_ == Turn::kWorker; });
    if (aborting_) {
      done_ = true;
      cv_.notify_all();
      return;
    }
  }
  for (ddc::ExecutionContext* ctx : ctxs_) {
    ctx->set_yield_hook(&CoopTask::YieldHook, this);
  }
  try {
    body_();
  } catch (const Abort&) {
    // Abandoned mid-run; unwind silently.
  }
  for (ddc::ExecutionContext* ctx : ctxs_) {
    ctx->set_yield_hook(nullptr, nullptr);
  }
  std::unique_lock<std::mutex> lk(mu_);
  done_ = true;
  turn_ = Turn::kScheduler;
  cv_.notify_all();
}

}  // namespace teleport::sim
