#include "sim/explorer.h"

#include <unordered_set>

#include "common/logging.h"

namespace teleport::sim {

namespace {

/// One scheduling decision point on the current DFS path: the runnable set
/// observed there (in ascending task-index order) and which alternative the
/// path currently follows.
struct Frame {
  std::vector<size_t> options;
  size_t cur = 0;
};

std::vector<size_t> RunnableIndices(const std::vector<Task*>& tasks) {
  std::vector<size_t> out;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (!tasks[i]->done()) out.push_back(i);
  }
  return out;
}

bool AllDone(const std::vector<Task*>& tasks) {
  for (Task* t : tasks) {
    if (!t->done()) return false;
  }
  return true;
}

}  // namespace

DfsExplorer::Stats DfsExplorer::Explore(const Factory& factory,
                                        const Options& opts) {
  Stats stats;
  // The DFS path: path[i].options[path[i].cur] is the task stepped at depth
  // i. Simulation state cannot be checkpointed, so each descent re-creates
  // the scenario and replays the path prefix before extending it.
  std::vector<Frame> path;
  std::unordered_set<uint64_t> visited;
  std::vector<uint32_t> trace;

  while (true) {
    if (stats.schedules_run >= opts.max_schedules) {
      stats.truncated = true;
      break;
    }

    // Fresh scenario; replay the committed prefix.
    ++stats.replays;
    std::unique_ptr<ExplorationScenario> scenario = factory();
    std::vector<Task*> tasks = scenario->tasks();
    TELEPORT_CHECK(!tasks.empty()) << "exploration scenario has no tasks";
    trace.clear();
    for (const Frame& f : path) {
      const size_t pick = f.options[f.cur];
      TELEPORT_CHECK(!tasks[pick]->done())
          << "scenario is not deterministic: replay diverged";
      tasks[pick]->Step();
      trace.push_back(static_cast<uint32_t>(pick));
    }

    // Extend greedily (always the first alternative), pushing a frame per
    // decision, until the schedule completes or a bound/prune cuts it.
    bool complete = true;
    while (!AllDone(tasks)) {
      if (static_cast<int>(trace.size()) >= opts.max_steps) {
        stats.truncated = true;
        complete = false;
        break;
      }
      if (opts.prune_visited) {
        // Prune only at genuinely new decision points — the prefix itself
        // was already expanded, and a terminal state has no futures to cut.
        const uint64_t h = scenario->StateHash();
        if (!visited.insert(h).second) {
          ++stats.prunes;
          complete = false;
          break;
        }
      }
      Frame f;
      f.options = RunnableIndices(tasks);
      const size_t pick = f.options[f.cur];
      path.push_back(std::move(f));
      tasks[pick]->Step();
      trace.push_back(static_cast<uint32_t>(pick));
    }

    if (complete) {
      ++stats.schedules_run;
      scenario->OnComplete(trace);
    }

    // Backtrack: advance the deepest frame with an unexplored alternative,
    // discarding exhausted frames. An empty path means exhaustion.
    while (!path.empty() && path.back().cur + 1 >= path.back().options.size()) {
      path.pop_back();
    }
    if (path.empty()) break;
    ++path.back().cur;
  }

  if (opts.prune_visited) stats.states_visited = visited.size();
  return stats;
}

}  // namespace teleport::sim
