#ifndef TELEPORT_SIM_METRICS_H_
#define TELEPORT_SIM_METRICS_H_

#include <cstdint>
#include <string>

namespace teleport::sim {

/// Event counters accumulated by the DDC simulator. A context owns one
/// Metrics; scopes (e.g. one relational operator) can snapshot-and-diff to
/// attribute traffic to a region of execution (Fig 10's "remote memory
/// accesses" column).
struct Metrics {
  // Compute-pool cache.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;            ///< page faults to the memory pool
  uint64_t cache_evictions = 0;
  uint64_t dirty_writebacks = 0;        ///< evicted dirty pages sent back
  uint64_t prefetched_pages = 0;        ///< pages pulled by the prefetcher

  // Fabric traffic.
  uint64_t net_messages = 0;
  uint64_t net_bytes = 0;
  uint64_t bytes_from_memory_pool = 0;  ///< page data pulled to compute
  uint64_t bytes_to_memory_pool = 0;    ///< page data pushed back

  // Memory pool.
  uint64_t memory_pool_hits = 0;
  uint64_t memory_pool_faults = 0;      ///< recursive faults to storage

  // Storage pool.
  uint64_t storage_reads = 0;
  uint64_t storage_writes = 0;

  // Coherence protocol (§4).
  uint64_t coherence_messages = 0;
  uint64_t coherence_invalidations = 0;
  uint64_t coherence_downgrades = 0;
  uint64_t coherence_page_returns = 0;  ///< dirty pages flushed by requests

  // TELEPORT runtime.
  uint64_t pushdown_calls = 0;
  uint64_t syncmem_pages = 0;

  // Resilience (§3.2 failure handling; all zero in fault-free runs).
  uint64_t fault_events = 0;      ///< injected drops observed by this context
  uint64_t retries = 0;           ///< RPC attempts repeated after a drop
  uint64_t fallbacks = 0;         ///< pushdowns re-run locally (§3.2 escape)
  uint64_t lost_pool_writes = 0;  ///< unflushed pool pages lost to a restart

  // CPU accounting.
  uint64_t cpu_ops = 0;

  /// Element-wise accumulation.
  void Add(const Metrics& o) {
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    dirty_writebacks += o.dirty_writebacks;
    prefetched_pages += o.prefetched_pages;
    net_messages += o.net_messages;
    net_bytes += o.net_bytes;
    bytes_from_memory_pool += o.bytes_from_memory_pool;
    bytes_to_memory_pool += o.bytes_to_memory_pool;
    memory_pool_hits += o.memory_pool_hits;
    memory_pool_faults += o.memory_pool_faults;
    storage_reads += o.storage_reads;
    storage_writes += o.storage_writes;
    coherence_messages += o.coherence_messages;
    coherence_invalidations += o.coherence_invalidations;
    coherence_downgrades += o.coherence_downgrades;
    coherence_page_returns += o.coherence_page_returns;
    pushdown_calls += o.pushdown_calls;
    syncmem_pages += o.syncmem_pages;
    fault_events += o.fault_events;
    retries += o.retries;
    fallbacks += o.fallbacks;
    lost_pool_writes += o.lost_pool_writes;
    cpu_ops += o.cpu_ops;
  }

  /// Element-wise difference (this - o); used for scoped attribution.
  Metrics Diff(const Metrics& o) const {
    Metrics d = *this;
    d.cache_hits -= o.cache_hits;
    d.cache_misses -= o.cache_misses;
    d.cache_evictions -= o.cache_evictions;
    d.dirty_writebacks -= o.dirty_writebacks;
    d.prefetched_pages -= o.prefetched_pages;
    d.net_messages -= o.net_messages;
    d.net_bytes -= o.net_bytes;
    d.bytes_from_memory_pool -= o.bytes_from_memory_pool;
    d.bytes_to_memory_pool -= o.bytes_to_memory_pool;
    d.memory_pool_hits -= o.memory_pool_hits;
    d.memory_pool_faults -= o.memory_pool_faults;
    d.storage_reads -= o.storage_reads;
    d.storage_writes -= o.storage_writes;
    d.coherence_messages -= o.coherence_messages;
    d.coherence_invalidations -= o.coherence_invalidations;
    d.coherence_downgrades -= o.coherence_downgrades;
    d.coherence_page_returns -= o.coherence_page_returns;
    d.pushdown_calls -= o.pushdown_calls;
    d.syncmem_pages -= o.syncmem_pages;
    d.fault_events -= o.fault_events;
    d.retries -= o.retries;
    d.fallbacks -= o.fallbacks;
    d.lost_pool_writes -= o.lost_pool_writes;
    d.cpu_ops -= o.cpu_ops;
    return d;
  }

  /// Total bytes moved between the compute and memory pools ("remote memory
  /// accesses" in the paper's figures).
  uint64_t RemoteMemoryBytes() const {
    return bytes_from_memory_pool + bytes_to_memory_pool;
  }

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_METRICS_H_
