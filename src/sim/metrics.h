#ifndef TELEPORT_SIM_METRICS_H_
#define TELEPORT_SIM_METRICS_H_

#include <cstdint>
#include <string>

namespace teleport::sim {

/// X(field, group, label) — every counter of the simulator, in declaration
/// and print order. The field declarations, Add, Diff, and ToString are all
/// generated from this one list, so a counter cannot be added to one and
/// silently missed by the others (the drift guard below catches a field
/// declared outside the list).
///
/// `group` names the ToString section (`memory_pool` prints as
/// "memory pool"; the sentinel `none` keeps a field out of the dump, whose
/// exact format is byte-locked by format_golden_test). `label` is the
/// field's short name within its section.
#define TELEPORT_SIM_METRICS_FIELDS(X)                                        \
  /* Compute-pool cache. */                                                   \
  X(cache_hits, cache, hits)                                                  \
  X(cache_misses, cache, misses)         /* page faults to the memory pool */ \
  X(cache_evictions, cache, evictions)                                        \
  X(dirty_writebacks, cache, writebacks) /* evicted dirty pages sent back */  \
  X(prefetched_pages, none, prefetched)  /* pages pulled by the prefetcher */ \
  /* Fabric traffic. */                                                       \
  X(net_messages, net, messages)                                              \
  X(net_bytes, net, bytes)                                                    \
  X(bytes_from_memory_pool, net, from_mem) /* page data pulled to compute */  \
  X(bytes_to_memory_pool, net, to_mem)     /* page data pushed back */        \
  /* Fabric queueing (PR9 contended backends; zero under net::kIdeal). */     \
  X(netq_queued_sends, netq, queued_sends) /* sends that waited in a queue */ \
  X(netq_queue_wait_ns, netq, queue_wait_ns)                                  \
  X(netq_doorbells, netq, doorbells)       /* verbs actually posted */        \
  X(netq_doorbells_coalesced, netq, doorbells_coalesced)                      \
  X(netq_sg_segments, netq, sg_segments)   /* scatter-gather list entries */  \
  X(netq_smartnic_offloads, netq, smartnic_offloads)                          \
  /* Memory pool. */                                                          \
  X(memory_pool_hits, memory_pool, hits)                                      \
  X(memory_pool_faults, memory_pool, faults) /* recursive storage faults */   \
  /* Storage pool. */                                                         \
  X(storage_reads, storage, reads)                                            \
  X(storage_writes, storage, writes)                                          \
  /* Coherence protocol (§4). */                                              \
  X(coherence_messages, coherence, messages)                                  \
  X(coherence_invalidations, coherence, invalidations)                        \
  X(coherence_downgrades, coherence, downgrades)                              \
  X(coherence_page_returns, coherence, page_returns) /* dirty flush-backs */  \
  /* TELEPORT runtime. */                                                     \
  X(pushdown_calls, teleport, pushdowns)                                      \
  X(syncmem_pages, teleport, syncmem_pages)                                   \
  /* Resilience (§3.2 failure handling; all zero in fault-free runs). */      \
  X(fault_events, resilience, fault_events) /* injected drops observed */     \
  X(retries, resilience, retries)           /* RPC attempts after a drop */   \
  X(fallbacks, resilience, fallbacks)       /* pushdowns re-run locally */    \
  X(lost_pool_writes, resilience, lost_pool_writes) /* lost to a restart */   \
  /* Recovery (PR6 journal/fencing/dedup; zero with TELEPORT_JOURNAL off). */ \
  X(recovered_pool_writes, recovery, recovered_pool_writes)                   \
  X(journal_appends, recovery, journal_appends)   /* redo records written */  \
  X(journal_flushes, recovery, journal_flushes)   /* group-commit batches */  \
  X(fenced_rpcs, recovery, fenced_rpcs) /* stale-epoch pushdowns rejected */  \
  X(dedup_hits, recovery, dedup_hits)   /* duplicate deliveries suppressed */ \
  /* OLTP transactions (PR8 src/oltp; zero unless the oltp engine runs). */   \
  X(txn_commits, txn, commits)                                                \
  X(txn_aborts, txn, aborts)   /* validation failures (before any retry) */   \
  X(txn_retries, txn, retries) /* re-executions after an abort */             \
  X(txn_reads_validated, txn, reads_validated) /* read-set entries checked */ \
  X(txn_undo_writes, txn, undo_writes) /* provisional installs rolled back */ \
  X(btree_splits, txn, node_splits)                                           \
  X(btree_merges, txn, node_merges)                                           \
  /* CPU accounting. */                                                       \
  X(cpu_ops, cpu, ops)                                                        \
  /* Host-parallel engine (PR10; zero unless Interleaver::FlushParCounters   \
     is called — the counters describe host dispatch, not simulated work). */ \
  X(par_batches, par, batches)                                                \
  X(par_parallel_steps, par, parallel_steps)                                  \
  X(par_lookahead_stalls, par, lookahead_stalls)                              \
  X(par_handoff_waits, par, handoff_waits)                                    \
  X(par_batched_quanta, par, batched_quanta)

/// Event counters accumulated by the DDC simulator. A context owns one
/// Metrics; scopes (e.g. one relational operator) can snapshot-and-diff to
/// attribute traffic to a region of execution (Fig 10's "remote memory
/// accesses" column).
struct Metrics {
#define TELEPORT_SIM_METRICS_DECL(field, group, label) uint64_t field = 0;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_SIM_METRICS_DECL)
#undef TELEPORT_SIM_METRICS_DECL

  /// Element-wise accumulation.
  void Add(const Metrics& o) {
#define TELEPORT_SIM_METRICS_ADD(field, group, label) field += o.field;
    TELEPORT_SIM_METRICS_FIELDS(TELEPORT_SIM_METRICS_ADD)
#undef TELEPORT_SIM_METRICS_ADD
  }

  /// Element-wise difference (this - o); used for scoped attribution.
  Metrics Diff(const Metrics& o) const {
    Metrics d = *this;
#define TELEPORT_SIM_METRICS_DIFF(field, group, label) d.field -= o.field;
    TELEPORT_SIM_METRICS_FIELDS(TELEPORT_SIM_METRICS_DIFF)
#undef TELEPORT_SIM_METRICS_DIFF
    return d;
  }

  /// Total bytes moved between the compute and memory pools ("remote memory
  /// accesses" in the paper's figures).
  uint64_t RemoteMemoryBytes() const {
    return bytes_from_memory_pool + bytes_to_memory_pool;
  }

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

#define TELEPORT_SIM_METRICS_COUNT(field, group, label) +1
/// Number of counters in the field list.
inline constexpr int kNumMetricsFields =
    0 TELEPORT_SIM_METRICS_FIELDS(TELEPORT_SIM_METRICS_COUNT);
#undef TELEPORT_SIM_METRICS_COUNT

// Drift guard: every member of Metrics must come from the X-macro list. A
// uint64_t added directly to the struct changes its size without changing
// kNumMetricsFields and fails here.
static_assert(sizeof(Metrics) ==
                  static_cast<size_t>(kNumMetricsFields) * sizeof(uint64_t),
              "Metrics has a field outside TELEPORT_SIM_METRICS_FIELDS; add "
              "it to the X-macro list so Add/Diff/ToString stay in sync");

}  // namespace teleport::sim

#endif  // TELEPORT_SIM_METRICS_H_
