#ifndef TELEPORT_TELEPORT_PUSHDOWN_H_
#define TELEPORT_TELEPORT_PUSHDOWN_H_

#include <exception>
#include <type_traits>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "ddc/memory_system.h"
#include "teleport/retry.h"

namespace teleport::tp {

/// Synchronization strategy applied around a pushdown call (§4, Fig 20,
/// Fig 6 ablation).
enum class SyncStrategy : uint8_t {
  /// Default: no pages move up front; the MESI-inspired on-demand protocol
  /// keeps the pools coherent during execution (§4.1).
  kOnDemand,
  /// Strawman: flush the entire compute cache before execution and refetch
  /// it afterwards (Fig 20 "eager sync").
  kEager,
  /// Flush and evict only the pages of a caller-specified range before
  /// execution, with no online coherence (Fig 6 "per thread"). Requires
  /// `sync_addr`/`sync_len` in the flags.
  kEagerRange,
};

std::string_view SyncStrategyToString(SyncStrategy s);

/// §3.2 escape hatch: what the runtime does when a pushdown times out or
/// cannot reach the memory pool while the pool is still restartable.
enum class FallbackPolicy : uint8_t {
  /// Surface TimedOut/Unavailable to the application (default).
  kNone,
  /// Issue try_cancel, then transparently re-run the function locally on the
  /// compute pool via demand paging ("the application is then free to
  /// execute the function locally", §3.2).
  kLocal,
};

std::string_view FallbackPolicyToString(FallbackPolicy f);

/// The `flags` argument of the pushdown syscall (§3.1).
struct PushdownFlags {
  SyncStrategy sync = SyncStrategy::kOnDemand;

  /// Coherence protocol variant for the session (§4.2 relaxations).
  ddc::CoherenceMode coherence = ddc::CoherenceMode::kMesi;

  /// 0 = block until completion (default). Otherwise, if the request has
  /// not started executing after `timeout_ns`, a try_cancel is issued; a
  /// successful cancel surfaces Status::TimedOut and leaves the caller free
  /// to run the function locally (§3.2).
  Nanos timeout_ns = 0;

  /// Range for SyncStrategy::kEagerRange.
  ddc::VAddr sync_addr = 0;
  uint64_t sync_len = 0;

  /// Approximate serialized size of fn's argument vector (shipped inside
  /// the request message).
  uint64_t arg_bytes = 64;

  /// Approximate serialized size of fn's return payload.
  uint64_t result_bytes = 64;

  /// Recovery behavior on timeout or an unreachable-but-restartable pool.
  FallbackPolicy fallback = FallbackPolicy::kNone;

  /// Memory shard whose controller receives the request RPC and hosts the
  /// temporary context (the session's *home* shard). Data accesses inside
  /// the pushed function still fault shard-by-shard; the home shard is the
  /// admission point for lease fencing and idempotency dedup. 0 — the only
  /// shard of the paper's 1x1 rack — preserves every legacy call site.
  int home_shard = 0;

  /// Registered kernel this call executes (PushdownRuntime::RegisterKernel),
  /// or -1 for an anonymous pushdown. Purely attributive: traces tag the
  /// call with the kernel name and the runtime keeps per-kernel call
  /// counts; timing and semantics are unchanged.
  int kernel = -1;
};

/// Wall-clock breakdown of one pushdown call, matching the six components
/// of Fig 19 (function execution and online synchronization are split out
/// as in Fig 20).
struct PushdownBreakdown {
  Nanos pre_sync_ns = 0;           ///< (1) pre-pushdown synchronization
  Nanos request_transfer_ns = 0;   ///< (2) request over RDMA
  Nanos queue_wait_ns = 0;         ///<     waiting for a free instance
  Nanos context_setup_ns = 0;      ///< (3) temporary user context setup
  Nanos function_exec_ns = 0;      ///< (4a) user function execution
  Nanos online_sync_ns = 0;        ///< (4b) coherence during execution
  Nanos response_transfer_ns = 0;  ///< (5) response over RDMA
  Nanos post_sync_ns = 0;          ///< (6) post-pushdown synchronization
  /// Virtual time spent in §3.2 recovery: retransmission timeouts, backoff,
  /// outage waits, and local-fallback overhead. Exactly zero in fault-free
  /// runs.
  Nanos retry_ns = 0;

  Nanos Total() const {
    return pre_sync_ns + request_transfer_ns + queue_wait_ns +
           context_setup_ns + function_exec_ns + online_sync_ns +
           response_transfer_ns + post_sync_ns + retry_ns;
  }

  void Add(const PushdownBreakdown& o);
  std::string ToString() const;
};

/// Signature of a pushed-down function: executes inside a memory-pool
/// context with an opaque argument pointer, mirroring the
/// `pushdown(fn, arg, flags)` syscall of §3.1. The argument may contain
/// pointers into the shared virtual address space.
using PushdownFn = Status (*)(ddc::ExecutionContext&, void* arg);

/// The TELEPORT runtime: the user-level analog of the compute- and
/// memory-pool kernel instances of §3.2 and §6.
///
/// One runtime serves one MemorySystem (one process address space). It owns
/// the pool of memory-side instances: concurrent pushdown requests from
/// multiple application threads are queued FIFO and served by
/// `num_instances` temporary user contexts (§3.2 "handling concurrent
/// pushdown requests").
class PushdownRuntime {
 public:
  /// `num_instances` is the number of parallel user contexts in the memory
  /// pool (Fig 17); 1 serializes concurrent requests.
  explicit PushdownRuntime(ddc::MemorySystem* ms, int num_instances = 1);

  PushdownRuntime(const PushdownRuntime&) = delete;
  PushdownRuntime& operator=(const PushdownRuntime&) = delete;

  /// The pushdown syscall. Blocks the caller (its virtual clock advances to
  /// the completion time); other simulated threads may run concurrently.
  ///
  /// Returns fn's status on success; TimedOut if a timeout was set and the
  /// request was cancelled before starting; Unavailable if the memory pool
  /// is unreachable (heartbeat failure — the real system panics, §3.2) or
  /// if a pool restart dropped writes the journal never covered; Fenced if
  /// the call's admission epoch went stale across pool recoveries and
  /// re-admission kept failing (journal-on only); Fault if the function
  /// overran the runtime's kill timeout.
  Status Pushdown(ddc::ExecutionContext& caller, PushdownFn fn, void* arg,
                  const PushdownFlags& flags = {});

  /// Convenience wrapper for invocables. C++ exceptions thrown by `fn` in
  /// the memory pool are caught by the stub, transported, and rethrown at
  /// the caller (§3.2 exception handling).
  template <typename F>
  Status Call(ddc::ExecutionContext& caller, F&& fn,
              const PushdownFlags& flags = {}) {
    using Fn = std::remove_reference_t<F>;
    struct Shim {
      Fn* fn;
      std::exception_ptr eptr;
    } shim{&fn, nullptr};
    PushdownFn tramp = [](ddc::ExecutionContext& mem_ctx,
                          void* arg) -> Status {
      Shim* s = static_cast<Shim*>(arg);
      try {
        return (*s->fn)(mem_ctx);
      } catch (...) {
        s->eptr = std::current_exception();
        return Status::Fault("C++ exception escaped pushed function");
      }
    };
    Status st = Pushdown(caller, tramp, &shim, flags);
    if (shim.eptr) std::rethrow_exception(shim.eptr);
    return st;
  }

  /// The syncmem syscall (§4.2): manually flush dirty pages of a range.
  void Syncmem(ddc::ExecutionContext& ctx, ddc::VAddr addr, uint64_t len) {
    ms_->Syncmem(ctx, addr, len);
  }

  /// Background heartbeat check (§3.2): cheap probe of one memory shard's
  /// controller over the probing node's link (shard 0 — the whole pool on a
  /// 1x1 rack — by default).
  Status CheckHeartbeat(ddc::ExecutionContext& ctx, int shard = 0);

  /// Kills pushed functions whose simulated execution exceeds this bound
  /// (§3.2 "buggy code ... killed by TELEPORT"). Default: 10 virtual
  /// minutes.
  void set_kill_timeout(Nanos ns) { kill_timeout_ns_ = ns; }

  /// Pool-side instances per memory shard.
  int num_instances() const {
    return static_cast<int>(instance_free_.front().size());
  }

  /// Breakdown of the most recent completed call.
  const PushdownBreakdown& last_breakdown() const { return last_breakdown_; }
  /// Distribution of completed calls' end-to-end virtual latencies.
  const Histogram& call_latency() const { return call_latency_; }
  /// Distribution of the online-coherence component per call.
  const Histogram& online_sync_latency() const { return online_sync_latency_; }
  /// Sum of breakdowns across all completed calls.
  const PushdownBreakdown& total_breakdown() const {
    return total_breakdown_;
  }
  uint64_t completed_calls() const { return completed_calls_; }
  uint64_t cancelled_calls() const { return cancelled_calls_; }

  /// Registers a named pushdown kernel and returns its id for
  /// PushdownFlags::kernel. Idempotent per name (re-registering returns the
  /// existing id), so engines can register in their constructors.
  int RegisterKernel(const std::string& name);
  /// Name of a registered kernel id ("" if out of range).
  std::string_view kernel_name(int id) const {
    return id >= 0 && static_cast<size_t>(id) < kernel_names_.size()
               ? std::string_view(kernel_names_[static_cast<size_t>(id)])
               : std::string_view();
  }
  /// Completed (or locally fallen-back) calls attributed to kernel `id`.
  uint64_t kernel_calls(int id) const {
    return id >= 0 && static_cast<size_t>(id) < kernel_calls_.size()
               ? kernel_calls_[static_cast<size_t>(id)]
               : 0;
  }

  /// Retry/backoff policy applied to pushdown requests, responses, and
  /// heartbeats when a fault injector is attached to the fabric; inert
  /// otherwise.
  void set_retry_policy(const RetryPolicy& p) { retry_ = p; }
  const RetryPolicy& retry_policy() const { return retry_; }
  /// Reseeds the deterministic jitter stream for retry backoff.
  void set_retry_seed(uint64_t seed) { retry_rng_ = Rng(seed); }

  /// RPC attempts this runtime repeated after a drop.
  uint64_t retry_events() const { return retry_events_; }
  /// Pushdowns transparently re-run locally under FallbackPolicy::kLocal.
  uint64_t fallback_calls() const { return fallback_calls_; }
  /// Pushdowns rejected by the pool's lease fence (stale admission epoch)
  /// and re-admitted under the fresh epoch; zero with the journal off.
  uint64_t fenced_rpcs() const { return fenced_rpcs_; }

  /// True once a heartbeat or pushdown has observed the memory pool
  /// unreachable. The real system panics at that point (§3.2: main memory
  /// is lost); here the runtime latches into a failed state and every
  /// subsequent call returns Unavailable immediately.
  bool panicked() const { return panicked_; }
  /// RLE compression ratio of the last resident-page list (§6 reports ~20x).
  double last_page_list_compression() const {
    return last_page_list_compression_;
  }

 private:
  /// Runs `fn` in the caller's own context after a failed/cancelled
  /// pushdown (§3.2 local execution). `cancel_sent` says whether a
  /// try_cancel already went out on the wire; `link` is the call's
  /// (caller node, home shard) pair.
  Status RunLocalFallback(ddc::ExecutionContext& caller, PushdownFn fn,
                          void* arg, PushdownBreakdown& bd, Nanos t0,
                          bool cancel_sent, net::Link link, int kernel);

  /// Emits the per-call trace spans once a breakdown is final: one
  /// enclosing "call" span plus a child span per non-zero component, laid
  /// out consecutively from t0 and tagged with the call id (and the kernel
  /// name when the call named one), so the child durations of every request
  /// sum exactly to bd.Total() — the caller's observed elapsed time. No-op
  /// without a tracer on the MemorySystem.
  void TraceCall(const PushdownBreakdown& bd, Nanos t0, bool fallback,
                 int kernel);

  ddc::MemorySystem* ms_;
  /// Next-free time of each pool-side instance, per memory shard: shard k
  /// admits pushdowns from its own `num_instances`-deep workqueue, so one
  /// shard's backlog never queues a call homed elsewhere (PR7). One shard
  /// degenerates to the single global workqueue.
  std::vector<std::vector<Nanos>> instance_free_;
  Nanos kill_timeout_ns_ = 600 * kSecond;
  RetryPolicy retry_;
  Rng retry_rng_{0x7e1e905u};
  uint64_t retry_events_ = 0;
  uint64_t fallback_calls_ = 0;
  uint64_t next_token_ = 0;  ///< per-call idempotency token source
  uint64_t fenced_rpcs_ = 0;
  PushdownBreakdown last_breakdown_;
  PushdownBreakdown total_breakdown_;
  Histogram call_latency_;
  Histogram online_sync_latency_;
  uint64_t completed_calls_ = 0;
  uint64_t cancelled_calls_ = 0;
  std::vector<std::string> kernel_names_;
  std::vector<uint64_t> kernel_calls_;
  bool panicked_ = false;
  double last_page_list_compression_ = 1.0;
};

/// Analytic makespan model for `n` identical pushdown requests served by
/// `instances` user contexts on `cores` memory-pool cores (Fig 17). Each
/// request consists of `busy_ns` of core time and `stall_ns` of off-core
/// waiting (coherence round trips, storage faults). Context switching adds
/// overhead once instances exceed cores.
Nanos InstancePoolMakespan(int n_requests, Nanos busy_ns, Nanos stall_ns,
                           int instances, int cores,
                           const sim::CostParams& params);

}  // namespace teleport::tp

#endif  // TELEPORT_TELEPORT_PUSHDOWN_H_
