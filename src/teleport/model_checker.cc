#include "teleport/model_checker.h"

#include <sstream>

#include "common/logging.h"

namespace teleport::tp {

namespace {
using ddc::CoherenceEvent;
using ddc::CoherenceMode;
using ddc::Perm;

const char* PermName(Perm p) {
  switch (p) {
    case Perm::kNone:
      return "None";
    case Perm::kRead:
      return "R";
    case Perm::kWrite:
      return "W";
  }
  return "?";
}
}  // namespace

ModelChecker::ModelChecker(ddc::MemorySystem* ms, OnViolation action)
    : ms_(ms), action_(action) {
  TELEPORT_CHECK(ms_->config().platform == ddc::Platform::kBaseDdc)
      << "ModelChecker shadows the DDC coherence paths only";
  // Snapshot the implementation's page table as the model's start state.
  // A page that is dirty at attach holds the only copy of its latest
  // (abstract) version; everything else is in sync at version 0.
  pages_.resize(ms_->tracked_pages());
  for (ddc::PageId p = 0; p < pages_.size(); ++p) {
    PageModel& m = pages_[p];
    m.compute = ms_->compute_perm(p);
    m.temp = ms_->temp_perm(p);
    m.dirty = ms_->compute_dirty(p);
    if (m.dirty) {
      m.master = m.compute_v = 1;
      m.home_v = 0;
    }
  }
  session_active_ = ms_->pushdown_active();
  mode_ = ms_->coherence_mode();
  pool_epoch_model_.resize(static_cast<size_t>(ms_->memory_shards()));
  for (int k = 0; k < ms_->memory_shards(); ++k) {
    pool_epoch_model_[static_cast<size_t>(k)] = ms_->pool_epoch(k);
  }
  ms_->set_coherence_observer(this);
  // After the attach (which itself bumps the epoch), so the first checked
  // transition needs a bump of its own.
  last_epoch_ = ms_->translation_epoch();
  attached_ = true;
}

ModelChecker::~ModelChecker() {
  if (attached_ && ms_->coherence_observer() == this) {
    ms_->set_coherence_observer(nullptr);
  }
}

ModelChecker::PageModel& ModelChecker::Page(ddc::PageId p) {
  if (p >= pages_.size()) pages_.resize(p + 1);
  return pages_[p];
}

void ModelChecker::Fail(const CoherenceEvent& ev, std::string message) {
  std::ostringstream os;
  os << "step " << steps_ << " [" << ddc::CoherenceEventKindToString(ev.kind)
     << " page=" << ev.page << " write=" << ev.write << " mode="
     << ddc::CoherenceModeToString(ev.mode) << "]: " << message;
  violations_.push_back(Violation{steps_, ev, os.str()});
  if (action_ == OnViolation::kAbort) {
    TELEPORT_CHECK(false) << "coherence model violation: " << os.str();
  }
}

void ModelChecker::CheckAgainstImpl(const CoherenceEvent& ev, ddc::PageId p) {
  if (p >= ms_->tracked_pages()) return;
  const PageModel& m = Page(p);
  if (m.compute != ms_->compute_perm(p) || m.temp != ms_->temp_perm(p) ||
      m.dirty != ms_->compute_dirty(p)) {
    std::ostringstream os;
    os << "spec/impl mismatch on page " << p << ": spec{compute="
       << PermName(m.compute) << " temp=" << PermName(m.temp)
       << " dirty=" << m.dirty << "} impl{compute="
       << PermName(ms_->compute_perm(p)) << " temp="
       << PermName(ms_->temp_perm(p)) << " dirty=" << ms_->compute_dirty(p)
       << "}";
    Fail(ev, os.str());
    // Resync so one impl bug reports once, not on every later event.
    PageModel& mm = Page(p);
    mm.compute = ms_->compute_perm(p);
    mm.temp = ms_->temp_perm(p);
    mm.dirty = ms_->compute_dirty(p);
  }
}

void ModelChecker::CheckSwmr(const CoherenceEvent& ev, ddc::PageId p) {
  if (!session_active_ || p >= ms_->tracked_pages()) return;
  const Perm c = ms_->compute_perm(p);
  const Perm t = ms_->temp_perm(p);
  if (mode_ == CoherenceMode::kMesi) {
    if ((c == Perm::kWrite && t != Perm::kNone) ||
        (t == Perm::kWrite && c != Perm::kNone)) {
      std::ostringstream os;
      os << "SWMR violated on page " << p << ": compute=" << PermName(c)
         << " temp=" << PermName(t);
      Fail(ev, os.str());
    }
  } else if (mode_ == CoherenceMode::kPso) {
    if (c == Perm::kWrite && t == Perm::kWrite) {
      std::ostringstream os;
      os << "PSO single-writer violated on page " << p;
      Fail(ev, os.str());
    }
  }
  // kWeakOrdering and kNone permit concurrent writers by design.
}

void ModelChecker::StepComputeAccess(const CoherenceEvent& ev) {
  const bool w = ev.write;
  PageModel& m = Page(ev.page);
  const bool sufficient =
      m.compute == Perm::kWrite || (!w && m.compute == Perm::kRead);
  if (sufficient) {
    // Cache hit: no permission movement.
  } else if (session_active_ && mode_ != CoherenceMode::kNone) {
    // Spec of CoherenceComputeFault (Figs 8/9).
    if (mode_ == CoherenceMode::kWeakOrdering && m.compute != Perm::kNone) {
      m.compute = Perm::kWrite;  // silent upgrade, no remote traffic
    } else {
      if (mode_ != CoherenceMode::kWeakOrdering) {
        // Memory-side handler invalidates/downgrades the temp mapping.
        if (w) {
          if (m.temp != Perm::kNone) {
            m.temp = mode_ == CoherenceMode::kPso ? Perm::kRead : Perm::kNone;
          }
        } else if (m.temp == Perm::kWrite) {
          m.temp = Perm::kRead;
        }
      }
      const bool need_data = m.compute == Perm::kNone;
      if (need_data) {
        m.compute_v = m.home_v;  // fill travels with the reply
        m.dirty = false;
      }
      m.compute = w ? Perm::kWrite : Perm::kRead;
    }
  } else if (m.compute != Perm::kNone) {
    m.compute = Perm::kWrite;  // local R->W upgrade (writes only)
  } else {
    m.compute_v = m.home_v;  // plain fault fill from the pool
    m.dirty = false;
    m.compute = w ? Perm::kWrite : Perm::kRead;
  }
  if (w) {
    m.dirty = true;
    m.compute_v = ++m.master;
  } else if (session_active_ && mode_ == CoherenceMode::kMesi &&
             m.compute_v != m.master) {
    std::ostringstream os;
    os << "stale read on page " << ev.page << ": compute copy holds v"
       << m.compute_v << ", latest write is v" << m.master;
    Fail(ev, os.str());
    m.compute_v = m.master;  // resync
  }
}

void ModelChecker::StepMemoryAccess(const CoherenceEvent& ev) {
  const bool w = ev.write;
  PageModel& m = Page(ev.page);
  if (session_active_ && mode_ != CoherenceMode::kNone) {
    const bool sufficient =
        m.temp == Perm::kWrite || (!w && m.temp == Perm::kRead);
    if (!sufficient) {
      // Spec of CoherenceMemoryFault (Fig 9).
      const Perm wanted = w ? Perm::kWrite : Perm::kRead;
      if (mode_ == CoherenceMode::kWeakOrdering ||
          m.compute == Perm::kNone) {
        m.temp = wanted;  // nothing to reconcile with the compute pool
      } else {
        if (m.dirty) {
          // The fresher compute copy rides back with the reply.
          m.dirty = false;
          m.home_v = m.compute_v;
        }
        if (w) {
          m.compute =
              mode_ == CoherenceMode::kPso ? Perm::kRead : Perm::kNone;
        } else if (m.compute == Perm::kWrite) {
          m.compute = Perm::kRead;
        }
        m.temp = wanted;
      }
    }
  }
  if (w) {
    m.home_v = ++m.master;  // temp writes land directly in the pool
  } else if (session_active_ && mode_ == CoherenceMode::kMesi &&
             m.home_v != m.master) {
    std::ostringstream os;
    os << "stale read on page " << ev.page << ": pool copy holds v"
       << m.home_v << ", latest write is v" << m.master;
    Fail(ev, os.str());
    m.home_v = m.master;  // resync
  }
}

void ModelChecker::StepSessionBegin(const CoherenceEvent& ev) {
  // Invariant 6b: the session's admission epoch must be the epoch of its
  // home shard's latest recovery — executing under an older lease means a
  // fenced session's effects would become visible. ev.node carries the home
  // shard (always 0 on a 1x1 rack).
  const size_t home =
      ev.node >= 0 && static_cast<size_t>(ev.node) < pool_epoch_model_.size()
          ? static_cast<size_t>(ev.node)
          : 0;
  if (ev.epoch != pool_epoch_model_[home]) {
    std::ostringstream os;
    os << "stale-epoch session admitted: lease epoch " << ev.epoch
       << " but home shard " << ev.node << " recovered into epoch "
       << pool_epoch_model_[home] << " (fencing skipped)";
    Fail(ev, os.str());
  }
  session_active_ = true;
  mode_ = ev.mode;
  if (pages_.size() < ms_->tracked_pages()) {
    pages_.resize(ms_->tracked_pages());
  }
  for (ddc::PageId p = 0; p < pages_.size(); ++p) {
    PageModel& m = pages_[p];
    if (mode_ == CoherenceMode::kNone) {
      m.temp = Perm::kWrite;
      continue;
    }
    // Fig 8 temporary page table: compute-writable pages are unmapped,
    // compute-read pages map read-only, uncached pages map writable.
    switch (m.compute) {
      case Perm::kWrite:
        m.temp = Perm::kNone;
        break;
      case Perm::kRead:
        m.temp = Perm::kRead;
        break;
      case Perm::kNone:
        m.temp = Perm::kWrite;
        break;
    }
  }
  // Full-table audit at the boundary: catches drift anywhere, not just on
  // pages the workload happens to touch next.
  for (ddc::PageId p = 0; p < pages_.size(); ++p) CheckAgainstImpl(ev, p);
}

void ModelChecker::StepSessionEnd(const CoherenceEvent& ev) {
  for (ddc::PageId p = 0; p < pages_.size(); ++p) {
    pages_[p].temp = Perm::kNone;
  }
  session_active_ = false;
  // Drain: the implementation must also have cleared every temp mapping.
  for (ddc::PageId p = 0; p < pages_.size(); ++p) CheckAgainstImpl(ev, p);
}

bool ModelChecker::RequiresShootdown(const CoherenceEvent& ev) {
  switch (ev.kind) {
    case CoherenceEvent::Kind::kComputeAccess: {
      // Obliged only when the access is not a plain hit under the model's
      // pre-step permissions (fault, upgrade, or coherence transition).
      const PageModel& m = Page(ev.page);
      return !(m.compute == Perm::kWrite ||
               (!ev.write && m.compute == Perm::kRead));
    }
    case CoherenceEvent::Kind::kMemoryAccess: {
      // Transitions only happen under an active coherent session; plain
      // pool faults also bump, but the model cannot see pool residency so
      // it does not insist.
      if (!session_active_ || mode_ == CoherenceMode::kNone) return false;
      const PageModel& m = Page(ev.page);
      return !(m.temp == Perm::kWrite ||
               (!ev.write && m.temp == Perm::kRead));
    }
    case CoherenceEvent::Kind::kPoolRecover:
    case CoherenceEvent::Kind::kJournalCommit:
    case CoherenceEvent::Kind::kJournalTruncate:
    case CoherenceEvent::Kind::kPushdownAdmit:
    case CoherenceEvent::Kind::kTxnRead:
    case CoherenceEvent::Kind::kTxnWrite:
    case CoherenceEvent::Kind::kTxnCommit:
    case CoherenceEvent::Kind::kTxnAbort:
    case CoherenceEvent::Kind::kTxnUndo:
      // Journal bookkeeping, admission decisions and engine-level
      // transactional events touch no mapping; the recovery wipe's own
      // shootdown is checked on kPoolRestart.
      return false;
    default:
      // Evictions, fills, writebacks, flushes, refetches, restarts and
      // session boundaries always rewrite page state.
      return true;
  }
}

ModelChecker::TxnSession& ModelChecker::Session(int id) {
  const size_t i = id < 0 ? 0 : static_cast<size_t>(id);
  if (i >= txn_sessions_.size()) txn_sessions_.resize(i + 1);
  return txn_sessions_[i];
}

void ModelChecker::StepTxnEvent(const CoherenceEvent& ev) {
  const uint64_t key = ev.page;
  auto shadow = [this](uint64_t k) -> uint64_t& {
    if (k >= committed_version_.size()) committed_version_.resize(k + 1, 0);
    return committed_version_[k];
  };
  // Invariant 7c: an abort's undo obligations are discharged while the
  // aborting session still holds the commit latch and the obligated
  // records' locks, so in a correct run no install/commit/abort — and no
  // read of an obligated record — can interleave before the last kTxnUndo.
  if (!pending_undo_.empty() && ev.kind != CoherenceEvent::Kind::kTxnUndo) {
    bool conflict = ev.kind != CoherenceEvent::Kind::kTxnRead;
    if (!conflict) {
      for (const auto& [k, v] : pending_undo_) {
        if (k == key) conflict = true;
      }
    }
    if (conflict) {
      std::ostringstream os;
      os << pending_undo_.size()
         << " aborted provisional write(s) still visible at the next "
            "transactional event (abort undo skipped?)";
      Fail(ev, os.str());
      pending_undo_.clear();
    }
  }
  switch (ev.kind) {
    case CoherenceEvent::Kind::kTxnRead: {
      // 7a: reads observe committed versions only — a provisional (or
      // otherwise unannounced) version is a dirty read.
      if (ev.epoch != shadow(key)) {
        std::ostringstream os;
        os << "txn read of key " << key << " observed version " << ev.epoch
           << " but the latest committed version is " << shadow(key)
           << " (dirty or torn read)";
        Fail(ev, os.str());
      }
      Session(ev.node).reads.emplace_back(key, ev.epoch);
      break;
    }
    case CoherenceEvent::Kind::kTxnWrite: {
      // Provisional install under the commit latch: must propose exactly
      // the successor of the committed version.
      if (ev.epoch != shadow(key) + 1) {
        std::ostringstream os;
        os << "provisional install of key " << key << " proposes version "
           << ev.epoch << ", expected " << shadow(key) + 1
           << " (must bump the committed version by exactly one)";
        Fail(ev, os.str());
      }
      Session(ev.node).writes.emplace_back(key, ev.epoch);
      break;
    }
    case CoherenceEvent::Kind::kTxnCommit: {
      TxnSession& s = Session(ev.node);
      // 7b: the whole read set must still match the shadow committed
      // versions — a racing commit in between means validation had to
      // abort this transaction (catches kSkipOccValidation).
      for (const auto& [k, v] : s.reads) {
        if (shadow(k) != v) {
          std::ostringstream os;
          os << "session " << ev.node << " committed against a stale read: "
             << "key " << k << " was observed at version " << v
             << " but committed version is now " << shadow(k)
             << " (OCC validation skipped?)";
          Fail(ev, os.str());
        }
      }
      // Commits are latch-serialized: sequence numbers strictly increase.
      if (ev.epoch <= last_commit_seq_) {
        std::ostringstream os;
        os << "commit sequence " << ev.epoch
           << " not past the previous commit " << last_commit_seq_;
        Fail(ev, os.str());
      }
      last_commit_seq_ = ev.epoch;
      for (const auto& [k, nv] : s.writes) shadow(k) = nv;
      s.reads.clear();
      s.writes.clear();
      break;
    }
    case CoherenceEvent::Kind::kTxnAbort: {
      TxnSession& s = Session(ev.node);
      for (const auto& [k, nv] : s.writes) {
        pending_undo_.emplace_back(k, shadow(k));
      }
      s.reads.clear();
      s.writes.clear();
      break;
    }
    case CoherenceEvent::Kind::kTxnUndo: {
      bool found = false;
      for (auto it = pending_undo_.begin(); it != pending_undo_.end(); ++it) {
        if (it->first == key) {
          if (it->second != ev.epoch) {
            std::ostringstream os;
            os << "undo of key " << key << " restored version " << ev.epoch
               << ", expected committed version " << it->second;
            Fail(ev, os.str());
          }
          pending_undo_.erase(it);
          found = true;
          break;
        }
      }
      if (!found) {
        std::ostringstream os;
        os << "undo of key " << key
           << " with no matching provisional install to roll back";
        Fail(ev, os.str());
      }
      break;
    }
    default:
      break;
  }
}

void ModelChecker::OnCoherenceEvent(const CoherenceEvent& ev) {
  // Journal bookkeeping and admission decisions are observer-only: they
  // ride between an epoch bump and the page-state event that earned it
  // (e.g. kJournalCommit precedes the kComputeEvict it acknowledges), so
  // they must neither consume the bump nor be audited for one.
  const bool txn_event = ev.kind == CoherenceEvent::Kind::kTxnRead ||
                         ev.kind == CoherenceEvent::Kind::kTxnWrite ||
                         ev.kind == CoherenceEvent::Kind::kTxnCommit ||
                         ev.kind == CoherenceEvent::Kind::kTxnAbort ||
                         ev.kind == CoherenceEvent::Kind::kTxnUndo;
  const bool bookkeeping =
      ev.kind == CoherenceEvent::Kind::kPoolRecover ||
      ev.kind == CoherenceEvent::Kind::kJournalCommit ||
      ev.kind == CoherenceEvent::Kind::kJournalTruncate ||
      ev.kind == CoherenceEvent::Kind::kPushdownAdmit || txn_event;
  const uint64_t epoch = ms_->translation_epoch();
  if (!bookkeeping) {
    if (epoch == last_epoch_ && RequiresShootdown(ev)) {
      Fail(ev,
           "missing TLB shootdown: translation epoch unchanged across a "
           "coherence transition (pinned fast-path translations would "
           "survive a state change)");
    }
    last_epoch_ = epoch;
  }
  // Invariant 6a: once a recovery announced itself (kPoolRestart), every
  // acknowledged page must be re-materialized (kPoolRecover) before the
  // protocol moves on — any other event with obligations outstanding means
  // replay was skipped or truncated. Reported once, then cleared, so one
  // planted bug does not cascade into a violation per subsequent event.
  if (pending_recover_count_ > 0 &&
      ev.kind != CoherenceEvent::Kind::kPoolRecover) {
    std::ostringstream os;
    os << pending_recover_count_
       << " acknowledged write(s) not re-materialized after pool recovery "
          "(journal replay skipped?)";
    Fail(ev, os.str());
    pending_recover_.assign(pending_recover_.size(), 0);
    pending_recover_count_ = 0;
  }
  if (txn_event) {
    StepTxnEvent(ev);
    ++steps_;
    return;
  }
  switch (ev.kind) {
    case CoherenceEvent::Kind::kSessionBegin:
      StepSessionBegin(ev);
      ++steps_;
      return;
    case CoherenceEvent::Kind::kSessionEnd:
      StepSessionEnd(ev);
      ++steps_;
      return;
    case CoherenceEvent::Kind::kComputeAccess:
      StepComputeAccess(ev);
      break;
    case CoherenceEvent::Kind::kMemoryAccess:
      StepMemoryAccess(ev);
      break;
    case CoherenceEvent::Kind::kComputeEvict: {
      PageModel& m = Page(ev.page);
      if (m.dirty) {
        m.dirty = false;
        m.home_v = m.compute_v;  // writeback to the pool
      }
      m.compute = Perm::kNone;
      break;
    }
    case CoherenceEvent::Kind::kPrefetchFill: {
      PageModel& m = Page(ev.page);
      m.compute = Perm::kRead;
      m.dirty = false;
      m.compute_v = m.home_v;
      break;
    }
    case CoherenceEvent::Kind::kSyncmemPage: {
      PageModel& m = Page(ev.page);
      m.dirty = false;
      m.home_v = m.compute_v;
      m.compute = Perm::kRead;
      if (session_active_ && mode_ != CoherenceMode::kNone &&
          m.temp == Perm::kNone) {
        m.temp = Perm::kRead;
      }
      break;
    }
    case CoherenceEvent::Kind::kFlushPage: {
      PageModel& m = Page(ev.page);
      if (m.dirty) {
        m.dirty = false;
        m.home_v = m.compute_v;
      }
      if (ev.write) m.compute = Perm::kNone;  // write := dropped
      break;
    }
    case CoherenceEvent::Kind::kRefetchPage: {
      PageModel& m = Page(ev.page);
      m.compute = Perm::kRead;
      m.dirty = false;
      m.compute_v = m.home_v;
      break;
    }
    case CoherenceEvent::Kind::kPoolRestart: {
      // The data plane is host memory (ground truth): after the wipe, a
      // refault serves the freshest bytes even though the timing model
      // charged a storage trip. Lost writes are accounted in metrics, not
      // materialized as stale data, so "home" holds the latest version.
      // ev.node is the restarting shard: only its page slice was wiped, only
      // its lease epoch advances, and only its journaled pages become
      // obligations — a recovery of shard A can never discharge (or create)
      // shard B's obligations.
      const int shard = ev.node;
      for (ddc::PageId p = 0; p < pages_.size(); ++p) {
        if (ms_->ShardOf(p) == shard) pages_[p].home_v = pages_[p].master;
      }
      if (shard >= 0 &&
          static_cast<size_t>(shard) < pool_epoch_model_.size()) {
        pool_epoch_model_[static_cast<size_t>(shard)] = ev.epoch;
      }
      if (pending_recover_.size() < journaled_.size()) {
        pending_recover_.resize(journaled_.size(), 0);
      }
      for (ddc::PageId p = 0; p < journaled_.size(); ++p) {
        if (journaled_[p] && ms_->ShardOf(p) == shard &&
            !pending_recover_[p]) {
          pending_recover_[p] = 1;
          ++pending_recover_count_;
        }
      }
      ++steps_;
      return;
    }
    case CoherenceEvent::Kind::kPoolRecover: {
      if (ev.page < pending_recover_.size() && pending_recover_[ev.page]) {
        pending_recover_[ev.page] = 0;
        --pending_recover_count_;
      } else {
        Fail(ev,
             "recovery re-materialized a page with no acknowledged journal "
             "record");
      }
      ++steps_;
      return;
    }
    case CoherenceEvent::Kind::kJournalCommit: {
      if (ev.page >= journaled_.size()) journaled_.resize(ev.page + 1, 0);
      journaled_[ev.page] = 1;
      ++steps_;
      return;
    }
    case CoherenceEvent::Kind::kJournalTruncate: {
      if (ev.page < journaled_.size()) journaled_[ev.page] = 0;
      ++steps_;
      return;
    }
    case CoherenceEvent::Kind::kTxnRead:
    case CoherenceEvent::Kind::kTxnWrite:
    case CoherenceEvent::Kind::kTxnCommit:
    case CoherenceEvent::Kind::kTxnAbort:
    case CoherenceEvent::Kind::kTxnUndo:
      return;  // handled by StepTxnEvent before the switch
    case CoherenceEvent::Kind::kPushdownAdmit: {
      // Invariant 6c: ev.page is the idempotency token, ev.write says the
      // pool chose to execute this delivery.
      const uint64_t token = ev.page;
      if (token >= token_executed_.size()) token_executed_.resize(token + 1, 0);
      if (ev.write) {
        if (token_executed_[token]) {
          std::ostringstream os;
          os << "exactly-once violated: token " << token
             << " executed twice (duplicate delivery re-applied)";
          Fail(ev, os.str());
        }
        token_executed_[token] = 1;
      } else if (!token_executed_[token]) {
        std::ostringstream os;
        os << "exactly-once violated: dedup absorbed the first delivery of "
              "token "
           << token;
        Fail(ev, os.str());
      }
      ++steps_;
      return;
    }
  }
  CheckAgainstImpl(ev, ev.page);
  CheckSwmr(ev, ev.page);
  ++steps_;
}

uint64_t ModelChecker::Finish() {
  if (attached_) {
    if (pending_recover_count_ > 0) {
      std::ostringstream os;
      os << pending_recover_count_
         << " acknowledged write(s) never re-materialized after the last "
            "pool recovery";
      Fail(CoherenceEvent{CoherenceEvent::Kind::kPoolRestart, 0, false, mode_,
                          0},
           os.str());
      pending_recover_.assign(pending_recover_.size(), 0);
      pending_recover_count_ = 0;
    }
    if (!pending_undo_.empty()) {
      std::ostringstream os;
      os << pending_undo_.size()
         << " aborted provisional write(s) never rolled back";
      Fail(CoherenceEvent{CoherenceEvent::Kind::kTxnAbort, 0, false, mode_, 0},
           os.str());
      pending_undo_.clear();
    }
    if (session_active_ || ms_->pushdown_active()) {
      Fail(CoherenceEvent{CoherenceEvent::Kind::kSessionEnd, 0, false, mode_,
                          0},
           "pushdown session still active at Finish()");
    }
    for (ddc::PageId p = 0; p < ms_->tracked_pages(); ++p) {
      if (ms_->temp_perm(p) != Perm::kNone) {
        std::ostringstream os;
        os << "undrained temporary mapping on page " << p;
        Fail(CoherenceEvent{CoherenceEvent::Kind::kSessionEnd, p, false,
                            mode_, 0},
             os.str());
      }
    }
    if (ms_->coherence_observer() == this) {
      ms_->set_coherence_observer(nullptr);
    }
    attached_ = false;
  }
  return violations_.size();
}

}  // namespace teleport::tp
