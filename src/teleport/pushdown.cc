#include "teleport/pushdown.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.h"
#include "common/rle.h"

namespace teleport::tp {

std::string_view SyncStrategyToString(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kOnDemand:
      return "OnDemand";
    case SyncStrategy::kEager:
      return "Eager";
    case SyncStrategy::kEagerRange:
      return "EagerRange";
  }
  return "Unknown";
}

void PushdownBreakdown::Add(const PushdownBreakdown& o) {
  pre_sync_ns += o.pre_sync_ns;
  request_transfer_ns += o.request_transfer_ns;
  queue_wait_ns += o.queue_wait_ns;
  context_setup_ns += o.context_setup_ns;
  function_exec_ns += o.function_exec_ns;
  online_sync_ns += o.online_sync_ns;
  response_transfer_ns += o.response_transfer_ns;
  post_sync_ns += o.post_sync_ns;
}

std::string PushdownBreakdown::ToString() const {
  std::ostringstream os;
  os << "pre_sync=" << ToMillis(pre_sync_ns)
     << "ms request=" << ToMillis(request_transfer_ns)
     << "ms queue=" << ToMillis(queue_wait_ns)
     << "ms setup=" << ToMillis(context_setup_ns)
     << "ms exec=" << ToMillis(function_exec_ns)
     << "ms online_sync=" << ToMillis(online_sync_ns)
     << "ms response=" << ToMillis(response_transfer_ns)
     << "ms post_sync=" << ToMillis(post_sync_ns) << "ms";
  return os.str();
}

PushdownRuntime::PushdownRuntime(ddc::MemorySystem* ms, int num_instances)
    : ms_(ms) {
  TELEPORT_CHECK(num_instances >= 1);
  TELEPORT_CHECK(ms_->config().platform == ddc::Platform::kBaseDdc)
      << "TELEPORT runs on disaggregated platforms only";
  instance_free_.assign(static_cast<size_t>(num_instances), 0);
}

Status PushdownRuntime::CheckHeartbeat(ddc::ExecutionContext& ctx) {
  const auto& params = ms_->params();
  if (panicked_ || !ms_->fabric().ReachableAt(ctx.now())) {
    // The real system triggers a kernel panic: main memory is lost (§3.2).
    panicked_ = true;
    ctx.AdvanceTime(params.net_latency_ns * 2);
    return Status::Unavailable("memory pool unreachable (heartbeat lost)");
  }
  const Nanos done = ms_->fabric().RoundTripFromCompute(
      ctx.now(), 64, 64, params.fault_handler_ns);
  ctx.clock().AdvanceTo(done);
  ctx.metrics().net_messages += 2;
  ctx.metrics().net_bytes += 128;
  return Status::OK();
}

Status PushdownRuntime::Pushdown(ddc::ExecutionContext& caller, PushdownFn fn,
                                 void* arg, const PushdownFlags& flags) {
  TELEPORT_CHECK(caller.pool() == ddc::Pool::kCompute)
      << "pushdown must be called from the compute pool";
  const auto& params = ms_->params();
  PushdownBreakdown bd;

  if (panicked_ || !ms_->fabric().ReachableAt(caller.now())) {
    panicked_ = true;
    caller.AdvanceTime(params.net_latency_ns * 2);
    return Status::Unavailable("memory pool unreachable (heartbeat lost)");
  }

  const Nanos t0 = caller.now();

  // (1) Pre-pushdown synchronization.
  uint64_t req_bytes = 128 + flags.arg_bytes;
  uint64_t eager_flushed = 0;
  uint64_t resident_count = 0;
  ddc::CoherenceMode session_mode = flags.coherence;
  switch (flags.sync) {
    case SyncStrategy::kOnDemand: {
      // Build and RLE-compress the resident page list (§4.1, §6).
      const std::vector<PageEntry> resident = ms_->ResidentPages();
      resident_count = resident.size();
      caller.AdvanceTime(static_cast<Nanos>(resident.size()) *
                         params.resident_scan_ns);
      const std::vector<PageRun> runs = RleEncode(resident);
      const uint64_t raw = RawSizeBytes(resident.size());
      const uint64_t rle = RleSizeBytes(runs);
      last_page_list_compression_ =
          rle == 0 ? 1.0 : static_cast<double>(raw) / static_cast<double>(rle);
      req_bytes += rle;
      break;
    }
    case SyncStrategy::kEager:
      eager_flushed = ms_->FlushAllCache(caller, /*drop=*/true);
      session_mode = ddc::CoherenceMode::kNone;  // everything already synced
      break;
    case SyncStrategy::kEagerRange:
      TELEPORT_CHECK(flags.sync_len > 0)
          << "kEagerRange requires sync_addr/sync_len";
      ms_->FlushRange(caller, flags.sync_addr, flags.sync_len, /*drop=*/true);
      session_mode = ddc::CoherenceMode::kNone;
      break;
  }
  bd.pre_sync_ns = caller.now() - t0;

  // (2) Request transfer over the fabric (single RDMA message, §6).
  const Nanos send_time = caller.now();
  const Nanos arrive = ms_->fabric().SendToMemory(send_time, req_bytes);
  caller.metrics().net_messages += 1;
  caller.metrics().net_bytes += req_bytes;
  bd.request_transfer_ns = arrive - send_time;

  // Queue for a free memory-pool instance (FIFO workqueue, §3.2).
  auto slot = std::min_element(instance_free_.begin(), instance_free_.end());
  const Nanos start = std::max(arrive, *slot);

  // Timeout / try_cancel (§3.2): cancellation succeeds only if the request
  // has not started executing when the cancel arrives.
  if (flags.timeout_ns > 0) {
    const Nanos cancel_sent = t0 + flags.timeout_ns;
    const Nanos cancel_arrives = cancel_sent + params.NetTransfer(64);
    if (start > cancel_arrives) {
      const Nanos done = ms_->fabric().RoundTripFromCompute(
          cancel_sent, 64, 64, params.fault_handler_ns);
      caller.clock().AdvanceTo(done);
      caller.metrics().net_messages += 2;
      caller.metrics().net_bytes += 128;
      ++cancelled_calls_;
      return Status::TimedOut("pushdown cancelled before execution");
    }
    // Already running (or about to): the memory pool declines to cancel and
    // the application waits for completion.
  }
  bd.queue_wait_ns = start - arrive;

  // (3) Temporary user context setup (vfork-like attach, Fig 8). The table
  // clone is lazy/COW; the real per-entry work is checking and invalidating
  // the PTEs named in the resident list (§7.5: setup time grows with the
  // compute cache size), so cost scales with resident pages. Eager modes
  // flushed the cache first and pay only the fixed attach cost.
  const uint64_t npte = ms_->BeginPushdownSession(session_mode);
  (void)npte;
  const Nanos setup_ns =
      params.context_fixed_ns +
      static_cast<Nanos>(resident_count) * params.pte_clone_ns;
  bd.context_setup_ns = setup_ns;

  // (4) Function execution in the memory pool.
  auto mem_ctx = ms_->CreateContext(ddc::Pool::kMemory);
  mem_ctx->clock().Reset(start + setup_ns);
  Status st = fn(*mem_ctx, arg);
  const Nanos fn_total = mem_ctx->now() - (start + setup_ns);
  bd.online_sync_ns = mem_ctx->coherence_ns();
  bd.function_exec_ns = fn_total - bd.online_sync_ns;
  if (fn_total > kill_timeout_ns_ && st.ok()) {
    st = Status::Fault(
        "pushed function exceeded the kill timeout; aborted to unblock the "
        "workqueue (§3.2)");
  }
  caller.metrics().Add(mem_ctx->metrics());
  caller.metrics().pushdown_calls += 1;
  ms_->EndPushdownSession();

  // (5) Response transfer; the instance is recycled.
  const Nanos resp_sent = mem_ctx->now() + params.context_fixed_ns / 4;
  *slot = resp_sent;
  const uint64_t resp_bytes = 128 + flags.result_bytes;
  const Nanos resp_arrive = ms_->fabric().SendToCompute(resp_sent, resp_bytes);
  caller.metrics().net_messages += 1;
  caller.metrics().net_bytes += resp_bytes;
  caller.clock().AdvanceTo(resp_arrive);
  // Includes the instance-recycle interval so the per-call breakdown sums
  // exactly to the caller's observed elapsed time.
  bd.response_transfer_ns = resp_arrive - mem_ctx->now();

  // (6) Post-pushdown synchronization.
  const Nanos post0 = caller.now();
  if (flags.sync == SyncStrategy::kEager) {
    ms_->BulkRefetch(caller, eager_flushed);
  }
  // On-demand: dirty bits merged locally in the pool; compute re-faults
  // lazily (no work here, §4.1).
  bd.post_sync_ns = caller.now() - post0;

  last_breakdown_ = bd;
  total_breakdown_.Add(bd);
  call_latency_.Add(bd.Total());
  online_sync_latency_.Add(bd.online_sync_ns);
  ++completed_calls_;
  return st;
}

Nanos InstancePoolMakespan(int n_requests, Nanos busy_ns, Nanos stall_ns,
                           int instances, int cores,
                           const sim::CostParams& params) {
  TELEPORT_CHECK(n_requests > 0 && instances > 0 && cores > 0);
  // Each request alternates `kSegments` busy/stall segment pairs; instances
  // compete for cores on busy segments (greedy earliest-core assignment,
  // FIFO request order). Oversubscription charges a context switch per
  // busy-segment dispatch.
  constexpr int kSegments = 10;
  const Nanos busy_seg = busy_ns / kSegments;
  const Nanos stall_seg = stall_ns / kSegments;
  const bool oversubscribed = instances > cores;

  std::vector<Nanos> core_free(static_cast<size_t>(cores), 0);
  std::vector<int> core_last(static_cast<size_t>(cores), -1);
  std::vector<Nanos> instance_time(static_cast<size_t>(instances), 0);
  Nanos makespan = 0;
  int next_request = 0;
  // Instances pull requests FIFO; process instance with the earliest clock.
  std::vector<int> remaining(static_cast<size_t>(instances), 0);
  while (true) {
    // Pick the instance that is free earliest.
    int inst = -1;
    for (int i = 0; i < instances; ++i) {
      if (remaining[i] == 0) {
        if (next_request < n_requests) {
          remaining[i] = kSegments;
          ++next_request;
        } else {
          continue;
        }
      }
      if (inst == -1 || instance_time[i] < instance_time[inst]) inst = i;
    }
    if (inst == -1) break;
    // Run one busy segment on the earliest-free core, then stall.
    auto core = std::min_element(core_free.begin(), core_free.end());
    const auto core_idx = static_cast<size_t>(core - core_free.begin());
    Nanos begin = std::max(instance_time[inst], *core);
    // A context switch is charged only when an oversubscribed core picks
    // up a different instance than it last ran.
    if (oversubscribed && core_last[core_idx] != inst) {
      begin += params.context_switch_ns;
    }
    core_last[core_idx] = inst;
    const Nanos busy_end = begin + busy_seg;
    *core = busy_end;
    instance_time[inst] = busy_end + stall_seg;
    if (instance_time[inst] > makespan) makespan = instance_time[inst];
    --remaining[inst];
  }
  return makespan;
}

}  // namespace teleport::tp
