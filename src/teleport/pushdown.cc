#include "teleport/pushdown.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/logging.h"
#include "common/rle.h"
#include "sim/tracer.h"

namespace teleport::tp {

std::string_view SyncStrategyToString(SyncStrategy s) {
  switch (s) {
    case SyncStrategy::kOnDemand:
      return "OnDemand";
    case SyncStrategy::kEager:
      return "Eager";
    case SyncStrategy::kEagerRange:
      return "EagerRange";
  }
  return "Unknown";
}

std::string_view FallbackPolicyToString(FallbackPolicy f) {
  switch (f) {
    case FallbackPolicy::kNone:
      return "None";
    case FallbackPolicy::kLocal:
      return "Local";
  }
  return "Unknown";
}

namespace {

/// Recovery-class faults the runtime can surface (§3.2 + PR6 crash
/// recovery). Every such Status comes from this one table so the codes and
/// messages cannot drift apart across the heartbeat / pushdown / fencing
/// paths.
enum class RecoveryFault {
  kUnreachable,    ///< heartbeat lost; the real system panics (§3.2)
  kFenced,         ///< admission epoch went stale and re-admission failed
  kUnrecoverable,  ///< a restart dropped writes the journal never covered
};

Status RecoveryStatus(RecoveryFault f) {
  switch (f) {
    case RecoveryFault::kUnreachable:
      return Status::Unavailable("memory pool unreachable (heartbeat lost)");
    case RecoveryFault::kFenced:
      return Status::Fenced(
          "pushdown admission epoch went stale across pool recoveries");
    case RecoveryFault::kUnrecoverable:
      return Status::Unavailable(
          "pool restart dropped writes the journal never covered "
          "(unacknowledged direct pool stores are unrecoverable)");
  }
  return Status::Internal("unknown recovery fault");
}

}  // namespace

void PushdownBreakdown::Add(const PushdownBreakdown& o) {
  pre_sync_ns += o.pre_sync_ns;
  request_transfer_ns += o.request_transfer_ns;
  queue_wait_ns += o.queue_wait_ns;
  context_setup_ns += o.context_setup_ns;
  function_exec_ns += o.function_exec_ns;
  online_sync_ns += o.online_sync_ns;
  response_transfer_ns += o.response_transfer_ns;
  post_sync_ns += o.post_sync_ns;
  retry_ns += o.retry_ns;
}

std::string PushdownBreakdown::ToString() const {
  std::ostringstream os;
  os << "pre_sync=" << ToMillis(pre_sync_ns)
     << "ms request=" << ToMillis(request_transfer_ns)
     << "ms queue=" << ToMillis(queue_wait_ns)
     << "ms setup=" << ToMillis(context_setup_ns)
     << "ms exec=" << ToMillis(function_exec_ns)
     << "ms online_sync=" << ToMillis(online_sync_ns)
     << "ms response=" << ToMillis(response_transfer_ns)
     << "ms post_sync=" << ToMillis(post_sync_ns)
     << "ms retry=" << ToMillis(retry_ns) << "ms";
  return os.str();
}

PushdownRuntime::PushdownRuntime(ddc::MemorySystem* ms, int num_instances)
    : ms_(ms) {
  TELEPORT_CHECK(num_instances >= 1);
  TELEPORT_CHECK(ms_->config().platform == ddc::Platform::kBaseDdc)
      << "TELEPORT runs on disaggregated platforms only";
  instance_free_.assign(
      static_cast<size_t>(ms_->memory_shards()),
      std::vector<Nanos>(static_cast<size_t>(num_instances), 0));
}

Status PushdownRuntime::CheckHeartbeat(ddc::ExecutionContext& ctx,
                                       int shard) {
  const auto& params = ms_->params();
  const net::Link link{static_cast<int>(ctx.node()), shard};
  ms_->ApplyPoolRestarts(ctx);
  if (panicked_ || ms_->fabric().HardDownAt(ctx.now(), shard)) {
    // The real system triggers a kernel panic: main memory is lost (§3.2).
    panicked_ = true;
    ctx.AdvanceTime(params.net_latency_ns * 2);
    return RecoveryStatus(RecoveryFault::kUnreachable);
  }
  if (ms_->fabric().fault_injector() == nullptr) {
    const Nanos probe_start = ctx.now();
    // Congestion-aware liveness deadline: queue residency on the probe's
    // own link at send time is excused — a saturated-but-healthy shard
    // answers slowly because the fabric is busy, not because the pool is
    // dead. Only delay beyond deadline + observable backlog panics (§3.2).
    // (The deadline used to be implicit-infinite here and a fixed constant
    // in the design notes; a fixed constant fences saturated shards.)
    const Nanos allowed = params.heartbeat_deadline_ns +
                          ms_->fabric().QueueBacklogNs(link, probe_start);
    const Nanos done = ms_->fabric().RoundTripFromCompute(
        link, probe_start, 64, 64, params.fault_handler_ns,
        net::MessageKind::kHeartbeat, net::MessageKind::kHeartbeat);
    ctx.clock().AdvanceTo(done);
    ms_->fabric().DrainQueueStats(ctx.metrics());
    ctx.metrics().net_messages += 2;
    ctx.metrics().net_bytes += 128;
    if (done - probe_start > allowed) {
      panicked_ = true;
      return RecoveryStatus(RecoveryFault::kUnreachable);
    }
    return Status::OK();
  }
  // Resilient probe: dropped heartbeats are retried with backoff, and a
  // transient outage (link flap / restartable memory node) is waited out
  // instead of latched as a panic. Only a pool that will never answer again
  // is §3.2's lost-main-memory case.
  Nanos t = ctx.now();
  RetryStats stats;
  bool ok = false;
  Nanos probe_rtt = 0;
  Nanos probe_allowed = 0;
  for (int round = 0; round < 16 && !ok; ++round) {
    const RetryOutcome out = RetryRoundTripFromCompute(
        ms_->fabric(), retry_, retry_rng_, t, 64, 64, params.fault_handler_ns,
        net::MessageKind::kHeartbeat, net::MessageKind::kHeartbeat, &stats,
        link);
    if (out.ok) {
      // On success gave_up_at is the winning attempt's send time, so the
      // deadline judges one probe's round trip — retransmission backoff and
      // outage waits never count against it. Queue backlog at that instant
      // is excused (congestion is not death; see the no-injector path).
      probe_rtt = out.done - out.gave_up_at;
      probe_allowed = params.heartbeat_deadline_ns +
                      ms_->fabric().QueueBacklogNs(link, out.gave_up_at);
      t = out.done;
      ok = true;
      break;
    }
    t = out.gave_up_at;
    const Nanos heal = ms_->fabric().NextReachableAt(t, shard);
    if (heal == net::Fabric::kNeverHeals) break;
    if (heal > t) t = heal;
  }
  retry_events_ += stats.retries;
  ctx.metrics().retries += stats.retries;
  ctx.metrics().fault_events += stats.retries;
  ctx.clock().AdvanceTo(t);
  ms_->fabric().DrainQueueStats(ctx.metrics());
  if (!ok || probe_rtt > probe_allowed) {
    panicked_ = true;
    return RecoveryStatus(RecoveryFault::kUnreachable);
  }
  ctx.metrics().net_messages += 2;
  ctx.metrics().net_bytes += 128;
  ms_->ApplyPoolRestarts(ctx);
  return Status::OK();
}

Status PushdownRuntime::Pushdown(ddc::ExecutionContext& caller, PushdownFn fn,
                                 void* arg, const PushdownFlags& flags) {
  TELEPORT_CHECK(caller.pool() == ddc::Pool::kCompute)
      << "pushdown must be called from the compute pool";
  const auto& params = ms_->params();
  const int home = flags.home_shard;
  TELEPORT_CHECK(home >= 0 && home < ms_->memory_shards())
      << "home shard " << home << " outside the rack's "
      << ms_->memory_shards() << " shards";
  const net::Link link{static_cast<int>(caller.node()), home};
  PushdownBreakdown bd;

  // Materialize any memory-node crash-restart that completed before this
  // call. Journal-off (the seed's lossy mode) the restarted pool simply
  // lost its unflushed writes (§3.2); journal-on recovery replays every
  // acknowledged write, so anything still lost was never acknowledged —
  // surfaced as an unrecoverable fault instead of silence.
  const uint64_t lost_now = ms_->ApplyPoolRestarts(caller);
  if (lost_now > 0 && ms_->journal_enabled()) {
    return RecoveryStatus(RecoveryFault::kUnrecoverable);
  }

  if (panicked_ || ms_->fabric().HardDownAt(caller.now(), home)) {
    panicked_ = true;
    caller.AdvanceTime(params.net_latency_ns * 2);
    return RecoveryStatus(RecoveryFault::kUnreachable);
  }

  const Nanos t0 = caller.now();
  // Lease + idempotency identity of this call (PR6, sharded in PR7): the
  // call snapshots every shard's admission epoch — its touches may fault
  // pages of any shard — and each shard fences independently: a recovery of
  // shard k invalidates only admit_epochs[k]. The token lets the home
  // shard's controller deduplicate redelivered copies.
  std::vector<uint64_t> admit_epochs(
      static_cast<size_t>(ms_->memory_shards()));
  for (int k = 0; k < ms_->memory_shards(); ++k) {
    admit_epochs[static_cast<size_t>(k)] = ms_->pool_epoch(k);
  }
  const uint64_t token = ++next_token_;

  // (1) Pre-pushdown synchronization.
  uint64_t req_bytes = 128 + flags.arg_bytes;
  uint64_t eager_flushed = 0;
  uint64_t resident_count = 0;
  ddc::CoherenceMode session_mode = flags.coherence;
  switch (flags.sync) {
    case SyncStrategy::kOnDemand: {
      // Build and RLE-compress the resident page list (§4.1, §6).
      const std::vector<PageEntry> resident = ms_->ResidentPages();
      resident_count = resident.size();
      caller.AdvanceTime(static_cast<Nanos>(resident.size()) *
                         params.resident_scan_ns);
      const std::vector<PageRun> runs = RleEncode(resident);
      const uint64_t raw = RawSizeBytes(resident.size());
      const uint64_t rle = RleSizeBytes(runs);
      last_page_list_compression_ =
          rle == 0 ? 1.0 : static_cast<double>(raw) / static_cast<double>(rle);
      req_bytes += rle;
      break;
    }
    case SyncStrategy::kEager:
      eager_flushed = ms_->FlushAllCache(caller, /*drop=*/true);
      session_mode = ddc::CoherenceMode::kNone;  // everything already synced
      break;
    case SyncStrategy::kEagerRange:
      TELEPORT_CHECK(flags.sync_len > 0)
          << "kEagerRange requires sync_addr/sync_len";
      ms_->FlushRange(caller, flags.sync_addr, flags.sync_len, /*drop=*/true);
      session_mode = ddc::CoherenceMode::kNone;
      break;
  }
  bd.pre_sync_ns = caller.now() - t0;

  // (2) Request transfer over the fabric (single RDMA message, §6). Under a
  // fault injector the send is fault-visible: a dropped request costs one
  // RTO plus backoff before the retransmit (§3.2).
  const Nanos send_time = caller.now();
  if (sim::Tracer* tracer = ms_->tracer()) {
    tracer->Instant("pushdown", "Dispatch", send_time, sim::kTrackCompute);
  }
  Nanos arrive = 0;
  Nanos request_retry_wait = 0;
  int req_copies = 1;  ///< delivered request copies presenting the token
  if (ms_->fabric().fault_injector() == nullptr) {
    arrive = ms_->fabric().SendToMemory(link, send_time, req_bytes,
                                        net::MessageKind::kPushdownRequest);
  } else {
    Nanos t = send_time;
    bool delivered = false;
    for (int a = 0; a < std::max(1, retry_.max_attempts); ++a) {
      const net::SendOutcome out = ms_->fabric().TrySendToMemory(
          link, t, req_bytes, net::MessageKind::kPushdownRequest);
      if (out.delivered) {
        arrive = out.deliver_at;
        req_copies = out.copies;
        delivered = true;
        break;
      }
      Nanos wait = retry_.rto_ns + retry_.BackoffFor(a, retry_rng_);
      t += wait;
      const Nanos heal = ms_->fabric().NextReachableAt(t, home);
      if (heal > t) {
        wait += heal - t;
        t = heal;
      }
      request_retry_wait += wait;
      ++retry_events_;
      ++caller.metrics().retries;
      ++caller.metrics().fault_events;
      if (sim::Tracer* tracer = ms_->tracer()) {
        tracer->Instant("pushdown", "RetryRequest", t, sim::kTrackCompute);
      }
    }
    if (!delivered) {
      bd.retry_ns += request_retry_wait;
      if (flags.fallback == FallbackPolicy::kLocal &&
          ms_->fabric().NextReachableAt(t, home) != net::Fabric::kNeverHeals) {
        // Restartable pool but the retry budget is spent: §3.2 escape
        // hatch — run the function locally instead of failing the call.
        caller.clock().AdvanceTo(t);
        return RunLocalFallback(caller, fn, arg, bd, t0,
                                /*cancel_sent=*/false, link, flags.kernel);
      }
      // No fallback requested: hand the request to the reliable transport,
      // which retransmits below the RPC layer and cannot lose it.
      arrive = ms_->fabric().SendToMemory(
          link, t, req_bytes, net::MessageKind::kPushdownRequest);
      request_retry_wait = 0;  // already folded into bd.retry_ns
    }
  }
  caller.metrics().net_messages += 1;
  caller.metrics().net_bytes += req_bytes;
  bd.retry_ns += request_retry_wait;
  bd.request_transfer_ns = arrive - send_time - bd.retry_ns;

  // Queue for a free memory-pool instance of the HOME shard (FIFO
  // workqueue, §3.2; per-shard in PR7 — each shard owns its pool cores).
  // A small probe the SmartNIC backend offloads executes NIC-side instead:
  // it never waits for (or occupies) a host instance, which is what shifts
  // the small-message latency knee under load.
  const bool nic_side = ms_->fabric().SmartNicOffloaded(
      net::MessageKind::kPushdownRequest, req_bytes);
  std::vector<Nanos>& shard_slots = instance_free_[static_cast<size_t>(home)];
  auto slot = std::min_element(shard_slots.begin(), shard_slots.end());
  Nanos start = nic_side ? arrive : std::max(arrive, *slot);

  // Lease fencing (PR6, per-shard in PR7): if a crash-restart window of any
  // shard completed while the request was in flight or queued, that shard
  // runs under a newer epoch and deterministically rejects the stale-epoch
  // request; the caller re-admits under the fresh epochs and resends. Only
  // the restarted shard's lease goes stale — shard A's recovery never
  // fences a call whose epochs for A were already current. The rejection
  // itself rides the home link (one reply + one resend per round, exactly
  // the 1x1 message sequence). Journal-off keeps the seed's lossy behavior:
  // restarts materialize lazily at the next quiescent point, with no
  // fencing.
  Nanos fence_ns = 0;
  if (ms_->journal_enabled()) {
    const auto any_stale = [&]() {
      for (int k = 0; k < ms_->memory_shards(); ++k) {
        if (ms_->pool_epoch(k) != admit_epochs[static_cast<size_t>(k)]) {
          return true;
        }
      }
      return false;
    };
    for (int admit = 0; admit < 4; ++admit) {
      const ddc::MemorySystem::RestartOutcome ro =
          ms_->ApplyPoolRestartsAt(caller, start);
      start += ro.recovery_ns;
      fence_ns += ro.recovery_ns;
      if (!any_stale()) break;
      if (ms_->protocol_mutation() == ddc::ProtocolMutation::kSkipFencing) {
        break;  // planted bug: the pool executes the stale-epoch request
      }
      // kFenced rejection: a small reply back to the caller, then a fresh
      // request under the new epochs. All of it is recovery time.
      ++fenced_rpcs_;
      ++caller.metrics().fenced_rpcs;
      if (sim::Tracer* tracer = ms_->tracer()) {
        tracer->Instant("pushdown", "Fenced", start, sim::kTrackMemoryPool,
                        "\"epoch\":" + std::to_string(ms_->pool_epoch(home)));
      }
      const Nanos rej_arrive = ms_->fabric().SendToCompute(
          link, start, 64, net::MessageKind::kPushdownResponse);
      const Nanos rearrive = ms_->fabric().SendToMemory(
          link, rej_arrive, req_bytes, net::MessageKind::kPushdownRequest);
      caller.metrics().net_messages += 2;
      caller.metrics().net_bytes += 64 + req_bytes;
      for (int k = 0; k < ms_->memory_shards(); ++k) {
        admit_epochs[static_cast<size_t>(k)] = ms_->pool_epoch(k);
      }
      const Nanos prev_start = start;
      start = nic_side ? rearrive : std::max(rearrive, *slot);
      fence_ns += start - prev_start;
    }
    if (any_stale() &&
        ms_->protocol_mutation() != ddc::ProtocolMutation::kSkipFencing) {
      // Re-admission budget exhausted (restarts kept completing under us).
      bd.retry_ns += fence_ns;
      caller.clock().AdvanceTo(start);
      if (flags.fallback == FallbackPolicy::kLocal &&
          ms_->fabric().NextReachableAt(start, home) !=
              net::Fabric::kNeverHeals) {
        return RunLocalFallback(caller, fn, arg, bd, t0,
                                /*cancel_sent=*/false, link, flags.kernel);
      }
      return RecoveryStatus(RecoveryFault::kFenced);
    }
  }
  bd.retry_ns += fence_ns;

  // Timeout / try_cancel (§3.2): cancellation succeeds only if the request
  // has not started executing when the cancel arrives.
  if (flags.timeout_ns > 0) {
    const Nanos cancel_sent = t0 + flags.timeout_ns;
    const Nanos cancel_arrives = cancel_sent + params.NetTransfer(64);
    if (start > cancel_arrives) {
      const Nanos done = ms_->fabric().RoundTripFromCompute(
          link, cancel_sent, 64, 64, params.fault_handler_ns,
          net::MessageKind::kTryCancel, net::MessageKind::kTryCancel);
      caller.clock().AdvanceTo(done);
      caller.metrics().net_messages += 2;
      caller.metrics().net_bytes += 128;
      ++cancelled_calls_;
      if (sim::Tracer* tracer = ms_->tracer()) {
        tracer->Instant("pushdown", "TryCancel", cancel_sent,
                        sim::kTrackCompute);
      }
      // The caller abandoned the request mid-flight: it never waited for
      // the (possibly fault-delayed) delivery, so the transfer time is not
      // part of its timeline. Leaving it in the breakdown would misattribute
      // the cancel wait and drive retry_ns negative under the conservation
      // rebalance in RunLocalFallback.
      bd.request_transfer_ns = 0;
      if (flags.fallback == FallbackPolicy::kLocal) {
        // §3.2: "the application is then free to execute the function
        // locally" — do so transparently instead of surfacing TimedOut.
        return RunLocalFallback(caller, fn, arg, bd, t0,
                                /*cancel_sent=*/true, link, flags.kernel);
      }
      return Status::TimedOut("pushdown cancelled before execution");
    }
    // Already running (or about to): the memory pool declines to cancel and
    // the application waits for completion.
  }
  bd.queue_wait_ns = start - arrive - fence_ns;

  // (3) Temporary user context setup (vfork-like attach, Fig 8). The table
  // clone is lazy/COW; the real per-entry work is checking and invalidating
  // the PTEs named in the resident list (§7.5: setup time grows with the
  // compute cache size), so cost scales with resident pages. Eager modes
  // flushed the cache first and pay only the fixed attach cost.
  // Exactly-once admission: every delivered copy of the request presents
  // the call's idempotency token; the pool's dedup table admits the first
  // and absorbs the rest (injected duplicates, capped retries).
  bool execute = false;
  for (int c = 0; c < req_copies; ++c) {
    const bool admitted = ms_->AdmitPushdown(caller, token, start, home);
    execute = execute || admitted;
  }
  TELEPORT_CHECK(execute)
      << "first delivery of pushdown token " << token << " must execute";

  const uint64_t npte = ms_->BeginPushdownSession(
      session_mode, admit_epochs[static_cast<size_t>(home)], home);
  (void)npte;
  const Nanos setup_ns =
      params.context_fixed_ns +
      static_cast<Nanos>(resident_count) * params.pte_clone_ns;
  bd.context_setup_ns = setup_ns;

  // (4) Function execution in the home shard's user context, on behalf of
  // the caller's tenant.
  auto mem_ctx =
      ms_->CreateContext(ddc::Pool::kMemory, home, caller.tenant());
  mem_ctx->clock().Reset(start + setup_ns);
  // The caller's task is blocked on this call: hand its cooperative yield
  // hook to the kernel so memory-side retry loops (seqlock probes racing a
  // structural writer) preempt like the caller would, instead of spinning
  // the schedule into a livelock against a suspended writer.
  mem_ctx->set_yield_hook(caller.yield_fn(), caller.yield_arg());
  Status st = fn(*mem_ctx, arg);
  const Nanos fn_total = mem_ctx->now() - (start + setup_ns);
  bd.online_sync_ns = mem_ctx->coherence_ns();
  bd.function_exec_ns = fn_total - bd.online_sync_ns;
  if (fn_total > kill_timeout_ns_ && st.ok()) {
    st = Status::Fault(
        "pushed function exceeded the kill timeout; aborted to unblock the "
        "workqueue (§3.2)");
  }
  // Session teardown before the metrics roll-up: the final dirty-bit merge
  // is where journal acknowledgement happens, and its appends are charged
  // to mem_ctx. The merge is post-pushdown synchronization, accounted below
  // so the breakdown still sums to the caller's elapsed time.
  const Nanos merge0 = mem_ctx->now();
  ms_->EndPushdownSession(mem_ctx.get());
  const Nanos merge_ns = mem_ctx->now() - merge0;
  caller.metrics().Add(mem_ctx->metrics());
  caller.metrics().pushdown_calls += 1;

  // (5) Response transfer; the instance is recycled. A dropped response is
  // retransmitted by the memory side (the function already executed — it is
  // never re-run); after the retry budget the reliable transport carries it.
  const Nanos resp_sent = mem_ctx->now() + params.context_fixed_ns / 4;
  if (!nic_side) *slot = resp_sent;  // NIC-side probes held no host instance
  const uint64_t resp_bytes = 128 + flags.result_bytes;
  Nanos resp_arrive = 0;
  Nanos resp_retry_wait = 0;
  if (ms_->fabric().fault_injector() == nullptr) {
    resp_arrive = ms_->fabric().SendToCompute(
        link, resp_sent, resp_bytes, net::MessageKind::kPushdownResponse);
  } else {
    Nanos t = resp_sent;
    bool delivered = false;
    for (int a = 0; a < std::max(1, retry_.max_attempts); ++a) {
      const net::SendOutcome out = ms_->fabric().TrySendToCompute(
          link, t, resp_bytes, net::MessageKind::kPushdownResponse);
      if (out.delivered) {
        resp_arrive = out.deliver_at;
        delivered = true;
        break;
      }
      Nanos wait = retry_.rto_ns + retry_.BackoffFor(a, retry_rng_);
      t += wait;
      const Nanos heal = ms_->fabric().NextReachableAt(t, home);
      if (heal > t) {
        wait += heal - t;
        t = heal;
      }
      resp_retry_wait += wait;
      ++retry_events_;
      ++caller.metrics().retries;
      ++caller.metrics().fault_events;
      if (sim::Tracer* tracer = ms_->tracer()) {
        tracer->Instant("pushdown", "RetryResponse", t, sim::kTrackMemoryPool);
      }
    }
    if (!delivered) {
      resp_arrive = ms_->fabric().SendToCompute(
          link, t, resp_bytes, net::MessageKind::kPushdownResponse);
    }
  }
  caller.metrics().net_messages += 1;
  caller.metrics().net_bytes += resp_bytes;
  caller.clock().AdvanceTo(resp_arrive);
  ms_->fabric().DrainQueueStats(caller.metrics());
  // Includes the instance-recycle interval so the per-call breakdown sums
  // exactly to the caller's observed elapsed time.
  bd.retry_ns += resp_retry_wait;
  bd.response_transfer_ns = resp_arrive - mem_ctx->now() - resp_retry_wait;

  // (6) Post-pushdown synchronization.
  const Nanos post0 = caller.now();
  if (flags.sync == SyncStrategy::kEager) {
    ms_->BulkRefetch(caller, eager_flushed);
  }
  // On-demand: dirty bits merged locally in the pool; compute re-faults
  // lazily (§4.1). The merge's journal-append time (zero with the journal
  // off) counts as post-pushdown synchronization.
  bd.post_sync_ns = (caller.now() - post0) + merge_ns;

  TraceCall(bd, t0, /*fallback=*/false, flags.kernel);
  last_breakdown_ = bd;
  total_breakdown_.Add(bd);
  call_latency_.Add(bd.Total());
  online_sync_latency_.Add(bd.online_sync_ns);
  ++completed_calls_;
  if (flags.kernel >= 0 &&
      static_cast<size_t>(flags.kernel) < kernel_calls_.size()) {
    ++kernel_calls_[static_cast<size_t>(flags.kernel)];
  }
  return st;
}

Status PushdownRuntime::RunLocalFallback(ddc::ExecutionContext& caller,
                                         PushdownFn fn, void* arg,
                                         PushdownBreakdown& bd, Nanos t0,
                                         bool cancel_sent, net::Link link,
                                         int kernel) {
  if (!cancel_sent) {
    // Best-effort try_cancel so a late-delivered request is not executed by
    // the pool as well; a drop is acceptable — the pool discards requests
    // whose caller already gave up on them.
    const net::SendOutcome probe = ms_->fabric().TrySendToMemory(
        link, caller.now(), 64, net::MessageKind::kTryCancel);
    if (probe.delivered) {
      caller.metrics().net_messages += 1;
      caller.metrics().net_bytes += 64;
    }
  }
  // Local execution in the caller's own context: pages the function needs
  // come in through ordinary demand paging (which itself rides the retry
  // layer while the pool recovers).
  const Nanos exec0 = caller.now();
  if (sim::Tracer* tracer = ms_->tracer()) {
    tracer->Instant("pushdown", "LocalFallback", exec0, sim::kTrackCompute);
  }
  Status st = fn(caller, arg);
  bd.function_exec_ns = caller.now() - exec0;
  // Everything else the caller waited on — exhausted attempts, backoff,
  // outage waits, the cancel round trip — is recovery time, so the
  // breakdown still sums exactly to the caller's elapsed time.
  const Nanos other = bd.Total() - bd.retry_ns;
  bd.retry_ns = (caller.now() - t0) - other;
  ++fallback_calls_;
  caller.metrics().fallbacks += 1;
  caller.metrics().pushdown_calls += 1;
  TraceCall(bd, t0, /*fallback=*/true, kernel);
  last_breakdown_ = bd;
  total_breakdown_.Add(bd);
  call_latency_.Add(bd.Total());
  online_sync_latency_.Add(bd.online_sync_ns);
  ++completed_calls_;
  if (kernel >= 0 && static_cast<size_t>(kernel) < kernel_calls_.size()) {
    ++kernel_calls_[static_cast<size_t>(kernel)];
  }
  return st;
}

int PushdownRuntime::RegisterKernel(const std::string& name) {
  for (size_t i = 0; i < kernel_names_.size(); ++i) {
    if (kernel_names_[i] == name) return static_cast<int>(i);
  }
  kernel_names_.push_back(name);
  kernel_calls_.push_back(0);
  return static_cast<int>(kernel_names_.size()) - 1;
}

void PushdownRuntime::TraceCall(const PushdownBreakdown& bd, Nanos t0,
                                bool fallback, int kernel) {
  sim::Tracer* tracer = ms_->tracer();
  if (tracer == nullptr) return;
  // completed_calls_ has not been bumped yet, so it is this call's 0-based
  // id; the same tag on every child span lets tests and trace queries
  // reassemble one request's components.
  std::string id = "\"call\":" + std::to_string(completed_calls_);
  if (kernel >= 0 && static_cast<size_t>(kernel) < kernel_names_.size()) {
    id += ",\"kernel\":\"" + kernel_names_[static_cast<size_t>(kernel)] + "\"";
  }
  tracer->Span("pushdown", "call", t0, bd.Total(), sim::kTrackCompute,
               fallback ? id + ",\"fallback\":true" : id);
  // Components are laid out consecutively from t0 in breakdown order. The
  // layout is an attribution view, not a strict interleaving (online_sync
  // really overlaps function_exec), but it tiles the enclosing span
  // exactly: child durations sum to bd.Total() by construction.
  const struct {
    std::string_view name;
    Nanos dur;
  } parts[] = {
      {"pre_sync", bd.pre_sync_ns},
      {"request_transfer", bd.request_transfer_ns},
      {"queue_wait", bd.queue_wait_ns},
      {"context_setup", bd.context_setup_ns},
      {"function_exec", bd.function_exec_ns},
      {"online_sync", bd.online_sync_ns},
      {"response_transfer", bd.response_transfer_ns},
      {"post_sync", bd.post_sync_ns},
      {"retry", bd.retry_ns},
  };
  Nanos at = t0;
  for (const auto& part : parts) {
    if (part.dur == 0) continue;
    tracer->Span("pushdown", part.name, at, part.dur, sim::kTrackCompute,
                 std::string(id));
    at += part.dur;
  }
}

Nanos InstancePoolMakespan(int n_requests, Nanos busy_ns, Nanos stall_ns,
                           int instances, int cores,
                           const sim::CostParams& params) {
  TELEPORT_CHECK(n_requests > 0 && instances > 0 && cores > 0);
  // Each request alternates `kSegments` busy/stall segment pairs; instances
  // compete for cores on busy segments (greedy earliest-core assignment,
  // FIFO request order). Oversubscription charges a context switch per
  // busy-segment dispatch.
  constexpr int kSegments = 10;
  const Nanos busy_seg = busy_ns / kSegments;
  const Nanos stall_seg = stall_ns / kSegments;
  const bool oversubscribed = instances > cores;

  std::vector<Nanos> core_free(static_cast<size_t>(cores), 0);
  std::vector<int> core_last(static_cast<size_t>(cores), -1);
  std::vector<Nanos> instance_time(static_cast<size_t>(instances), 0);
  Nanos makespan = 0;
  int next_request = 0;
  // Instances pull requests FIFO; process instance with the earliest clock.
  std::vector<int> remaining(static_cast<size_t>(instances), 0);
  while (true) {
    // Pick the instance that is free earliest.
    int inst = -1;
    for (int i = 0; i < instances; ++i) {
      if (remaining[i] == 0) {
        if (next_request < n_requests) {
          remaining[i] = kSegments;
          ++next_request;
        } else {
          continue;
        }
      }
      if (inst == -1 || instance_time[i] < instance_time[inst]) inst = i;
    }
    if (inst == -1) break;
    // Run one busy segment on the earliest-free core, then stall.
    auto core = std::min_element(core_free.begin(), core_free.end());
    const auto core_idx = static_cast<size_t>(core - core_free.begin());
    Nanos begin = std::max(instance_time[inst], *core);
    // A context switch is charged only when an oversubscribed core picks
    // up a different instance than it last ran.
    if (oversubscribed && core_last[core_idx] != inst) {
      begin += params.context_switch_ns;
    }
    core_last[core_idx] = inst;
    const Nanos busy_end = begin + busy_seg;
    *core = busy_end;
    instance_time[inst] = busy_end + stall_seg;
    if (instance_time[inst] > makespan) makespan = instance_time[inst];
    --remaining[inst];
  }
  return makespan;
}

}  // namespace teleport::tp
