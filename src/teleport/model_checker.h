#ifndef TELEPORT_TELEPORT_MODEL_CHECKER_H_
#define TELEPORT_TELEPORT_MODEL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ddc/memory_system.h"

namespace teleport::tp {

/// Executable specification of the §4.1 page-coherence protocol, run in
/// lock-step with the real ddc::MemorySystem. On every CoherenceEvent the
/// checker steps its own model of the protocol state machine and asserts:
///
///  1. *Spec/impl agreement* — the model's predicted per-page state
///     (compute perm, temporary-context perm, compute dirty bit) equals the
///     implementation's page table after the transition.
///  2. *SWMR* — under kMesi a writable mapping on one side excludes any
///     mapping on the other; under kPso a writer may coexist only with a
///     reader; kWeakOrdering/kNone deliberately relax this.
///  3. *Freshness* — under kMesi every read observes the latest write:
///     the model tracks an abstract version counter per page (bumped on
///     each write, propagated by fills, page-returns, writebacks and
///     syncmem) and requires the reading side's version to equal the
///     globally newest one. This is the "data value matches last write"
///     invariant without hashing page payloads.
///  4. *Drain* — when a session ends (and at Finish()) no temporary-context
///     permissions or in-flight upgrade windows survive.
///  5. *TLB shootdown* — every event that reflects a protocol transition
///     (coherence fault, eviction, writeback, flush, refetch, restart,
///     session boundary) must observe a translation-epoch value different
///     from the previous event's: the extent fast path caches page
///     translations (ddc::PagePin) and a transition that forgets the
///     shootdown would let a pin serve accesses against stale state.
///     Access events that the spec resolves as plain hits carry no such
///     obligation.
///  6. *Recovery* (PR6, journal-on runs) — three sub-clauses. (a) Every
///     acknowledged write is readable after recovery: a kJournalCommit marks
///     its page acknowledged; a kPoolRestart turns every acknowledged page
///     into a re-materialization obligation that only a kPoolRecover for
///     that page discharges — any other event (or Finish) with obligations
///     outstanding is a violation (catches kSkipJournalReplay). (b) No
///     fenced session's effects become visible: every kSessionBegin carries
///     its admission epoch, which must equal the pool epoch announced by
///     the latest kPoolRestart (catches kSkipFencing). (c) Exactly-once
///     pushdown: a kPushdownAdmit that executes an already-executed
///     idempotency token is a double-apply (catches kReplayDuplicate), and
///     one that absorbs a never-executed token dropped a first delivery.
///  7. *Transactions* (PR8, runs with an oltp engine) — committed
///     transactions form an order consistent with version validation, and
///     aborted ones leave no visible writes. The checker keeps a shadow
///     committed version per record key, fed by the kTxn* events (`page`
///     carries the key, `epoch` a version, `node` the session): (a) every
///     kTxnRead must observe the shadow committed version — observing a
///     provisional one is a dirty read; (b) at kTxnCommit the session's
///     whole read set must still match the shadow (catches
///     kSkipOccValidation — a racing commit bumped a version the reader
///     validated against), then its provisional kTxnWrite installs merge
///     into the shadow, each bumping its key by exactly one; (c) a kTxnAbort
///     turns the session's provisional installs into undo obligations that
///     only matching kTxnUndo events (restoring the shadow version)
///     discharge — any later transactional event or Finish() with
///     obligations outstanding means an aborted write stayed visible
///     (catches kSkipAbortUndo).
///
/// The checker is an observer: it never mutates the system, costs no
/// virtual time, and can be attached to any kBaseDdc MemorySystem — tests
/// attach it wholesale and assert zero violations, and the mutation tests
/// (ddc::ProtocolMutation) prove it actually catches planted protocol bugs.
class ModelChecker : public ddc::CoherenceObserver {
 public:
  enum class OnViolation {
    kAbort,   ///< TELEPORT_CHECK-fail at the first violation (default)
    kRecord,  ///< keep running, collect violations (expected-failure tests)
  };

  struct Violation {
    uint64_t step = 0;  ///< index of the offending event (0-based)
    ddc::CoherenceEvent event;
    std::string message;
  };

  /// Attaches to `ms` (replacing any previous observer) and snapshots its
  /// current page table as the model's initial state.
  explicit ModelChecker(ddc::MemorySystem* ms,
                        OnViolation action = OnViolation::kAbort);
  ~ModelChecker() override;

  ModelChecker(const ModelChecker&) = delete;
  ModelChecker& operator=(const ModelChecker&) = delete;

  void OnCoherenceEvent(const ddc::CoherenceEvent& ev) override;

  /// End-of-run drain check; detaches from the system. Returns the total
  /// violation count (0 for a clean run). Idempotent.
  uint64_t Finish();

  uint64_t steps() const { return steps_; }
  bool ok() const { return violations_.empty(); }
  const std::vector<Violation>& violations() const { return violations_; }

 private:
  /// Model state of one page. Versions: `master` is the newest write
  /// anywhere; `compute_v` the version held by the compute-cache copy;
  /// `home_v` the version of the pool/storage ("home") copy.
  struct PageModel {
    ddc::Perm compute = ddc::Perm::kNone;
    ddc::Perm temp = ddc::Perm::kNone;
    bool dirty = false;
    uint64_t master = 0;
    uint64_t compute_v = 0;
    uint64_t home_v = 0;
  };

  PageModel& Page(ddc::PageId p);
  void Fail(const ddc::CoherenceEvent& ev, std::string message);

  /// Whether `ev` reflects a state transition that obliges a TLB shootdown
  /// (translation-epoch bump), judged from the *model's* pre-step state so
  /// an implementation that forgot the transition cannot also excuse the
  /// missing shootdown.
  bool RequiresShootdown(const ddc::CoherenceEvent& ev);

  // Spec transitions (mirror memory_system.cc, independently derived from
  // the paper's Figs 8/9 — agreement is the point).
  void StepComputeAccess(const ddc::CoherenceEvent& ev);
  void StepMemoryAccess(const ddc::CoherenceEvent& ev);
  void StepSessionBegin(const ddc::CoherenceEvent& ev);
  void StepSessionEnd(const ddc::CoherenceEvent& ev);

  // Invariant checks for the page touched by `ev`.
  void CheckAgainstImpl(const ddc::CoherenceEvent& ev, ddc::PageId p);
  void CheckSwmr(const ddc::CoherenceEvent& ev, ddc::PageId p);

  ddc::MemorySystem* ms_;
  const OnViolation action_;
  std::vector<PageModel> pages_;
  bool session_active_ = false;
  ddc::CoherenceMode mode_ = ddc::CoherenceMode::kMesi;
  /// Translation epoch observed by the previous event (shootdown check).
  uint64_t last_epoch_ = 0;
  // Invariant 6 state (all empty/zero unless journal events arrive).
  std::vector<uint8_t> journaled_;  ///< page has an acknowledged redo record
  /// Pages a recovery still owes a kPoolRecover for (set at kPoolRestart).
  std::vector<uint8_t> pending_recover_;
  uint64_t pending_recover_count_ = 0;
  /// Per-shard epoch announced by that shard's latest kPoolRestart (PR7:
  /// leases fence shard-by-shard; index = shard id).
  std::vector<uint64_t> pool_epoch_model_;
  std::vector<uint8_t> token_executed_;  ///< idempotency tokens applied
  // Invariant 7 state (all empty/zero unless kTxn* events arrive). Keys are
  // dense record keys (the oltp engine numbers them from 0).
  struct TxnSession {
    std::vector<std::pair<uint64_t, uint64_t>> reads;   ///< (key, version)
    std::vector<std::pair<uint64_t, uint64_t>> writes;  ///< (key, new vers.)
  };
  TxnSession& Session(int id);
  void StepTxnEvent(const ddc::CoherenceEvent& ev);
  std::vector<TxnSession> txn_sessions_;
  std::vector<uint64_t> committed_version_;  ///< shadow, by record key
  /// Undo obligations of the in-progress abort: (key, version the undo must
  /// restore). Discharged strictly before the next transactional event.
  std::vector<std::pair<uint64_t, uint64_t>> pending_undo_;
  uint64_t last_commit_seq_ = 0;
  uint64_t steps_ = 0;
  std::vector<Violation> violations_;
  bool attached_ = false;
};

}  // namespace teleport::tp

#endif  // TELEPORT_TELEPORT_MODEL_CHECKER_H_
