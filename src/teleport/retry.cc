#include "teleport/retry.h"

#include <sstream>

namespace teleport::tp {

std::string RetryPolicy::ToString() const {
  std::ostringstream os;
  os << "retry{attempts=" << max_attempts << " rto=" << rto_ns
     << "ns backoff=" << base_backoff_ns << ".." << max_backoff_ns << "ns x"
     << multiplier << " jitter=" << jitter_frac << "}";
  return os.str();
}

std::string RetryStats::ToString() const {
  std::ostringstream os;
  os << "retry_stats{attempts=" << attempts << " retries=" << retries
     << " backoff=" << backoff_ns << "ns}";
  return os.str();
}

}  // namespace teleport::tp
