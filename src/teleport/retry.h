#ifndef TELEPORT_TELEPORT_RETRY_H_
#define TELEPORT_TELEPORT_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/units.h"
#include "net/fabric.h"

namespace teleport::tp {

/// Capped exponential backoff with deterministic jitter, applied to the
/// RPCs the paper's runtime retries after silence: pushdown requests,
/// heartbeats, and page-fault RPCs (§3.2 failure handling). All waiting is
/// accounted on the caller's virtual clock; jitter comes from a seeded
/// common/rng stream so runs are reproducible bit-for-bit.
///
/// The core is header-inline because the ddc layer (page-fault path) uses
/// it without linking against teleport_core.
struct RetryPolicy {
  /// Total send attempts before the caller gives up (>= 1). Exhaustion
  /// surfaces Unavailable — or the §3.2 local fallback when enabled.
  int max_attempts = 5;
  /// Retransmission timeout: how long the caller waits in silence before
  /// declaring an attempt lost.
  Nanos rto_ns = 50 * kMicrosecond;
  /// Backoff added to the k-th retry: base * multiplier^k, capped.
  Nanos base_backoff_ns = 20 * kMicrosecond;
  Nanos max_backoff_ns = 2 * kMillisecond;
  double multiplier = 2.0;
  /// Backoff is scaled by a factor drawn uniformly from
  /// [1 - jitter_frac, 1 + jitter_frac].
  double jitter_frac = 0.25;

  /// Backoff wait before retry number `retry` (0-based), with deterministic
  /// jitter drawn from `rng`. Always >= 0.
  Nanos BackoffFor(int retry, Rng& rng) const {
    double b = static_cast<double>(base_backoff_ns);
    for (int i = 0; i < retry; ++i) {
      b *= multiplier;
      if (b >= static_cast<double>(max_backoff_ns)) break;
    }
    b = std::min(b, static_cast<double>(max_backoff_ns));
    if (jitter_frac > 0.0) {
      b *= 1.0 + jitter_frac * (2.0 * rng.NextDouble() - 1.0);
    }
    return std::max<Nanos>(0, static_cast<Nanos>(b));
  }

  std::string ToString() const;
};

/// Accumulated retry accounting for one logical RPC (or a whole run).
struct RetryStats {
  uint64_t attempts = 0;  ///< total send attempts, including the first
  uint64_t retries = 0;   ///< attempts repeated after a drop
  Nanos backoff_ns = 0;   ///< virtual time spent waiting (RTO + backoff)

  void Add(const RetryStats& o) {
    attempts += o.attempts;
    retries += o.retries;
    backoff_ns += o.backoff_ns;
  }

  std::string ToString() const;
};

/// Outcome of a retried RPC: on success `done` is the completion time; on
/// exhaustion `gave_up_at` is where the caller's clock stands after burning
/// every attempt (so the caller can continue from there).
struct RetryOutcome {
  bool ok = false;
  Nanos done = 0;
  Nanos gave_up_at = 0;
};

/// Runs a compute-side round trip under `policy`: each dropped attempt costs
/// one RTO plus jittered backoff of virtual time, then the request is
/// retransmitted. If the link is down with a known heal time the retry also
/// waits the outage out (the heartbeat thread tells the kernel when the pool
/// answers again, §3.2). Without a fault injector the first attempt always
/// succeeds with timing identical to Fabric::RoundTripFromCompute.
inline RetryOutcome RetryRoundTripFromCompute(
    net::Fabric& fabric, const RetryPolicy& policy, Rng& rng, Nanos now,
    uint64_t req_bytes, uint64_t resp_bytes, Nanos handler_ns,
    net::MessageKind req_kind, net::MessageKind resp_kind,
    RetryStats* stats = nullptr, net::Link link = net::Link{}) {
  Nanos t = now;
  const int attempts = std::max(1, policy.max_attempts);
  for (int a = 0; a < attempts; ++a) {
    if (stats != nullptr) ++stats->attempts;
    const net::RpcOutcome rpc = fabric.TryRoundTripFromCompute(
        link, t, req_bytes, resp_bytes, handler_ns, req_kind, resp_kind);
    if (rpc.ok) return RetryOutcome{true, rpc.done, t};
    Nanos wait = policy.rto_ns + policy.BackoffFor(a, rng);
    t += wait;
    const Nanos heal = fabric.NextReachableAt(t, link.dst);
    if (heal > t) {
      wait += heal - t;
      t = heal;
    }
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_ns += wait;
    }
  }
  return RetryOutcome{false, 0, t};
}

}  // namespace teleport::tp

#endif  // TELEPORT_TELEPORT_RETRY_H_
