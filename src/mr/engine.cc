#include "mr/engine.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "sim/tracer.h"

namespace teleport::mr {

namespace {

constexpr uint64_t kPairBytes = 16;  // {int64 key, int64 value}
constexpr int64_t kEmptyKey = INT64_MIN;

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

int64_t FnvHash(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return static_cast<int64_t>(h >> 1);  // non-negative, never kEmptyKey
}

bool IsWordChar(char c) { return c != ' ' && c != '\n'; }

/// Streams bytes of a DDC region in 256-byte blocks (one timed ReadRange
/// per block; sequential scans cost what a SIMD scan would).
class ByteCursor {
 public:
  ByteCursor(ddc::ExecutionContext& ctx, ddc::VAddr base, uint64_t size)
      : cur_(ctx), base_(base), size_(size) {}

  /// Returns the byte at pos, or -1 past the end.
  int Get(uint64_t pos) {
    if (pos >= size_) return -1;
    if (pos < block_start_ || pos >= block_start_ + block_len_) {
      block_start_ = pos;
      block_len_ = std::min<uint64_t>(256, size_ - pos);
      block_ = static_cast<const char*>(
          cur_.ReadRange(base_ + block_start_, block_len_));
    }
    return static_cast<unsigned char>(block_[pos - block_start_]);
  }

 private:
  ddc::Cursor cur_;
  ddc::VAddr base_;
  uint64_t size_;
  const char* block_ = nullptr;
  uint64_t block_start_ = 0;
  uint64_t block_len_ = 0;
};

/// One key-value buffer in DDC space with a bump cursor.
struct KvBuffer {
  ddc::VAddr addr = 0;
  uint64_t capacity = 0;
  uint64_t count = 0;

  void Emit(ddc::ExecutionContext& ctx, int64_t key, int64_t value) {
    TELEPORT_CHECK(count < capacity) << "kv buffer overflow";
    ctx.Store<int64_t>(addr + count * kPairBytes, key);
    ctx.Store<int64_t>(addr + count * kPairBytes + 8, value);
    ++count;
  }

  /// Bump append through a caller-held cursor (sequential output runs).
  void Emit(ddc::Cursor& cur, int64_t key, int64_t value) {
    TELEPORT_CHECK(count < capacity) << "kv buffer overflow";
    cur.Store<int64_t>(addr + count * kPairBytes, key);
    cur.Store<int64_t>(addr + count * kPairBytes + 8, value);
    ++count;
  }
};

class MrRunner {
 public:
  MrRunner(ddc::ExecutionContext& ctx, const MrOptions& opts)
      : ctx_(ctx),
        opts_(opts),
        start_ns_(ctx.now()),
        start_metrics_(ctx.metrics()) {
    for (MrPhase p : {MrPhase::kMapCompute, MrPhase::kMapShuffle,
                      MrPhase::kReduce, MrPhase::kMerge}) {
      MrPhaseProfile prof;
      prof.phase = p;
      prof.pushed = opts.ShouldPush(p);
      profiles_.push_back(prof);
    }
  }

  template <typename Fn>
  void Run(MrPhase phase, Fn&& body) {
    TELEPORT_TRACE(ctx_.memory_system().tracer(), ctx_.clock(), "mr",
                   MrPhaseToString(phase), sim::kTrackCompute);
    MrPhaseProfile& prof = profiles_[static_cast<size_t>(phase)];
    const Nanos t0 = ctx_.now();
    const uint64_t rm0 = ctx_.metrics().RemoteMemoryBytes();
    const uint64_t rt0 = ctx_.metrics().retries;
    const uint64_t fb0 = ctx_.metrics().fallbacks;
    const uint64_t rc0 = ctx_.metrics().recovered_pool_writes;
    const uint64_t fe0 = ctx_.metrics().fenced_rpcs;
    if (opts_.ShouldPush(phase)) {
      const Status st = opts_.runtime->Call(
          ctx_,
          [&](ddc::ExecutionContext& mem_ctx) {
            body(mem_ctx);
            return Status::OK();
          },
          opts_.flags);
      TELEPORT_CHECK(st.ok()) << "pushdown of " << MrPhaseToString(phase)
                              << " failed: " << st;
    } else {
      body(ctx_);
    }
    prof.time_ns += ctx_.now() - t0;
    prof.remote_bytes += ctx_.metrics().RemoteMemoryBytes() - rm0;
    prof.retries += ctx_.metrics().retries - rt0;
    prof.fallbacks += ctx_.metrics().fallbacks - fb0;
    prof.recovered += ctx_.metrics().recovered_pool_writes - rc0;
    prof.fenced += ctx_.metrics().fenced_rpcs - fe0;
    ++prof.invocations;
  }

  MrResult Finish(int64_t checksum, uint64_t pairs, uint64_t distinct) {
    MrResult r;
    r.checksum = checksum;
    r.pairs = pairs;
    r.distinct_keys = distinct;
    r.total_ns = ctx_.now() - start_ns_;
    r.phases = std::move(profiles_);
    if (opts_.scopes != nullptr) {
      opts_.scopes->Record(ctx_.tenant(),
                           ctx_.metrics().Diff(start_metrics_), r.total_ns);
    }
    return r;
  }

 private:
  ddc::ExecutionContext& ctx_;
  const MrOptions& opts_;
  Nanos start_ns_;
  sim::Metrics start_metrics_;
  std::vector<MrPhaseProfile> profiles_;
};

/// The shared Phoenix-style pipeline; `map_chunk(c, begin, end, out)` is the
/// user-defined map function emitting key-value pairs for input words/lines
/// *starting* in [begin, end).
template <typename MapChunkFn>
MrResult RunPipeline(ddc::ExecutionContext& ctx, const TextCorpus& corpus,
                     const MrOptions& opts, MapChunkFn&& map_chunk) {
  ddc::MemorySystem& ms = ctx.memory_system();
  const int m_tasks = std::max(1, opts.map_tasks);
  const int r_tasks = std::max(1, opts.reduce_tasks);
  MrRunner runner(ctx, opts);

  // Pessimistic capacity: one pair per 3 input bytes.
  const uint64_t max_pairs = corpus.bytes / 3 + 64;
  const uint64_t chunk = corpus.bytes / static_cast<uint64_t>(m_tasks) + 1;

  // Map-local buffers, one per task.
  std::vector<KvBuffer> local(static_cast<size_t>(m_tasks));
  for (int t = 0; t < m_tasks; ++t) {
    local[static_cast<size_t>(t)].capacity = chunk / 3 + 64;
    local[static_cast<size_t>(t)].addr = ms.space().Alloc(
        local[static_cast<size_t>(t)].capacity * kPairBytes,
        "mr.map_local." + std::to_string(t));
  }

  // Per-reduce-task keyed buffers (open addressing). As in Phoenix, the
  // shuffle inserts each emitted pair into the destination task's keyed
  // structure, combining duplicates on the way in — the random-access
  // pattern that makes map-shuffle 95% of map time in a DDC (§5.3).
  struct ReduceTable {
    ddc::VAddr addr = 0;
    uint64_t slots = 0;
    uint64_t groups = 0;
  };
  std::vector<ReduceTable> tables(static_cast<size_t>(r_tasks));
  const uint64_t slots_per_table = NextPow2(std::max<uint64_t>(
      64, opts.distinct_hint > 0
              ? 4 * opts.distinct_hint / static_cast<uint64_t>(r_tasks)
              : 2 * max_pairs / static_cast<uint64_t>(r_tasks)));
  for (int r = 0; r < r_tasks; ++r) {
    ReduceTable& tab = tables[static_cast<size_t>(r)];
    tab.slots = slots_per_table;
    tab.addr = ms.space().Alloc(tab.slots * kPairBytes,
                                "mr.reduce_buf." + std::to_string(r));
    // Empty sentinels: the buffers start zeroed; stamp the sentinel value
    // host-side (engine initialization, before the measured region).
    auto* host = static_cast<int64_t*>(
        ms.space().HostPtr(tab.addr, tab.slots * kPairBytes));
    for (uint64_t s = 0; s < tab.slots; ++s) host[s * 2] = kEmptyKey;
  }

  uint64_t total_pairs = 0;
  for (int t = 0; t < m_tasks; ++t) {
    KvBuffer& buf = local[static_cast<size_t>(t)];
    const uint64_t begin = static_cast<uint64_t>(t) * chunk;
    const uint64_t end = std::min(corpus.bytes, begin + chunk);
    if (begin >= corpus.bytes) break;

    // --- Map-compute: the user-defined map function over this chunk.
    runner.Run(MrPhase::kMapCompute, [&](ddc::ExecutionContext& c) {
      map_chunk(c, begin, end, buf);
    });

    // --- Map-shuffle: insert this task's pairs into the reduce tasks'
    // keyed buffers (the pushdown target, §5.3).
    runner.Run(MrPhase::kMapShuffle, [&](ddc::ExecutionContext& c) {
      // The local buffer streams; the keyed-table probes are random and
      // stay on the plain context path.
      ddc::Cursor buf_cur(c);
      for (uint64_t i = 0; i < buf.count; ++i) {
        const int64_t key = buf_cur.Load<int64_t>(buf.addr + i * kPairBytes);
        const int64_t value =
            buf_cur.Load<int64_t>(buf.addr + i * kPairBytes + 8);
        ReduceTable& tab = tables[static_cast<size_t>(
            static_cast<uint64_t>(key) % static_cast<uint64_t>(r_tasks))];
        const uint64_t mask = tab.slots - 1;
        uint64_t s = (static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL >>
                      32) & mask;
        while (true) {
          const int64_t existing = c.Load<int64_t>(tab.addr + s * kPairBytes);
          c.ChargeCpu(4);
          if (existing == kEmptyKey) {
            c.Store<int64_t>(tab.addr + s * kPairBytes, key);
            c.Store<int64_t>(tab.addr + s * kPairBytes + 8, value);
            ++tab.groups;
            TELEPORT_CHECK(tab.groups * 10 < tab.slots * 9)
                << "reduce buffer overflow: raise MrOptions::distinct_hint";
            break;
          }
          if (existing == key) {
            const ddc::VAddr slot = tab.addr + s * kPairBytes + 8;
            c.Store<int64_t>(slot, c.Load<int64_t>(slot) + value);
            break;
          }
          s = (s + 1) & mask;
        }
      }
    });
    total_pairs += buf.count;
  }

  // --- Reduce: each reduce task compacts its keyed buffer into a dense
  // (key, count) output run.
  std::vector<KvBuffer> outputs(static_cast<size_t>(r_tasks));
  for (int r = 0; r < r_tasks; ++r) {
    const ReduceTable& tab = tables[static_cast<size_t>(r)];
    KvBuffer& out = outputs[static_cast<size_t>(r)];
    out.capacity = std::max<uint64_t>(1, tab.groups);
    out.addr = ms.space().Alloc(out.capacity * kPairBytes,
                                "mr.reduce_out." + std::to_string(r));
    runner.Run(MrPhase::kReduce, [&](ddc::ExecutionContext& c) {
      ddc::Cursor scan_cur(c);
      ddc::Cursor out_cur(c);
      for (uint64_t s = 0; s < tab.slots; ++s) {
        const int64_t key = scan_cur.Load<int64_t>(tab.addr + s * kPairBytes);
        c.ChargeCpu(2);
        if (key == kEmptyKey) continue;
        const int64_t value =
            scan_cur.Load<int64_t>(tab.addr + s * kPairBytes + 8);
        out.Emit(out_cur, key, value);
      }
    });
  }

  // --- Merge: concatenate reduce outputs and digest them.
  uint64_t distinct = 0;
  for (const KvBuffer& out : outputs) distinct += out.count;
  const ddc::VAddr merged = ms.space().Alloc(
      std::max<uint64_t>(kPairBytes, distinct * kPairBytes), "mr.merged");
  int64_t checksum = 0;
  runner.Run(MrPhase::kMerge, [&](ddc::ExecutionContext& c) {
    uint64_t n = 0;
    ddc::Cursor in_cur(c);
    ddc::Cursor out_cur(c);
    for (const KvBuffer& out : outputs) {
      for (uint64_t i = 0; i < out.count; ++i) {
        const int64_t key = in_cur.Load<int64_t>(out.addr + i * kPairBytes);
        const int64_t value =
            in_cur.Load<int64_t>(out.addr + i * kPairBytes + 8);
        out_cur.Store<int64_t>(merged + n * kPairBytes, key);
        out_cur.Store<int64_t>(merged + n * kPairBytes + 8, value);
        ++n;
        c.ChargeCpu(2);
        // Order-independent digest (outputs are hash-ordered).
        checksum += (key % 1'000'003 + 7) * (value + 13);
      }
    }
    TELEPORT_CHECK(n == distinct);
  });

  return runner.Finish(checksum, total_pairs, distinct);
}

}  // namespace

std::string_view MrPhaseToString(MrPhase p) {
  switch (p) {
    case MrPhase::kMapCompute:
      return "MapCompute";
    case MrPhase::kMapShuffle:
      return "MapShuffle";
    case MrPhase::kReduce:
      return "Reduce";
    case MrPhase::kMerge:
      return "Merge";
  }
  return "Unknown";
}

const MrPhaseProfile& MrResult::Profile(MrPhase p) const {
  for (const MrPhaseProfile& prof : phases) {
    if (prof.phase == p) return prof;
  }
  TELEPORT_CHECK(false) << "missing phase profile";
  __builtin_unreachable();
}

MrResult RunWordCount(ddc::ExecutionContext& ctx, const TextCorpus& corpus,
                      const MrOptions& opts) {
  return RunPipeline(
      ctx, corpus, opts,
      [&corpus](ddc::ExecutionContext& c, uint64_t begin, uint64_t end,
                KvBuffer& out) {
        ByteCursor bytes(c, corpus.addr, corpus.bytes);
        ddc::Cursor out_cur(c);
        uint64_t pos = begin;
        // Words straddling the chunk start belong to the previous task.
        if (begin > 0) {
          int prev = bytes.Get(begin - 1);
          if (prev >= 0 && IsWordChar(static_cast<char>(prev))) {
            while (pos < end) {
              const int ch = bytes.Get(pos);
              if (ch < 0 || !IsWordChar(static_cast<char>(ch))) break;
              ++pos;
            }
          }
        }
        std::string word;
        while (pos < corpus.bytes) {
          const int ch = bytes.Get(pos);
          const bool is_word = ch >= 0 && IsWordChar(static_cast<char>(ch));
          if (is_word) {
            // Only words *starting* inside [begin, end) are ours; a word
            // already in progress is consumed to completion even past end.
            if (word.empty() && pos >= end) break;
            word += static_cast<char>(ch);
          } else {
            if (!word.empty()) {
              c.ChargeCpu(word.size() + 2);
              out.Emit(out_cur, FnvHash(word), 1);
              word.clear();
            }
            if (pos >= end) break;
          }
          ++pos;
        }
        if (!word.empty()) {
          c.ChargeCpu(word.size() + 2);
          out.Emit(out_cur, FnvHash(word), 1);
        }
      });
}

MrResult RunGrep(ddc::ExecutionContext& ctx, const TextCorpus& corpus,
                 std::string_view pattern, const MrOptions& opts) {
  const std::string needle(pattern);
  MrOptions grep_opts = opts;
  if (grep_opts.distinct_hint == 0) {
    // Grep emits at most one pair per line.
    grep_opts.distinct_hint = corpus.lines + 1024;
  }
  return RunPipeline(
      ctx, corpus, grep_opts,
      [&corpus, needle](ddc::ExecutionContext& c, uint64_t begin,
                        uint64_t end, KvBuffer& out) {
        ByteCursor bytes(c, corpus.addr, corpus.bytes);
        ddc::Cursor out_cur(c);
        uint64_t pos = begin;
        // Lines straddling the chunk start belong to the previous task
        // (unless the chunk begins exactly at a line start).
        if (begin > 0 && bytes.Get(begin - 1) != '\n') {
          while (pos < corpus.bytes) {
            const int ch = bytes.Get(pos);
            ++pos;
            if (ch == '\n') break;
          }
        }
        std::string line;
        uint64_t line_start = pos;
        while (pos < corpus.bytes && line_start < end) {
          const int ch = bytes.Get(pos);
          if (ch != '\n') {
            line += static_cast<char>(ch);
            ++pos;
            continue;
          }
          // End of line.
          c.ChargeCpu(line.size() + needle.size());
          if (line.find(needle) != std::string::npos) {
            out.Emit(out_cur, FnvHash(line), 1);
          }
          line.clear();
          ++pos;
          line_start = pos;
        }
        // Unterminated final line at EOF.
        if (!line.empty() && pos >= corpus.bytes && line_start < end) {
          c.ChargeCpu(line.size() + needle.size());
          if (line.find(needle) != std::string::npos) {
            out.Emit(out_cur, FnvHash(line), 1);
          }
        }
      });
}

std::set<MrPhase> DefaultTeleportPhases(bool grep) {
  if (grep) return {MrPhase::kMapCompute, MrPhase::kMapShuffle};
  return {MrPhase::kMapShuffle};
}

}  // namespace teleport::mr
