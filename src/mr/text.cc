#include "mr/text.h"

#include <string>

#include "common/rng.h"

namespace teleport::mr {

namespace {

std::string SpellWord(uint64_t id) {
  std::string w = "w";
  do {
    w += static_cast<char>('a' + id % 26);
    id /= 26;
  } while (id > 0);
  return w;
}

}  // namespace

TextCorpus GenerateText(ddc::MemorySystem* ms, const TextConfig& config) {
  Rng rng(config.seed);
  ZipfGenerator zipf(config.vocabulary, config.zipf_theta);

  TextCorpus corpus;
  corpus.addr = ms->space().Alloc(config.bytes, "text.corpus");
  corpus.bytes = config.bytes;
  char* out = static_cast<char*>(ms->space().HostPtr(corpus.addr,
                                                     config.bytes));
  uint64_t pos = 0;
  uint64_t words_on_line = 0;
  while (pos < config.bytes) {
    const std::string w = SpellWord(zipf.Sample(rng));
    if (pos + w.size() + 1 >= config.bytes) {
      // Pad the tail with spaces (tokenizers skip them).
      while (pos < config.bytes) out[pos++] = ' ';
      break;
    }
    for (char ch : w) out[pos++] = ch;
    ++corpus.words;
    ++words_on_line;
    if (words_on_line >= config.words_per_line &&
        rng.Bernoulli(2.0 / static_cast<double>(config.words_per_line))) {
      out[pos++] = '\n';
      ++corpus.lines;
      words_on_line = 0;
    } else {
      out[pos++] = ' ';
    }
  }
  ms->SeedData();
  return corpus;
}

}  // namespace teleport::mr
