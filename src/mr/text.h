#ifndef TELEPORT_MR_TEXT_H_
#define TELEPORT_MR_TEXT_H_

#include <cstdint>

#include "ddc/memory_system.h"

namespace teleport::mr {

/// Configuration of the synthetic text corpus. Substitutes for the paper's
/// 15M-comment Reddit NLP dataset: what WordCount/Grep cost shapes depend
/// on is total volume and a Zipfian word-frequency distribution, both
/// preserved here.
struct TextConfig {
  uint64_t bytes = 8 << 20;
  uint64_t vocabulary = 20'000;
  double zipf_theta = 0.8;
  /// Average words per line ('\n'-terminated).
  uint64_t words_per_line = 12;
  uint64_t seed = 17;
};

/// A corpus of lowercase words separated by single spaces and newlines,
/// in DDC space.
struct TextCorpus {
  ddc::VAddr addr = 0;
  uint64_t bytes = 0;
  uint64_t lines = 0;
  uint64_t words = 0;
};

/// Generates the corpus (untimed) and seeds it into the platform's backing
/// store. Deterministic in config.seed. Word i is spelled as base-26
/// letters of i prefixed with 'w', so frequent (low-id) words are short —
/// like natural text.
TextCorpus GenerateText(ddc::MemorySystem* ms, const TextConfig& config);

}  // namespace teleport::mr

#endif  // TELEPORT_MR_TEXT_H_
