#ifndef TELEPORT_MR_ENGINE_H_
#define TELEPORT_MR_ENGINE_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "mr/text.h"
#include "sim/tenant_scopes.h"
#include "teleport/pushdown.h"

namespace teleport::mr {

/// Phoenix-style execution phases. §5.3 splits map into map-compute (the
/// user-defined map function) and map-shuffle (partitioning key-values to
/// the reduce buffers); map-shuffle is the pushdown target.
enum class MrPhase { kMapCompute, kMapShuffle, kReduce, kMerge };

std::string_view MrPhaseToString(MrPhase p);

struct MrPhaseProfile {
  MrPhase phase = MrPhase::kMapCompute;
  Nanos time_ns = 0;
  uint64_t remote_bytes = 0;
  uint64_t invocations = 0;
  bool pushed = false;
  uint64_t retries = 0;    ///< RPC attempts repeated after injected drops
  uint64_t fallbacks = 0;  ///< pushdowns re-run locally (§3.2 escape hatch)
  uint64_t recovered = 0;  ///< journaled writes replayed by pool recoveries
  uint64_t fenced = 0;     ///< stale-epoch admissions re-tried (PR6 fencing)
};

struct MrOptions {
  tp::PushdownRuntime* runtime = nullptr;
  std::set<MrPhase> push_phases;
  int map_tasks = 8;
  int reduce_tasks = 8;
  /// Optional hint of the number of distinct keys; sizes the keyed reduce
  /// buffers (0 = conservative sizing from the input volume).
  uint64_t distinct_hint = 0;
  tp::PushdownFlags flags;

  /// Multi-tenant attribution (PR7): when set, the whole run's
  /// context-metrics diff and end-to-end latency are recorded into the
  /// calling context's tenant scope.
  sim::TenantScopes* scopes = nullptr;

  bool ShouldPush(MrPhase p) const {
    return runtime != nullptr && push_phases.count(p) > 0;
  }
};

struct MrResult {
  int64_t checksum = 0;      ///< platform-independent result digest
  uint64_t pairs = 0;        ///< key-value pairs emitted by map
  uint64_t distinct_keys = 0;
  Nanos total_ns = 0;
  std::vector<MrPhaseProfile> phases;

  const MrPhaseProfile& Profile(MrPhase p) const;
};

/// WordCount: map emits (hash(word), 1) per token; reduce sums per key;
/// merge concatenates reduce outputs and digests them.
MrResult RunWordCount(ddc::ExecutionContext& ctx, const TextCorpus& corpus,
                      const MrOptions& opts);

/// Grep: map emits (hash(line), 1) for each line containing `pattern`;
/// reduce/merge as in WordCount. The checksum covers match count and
/// line digests.
MrResult RunGrep(ddc::ExecutionContext& ctx, const TextCorpus& corpus,
                 std::string_view pattern, const MrOptions& opts);

/// §5.3: for WordCount only map-shuffle is worth Teleporting (the map
/// function itself is computationally expensive); Grep's map is a cheap
/// data-intensive scan, so both map sub-phases move to the data.
std::set<MrPhase> DefaultTeleportPhases(bool grep = false);

}  // namespace teleport::mr

#endif  // TELEPORT_MR_ENGINE_H_
