#ifndef TELEPORT_DB_ADVISOR_H_
#define TELEPORT_DB_ADVISOR_H_

#include <set>
#include <string>
#include <vector>

#include "db/query.h"
#include "sim/cost_model.h"

namespace teleport::db {

/// Cost-based pushdown advisor — the automation §5.1 sketches as future
/// work ("cost-based approaches can automate the decision-making") and
/// §7.4 motivates with the memory-intensity metric.
///
/// Given a profiling run of a query on the base DDC, the advisor estimates,
/// per operator, the remote-access time pushdown would save against the
/// CPU penalty of the memory pool's (possibly throttled) cores plus the
/// fixed per-call overhead, and recommends the profitable subset.
struct AdvisorParams {
  /// Clock ratio of the memory-pool cores (the §7.3 knob).
  double memory_pool_clock_ratio = 1.0;
  /// The deployment's timing constants.
  sim::CostParams cost = sim::CostParams::Default();
  /// Fixed per-call overhead estimate: context attach, request/response
  /// transfers, and resident-list processing.
  Nanos per_call_overhead_ns = 120'000;
};

/// Per-operator verdict with the model's estimates (for explainability).
struct OperatorAdvice {
  std::string name;
  Nanos est_remote_saving_ns = 0;  ///< fault time removed by pushdown
  Nanos est_cpu_penalty_ns = 0;    ///< extra CPU time on slower cores
  bool push = false;

  Nanos NetBenefit(Nanos overhead) const {
    return est_remote_saving_ns - est_cpu_penalty_ns - overhead;
  }
};

struct PushdownPlan {
  std::set<std::string> push_ops;
  std::vector<OperatorAdvice> advice;  ///< plan order, one per operator
};

/// Builds a pushdown plan from a base-DDC profiling run.
PushdownPlan AdvisePushdown(const QueryResult& base_profile,
                            const AdvisorParams& params);

}  // namespace teleport::db

#endif  // TELEPORT_DB_ADVISOR_H_
