#include "db/advisor.h"

namespace teleport::db {

PushdownPlan AdvisePushdown(const QueryResult& base_profile,
                            const AdvisorParams& params) {
  PushdownPlan plan;
  const sim::CostParams& cost = params.cost;

  // Effective cost of one remote page movement on the profiled platform:
  // fault round trip with a page payload, handler included.
  const Nanos per_page_ns = cost.net_latency_ns +
                            cost.fault_handler_ns +
                            cost.NetPageTransfer();

  for (const OperatorProfile& op : base_profile.ops) {
    OperatorAdvice a;
    a.name = op.name;
    // Pushdown removes (almost) all of the operator's page movement: its
    // inputs are pool-resident and its outputs stay in the pool.
    a.est_remote_saving_ns =
        static_cast<Nanos>(op.remote_pages) * per_page_ns;
    // ...at the price of running the operator's CPU work on the pool's
    // cores.
    const double ratio = params.memory_pool_clock_ratio;
    const double penalty_factor = ratio >= 1.0 ? 0.0 : (1.0 / ratio - 1.0);
    a.est_cpu_penalty_ns = static_cast<Nanos>(
        static_cast<double>(cost.Cpu(op.cpu_ops)) * penalty_factor);
    a.push = a.NetBenefit(params.per_call_overhead_ns) > 0;
    if (a.push) plan.push_ops.insert(a.name);
    plan.advice.push_back(std::move(a));
  }
  return plan;
}

}  // namespace teleport::db
