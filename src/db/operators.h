#ifndef TELEPORT_DB_OPERATORS_H_
#define TELEPORT_DB_OPERATORS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "db/column.h"
#include "ddc/memory_system.h"

namespace teleport::db {

/// A candidate list (MonetDB-style): row ids, ascending, in DDC space.
/// Operators that take an optional SelVector scan the whole column when it
/// is absent.
struct SelVector {
  ddc::VAddr addr = 0;
  uint64_t count = 0;
};

/// Comparison flavor for SelectCompare.
enum class CmpOp { kLess, kGreater, kRange /* lo <= v <= hi */, kEqual };

/// Selection: scans `col` (restricted to `cand` when present), applies the
/// predicate, and materializes matching row ids to a temporary in DDC
/// space — the MonetDB selection pattern of §2.3/Fig 4.
SelVector SelectCompare(ddc::ExecutionContext& ctx, const Column& col,
                        CmpOp op, int64_t lo, int64_t hi,
                        const SelVector* cand, const std::string& out_name);

/// Selection over a string column: substring containment (LIKE '%needle%').
SelVector SelectStrContains(ddc::ExecutionContext& ctx,
                            const StringColumn& col, std::string_view needle,
                            const SelVector* cand,
                            const std::string& out_name);

/// Projection: gathers col[sel[i]] into a dense temporary value array.
/// Returns its address; length is sel.count.
ddc::VAddr ProjectGather(ddc::ExecutionContext& ctx, const Column& col,
                         const SelVector& sel, const std::string& out_name);

/// Aggregation: sum of a dense value array.
int64_t AggrSum(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                ddc::VAddr values, uint64_t count);

/// Aggregation directly over a column restricted by a candidate list.
int64_t AggrSumColumn(ddc::ExecutionContext& ctx, const Column& col,
                      const SelVector* cand);

/// Expression: out[i] = a[i] * b[i] / div (elementwise over dense arrays).
ddc::VAddr ExprMulScaled(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                         ddc::VAddr a, ddc::VAddr b, uint64_t count,
                         int64_t div, const std::string& out_name);

/// Expression: revenue[i] = price[i] * (100 - discount[i]) / 100.
ddc::VAddr ExprRevenue(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                       ddc::VAddr price, ddc::VAddr discount, uint64_t count,
                       const std::string& out_name);

/// Expression: amount[i] = price[i]*(100-disc[i])/100 - cost[i]*qty[i]
/// (the Q9 profit expression).
ddc::VAddr ExprAmount(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                      ddc::VAddr price, ddc::VAddr discount, ddc::VAddr cost,
                      ddc::VAddr quantity, uint64_t count,
                      const std::string& out_name);

/// Open-addressing hash table over unique int64 keys, stored in DDC space.
/// Slot layout: {key, row}; empty slots hold kEmptyKey.
struct HashTable {
  ddc::VAddr addr = 0;
  uint64_t slots = 0;
  static constexpr int64_t kEmptyKey = INT64_MIN;
};

/// Build side of a hash join: inserts (key[row], row) for each candidate
/// row (all rows when `cand` is null). Keys must be unique.
HashTable HashBuild(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                    const Column& keys, const SelVector* cand,
                    const std::string& out_name);

/// Same, but with composite keys key = hi[row] * shift + lo[row]
/// (the partsupp (partkey, suppkey) join).
HashTable HashBuildComposite(ddc::ExecutionContext& ctx,
                             ddc::MemorySystem& ms, const Column& hi,
                             const Column& lo, int64_t shift,
                             const SelVector* cand,
                             const std::string& out_name);

/// Matched row pairs of a join, parallel arrays in DDC space.
struct JoinResult {
  ddc::VAddr probe_rows = 0;
  ddc::VAddr build_rows = 0;
  uint64_t count = 0;
};

/// Probe side of a hash join: for each candidate probe row, looks the key
/// up and emits (probe_row, build_row) on a match. §2.2's random-access
/// pattern: every probe is a potential cache miss in a DDC.
JoinResult HashProbe(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                     const Column& probe_keys, const SelVector* cand,
                     const HashTable& ht, const std::string& out_name);

/// Composite-key probe matching HashBuildComposite.
JoinResult HashProbeComposite(ddc::ExecutionContext& ctx,
                              ddc::MemorySystem& ms, const Column& hi,
                              const Column& lo, int64_t shift,
                              const SelVector* cand, const HashTable& ht,
                              const std::string& out_name);

/// Merge join of a dense sorted dimension key (o_orderkey = 0..N-1) with a
/// non-decreasing foreign-key sequence fk[sel[i]] (lineitem is physically
/// ordered by l_orderkey). Emits, per candidate row, the matching dimension
/// row id. Both sides stream sequentially — the access pattern that makes
/// merge join cheap even in a DDC (Fig 10).
ddc::VAddr MergeJoinDense(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                          const Column& fk, const SelVector& sel,
                          uint64_t dim_rows, const std::string& out_name);

/// Grouped sum with a small dense key domain: groups[key[i]] += value[i].
/// Returns the dense group array address (domain int64 slots).
ddc::VAddr GroupSumDense(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                         ddc::VAddr keys, ddc::VAddr values, uint64_t count,
                         uint64_t domain, const std::string& out_name);

/// Grouped sum via open addressing for large sparse key domains (Q3's
/// GROUP BY l_orderkey). Returns the slot array {key, sum} and its size;
/// also reports the number of distinct groups.
struct GroupHashResult {
  ddc::VAddr addr = 0;
  uint64_t slots = 0;
  uint64_t groups = 0;
};
GroupHashResult GroupSumHash(ddc::ExecutionContext& ctx,
                             ddc::MemorySystem& ms, ddc::VAddr keys,
                             ddc::VAddr values, uint64_t count,
                             const std::string& out_name);

/// Order-preserving checksum of (key, sum) pairs in a dense group array —
/// used to compare query results across platforms bit-for-bit.
int64_t ChecksumDenseGroups(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                            ddc::VAddr groups, uint64_t domain);

/// Checksum of a hash-group result (order independent: sums over slots).
int64_t ChecksumHashGroups(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                           const GroupHashResult& g);

}  // namespace teleport::db

#endif  // TELEPORT_DB_OPERATORS_H_
