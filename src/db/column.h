#ifndef TELEPORT_DB_COLUMN_H_
#define TELEPORT_DB_COLUMN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ddc/memory_system.h"

namespace teleport::db {

/// A fixed-width int64 column stored in the simulated address space —
/// the moral equivalent of a MonetDB BAT tail. All timed access goes
/// through an ExecutionContext; raw host access is only for data
/// generation (before SeedData stages the buffer pool).
class Column {
 public:
  Column(ddc::MemorySystem* ms, std::string name, uint64_t rows)
      : ms_(ms),
        name_(std::move(name)),
        rows_(rows),
        addr_(ms->space().Alloc(rows * sizeof(int64_t), name_)) {}

  const std::string& name() const { return name_; }
  uint64_t rows() const { return rows_; }
  ddc::VAddr addr() const { return addr_; }
  uint64_t bytes() const { return rows_ * sizeof(int64_t); }

  /// Timed element read.
  int64_t Get(ddc::ExecutionContext& ctx, uint64_t row) const {
    return ctx.Load<int64_t>(addr_ + row * sizeof(int64_t));
  }

  /// Timed element read through a caller-held cursor (operator inner loops
  /// walking this column keep its page pinned across iterations).
  int64_t Get(ddc::Cursor& cur, uint64_t row) const {
    return cur.Load<int64_t>(addr_ + row * sizeof(int64_t));
  }

  /// Timed element write.
  void Set(ddc::ExecutionContext& ctx, uint64_t row, int64_t v) const {
    ctx.Store<int64_t>(addr_ + row * sizeof(int64_t), v);
  }

  /// Timed element write through a caller-held cursor.
  void Set(ddc::Cursor& cur, uint64_t row, int64_t v) const {
    cur.Store<int64_t>(addr_ + row * sizeof(int64_t), v);
  }

  /// Untimed host pointer for data generation.
  int64_t* raw() {
    return static_cast<int64_t*>(ms_->space().HostPtr(addr_, bytes()));
  }
  const int64_t* raw() const {
    return static_cast<const int64_t*>(ms_->space().HostPtr(addr_, bytes()));
  }

 private:
  ddc::MemorySystem* ms_;
  std::string name_;
  uint64_t rows_;
  ddc::VAddr addr_;
};

/// A fixed-width character column (e.g. p_name): `width` bytes per row,
/// zero-padded. Substring scans read the real bytes through the DDC.
class StringColumn {
 public:
  StringColumn(ddc::MemorySystem* ms, std::string name, uint64_t rows,
               uint32_t width)
      : ms_(ms),
        name_(std::move(name)),
        rows_(rows),
        width_(width),
        addr_(ms->space().Alloc(rows * width, name_)) {}

  const std::string& name() const { return name_; }
  uint64_t rows() const { return rows_; }
  uint32_t width() const { return width_; }
  ddc::VAddr addr() const { return addr_; }
  uint64_t bytes() const { return rows_ * width_; }

  /// Timed row read; the returned view is valid until the next allocation.
  std::string_view Get(ddc::ExecutionContext& ctx, uint64_t row) const {
    const void* p = ctx.ReadRange(addr_ + row * width_, width_);
    return std::string_view(static_cast<const char*>(p), width_);
  }

  /// Timed row read through a caller-held cursor.
  std::string_view Get(ddc::Cursor& cur, uint64_t row) const {
    const void* p = cur.ReadRange(addr_ + row * width_, width_);
    return std::string_view(static_cast<const char*>(p), width_);
  }

  /// Untimed host write for data generation (truncates/pads to width).
  void RawSet(uint64_t row, std::string_view s) {
    char* p = static_cast<char*>(
        ms_->space().HostPtr(addr_ + row * width_, width_));
    const size_t n = s.size() < width_ ? s.size() : width_;
    for (size_t i = 0; i < n; ++i) p[i] = s[i];
    for (size_t i = n; i < width_; ++i) p[i] = '\0';
  }

 private:
  ddc::MemorySystem* ms_;
  std::string name_;
  uint64_t rows_;
  uint32_t width_;
  ddc::VAddr addr_;
};

/// A named collection of equally-long columns.
struct Table {
  std::string name;
  uint64_t rows = 0;
  std::map<std::string, std::unique_ptr<Column>> columns;
  std::map<std::string, std::unique_ptr<StringColumn>> string_columns;

  Column& Col(const std::string& col) const {
    auto it = columns.find(col);
    TELEPORT_CHECK(it != columns.end())
        << "no column '" << col << "' in table '" << name << "'";
    return *it->second;
  }
  StringColumn& StrCol(const std::string& col) const {
    auto it = string_columns.find(col);
    TELEPORT_CHECK(it != string_columns.end())
        << "no string column '" << col << "' in table '" << name << "'";
    return *it->second;
  }

  Column& AddColumn(ddc::MemorySystem* ms, const std::string& col) {
    auto c = std::make_unique<Column>(ms, name + "." + col, rows);
    Column& ref = *c;
    columns.emplace(col, std::move(c));
    return ref;
  }
  StringColumn& AddStringColumn(ddc::MemorySystem* ms, const std::string& col,
                                uint32_t width) {
    auto c =
        std::make_unique<StringColumn>(ms, name + "." + col, rows, width);
    StringColumn& ref = *c;
    string_columns.emplace(col, std::move(c));
    return ref;
  }

  /// Total bytes across all columns (working-set sizing).
  uint64_t TotalBytes() const {
    uint64_t b = 0;
    for (const auto& [k, c] : columns) b += c->bytes();
    for (const auto& [k, c] : string_columns) b += c->bytes();
    return b;
  }
};

}  // namespace teleport::db

#endif  // TELEPORT_DB_COLUMN_H_
