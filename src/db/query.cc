#include "db/query.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/tracer.h"

namespace teleport::db {

namespace {

/// Runs a plan operator either inline or as a pushdown call, recording an
/// OperatorProfile from the caller's clock/metrics deltas. The body runs
/// against whichever context the placement dictates, so the same kernel
/// code serves both paths — the paper's "selective wrapping of existing
/// function calls" (§1).
class PlanExecutor {
 public:
  PlanExecutor(ddc::ExecutionContext& ctx, const QueryOptions& opts)
      : ctx_(ctx),
        opts_(opts),
        start_ns_(ctx.now()),
        start_metrics_(ctx.metrics()) {}

  template <typename Fn>
  void Run(const std::string& name, OpKind kind, Fn&& body) {
    TELEPORT_TRACE(ctx_.memory_system().tracer(), ctx_.clock(), "db", name,
                   sim::kTrackCompute);
    OperatorProfile prof;
    prof.name = name;
    prof.kind = kind;
    const Nanos t0 = ctx_.now();
    const uint64_t rm0 = ctx_.metrics().RemoteMemoryBytes();
    const uint64_t cpu0 = ctx_.metrics().cpu_ops;
    const uint64_t pg0 =
        ctx_.metrics().cache_misses + ctx_.metrics().dirty_writebacks;
    const uint64_t rt0 = ctx_.metrics().retries;
    const uint64_t fb0 = ctx_.metrics().fallbacks;
    const uint64_t rc0 = ctx_.metrics().recovered_pool_writes;
    const uint64_t fe0 = ctx_.metrics().fenced_rpcs;
    if (opts_.ShouldPush(name)) {
      prof.pushed = true;
      const Status st = opts_.runtime->Call(
          ctx_,
          [&](ddc::ExecutionContext& mem_ctx) {
            body(mem_ctx);
            return Status::OK();
          },
          opts_.flags);
      TELEPORT_CHECK(st.ok()) << "pushdown of operator '" << name
                              << "' failed: " << st;
    } else {
      body(ctx_);
    }
    prof.time_ns = ctx_.now() - t0;
    prof.remote_bytes = ctx_.metrics().RemoteMemoryBytes() - rm0;
    prof.cpu_ops = ctx_.metrics().cpu_ops - cpu0;
    prof.remote_pages = ctx_.metrics().cache_misses +
                        ctx_.metrics().dirty_writebacks - pg0;
    prof.retries = ctx_.metrics().retries - rt0;
    prof.fallbacks = ctx_.metrics().fallbacks - fb0;
    prof.recovered = ctx_.metrics().recovered_pool_writes - rc0;
    prof.fenced = ctx_.metrics().fenced_rpcs - fe0;
    result_.ops.push_back(std::move(prof));
  }

  void SetRowsOut(uint64_t rows) { result_.ops.back().rows_out = rows; }

  QueryResult Finish(int64_t checksum) {
    result_.checksum = checksum;
    result_.total_ns = ctx_.now() - start_ns_;
    if (opts_.scopes != nullptr) {
      opts_.scopes->Record(ctx_.tenant(),
                           ctx_.metrics().Diff(start_metrics_),
                           result_.total_ns);
    }
    return std::move(result_);
  }

 private:
  ddc::ExecutionContext& ctx_;
  const QueryOptions& opts_;
  Nanos start_ns_;
  sim::Metrics start_metrics_;
  QueryResult result_;
};

}  // namespace

std::string_view OpKindToString(OpKind k) {
  switch (k) {
    case OpKind::kSelection:
      return "Selection";
    case OpKind::kProjection:
      return "Projection";
    case OpKind::kAggregation:
      return "Aggregation";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kExpression:
      return "Expression";
    case OpKind::kGroupBy:
      return "GroupBy";
  }
  return "Unknown";
}

const OperatorProfile& QueryResult::Op(std::string_view name) const {
  for (const OperatorProfile& p : ops) {
    if (p.name == name) return p;
  }
  TELEPORT_CHECK(false) << "no operator named '" << name << "'";
  __builtin_unreachable();
}

QueryResult RunQFilter(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                       const QueryOptions& opts, int64_t date_bound) {
  ddc::MemorySystem& ms = ctx.memory_system();
  PlanExecutor ex(ctx, opts);

  SelVector sel;
  ex.Run("Selection", OpKind::kSelection, [&](ddc::ExecutionContext& c) {
    sel = SelectCompare(c, db.lineitem.Col("l_shipdate"), CmpOp::kLess,
                        date_bound, 0, nullptr, "qf.sel");
  });
  ex.SetRowsOut(sel.count);

  ddc::VAddr quantities = 0;
  ex.Run("Projection", OpKind::kProjection, [&](ddc::ExecutionContext& c) {
    quantities = ProjectGather(c, db.lineitem.Col("l_quantity"), sel,
                               "qf.quantity");
  });
  ex.SetRowsOut(sel.count);

  int64_t sum = 0;
  ex.Run("Aggregation", OpKind::kAggregation, [&](ddc::ExecutionContext& c) {
    sum = AggrSum(c, ms, quantities, sel.count);
  });
  ex.SetRowsOut(1);

  return ex.Finish(sum);
}

QueryResult RunQ1(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts) {
  ddc::MemorySystem& ms = ctx.memory_system();
  PlanExecutor ex(ctx, opts);
  const int64_t d = kDateDomainDays - 90;  // shipdate <= domain - 90 days

  SelVector sel;
  ex.Run("Selection", OpKind::kSelection, [&](ddc::ExecutionContext& c) {
    sel = SelectCompare(c, db.lineitem.Col("l_shipdate"), CmpOp::kLess, d, 0,
                        nullptr, "q1.sel");
  });
  ex.SetRowsOut(sel.count);

  ddc::VAddr qty = 0, price = 0, disc = 0, flag = 0;
  ex.Run("Projection", OpKind::kProjection, [&](ddc::ExecutionContext& c) {
    qty = ProjectGather(c, db.lineitem.Col("l_quantity"), sel, "q1.qty");
    price = ProjectGather(c, db.lineitem.Col("l_extendedprice"), sel,
                          "q1.price");
    disc = ProjectGather(c, db.lineitem.Col("l_discount"), sel, "q1.disc");
    flag = ProjectGather(c, db.lineitem.Col("l_returnflag"), sel, "q1.flag");
  });
  ex.SetRowsOut(sel.count);

  ddc::VAddr revenue = 0, ones = 0;
  ex.Run("Expression", OpKind::kExpression, [&](ddc::ExecutionContext& c) {
    revenue = ExprRevenue(c, ms, price, disc, sel.count, "q1.revenue");
    ones = ms.space().Alloc(std::max<uint64_t>(8, sel.count * 8), "q1.ones");
    for (uint64_t i = 0; i < sel.count; ++i) {
      c.Store<int64_t>(ones + i * 8, 1);
      c.ChargeCpu(1);
    }
  });
  ex.SetRowsOut(sel.count);

  constexpr uint64_t kFlags = 3;
  int64_t checksum = 0;
  ex.Run("Aggregation(group)", OpKind::kGroupBy,
         [&](ddc::ExecutionContext& c) {
           const ddc::VAddr sum_qty =
               GroupSumDense(c, ms, flag, qty, sel.count, kFlags, "q1.g_qty");
           const ddc::VAddr sum_rev = GroupSumDense(
               c, ms, flag, revenue, sel.count, kFlags, "q1.g_rev");
           const ddc::VAddr counts = GroupSumDense(
               c, ms, flag, ones, sel.count, kFlags, "q1.g_cnt");
           checksum = ChecksumDenseGroups(c, ms, sum_qty, kFlags) +
                      ChecksumDenseGroups(c, ms, sum_rev, kFlags) +
                      ChecksumDenseGroups(c, ms, counts, kFlags);
         });
  ex.SetRowsOut(kFlags);

  return ex.Finish(checksum);
}

QueryResult RunQ6(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts) {
  ddc::MemorySystem& ms = ctx.memory_system();
  PlanExecutor ex(ctx, opts);
  const int64_t d1 = 2 * kDaysPerYear;  // one TPC-H year

  SelVector sel_date;
  ex.Run("Selection(shipdate)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_date = SelectCompare(c, db.lineitem.Col("l_shipdate"),
                                    CmpOp::kRange, d1, d1 + kDaysPerYear - 1,
                                    nullptr, "q6.sel_date");
         });
  ex.SetRowsOut(sel_date.count);

  SelVector sel_disc;
  ex.Run("Selection(discount)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_disc = SelectCompare(c, db.lineitem.Col("l_discount"),
                                    CmpOp::kRange, 5, 7, &sel_date,
                                    "q6.sel_disc");
         });
  ex.SetRowsOut(sel_disc.count);

  SelVector sel_qty;
  ex.Run("Selection(quantity)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_qty = SelectCompare(c, db.lineitem.Col("l_quantity"),
                                   CmpOp::kLess, 24, 0, &sel_disc,
                                   "q6.sel_qty");
         });
  ex.SetRowsOut(sel_qty.count);

  ddc::VAddr price = 0, disc = 0;
  ex.Run("Projection", OpKind::kProjection, [&](ddc::ExecutionContext& c) {
    price = ProjectGather(c, db.lineitem.Col("l_extendedprice"), sel_qty,
                          "q6.price");
    disc = ProjectGather(c, db.lineitem.Col("l_discount"), sel_qty,
                         "q6.disc");
  });
  ex.SetRowsOut(sel_qty.count);

  ddc::VAddr revenue = 0;
  ex.Run("Expression", OpKind::kExpression, [&](ddc::ExecutionContext& c) {
    revenue = ExprMulScaled(c, ms, price, disc, sel_qty.count, 100,
                            "q6.revenue");
  });
  ex.SetRowsOut(sel_qty.count);

  int64_t sum = 0;
  ex.Run("Aggregation", OpKind::kAggregation, [&](ddc::ExecutionContext& c) {
    sum = AggrSum(c, ms, revenue, sel_qty.count);
  });
  ex.SetRowsOut(1);

  return ex.Finish(sum);
}

QueryResult RunQ3(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts) {
  ddc::MemorySystem& ms = ctx.memory_system();
  PlanExecutor ex(ctx, opts);
  const int64_t d = kDateDomainDays / 2;  // the Q3 pivot date

  SelVector sel_cust;
  ex.Run("Selection(customer)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_cust = SelectCompare(c, db.customer.Col("c_mktsegment"),
                                    CmpOp::kEqual, kSegmentBuilding, 0,
                                    nullptr, "q3.sel_cust");
         });
  ex.SetRowsOut(sel_cust.count);

  SelVector sel_ord;
  ex.Run("Selection(orderdate)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_ord = SelectCompare(c, db.orders.Col("o_orderdate"),
                                   CmpOp::kLess, d, 0, nullptr, "q3.sel_ord");
         });
  ex.SetRowsOut(sel_ord.count);

  JoinResult j_cust;
  ex.Run("HashJoin(customer)", OpKind::kHashJoin,
         [&](ddc::ExecutionContext& c) {
           const HashTable ht = HashBuild(c, ms, db.customer.Col("c_custkey"),
                                          &sel_cust, "q3.ht_cust");
           j_cust = HashProbe(c, ms, db.orders.Col("o_custkey"), &sel_ord, ht,
                              "q3.j_cust");
         });
  ex.SetRowsOut(j_cust.count);

  SelVector sel_line;
  ex.Run("Selection(shipdate)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_line = SelectCompare(c, db.lineitem.Col("l_shipdate"),
                                    CmpOp::kGreater, d, 0, nullptr,
                                    "q3.sel_line");
         });
  ex.SetRowsOut(sel_line.count);

  JoinResult j_ord;
  ex.Run("HashJoin(orders)", OpKind::kHashJoin,
         [&](ddc::ExecutionContext& c) {
           const SelVector matched{j_cust.probe_rows, j_cust.count};
           const HashTable ht = HashBuild(c, ms, db.orders.Col("o_orderkey"),
                                          &matched, "q3.ht_ord");
           j_ord = HashProbe(c, ms, db.lineitem.Col("l_orderkey"), &sel_line,
                             ht, "q3.j_ord");
         });
  ex.SetRowsOut(j_ord.count);

  const SelVector line_rows{j_ord.probe_rows, j_ord.count};
  ddc::VAddr price = 0, disc = 0, okeys = 0;
  ex.Run("Projection", OpKind::kProjection, [&](ddc::ExecutionContext& c) {
    price = ProjectGather(c, db.lineitem.Col("l_extendedprice"), line_rows,
                          "q3.price");
    disc = ProjectGather(c, db.lineitem.Col("l_discount"), line_rows,
                         "q3.disc");
    okeys = ProjectGather(c, db.lineitem.Col("l_orderkey"), line_rows,
                          "q3.okeys");
  });
  ex.SetRowsOut(j_ord.count);

  ddc::VAddr revenue = 0;
  ex.Run("Expression", OpKind::kExpression, [&](ddc::ExecutionContext& c) {
    revenue = ExprRevenue(c, ms, price, disc, j_ord.count, "q3.revenue");
  });
  ex.SetRowsOut(j_ord.count);

  GroupHashResult groups;
  int64_t checksum = 0;
  ex.Run("GroupBy", OpKind::kGroupBy, [&](ddc::ExecutionContext& c) {
    groups = GroupSumHash(c, ms, okeys, revenue, j_ord.count, "q3.groups");
    checksum = ChecksumHashGroups(c, ms, groups);
  });
  ex.SetRowsOut(groups.groups);

  return ex.Finish(checksum);
}

QueryResult RunQ9(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts) {
  ddc::MemorySystem& ms = ctx.memory_system();
  PlanExecutor ex(ctx, opts);
  constexpr int64_t kCompositeShift = 1 << 20;

  SelVector sel_part;
  ex.Run("Selection(p_name)", OpKind::kSelection,
         [&](ddc::ExecutionContext& c) {
           sel_part = SelectStrContains(c, db.part.StrCol("p_name"), "green",
                                        nullptr, "q9.sel_part");
         });
  ex.SetRowsOut(sel_part.count);

  JoinResult j_part;
  ex.Run("HashJoin(part)", OpKind::kHashJoin, [&](ddc::ExecutionContext& c) {
    const HashTable ht = HashBuild(c, ms, db.part.Col("p_partkey"), &sel_part,
                                   "q9.ht_part");
    j_part = HashProbe(c, ms, db.lineitem.Col("l_partkey"), nullptr, ht,
                       "q9.j_part");
  });
  ex.SetRowsOut(j_part.count);

  const SelVector line1{j_part.probe_rows, j_part.count};
  JoinResult j_ps;
  ex.Run("HashJoin(partsupp)", OpKind::kHashJoin,
         [&](ddc::ExecutionContext& c) {
           const HashTable ht = HashBuildComposite(
               c, ms, db.partsupp.Col("ps_partkey"),
               db.partsupp.Col("ps_suppkey"), kCompositeShift, nullptr,
               "q9.ht_ps");
           j_ps = HashProbeComposite(c, ms, db.lineitem.Col("l_partkey"),
                                     db.lineitem.Col("l_suppkey"),
                                     kCompositeShift, &line1, ht, "q9.j_ps");
         });
  ex.SetRowsOut(j_ps.count);

  const SelVector line2{j_ps.probe_rows, j_ps.count};
  JoinResult j_supp;
  ex.Run("HashJoin(supplier)", OpKind::kHashJoin,
         [&](ddc::ExecutionContext& c) {
           const HashTable ht = HashBuild(c, ms, db.supplier.Col("s_suppkey"),
                                          nullptr, "q9.ht_supp");
           j_supp = HashProbe(c, ms, db.lineitem.Col("l_suppkey"), &line2, ht,
                              "q9.j_supp");
         });
  ex.SetRowsOut(j_supp.count);

  ddc::VAddr order_rows = 0;
  ex.Run("MergeJoin(orders)", OpKind::kMergeJoin,
         [&](ddc::ExecutionContext& c) {
           order_rows = MergeJoinDense(c, ms, db.lineitem.Col("l_orderkey"),
                                       line2, db.orders.rows, "q9.orows");
         });
  ex.SetRowsOut(j_ps.count);

  const uint64_t n = j_ps.count;
  ddc::VAddr price = 0, disc = 0, qty = 0, cost = 0, nation = 0, odate = 0;
  ex.Run("Projection", OpKind::kProjection, [&](ddc::ExecutionContext& c) {
    price = ProjectGather(c, db.lineitem.Col("l_extendedprice"), line2,
                          "q9.price");
    disc = ProjectGather(c, db.lineitem.Col("l_discount"), line2, "q9.disc");
    qty = ProjectGather(c, db.lineitem.Col("l_quantity"), line2, "q9.qty");
    const SelVector ps_rows{j_ps.build_rows, j_ps.count};
    cost = ProjectGather(c, db.partsupp.Col("ps_supplycost"), ps_rows,
                         "q9.cost");
    const SelVector supp_rows{j_supp.build_rows, j_supp.count};
    nation = ProjectGather(c, db.supplier.Col("s_nationkey"), supp_rows,
                           "q9.nation");
    const SelVector o_rows{order_rows, n};
    odate = ProjectGather(c, db.orders.Col("o_orderdate"), o_rows,
                          "q9.odate");
  });
  ex.SetRowsOut(n);

  ddc::VAddr amount = 0, gkeys = 0;
  ex.Run("Expression", OpKind::kExpression, [&](ddc::ExecutionContext& c) {
    amount = ExprAmount(c, ms, price, disc, cost, qty, n, "q9.amount");
    // Group key: nation * 8 + year(o_orderdate); 25 nations x 8 years.
    gkeys = ms.space().Alloc(std::max<uint64_t>(8, n * 8), "q9.gkeys");
    for (uint64_t i = 0; i < n; ++i) {
      const int64_t nat = c.Load<int64_t>(nation + i * 8);
      const int64_t year = c.Load<int64_t>(odate + i * 8) / kDaysPerYear;
      c.Store<int64_t>(gkeys + i * 8, nat * 8 + year);
      c.ChargeCpu(14);  // division by days-per-year dominates
    }
  });
  ex.SetRowsOut(n);

  constexpr uint64_t kDomain = 25 * 8;
  ddc::VAddr groups = 0;
  int64_t checksum = 0;
  ex.Run("Aggregation(group)", OpKind::kGroupBy,
         [&](ddc::ExecutionContext& c) {
           groups = GroupSumDense(c, ms, gkeys, amount, n, kDomain,
                                  "q9.groups");
           checksum = ChecksumDenseGroups(c, ms, groups, kDomain);
         });
  ex.SetRowsOut(kDomain);

  return ex.Finish(checksum);
}

std::set<std::string> DefaultTeleportOps(std::string_view query) {
  // The bandwidth-intensive operators §5.1/§7.1 pushes for each query.
  if (query == "qfilter") {
    return {"Selection", "Projection"};
  }
  if (query == "q1") {
    return {"Selection", "Projection"};
  }
  if (query == "q6") {
    return {"Selection(shipdate)", "Selection(discount)",
            "Selection(quantity)", "Projection"};
  }
  if (query == "q3") {
    return {"Selection(shipdate)", "HashJoin(orders)", "Projection"};
  }
  if (query == "q9") {
    return {"Selection(p_name)", "HashJoin(part)", "HashJoin(partsupp)",
            "HashJoin(supplier)", "Projection"};
  }
  TELEPORT_CHECK(false) << "unknown query '" << query << "'";
  __builtin_unreachable();
}

std::vector<std::string> RankByMemoryIntensity(const QueryResult& profile) {
  std::vector<const OperatorProfile*> ops;
  ops.reserve(profile.ops.size());
  for (const OperatorProfile& p : profile.ops) ops.push_back(&p);
  std::stable_sort(ops.begin(), ops.end(),
                   [](const OperatorProfile* a, const OperatorProfile* b) {
                     return a->MemoryIntensity() > b->MemoryIntensity();
                   });
  std::vector<std::string> names;
  names.reserve(ops.size());
  for (const OperatorProfile* p : ops) names.push_back(p->name);
  return names;
}

}  // namespace teleport::db
