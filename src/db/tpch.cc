#include "db/tpch.h"

#include <array>
#include <string>

#include "common/rng.h"

namespace teleport::db {

namespace {

/// Word list for p_name; "green" appears in roughly 1/17 of part names
/// (TPC-H's '%green%' predicate selects ~5% of parts).
constexpr std::array<std::string_view, 17> kNameWords = {
    "almond", "antique", "aquamarine", "azure",  "beige",  "bisque",
    "black",  "blanched", "blue",      "green",  "coral",  "cornflower",
    "cream",  "cyan",     "dark",      "dodger", "drab"};

constexpr std::array<std::string_view, 25> kNationNames = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",       "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",        "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",       "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",        "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};

}  // namespace

uint64_t EstimateTpchBytes(const TpchConfig& c) {
  const uint64_t i64 = sizeof(int64_t);
  uint64_t b = 0;
  b += c.LineitemRows() * 8 * i64;
  b += c.OrdersRows() * 4 * i64;
  b += c.CustomerRows() * 2 * i64;
  b += c.PartRows() * (1 * i64 + 32);
  b += c.SupplierRows() * 2 * i64;
  b += c.PartSuppRows() * 3 * i64;
  b += TpchConfig::kNationRows * (1 * i64 + 16);
  return b;
}

std::unique_ptr<TpchDatabase> GenerateTpch(ddc::MemorySystem* ms,
                                           const TpchConfig& config) {
  auto db = std::make_unique<TpchDatabase>();
  db->config = config;
  Rng rng(config.seed);

  // --- nation -------------------------------------------------------------
  db->nation.name = "nation";
  db->nation.rows = TpchConfig::kNationRows;
  auto& n_nationkey = db->nation.AddColumn(ms, "n_nationkey");
  auto& n_name = db->nation.AddStringColumn(ms, "n_name", 16);
  for (uint64_t i = 0; i < db->nation.rows; ++i) {
    n_nationkey.raw()[i] = static_cast<int64_t>(i);
    n_name.RawSet(i, kNationNames[i]);
  }

  // --- supplier -------------------------------------------------------------
  db->supplier.name = "supplier";
  db->supplier.rows = config.SupplierRows();
  auto& s_suppkey = db->supplier.AddColumn(ms, "s_suppkey");
  auto& s_nationkey = db->supplier.AddColumn(ms, "s_nationkey");
  for (uint64_t i = 0; i < db->supplier.rows; ++i) {
    s_suppkey.raw()[i] = static_cast<int64_t>(i);
    s_nationkey.raw()[i] = static_cast<int64_t>(rng.Uniform(25));
  }

  // --- part -----------------------------------------------------------------
  db->part.name = "part";
  db->part.rows = config.PartRows();
  auto& p_partkey = db->part.AddColumn(ms, "p_partkey");
  auto& p_name = db->part.AddStringColumn(ms, "p_name", 32);
  for (uint64_t i = 0; i < db->part.rows; ++i) {
    p_partkey.raw()[i] = static_cast<int64_t>(i);
    std::string name;
    for (int w = 0; w < 3; ++w) {
      if (w) name += ' ';
      name += kNameWords[rng.Uniform(kNameWords.size())];
    }
    p_name.RawSet(i, name);
  }

  // --- partsupp ---------------------------------------------------------------
  // Four suppliers per part, deterministic assignment like TPC-H's
  // (partkey + i*step) % suppliers formula.
  db->partsupp.name = "partsupp";
  db->partsupp.rows = config.PartSuppRows();
  auto& ps_partkey = db->partsupp.AddColumn(ms, "ps_partkey");
  auto& ps_suppkey = db->partsupp.AddColumn(ms, "ps_suppkey");
  auto& ps_supplycost = db->partsupp.AddColumn(ms, "ps_supplycost");
  const uint64_t suppliers = db->supplier.rows;
  for (uint64_t i = 0; i < db->partsupp.rows; ++i) {
    const uint64_t pk = i / 4;
    const uint64_t which = i % 4;
    ps_partkey.raw()[i] = static_cast<int64_t>(pk);
    ps_suppkey.raw()[i] =
        static_cast<int64_t>((pk + which * (suppliers / 4 + 1)) % suppliers);
    ps_supplycost.raw()[i] = static_cast<int64_t>(100 + rng.Uniform(99900));
  }

  // --- customer ----------------------------------------------------------------
  db->customer.name = "customer";
  db->customer.rows = config.CustomerRows();
  auto& c_custkey = db->customer.AddColumn(ms, "c_custkey");
  auto& c_mktsegment = db->customer.AddColumn(ms, "c_mktsegment");
  for (uint64_t i = 0; i < db->customer.rows; ++i) {
    c_custkey.raw()[i] = static_cast<int64_t>(i);
    c_mktsegment.raw()[i] = static_cast<int64_t>(rng.Uniform(kNumSegments));
  }

  // --- orders ---------------------------------------------------------------
  db->orders.name = "orders";
  db->orders.rows = config.OrdersRows();
  auto& o_orderkey = db->orders.AddColumn(ms, "o_orderkey");
  auto& o_custkey = db->orders.AddColumn(ms, "o_custkey");
  auto& o_orderdate = db->orders.AddColumn(ms, "o_orderdate");
  auto& o_shippriority = db->orders.AddColumn(ms, "o_shippriority");
  for (uint64_t i = 0; i < db->orders.rows; ++i) {
    o_orderkey.raw()[i] = static_cast<int64_t>(i);  // dense, sorted
    o_custkey.raw()[i] = static_cast<int64_t>(rng.Uniform(db->customer.rows));
    // Leave >= 151 days of headroom so every l_shipdate fits the domain.
    o_orderdate.raw()[i] =
        static_cast<int64_t>(rng.Uniform(kDateDomainDays - 151));
    o_shippriority.raw()[i] = 0;
  }

  // --- lineitem -------------------------------------------------------------
  // Lines are generated order by order, so l_orderkey is sorted — the
  // physical order TPC-H dbgen produces, required by the Q9 merge join.
  db->lineitem.name = "lineitem";
  db->lineitem.rows = config.LineitemRows();
  auto& l_orderkey = db->lineitem.AddColumn(ms, "l_orderkey");
  auto& l_partkey = db->lineitem.AddColumn(ms, "l_partkey");
  auto& l_suppkey = db->lineitem.AddColumn(ms, "l_suppkey");
  auto& l_quantity = db->lineitem.AddColumn(ms, "l_quantity");
  auto& l_extendedprice = db->lineitem.AddColumn(ms, "l_extendedprice");
  auto& l_discount = db->lineitem.AddColumn(ms, "l_discount");
  auto& l_shipdate = db->lineitem.AddColumn(ms, "l_shipdate");
  auto& l_returnflag = db->lineitem.AddColumn(ms, "l_returnflag");
  const uint64_t lines = db->lineitem.rows;
  const uint64_t orders = db->orders.rows;
  for (uint64_t i = 0; i < lines; ++i) {
    // Spread lines evenly over orders (average 4 per order), keeping the
    // orderkey sequence non-decreasing.
    const uint64_t ok = i * orders / lines;
    l_orderkey.raw()[i] = static_cast<int64_t>(ok);
    const uint64_t pk = rng.Uniform(db->part.rows);
    l_partkey.raw()[i] = static_cast<int64_t>(pk);
    // Pick one of the part's four suppliers so the partsupp join matches.
    const uint64_t which = rng.Uniform(4);
    l_suppkey.raw()[i] =
        static_cast<int64_t>((pk + which * (suppliers / 4 + 1)) % suppliers);
    l_quantity.raw()[i] = static_cast<int64_t>(1 + rng.Uniform(50));
    l_extendedprice.raw()[i] = static_cast<int64_t>(90000 + rng.Uniform(9000000));
    l_discount.raw()[i] = static_cast<int64_t>(rng.Uniform(11));
    l_shipdate.raw()[i] =
        o_orderdate.raw()[ok] + static_cast<int64_t>(1 + rng.Uniform(150));
    l_returnflag.raw()[i] = static_cast<int64_t>(rng.Uniform(3));
  }

  ms->SeedData();
  return db;
}

}  // namespace teleport::db
