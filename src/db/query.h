#ifndef TELEPORT_DB_QUERY_H_
#define TELEPORT_DB_QUERY_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "db/operators.h"
#include "db/tpch.h"
#include "sim/tenant_scopes.h"
#include "teleport/pushdown.h"

namespace teleport::db {

/// Physical operator kinds appearing in the reproduced plans (the Fig 10
/// vocabulary).
enum class OpKind {
  kSelection,
  kProjection,
  kAggregation,
  kHashJoin,
  kMergeJoin,
  kExpression,
  kGroupBy,
};

std::string_view OpKindToString(OpKind k);

/// Per-operator measurement collected during a query run: wall time on the
/// caller's virtual clock, remote-memory traffic attributed to the
/// operator, and whether it executed via pushdown. The basis of Figs 10,
/// 12, 18 and the §7.4 memory-intensity metric.
struct OperatorProfile {
  std::string name;
  OpKind kind = OpKind::kSelection;
  Nanos time_ns = 0;
  uint64_t remote_bytes = 0;
  uint64_t remote_pages = 0;  ///< pages moved between pools
  uint64_t cpu_ops = 0;       ///< simple operations charged by the kernel
  uint64_t rows_out = 0;
  bool pushed = false;
  uint64_t retries = 0;    ///< RPC attempts repeated after injected drops
  uint64_t fallbacks = 0;  ///< pushdowns re-run locally (§3.2 escape hatch)
  uint64_t recovered = 0;  ///< journaled writes replayed by pool recoveries
  uint64_t fenced = 0;     ///< stale-epoch admissions re-tried (PR6 fencing)

  /// §7.4 memory intensity: remote traffic per second of execution.
  double MemoryIntensity() const {
    return time_ns == 0 ? 0.0
                        : static_cast<double>(remote_bytes) /
                              ToSeconds(time_ns);
  }
};

/// Result of one query execution.
struct QueryResult {
  int64_t checksum = 0;   ///< platform-independent result digest
  Nanos total_ns = 0;     ///< caller wall time for the whole plan
  std::vector<OperatorProfile> ops;

  const OperatorProfile& Op(std::string_view name) const;
};

/// How to execute a plan: with `runtime` set, operators whose names appear
/// in `push_ops` (or all of them if `push_all`) run via the pushdown
/// syscall; everything else executes in the calling context.
struct QueryOptions {
  tp::PushdownRuntime* runtime = nullptr;
  std::set<std::string> push_ops;
  bool push_all = false;
  tp::PushdownFlags flags;

  /// Multi-tenant attribution (PR7): when set, the whole run's
  /// context-metrics diff and end-to-end latency are recorded into the
  /// calling context's tenant scope.
  sim::TenantScopes* scopes = nullptr;

  bool ShouldPush(const std::string& op_name) const {
    return runtime != nullptr &&
           (push_all || push_ops.count(op_name) > 0);
  }
};

/// Q_filter (§5.1):
///   SELECT SUM(l_quantity) FROM lineitem WHERE l_shipdate < $DATE
/// Plan: Selection -> Projection -> Aggregation (the Fig 12 operators).
QueryResult RunQFilter(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                       const QueryOptions& opts,
                       int64_t date_bound = kDateDomainDays / 2);

/// TPC-H Q1 (pricing summary report): selection over lineitem, wide
/// projection, revenue expression, and a grouped aggregation by
/// l_returnflag computing three aggregates.
QueryResult RunQ1(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts);

/// TPC-H Q6 (forecasting revenue change): three chained selections over
/// lineitem, a projection, an expression, and a sum.
QueryResult RunQ6(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts);

/// TPC-H Q3 (shipping priority): customer/orders/lineitem joins with a
/// GROUP BY l_orderkey.
QueryResult RunQ3(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts);

/// TPC-H Q9 (product type profit): the paper's most expensive query —
/// five-table join with a LIKE selection, merge join on the physical
/// lineitem order, profit expression, and nation x year aggregation.
/// Exactly eight profiled operators, matching §7.4's pushdown-level sweep.
QueryResult RunQ9(ddc::ExecutionContext& ctx, const TpchDatabase& db,
                  const QueryOptions& opts);

/// The operators §5/§7 pushes for each query on the TELEPORT platform
/// (the bandwidth-intensive subset, not the whole plan).
std::set<std::string> DefaultTeleportOps(std::string_view query);

/// Orders a query's operators by decreasing §7.4 memory intensity, using a
/// profiling run's result (typically from the base DDC).
std::vector<std::string> RankByMemoryIntensity(const QueryResult& profile);

}  // namespace teleport::db

#endif  // TELEPORT_DB_QUERY_H_
