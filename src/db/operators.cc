#include "db/operators.h"

#include <algorithm>

#include "common/logging.h"

namespace teleport::db {

namespace {

constexpr uint64_t kSlotBytes = 16;  // {int64 key, int64 row}

uint64_t NextPow2(uint64_t v) {
  uint64_t p = 16;
  while (p < v) p <<= 1;
  return p;
}

/// 64-bit finalizer (splitmix64); cheap and well-mixed.
uint64_t HashKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Iterates candidate rows: calls fn(row) for each row in `cand`, or for
/// every row in [0, rows) when cand is null. The candidate list itself is
/// read through its own cursor (it lives in DDC space too and is walked
/// sequentially).
template <typename Fn>
void ForEachCandidate(ddc::ExecutionContext& ctx, const SelVector* cand,
                      uint64_t rows, Fn&& fn) {
  if (cand == nullptr) {
    for (uint64_t r = 0; r < rows; ++r) fn(r);
    return;
  }
  ddc::Cursor cand_cur(ctx);
  for (uint64_t i = 0; i < cand->count; ++i) {
    const int64_t row = cand_cur.Load<int64_t>(cand->addr + i * 8);
    fn(static_cast<uint64_t>(row));
  }
}

HashTable AllocHashTable(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                         uint64_t n, const std::string& out_name) {
  HashTable ht;
  ht.slots = NextPow2(std::max<uint64_t>(16, 2 * n));
  ht.addr = ms.space().Alloc(ht.slots * kSlotBytes, out_name);
  // Initialize empty sentinels (MonetDB also materializes its hash part).
  ddc::Cursor init_cur(ctx);
  for (uint64_t s = 0; s < ht.slots; ++s) {
    init_cur.Store<int64_t>(ht.addr + s * kSlotBytes, HashTable::kEmptyKey);
  }
  ctx.ChargeCpu(ht.slots);
  return ht;
}

void HashInsert(ddc::ExecutionContext& ctx, const HashTable& ht, int64_t key,
                int64_t row) {
  const uint64_t mask = ht.slots - 1;
  uint64_t s = HashKey(key) & mask;
  while (true) {
    const int64_t existing = ctx.Load<int64_t>(ht.addr + s * kSlotBytes);
    ctx.ChargeCpu(3);
    if (existing == HashTable::kEmptyKey) {
      ctx.Store<int64_t>(ht.addr + s * kSlotBytes, key);
      ctx.Store<int64_t>(ht.addr + s * kSlotBytes + 8, row);
      return;
    }
    TELEPORT_DCHECK(existing != key) << "duplicate build key " << key;
    s = (s + 1) & mask;
  }
}

/// Returns the build row for `key`, or -1.
int64_t HashLookup(ddc::ExecutionContext& ctx, const HashTable& ht,
                   int64_t key) {
  const uint64_t mask = ht.slots - 1;
  uint64_t s = HashKey(key) & mask;
  while (true) {
    const int64_t existing = ctx.Load<int64_t>(ht.addr + s * kSlotBytes);
    ctx.ChargeCpu(3);
    if (existing == HashTable::kEmptyKey) return -1;
    if (existing == key) {
      return ctx.Load<int64_t>(ht.addr + s * kSlotBytes + 8);
    }
    s = (s + 1) & mask;
  }
}

}  // namespace

SelVector SelectCompare(ddc::ExecutionContext& ctx, const Column& col,
                        CmpOp op, int64_t lo, int64_t hi,
                        const SelVector* cand, const std::string& out_name) {
  ddc::MemorySystem& ms = ctx.memory_system();
  const uint64_t max_out = cand ? cand->count : col.rows();
  SelVector out;
  out.addr = ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name);
  ddc::Cursor col_cur(ctx);
  ddc::Cursor out_cur(ctx);
  ForEachCandidate(ctx, cand, col.rows(), [&](uint64_t row) {
    const int64_t v = col.Get(col_cur, row);
    bool match = false;
    switch (op) {
      case CmpOp::kLess:
        match = v < lo;
        break;
      case CmpOp::kGreater:
        match = v > lo;
        break;
      case CmpOp::kRange:
        match = v >= lo && v <= hi;
        break;
      case CmpOp::kEqual:
        match = v == lo;
        break;
    }
    ctx.ChargeCpu(2);
    if (match) {
      out_cur.Store<int64_t>(out.addr + out.count * 8,
                             static_cast<int64_t>(row));
      ++out.count;
    }
  });
  return out;
}

SelVector SelectStrContains(ddc::ExecutionContext& ctx,
                            const StringColumn& col, std::string_view needle,
                            const SelVector* cand,
                            const std::string& out_name) {
  ddc::MemorySystem& ms = ctx.memory_system();
  const uint64_t max_out = cand ? cand->count : col.rows();
  SelVector out;
  out.addr = ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name);
  ddc::Cursor col_cur(ctx);
  ddc::Cursor out_cur(ctx);
  ForEachCandidate(ctx, cand, col.rows(), [&](uint64_t row) {
    const std::string_view s = col.Get(col_cur, row);
    ctx.ChargeCpu(col.width());  // byte-wise substring scan
    if (s.find(needle) != std::string_view::npos) {
      out_cur.Store<int64_t>(out.addr + out.count * 8,
                             static_cast<int64_t>(row));
      ++out.count;
    }
  });
  return out;
}

ddc::VAddr ProjectGather(ddc::ExecutionContext& ctx, const Column& col,
                         const SelVector& sel, const std::string& out_name) {
  ddc::MemorySystem& ms = ctx.memory_system();
  const ddc::VAddr out =
      ms.space().Alloc(std::max<uint64_t>(8, sel.count * 8), out_name);
  ddc::Cursor sel_cur(ctx);
  ddc::Cursor col_cur(ctx);
  ddc::Cursor out_cur(ctx);
  for (uint64_t i = 0; i < sel.count; ++i) {
    const int64_t row = sel_cur.Load<int64_t>(sel.addr + i * 8);
    // Gathered rows ascend (selection vectors are sorted), so the column
    // cursor still sees page-local runs.
    const int64_t v = col.Get(col_cur, static_cast<uint64_t>(row));
    out_cur.Store<int64_t>(out + i * 8, v);
    ctx.ChargeCpu(1);
  }
  return out;
}

int64_t AggrSum(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                ddc::VAddr values, uint64_t count) {
  (void)ms;
  int64_t sum = 0;
  ddc::Cursor cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    sum += cur.Load<int64_t>(values + i * 8);
    ctx.ChargeCpu(1);
  }
  return sum;
}

int64_t AggrSumColumn(ddc::ExecutionContext& ctx, const Column& col,
                      const SelVector* cand) {
  int64_t sum = 0;
  ddc::Cursor col_cur(ctx);
  ForEachCandidate(ctx, cand, col.rows(), [&](uint64_t row) {
    sum += col.Get(col_cur, row);
    ctx.ChargeCpu(1);
  });
  return sum;
}

ddc::VAddr ExprMulScaled(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                         ddc::VAddr a, ddc::VAddr b, uint64_t count,
                         int64_t div, const std::string& out_name) {
  const ddc::VAddr out =
      ms.space().Alloc(std::max<uint64_t>(8, count * 8), out_name);
  ddc::Cursor a_cur(ctx);
  ddc::Cursor b_cur(ctx);
  ddc::Cursor out_cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t va = a_cur.Load<int64_t>(a + i * 8);
    const int64_t vb = b_cur.Load<int64_t>(b + i * 8);
    out_cur.Store<int64_t>(out + i * 8, va * vb / div);
    ctx.ChargeCpu(45);  // interpreted BAT passes incl. integer division
  }
  return out;
}

ddc::VAddr ExprRevenue(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                       ddc::VAddr price, ddc::VAddr discount, uint64_t count,
                       const std::string& out_name) {
  const ddc::VAddr out =
      ms.space().Alloc(std::max<uint64_t>(8, count * 8), out_name);
  ddc::Cursor p_cur(ctx);
  ddc::Cursor d_cur(ctx);
  ddc::Cursor out_cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t p = p_cur.Load<int64_t>(price + i * 8);
    const int64_t d = d_cur.Load<int64_t>(discount + i * 8);
    out_cur.Store<int64_t>(out + i * 8, p * (100 - d) / 100);
    ctx.ChargeCpu(45);  // interpreted BAT passes incl. integer division
  }
  return out;
}

ddc::VAddr ExprAmount(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                      ddc::VAddr price, ddc::VAddr discount, ddc::VAddr cost,
                      ddc::VAddr quantity, uint64_t count,
                      const std::string& out_name) {
  const ddc::VAddr out =
      ms.space().Alloc(std::max<uint64_t>(8, count * 8), out_name);
  ddc::Cursor p_cur(ctx);
  ddc::Cursor d_cur(ctx);
  ddc::Cursor c_cur(ctx);
  ddc::Cursor q_cur(ctx);
  ddc::Cursor out_cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t p = p_cur.Load<int64_t>(price + i * 8);
    const int64_t d = d_cur.Load<int64_t>(discount + i * 8);
    const int64_t c = c_cur.Load<int64_t>(cost + i * 8);
    const int64_t q = q_cur.Load<int64_t>(quantity + i * 8);
    out_cur.Store<int64_t>(out + i * 8, p * (100 - d) / 100 - c * q);
    ctx.ChargeCpu(60);  // several BAT passes: two muls, div, subtract
  }
  return out;
}

HashTable HashBuild(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                    const Column& keys, const SelVector* cand,
                    const std::string& out_name) {
  const uint64_t n = cand ? cand->count : keys.rows();
  HashTable ht = AllocHashTable(ctx, ms, n, out_name);
  // Build keys stream sequentially; the table probes stay on the plain
  // context path (random slots would only churn a pin).
  ddc::Cursor key_cur(ctx);
  ForEachCandidate(ctx, cand, keys.rows(), [&](uint64_t row) {
    HashInsert(ctx, ht, keys.Get(key_cur, row), static_cast<int64_t>(row));
  });
  return ht;
}

HashTable HashBuildComposite(ddc::ExecutionContext& ctx,
                             ddc::MemorySystem& ms, const Column& hi,
                             const Column& lo, int64_t shift,
                             const SelVector* cand,
                             const std::string& out_name) {
  const uint64_t n = cand ? cand->count : hi.rows();
  HashTable ht = AllocHashTable(ctx, ms, n, out_name);
  ddc::Cursor hi_cur(ctx);
  ddc::Cursor lo_cur(ctx);
  ForEachCandidate(ctx, cand, hi.rows(), [&](uint64_t row) {
    const int64_t key = hi.Get(hi_cur, row) * shift + lo.Get(lo_cur, row);
    HashInsert(ctx, ht, key, static_cast<int64_t>(row));
  });
  return ht;
}

JoinResult HashProbe(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                     const Column& probe_keys, const SelVector* cand,
                     const HashTable& ht, const std::string& out_name) {
  const uint64_t max_out = cand ? cand->count : probe_keys.rows();
  JoinResult out;
  out.probe_rows =
      ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name + ".probe");
  out.build_rows =
      ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name + ".build");
  ddc::Cursor key_cur(ctx);
  ddc::Cursor probe_out_cur(ctx);
  ddc::Cursor build_out_cur(ctx);
  ForEachCandidate(ctx, cand, probe_keys.rows(), [&](uint64_t row) {
    const int64_t build_row =
        HashLookup(ctx, ht, probe_keys.Get(key_cur, row));
    if (build_row >= 0) {
      probe_out_cur.Store<int64_t>(out.probe_rows + out.count * 8,
                                   static_cast<int64_t>(row));
      build_out_cur.Store<int64_t>(out.build_rows + out.count * 8, build_row);
      ++out.count;
    }
  });
  return out;
}

JoinResult HashProbeComposite(ddc::ExecutionContext& ctx,
                              ddc::MemorySystem& ms, const Column& hi,
                              const Column& lo, int64_t shift,
                              const SelVector* cand, const HashTable& ht,
                              const std::string& out_name) {
  const uint64_t max_out = cand ? cand->count : hi.rows();
  JoinResult out;
  out.probe_rows =
      ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name + ".probe");
  out.build_rows =
      ms.space().Alloc(std::max<uint64_t>(8, max_out * 8), out_name + ".build");
  ddc::Cursor hi_cur(ctx);
  ddc::Cursor lo_cur(ctx);
  ddc::Cursor probe_out_cur(ctx);
  ddc::Cursor build_out_cur(ctx);
  ForEachCandidate(ctx, cand, hi.rows(), [&](uint64_t row) {
    const int64_t key = hi.Get(hi_cur, row) * shift + lo.Get(lo_cur, row);
    const int64_t build_row = HashLookup(ctx, ht, key);
    if (build_row >= 0) {
      probe_out_cur.Store<int64_t>(out.probe_rows + out.count * 8,
                                   static_cast<int64_t>(row));
      build_out_cur.Store<int64_t>(out.build_rows + out.count * 8, build_row);
      ++out.count;
    }
  });
  return out;
}

ddc::VAddr MergeJoinDense(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                          const Column& fk, const SelVector& sel,
                          uint64_t dim_rows, const std::string& out_name) {
  const ddc::VAddr out =
      ms.space().Alloc(std::max<uint64_t>(8, sel.count * 8), out_name);
  // Both cursors advance monotonically: sel rows ascend, so fk[sel[i]] is
  // non-decreasing (lineitem is physically ordered by l_orderkey), and the
  // dense dimension is its own sorted key.
  int64_t dim_cursor = -1;
  ddc::Cursor sel_cur(ctx);
  ddc::Cursor fk_cur(ctx);
  ddc::Cursor out_cur(ctx);
  for (uint64_t i = 0; i < sel.count; ++i) {
    const int64_t row = sel_cur.Load<int64_t>(sel.addr + i * 8);
    const int64_t key = fk.Get(fk_cur, static_cast<uint64_t>(row));
    TELEPORT_DCHECK(key >= dim_cursor) << "merge join input not sorted";
    TELEPORT_DCHECK(key < static_cast<int64_t>(dim_rows));
    dim_cursor = key;
    ctx.ChargeCpu(3);
    out_cur.Store<int64_t>(out + i * 8, key);  // dense dim: row id == key
  }
  return out;
}

ddc::VAddr GroupSumDense(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                         ddc::VAddr keys, ddc::VAddr values, uint64_t count,
                         uint64_t domain, const std::string& out_name) {
  const ddc::VAddr out = ms.space().Alloc(domain * 8, out_name);
  ddc::Cursor key_cur(ctx);
  ddc::Cursor val_cur(ctx);
  ddc::Cursor acc_cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t k = key_cur.Load<int64_t>(keys + i * 8);
    const int64_t v = val_cur.Load<int64_t>(values + i * 8);
    TELEPORT_DCHECK(k >= 0 && k < static_cast<int64_t>(domain));
    const ddc::VAddr slot = out + static_cast<uint64_t>(k) * 8;
    acc_cur.Store<int64_t>(slot, acc_cur.Load<int64_t>(slot) + v);
    ctx.ChargeCpu(6);
  }
  return out;
}

GroupHashResult GroupSumHash(ddc::ExecutionContext& ctx,
                             ddc::MemorySystem& ms, ddc::VAddr keys,
                             ddc::VAddr values, uint64_t count,
                             const std::string& out_name) {
  GroupHashResult g;
  g.slots = NextPow2(std::max<uint64_t>(16, 2 * count));
  g.addr = ms.space().Alloc(g.slots * kSlotBytes, out_name);
  ddc::Cursor init_cur(ctx);
  for (uint64_t s = 0; s < g.slots; ++s) {
    init_cur.Store<int64_t>(g.addr + s * kSlotBytes, HashTable::kEmptyKey);
  }
  ctx.ChargeCpu(g.slots);
  const uint64_t mask = g.slots - 1;
  ddc::Cursor key_cur(ctx);
  ddc::Cursor val_cur(ctx);
  for (uint64_t i = 0; i < count; ++i) {
    const int64_t k = key_cur.Load<int64_t>(keys + i * 8);
    const int64_t v = val_cur.Load<int64_t>(values + i * 8);
    uint64_t s = HashKey(k) & mask;
    while (true) {
      const int64_t existing = ctx.Load<int64_t>(g.addr + s * kSlotBytes);
      ctx.ChargeCpu(3);
      if (existing == HashTable::kEmptyKey) {
        ctx.Store<int64_t>(g.addr + s * kSlotBytes, k);
        ctx.Store<int64_t>(g.addr + s * kSlotBytes + 8, v);
        ++g.groups;
        break;
      }
      if (existing == k) {
        const ddc::VAddr slot = g.addr + s * kSlotBytes + 8;
        ctx.Store<int64_t>(slot, ctx.Load<int64_t>(slot) + v);
        break;
      }
      s = (s + 1) & mask;
    }
  }
  return g;
}

int64_t ChecksumDenseGroups(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                            ddc::VAddr groups, uint64_t domain) {
  (void)ms;
  int64_t checksum = 0;
  ddc::Cursor cur(ctx);
  for (uint64_t k = 0; k < domain; ++k) {
    const int64_t v = cur.Load<int64_t>(groups + k * 8);
    checksum += static_cast<int64_t>(k + 1) * (v + 1'000'003);
    ctx.ChargeCpu(2);
  }
  return checksum;
}

int64_t ChecksumHashGroups(ddc::ExecutionContext& ctx, ddc::MemorySystem& ms,
                           const GroupHashResult& g) {
  (void)ms;
  int64_t checksum = 0;
  ddc::Cursor cur(ctx);
  for (uint64_t s = 0; s < g.slots; ++s) {
    const int64_t k = cur.Load<int64_t>(g.addr + s * kSlotBytes);
    if (k == HashTable::kEmptyKey) continue;
    const int64_t v = cur.Load<int64_t>(g.addr + s * kSlotBytes + 8);
    checksum += (k + 7) * (v + 1'000'003);  // order independent
    ctx.ChargeCpu(2);
  }
  return checksum;
}

}  // namespace teleport::db
