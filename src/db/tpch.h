#ifndef TELEPORT_DB_TPCH_H_
#define TELEPORT_DB_TPCH_H_

#include <cstdint>
#include <memory>

#include "db/column.h"
#include "ddc/memory_system.h"

namespace teleport::db {

/// Scale configuration for the synthetic TPC-H-like dataset.
///
/// The paper runs TPC-H at scale factors 50 and 200 on a testbed with a
/// 128 GB memory pool; we scale row counts down (default 1% of the official
/// rows per SF) so benches run in seconds, and size the compute cache as
/// the same *fraction* of the working set the paper uses — the quantity the
/// shapes actually depend on.
struct TpchConfig {
  double scale_factor = 1.0;
  /// Lineitem rows per unit scale factor (official TPC-H: 6,000,000).
  uint64_t lineitem_per_sf = 60'000;
  uint64_t seed = 2022;

  uint64_t LineitemRows() const {
    return static_cast<uint64_t>(scale_factor *
                                 static_cast<double>(lineitem_per_sf));
  }
  uint64_t OrdersRows() const { return LineitemRows() / 4; }
  uint64_t CustomerRows() const { return OrdersRows() / 10; }
  uint64_t PartRows() const { return LineitemRows() / 30; }
  uint64_t SupplierRows() const { return PartRows() / 20 + 25; }
  uint64_t PartSuppRows() const { return PartRows() * 4; }
  static constexpr uint64_t kNationRows = 25;
};

/// Date encoding: days since 1992-01-01; the order-date domain spans 7
/// years as in TPC-H.
inline constexpr int64_t kDateDomainDays = 2557;
inline constexpr int64_t kDaysPerYear = 365;

/// Market segments (c_mktsegment dictionary codes).
inline constexpr int64_t kSegmentBuilding = 0;
inline constexpr int64_t kNumSegments = 5;

/// The synthetic TPC-H-like database. Tables carry exactly the columns the
/// reproduced queries (Q_filter, Q1, Q3, Q6, Q9) touch:
///
///   lineitem(l_orderkey*, l_partkey, l_suppkey, l_quantity,
///            l_extendedprice, l_discount, l_shipdate, l_returnflag)
///   orders(o_orderkey*, o_custkey, o_orderdate, o_shippriority)
///   customer(c_custkey*, c_mktsegment)
///   part(p_partkey*, p_name[str])
///   supplier(s_suppkey*, s_nationkey)
///   partsupp(ps_partkey, ps_suppkey, ps_supplycost)
///   nation(n_nationkey*, n_name[str])
///
/// Starred keys are dense and sorted (lineitem is ordered by l_orderkey,
/// matching TPC-H physical order — this is what makes the Q9 order/lineitem
/// merge join valid). Prices are in cents; discounts in percent (0..10).
struct TpchDatabase {
  TpchConfig config;
  Table lineitem;
  Table orders;
  Table customer;
  Table part;
  Table supplier;
  Table partsupp;
  Table nation;

  /// Sum of all column bytes (the query working set upper bound).
  uint64_t TotalBytes() const {
    return lineitem.TotalBytes() + orders.TotalBytes() +
           customer.TotalBytes() + part.TotalBytes() + supplier.TotalBytes() +
           partsupp.TotalBytes() + nation.TotalBytes();
  }
};

/// Generates the dataset into `ms`'s address space (untimed), then stages it
/// with SeedData(). Deterministic in `config.seed`.
std::unique_ptr<TpchDatabase> GenerateTpch(ddc::MemorySystem* ms,
                                           const TpchConfig& config);

/// Bytes the generator will allocate for `config` — callers size the
/// MemorySystem's address-space capacity with headroom for temporaries.
uint64_t EstimateTpchBytes(const TpchConfig& config);

}  // namespace teleport::db

#endif  // TELEPORT_DB_TPCH_H_
