#ifndef TELEPORT_GRAPH_GRAPH_H_
#define TELEPORT_GRAPH_GRAPH_H_

#include <cstdint>

#include "ddc/memory_system.h"

namespace teleport::graph {

/// Configuration of the synthetic power-law graph. Substitutes for the
/// paper's real-world social-network input [52]: what the GAS engine's cost
/// shape depends on is the skewed degree distribution and random neighbor
/// access, both preserved by preferential attachment.
struct GraphConfig {
  uint64_t vertices = 100'000;
  uint64_t avg_degree = 10;
  uint64_t seed = 7;
  /// Edge weights drawn uniformly from [1, max_weight]; 1 = unweighted.
  int64_t max_weight = 100;
};

/// A directed graph in CSR form, stored in the simulated address space.
/// offsets has V+1 entries; targets/weights have E entries each (int64).
struct Graph {
  uint64_t vertices = 0;
  uint64_t edges = 0;
  ddc::VAddr offsets = 0;
  ddc::VAddr targets = 0;
  ddc::VAddr weights = 0;

  /// Timed CSR accessors.
  int64_t OutDegree(ddc::ExecutionContext& ctx, uint64_t v) const {
    const int64_t begin = ctx.Load<int64_t>(offsets + v * 8);
    const int64_t end = ctx.Load<int64_t>(offsets + (v + 1) * 8);
    return end - begin;
  }

  uint64_t TotalBytes() const { return (vertices + 1 + 2 * edges) * 8; }
};

/// Generates a power-law graph with preferential attachment (each new
/// vertex links to `avg_degree` endpoints biased toward earlier, by then
/// better-connected vertices) and seeds it into the platform's backing
/// store. Deterministic in config.seed. The graph is connected from vertex
/// 0 (every vertex has an incoming path from lower ids via a guaranteed
/// chain edge), which keeps SSSP/CC/Reachability workloads non-trivial.
Graph GenerateGraph(ddc::MemorySystem* ms, const GraphConfig& config);

/// Bytes GenerateGraph will allocate — for sizing the address space.
uint64_t EstimateGraphBytes(const GraphConfig& config);

}  // namespace teleport::graph

#endif  // TELEPORT_GRAPH_GRAPH_H_
