#ifndef TELEPORT_GRAPH_ENGINE_H_
#define TELEPORT_GRAPH_ENGINE_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sim/tenant_scopes.h"
#include "teleport/pushdown.h"

namespace teleport::graph {

/// PowerGraph-style execution phases (§5.2). Finalize runs once; the
/// gather/apply/scatter triple repeats until the frontier drains.
enum class Phase { kFinalize, kGather, kApply, kScatter };

std::string_view PhaseToString(Phase p);

/// Per-phase aggregate over all iterations: wall time and remote traffic —
/// the Fig 10 (center) breakdown.
struct PhaseProfile {
  Phase phase = Phase::kFinalize;
  Nanos time_ns = 0;
  uint64_t remote_bytes = 0;
  uint64_t invocations = 0;
  bool pushed = false;
  uint64_t retries = 0;    ///< RPC attempts repeated after injected drops
  uint64_t fallbacks = 0;  ///< pushdowns re-run locally (§3.2 escape hatch)
  uint64_t recovered = 0;  ///< journaled writes replayed by pool recoveries
  uint64_t fenced = 0;     ///< stale-epoch admissions re-tried (PR6 fencing)
};

/// Execution options: which phases to Teleport (§5.2 pushes finalize,
/// gather, and scatter), and how many workers finalize partitions for.
struct GasOptions {
  tp::PushdownRuntime* runtime = nullptr;
  std::set<Phase> push_phases;
  int workers = 8;
  int max_iterations = 10'000;
  tp::PushdownFlags flags;

  /// Multi-tenant attribution (PR7): when set, the whole run's
  /// context-metrics diff and end-to-end latency are recorded into the
  /// calling context's tenant scope.
  sim::TenantScopes* scopes = nullptr;

  bool ShouldPush(Phase p) const {
    return runtime != nullptr && push_phases.count(p) > 0;
  }
};

/// Result of a GAS run. `values` is the per-vertex result array in DDC
/// space; checksum digests it platform-independently.
struct GasResult {
  ddc::VAddr values = 0;
  int64_t checksum = 0;
  Nanos total_ns = 0;
  int iterations = 0;
  std::vector<PhaseProfile> phases;  // finalize, gather, apply, scatter

  const PhaseProfile& Profile(Phase p) const;
};

/// Vertex program hooks (gather-apply-scatter with message combining).
/// All state is int64; PageRank uses 1e6 fixed-point.
class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Initial vertex value.
  virtual int64_t InitValue(uint64_t vertex) const = 0;
  /// Combiner identity (e.g. +inf for min, 0 for sum).
  virtual int64_t IdentityMessage() const = 0;
  /// Message combiner (min, sum, ...). Must be associative/commutative.
  virtual int64_t Combine(int64_t a, int64_t b) const = 0;
  /// Applies a combined message; returns true if the vertex activated
  /// (its new value must then be scattered).
  virtual bool Apply(int64_t old_value, int64_t msg,
                     int64_t* new_value) const = 0;
  /// Message sent along an out-edge of an active vertex.
  virtual int64_t ScatterMessage(int64_t value, int64_t weight,
                                 int64_t out_degree) const = 0;
  /// Vertices active in the first iteration (before any message).
  virtual bool InitiallyActive(uint64_t vertex) const = 0;
  /// Fixed-iteration programs (PageRank) activate every vertex each round.
  virtual bool AlwaysActive() const { return false; }
};

/// Runs a vertex program on the engine: load (already done by the
/// generator) -> finalize (partition + shuffle, §5.2) -> iterate
/// gather/apply/scatter until the frontier is empty or max_iterations.
GasResult RunGas(ddc::ExecutionContext& ctx, const Graph& g,
                 const VertexProgram& program, const GasOptions& opts);

/// Single-source shortest paths from vertex 0 (Bellman-Ford style rounds).
GasResult RunSssp(ddc::ExecutionContext& ctx, const Graph& g,
                  const GasOptions& opts);

/// Single-source reachability from vertex 0.
GasResult RunReachability(ddc::ExecutionContext& ctx, const Graph& g,
                          const GasOptions& opts);

/// Connected components (min-label propagation over the underlying
/// undirected structure approximated by out-edges; the generator's chain
/// edge makes the graph connected, so labels converge to 0).
GasResult RunConnectedComponents(ddc::ExecutionContext& ctx, const Graph& g,
                                 const GasOptions& opts);

/// PageRank with `iterations` fixed rounds, 1e6 fixed-point.
GasResult RunPageRank(ddc::ExecutionContext& ctx, const Graph& g,
                      const GasOptions& opts, int iterations = 10);

/// Single-source widest path from vertex 0: the bottleneck (max-min)
/// semiring — value[v] is the largest minimum edge weight over any path
/// from the source. Exercises a different combiner than SSSP.
GasResult RunWidestPath(ddc::ExecutionContext& ctx, const Graph& g,
                        const GasOptions& opts);

/// The phases §5.2 pushes down on the TELEPORT platform.
std::set<Phase> DefaultTeleportPhases();

}  // namespace teleport::graph

#endif  // TELEPORT_GRAPH_ENGINE_H_
