#include "graph/graph.h"

#include <vector>

#include "common/rng.h"

namespace teleport::graph {

uint64_t EstimateGraphBytes(const GraphConfig& c) {
  const uint64_t edges = c.vertices * c.avg_degree;
  return (c.vertices + 1 + 2 * edges) * 8;
}

Graph GenerateGraph(ddc::MemorySystem* ms, const GraphConfig& config) {
  Rng rng(config.seed);
  const uint64_t v_count = config.vertices;
  const uint64_t deg = config.avg_degree;
  TELEPORT_CHECK(v_count >= 2 && deg >= 1);

  // Host-side adjacency build (untimed; this is data generation).
  // Preferential attachment: vertex v links to `deg` targets, each either a
  // uniformly random earlier vertex or the endpoint of a random existing
  // edge (which biases toward high-degree vertices). One guaranteed edge
  // v-1 -> v keeps the graph connected from vertex 0.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> adj(v_count);
  std::vector<int64_t> endpoint_pool;
  endpoint_pool.reserve(v_count * deg);
  endpoint_pool.push_back(0);
  uint64_t edges = 0;
  for (uint64_t v = 1; v < v_count; ++v) {
    for (uint64_t d = 0; d < deg; ++d) {
      int64_t from, to;
      if (d == 0) {
        from = static_cast<int64_t>(v - 1);
        to = static_cast<int64_t>(v);
      } else {
        // The other endpoint is an earlier vertex, either uniform or a
        // random endpoint of an existing edge (degree-biased). The edge
        // direction is random, so high-degree early vertices grow forward
        // shortcuts and the directed diameter stays logarithmic — like a
        // real social graph.
        int64_t other = rng.Bernoulli(0.5)
                            ? static_cast<int64_t>(rng.Uniform(v))
                            : endpoint_pool[rng.Uniform(endpoint_pool.size())];
        if (other == static_cast<int64_t>(v)) {
          other = static_cast<int64_t>(v - 1);
        }
        if (rng.Bernoulli(0.5)) {
          from = static_cast<int64_t>(v);
          to = other;
        } else {
          from = other;
          to = static_cast<int64_t>(v);
        }
      }
      const int64_t w =
          config.max_weight <= 1
              ? 1
              : 1 + static_cast<int64_t>(
                        rng.Uniform(static_cast<uint64_t>(config.max_weight)));
      adj[static_cast<uint64_t>(from)].push_back({to, w});
      endpoint_pool.push_back(to);
      ++edges;
    }
  }

  Graph g;
  g.vertices = v_count;
  g.edges = edges;
  g.offsets = ms->space().Alloc((v_count + 1) * 8, "graph.offsets");
  g.targets = ms->space().Alloc(edges * 8, "graph.targets");
  g.weights = ms->space().Alloc(edges * 8, "graph.weights");

  auto* off = static_cast<int64_t*>(
      ms->space().HostPtr(g.offsets, (v_count + 1) * 8));
  auto* tgt = static_cast<int64_t*>(ms->space().HostPtr(g.targets, edges * 8));
  auto* wgt = static_cast<int64_t*>(ms->space().HostPtr(g.weights, edges * 8));
  uint64_t e = 0;
  for (uint64_t v = 0; v < v_count; ++v) {
    off[v] = static_cast<int64_t>(e);
    for (const auto& [to, w] : adj[v]) {
      tgt[e] = to;
      wgt[e] = w;
      ++e;
    }
  }
  off[v_count] = static_cast<int64_t>(e);
  TELEPORT_CHECK(e == edges);

  ms->SeedData();
  return g;
}

}  // namespace teleport::graph
