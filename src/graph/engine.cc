#include "graph/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/tracer.h"

namespace teleport::graph {

namespace {

constexpr int64_t kInf = int64_t{1} << 50;

/// Aggregates phase bodies into per-phase profiles, routing each invocation
/// through the pushdown syscall when the options say so.
class PhaseRunner {
 public:
  PhaseRunner(ddc::ExecutionContext& ctx, const GasOptions& opts)
      : ctx_(ctx),
        opts_(opts),
        start_ns_(ctx.now()),
        start_metrics_(ctx.metrics()) {
    for (Phase p : {Phase::kFinalize, Phase::kGather, Phase::kApply,
                    Phase::kScatter}) {
      PhaseProfile prof;
      prof.phase = p;
      prof.pushed = opts.ShouldPush(p);
      profiles_.push_back(prof);
    }
  }

  template <typename Fn>
  void Run(Phase phase, Fn&& body) {
    // One span per invocation — i.e. per superstep for the Gather / Apply /
    // Scatter phases of the GAS loop.
    TELEPORT_TRACE(ctx_.memory_system().tracer(), ctx_.clock(), "graph",
                   PhaseToString(phase), sim::kTrackCompute);
    PhaseProfile& prof = profiles_[static_cast<size_t>(phase)];
    const Nanos t0 = ctx_.now();
    const uint64_t rm0 = ctx_.metrics().RemoteMemoryBytes();
    const uint64_t rt0 = ctx_.metrics().retries;
    const uint64_t fb0 = ctx_.metrics().fallbacks;
    const uint64_t rc0 = ctx_.metrics().recovered_pool_writes;
    const uint64_t fe0 = ctx_.metrics().fenced_rpcs;
    if (opts_.ShouldPush(phase)) {
      const Status st = opts_.runtime->Call(
          ctx_,
          [&](ddc::ExecutionContext& mem_ctx) {
            body(mem_ctx);
            return Status::OK();
          },
          opts_.flags);
      TELEPORT_CHECK(st.ok()) << "pushdown of phase "
                              << PhaseToString(phase) << " failed: " << st;
    } else {
      body(ctx_);
    }
    prof.time_ns += ctx_.now() - t0;
    prof.remote_bytes += ctx_.metrics().RemoteMemoryBytes() - rm0;
    prof.retries += ctx_.metrics().retries - rt0;
    prof.fallbacks += ctx_.metrics().fallbacks - fb0;
    prof.recovered += ctx_.metrics().recovered_pool_writes - rc0;
    prof.fenced += ctx_.metrics().fenced_rpcs - fe0;
    ++prof.invocations;
  }

  GasResult Finish(ddc::VAddr values, int64_t checksum, int iterations) {
    GasResult r;
    r.values = values;
    r.checksum = checksum;
    r.iterations = iterations;
    r.total_ns = ctx_.now() - start_ns_;
    r.phases = std::move(profiles_);
    if (opts_.scopes != nullptr) {
      opts_.scopes->Record(ctx_.tenant(),
                           ctx_.metrics().Diff(start_metrics_), r.total_ns);
    }
    return r;
  }

 private:
  ddc::ExecutionContext& ctx_;
  const GasOptions& opts_;
  Nanos start_ns_;
  sim::Metrics start_metrics_;
  std::vector<PhaseProfile> profiles_;
};

}  // namespace

std::string_view PhaseToString(Phase p) {
  switch (p) {
    case Phase::kFinalize:
      return "Finalize";
    case Phase::kGather:
      return "Gather";
    case Phase::kApply:
      return "Apply";
    case Phase::kScatter:
      return "Scatter";
  }
  return "Unknown";
}

const PhaseProfile& GasResult::Profile(Phase p) const {
  for (const PhaseProfile& prof : phases) {
    if (prof.phase == p) return prof;
  }
  TELEPORT_CHECK(false) << "missing phase profile";
  __builtin_unreachable();
}

GasResult RunGas(ddc::ExecutionContext& ctx, const Graph& g,
                 const VertexProgram& program, const GasOptions& opts) {
  ddc::MemorySystem& ms = ctx.memory_system();
  const uint64_t v_count = g.vertices;
  const uint64_t e_count = g.edges;
  const int workers = std::max(1, opts.workers);

  // Engine state in DDC space.
  const ddc::VAddr values = ms.space().Alloc(v_count * 8, "gas.values");
  const ddc::VAddr msgs = ms.space().Alloc(v_count * 8, "gas.msgs");
  const ddc::VAddr frontier = ms.space().Alloc(v_count * 8, "gas.frontier");
  const ddc::VAddr frontier_msgs =
      ms.space().Alloc(v_count * 8, "gas.frontier_msgs");
  // Finalize output: worker-partitioned edge arrays.
  const ddc::VAddr f_start = ms.space().Alloc(v_count * 8, "gas.f_start");
  const ddc::VAddr f_deg = ms.space().Alloc(v_count * 8, "gas.f_deg");
  const ddc::VAddr f_targets = ms.space().Alloc(e_count * 8, "gas.f_targets");
  const ddc::VAddr f_weights = ms.space().Alloc(e_count * 8, "gas.f_weights");

  PhaseRunner runner(ctx, opts);
  const int64_t identity = program.IdentityMessage();

  // --- Finalize: initialize state, partition vertices round-robin over
  // workers, and shuffle edges into per-worker regions (§5.2).
  runner.Run(Phase::kFinalize, [&](ddc::ExecutionContext& c) {
    // Per-worker edge counts (first pass over the CSR).
    std::vector<uint64_t> worker_edges(static_cast<size_t>(workers), 0);
    ddc::Cursor off_cur(c);
    for (uint64_t v = 0; v < v_count; ++v) {
      const int64_t begin = off_cur.Load<int64_t>(g.offsets + v * 8);
      const int64_t end = off_cur.Load<int64_t>(g.offsets + (v + 1) * 8);
      worker_edges[v % static_cast<uint64_t>(workers)] +=
          static_cast<uint64_t>(end - begin);
      c.ChargeCpu(2);
    }
    std::vector<uint64_t> cursor(static_cast<size_t>(workers), 0);
    uint64_t base = 0;
    for (int w = 0; w < workers; ++w) {
      cursor[static_cast<size_t>(w)] = base;
      base += worker_edges[static_cast<size_t>(w)];
    }
    // Second pass: copy each vertex's edges into its worker's region and
    // initialize vertex state. Each array walks its own cursor; the
    // per-worker output regions advance sequentially within a vertex.
    ddc::Cursor val_cur(c);
    ddc::Cursor msg_cur(c);
    ddc::Cursor fs_cur(c);
    ddc::Cursor fd_cur(c);
    ddc::Cursor tgt_cur(c);
    ddc::Cursor wgt_cur(c);
    ddc::Cursor ft_cur(c);
    ddc::Cursor fw_cur(c);
    for (uint64_t v = 0; v < v_count; ++v) {
      val_cur.Store<int64_t>(values + v * 8, program.InitValue(v));
      msg_cur.Store<int64_t>(msgs + v * 8, identity);
      const int64_t begin = off_cur.Load<int64_t>(g.offsets + v * 8);
      const int64_t end = off_cur.Load<int64_t>(g.offsets + (v + 1) * 8);
      uint64_t& cur = cursor[v % static_cast<uint64_t>(workers)];
      fs_cur.Store<int64_t>(f_start + v * 8, static_cast<int64_t>(cur));
      fd_cur.Store<int64_t>(f_deg + v * 8, end - begin);
      for (int64_t e = begin; e < end; ++e) {
        const int64_t t = tgt_cur.Load<int64_t>(g.targets + e * 8);
        const int64_t w = wgt_cur.Load<int64_t>(g.weights + e * 8);
        ft_cur.Store<int64_t>(f_targets + cur * 8, t);
        fw_cur.Store<int64_t>(f_weights + cur * 8, w);
        ++cur;
        c.ChargeCpu(2);
      }
      c.ChargeCpu(4);
    }
  });

  // Initial frontier.
  uint64_t frontier_count = 0;
  {
    auto& c = ctx;  // initial activation is bookkeeping, not a GAS phase
    ddc::Cursor fr_cur(c);
    for (uint64_t v = 0; v < v_count; ++v) {
      if (program.InitiallyActive(v)) {
        fr_cur.Store<int64_t>(frontier + frontier_count * 8,
                              static_cast<int64_t>(v));
        ++frontier_count;
      }
      c.ChargeCpu(1);
    }
  }

  int iterations = 0;
  while (frontier_count > 0 && iterations < opts.max_iterations) {
    ++iterations;

    // --- Scatter: active vertices push messages along their (shuffled)
    // out-edges; random writes into msgs[] are the expensive part (§5.2).
    runner.Run(Phase::kScatter, [&](ddc::ExecutionContext& c) {
      // Frontier ids are ascending, so the per-vertex arrays stream too;
      // the msgs[] scatter is genuinely random and stays on the plain
      // context path (a pin would only churn).
      ddc::Cursor fr_cur(c);
      ddc::Cursor val_cur(c);
      ddc::Cursor fs_cur(c);
      ddc::Cursor fd_cur(c);
      ddc::Cursor ft_cur(c);
      ddc::Cursor fw_cur(c);
      for (uint64_t i = 0; i < frontier_count; ++i) {
        const int64_t v = fr_cur.Load<int64_t>(frontier + i * 8);
        const int64_t value = val_cur.Load<int64_t>(values + v * 8);
        const int64_t start = fs_cur.Load<int64_t>(f_start + v * 8);
        const int64_t deg = fd_cur.Load<int64_t>(f_deg + v * 8);
        for (int64_t e = start; e < start + deg; ++e) {
          const int64_t t = ft_cur.Load<int64_t>(f_targets + e * 8);
          const int64_t w = fw_cur.Load<int64_t>(f_weights + e * 8);
          const int64_t m = program.ScatterMessage(value, w, deg);
          const ddc::VAddr slot = msgs + static_cast<uint64_t>(t) * 8;
          c.Store<int64_t>(slot, program.Combine(c.Load<int64_t>(slot), m));
          c.ChargeCpu(6);
        }
        c.ChargeCpu(4);
      }
    });

    // --- Gather: collect combined messages into the dense frontier-message
    // list and reset the message array.
    uint64_t gathered = 0;
    runner.Run(Phase::kGather, [&](ddc::ExecutionContext& c) {
      ddc::Cursor msg_cur(c);
      ddc::Cursor fr_cur(c);
      ddc::Cursor fm_cur(c);
      for (uint64_t v = 0; v < v_count; ++v) {
        const int64_t m = msg_cur.Load<int64_t>(msgs + v * 8);
        c.ChargeCpu(2);
        if (m != identity) {
          fr_cur.Store<int64_t>(frontier + gathered * 8,
                                static_cast<int64_t>(v));
          fm_cur.Store<int64_t>(frontier_msgs + gathered * 8, m);
          msg_cur.Store<int64_t>(msgs + v * 8, identity);
          ++gathered;
        }
      }
    });

    // --- Apply: run the vertex update; activated vertices form the next
    // scatter frontier (compacted in place).
    uint64_t activated = 0;
    runner.Run(Phase::kApply, [&](ddc::ExecutionContext& c) {
      // The compacted frontier is rewritten in place behind the read
      // position, so reads and writes each keep their own cursor.
      ddc::Cursor fr_cur(c);
      ddc::Cursor fm_cur(c);
      ddc::Cursor val_cur(c);
      ddc::Cursor fout_cur(c);
      for (uint64_t i = 0; i < gathered; ++i) {
        const int64_t v = fr_cur.Load<int64_t>(frontier + i * 8);
        const int64_t m = fm_cur.Load<int64_t>(frontier_msgs + i * 8);
        const int64_t old = val_cur.Load<int64_t>(values + v * 8);
        int64_t updated = old;
        const bool act = program.Apply(old, m, &updated);
        c.ChargeCpu(4);
        if (updated != old) val_cur.Store<int64_t>(values + v * 8, updated);
        if (act) {
          fout_cur.Store<int64_t>(frontier + activated * 8, v);
          ++activated;
        }
      }
    });
    frontier_count = activated;

    if (program.AlwaysActive()) {
      // Fixed-round programs re-activate every vertex.
      frontier_count = v_count;
      ddc::Cursor fr_cur(ctx);
      for (uint64_t v = 0; v < v_count; ++v) {
        fr_cur.Store<int64_t>(frontier + v * 8, static_cast<int64_t>(v));
      }
    }
  }

  // Result digest (order-sensitive in vertex id). Accumulated unsigned:
  // unreached vertices keep large kInf sentinels whose products wrap, and
  // the digest is the two's-complement bit pattern, not an arithmetic sum.
  uint64_t checksum = 0;
  ddc::Cursor sum_cur(ctx);
  for (uint64_t v = 0; v < v_count; ++v) {
    const int64_t value = sum_cur.Load<int64_t>(values + v * 8);
    checksum += (v % 97 + 1) * (static_cast<uint64_t>(value) + 13);
    ctx.ChargeCpu(2);
  }

  return runner.Finish(values, static_cast<int64_t>(checksum), iterations);
}

namespace {

class SsspProgram : public VertexProgram {
 public:
  int64_t InitValue(uint64_t v) const override { return v == 0 ? 0 : kInf; }
  int64_t IdentityMessage() const override { return kInf; }
  int64_t Combine(int64_t a, int64_t b) const override {
    return std::min(a, b);
  }
  bool Apply(int64_t old_value, int64_t msg,
             int64_t* new_value) const override {
    if (msg < old_value) {
      *new_value = msg;
      return true;
    }
    return false;
  }
  int64_t ScatterMessage(int64_t value, int64_t weight,
                         int64_t) const override {
    return value + weight;
  }
  bool InitiallyActive(uint64_t v) const override { return v == 0; }
};

class ReachProgram : public VertexProgram {
 public:
  int64_t InitValue(uint64_t v) const override { return v == 0 ? 1 : 0; }
  int64_t IdentityMessage() const override { return 0; }
  int64_t Combine(int64_t a, int64_t b) const override {
    return std::max(a, b);
  }
  bool Apply(int64_t old_value, int64_t msg,
             int64_t* new_value) const override {
    if (msg > old_value) {
      *new_value = msg;
      return true;
    }
    return false;
  }
  int64_t ScatterMessage(int64_t, int64_t, int64_t) const override {
    return 1;
  }
  bool InitiallyActive(uint64_t v) const override { return v == 0; }
};

class CcProgram : public VertexProgram {
 public:
  int64_t InitValue(uint64_t v) const override {
    return static_cast<int64_t>(v);
  }
  int64_t IdentityMessage() const override { return kInf; }
  int64_t Combine(int64_t a, int64_t b) const override {
    return std::min(a, b);
  }
  bool Apply(int64_t old_value, int64_t msg,
             int64_t* new_value) const override {
    if (msg < old_value) {
      *new_value = msg;
      return true;
    }
    return false;
  }
  int64_t ScatterMessage(int64_t value, int64_t, int64_t) const override {
    return value;
  }
  bool InitiallyActive(uint64_t) const override { return true; }
};

class WidestPathProgram : public VertexProgram {
 public:
  int64_t InitValue(uint64_t v) const override { return v == 0 ? kInf : 0; }
  int64_t IdentityMessage() const override { return 0; }
  int64_t Combine(int64_t a, int64_t b) const override {
    return std::max(a, b);
  }
  bool Apply(int64_t old_value, int64_t msg,
             int64_t* new_value) const override {
    if (msg > old_value) {
      *new_value = msg;
      return true;
    }
    return false;
  }
  int64_t ScatterMessage(int64_t value, int64_t weight,
                         int64_t) const override {
    return std::min(value, weight);
  }
  bool InitiallyActive(uint64_t v) const override { return v == 0; }
};

class PageRankProgram : public VertexProgram {
 public:
  static constexpr int64_t kScale = 1'000'000;

  explicit PageRankProgram(uint64_t vertices) : vertices_(vertices) {}

  int64_t InitValue(uint64_t) const override {
    return kScale / static_cast<int64_t>(vertices_);
  }
  int64_t IdentityMessage() const override { return 0; }
  int64_t Combine(int64_t a, int64_t b) const override { return a + b; }
  bool Apply(int64_t, int64_t msg, int64_t* new_value) const override {
    *new_value =
        (kScale * 15) / (100 * static_cast<int64_t>(vertices_)) +
        (85 * msg) / 100;
    return true;
  }
  int64_t ScatterMessage(int64_t value, int64_t,
                         int64_t out_degree) const override {
    return out_degree == 0 ? 0 : value / out_degree;
  }
  bool InitiallyActive(uint64_t) const override { return true; }
  bool AlwaysActive() const override { return true; }

 private:
  uint64_t vertices_;
};

}  // namespace

GasResult RunSssp(ddc::ExecutionContext& ctx, const Graph& g,
                  const GasOptions& opts) {
  return RunGas(ctx, g, SsspProgram(), opts);
}

GasResult RunReachability(ddc::ExecutionContext& ctx, const Graph& g,
                          const GasOptions& opts) {
  return RunGas(ctx, g, ReachProgram(), opts);
}

GasResult RunConnectedComponents(ddc::ExecutionContext& ctx, const Graph& g,
                                 const GasOptions& opts) {
  return RunGas(ctx, g, CcProgram(), opts);
}

GasResult RunPageRank(ddc::ExecutionContext& ctx, const Graph& g,
                      const GasOptions& opts, int iterations) {
  GasOptions fixed = opts;
  fixed.max_iterations = iterations;
  return RunGas(ctx, g, PageRankProgram(g.vertices), fixed);
}

GasResult RunWidestPath(ddc::ExecutionContext& ctx, const Graph& g,
                        const GasOptions& opts) {
  return RunGas(ctx, g, WidestPathProgram(), opts);
}

std::set<Phase> DefaultTeleportPhases() {
  return {Phase::kFinalize, Phase::kGather, Phase::kScatter};
}

}  // namespace teleport::graph
