#ifndef TELEPORT_DIST_COST_MODEL_H_
#define TELEPORT_DIST_COST_MODEL_H_

#include <cstdint>
#include <string_view>

#include "common/units.h"
#include "sim/cost_model.h"

namespace teleport::dist {

/// Workload profile extracted from a measured single-server run: the input
/// to the distributed cost-of-scaling model used for Fig 1b's reference
/// bars (SparkSQL / Vertica on monolithic servers).
///
/// Substitution note (DESIGN.md): the paper measures real SparkSQL and
/// Vertica deployments; we model them analytically from first principles
/// (partitioned compute + shuffle over the same fabric + framework
/// overheads), with engine constants calibrated so the TPC-H average lands
/// near the paper's reported 1.2x / 2.3x.
struct WorkloadProfile {
  Nanos local_time_ns = 0;      ///< single high-end server execution time
  uint64_t bytes_scanned = 0;   ///< base-table volume read
  uint64_t bytes_shuffled = 0;  ///< operator-boundary intermediate volume
  int num_stages = 3;           ///< pipeline barriers in the plan
};

/// Engine archetypes for the model.
enum class DistEngine {
  /// Coarse-grained batch engine (SparkSQL-like): pipelined whole-stage
  /// execution, moderate shuffle amplification, per-stage scheduling.
  kSparkLike,
  /// Exchange-heavy MPP engine (Vertica-like): repartitioning joins
  /// amplify shuffle volume, finer-grained exchanges.
  kVerticaLike,
};

std::string_view DistEngineToString(DistEngine e);

struct DistConfig {
  /// Shared-nothing workers whose aggregate resources equal the single
  /// server (the Fig 1b framing: "same resources but all in one box").
  int workers = 8;
  sim::CostParams net = sim::CostParams::Default();
};

/// Estimated wall time of the workload on the cluster: partitioned compute
/// (same aggregate CPU, so the compute term equals the local time plus an
/// engine inefficiency factor), all-to-all shuffles of the intermediate
/// volume across the bisection, serialization, and per-stage barriers.
Nanos EstimateDistributedTime(const WorkloadProfile& w, DistEngine engine,
                              const DistConfig& config);

/// Cost of scaling: distributed time / local time (>= 1 in practice).
double CostOfScaling(const WorkloadProfile& w, DistEngine engine,
                     const DistConfig& config);

}  // namespace teleport::dist

#endif  // TELEPORT_DIST_COST_MODEL_H_
