#include "dist/cost_model.h"

#include "common/logging.h"

namespace teleport::dist {

namespace {

/// Engine archetype constants. Calibrated so a TPC-H-like mix (shuffle
/// volume a modest fraction of scan volume) reproduces the paper's 1.2x
/// (SparkSQL) and 2.3x (Vertica) averages.
struct EngineParams {
  double compute_overhead;      ///< framework inefficiency on compute
  double shuffle_amplification; ///< plan-induced repartitioning factor
  double serialization_ns_per_byte;
  Nanos per_stage_barrier_ns;
};

EngineParams ParamsFor(DistEngine e) {
  switch (e) {
    case DistEngine::kSparkLike:
      // Whole-stage codegen keeps compute overhead low; shuffles are
      // written once and read once; scheduling adds per-stage latency.
      return {0.15, 1.0, 0.50, 50 * kMillisecond};
    case DistEngine::kVerticaLike:
      // Repartitioning joins amplify exchanged volume; segmented
      // projections add per-exchange (de)serialization work on every
      // tuple path.
      return {0.50, 8.0, 2.00, 20 * kMillisecond};
  }
  TELEPORT_CHECK(false);
  __builtin_unreachable();
}

}  // namespace

std::string_view DistEngineToString(DistEngine e) {
  switch (e) {
    case DistEngine::kSparkLike:
      return "SparkSQL-like";
    case DistEngine::kVerticaLike:
      return "Vertica-like";
  }
  return "Unknown";
}

Nanos EstimateDistributedTime(const WorkloadProfile& w, DistEngine engine,
                              const DistConfig& config) {
  TELEPORT_CHECK(config.workers >= 1);
  const EngineParams p = ParamsFor(engine);
  const double workers = static_cast<double>(config.workers);

  // Compute: aggregate CPU equals the single server, so ideal partitioned
  // compute time equals the local time; the engine adds its inefficiency.
  const double compute_ns =
      static_cast<double>(w.local_time_ns) * (1.0 + p.compute_overhead);

  // Shuffle: each byte of (amplified) intermediate volume crosses the
  // network with probability (W-1)/W; W NICs move it in parallel.
  const double shuffled =
      static_cast<double>(w.bytes_shuffled) * p.shuffle_amplification;
  const double cross = shuffled * (workers - 1.0) / workers;
  const double wire_ns = cross / (config.net.net_bytes_per_ns * workers);
  const double ser_ns = shuffled * p.serialization_ns_per_byte / workers;

  // Barriers: stage scheduling / exchange setup.
  const double barrier_ns =
      static_cast<double>(w.num_stages) *
      static_cast<double>(p.per_stage_barrier_ns);

  return static_cast<Nanos>(compute_ns + wire_ns + ser_ns + barrier_ns);
}

double CostOfScaling(const WorkloadProfile& w, DistEngine engine,
                     const DistConfig& config) {
  TELEPORT_CHECK(w.local_time_ns > 0);
  return static_cast<double>(EstimateDistributedTime(w, engine, config)) /
         static_cast<double>(w.local_time_ns);
}

}  // namespace teleport::dist
