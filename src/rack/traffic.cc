#include "rack/traffic.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace teleport::rack {

namespace {

/// splitmix64 finalizer: the repo-standard bit mixer for derived seeds and
/// order-independent digests.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t RunKernel(ddc::ExecutionContext& c, WorkloadKind kind,
                   ddc::VAddr slice, uint64_t slice_bytes, int ops,
                   uint64_t kernel_seed) {
  const uint64_t words = slice_bytes / 8;
  TELEPORT_CHECK(words > 0);
  uint64_t digest = 0;
  uint64_t x = Mix(kernel_seed);
  switch (kind) {
    case WorkloadKind::kDb: {
      // Selection + aggregation: a sequential 64-byte-stride scan from a
      // seeded page-aligned start, wrapping inside the slice.
      const uint64_t start = (x % words) * 8;
      for (int op = 0; op < ops; ++op) {
        const uint64_t off = (start + static_cast<uint64_t>(op) * 64) %
                             (words * 8);
        const ddc::VAddr a = slice + (off & ~uint64_t{7});
        digest += static_cast<uint64_t>(c.Load<int64_t>(a)) +
                  static_cast<uint64_t>(op);
        c.ChargeCpu(1);
      }
      break;
    }
    case WorkloadKind::kGraph: {
      // Gather: dependent pointer chase — each loaded value perturbs the
      // next offset, like following CSR targets.
      for (int op = 0; op < ops; ++op) {
        const uint64_t off = (x % words) * 8;
        const uint64_t v = static_cast<uint64_t>(c.Load<int64_t>(slice + off));
        digest += v + off;
        x = Mix(x ^ v);
        c.ChargeCpu(2);
      }
      break;
    }
    case WorkloadKind::kMr: {
      // Map-shuffle: hashed read-modify-write scatter into the slice, the
      // random-access pattern of §5.3.
      for (int op = 0; op < ops; ++op) {
        x = Mix(x);
        const uint64_t off = (x % words) * 8;
        const int64_t v = c.Load<int64_t>(slice + off);
        c.Store<int64_t>(slice + off,
                         v + static_cast<int64_t>(op) + 1);
        digest += off + static_cast<uint64_t>(v);
        c.ChargeCpu(3);
      }
      break;
    }
    case WorkloadKind::kOltp: {
      // Index probe: a root-to-leaf descent over a synthetic radix laid
      // across the slice (one dependent read per level, like src/oltp's
      // inner-node walk), then an OCC-style version-bump RMW on the probed
      // record — a pointer chase that ends on one hot 8-byte write.
      const uint64_t fanout = std::max<uint64_t>(2, words / 64);
      for (int op = 0; op < ops; ++op) {
        x = Mix(x);
        const uint64_t key = x % words;
        uint64_t cursor = 0;
        for (uint64_t span = words; span > 1; span /= fanout) {
          const uint64_t off = ((cursor + key % span) % words) * 8;
          const uint64_t v = static_cast<uint64_t>(c.Load<int64_t>(slice + off));
          digest += v + off;
          cursor = Mix(cursor ^ (key % span)) % words;
          c.ChargeCpu(2);
        }
        const uint64_t roff = (Mix(key) % words) * 8;
        const int64_t rv = c.Load<int64_t>(slice + roff);
        c.Store<int64_t>(slice + roff, rv + 1);
        digest += static_cast<uint64_t>(rv) + roff;
        c.ChargeCpu(2);
      }
      break;
    }
  }
  return digest;
}

std::string_view WorkloadKindToString(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kDb:
      return "db";
    case WorkloadKind::kGraph:
      return "graph";
    case WorkloadKind::kMr:
      return "mr";
    case WorkloadKind::kOltp:
      return "oltp";
  }
  return "unknown";
}

TrafficResult RunOpenLoop(ddc::MemorySystem& ms,
                          tp::PushdownRuntime& runtime,
                          const TrafficConfig& cfg) {
  TELEPORT_CHECK(cfg.tenants >= 1 && cfg.sessions >= 0);
  TELEPORT_CHECK(cfg.slice_pages >= 1 && cfg.ops_per_session >= 1);
  TELEPORT_CHECK(cfg.workload_families >= 1 && cfg.workload_families <= 4);
  const int nodes = ms.compute_nodes();
  const uint64_t page = ms.space().page_size();

  // One private slice per tenant; its first page's shard is the tenant's
  // pushdown home (cross-shard touches still fault shard-by-shard).
  std::vector<ddc::VAddr> slices;
  std::vector<int> homes;
  slices.reserve(static_cast<size_t>(cfg.tenants));
  homes.reserve(static_cast<size_t>(cfg.tenants));
  for (int t = 0; t < cfg.tenants; ++t) {
    if (cfg.shared_slice && t > 0) {
      // Contended mode: everyone fights over tenant 0's slice.
      slices.push_back(slices[0]);
      homes.push_back(homes[0]);
      continue;
    }
    const ddc::VAddr slice = ms.space().Alloc(
        cfg.slice_pages * page, "rack.slice." + std::to_string(t));
    slices.push_back(slice);
    homes.push_back(ms.ShardOf(ms.space().PageOf(slice)));
  }

  // The open-loop schedule: monotone arrivals with seeded jittered gaps,
  // drawn up front in session order so the stream is independent of how
  // service unfolds.
  Rng arrival_rng(Mix(cfg.seed) ^ 0x0a11ULL);
  std::vector<Nanos> arrivals(static_cast<size_t>(cfg.sessions), 0);
  Nanos at = 0;
  for (int i = 0; i < cfg.sessions; ++i) {
    arrivals[static_cast<size_t>(i)] = at;
    double gap = static_cast<double>(cfg.mean_interarrival_ns);
    if (cfg.jitter_frac > 0.0) {
      gap *= 1.0 + cfg.jitter_frac * (2.0 * arrival_rng.NextDouble() - 1.0);
    }
    at += std::max<Nanos>(0, static_cast<Nanos>(gap));
  }

  TrafficResult r;
  r.scopes = sim::TenantScopes(cfg.tenants);
  std::priority_queue<Nanos, std::vector<Nanos>, std::greater<>> inflight;
  Nanos last_end = 0;

  for (int i = 0; i < cfg.sessions; ++i) {
    const int tenant = i % cfg.tenants;
    const int node = tenant % nodes;
    const WorkloadKind kind =
        static_cast<WorkloadKind>(tenant % cfg.workload_families);
    Nanos start = arrivals[static_cast<size_t>(i)];
    while (!inflight.empty() && inflight.top() <= start) inflight.pop();
    if (cfg.max_concurrent > 0 &&
        static_cast<int>(inflight.size()) >= cfg.max_concurrent) {
      // Admission control: hold the arrival until a slot frees.
      ++r.deferred;
      while (static_cast<int>(inflight.size()) >= cfg.max_concurrent) {
        start = std::max(start, inflight.top());
        inflight.pop();
      }
    }

    auto ctx = ms.CreateContext(ddc::Pool::kCompute, node, tenant);
    ctx->clock().Reset(start);
    const sim::Metrics before = ctx->metrics();

    // The client inspects its slice head before shipping the kernel, so
    // every session faults at least one page into its own node's cache and
    // the pushdown then migrates it pool-side (the TELEPORT handoff).
    (void)ctx->Load<int64_t>(slices[static_cast<size_t>(tenant)]);

    tp::PushdownFlags flags;
    flags.home_shard = homes[static_cast<size_t>(tenant)];
    uint64_t digest = 0;
    const ddc::VAddr slice = slices[static_cast<size_t>(tenant)];
    const uint64_t slice_bytes = cfg.slice_pages * page;
    const uint64_t kernel_seed =
        Mix(cfg.seed ^ (static_cast<uint64_t>(i) << 1));
    const Status st = runtime.Call(
        *ctx,
        [&](ddc::ExecutionContext& mem_ctx) {
          digest = RunKernel(mem_ctx, kind, slice, slice_bytes,
                             cfg.ops_per_session, kernel_seed);
          return Status::OK();
        },
        flags);
    if (!st.ok()) {
      ++r.failed;
      digest = Mix(static_cast<uint64_t>(st.code()));
    }
    const Nanos end = ctx->now();
    inflight.push(end);
    last_end = std::max(last_end, end);
    ++r.completed;
    // Commutative fold: the digest set, not the completion order, defines
    // the checksum — bit-identical across schedules by construction.
    r.checksum += Mix(digest ^ (static_cast<uint64_t>(i) * 0x9e37ULL));
    r.scopes.Record(tenant, ctx->metrics().Diff(before), end - start);
  }

  r.makespan_ns = last_end;
  r.completion_fairness = r.scopes.CompletionFairness();
  r.remote_bytes_fairness = r.scopes.RemoteBytesFairness();
  const Histogram merged = r.scopes.MergedLatency();
  r.p50_latency_ns = merged.Percentile(50.0);
  r.p99_latency_ns = merged.Percentile(99.0);
  return r;
}

}  // namespace teleport::rack
