#ifndef TELEPORT_RACK_TRAFFIC_H_
#define TELEPORT_RACK_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "ddc/memory_system.h"
#include "sim/tenant_scopes.h"
#include "teleport/pushdown.h"

namespace teleport::rack {

/// Which engine's access pattern a tenant's sessions reproduce. The rack
/// generator drives the memory system with the same kernels the engines
/// are built from — a db session scans and aggregates, a graph session
/// chases dependent pointers, an mr session shuffles read-modify-writes,
/// an oltp session runs index-probe descents ending in one hot 8-byte
/// version-bump RMW — so hundreds of sessions stay cheap enough to sweep
/// while still exercising every multi-tenant path (per-node caches,
/// per-shard pools, per-link fabric, fencing, admission control).
enum class WorkloadKind { kDb, kGraph, kMr, kOltp };

std::string_view WorkloadKindToString(WorkloadKind k);

/// One session's kernel, shaped after its tenant's engine: db = strided
/// scan + aggregate, graph = dependent pointer chase, mr = hashed
/// read-modify-write scatter, oltp = radix index probe ending in a
/// version-bump RMW. All offsets are 8-byte aligned inside
/// [slice, slice + slice_bytes); the returned digest is a pure function of
/// (kernel_seed, kind, slice contents). Exported so the host-parallel
/// benches can pin exactly this workload to a (node, shard) partition and
/// compare serial vs parallel digests.
uint64_t RunKernel(ddc::ExecutionContext& c, WorkloadKind kind,
                   ddc::VAddr slice, uint64_t slice_bytes, int ops,
                   uint64_t kernel_seed);

/// Open-loop arrival schedule: session i of the run arrives at
/// `i * mean_interarrival_ns` plus seeded jitter, independent of service
/// times (arrivals never wait for completions — the defining property of an
/// open-loop generator). Everything is derived from `seed`, so two runs
/// with equal configs produce bit-identical schedules, digests, and
/// virtual-time accounting.
struct TrafficConfig {
  /// Accounting tenants; tenant t runs the WorkloadKind
  /// t % workload_families and is bound to compute node t % compute_nodes
  /// (its sessions share that node's cache and never migrate pages across
  /// nodes).
  int tenants = 3;
  /// How many WorkloadKind families the tenant→kind mapping cycles over.
  /// The default 3 reproduces the pre-OLTP mix (db/graph/mr) bit-for-bit;
  /// 4 adds kOltp as the fourth family.
  int workload_families = 3;
  /// Total session arrivals across all tenants (session i belongs to
  /// tenant i % tenants).
  int sessions = 100;
  Nanos mean_interarrival_ns = 50 * kMicrosecond;
  /// Jitter half-width as a fraction of the mean (0 = strictly periodic).
  double jitter_frac = 0.5;
  /// Pages of each tenant's private address slice.
  uint64_t slice_pages = 64;
  /// Memory operations issued by one session's kernel.
  int ops_per_session = 256;
  /// Admission-control knob: maximum sessions in flight at once; an arrival
  /// over the limit is held until the earliest completion (counted in
  /// TrafficResult::deferred). 0 = unlimited.
  int max_concurrent = 0;
  /// Contention knob (the rack-scale analogue of Fig 21's rate): when set,
  /// every tenant runs against ONE shared slice instead of its private one,
  /// so sessions of different tenants fight over the same pages, caches,
  /// and home shard.
  bool shared_slice = false;
  uint64_t seed = 1;
};

/// Aggregate outcome of one open-loop run.
struct TrafficResult {
  uint64_t completed = 0;
  /// Sessions that finished with a non-OK status (chaos runs only; the
  /// status code folds into the checksum deterministically).
  uint64_t failed = 0;
  /// Sessions whose start was delayed by the admission-control limit.
  uint64_t deferred = 0;
  /// Virtual time from the first arrival to the last completion.
  Nanos makespan_ns = 0;
  /// Order-independent digest over every session's (id, result) pair: the
  /// same set of session outcomes yields the same checksum under any
  /// completion schedule.
  uint64_t checksum = 0;
  /// Per-tenant accounting (metrics + latency), merged views, and the Jain
  /// fairness indices derived from them.
  sim::TenantScopes scopes{1};
  double completion_fairness = 1.0;
  double remote_bytes_fairness = 1.0;
  /// Merged session-latency percentiles (all tenants), precomputed from
  /// `scopes` so load-latency sweeps read the knee without re-merging
  /// histograms. Under a contended fabric backend p99 diverges from p50 as
  /// offered load approaches a resource's capacity; under net::kIdeal the
  /// two stay within a constant factor at any load.
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
};

/// Runs `cfg.sessions` open-loop sessions against `ms`/`runtime`. Allocates
/// one private `slice_pages` slice per tenant from the system's address
/// space (the caller sizes the space), binds each tenant to a compute node,
/// homes each session's pushdown at the shard that owns the first page it
/// touches, and attributes every session into `TrafficResult::scopes`.
///
/// On a 1x1 rack every session routes through node 0 / shard 0 — the exact
/// legacy paths — so the generator is also the degenerate-rack regression
/// driver.
TrafficResult RunOpenLoop(ddc::MemorySystem& ms,
                          tp::PushdownRuntime& runtime,
                          const TrafficConfig& cfg);

}  // namespace teleport::rack

#endif  // TELEPORT_RACK_TRAFFIC_H_
