#include "common/histogram.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/logging.h"

namespace teleport {

Histogram::Histogram() { Reset(); }

void Histogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
}

int Histogram::BucketFor(uint64_t v) {
  if (v == 0) return 0;
  const int b = 63 - __builtin_clzll(v);
  return b >= kNumBuckets ? kNumBuckets - 1 : b;
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[BucketFor(static_cast<uint64_t>(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }

double Histogram::Mean() const {
  return count_ == 0 ? kEmptyPercentile
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double Histogram::Percentile(double p) const {
  TELEPORT_DCHECK(p >= 0 && p <= 100);
  // Empty scope: answer with the defined sentinel *before* touching the
  // observed-range clamp below — min_ is INT64_MAX until the first Add(),
  // and interpolating against it would return uninitialized garbage.
  if (count_ == 0) return kEmptyPercentile;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t next = cum + buckets_[i];
    if (static_cast<double>(next) >= target && buckets_[i] > 0) {
      // Interpolate within the bucket's range — [0, 2) for bucket 0,
      // [2^i, 2^(i+1)) otherwise (the top bucket has no power-of-two upper
      // bound: shifting by 64 is UB, and it absorbs everything >= 2^63, so
      // its ceiling is the observed max). Both ends are then tightened to
      // the observed [min, max]: no sample lies outside that range, so no
      // interpolated percentile should either — in particular, all-equal
      // inputs report the exact sample value at every percentile.
      double lo = i == 0 ? 0.0 : static_cast<double>(1ULL << i);
      double hi = i + 1 >= kNumBuckets
                      ? static_cast<double>(max_)
                      : static_cast<double>(1ULL << (i + 1));
      lo = std::max(lo, static_cast<double>(min()));
      hi = std::min(hi, static_cast<double>(max_));
      if (hi < lo) hi = lo;
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(buckets_[i]);
      const double v = lo + frac * (hi - lo);
      return std::clamp(v, static_cast<double>(min()),
                        static_cast<double>(max_));
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p99=" << Percentile(99) << " max=" << max_;
  return os.str();
}

}  // namespace teleport
