#include "common/rng.h"

namespace teleport {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  TELEPORT_CHECK(n > 0);
  TELEPORT_CHECK(theta > 0 && theta < 1.0)
      << "theta must be in (0,1); got " << theta;
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfGenerator::Sample(Rng& rng) {
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace teleport
