#ifndef TELEPORT_COMMON_UNITS_H_
#define TELEPORT_COMMON_UNITS_H_

#include <cstdint>

namespace teleport {

/// Byte-size and time-unit constants used throughout the cost model.
/// Virtual time is kept in nanoseconds (int64_t), sizes in bytes (uint64_t).

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// Virtual time in nanoseconds.
using Nanos = int64_t;

inline constexpr Nanos kMicrosecond = 1'000;
inline constexpr Nanos kMillisecond = 1'000'000;
inline constexpr Nanos kSecond = 1'000'000'000;

/// Converts virtual nanoseconds to floating-point seconds (for reporting).
inline constexpr double ToSeconds(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kSecond);
}

/// Converts virtual nanoseconds to floating-point milliseconds.
inline constexpr double ToMillis(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kMillisecond);
}

}  // namespace teleport

#endif  // TELEPORT_COMMON_UNITS_H_
