#include "common/status.h"

namespace teleport {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFault:
      return "Fault";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFenced:
      return "Fenced";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace teleport
