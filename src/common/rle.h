#ifndef TELEPORT_COMMON_RLE_H_
#define TELEPORT_COMMON_RLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace teleport {

/// One page resident in the compute-pool cache together with its write
/// permission, as shipped at the start of a pushdown call (§6: the resident
/// list is run-length encoded, giving ~20x smaller messages).
struct PageEntry {
  uint64_t page = 0;
  bool writable = false;

  friend bool operator==(const PageEntry&, const PageEntry&) = default;
};

/// A maximal run of consecutive pages sharing the same write permission.
struct PageRun {
  uint64_t start = 0;
  uint64_t count = 0;
  bool writable = false;

  friend bool operator==(const PageRun&, const PageRun&) = default;
};

/// Run-length encodes a page list. `pages` must be sorted by page number and
/// duplicate-free; this is asserted in debug builds.
std::vector<PageRun> RleEncode(const std::vector<PageEntry>& pages);

/// Expands runs back to the page list (inverse of RleEncode).
std::vector<PageEntry> RleDecode(const std::vector<PageRun>& runs);

/// Wire size of the raw (unencoded) list: 9 bytes per entry.
uint64_t RawSizeBytes(size_t num_pages);

/// Wire size of the encoded list: 13 bytes per run (u64 start, u32 count,
/// u8 permission).
uint64_t RleSizeBytes(const std::vector<PageRun>& runs);

}  // namespace teleport

#endif  // TELEPORT_COMMON_RLE_H_
