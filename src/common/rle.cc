#include "common/rle.h"

#include "common/logging.h"

namespace teleport {

std::vector<PageRun> RleEncode(const std::vector<PageEntry>& pages) {
  std::vector<PageRun> runs;
  for (const PageEntry& e : pages) {
    if (!runs.empty()) {
      PageRun& last = runs.back();
      TELEPORT_DCHECK(e.page >= last.start + last.count)
          << "page list must be sorted and duplicate-free";
      if (e.page == last.start + last.count && e.writable == last.writable) {
        ++last.count;
        continue;
      }
    }
    runs.push_back(PageRun{e.page, 1, e.writable});
  }
  return runs;
}

std::vector<PageEntry> RleDecode(const std::vector<PageRun>& runs) {
  std::vector<PageEntry> pages;
  for (const PageRun& r : runs) {
    for (uint64_t i = 0; i < r.count; ++i) {
      pages.push_back(PageEntry{r.start + i, r.writable});
    }
  }
  return pages;
}

uint64_t RawSizeBytes(size_t num_pages) { return 9u * num_pages; }

uint64_t RleSizeBytes(const std::vector<PageRun>& runs) {
  return 13u * runs.size();
}

}  // namespace teleport
