#ifndef TELEPORT_COMMON_RESULT_H_
#define TELEPORT_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace teleport {

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   int v = r.value();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error (there would be no value), asserted in debug builds.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(rep_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error status; OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Returns the held value. Must hold a value.
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `rexpr` (a Result<T>), propagating any error; otherwise binds
/// the value to `lhs`.
#define TELEPORT_ASSIGN_OR_RETURN(lhs, rexpr)     \
  TELEPORT_ASSIGN_OR_RETURN_IMPL_(                \
      TELEPORT_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define TELEPORT_CONCAT_INNER_(a, b) a##b
#define TELEPORT_CONCAT_(a, b) TELEPORT_CONCAT_INNER_(a, b)
#define TELEPORT_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace teleport

#endif  // TELEPORT_COMMON_RESULT_H_
