#include "common/logging.h"

#include <atomic>

namespace teleport {

namespace {
// Atomic: log statements run from parallel-engine worker threads; the level
// is process-wide config written before any parallel region starts.
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return g_log_level.load(std::memory_order_relaxed);
}
void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      fatal_(fatal),
      enabled_(fatal || level >= g_log_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << file << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace teleport
