#ifndef TELEPORT_COMMON_HISTOGRAM_H_
#define TELEPORT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace teleport {

/// Log-bucketed histogram for latency-like quantities (nanoseconds, bytes).
/// Bucket 0 covers [0, 2) — both 0 and 1 land there — and bucket i >= 1
/// covers [2^i, 2^(i+1)), with the top bucket also absorbing everything at
/// or above 2^63. Percentiles interpolate linearly inside a bucket after
/// tightening its bounds to the observed [min, max], so a histogram whose
/// samples are all equal reports that exact value at every percentile.
/// Mirrors the RocksDB statistics histogram in spirit.
class Histogram {
 public:
  /// Defined result of every statistic on an *empty* histogram: Mean() and
  /// Percentile() return exactly this, min()/max() return 0. An empty scope
  /// is now a reachable steady state (PR8: a tenant can abort every
  /// transaction, leaving e.g. its commit-latency scope empty), so queries
  /// must not touch the uninitialized min_/max_ sentinels — min_ sits at
  /// INT64_MAX until the first Add(), and clamping an interpolated
  /// percentile against it would fabricate garbage. Merge() treats an empty
  /// operand as the identity for exactly the same reason.
  static constexpr double kEmptyPercentile = 0.0;

  Histogram();

  /// Records one sample (negative samples are clamped to 0).
  void Add(int64_t value);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const { return max_; }
  double Mean() const;

  /// Returns the value at percentile p in [0, 100], or kEmptyPercentile
  /// when no sample has been recorded.
  double Percentile(double p) const;

  /// One-line summary: count/mean/p50/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t v);

  uint64_t buckets_[kNumBuckets];
  uint64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

}  // namespace teleport

#endif  // TELEPORT_COMMON_HISTOGRAM_H_
