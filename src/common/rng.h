#ifndef TELEPORT_COMMON_RNG_H_
#define TELEPORT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace teleport {

/// Deterministic xoshiro256** PRNG. Every workload generator in the repo is
/// seeded explicitly so all benchmark inputs and results are reproducible
/// bit-for-bit across runs and machines.
class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    TELEPORT_DCHECK(bound > 0);
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // the tiny modulo bias is irrelevant for workload generation.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    TELEPORT_DCHECK(hi >= lo);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Samples from a Zipf(n, theta) distribution over [0, n). Used by the
/// MapReduce text generator (word frequencies) and graph degree skew.
///
/// Precomputes the harmonic normalization once; Sample() is O(1) via the
/// rejection-inversion-free approximation of Gray et al. (the standard YCSB
/// generator).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  /// Returns a value in [0, n), skewed toward small values.
  uint64_t Sample(Rng& rng);

  uint64_t n() const { return n_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace teleport

#endif  // TELEPORT_COMMON_RNG_H_
