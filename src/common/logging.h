#ifndef TELEPORT_COMMON_LOGGING_H_
#define TELEPORT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace teleport {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level below which log statements are dropped.
/// Defaults to kWarning so tests and benches stay quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it (to stderr) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define TELEPORT_LOG(level)                                              \
  ::teleport::internal_logging::LogMessage(::teleport::LogLevel::level, \
                                           __FILE__, __LINE__)

/// Unconditional invariant check; aborts with a message on failure. Used for
/// programming errors (not recoverable conditions, which return Status).
#define TELEPORT_CHECK(cond)                                                  \
  if (!(cond))                                                                \
  ::teleport::internal_logging::LogMessage(::teleport::LogLevel::kError,      \
                                           __FILE__, __LINE__, /*fatal=*/true) \
      << "Check failed: " #cond " "

#ifdef NDEBUG
#define TELEPORT_DCHECK(cond) \
  if (false) TELEPORT_CHECK(cond)
#else
#define TELEPORT_DCHECK(cond) TELEPORT_CHECK(cond)
#endif

}  // namespace teleport

#endif  // TELEPORT_COMMON_LOGGING_H_
