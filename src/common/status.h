#ifndef TELEPORT_COMMON_STATUS_H_
#define TELEPORT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace teleport {

/// Error categories used across the library. Modeled after the
/// RocksDB/Arrow status idiom: library code never throws; fallible
/// operations return a Status (or Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfMemory,
  kTimedOut,
  kCancelled,
  kUnavailable,      ///< e.g. memory pool unreachable (heartbeat failure)
  kFault,            ///< pushed-down function raised a fault (segfault analog)
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kFenced,           ///< RPC admitted under a stale pool epoch (pool recovered)
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no allocation. Error statuses carry a code and a
/// message. Statuses are copyable and movable.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Fault(std::string msg) {
    return Status(StatusCode::kFault, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Fenced(std::string msg) {
    return Status(StatusCode::kFenced, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsFault() const { return code_ == StatusCode::kFault; }
  bool IsFenced() const { return code_ == StatusCode::kFenced; }

  /// Formats as "Code: message" (just "OK" for success).
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define TELEPORT_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::teleport::Status _st = (expr);               \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace teleport

#endif  // TELEPORT_COMMON_STATUS_H_
