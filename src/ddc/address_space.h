#ifndef TELEPORT_DDC_ADDRESS_SPACE_H_
#define TELEPORT_DDC_ADDRESS_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "ddc/types.h"

namespace teleport::ddc {

/// A named allocation inside the simulated address space.
struct Region {
  std::string name;
  VAddr start = 0;
  uint64_t bytes = 0;
};

/// The simulated process address space.
///
/// Data is stored in real host memory so workloads compute real answers; the
/// virtual addresses handed out here are offsets into that backing buffer,
/// chopped into pages for the DDC simulation. Allocation is a page-aligned
/// bump allocator: data-intensive systems in the paper allocate large flat
/// regions (columns, graph state, shuffle buffers), so freeing individual
/// allocations is unnecessary; the whole space is discarded with the
/// MemorySystem at the end of a run.
class AddressSpace {
 public:
  /// Creates a space able to hold up to `capacity_bytes` of allocations.
  /// Backing host memory is reserved lazily page by page as regions are
  /// allocated, and zero-initialized.
  explicit AddressSpace(uint64_t capacity_bytes, uint64_t page_size);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  /// Allocates `bytes` (rounded up to whole pages); aborts if the capacity
  /// is exhausted (simulated machines are sized by the caller).
  VAddr Alloc(uint64_t bytes, std::string name);

  /// Translates a virtual address to a host pointer. The range
  /// [addr, addr+len) must be inside an allocated region.
  void* HostPtr(VAddr addr, uint64_t len) {
    TELEPORT_DCHECK(addr + len <= used_bytes_);
    (void)len;
    return mem_.data() + addr;
  }
  const void* HostPtr(VAddr addr, uint64_t len) const {
    TELEPORT_DCHECK(addr + len <= used_bytes_);
    (void)len;
    return mem_.data() + addr;
  }

  uint64_t page_size() const { return page_size_; }
  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Number of pages currently allocated (the size of the full page table).
  uint64_t num_pages() const { return used_bytes_ / page_size_; }

  PageId PageOf(VAddr addr) const { return addr / page_size_; }

  const std::vector<Region>& regions() const { return regions_; }

 private:
  uint64_t capacity_bytes_;
  uint64_t page_size_;
  uint64_t used_bytes_ = 0;
  std::vector<std::byte> mem_;
  std::vector<Region> regions_;
};

}  // namespace teleport::ddc

#endif  // TELEPORT_DDC_ADDRESS_SPACE_H_
