#ifndef TELEPORT_DDC_TYPES_H_
#define TELEPORT_DDC_TYPES_H_

#include <cstdint>
#include <string_view>

#include "common/units.h"

namespace teleport::ddc {

/// Virtual address inside a simulated process address space.
using VAddr = uint64_t;

/// Page number (VAddr / page_size).
using PageId = uint64_t;

/// Index of a node within its class of the rack: compute-pool client
/// (blade) or memory-pool shard. The degenerate 1x1 rack — the paper's
/// topology — is node 0 talking to shard 0 everywhere.
using NodeId = int32_t;

/// Tenant owning a unit of work. Tenants are an accounting dimension
/// (per-tenant metrics scopes, fairness counters), orthogonal to node
/// placement: several tenants may share a compute node.
using TenantId = int32_t;

/// Sentinel for "no page": used by the per-context stream trackers, the
/// last-fault readahead state, and the translation-cache pins.
inline constexpr PageId kNoPage = ~PageId{0};

/// Which resource pool a context executes in.
enum class Pool : uint8_t {
  kCompute,  ///< compute pool; local DRAM is only a cache
  kMemory,   ///< memory-pool controller (pushdown target)
};

/// Deployment platform being simulated.
enum class Platform : uint8_t {
  /// Monolithic Linux server with enough DRAM for the working set.
  kLocal,
  /// Monolithic Linux server with constrained DRAM spilling to NVMe SSD.
  kLinuxSsd,
  /// Disaggregated OS (LegoOS-like): compute-local cache backed by the
  /// remote memory pool, which itself spills to the storage pool.
  /// TELEPORT runs on this platform with the pushdown runtime enabled.
  kBaseDdc,
};

std::string_view PlatformToString(Platform p);

/// Page permission of one side (compute cache or temporary context) in the
/// two-sided coherence protocol of §4.1: absent / read-only / writable.
enum class Perm : uint8_t { kNone = 0, kRead = 1, kWrite = 2 };

/// Replacement policy of the compute-pool page cache. §2.2 notes that
/// LRU-style caching is a poor fit for scan-heavy operators; the policy is
/// pluggable so the claim can be tested (none of them rescues the DDC).
enum class CachePolicy : uint8_t {
  kLru,    ///< strict recency order (default, LegoOS-like)
  kFifo,   ///< insertion order, hits do not promote
  kClock,  ///< second-chance: a reference bit saves a page once
};

std::string_view CachePolicyToString(CachePolicy p);

/// Static configuration of one simulated deployment.
struct DdcConfig {
  Platform platform = Platform::kBaseDdc;

  /// Compute-local DRAM: the page cache in DDC platforms, or the entire
  /// local memory in kLinuxSsd. Ignored by kLocal.
  uint64_t compute_cache_bytes = 64 * kMiB;

  /// Memory-pool DRAM capacity; pages beyond it spill to the storage pool.
  uint64_t memory_pool_bytes = 8 * kGiB;

  /// Physical cores available for pushdown user contexts in the memory pool
  /// (§7.3: the pool has scarce compute).
  int memory_pool_cores = 1;

  /// Clock-speed ratio of memory-pool cores vs compute-pool cores.
  double memory_pool_clock_ratio = 1.0;

  /// Backoff wait applied when the compute pool loses the §4.1 concurrent
  /// write-upgrade tiebreak to the memory pool.
  Nanos tiebreak_backoff_ns = 5'000;

  /// Replacement policy of the compute-pool page cache.
  CachePolicy cache_policy = CachePolicy::kLru;

  /// Sequential prefetch depth of the compute-pool cache: on a fault that
  /// continues the previous fault's page stream, up to this many further
  /// pages are fetched in the same round trip. 0 disables prefetching.
  /// (§2.2: OS-level caching and prefetching alone are insufficient —
  /// the ablation bench quantifies that claim.)
  int prefetch_pages = 0;

  /// Compute-pool clients of the rack, each with an independent page cache
  /// of `compute_cache_bytes`. Values > 1 require kBaseDdc (monolithic
  /// platforms have no rack).
  int compute_nodes = 1;

  /// Memory-pool shards the address space is block-partitioned across
  /// (DRackSim-style rack). Each shard owns a contiguous page range with
  /// its own page-table slice, LRU, journal, dedup table, and lease epoch;
  /// `memory_pool_bytes` is divided evenly. Values > 1 require kBaseDdc.
  int memory_shards = 1;
};

}  // namespace teleport::ddc

#endif  // TELEPORT_DDC_TYPES_H_
