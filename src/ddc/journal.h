#ifndef TELEPORT_DDC_JOURNAL_H_
#define TELEPORT_DDC_JOURNAL_H_

#include <cstdint>
#include <vector>

#include "ddc/types.h"

namespace teleport::ddc {

/// Virtual-time cost knobs of the redo journal. The journal occupies a
/// small battery-backed region of pool DRAM, so an append is a short local
/// write plus its share of a group-commit flush that pushes the batch out
/// to the persistent region; replay after a crash streams the live records
/// back into pool DRAM.
struct JournalConfig {
  /// Local append of one redo record into the journal tail.
  Nanos append_ns = 180;
  /// Group-commit flush charged once every `group_commit_records` appends;
  /// amortizes the persistence barrier across the batch.
  Nanos flush_ns = 900;
  /// Records per group-commit batch (the batching bound).
  int group_commit_records = 8;
  /// Fixed recovery cost per applied crash-restart (journal scan setup).
  Nanos replay_fixed_ns = 2 * kMicrosecond;
  /// Per-page cost of re-materializing one journaled page during replay.
  Nanos replay_per_page_ns = 600;
};

/// Redo journal for acknowledged pool writes (PR6, §3.2 hardening).
///
/// The pool acknowledges a dirty-page writeback, Syncmem delta, or session
/// merge only after the corresponding redo record is durable, so "has a
/// live record" is exactly "acknowledged but not yet flushed to storage".
/// One live record per page suffices: records are physical redo images of
/// the whole page, and a later append for the same page supersedes the
/// earlier one. Truncation happens when the page reaches the storage pool
/// (the eviction write makes the record redundant).
///
/// Durability model: the journal region survives a pool crash-restart, so
/// recovery replays every live record; records stay live across replay and
/// keep protecting the page until it is flushed to storage.
///
/// All costs are virtual-time only — the caller charges the returned cost
/// to the acting ExecutionContext; the journal itself never touches a
/// clock, which keeps it usable from any context (or none, in tests).
class Journal {
 public:
  struct AppendResult {
    Nanos cost = 0;     ///< append + (on batch boundary) group-commit flush
    bool flushed = false;  ///< this append closed a group-commit batch
  };

  explicit Journal(const JournalConfig& cfg = JournalConfig()) : cfg_(cfg) {}

  /// Makes the redo record for `page` durable. Always charges an append;
  /// every `group_commit_records`-th append also charges the batch flush.
  AppendResult Append(PageId page) {
    if (page >= live_.size()) live_.resize(page + 1, 0);
    if (live_[page] == 0) {
      live_[page] = 1;
      ++live_records_;
    }
    ++appends_;
    AppendResult r;
    r.cost = cfg_.append_ns;
    if (++group_fill_ >= cfg_.group_commit_records) {
      group_fill_ = 0;
      ++flushes_;
      r.cost += cfg_.flush_ns;
      r.flushed = true;
    }
    return r;
  }

  /// Drops the record for `page` (the page reached storage). Returns
  /// whether a record was live. Free: it piggybacks on the storage write.
  bool Truncate(PageId page) {
    if (page >= live_.size() || live_[page] == 0) return false;
    live_[page] = 0;
    --live_records_;
    return true;
  }

  bool Has(PageId page) const {
    return page < live_.size() && live_[page] != 0;
  }

  /// Live records in ascending page order — the deterministic replay order.
  std::vector<PageId> LiveRecords() const {
    std::vector<PageId> out;
    out.reserve(live_records_);
    for (PageId p = 0; p < live_.size(); ++p) {
      if (live_[p] != 0) out.push_back(p);
    }
    return out;
  }

  /// Virtual time to replay `pages` records after one crash-restart.
  Nanos ReplayCost(uint64_t pages) const {
    return cfg_.replay_fixed_ns +
           cfg_.replay_per_page_ns * static_cast<Nanos>(pages);
  }

  uint64_t live_records() const { return live_records_; }
  uint64_t appends() const { return appends_; }
  uint64_t flushes() const { return flushes_; }
  const JournalConfig& config() const { return cfg_; }

 private:
  JournalConfig cfg_;
  std::vector<uint8_t> live_;  ///< per-page: has a live redo record
  uint64_t live_records_ = 0;
  uint64_t appends_ = 0;
  uint64_t flushes_ = 0;
  int group_fill_ = 0;  ///< appends since the last group-commit flush
};

}  // namespace teleport::ddc

#endif  // TELEPORT_DDC_JOURNAL_H_
