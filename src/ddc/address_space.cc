#include "ddc/address_space.h"

namespace teleport::ddc {

std::string_view PlatformToString(Platform p) {
  switch (p) {
    case Platform::kLocal:
      return "Local";
    case Platform::kLinuxSsd:
      return "LinuxSSD";
    case Platform::kBaseDdc:
      return "BaseDDC";
  }
  return "Unknown";
}

std::string_view CachePolicyToString(CachePolicy p) {
  switch (p) {
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kFifo:
      return "FIFO";
    case CachePolicy::kClock:
      return "CLOCK";
  }
  return "Unknown";
}

AddressSpace::AddressSpace(uint64_t capacity_bytes, uint64_t page_size)
    : capacity_bytes_((capacity_bytes + page_size - 1) / page_size * page_size),
      page_size_(page_size) {
  TELEPORT_CHECK(page_size_ > 0 && (page_size_ & (page_size_ - 1)) == 0)
      << "page size must be a power of two";
  // Reserve the full capacity up front so that growth in Alloc() never
  // reallocates: host pointers handed out by HostPtr() stay valid for the
  // lifetime of the space.
  mem_.reserve(capacity_bytes_);
}

VAddr AddressSpace::Alloc(uint64_t bytes, std::string name) {
  TELEPORT_CHECK(bytes > 0);
  const uint64_t rounded = (bytes + page_size_ - 1) / page_size_ * page_size_;
  TELEPORT_CHECK(used_bytes_ + rounded <= capacity_bytes_)
      << "address space exhausted allocating '" << name << "' (" << bytes
      << " bytes; used " << used_bytes_ << " of " << capacity_bytes_ << ")";
  const VAddr start = used_bytes_;
  used_bytes_ += rounded;
  mem_.resize(used_bytes_);  // zero-initialized growth
  regions_.push_back(Region{std::move(name), start, rounded});
  return start;
}

}  // namespace teleport::ddc
