#ifndef TELEPORT_DDC_MEMORY_SYSTEM_H_
#define TELEPORT_DDC_MEMORY_SYSTEM_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rle.h"
#include "common/rng.h"
#include "common/units.h"
#include "ddc/address_space.h"
#include "ddc/journal.h"
#include "ddc/types.h"
#include "net/fabric.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "teleport/retry.h"

namespace teleport::ddc {

class MemorySystem;
class Cursor;

/// One entry of the miniature software TLB used by the extent fast path: a
/// pinned translation of a single page whose state is known to be a plain
/// cache/pool *hit* for the recorded access modes. While the pin is valid, a
/// same-page access can be charged in closed form (the hit cost of
/// ChargeDram's sequential branch plus the hit-side bookkeeping) without a
/// MemorySystem dispatch.
///
/// Validity is governed by three checks, all performed on every use:
///  - `map_epoch` must equal MemorySystem's wholesale mapping epoch, bumped
///    on bulk state rewrites (session boundaries, pool restarts, staging,
///    page-table growth, mode flips).
///  - `*page_epoch_ptr` must equal `page_epoch`: the pinned page's own
///    shootdown counter, bumped on every per-page transition that could
///    make the pin stale (coherence transitions, evictions, writebacks,
///    flushes, permission changes). Together with the mapping epoch this is
///    the TLB-shootdown invariant asserted by tp::ModelChecker (which
///    watches the combined translation_epoch() sequence number).
///  - `*stream_slot` must still equal `page`: the scalar cost model charges
///    the cheap sequential rate only while the page occupies one of the
///    context's stream trackers, and interleaved random accesses can evict
///    it. A mismatch falls back to the full dispatch, which re-charges
///    exactly what the scalar path would.
///
/// The raw pointers (page state flags, metrics counter, LRU list) stay valid
/// between wholesale shootdowns because the page table only grows — and
/// growth bumps the mapping epoch before any of them is dereferenced.
struct PagePin {
  VAddr v_lo = 1, v_hi = 0;  ///< pinned byte interval; empty = invalid
  /// Snapshot of MemorySystem::mapping_epoch_: dies on wholesale shootdowns
  /// (page-table growth, session begin/end, pool restart, mode flips). It
  /// guards every raw pointer below, so it is checked before any of them.
  uint64_t map_epoch = 0;
  /// Snapshot of the pinned page's own shootdown counter: dies when *this*
  /// page transitions (eviction, fill, permission change, coherence fault)
  /// while pins on unrelated pages survive.
  uint32_t page_epoch = 0;
  const uint32_t* page_epoch_ptr = nullptr;
  std::byte* host = nullptr;  ///< host pointer at v_lo
  PageId page = kNoPage;
  PageId* stream_slot = nullptr;  ///< slot in the owner's streams_[]
  bool read_ok = false;
  bool write_ok = false;
  bool notify = false;     ///< observer attached at fill time
  bool pool_side = false;  ///< kMemoryAccess (vs kComputeAccess) events
  uint8_t lru_kind = 0;    ///< 0 none, 1 list move-to-front, 2 CLOCK ref bit
  bool* dirty_flag = nullptr;    ///< compute_dirty / mem_dirty on write
  bool* touched_flag = nullptr;  ///< temp_touched while a session is active
  bool* ref_bit = nullptr;       ///< CLOCK reference bit (lru_kind == 2)
  uint64_t* hit_counter = nullptr;  ///< cache_hits / memory_pool_hits
  void* lru_list = nullptr;         ///< MemorySystem::LruList*
  Nanos seq_ns = 0;                 ///< per-access sequential base cost
  double ns_per_byte = 0;

  void Reset() { *this = PagePin{}; }
};

/// A simulated thread of execution placed in one resource pool.
///
/// Owns a virtual clock and a metrics sink. All data accesses and CPU work of
/// application code are charged through this object; the actual data lives in
/// the MemorySystem's AddressSpace (real host memory), so application code
/// computes real results while time is simulated.
class ExecutionContext {
 public:
  ExecutionContext(MemorySystem* ms, Pool pool, NodeId node = 0,
                   TenantId tenant = 0)
      : ms_(ms), pool_(pool), node_(node), tenant_(tenant) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Pool pool() const { return pool_; }
  /// Rack placement: the compute-pool client this thread runs on (kCompute)
  /// or the memory shard hosting the temporary context (kMemory).
  NodeId node() const { return node_; }
  /// Tenant charged for this thread's work (metrics attribution only).
  TenantId tenant() const { return tenant_; }
  MemorySystem& memory_system() { return *ms_; }

  sim::VirtualClock& clock() { return clock_; }
  Nanos now() const { return clock_.now(); }

  sim::Metrics& metrics() { return metrics_; }
  const sim::Metrics& metrics() const { return metrics_; }

  /// Reads a POD value at `addr`, charging the access.
  template <typename T>
  T Load(VAddr addr) {
    const void* p = TryPinned(tlb_, addr, sizeof(T), /*write=*/false);
    if (p == nullptr) p = SlowAccess(addr, sizeof(T), /*write=*/false);
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }

  /// Writes a POD value at `addr`, charging the access.
  template <typename T>
  void Store(VAddr addr, const T& v) {
    void* p = TryPinned(tlb_, addr, sizeof(T), /*write=*/true);
    if (p == nullptr) p = SlowAccess(addr, sizeof(T), /*write=*/true);
    std::memcpy(p, &v, sizeof(T));
  }

  /// Charges a read of [addr, addr+len) and returns a host pointer to it.
  const void* ReadRange(VAddr addr, uint64_t len) {
    const void* p = TryPinned(tlb_, addr, len, /*write=*/false);
    return p != nullptr ? p : SlowAccess(addr, len, /*write=*/false);
  }

  /// Charges a write of [addr, addr+len) and returns a host pointer to it.
  void* WriteRange(VAddr addr, uint64_t len) {
    void* p = TryPinned(tlb_, addr, len, /*write=*/true);
    return p != nullptr ? p : SlowAccess(addr, len, /*write=*/true);
  }

  // --- Extent (bulk) APIs ---------------------------------------------------
  //
  // Each is defined to perform exactly the element-by-element access
  // sequence of the equivalent Load/Store loop — same touch order, same
  // per-element charges — but runs of same-page hit accesses are charged in
  // closed form through the pinned translation (one multiplication instead
  // of N dispatches). With a yield hook installed (sim::CoopTask) or the
  // TELEPORT_SCALAR_DATAPATH knob set, they degrade to the per-element
  // scalar path so schedule-exploration granularity is preserved.

  /// Reads `count` elements of T starting at `addr` into `dst`.
  template <typename T>
  void LoadSpan(VAddr addr, T* dst, uint64_t count);

  /// Writes `count` elements of T from `src` starting at `addr`.
  template <typename T>
  void StoreSpan(VAddr addr, const T* src, uint64_t count);

  /// Stores `count` copies of `value` starting at `addr`.
  template <typename T>
  void Fill(VAddr addr, const T& value, uint64_t count);

  /// Copies `count` elements of T from `src_addr` to `dst_addr`, charging
  /// the alternating load/store sequence of the scalar loop.
  template <typename T>
  void Memcpy(VAddr dst_addr, VAddr src_addr, uint64_t count);

  /// Charges `ops` simple CPU operations at this pool's clock speed.
  void ChargeCpu(uint64_t ops);

  /// Advances this context's clock without touching memory (think of it as
  /// a stall or sleep).
  void AdvanceTime(Nanos delta) { clock_.Advance(delta); }

  /// Time spent in coherence traffic (online synchronization) so far;
  /// used for the Fig 19/20 pushdown breakdown.
  Nanos coherence_ns() const { return coherence_ns_; }

  /// Cooperative-scheduling hook, fired after every charged access and CPU
  /// batch. sim::CoopTask uses it to preempt straight-line engine code at
  /// its instrumentation points; null (the default) costs one branch.
  using YieldFn = void (*)(void*);
  void set_yield_hook(YieldFn fn, void* arg) {
    yield_fn_ = fn;
    yield_arg_ = arg;
  }
  /// The installed hook, so a borrowed execution context (a pushdown
  /// kernel running on the caller's behalf) can inherit the caller's
  /// preemption points. Without the handoff a memory-side spin loop —
  /// e.g. a pushed B+-tree probe retrying a node seqlock — can never
  /// yield back to the suspended compute-side writer it is waiting on,
  /// livelocking the cooperative schedule.
  YieldFn yield_fn() const { return yield_fn_; }
  void* yield_arg() const { return yield_arg_; }

 private:
  friend class MemorySystem;
  friend class Cursor;

  void* AccessImpl(VAddr addr, uint64_t len, bool write);

  /// Fast path: serves [addr, addr+len) from a valid pin, charging the hit
  /// cost, or returns nullptr when the pin does not cover the access.
  void* TryPinned(PagePin& pin, VAddr addr, uint64_t len, bool write);
  /// True when a pinned *run* may start at `addr` (same checks as TryPinned
  /// but without charging; used by the span batchers).
  bool PinnedRunReady(const PagePin& pin, VAddr addr, uint64_t len,
                      bool write) const;
  /// Charges `n` identical same-page hit accesses of `len` bytes against a
  /// valid pin: the closed-form equivalent of n ChargeDram sequential hits
  /// plus the per-hit bookkeeping (metrics, dirty bits, LRU, events).
  void ChargePinnedRun(const PagePin& pin, uint64_t len, uint64_t n,
                       bool write);
  /// Full dispatch plus opportunistic pin refill for the context TLB: the
  /// pin is (re)filled when the same page misses twice in a row, so random
  /// access patterns do not pay the refill cost.
  void* SlowAccess(VAddr addr, uint64_t len, bool write);
  /// Full dispatch plus unconditional pin refill (cursors and spans declare
  /// sequential intent).
  void* PinnedSlowAccess(PagePin& pin, VAddr addr, uint64_t len, bool write);

  MemorySystem* ms_;
  Pool pool_;
  NodeId node_ = 0;
  TenantId tenant_ = 0;
  sim::VirtualClock clock_;
  sim::Metrics metrics_;
  /// The context's one-entry translation cache (see PagePin).
  PagePin tlb_;
  PageId last_slow_page_ = kNoPage;
  /// Recently touched pages, one per hardware-tracked stream: an access to
  /// a tracked page (or its successor) is stream-like and cheap, anything
  /// else pays the DRAM row-miss cost. Modeling several streams matters
  /// because columnar operators interleave a handful of sequential arrays
  /// (input column, candidate list, output), which real prefetchers and
  /// TLBs handle concurrently.
  static constexpr int kStreams = 8;
  PageId streams_[kStreams] = {kNoPage, kNoPage, kNoPage, kNoPage,
                               kNoPage, kNoPage, kNoPage, kNoPage};
  int stream_clock_ = 0;
  /// Previously faulted page (per backend), for SSD readahead modeling.
  PageId last_fault_page_ = kNoPage;
  Nanos coherence_ns_ = 0;
  YieldFn yield_fn_ = nullptr;
  void* yield_arg_ = nullptr;
};

/// Coherence behavior of a pushdown session (§4.1 default and §4.2
/// relaxations, selected with the pushdown `flags` argument).
enum class CoherenceMode : uint8_t {
  kMesi,          ///< default write-invalidate protocol (SWMR invariant)
  kPso,           ///< write requests downgrade the other side to read-only
  kWeakOrdering,  ///< no invalidation traffic on contended writes
  kNone,          ///< coherence off; user synchronizes with syncmem
};

std::string_view CoherenceModeToString(CoherenceMode m);

/// Deliberate protocol bugs, injectable for testing the model checker (a
/// checker that has never caught a planted bug proves nothing). Off in all
/// production paths.
enum class ProtocolMutation : uint8_t {
  kNone,
  /// CoherenceComputeFault skips the memory-side invalidate/downgrade
  /// handler: the temporary context keeps stale permissions.
  kSkipInvalidation,
  /// CoherenceMemoryFault never returns the dirty compute page, so the
  /// temporary context reads stale pool data.
  kSkipPageReturn,
  /// Protocol transitions skip the translation-cache shootdown (the epoch
  /// bump), so pinned fast-path translations survive state changes they
  /// must not survive. The model checker asserts the bump on every
  /// transition, so this mutation is caught at the first one.
  kSkipTlbShootdown,
  /// Recovery treats journaled pages like unjournaled ones: acknowledged
  /// writes with live redo records are dropped instead of re-materialized.
  /// Model-checker invariant #6 sees the restart consume no kPoolRecover
  /// events for journaled pages and flags the loss.
  kSkipJournalReplay,
  /// The pushdown runtime admits RPCs under a stale pool epoch instead of
  /// fencing them after a recovery. The checker sees a kSessionBegin whose
  /// epoch lags the pool's and flags the half-done-effects hazard.
  kSkipFencing,
  /// The pool-side dedup table re-executes duplicate idempotency tokens
  /// (injected dup deliveries double-apply). The checker sees a second
  /// executed kPushdownAdmit for an already-executed token.
  kReplayDuplicate,
  /// The OLTP commit path (src/oltp) installs its write set without
  /// validating the read set: a transaction that raced a concurrent commit
  /// commits anyway (classic lost update). Model-checker invariant #7 sees
  /// a kTxnCommit whose read set no longer matches the shadow committed
  /// versions and flags it.
  kSkipOccValidation,
  /// The OLTP abort path releases record locks but "loses" its undo log:
  /// provisional values stay visible with no kTxnUndo events. Invariant #7
  /// turns every provisional install of an aborted transaction into an
  /// undo obligation, so the next transactional event (or Finish) flags
  /// the dirty data.
  kSkipAbortUndo,
};

/// A page-granular coherence/page-table transition, reported to an attached
/// CoherenceObserver *after* the implementation has applied it (so observers
/// can compare predicted state against the real page table). Only the
/// kBaseDdc paths emit events.
struct CoherenceEvent {
  enum class Kind : uint8_t {
    kSessionBegin,   ///< pushdown session activated (mode is valid)
    kSessionEnd,     ///< last concurrent session ended; temp table cleared
    kComputeAccess,  ///< ComputeTouch finished on `page` (write is valid)
    kMemoryAccess,   ///< MemoryTouch finished on `page` (write is valid)
    kComputeEvict,   ///< capacity eviction of `page` from the compute cache
    kPrefetchFill,   ///< `page` pulled read-only by sequential prefetch
    kSyncmemPage,    ///< `page` flushed clean by the syncmem syscall
    kFlushPage,      ///< `page` flushed by FlushRange (write := dropped)
    kRefetchPage,    ///< `page` re-cached read-only by BulkRefetch
    kPoolRestart,    ///< crash-restart wiped the memory pool (epoch is valid)
    kPoolRecover,    ///< `page` re-materialized from the journal after restart
    kJournalCommit,  ///< redo record for `page` made durable (ack point)
    kJournalTruncate,  ///< redo record for `page` dropped (reached storage)
    kPushdownAdmit,  ///< dedup decision: `page` is the token, write=executed
    // Engine-level transactional events (src/oltp, checker invariant #7).
    // `page` carries a record KEY (not a page id), `epoch` a record version
    // or commit sequence number, `node` the reporting session id.
    kTxnRead,    ///< execution-phase read observed (key, committed version)
    kTxnWrite,   ///< provisional install of (key, pending new version)
    kTxnCommit,  ///< read set validated; provisional installs now committed
    kTxnAbort,   ///< validation failed; installs become undo obligations
    kTxnUndo,    ///< one install rolled back: (key, restored version)
  };
  Kind kind;
  PageId page = 0;
  bool write = false;  ///< for kFlushPage: whether the page was dropped
  CoherenceMode mode = CoherenceMode::kMesi;
  Nanos at = 0;
  /// For kPoolRestart: that shard's pool epoch after recovery. For
  /// kSessionBegin: the home shard's epoch the session was admitted under.
  /// 0 elsewhere.
  uint64_t epoch = 0;
  /// Memory shard the event belongs to: the restarting/recovering shard for
  /// kPoolRestart / kPoolRecover / kJournalCommit / kJournalTruncate /
  /// kPushdownAdmit, the session's home shard for kSessionBegin, 0 for the
  /// page-granular kinds (their shard is derivable from `page`).
  int node = 0;
};

std::string_view CoherenceEventKindToString(CoherenceEvent::Kind k);

/// Receives every CoherenceEvent from a MemorySystem it is attached to.
/// tp::ModelChecker implements this to shadow the protocol state machine.
class CoherenceObserver {
 public:
  virtual ~CoherenceObserver() = default;
  virtual void OnCoherenceEvent(const CoherenceEvent& ev) = 0;
};

/// Simulates the memory hierarchy of one deployment: the compute-local page
/// cache, the memory pool with its full page table, and the storage pool,
/// connected by the fabric. Implements the page-fault paths of a
/// disaggregated OS and, during a pushdown session, the two-sided coherence
/// protocol of §4.
///
/// All state transitions charge virtual time to the accessing context and
/// bump its metrics; the backing data itself lives in `space()`.
class MemorySystem {
 public:
  MemorySystem(const DdcConfig& config, const sim::CostParams& params,
               uint64_t address_space_capacity);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  AddressSpace& space() { return space_; }
  const AddressSpace& space() const { return space_; }
  const DdcConfig& config() const { return config_; }
  const sim::CostParams& params() const { return params_; }
  net::Fabric& fabric() { return fabric_; }

  /// Creates a context placed in `pool`. Memory-pool contexts are only
  /// meaningful on the kBaseDdc platform. `node` is the compute-pool client
  /// the thread runs on (kCompute) or the home shard of the temporary
  /// context (kMemory); `tenant` tags the context for metrics attribution.
  std::unique_ptr<ExecutionContext> CreateContext(Pool pool, NodeId node = 0,
                                                  TenantId tenant = 0) {
    if (pool == Pool::kCompute) {
      TELEPORT_CHECK(node >= 0 && node < config_.compute_nodes)
          << "compute node " << node << " outside the rack's "
          << config_.compute_nodes << " clients";
    }
    return std::make_unique<ExecutionContext>(this, pool, node, tenant);
  }

  // --- Rack topology -------------------------------------------------------

  int compute_nodes() const { return config_.compute_nodes; }
  int memory_shards() const { return static_cast<int>(shards_.size()); }
  /// Contiguous block partitioning (DRackSim-style): pages are assigned to
  /// shards in address order, `pages_per_shard()` pages per shard, so
  /// sequential streams and the prefetcher stay on one shard. With one
  /// shard every page maps to shard 0.
  int ShardOf(PageId p) const {
    return static_cast<int>(
        std::min<uint64_t>(p / pages_per_shard_, shards_.size() - 1));
  }
  uint64_t pages_per_shard() const { return pages_per_shard_; }

  /// Marks all currently allocated pages as resident in their platform's
  /// backing store (memory pool for DDC — spilling past its capacity to
  /// storage — or local DRAM/SSD for monolithic platforms) with a cold
  /// compute cache. Charges no time; used to stage workload data the way
  /// the paper stages database/graph state before measuring queries.
  void SeedData();

  // --- Pushdown session hooks (driven by teleport::PushdownRuntime) -------

  /// Builds the resident-page list sent at the start of pushdown (§4.1),
  /// sorted by page id with write permissions.
  std::vector<PageEntry> ResidentPages() const;

  /// Runs the Fig-8 temporary-context page-table preparation and activates
  /// the coherence protocol in the given mode. Returns the number of PTEs
  /// processed (the size of the cloned full page table).
  ///
  /// Sessions are reference-counted: concurrent pushdown requests from the
  /// same process share one temporary context and page table (§3.2); nested
  /// Begin calls must use the same mode and only the first initializes the
  /// table.
  ///
  /// `admit_epoch` is the pool epoch of the session's *home shard* (the
  /// shard its request RPC was admitted by) under lease fencing; the
  /// default sentinel means "that shard's current epoch". The first Begin
  /// of a session reports it (with `home_shard`) on the kSessionBegin event
  /// so the model checker can assert no stale-epoch session ever starts on
  /// any shard.
  static constexpr uint64_t kCurrentEpoch = ~uint64_t{0};
  uint64_t BeginPushdownSession(CoherenceMode mode,
                                uint64_t admit_epoch = kCurrentEpoch,
                                int home_shard = 0);

  /// Merges temporary-context dirty bits back into the full page table and
  /// deactivates coherence once the last concurrent session ends. No fabric
  /// traffic (per §4.1). With journaling enabled the final merge is the
  /// acknowledgment point for session writes: every merged dirty page gets
  /// a redo record, charged to `ctx` when one is supplied (the pushdown
  /// runtime passes the memory-side context; tests may pass nullptr, which
  /// appends records without charging virtual time).
  void EndPushdownSession(ExecutionContext* ctx = nullptr);

  bool pushdown_active() const { return pushdown_active_; }
  CoherenceMode coherence_mode() const { return coherence_mode_; }

  /// The syncmem syscall (§4.2): synchronously flushes dirty compute-cached
  /// pages overlapping [addr, addr+len) back to the memory pool. Pages stay
  /// cached read-only clean.
  void Syncmem(ExecutionContext& ctx, VAddr addr, uint64_t len);

  /// Flushes every resident compute page to the memory pool as one streamed
  /// transfer; optionally drops the cache. This is the eager-synchronization
  /// strawman of Fig 20 and the "migrate the whole process" baseline of
  /// Fig 6. Returns the number of pages moved.
  uint64_t FlushAllCache(ExecutionContext& ctx, bool drop);

  /// Like FlushAllCache but restricted to pages overlapping
  /// [addr, addr+len): the Fig 6 "per thread" variant that only evicts the
  /// pushed thread's memory. Returns the number of pages moved.
  uint64_t FlushRange(ExecutionContext& ctx, VAddr addr, uint64_t len,
                      bool drop);

  /// Streams `pages` pages from the memory pool into the compute cache
  /// (the post-pushdown refetch of the eager strawman).
  void BulkRefetch(ExecutionContext& ctx, uint64_t pages);

  // --- Introspection (tests, benches) -------------------------------------

  /// Pages cached across every compute node (or one node's with `node`).
  uint64_t cache_pages_used() const {
    uint64_t n = 0;
    for (const ComputeNodeState& c : cnodes_) n += c.cache_used;
    return n;
  }
  uint64_t cache_pages_used_on(NodeId node) const {
    return cnodes_[static_cast<size_t>(node)].cache_used;
  }
  uint64_t cache_capacity_pages() const { return cache_capacity_pages_; }
  /// Pages resident across every pool shard (or one shard's with `shard`).
  uint64_t memory_pool_pages_used() const {
    uint64_t n = 0;
    for (const ShardState& sh : shards_) n += sh.pool_used;
    return n;
  }
  uint64_t memory_pool_pages_used_on(int shard) const {
    return shards_[static_cast<size_t>(shard)].pool_used;
  }
  /// Compute node caching `p`; meaningful only while compute_perm != kNone.
  NodeId cache_owner(PageId p) const { return PS(p).owner; }
  /// Pages with page-table state (grows lazily with the address space).
  uint64_t tracked_pages() const { return pages_.size(); }
  Perm compute_perm(PageId p) const { return PS(p).compute_perm; }
  Perm temp_perm(PageId p) const { return PS(p).temp_perm; }
  bool in_memory_pool(PageId p) const { return PS(p).in_memory_pool; }
  bool on_storage(PageId p) const { return PS(p).on_storage; }
  bool compute_dirty(PageId p) const { return PS(p).compute_dirty; }

  /// Verifies the Single-Writer-Multiple-Reader invariant for every page
  /// (§4.1 correctness argument). Aborts on violation; returns the number
  /// of pages checked. Only meaningful while a kMesi session is active.
  uint64_t CheckSwmrInvariant() const;

  // --- Protocol checking hooks ---------------------------------------------

  /// Attaches (or detaches, with nullptr) a coherence observer. Non-owning;
  /// at most one observer, which must outlive its attachment. Shoots down
  /// pinned translations: whether a pinned access must emit events is
  /// captured at pin-fill time.
  void set_coherence_observer(CoherenceObserver* o) {
    observer_ = o;
    InvalidateAllPins();
  }
  CoherenceObserver* coherence_observer() const { return observer_; }

  /// Reports an engine-level transactional event (the kTxn* kinds) to the
  /// attached observer. Engines above the memory system (src/oltp) call
  /// this so model-checker invariant #7 can shadow their concurrency
  /// control; `key` is a record key, `version` a record version or commit
  /// sequence number, `session` the reporting session id. Observer-only:
  /// costs no virtual time and never touches page state.
  void NotifyTxnEvent(CoherenceEvent::Kind kind, uint64_t key,
                      uint64_t version, int session, Nanos at) {
    Notify(kind, key, /*write=*/false, at, version, session);
  }

  /// Plants a deliberate protocol bug (tests only). Always shoots down
  /// outstanding translations itself: the mutation governs *future*
  /// transitions, not the act of planting it.
  void set_protocol_mutation(ProtocolMutation m) {
    mutation_ = m;
    InvalidateAllPins();
  }
  ProtocolMutation protocol_mutation() const { return mutation_; }

  // --- Extent fast path -----------------------------------------------------

  /// Observable TLB-shootdown sequence number: advances on every shootdown,
  /// per-page or wholesale. tp::ModelChecker asserts it moved across each
  /// coherence event that requires a shootdown. (Pin validity itself is
  /// checked against the finer-grained mapping/page epochs, so pins on
  /// unrelated pages survive another page's eviction.)
  uint64_t translation_epoch() const {
    return translation_epoch_.load(std::memory_order_relaxed);
  }

  /// Forces every access through the per-element scalar dispatch path:
  /// pins never fill, so Load/Store, cursors and spans all charge exactly
  /// as the pre-extent code did, access by access. Used by the explore
  /// tier (per-access yield granularity) and the equivalence tests.
  /// Initialized from the TELEPORT_SCALAR_DATAPATH environment variable.
  void set_scalar_datapath(bool scalar) {
    scalar_datapath_ = scalar;
    InvalidateAllPins();
  }
  bool scalar_datapath() const { return scalar_datapath_; }

  /// Attaches (or detaches, with nullptr) a structured-event tracer, shared
  /// with the fabric so one trace carries cache/coherence transitions and
  /// per-kind message sends. Non-owning; recording never advances virtual
  /// time, so an attached tracer is invisible to the simulation.
  void set_tracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    fabric_.set_tracer(tracer);
  }
  sim::Tracer* tracer() const { return tracer_; }

  // --- Resilience (§3.2 failure handling) ---------------------------------

  /// Policy for retrying page-fault RPCs when a fault injector is attached
  /// to the fabric. Without an injector the fault path is untouched.
  void set_fault_retry_policy(const tp::RetryPolicy& p) { fault_retry_ = p; }
  const tp::RetryPolicy& fault_retry_policy() const { return fault_retry_; }
  /// Reseeds the deterministic jitter stream used by fault-path retries.
  void set_retry_seed(uint64_t seed) { retry_rng_ = Rng(seed); }

  /// Outcome of applying completed crash-restart windows (see
  /// ApplyPoolRestartsAt). `recovery_ns` is the virtual time the pool spent
  /// replaying the journal; the bookkeeping itself never advances a clock.
  struct RestartOutcome {
    uint64_t lost = 0;       ///< acknowledged writes genuinely unrecoverable
    uint64_t recovered = 0;  ///< pages re-materialized from the journal
    Nanos recovery_ns = 0;   ///< journal-replay time (0 with journaling off)
  };

  /// Applies any memory-node crash-restart windows that have completed by
  /// `now`, shard by shard in ascending order: every pool-resident page of
  /// a restarted shard is dropped, then — with journaling enabled — pages
  /// with live redo records in *that shard's* journal are replayed back
  /// into its DRAM (still dirty w.r.t. storage) and counted as recovered;
  /// only dirty pages *without* a record are counted as lost writes and
  /// reported via metrics. Replay obligations are strictly per shard: a
  /// crash of shard A never discharges (or touches) shard B's journal,
  /// pages, or epoch. Compute-cache pages survive — no compute node
  /// crashed. Every applied window bumps the restarted shard's
  /// `pool_epoch(shard)` so stale-epoch RPCs can be fenced. Does not
  /// advance any clock; the caller decides where `recovery_ns` is spent.
  RestartOutcome ApplyPoolRestartsAt(ExecutionContext& ctx, Nanos now);

  /// Convenience wrapper at ctx.now() that charges the recovery time to
  /// `ctx` and returns only the lost-write count (the pre-journal API).
  uint64_t ApplyPoolRestarts(ExecutionContext& ctx) {
    const RestartOutcome out = ApplyPoolRestartsAt(ctx, ctx.now());
    if (out.recovery_ns > 0) ctx.AdvanceTime(out.recovery_ns);
    return out.lost;
  }

  /// Lease epoch of one memory-pool shard: starts at 1 and advances once
  /// per applied crash-restart window of that shard, journal on or off.
  /// Pushdown RPCs record, per shard, the epoch they were admitted under;
  /// after a recovery a shard fences (rejects) RPCs carrying an older epoch
  /// for it — other shards' admissions are unaffected.
  uint64_t pool_epoch(int shard = 0) const {
    return shards_[static_cast<size_t>(shard)].pool_epoch;
  }

  /// Pool-side exactly-once filter of one shard: records `token` in that
  /// shard's dedup table (which, like the journal, lives in the
  /// restart-surviving pool region) and returns whether this delivery
  /// should execute. A duplicate delivery of an already-executed token
  /// returns false and counts a dedup hit — unless the kReplayDuplicate
  /// mutation is planted, in which case the duplicate "executes" again and
  /// the model checker flags it. Charges no virtual time (the table probe
  /// rides the request's existing handling).
  bool AdmitPushdown(ExecutionContext& ctx, uint64_t token, Nanos at,
                     int shard = 0);

  /// Enables the redo journal (also settable via the TELEPORT_JOURNAL
  /// environment variable). Off by default: today's lossy §3.2 behavior.
  void set_journal_enabled(bool on) { journal_enabled_ = on; }
  bool journal_enabled() const { return journal_enabled_; }
  const Journal& journal(int shard = 0) const {
    return shards_[static_cast<size_t>(shard)].journal;
  }

  uint64_t lost_pool_writes() const { return lost_pool_writes_; }
  uint64_t recovered_pool_writes() const { return recovered_pool_writes_; }
  /// Crash-restart windows applied, summed across shards.
  int pool_restarts_applied() const {
    int n = 0;
    for (const ShardState& sh : shards_) n += sh.pool_restarts_applied;
    return n;
  }
  const tp::RetryStats& fault_retry_stats() const { return retry_stats_; }

 private:
  friend class ExecutionContext;

  static constexpr uint32_t kNil = 0xffffffffu;

  struct PageState {
    Perm compute_perm = Perm::kNone;
    Perm temp_perm = Perm::kNone;
    /// Per-page TLB-shootdown counter (see PagePin::page_epoch). Bumped by
    /// BumpTlbEpoch(page) alongside the observable translation epoch.
    uint32_t tlb_epoch = 0;
    bool compute_dirty = false;
    bool temp_touched = false;
    bool in_memory_pool = false;
    bool mem_dirty = false;   ///< pool copy dirty w.r.t. storage
    bool on_storage = false;  ///< page has a copy in the storage pool
    bool ref_bit = false;     ///< CLOCK second-chance reference bit
    /// Compute node whose cache maps the page (meaningful only while
    /// compute_perm != kNone). Exactly one client may cache a page at a
    /// time — the two-sided §4.1 protocol stays two-sided; a touch from
    /// another client migrates the page (see ComputeTouch).
    uint8_t owner = 0;
    /// End of the §4.1 in-flight window of a memory-side upgrade request;
    /// compute-side write faults inside the window lose the tiebreak.
    Nanos mem_upgrade_inflight_until = 0;
  };

  /// Intrusive-by-index LRU list over page ids. List surgery is inline:
  /// it sits on the hit path of every charged access (directly or via the
  /// pinned fast path's move-to-front-if-needed).
  class LruList {
   public:
    void EnsureSize(size_t n);
    bool Contains(PageId p) const {
      return p < in_list_.size() && in_list_[p] != 0;
    }
    void PushFront(PageId p) {
      EnsureSize(p + 1);
      TELEPORT_DCHECK(!Contains(p));
      prev_[p] = kNil;
      next_[p] = head_;
      if (head_ != kNil) prev_[head_] = static_cast<uint32_t>(p);
      head_ = static_cast<uint32_t>(p);
      if (tail_ == kNil) tail_ = static_cast<uint32_t>(p);
      in_list_[p] = 1;
      ++size_;
    }
    void Remove(PageId p) {
      TELEPORT_DCHECK(Contains(p));
      const uint32_t pr = prev_[p];
      const uint32_t nx = next_[p];
      if (pr != kNil) next_[pr] = nx; else head_ = nx;
      if (nx != kNil) prev_[nx] = pr; else tail_ = pr;
      prev_[p] = next_[p] = kNil;
      in_list_[p] = 0;
      --size_;
    }
    void MoveToFront(PageId p) {
      Remove(p);
      PushFront(p);
    }
    /// Most-recently-used element; kNil if empty. The pinned fast path
    /// skips MoveToFront when the page is already at the front, which
    /// preserves the exact recency order at a fraction of the cost.
    PageId Front() const { return head_; }
    /// Least-recently-used element; kNil if empty.
    PageId Back() const { return tail_; }
    size_t size() const { return size_; }
    /// Empties the list in O(capacity) (crash-restart wipes a whole pool).
    void Clear();

   private:
    std::vector<uint32_t> prev_, next_;
    /// Membership bitmap. uint8_t, not vector<bool>: Contains() is on the
    /// access hot path and the proxy-reference bit arithmetic costs more
    /// than the 8x space.
    std::vector<uint8_t> in_list_;
    uint32_t head_ = kNil, tail_ = kNil;
    size_t size_ = 0;
  };

  PageState& PS(PageId p);
  const PageState& PS(PageId p) const;

  void EnsurePageTables();

  /// Charges the DRAM portion of a hit (sequential vs random split).
  void ChargeDram(ExecutionContext& ctx, PageId page, uint64_t len);

  // Fault paths.
  void ComputeTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                    bool write);
  void MemoryTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                   bool write);
  void LocalTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                  bool write);
  void LinuxSsdTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                     bool write);

  /// Brings `page` into the memory pool (recursive fault to storage if
  /// needed). Returns the pool-side cost so callers can fold it into a
  /// fault handler's service time; storage metrics are charged to `ctx`.
  Nanos EnsureInMemoryPoolCost(ExecutionContext& ctx, PageId page);

  /// Inserts a page into `ctx`'s node's compute cache, evicting if full.
  void CacheInsert(ExecutionContext& ctx, PageId page, Perm perm, bool dirty);
  /// Applies the configured replacement policy's hit bookkeeping (on the
  /// owning node's cache).
  void TouchCachePage(PageId page);
  void EvictOneCachePage(ExecutionContext& ctx);
  /// Evicts a specific page from its owner's cache (cross-node migration:
  /// another client touched a page this one caches). Same charges and
  /// events as a capacity eviction of that page.
  void EvictSpecificCachePage(ExecutionContext& ctx, PageId page);
  void EvictOnePoolPage(ExecutionContext& ctx, int shard);

  /// Reports a completed transition to the attached observer, if any.
  void Notify(CoherenceEvent::Kind kind, PageId page, bool write, Nanos at,
              uint64_t epoch = 0, int node = 0) {
    if (observer_ == nullptr) return;
    observer_->OnCoherenceEvent(
        CoherenceEvent{kind, page, write, coherence_mode_, at, epoch, node});
  }

  /// Acknowledgment point of one pool write: with journaling enabled,
  /// appends a redo record for `page`, charges the (group-commit-batched)
  /// append to `ctx` when non-null, and reports kJournalCommit. A no-op
  /// with journaling off, keeping every legacy path byte-identical.
  void JournalCommit(ExecutionContext* ctx, PageId page, Nanos at);
  /// Drops `page`'s redo record once the page reaches the storage pool.
  /// Free (it piggybacks on the eviction's storage write); reports
  /// kJournalTruncate when a record was live.
  void JournalTruncate(PageId page, Nanos at);

  /// Tracer instants for §4.1 protocol transitions and compute-cache
  /// fill/evict/writeback; no-ops without an attached tracer.
  void TraceProtocol(std::string_view name, PageId page, Nanos at);
  void TraceCache(std::string_view name, PageId page, Nanos at);

  /// §4.1 coherence: compute side faults during a pushdown session.
  void CoherenceComputeFault(ExecutionContext& ctx, PageId page, bool write);
  /// §4.1 coherence: temporary-context faults during a pushdown session.
  void CoherenceMemoryFault(ExecutionContext& ctx, PageId page, bool write);

  /// Page-fault RPC on `link` with retry/backoff under an attached fault
  /// injector; falls through to the reliable transport after enough
  /// exhausted rounds so forward progress never depends on the injector's
  /// schedule. Charges retry metrics to `ctx` and returns the completion
  /// time.
  Nanos RetriedPageFaultRpc(ExecutionContext& ctx, net::Link link,
                            uint64_t req_bytes, uint64_t resp_bytes,
                            Nanos handler_ns);

  /// TLB shootdown of one page: invalidates every PagePin on `page` (pins
  /// on other pages survive) and advances the observable translation epoch
  /// the model checker watches. Gated on the kSkipTlbShootdown mutation so
  /// the checker's shootdown assertion can be proven able to catch a
  /// protocol that forgets it.
  void BumpTlbEpoch(PageId page) {
    if (mutation_ != ProtocolMutation::kSkipTlbShootdown) {
      translation_epoch_.fetch_add(1, std::memory_order_relaxed);
      ++pages_[page].tlb_epoch;
    }
  }

  /// Wholesale TLB shootdown: invalidates every outstanding PagePin (used
  /// when page state is rewritten in bulk — session begin/end, pool
  /// restart). Gated like BumpTlbEpoch(page).
  void BumpTlbEpochAll() {
    if (mutation_ != ProtocolMutation::kSkipTlbShootdown) {
      translation_epoch_.fetch_add(1, std::memory_order_relaxed);
      mapping_epoch_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Ungated wholesale invalidation for memory-safety and behavior-mode
  /// events (page-table reallocation, staging, observer/mutation/scalar
  /// flips). Not part of the checked shootdown protocol, so the mutation
  /// cannot skip it.
  void InvalidateAllPins() {
    translation_epoch_.fetch_add(1, std::memory_order_relaxed);
    mapping_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Fills `pin` for `page` iff the page's *current* state makes every
  /// covered access a plain hit chargeable in closed form (see PagePin).
  /// Leaves the pin invalid otherwise. Reads state only — a fill never
  /// advances time, touches metrics, or changes page state.
  void FillPin(ExecutionContext& ctx, PagePin& pin, PageId page);

  /// One compute-pool client's cache state. Every client has its own DRAM
  /// of `compute_cache_bytes` and its own replacement order.
  struct ComputeNodeState {
    LruList cache_lru;
    uint64_t cache_used = 0;
  };

  /// One memory-pool shard: a contiguous slice of the page table (see
  /// ShardOf) with independent capacity, replacement order, redo journal,
  /// exactly-once dedup table, and lease epoch. The journal and dedup
  /// table model the battery-backed region that survives a crash-restart,
  /// so ApplyPoolRestartsAt never wipes them.
  struct ShardState {
    LruList pool_lru;
    uint64_t pool_used = 0;
    int pool_restarts_applied = 0;
    /// Lease epoch; bumped once per applied crash-restart window of THIS
    /// shard only.
    uint64_t pool_epoch = 1;
    Journal journal;
    /// Idempotency tokens already executed by this shard.
    std::vector<uint8_t> executed_tokens;
  };

  DdcConfig config_;
  sim::CostParams params_;
  AddressSpace space_;
  net::Fabric fabric_;

  std::vector<PageState> pages_;
  std::vector<ComputeNodeState> cnodes_;  ///< one per compute client
  std::vector<ShardState> shards_;        ///< one per memory shard
  uint64_t pages_per_shard_;              ///< block-partition stride
  uint64_t cache_capacity_pages_;         ///< per compute node
  uint64_t pool_capacity_pages_;          ///< per shard

  bool pushdown_active_ = false;
  int session_refcount_ = 0;
  CoherenceMode coherence_mode_ = CoherenceMode::kMesi;
  CoherenceObserver* observer_ = nullptr;
  ProtocolMutation mutation_ = ProtocolMutation::kNone;
  sim::Tracer* tracer_ = nullptr;

  /// Observable shootdown sequence number: advances on *every* shootdown
  /// (per-page or wholesale, plus the unconditional safety bumps), which is
  /// what model-checker invariant #5 watches. Pins do not validate against
  /// it — they check mapping_epoch_ and their page's own tlb_epoch.
  /// Relaxed atomic: under the parallel engine, tasks confined to disjoint
  /// shards evict/refill concurrently and all bump this whole-system
  /// counter; it is a commutative sum nobody reads mid-batch, so relaxed
  /// increments leave every batch-boundary value identical to serial.
  std::atomic<uint64_t> translation_epoch_{1};
  /// Wholesale pin-validity fence (PagePin::map_epoch). Starts at 1 so a
  /// default pin (map_epoch 0) can never validate. Bumped by
  /// BumpTlbEpochAll() on bulk protocol transitions and unconditionally on
  /// events that dangle raw pin pointers (page-table growth) or change what
  /// a pinned access must do (observer attach, mutation plant, scalar-knob
  /// flip) — those are memory-safety bumps, not part of the checked
  /// shootdown protocol, so the mutation cannot skip them.
  /// Relaxed atomic for the same reason as translation_epoch_, with one
  /// more wrinkle: pin validation *does* read it concurrently. Any bump
  /// during a batch only ever invalidates pins (a pin can never validate
  /// against an epoch it was not filled under), and the events that bump
  /// it wholesale (page-table growth, session begin/end, observer/scalar
  /// flips) are excluded from parallel regions by contract, so a confined
  /// task's pins see exactly the serial validation outcomes.
  std::atomic<uint64_t> mapping_epoch_{1};
  bool scalar_datapath_ = false;

  // Resilience state (inert without a fabric fault injector). Per-shard
  // epochs, journals, and dedup tables live in shards_.
  tp::RetryPolicy fault_retry_;
  Rng retry_rng_{0x7e1e904u};
  tp::RetryStats retry_stats_;
  uint64_t lost_pool_writes_ = 0;
  uint64_t recovered_pool_writes_ = 0;
  /// Redo-journal enable knob (TELEPORT_JOURNAL); applies to every shard.
  bool journal_enabled_ = false;
  /// Pages moved out by the last FlushAllCache(drop=true); consumed by
  /// BulkRefetch to restore the cache in the eager strawman.
  std::vector<PageId> flushed_pages_;
};

inline void* ExecutionContext::AccessImpl(VAddr addr, uint64_t len,
                                          bool write) {
  const uint64_t page_size = ms_->space().page_size();
  PageId page = addr / page_size;
  const PageId last = (addr + len - 1) / page_size;
  uint64_t remaining = len;
  VAddr cursor = addr;
  for (; page <= last; ++page) {
    const uint64_t in_page =
        std::min<uint64_t>(remaining, page_size - (cursor % page_size));
    switch (pool_) {
      case Pool::kCompute:
        switch (ms_->config().platform) {
          case Platform::kLocal:
            ms_->LocalTouch(*this, page, in_page, write);
            break;
          case Platform::kLinuxSsd:
            ms_->LinuxSsdTouch(*this, page, in_page, write);
            break;
          case Platform::kBaseDdc:
            ms_->ComputeTouch(*this, page, in_page, write);
            break;
        }
        break;
      case Pool::kMemory:
        ms_->MemoryTouch(*this, page, in_page, write);
        break;
    }
    cursor += in_page;
    remaining -= in_page;
  }
  void* p = ms_->space().HostPtr(addr, len);
  if (yield_fn_ != nullptr) yield_fn_(yield_arg_);
  return p;
}

inline void ExecutionContext::ChargeCpu(uint64_t ops) {
  const double ratio = pool_ == Pool::kMemory
                           ? ms_->config().memory_pool_clock_ratio
                           : 1.0;
  clock_.Advance(ms_->params().Cpu(ops, ratio));
  metrics_.cpu_ops += ops;
  if (yield_fn_ != nullptr) yield_fn_(yield_arg_);
}

// --- Extent fast path --------------------------------------------------------

inline bool ExecutionContext::PinnedRunReady(const PagePin& pin, VAddr addr,
                                             uint64_t len, bool write) const {
  // Interval first: a default pin has v_lo > v_hi, so the empty pin fails
  // here before any pointer is examined. The mapping-epoch check guards
  // every raw pointer in the pin (page-table growth bumps it); only then
  // may the page's own shootdown counter be dereferenced.
  return addr >= pin.v_lo && addr + len - 1 <= pin.v_hi &&
         pin.map_epoch == ms_->mapping_epoch_.load(std::memory_order_relaxed) &&
         (write ? pin.write_ok : pin.read_ok) &&
         *pin.stream_slot == pin.page &&
         *pin.page_epoch_ptr == pin.page_epoch;
}

inline void ExecutionContext::ChargePinnedRun(const PagePin& pin, uint64_t len,
                                              uint64_t n, bool write) {
  // Exactly the hit-side bookkeeping of n scalar Touch calls.
  if (pin.hit_counter != nullptr) *pin.hit_counter += n;
  if (pin.lru_kind == 1) {
    auto* lru = static_cast<MemorySystem::LruList*>(pin.lru_list);
    // MoveToFront of the front element is a structural no-op; skipping it
    // preserves the exact recency order.
    if (lru->Front() != pin.page) lru->MoveToFront(pin.page);
  } else if (pin.lru_kind == 2) {
    *pin.ref_bit = true;  // CLOCK: idempotent
  }
  if (write) {
    if (pin.dirty_flag != nullptr) *pin.dirty_flag = true;
    if (pin.touched_flag != nullptr) *pin.touched_flag = true;
  }
  // ChargeDram's sequential branch, in closed form.
  const Nanos per =
      pin.seq_ns +
      static_cast<Nanos>(static_cast<double>(len) * pin.ns_per_byte);
  if (!pin.notify) {
    clock_.Advance(per * static_cast<Nanos>(n));
    return;
  }
  // With an observer attached every access reports its own event at its own
  // timestamp, so the event stream stays identical to the scalar path.
  const auto kind = pin.pool_side ? CoherenceEvent::Kind::kMemoryAccess
                                  : CoherenceEvent::Kind::kComputeAccess;
  for (uint64_t i = 0; i < n; ++i) {
    clock_.Advance(per);
    ms_->Notify(kind, pin.page, write, clock_.now());
  }
}

inline void* ExecutionContext::TryPinned(PagePin& pin, VAddr addr,
                                         uint64_t len, bool write) {
  if (!PinnedRunReady(pin, addr, len, write)) {
    // A pin that still covers `addr` but failed validation may be a
    // casualty of a wholesale shootdown (session boundary, restart) or of
    // a transition that left the page pinnable (e.g. its own permission
    // upgrade). Revalidate in place: FillPin re-reads the page's current
    // state under the new epochs, so this is exactly as safe as the first
    // fill, and when the page is still a plain hit it skips the scalar
    // dispatch entirely. A reset pin has v_lo > v_hi and fails the range
    // test, so cold pins still take the cheap early exit.
    if (addr < pin.v_lo || addr + len - 1 > pin.v_hi) return nullptr;
    ms_->FillPin(*this, pin, pin.page);
    if (!PinnedRunReady(pin, addr, len, write)) return nullptr;
  }
  ChargePinnedRun(pin, len, 1, write);
  if (yield_fn_ != nullptr) yield_fn_(yield_arg_);
  return pin.host + (addr - pin.v_lo);
}

inline void* ExecutionContext::SlowAccess(VAddr addr, uint64_t len,
                                          bool write) {
  void* p = AccessImpl(addr, len, write);
  // Refill the context TLB only on the second consecutive miss to the same
  // page: two misses declare sequential intent, while random patterns (hash
  // probes) never pay the fill cost.
  const PageId page = (addr + len - 1) / ms_->space().page_size();
  if (page == last_slow_page_) {
    ms_->FillPin(*this, tlb_, page);
  } else {
    last_slow_page_ = page;
  }
  return p;
}

inline void* ExecutionContext::PinnedSlowAccess(PagePin& pin, VAddr addr,
                                                uint64_t len, bool write) {
  void* p = AccessImpl(addr, len, write);
  ms_->FillPin(*this, pin, (addr + len - 1) / ms_->space().page_size());
  return p;
}

template <typename T>
void ExecutionContext::LoadSpan(VAddr addr, T* dst, uint64_t count) {
  uint64_t i = 0;
  while (i < count) {
    const VAddr a = addr + i * sizeof(T);
    if (yield_fn_ == nullptr && PinnedRunReady(tlb_, a, sizeof(T), false)) {
      uint64_t n = (tlb_.v_hi - a + 1) / sizeof(T);  // run staying in the pin
      n = std::min(n, count - i);
      ChargePinnedRun(tlb_, sizeof(T), n, false);
      std::memcpy(dst + i, tlb_.host + (a - tlb_.v_lo), n * sizeof(T));
      i += n;
      continue;
    }
    const void* p = TryPinned(tlb_, a, sizeof(T), false);
    if (p == nullptr) p = PinnedSlowAccess(tlb_, a, sizeof(T), false);
    std::memcpy(dst + i, p, sizeof(T));
    ++i;
  }
}

template <typename T>
void ExecutionContext::StoreSpan(VAddr addr, const T* src, uint64_t count) {
  uint64_t i = 0;
  while (i < count) {
    const VAddr a = addr + i * sizeof(T);
    if (yield_fn_ == nullptr && PinnedRunReady(tlb_, a, sizeof(T), true)) {
      uint64_t n = (tlb_.v_hi - a + 1) / sizeof(T);
      n = std::min(n, count - i);
      ChargePinnedRun(tlb_, sizeof(T), n, true);
      std::memcpy(tlb_.host + (a - tlb_.v_lo), src + i, n * sizeof(T));
      i += n;
      continue;
    }
    void* p = TryPinned(tlb_, a, sizeof(T), true);
    if (p == nullptr) p = PinnedSlowAccess(tlb_, a, sizeof(T), true);
    std::memcpy(p, src + i, sizeof(T));
    ++i;
  }
}

template <typename T>
void ExecutionContext::Fill(VAddr addr, const T& value, uint64_t count) {
  uint64_t i = 0;
  while (i < count) {
    const VAddr a = addr + i * sizeof(T);
    if (yield_fn_ == nullptr && PinnedRunReady(tlb_, a, sizeof(T), true)) {
      uint64_t n = (tlb_.v_hi - a + 1) / sizeof(T);
      n = std::min(n, count - i);
      ChargePinnedRun(tlb_, sizeof(T), n, true);
      std::byte* h = tlb_.host + (a - tlb_.v_lo);
      for (uint64_t j = 0; j < n; ++j) {
        std::memcpy(h + j * sizeof(T), &value, sizeof(T));
      }
      i += n;
      continue;
    }
    void* p = TryPinned(tlb_, a, sizeof(T), true);
    if (p == nullptr) p = PinnedSlowAccess(tlb_, a, sizeof(T), true);
    std::memcpy(p, &value, sizeof(T));
    ++i;
  }
}

template <typename T>
void ExecutionContext::Memcpy(VAddr dst_addr, VAddr src_addr, uint64_t count) {
  // Element sequence of the scalar loop: load src[i], then store dst[i].
  // The source gets a local pin so the context TLB keeps covering the
  // destination page across calls.
  PagePin src_pin;
  uint64_t i = 0;
  while (i < count) {
    const VAddr sa = src_addr + i * sizeof(T);
    const VAddr da = dst_addr + i * sizeof(T);
    if (yield_fn_ == nullptr && PinnedRunReady(src_pin, sa, sizeof(T), false) &&
        PinnedRunReady(tlb_, da, sizeof(T), true)) {
      uint64_t n = std::min((src_pin.v_hi - sa + 1) / sizeof(T),
                            (tlb_.v_hi - da + 1) / sizeof(T));
      n = std::min(n, count - i);
      if (src_pin.notify || tlb_.notify) {
        // Preserve the exact load/store event interleaving for observers.
        for (uint64_t j = 0; j < n; ++j) {
          ChargePinnedRun(src_pin, sizeof(T), 1, false);
          ChargePinnedRun(tlb_, sizeof(T), 1, true);
        }
      } else {
        // Grouped charging: all Advances are constants, so the clock and
        // every counter land exactly where the alternating loop puts them.
        ChargePinnedRun(src_pin, sizeof(T), n, false);
        ChargePinnedRun(tlb_, sizeof(T), n, true);
      }
      std::memmove(tlb_.host + (da - tlb_.v_lo),
                   src_pin.host + (sa - src_pin.v_lo), n * sizeof(T));
      i += n;
      continue;
    }
    T v;
    const void* sp = TryPinned(src_pin, sa, sizeof(T), false);
    if (sp == nullptr) sp = PinnedSlowAccess(src_pin, sa, sizeof(T), false);
    std::memcpy(&v, sp, sizeof(T));
    void* dp = TryPinned(tlb_, da, sizeof(T), true);
    if (dp == nullptr) dp = PinnedSlowAccess(tlb_, da, sizeof(T), true);
    std::memcpy(dp, &v, sizeof(T));
    ++i;
  }
}

/// Sequential accessor carrying its own translation pin. Engine inner loops
/// hold one Cursor per array they walk, so each stream keeps its page pinned
/// independently of the others (mirroring the kStreams DRAM model): a miss
/// refills the pin unconditionally — constructing a Cursor *declares*
/// sequential intent, unlike the plain Load/Store TLB which waits for two
/// consecutive same-page misses. Charges and access order are identical to
/// issuing the same Load/Store sequence on the context directly.
class Cursor {
 public:
  explicit Cursor(ExecutionContext& ctx) : ctx_(&ctx) {}

  template <typename T>
  T Load(VAddr addr) {
    const void* p = ctx_->TryPinned(pin_, addr, sizeof(T), /*write=*/false);
    if (p == nullptr) {
      p = ctx_->PinnedSlowAccess(pin_, addr, sizeof(T), /*write=*/false);
    }
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }

  template <typename T>
  void Store(VAddr addr, const T& v) {
    void* p = ctx_->TryPinned(pin_, addr, sizeof(T), /*write=*/true);
    if (p == nullptr) {
      p = ctx_->PinnedSlowAccess(pin_, addr, sizeof(T), /*write=*/true);
    }
    std::memcpy(p, &v, sizeof(T));
  }

  const void* ReadRange(VAddr addr, uint64_t len) {
    const void* p = ctx_->TryPinned(pin_, addr, len, /*write=*/false);
    return p != nullptr ? p
                        : ctx_->PinnedSlowAccess(pin_, addr, len, false);
  }

  void* WriteRange(VAddr addr, uint64_t len) {
    void* p = ctx_->TryPinned(pin_, addr, len, /*write=*/true);
    return p != nullptr ? p : ctx_->PinnedSlowAccess(pin_, addr, len, true);
  }

 private:
  ExecutionContext* ctx_;
  PagePin pin_;
};

}  // namespace teleport::ddc

#endif  // TELEPORT_DDC_MEMORY_SYSTEM_H_
