#ifndef TELEPORT_DDC_MEMORY_SYSTEM_H_
#define TELEPORT_DDC_MEMORY_SYSTEM_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rle.h"
#include "common/rng.h"
#include "common/units.h"
#include "ddc/address_space.h"
#include "ddc/types.h"
#include "net/fabric.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/metrics.h"
#include "teleport/retry.h"

namespace teleport::ddc {

class MemorySystem;

/// A simulated thread of execution placed in one resource pool.
///
/// Owns a virtual clock and a metrics sink. All data accesses and CPU work of
/// application code are charged through this object; the actual data lives in
/// the MemorySystem's AddressSpace (real host memory), so application code
/// computes real results while time is simulated.
class ExecutionContext {
 public:
  ExecutionContext(MemorySystem* ms, Pool pool) : ms_(ms), pool_(pool) {}

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  Pool pool() const { return pool_; }
  MemorySystem& memory_system() { return *ms_; }

  sim::VirtualClock& clock() { return clock_; }
  Nanos now() const { return clock_.now(); }

  sim::Metrics& metrics() { return metrics_; }
  const sim::Metrics& metrics() const { return metrics_; }

  /// Reads a POD value at `addr`, charging the access.
  template <typename T>
  T Load(VAddr addr) {
    const void* p = AccessImpl(addr, sizeof(T), /*write=*/false);
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
  }

  /// Writes a POD value at `addr`, charging the access.
  template <typename T>
  void Store(VAddr addr, const T& v) {
    void* p = AccessImpl(addr, sizeof(T), /*write=*/true);
    std::memcpy(p, &v, sizeof(T));
  }

  /// Charges a read of [addr, addr+len) and returns a host pointer to it.
  const void* ReadRange(VAddr addr, uint64_t len) {
    return AccessImpl(addr, len, /*write=*/false);
  }

  /// Charges a write of [addr, addr+len) and returns a host pointer to it.
  void* WriteRange(VAddr addr, uint64_t len) {
    return AccessImpl(addr, len, /*write=*/true);
  }

  /// Charges `ops` simple CPU operations at this pool's clock speed.
  void ChargeCpu(uint64_t ops);

  /// Advances this context's clock without touching memory (think of it as
  /// a stall or sleep).
  void AdvanceTime(Nanos delta) { clock_.Advance(delta); }

  /// Time spent in coherence traffic (online synchronization) so far;
  /// used for the Fig 19/20 pushdown breakdown.
  Nanos coherence_ns() const { return coherence_ns_; }

  /// Cooperative-scheduling hook, fired after every charged access and CPU
  /// batch. sim::CoopTask uses it to preempt straight-line engine code at
  /// its instrumentation points; null (the default) costs one branch.
  using YieldFn = void (*)(void*);
  void set_yield_hook(YieldFn fn, void* arg) {
    yield_fn_ = fn;
    yield_arg_ = arg;
  }

 private:
  friend class MemorySystem;

  void* AccessImpl(VAddr addr, uint64_t len, bool write);

  MemorySystem* ms_;
  Pool pool_;
  sim::VirtualClock clock_;
  sim::Metrics metrics_;
  /// Recently touched pages, one per hardware-tracked stream: an access to
  /// a tracked page (or its successor) is stream-like and cheap, anything
  /// else pays the DRAM row-miss cost. Modeling several streams matters
  /// because columnar operators interleave a handful of sequential arrays
  /// (input column, candidate list, output), which real prefetchers and
  /// TLBs handle concurrently.
  static constexpr int kStreams = 8;
  PageId streams_[kStreams] = {~PageId{0}, ~PageId{0}, ~PageId{0},
                               ~PageId{0}, ~PageId{0}, ~PageId{0},
                               ~PageId{0}, ~PageId{0}};
  int stream_clock_ = 0;
  /// Previously faulted page (per backend), for SSD readahead modeling.
  PageId last_fault_page_ = ~PageId{0};
  Nanos coherence_ns_ = 0;
  YieldFn yield_fn_ = nullptr;
  void* yield_arg_ = nullptr;
};

/// Coherence behavior of a pushdown session (§4.1 default and §4.2
/// relaxations, selected with the pushdown `flags` argument).
enum class CoherenceMode : uint8_t {
  kMesi,          ///< default write-invalidate protocol (SWMR invariant)
  kPso,           ///< write requests downgrade the other side to read-only
  kWeakOrdering,  ///< no invalidation traffic on contended writes
  kNone,          ///< coherence off; user synchronizes with syncmem
};

std::string_view CoherenceModeToString(CoherenceMode m);

/// Deliberate protocol bugs, injectable for testing the model checker (a
/// checker that has never caught a planted bug proves nothing). Off in all
/// production paths.
enum class ProtocolMutation : uint8_t {
  kNone,
  /// CoherenceComputeFault skips the memory-side invalidate/downgrade
  /// handler: the temporary context keeps stale permissions.
  kSkipInvalidation,
  /// CoherenceMemoryFault never returns the dirty compute page, so the
  /// temporary context reads stale pool data.
  kSkipPageReturn,
};

/// A page-granular coherence/page-table transition, reported to an attached
/// CoherenceObserver *after* the implementation has applied it (so observers
/// can compare predicted state against the real page table). Only the
/// kBaseDdc paths emit events.
struct CoherenceEvent {
  enum class Kind : uint8_t {
    kSessionBegin,   ///< pushdown session activated (mode is valid)
    kSessionEnd,     ///< last concurrent session ended; temp table cleared
    kComputeAccess,  ///< ComputeTouch finished on `page` (write is valid)
    kMemoryAccess,   ///< MemoryTouch finished on `page` (write is valid)
    kComputeEvict,   ///< capacity eviction of `page` from the compute cache
    kPrefetchFill,   ///< `page` pulled read-only by sequential prefetch
    kSyncmemPage,    ///< `page` flushed clean by the syncmem syscall
    kFlushPage,      ///< `page` flushed by FlushRange (write := dropped)
    kRefetchPage,    ///< `page` re-cached read-only by BulkRefetch
    kPoolRestart,    ///< crash-restart wiped the memory pool
  };
  Kind kind;
  PageId page = 0;
  bool write = false;  ///< for kFlushPage: whether the page was dropped
  CoherenceMode mode = CoherenceMode::kMesi;
  Nanos at = 0;
};

std::string_view CoherenceEventKindToString(CoherenceEvent::Kind k);

/// Receives every CoherenceEvent from a MemorySystem it is attached to.
/// tp::ModelChecker implements this to shadow the protocol state machine.
class CoherenceObserver {
 public:
  virtual ~CoherenceObserver() = default;
  virtual void OnCoherenceEvent(const CoherenceEvent& ev) = 0;
};

/// Simulates the memory hierarchy of one deployment: the compute-local page
/// cache, the memory pool with its full page table, and the storage pool,
/// connected by the fabric. Implements the page-fault paths of a
/// disaggregated OS and, during a pushdown session, the two-sided coherence
/// protocol of §4.
///
/// All state transitions charge virtual time to the accessing context and
/// bump its metrics; the backing data itself lives in `space()`.
class MemorySystem {
 public:
  MemorySystem(const DdcConfig& config, const sim::CostParams& params,
               uint64_t address_space_capacity);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  AddressSpace& space() { return space_; }
  const DdcConfig& config() const { return config_; }
  const sim::CostParams& params() const { return params_; }
  net::Fabric& fabric() { return fabric_; }

  /// Creates a context placed in `pool`. Memory-pool contexts are only
  /// meaningful on the kBaseDdc platform.
  std::unique_ptr<ExecutionContext> CreateContext(Pool pool) {
    return std::make_unique<ExecutionContext>(this, pool);
  }

  /// Marks all currently allocated pages as resident in their platform's
  /// backing store (memory pool for DDC — spilling past its capacity to
  /// storage — or local DRAM/SSD for monolithic platforms) with a cold
  /// compute cache. Charges no time; used to stage workload data the way
  /// the paper stages database/graph state before measuring queries.
  void SeedData();

  // --- Pushdown session hooks (driven by teleport::PushdownRuntime) -------

  /// Builds the resident-page list sent at the start of pushdown (§4.1),
  /// sorted by page id with write permissions.
  std::vector<PageEntry> ResidentPages() const;

  /// Runs the Fig-8 temporary-context page-table preparation and activates
  /// the coherence protocol in the given mode. Returns the number of PTEs
  /// processed (the size of the cloned full page table).
  ///
  /// Sessions are reference-counted: concurrent pushdown requests from the
  /// same process share one temporary context and page table (§3.2); nested
  /// Begin calls must use the same mode and only the first initializes the
  /// table.
  uint64_t BeginPushdownSession(CoherenceMode mode);

  /// Merges temporary-context dirty bits back into the full page table and
  /// deactivates coherence once the last concurrent session ends. No fabric
  /// traffic (per §4.1).
  void EndPushdownSession();

  bool pushdown_active() const { return pushdown_active_; }
  CoherenceMode coherence_mode() const { return coherence_mode_; }

  /// The syncmem syscall (§4.2): synchronously flushes dirty compute-cached
  /// pages overlapping [addr, addr+len) back to the memory pool. Pages stay
  /// cached read-only clean.
  void Syncmem(ExecutionContext& ctx, VAddr addr, uint64_t len);

  /// Flushes every resident compute page to the memory pool as one streamed
  /// transfer; optionally drops the cache. This is the eager-synchronization
  /// strawman of Fig 20 and the "migrate the whole process" baseline of
  /// Fig 6. Returns the number of pages moved.
  uint64_t FlushAllCache(ExecutionContext& ctx, bool drop);

  /// Like FlushAllCache but restricted to pages overlapping
  /// [addr, addr+len): the Fig 6 "per thread" variant that only evicts the
  /// pushed thread's memory. Returns the number of pages moved.
  uint64_t FlushRange(ExecutionContext& ctx, VAddr addr, uint64_t len,
                      bool drop);

  /// Streams `pages` pages from the memory pool into the compute cache
  /// (the post-pushdown refetch of the eager strawman).
  void BulkRefetch(ExecutionContext& ctx, uint64_t pages);

  // --- Introspection (tests, benches) -------------------------------------

  uint64_t cache_pages_used() const { return cache_used_; }
  uint64_t cache_capacity_pages() const { return cache_capacity_pages_; }
  uint64_t memory_pool_pages_used() const { return pool_used_; }
  /// Pages with page-table state (grows lazily with the address space).
  uint64_t tracked_pages() const { return pages_.size(); }
  Perm compute_perm(PageId p) const { return PS(p).compute_perm; }
  Perm temp_perm(PageId p) const { return PS(p).temp_perm; }
  bool in_memory_pool(PageId p) const { return PS(p).in_memory_pool; }
  bool on_storage(PageId p) const { return PS(p).on_storage; }
  bool compute_dirty(PageId p) const { return PS(p).compute_dirty; }

  /// Verifies the Single-Writer-Multiple-Reader invariant for every page
  /// (§4.1 correctness argument). Aborts on violation; returns the number
  /// of pages checked. Only meaningful while a kMesi session is active.
  uint64_t CheckSwmrInvariant() const;

  // --- Protocol checking hooks ---------------------------------------------

  /// Attaches (or detaches, with nullptr) a coherence observer. Non-owning;
  /// at most one observer, which must outlive its attachment.
  void set_coherence_observer(CoherenceObserver* o) { observer_ = o; }
  CoherenceObserver* coherence_observer() const { return observer_; }

  /// Plants a deliberate protocol bug (tests only).
  void set_protocol_mutation(ProtocolMutation m) { mutation_ = m; }
  ProtocolMutation protocol_mutation() const { return mutation_; }

  /// Attaches (or detaches, with nullptr) a structured-event tracer, shared
  /// with the fabric so one trace carries cache/coherence transitions and
  /// per-kind message sends. Non-owning; recording never advances virtual
  /// time, so an attached tracer is invisible to the simulation.
  void set_tracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    fabric_.set_tracer(tracer);
  }
  sim::Tracer* tracer() const { return tracer_; }

  // --- Resilience (§3.2 failure handling) ---------------------------------

  /// Policy for retrying page-fault RPCs when a fault injector is attached
  /// to the fabric. Without an injector the fault path is untouched.
  void set_fault_retry_policy(const tp::RetryPolicy& p) { fault_retry_ = p; }
  const tp::RetryPolicy& fault_retry_policy() const { return fault_retry_; }
  /// Reseeds the deterministic jitter stream used by fault-path retries.
  void set_retry_seed(uint64_t seed) { retry_rng_ = Rng(seed); }

  /// Applies any memory-node crash-restart windows that have completed by
  /// ctx.now(): every pool-resident page is dropped from the restarted
  /// node; pages whose only fresh copy was the pool (`mem_dirty`, no
  /// flushed storage copy of those bytes) are counted as lost writes and
  /// reported via metrics. Compute-cache pages survive — the compute node
  /// did not crash. Returns the number of lost-write pages found this call.
  uint64_t ApplyPoolRestarts(ExecutionContext& ctx);

  uint64_t lost_pool_writes() const { return lost_pool_writes_; }
  int pool_restarts_applied() const { return pool_restarts_applied_; }
  const tp::RetryStats& fault_retry_stats() const { return retry_stats_; }

 private:
  friend class ExecutionContext;

  static constexpr uint32_t kNil = 0xffffffffu;

  struct PageState {
    Perm compute_perm = Perm::kNone;
    Perm temp_perm = Perm::kNone;
    bool compute_dirty = false;
    bool temp_touched = false;
    bool in_memory_pool = false;
    bool mem_dirty = false;   ///< pool copy dirty w.r.t. storage
    bool on_storage = false;  ///< page has a copy in the storage pool
    bool ref_bit = false;     ///< CLOCK second-chance reference bit
    /// End of the §4.1 in-flight window of a memory-side upgrade request;
    /// compute-side write faults inside the window lose the tiebreak.
    Nanos mem_upgrade_inflight_until = 0;
  };

  /// Intrusive-by-index LRU list over page ids.
  class LruList {
   public:
    void EnsureSize(size_t n);
    bool Contains(PageId p) const {
      return p < in_list_.size() && in_list_[p];
    }
    void PushFront(PageId p);
    void Remove(PageId p);
    void MoveToFront(PageId p) {
      Remove(p);
      PushFront(p);
    }
    /// Least-recently-used element; kNil if empty.
    PageId Back() const { return tail_; }
    size_t size() const { return size_; }
    /// Empties the list in O(capacity) (crash-restart wipes a whole pool).
    void Clear();

   private:
    std::vector<uint32_t> prev_, next_;
    std::vector<bool> in_list_;
    uint32_t head_ = kNil, tail_ = kNil;
    size_t size_ = 0;
  };

  PageState& PS(PageId p);
  const PageState& PS(PageId p) const;

  void EnsurePageTables();

  /// Charges the DRAM portion of a hit (sequential vs random split).
  void ChargeDram(ExecutionContext& ctx, PageId page, uint64_t len);

  // Fault paths.
  void ComputeTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                    bool write);
  void MemoryTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                   bool write);
  void LocalTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                  bool write);
  void LinuxSsdTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                     bool write);

  /// Brings `page` into the memory pool (recursive fault to storage if
  /// needed). Returns the pool-side cost so callers can fold it into a
  /// fault handler's service time; storage metrics are charged to `ctx`.
  Nanos EnsureInMemoryPoolCost(ExecutionContext& ctx, PageId page);

  /// Inserts a page into the compute cache, evicting if full.
  void CacheInsert(ExecutionContext& ctx, PageId page, Perm perm, bool dirty);
  /// Applies the configured replacement policy's hit bookkeeping.
  void TouchCachePage(PageId page);
  void EvictOneCachePage(ExecutionContext& ctx);
  void EvictOnePoolPage(ExecutionContext& ctx);

  /// Reports a completed transition to the attached observer, if any.
  void Notify(CoherenceEvent::Kind kind, PageId page, bool write, Nanos at) {
    if (observer_ == nullptr) return;
    observer_->OnCoherenceEvent(
        CoherenceEvent{kind, page, write, coherence_mode_, at});
  }

  /// Tracer instants for §4.1 protocol transitions and compute-cache
  /// fill/evict/writeback; no-ops without an attached tracer.
  void TraceProtocol(std::string_view name, PageId page, Nanos at);
  void TraceCache(std::string_view name, PageId page, Nanos at);

  /// §4.1 coherence: compute side faults during a pushdown session.
  void CoherenceComputeFault(ExecutionContext& ctx, PageId page, bool write);
  /// §4.1 coherence: temporary-context faults during a pushdown session.
  void CoherenceMemoryFault(ExecutionContext& ctx, PageId page, bool write);

  /// Page-fault RPC with retry/backoff under an attached fault injector;
  /// falls through to the reliable transport after enough exhausted rounds
  /// so forward progress never depends on the injector's schedule. Charges
  /// retry metrics to `ctx` and returns the completion time.
  Nanos RetriedPageFaultRpc(ExecutionContext& ctx, uint64_t req_bytes,
                            uint64_t resp_bytes, Nanos handler_ns);

  DdcConfig config_;
  sim::CostParams params_;
  AddressSpace space_;
  net::Fabric fabric_;

  std::vector<PageState> pages_;
  LruList cache_lru_;
  LruList pool_lru_;
  uint64_t cache_capacity_pages_;
  uint64_t pool_capacity_pages_;
  uint64_t cache_used_ = 0;
  uint64_t pool_used_ = 0;

  bool pushdown_active_ = false;
  int session_refcount_ = 0;
  CoherenceMode coherence_mode_ = CoherenceMode::kMesi;
  CoherenceObserver* observer_ = nullptr;
  ProtocolMutation mutation_ = ProtocolMutation::kNone;
  sim::Tracer* tracer_ = nullptr;

  // Resilience state (inert without a fabric fault injector).
  tp::RetryPolicy fault_retry_;
  Rng retry_rng_{0x7e1e904u};
  tp::RetryStats retry_stats_;
  int pool_restarts_applied_ = 0;
  uint64_t lost_pool_writes_ = 0;
  /// Pages moved out by the last FlushAllCache(drop=true); consumed by
  /// BulkRefetch to restore the cache in the eager strawman.
  std::vector<PageId> flushed_pages_;
};

inline void* ExecutionContext::AccessImpl(VAddr addr, uint64_t len,
                                          bool write) {
  const uint64_t page_size = ms_->space().page_size();
  PageId page = addr / page_size;
  const PageId last = (addr + len - 1) / page_size;
  uint64_t remaining = len;
  VAddr cursor = addr;
  for (; page <= last; ++page) {
    const uint64_t in_page =
        std::min<uint64_t>(remaining, page_size - (cursor % page_size));
    switch (pool_) {
      case Pool::kCompute:
        switch (ms_->config().platform) {
          case Platform::kLocal:
            ms_->LocalTouch(*this, page, in_page, write);
            break;
          case Platform::kLinuxSsd:
            ms_->LinuxSsdTouch(*this, page, in_page, write);
            break;
          case Platform::kBaseDdc:
            ms_->ComputeTouch(*this, page, in_page, write);
            break;
        }
        break;
      case Pool::kMemory:
        ms_->MemoryTouch(*this, page, in_page, write);
        break;
    }
    cursor += in_page;
    remaining -= in_page;
  }
  void* p = ms_->space().HostPtr(addr, len);
  if (yield_fn_ != nullptr) yield_fn_(yield_arg_);
  return p;
}

inline void ExecutionContext::ChargeCpu(uint64_t ops) {
  const double ratio = pool_ == Pool::kMemory
                           ? ms_->config().memory_pool_clock_ratio
                           : 1.0;
  clock_.Advance(ms_->params().Cpu(ops, ratio));
  metrics_.cpu_ops += ops;
  if (yield_fn_ != nullptr) yield_fn_(yield_arg_);
}

}  // namespace teleport::ddc

#endif  // TELEPORT_DDC_MEMORY_SYSTEM_H_
