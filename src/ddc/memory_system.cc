#include "ddc/memory_system.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "net/faults.h"
#include "sim/tracer.h"

namespace teleport::ddc {

std::string_view CoherenceModeToString(CoherenceMode m) {
  switch (m) {
    case CoherenceMode::kMesi:
      return "MESI";
    case CoherenceMode::kPso:
      return "PSO";
    case CoherenceMode::kWeakOrdering:
      return "WeakOrdering";
    case CoherenceMode::kNone:
      return "None";
  }
  return "Unknown";
}

std::string_view CoherenceEventKindToString(CoherenceEvent::Kind k) {
  switch (k) {
    case CoherenceEvent::Kind::kSessionBegin:
      return "SessionBegin";
    case CoherenceEvent::Kind::kSessionEnd:
      return "SessionEnd";
    case CoherenceEvent::Kind::kComputeAccess:
      return "ComputeAccess";
    case CoherenceEvent::Kind::kMemoryAccess:
      return "MemoryAccess";
    case CoherenceEvent::Kind::kComputeEvict:
      return "ComputeEvict";
    case CoherenceEvent::Kind::kPrefetchFill:
      return "PrefetchFill";
    case CoherenceEvent::Kind::kSyncmemPage:
      return "SyncmemPage";
    case CoherenceEvent::Kind::kFlushPage:
      return "FlushPage";
    case CoherenceEvent::Kind::kRefetchPage:
      return "RefetchPage";
    case CoherenceEvent::Kind::kPoolRestart:
      return "PoolRestart";
    case CoherenceEvent::Kind::kPoolRecover:
      return "PoolRecover";
    case CoherenceEvent::Kind::kJournalCommit:
      return "JournalCommit";
    case CoherenceEvent::Kind::kJournalTruncate:
      return "JournalTruncate";
    case CoherenceEvent::Kind::kPushdownAdmit:
      return "PushdownAdmit";
    case CoherenceEvent::Kind::kTxnRead:
      return "TxnRead";
    case CoherenceEvent::Kind::kTxnWrite:
      return "TxnWrite";
    case CoherenceEvent::Kind::kTxnCommit:
      return "TxnCommit";
    case CoherenceEvent::Kind::kTxnAbort:
      return "TxnAbort";
    case CoherenceEvent::Kind::kTxnUndo:
      return "TxnUndo";
  }
  return "Unknown";
}

// --- LruList ---------------------------------------------------------------

void MemorySystem::LruList::EnsureSize(size_t n) {
  if (prev_.size() < n) {
    prev_.resize(n, kNil);
    next_.resize(n, kNil);
    in_list_.resize(n, 0);
  }
}

void MemorySystem::LruList::Clear() {
  std::fill(prev_.begin(), prev_.end(), kNil);
  std::fill(next_.begin(), next_.end(), kNil);
  std::fill(in_list_.begin(), in_list_.end(), uint8_t{0});
  head_ = tail_ = kNil;
  size_ = 0;
}

// --- MemorySystem ------------------------------------------------------------

namespace {

// Block-partition stride: the address-space capacity is fixed at
// construction, so every page's shard is known before any allocation.
uint64_t PagesPerShard(uint64_t capacity_bytes, uint64_t page_size,
                       int shards) {
  const uint64_t cap_pages =
      std::max<uint64_t>(1, (capacity_bytes + page_size - 1) / page_size);
  const uint64_t m = static_cast<uint64_t>(std::max(1, shards));
  return std::max<uint64_t>(1, (cap_pages + m - 1) / m);
}

}  // namespace

MemorySystem::MemorySystem(const DdcConfig& config,
                           const sim::CostParams& params,
                           uint64_t address_space_capacity)
    : config_(config),
      params_(params),
      space_(address_space_capacity, params.page_size),
      fabric_(params, std::max(1, config.compute_nodes),
              std::max(1, config.memory_shards)),
      cnodes_(static_cast<size_t>(std::max(1, config.compute_nodes))),
      shards_(static_cast<size_t>(std::max(1, config.memory_shards))),
      pages_per_shard_(PagesPerShard(address_space_capacity, params.page_size,
                                     config.memory_shards)),
      cache_capacity_pages_(
          std::max<uint64_t>(1, config.compute_cache_bytes / params.page_size)),
      pool_capacity_pages_(std::max<uint64_t>(
          1, config.memory_pool_bytes /
                 static_cast<uint64_t>(std::max(1, config.memory_shards)) /
                 params.page_size)) {
  TELEPORT_CHECK(config.compute_nodes >= 1 && config.memory_shards >= 1)
      << "a rack has at least one compute node and one memory shard; got "
      << config.compute_nodes << "x" << config.memory_shards;
  if (config.compute_nodes > 1 || config.memory_shards > 1) {
    TELEPORT_CHECK(config.platform == Platform::kBaseDdc)
        << "multi-node racks only exist on the kBaseDdc platform";
  }
  TELEPORT_CHECK(config.compute_nodes <= 255)
      << "page ownership is tracked in a uint8_t";
  // The explore tier exports TELEPORT_SCALAR_DATAPATH=1 to force per-access
  // dispatch (schedule points at every element); any non-empty value other
  // than "0" enables it.
  const char* scalar = std::getenv("TELEPORT_SCALAR_DATAPATH");
  if (scalar != nullptr && scalar[0] != '\0' &&
      !(scalar[0] == '0' && scalar[1] == '\0')) {
    scalar_datapath_ = true;
  }
  // TELEPORT_JOURNAL=1 turns on the redo journal (durable pool recovery);
  // unset/0 preserves the lossy §3.2 crash-restart behavior byte-for-byte.
  const char* journal = std::getenv("TELEPORT_JOURNAL");
  if (journal != nullptr && journal[0] != '\0' &&
      !(journal[0] == '0' && journal[1] == '\0')) {
    journal_enabled_ = true;
  }
}

MemorySystem::PageState& MemorySystem::PS(PageId p) {
  EnsurePageTables();
  TELEPORT_DCHECK(p < pages_.size()) << "access beyond allocated pages";
  return pages_[p];
}

const MemorySystem::PageState& MemorySystem::PS(PageId p) const {
  TELEPORT_DCHECK(p < pages_.size());
  return pages_[p];
}

void MemorySystem::EnsurePageTables() {
  const uint64_t n = space_.num_pages();
  if (pages_.size() < n) {
    pages_.resize(n);
    for (ComputeNodeState& c : cnodes_) c.cache_lru.EnsureSize(n);
    for (ShardState& sh : shards_) sh.pool_lru.EnsureSize(n);
    // pages_ may have reallocated: every PageState pointer held by a pin is
    // dangling. Unconditional (memory safety, not protocol).
    InvalidateAllPins();
  }
}

void MemorySystem::SeedData() {
  EnsurePageTables();
  InvalidateAllPins();  // staging rewrites placement state wholesale
  for (PageId p = 0; p < pages_.size(); ++p) {
    PageState& s = pages_[p];
    if (s.compute_perm != Perm::kNone || s.in_memory_pool || s.on_storage) {
      continue;  // already placed somewhere
    }
    switch (config_.platform) {
      case Platform::kLocal:
        break;  // no placement bookkeeping needed
      case Platform::kLinuxSsd: {
        // Local DRAM first; overflow lives on the SSD (swapped out).
        ComputeNodeState& cn = cnodes_[0];
        if (cn.cache_used < cache_capacity_pages_) {
          s.compute_perm = Perm::kWrite;
          cn.cache_lru.PushFront(p);
          ++cn.cache_used;
        } else {
          s.on_storage = true;
        }
        break;
      }
      case Platform::kBaseDdc: {
        // Data is staged in its home shard; the compute caches start cold.
        ShardState& sh = shards_[static_cast<size_t>(ShardOf(p))];
        if (sh.pool_used < pool_capacity_pages_) {
          s.in_memory_pool = true;
          sh.pool_lru.PushFront(p);
          ++sh.pool_used;
        } else {
          s.on_storage = true;
        }
        break;
      }
    }
  }
}

void MemorySystem::ChargeDram(ExecutionContext& ctx, PageId page,
                              uint64_t len) {
  const Nanos byte_cost = static_cast<Nanos>(
      static_cast<double>(len) * params_.dram_seq_ns_per_byte);
  // Within a tracked stream's current page: prefetched, cheap.
  for (PageId& s : ctx.streams_) {
    if (page == s) {
      ctx.clock_.Advance(params_.dram_seq_access_ns + byte_cost);
      return;
    }
  }
  // Advancing a stream to its next page: one row-miss / TLB fill.
  for (PageId& s : ctx.streams_) {
    if (s != kNoPage && page == s + 1) {
      s = page;
      ctx.clock_.Advance(params_.dram_random_access_ns + byte_cost);
      return;
    }
  }
  // Genuinely random access: row miss, and it claims a stream slot.
  ctx.streams_[ctx.stream_clock_] = page;
  ctx.stream_clock_ = (ctx.stream_clock_ + 1) % ExecutionContext::kStreams;
  ctx.clock_.Advance(params_.dram_random_access_ns + byte_cost);
}

void MemorySystem::FillPin(ExecutionContext& ctx, PagePin& pin, PageId page) {
  pin.Reset();
  if (scalar_datapath_) return;  // pins never validate: pure scalar dispatch
  if (page >= pages_.size()) return;
  // The closed-form charge replays ChargeDram's sequential branch, which is
  // only taken while the page occupies one of the context's stream slots.
  PageId* slot = nullptr;
  for (PageId& s : ctx.streams_) {
    if (s == page) {
      slot = &s;
      break;
    }
  }
  if (slot == nullptr) return;
  PageState& s = pages_[page];
  switch (ctx.pool_) {
    case Pool::kCompute:
      switch (config_.platform) {
        case Platform::kLocal:
          // LocalTouch charges DRAM only: no counters, no replacement.
          pin.read_ok = pin.write_ok = true;
          break;
        case Platform::kLinuxSsd:
          if (s.compute_perm == Perm::kNone) return;
          pin.read_ok = true;
          // A write to a read-only page takes the upgrade path: not a hit.
          pin.write_ok = s.compute_perm == Perm::kWrite;
          pin.hit_counter = &ctx.metrics_.cache_hits;
          pin.dirty_flag = &s.compute_dirty;
          break;
        case Platform::kBaseDdc:
          if (s.compute_perm == Perm::kNone) return;
          // A page cached by another client takes the migration path.
          if (s.owner != static_cast<uint8_t>(ctx.node_)) return;
          pin.read_ok = true;
          pin.write_ok = s.compute_perm == Perm::kWrite;
          pin.hit_counter = &ctx.metrics_.cache_hits;
          pin.dirty_flag = &s.compute_dirty;
          pin.notify = observer_ != nullptr;
          break;
      }
      if (config_.platform != Platform::kLocal) {
        switch (config_.cache_policy) {
          case CachePolicy::kLru:
            pin.lru_kind = 1;
            pin.lru_list = &cnodes_[static_cast<size_t>(ctx.node_)].cache_lru;
            break;
          case CachePolicy::kFifo:
            break;  // hits do not promote
          case CachePolicy::kClock:
            pin.lru_kind = 2;
            pin.ref_bit = &s.ref_bit;
            break;
        }
      }
      break;
    case Pool::kMemory:
      if (!s.in_memory_pool) return;
      if (pushdown_active_ && coherence_mode_ != CoherenceMode::kNone) {
        if (s.temp_perm == Perm::kNone) return;
        pin.read_ok = true;
        pin.write_ok = s.temp_perm == Perm::kWrite;
      } else {
        pin.read_ok = pin.write_ok = true;
      }
      pin.hit_counter = &ctx.metrics_.memory_pool_hits;
      pin.dirty_flag = &s.mem_dirty;
      if (pushdown_active_) pin.touched_flag = &s.temp_touched;
      pin.lru_kind = 1;  // MemoryTouch promotes unconditionally
      pin.lru_list = &shards_[static_cast<size_t>(ShardOf(page))].pool_lru;
      pin.notify = observer_ != nullptr;
      pin.pool_side = true;
      break;
  }
  const uint64_t page_size = params_.page_size;
  pin.v_lo = static_cast<VAddr>(page) * page_size;
  pin.v_hi = pin.v_lo + page_size - 1;  // used_bytes is page-aligned
  pin.host = static_cast<std::byte*>(space_.HostPtr(pin.v_lo, page_size));
  pin.page = page;
  pin.stream_slot = slot;
  pin.seq_ns = params_.dram_seq_access_ns;
  pin.ns_per_byte = params_.dram_seq_ns_per_byte;
  pin.map_epoch = mapping_epoch_.load(std::memory_order_relaxed);
  pin.page_epoch = s.tlb_epoch;
  pin.page_epoch_ptr = &s.tlb_epoch;
}

void MemorySystem::LocalTouch(ExecutionContext& ctx, PageId page, uint64_t len,
                              bool write) {
  (void)write;
  PS(page);  // ensure tables sized (keeps introspection uniform)
  ChargeDram(ctx, page, len);
}

void MemorySystem::LinuxSsdTouch(ExecutionContext& ctx, PageId page,
                                 uint64_t len, bool write) {
  PageState& s = PS(page);
  if (s.compute_perm == Perm::kNone) {
    // Major or minor fault.
    ++ctx.metrics_.cache_misses;
    if (s.on_storage) {
      const bool seq = page == ctx.last_fault_page_ + 1;
      ctx.clock_.Advance(seq ? params_.ssd_seq_page_ns
                             : params_.ssd_random_page_ns);
      ++ctx.metrics_.storage_reads;
    } else {
      ctx.clock_.Advance(params_.minor_fault_ns);
    }
    ctx.last_fault_page_ = page;
    CacheInsert(ctx, page, write ? Perm::kWrite : Perm::kRead, write);
  } else {
    ++ctx.metrics_.cache_hits;
    TouchCachePage(page);
    if (write && s.compute_perm != Perm::kWrite) {
      s.compute_perm = Perm::kWrite;
      BumpTlbEpoch(page);
      ctx.clock_.Advance(params_.perm_upgrade_ns);
    }
    if (write) s.compute_dirty = true;
  }
  ChargeDram(ctx, page, len);
}

Nanos MemorySystem::EnsureInMemoryPoolCost(ExecutionContext& ctx,
                                           PageId page) {
  PageState& s = PS(page);
  const int shard = ShardOf(page);
  ShardState& sh = shards_[static_cast<size_t>(shard)];
  if (s.in_memory_pool) {
    sh.pool_lru.MoveToFront(page);
    return 0;
  }
  Nanos cost = 0;
  if (s.on_storage) {
    const bool seq = page == ctx.last_fault_page_ + 1;
    cost += seq ? params_.ssd_seq_page_ns : params_.ssd_random_page_ns;
    ctx.last_fault_page_ = page;
    ++ctx.metrics_.storage_reads;
  } else {
    cost += params_.minor_fault_ns;  // zero-fill allocation in the pool
  }
  if (sh.pool_used >= pool_capacity_pages_) EvictOnePoolPage(ctx, shard);
  BumpTlbEpoch(page);  // the page's pool residency changes
  s.in_memory_pool = true;
  sh.pool_lru.PushFront(page);
  ++sh.pool_used;
  return cost;
}

void MemorySystem::EvictOnePoolPage(ExecutionContext& ctx, int shard) {
  ShardState& sh = shards_[static_cast<size_t>(shard)];
  const PageId victim = sh.pool_lru.Back();
  TELEPORT_DCHECK(victim != kNil) << "memory pool empty but full";
  BumpTlbEpoch(victim);  // shootdown before the victim's state is rewritten
  PageState& v = pages_[victim];
  sh.pool_lru.Remove(victim);
  --sh.pool_used;
  v.in_memory_pool = false;
  if (v.mem_dirty || !v.on_storage) {
    ctx.clock_.Advance(params_.ssd_write_page_ns);
    ++ctx.metrics_.storage_writes;
    v.on_storage = true;
    v.mem_dirty = false;
  }
  // The page now has a storage copy: its redo record is redundant.
  JournalTruncate(victim, ctx.now());
}

void MemorySystem::TouchCachePage(PageId page) {
  switch (config_.cache_policy) {
    case CachePolicy::kLru:
      cnodes_[pages_[page].owner].cache_lru.MoveToFront(page);
      break;
    case CachePolicy::kFifo:
      break;  // insertion order only
    case CachePolicy::kClock:
      pages_[page].ref_bit = true;
      break;
  }
}

void MemorySystem::TraceProtocol(std::string_view name, PageId page,
                                 Nanos at) {
  if (tracer_ == nullptr) return;
  tracer_->Instant("coherence", name, at, sim::kTrackCoherence,
                   "\"page\":" + std::to_string(page));
}

void MemorySystem::TraceCache(std::string_view name, PageId page, Nanos at) {
  if (tracer_ == nullptr) return;
  tracer_->Instant("cache", name, at, sim::kTrackCompute,
                   "\"page\":" + std::to_string(page));
}

void MemorySystem::EvictOneCachePage(ExecutionContext& ctx) {
  ComputeNodeState& cn = cnodes_[static_cast<size_t>(ctx.node_)];
  PageId victim = cn.cache_lru.Back();
  if (config_.cache_policy == CachePolicy::kClock) {
    // Second chance: a referenced page at the hand is spared once.
    while (victim != kNil && pages_[victim].ref_bit) {
      pages_[victim].ref_bit = false;
      cn.cache_lru.MoveToFront(victim);
      victim = cn.cache_lru.Back();
    }
  }
  TELEPORT_DCHECK(victim != kNil) << "compute cache empty but full";
  EvictSpecificCachePage(ctx, victim);
}

void MemorySystem::EvictSpecificCachePage(ExecutionContext& ctx,
                                          PageId victim) {
  BumpTlbEpoch(victim);  // shootdown before the victim loses its mapping
  PageState& v = pages_[victim];
  TELEPORT_DCHECK(v.compute_perm != Perm::kNone);
  ComputeNodeState& cn = cnodes_[v.owner];
  cn.cache_lru.Remove(victim);
  --cn.cache_used;
  v.compute_perm = Perm::kNone;
  ++ctx.metrics_.cache_evictions;
  if (!v.compute_dirty) {
    TraceCache("Evict", victim, ctx.now());
    if (config_.platform == Platform::kBaseDdc) {
      Notify(CoherenceEvent::Kind::kComputeEvict, victim, false, ctx.now());
    }
    return;
  }
  v.compute_dirty = false;
  ++ctx.metrics_.dirty_writebacks;
  if (config_.platform == Platform::kLinuxSsd) {
    ctx.clock_.Advance(params_.ssd_write_page_ns);
    ++ctx.metrics_.storage_writes;
    v.on_storage = true;
    TraceCache("Writeback", victim, ctx.now());
    return;
  }
  // DDC: write the page back to its home shard over the evicting node's
  // link (for a cross-node migration the traffic leaves the old owner).
  const int shard = ShardOf(victim);
  ShardState& sh = shards_[static_cast<size_t>(shard)];
  const Nanos delivered =
      fabric_.SendToMemory(net::Link{static_cast<int>(v.owner), shard},
                           ctx.now(), params_.page_size + 64);
  ctx.clock_.AdvanceTo(delivered);
  fabric_.DrainQueueStats(ctx.metrics_);
  ++ctx.metrics_.net_messages;
  ctx.metrics_.net_bytes += params_.page_size + 64;
  ctx.metrics_.bytes_to_memory_pool += params_.page_size;
  // The pool materializes the page (no storage read: data came from compute).
  if (!v.in_memory_pool) {
    if (sh.pool_used >= pool_capacity_pages_) EvictOnePoolPage(ctx, shard);
    v.in_memory_pool = true;
    sh.pool_lru.PushFront(victim);
    ++sh.pool_used;
  } else {
    sh.pool_lru.MoveToFront(victim);
  }
  v.mem_dirty = true;
  // Ack point of the writeback: the pool acknowledges once the redo record
  // is durable, so the journal commit precedes the eviction event.
  JournalCommit(&ctx, victim, ctx.now());
  TraceCache("Writeback", victim, ctx.now());
  Notify(CoherenceEvent::Kind::kComputeEvict, victim, false, ctx.now());
}

void MemorySystem::CacheInsert(ExecutionContext& ctx, PageId page, Perm perm,
                               bool dirty) {
  PageState& s = PS(page);
  TELEPORT_DCHECK(s.compute_perm == Perm::kNone);
  ComputeNodeState& cn = cnodes_[static_cast<size_t>(ctx.node_)];
  if (cn.cache_used >= cache_capacity_pages_) EvictOneCachePage(ctx);
  // After the possible eviction (whose own shootdown precedes its event) so
  // the fill's shootdown is still outstanding when the access event fires.
  BumpTlbEpoch(page);
  s.compute_perm = perm;
  s.compute_dirty = dirty;
  s.ref_bit = false;
  s.owner = static_cast<uint8_t>(ctx.node_);
  cn.cache_lru.PushFront(page);
  ++cn.cache_used;
  TraceCache("Fill", page, ctx.now());
}

void MemorySystem::ComputeTouch(ExecutionContext& ctx, PageId page,
                                uint64_t len, bool write) {
  PageState& s = PS(page);
  // Cross-node migration: exactly one client may cache a page, keeping the
  // §4.1 protocol two-sided on the rack. A touch from a different client
  // first evicts the current owner's copy (dirty data rides the old owner's
  // link home), then faults the page in here like any miss.
  if (s.compute_perm != Perm::kNone &&
      s.owner != static_cast<uint8_t>(ctx.node_)) {
    EvictSpecificCachePage(ctx, page);
  }
  const bool sufficient =
      s.compute_perm == Perm::kWrite ||
      (!write && s.compute_perm == Perm::kRead);
  if (sufficient) {
    ++ctx.metrics_.cache_hits;
    TouchCachePage(page);
  } else if (pushdown_active_ && coherence_mode_ != CoherenceMode::kNone) {
    CoherenceComputeFault(ctx, page, write);
  } else if (s.compute_perm != Perm::kNone) {
    // Local R->W upgrade; the cached copy is the only one being written.
    ++ctx.metrics_.cache_hits;
    TouchCachePage(page);
    BumpTlbEpoch(page);
    s.compute_perm = Perm::kWrite;
    ctx.clock_.Advance(params_.perm_upgrade_ns);
  } else {
    // Full miss: fault to the page's home shard.
    const net::Link link{static_cast<int>(ctx.node_), ShardOf(page)};
    ++ctx.metrics_.cache_misses;
    const bool has_remote_data = s.in_memory_pool || s.on_storage;
    const bool sequential_fault =
        ctx.last_fault_page_ != kNoPage && page == ctx.last_fault_page_ + 1;
    Nanos handler = params_.fault_handler_ns;
    uint64_t resp_bytes = 64;
    if (has_remote_data) {
      handler += EnsureInMemoryPoolCost(ctx, page);
      resp_bytes += params_.page_size;
    }
    // Sequential prefetch (LegoOS-style, off by default): a fault that
    // extends the previous fault's stream pulls the next pages in the
    // same reply. Disabled during pushdown sessions (the temporary
    // context owns the coherence state then). A reply carries pages of
    // one shard only, so the batch stops at the shard boundary.
    std::vector<PageId> prefetch;
    if (config_.prefetch_pages > 0 && sequential_fault && has_remote_data &&
        !pushdown_active_) {
      for (int i = 1; i <= config_.prefetch_pages; ++i) {
        const PageId next = page + static_cast<PageId>(i);
        if (next >= space_.num_pages()) break;
        if (ShardOf(next) != link.dst) break;
        PageState& ns = pages_[next];
        if (ns.compute_perm != Perm::kNone) break;
        if (!ns.in_memory_pool && !ns.on_storage) break;
        handler += EnsureInMemoryPoolCost(ctx, next);
        resp_bytes += params_.page_size;
        prefetch.push_back(next);
      }
    }
    // First touch of an anonymous page still round-trips to the pool: the
    // disaggregated OS forwards all new allocations through the memory
    // pool's controller (§3), but no page payload moves.
    const Nanos done =
        fabric_.fault_injector() == nullptr
            ? fabric_.RoundTripFromCompute(link, ctx.now(), 64, resp_bytes,
                                           handler)
            : RetriedPageFaultRpc(ctx, link, 64, resp_bytes, handler);
    ctx.clock_.AdvanceTo(done);
    fabric_.DrainQueueStats(ctx.metrics_);
    ctx.metrics_.net_messages += 2;
    ctx.metrics_.net_bytes += 64 + resp_bytes;
    if (has_remote_data) {
      ctx.metrics_.bytes_from_memory_pool +=
          params_.page_size * (1 + prefetch.size());
    }
    ctx.last_fault_page_ = page + static_cast<PageId>(prefetch.size());
    for (const PageId p : prefetch) {
      CacheInsert(ctx, p, Perm::kRead, /*dirty=*/false);
      ++ctx.metrics_.prefetched_pages;
      Notify(CoherenceEvent::Kind::kPrefetchFill, p, false, ctx.now());
    }
    CacheInsert(ctx, page, write ? Perm::kWrite : Perm::kRead, write);
  }
  if (write) s.compute_dirty = true;
  ChargeDram(ctx, page, len);
  Notify(CoherenceEvent::Kind::kComputeAccess, page, write, ctx.now());
}

void MemorySystem::MemoryTouch(ExecutionContext& ctx, PageId page,
                               uint64_t len, bool write) {
  TELEPORT_DCHECK(config_.platform == Platform::kBaseDdc)
      << "memory-pool contexts only exist on DDC platforms";
  PageState& s = PS(page);
  if (pushdown_active_ && coherence_mode_ != CoherenceMode::kNone) {
    const bool sufficient =
        s.temp_perm == Perm::kWrite || (!write && s.temp_perm == Perm::kRead);
    if (!sufficient) CoherenceMemoryFault(ctx, page, write);
  }
  if (!s.in_memory_pool) {
    // True page fault: to storage (or zero-fill), no compute communication.
    const Nanos cost = EnsureInMemoryPoolCost(ctx, page);
    ctx.clock_.Advance(cost);
    ++ctx.metrics_.memory_pool_faults;
  } else {
    ++ctx.metrics_.memory_pool_hits;
    shards_[static_cast<size_t>(ShardOf(page))].pool_lru.MoveToFront(page);
  }
  if (write) {
    s.mem_dirty = true;
    if (pushdown_active_) s.temp_touched = true;
  }
  ChargeDram(ctx, page, len);
  Notify(CoherenceEvent::Kind::kMemoryAccess, page, write, ctx.now());
}

Nanos MemorySystem::RetriedPageFaultRpc(ExecutionContext& ctx, net::Link link,
                                        uint64_t req_bytes,
                                        uint64_t resp_bytes,
                                        Nanos handler_ns) {
  tp::RetryStats stats;
  Nanos t = ctx.now();
  // Each round burns fault_retry_.max_attempts attempts; between rounds the
  // caller waits out any scheduled outage (the heartbeat thread reports the
  // heal time, §3.2). Rounds are capped so a pathological schedule cannot
  // loop forever; after that the reliable transport carries the fault.
  for (int round = 0; round < 16; ++round) {
    const tp::RetryOutcome out = tp::RetryRoundTripFromCompute(
        fabric_, fault_retry_, retry_rng_, t, req_bytes, resp_bytes,
        handler_ns, net::MessageKind::kPageFaultRequest,
        net::MessageKind::kPageFaultReply, &stats, link);
    if (out.ok) {
      retry_stats_.Add(stats);
      ctx.metrics_.retries += stats.retries;
      ctx.metrics_.fault_events += stats.retries;
      return out.done;
    }
    t = out.gave_up_at;
    const Nanos heal = fabric_.NextReachableAt(t, link.dst);
    if (heal == net::Fabric::kNeverHeals) break;
    if (heal > t) t = heal;
  }
  retry_stats_.Add(stats);
  ctx.metrics_.retries += stats.retries;
  ctx.metrics_.fault_events += stats.retries;
  // Transport floor: ReliableDeliver retransmits below the RPC layer and
  // cannot lose the message, so the fault always completes.
  return fabric_.RoundTripFromCompute(link, t, req_bytes, resp_bytes,
                                      handler_ns);
}

void MemorySystem::CoherenceComputeFault(ExecutionContext& ctx, PageId page,
                                         bool write) {
  PageState& s = PS(page);
  const Nanos start = ctx.now();
  BumpTlbEpoch(page);  // every coherence transition is a shootdown

  // Weak Ordering: contended permission changes are silent; only data
  // movement (page absent from the cache) costs anything.
  if (coherence_mode_ == CoherenceMode::kWeakOrdering &&
      s.compute_perm != Perm::kNone) {
    s.compute_perm = Perm::kWrite;
    ctx.clock_.Advance(params_.perm_upgrade_ns);
    return;
  }

  // §4.1 concurrent-fault tiebreak: if the memory side has an upgrade
  // request in flight for this page, the compute pool loses, satisfies the
  // memory pool, and retries after a backoff.
  if (write && start < s.mem_upgrade_inflight_until) {
    ctx.clock_.AdvanceTo(s.mem_upgrade_inflight_until +
                         config_.tiebreak_backoff_ns);
  }

  const bool need_data = s.compute_perm == Perm::kNone;
  Nanos handler = params_.fault_handler_ns + params_.coherence_overhead_ns;
  uint64_t resp_bytes = 64;
  if (need_data) {
    handler += EnsureInMemoryPoolCost(ctx, page);
    resp_bytes += params_.page_size;
  }

  // Memory-side handler: Invalidate(t_pte, write) per Fig 8/9.
  if (coherence_mode_ != CoherenceMode::kWeakOrdering &&
      mutation_ != ProtocolMutation::kSkipInvalidation) {
    if (write) {
      if (s.temp_perm != Perm::kNone) {
        if (coherence_mode_ == CoherenceMode::kPso) {
          s.temp_perm = Perm::kRead;
          ++ctx.metrics_.coherence_downgrades;
          TraceProtocol("Downgrade", page, ctx.now());
        } else {
          s.temp_perm = Perm::kNone;
          ++ctx.metrics_.coherence_invalidations;
          TraceProtocol("Invalidate", page, ctx.now());
        }
      }
    } else if (s.temp_perm == Perm::kWrite) {
      s.temp_perm = Perm::kRead;
      ++ctx.metrics_.coherence_downgrades;
      TraceProtocol("Downgrade", page, ctx.now());
    }
  }

  const net::Link link{static_cast<int>(ctx.node_), ShardOf(page)};
  const Nanos done =
      fabric_.RoundTripFromCompute(link, ctx.now(), 64, resp_bytes, handler);
  ctx.clock_.AdvanceTo(done);
  fabric_.DrainQueueStats(ctx.metrics_);
  ctx.coherence_ns_ += ctx.now() - start;
  ctx.metrics_.coherence_messages += 2;
  ctx.metrics_.net_messages += 2;
  ctx.metrics_.net_bytes += 64 + resp_bytes;

  if (need_data) {
    ++ctx.metrics_.cache_misses;
    if (s.in_memory_pool || s.on_storage) {
      ctx.metrics_.bytes_from_memory_pool += params_.page_size;
    }
    CacheInsert(ctx, page, write ? Perm::kWrite : Perm::kRead, write);
  } else {
    s.compute_perm = write ? Perm::kWrite : Perm::kRead;
  }
}

void MemorySystem::CoherenceMemoryFault(ExecutionContext& ctx, PageId page,
                                        bool write) {
  PageState& s = PS(page);
  const Perm wanted = write ? Perm::kWrite : Perm::kRead;
  BumpTlbEpoch(page);  // every coherence transition is a shootdown

  // Weak Ordering: no invalidation traffic; both sides may hold writable
  // copies. Data movement still happens through the regular fault path.
  if (coherence_mode_ == CoherenceMode::kWeakOrdering) {
    s.temp_perm = wanted;
    return;
  }

  if (s.compute_perm == Perm::kNone) {
    // 'True' page fault (Fig 9 line 14): the page is not cached in the
    // compute pool; MemoryTouch will fetch it from storage if necessary.
    s.temp_perm = wanted;
    return;
  }

  // Some compute node caches the page: issue a coherence request to it over
  // its own link to this page's home shard.
  const Nanos start = ctx.now();
  // Fresher data lives in the cache and must come back with the reply.
  const bool page_back = s.compute_dirty &&
                         mutation_ != ProtocolMutation::kSkipPageReturn;
  Nanos handler = params_.coherence_overhead_ns + params_.perm_upgrade_ns;
  uint64_t resp_bytes = 64 + (page_back ? params_.page_size : 0);
  const net::Link link{static_cast<int>(s.owner), ShardOf(page)};

  if (write) {
    // ComputeOnPageRequest (Fig 9 lines 18-25): evict (default) or
    // downgrade (PSO) the compute copy.
    if (coherence_mode_ == CoherenceMode::kPso) {
      s.compute_perm = Perm::kRead;
      ++ctx.metrics_.coherence_downgrades;
      TraceProtocol("Downgrade", page, ctx.now());
    } else {
      ComputeNodeState& cn = cnodes_[s.owner];
      cn.cache_lru.Remove(page);
      --cn.cache_used;
      s.compute_perm = Perm::kNone;
      ++ctx.metrics_.coherence_invalidations;
      ++ctx.metrics_.cache_evictions;
      TraceProtocol("Invalidate", page, ctx.now());
    }
  } else if (s.compute_perm == Perm::kWrite) {
    s.compute_perm = Perm::kRead;
    ++ctx.metrics_.coherence_downgrades;
    TraceProtocol("Downgrade", page, ctx.now());
  }
  if (page_back) {
    s.compute_dirty = false;
    s.mem_dirty = true;
    ++ctx.metrics_.coherence_page_returns;
    ctx.metrics_.bytes_to_memory_pool += params_.page_size;
    TraceProtocol("PageReturn", page, ctx.now());
    // The returned page is fresh pool state the compute copy no longer
    // backs up: acknowledge it into the journal.
    JournalCommit(&ctx, page, ctx.now());
  }

  const Nanos done =
      fabric_.RoundTripFromMemory(link, ctx.now(), 64, resp_bytes, handler);
  if (write) {
    // Record the §4.1 in-flight window so a racing compute-side write
    // fault loses the tiebreak.
    s.mem_upgrade_inflight_until = done;
  }
  ctx.clock_.AdvanceTo(done);
  fabric_.DrainQueueStats(ctx.metrics_);
  ctx.coherence_ns_ += ctx.now() - start;
  ctx.metrics_.coherence_messages += 2;
  ctx.metrics_.net_messages += 2;
  ctx.metrics_.net_bytes += 64 + resp_bytes;

  s.temp_perm = wanted;
}

std::vector<PageEntry> MemorySystem::ResidentPages() const {
  std::vector<PageEntry> out;
  out.reserve(cache_pages_used());
  for (PageId p = 0; p < pages_.size(); ++p) {
    const PageState& s = pages_[p];
    if (s.compute_perm != Perm::kNone) {
      out.push_back(PageEntry{p, s.compute_perm == Perm::kWrite});
    }
  }
  return out;  // sorted by construction
}

uint64_t MemorySystem::BeginPushdownSession(CoherenceMode mode,
                                            uint64_t admit_epoch,
                                            int home_shard) {
  EnsurePageTables();
  if (pushdown_active_) {
    // Concurrent request from another thread of the same process: shares
    // the existing temporary context and page table (§3.2).
    TELEPORT_CHECK(mode == coherence_mode_)
        << "concurrent pushdown sessions must agree on coherence mode";
    ++session_refcount_;
    return pages_.size();
  }
  pushdown_active_ = true;
  session_refcount_ = 1;
  coherence_mode_ = mode;
  for (PageId p = 0; p < pages_.size(); ++p) {
    PageState& s = pages_[p];
    s.temp_touched = false;
    s.mem_upgrade_inflight_until = 0;
    if (mode == CoherenceMode::kNone) {
      s.temp_perm = Perm::kWrite;  // unrestricted; user syncs manually
      continue;
    }
    // Fig 8: clone of the full table, minus compute-writable pages, with
    // compute-read-only pages mapped read-only.
    switch (s.compute_perm) {
      case Perm::kWrite:
        s.temp_perm = Perm::kNone;
        break;
      case Perm::kRead:
        s.temp_perm = Perm::kRead;
        break;
      case Perm::kNone:
        s.temp_perm = Perm::kWrite;
        break;
    }
  }
  BumpTlbEpochAll();  // temp table materialized; pool-side pins must refill
  Notify(CoherenceEvent::Kind::kSessionBegin, 0, false, 0,
         admit_epoch == kCurrentEpoch ? pool_epoch(home_shard) : admit_epoch,
         home_shard);
  return pages_.size();
}

void MemorySystem::EndPushdownSession(ExecutionContext* ctx) {
  TELEPORT_CHECK(pushdown_active_);
  if (--session_refcount_ > 0) return;
  for (PageId p = 0; p < pages_.size(); ++p) {
    PageState& s = pages_[p];
    // Dirty bits of the temporary context merge into the full table with no
    // external communication (§4.1); temp writes already marked mem_dirty.
    // With journaling on, the merge is where session writes become
    // acknowledged pool state: each touched dirty page gets a redo record
    // in its home shard's journal (group-commit batching amortizes the
    // flushes).
    if (journal_enabled_ && s.temp_touched && s.mem_dirty) {
      JournalCommit(ctx, p, ctx != nullptr ? ctx->now() : 0);
    }
    s.temp_perm = Perm::kNone;
    s.temp_touched = false;
    s.mem_upgrade_inflight_until = 0;
  }
  pushdown_active_ = false;
  BumpTlbEpochAll();  // temp table torn down
  Notify(CoherenceEvent::Kind::kSessionEnd, 0, false, 0);
}

void MemorySystem::Syncmem(ExecutionContext& ctx, VAddr addr, uint64_t len) {
  TELEPORT_DCHECK(len > 0);
  EnsurePageTables();
  const uint64_t page_size = params_.page_size;
  const PageId first = addr / page_size;
  const PageId last = (addr + len - 1) / page_size;
  uint64_t flushed = 0;
  std::vector<uint64_t> per_shard(shards_.size(), 0);
  for (PageId p = first; p <= last && p < pages_.size(); ++p) {
    PageState& s = pages_[p];
    if (s.compute_perm == Perm::kNone || !s.compute_dirty) continue;
    if (s.owner != static_cast<uint8_t>(ctx.node_)) continue;
    BumpTlbEpoch(p);  // per-page: write permission drops to read
    s.compute_dirty = false;
    s.compute_perm = Perm::kRead;
    // The pool now holds fresh data; a temporary context may map it R.
    if (pushdown_active_ && coherence_mode_ != CoherenceMode::kNone &&
        s.temp_perm == Perm::kNone) {
      s.temp_perm = Perm::kRead;
    }
    const int shard = ShardOf(p);
    ShardState& sh = shards_[static_cast<size_t>(shard)];
    if (!s.in_memory_pool) {
      if (sh.pool_used >= pool_capacity_pages_) EvictOnePoolPage(ctx, shard);
      s.in_memory_pool = true;
      sh.pool_lru.PushFront(p);
      ++sh.pool_used;
    }
    s.mem_dirty = true;
    JournalCommit(&ctx, p, ctx.now());
    ++flushed;
    ++per_shard[static_cast<size_t>(shard)];
    Notify(CoherenceEvent::Kind::kSyncmemPage, p, false, ctx.now());
  }
  if (flushed == 0) return;
  // One grouped transfer per destination shard, all issued at the same
  // instant; the syscall returns when the slowest shard acknowledges. With
  // one shard this is exactly the legacy single message. Each group is a
  // scatter-gather verb: one 64-byte header plus one gather segment per
  // page, so contended backends ring a single doorbell per shard.
  Nanos last_delivered = 0;
  uint64_t groups = 0;
  std::vector<uint64_t> segments;
  for (size_t sidx = 0; sidx < per_shard.size(); ++sidx) {
    if (per_shard[sidx] == 0) continue;
    segments.assign(1, 64);
    segments.insert(segments.end(), per_shard[sidx], page_size);
    const uint64_t bytes = per_shard[sidx] * page_size + 64;
    const Nanos delivered = fabric_.SendGatherToMemory(
        net::Link{static_cast<int>(ctx.node_), static_cast<int>(sidx)},
        ctx.now(), segments, net::MessageKind::kSyncmem);
    last_delivered = std::max(last_delivered, delivered);
    ++groups;
    ctx.metrics_.net_bytes += bytes;
  }
  ctx.clock_.AdvanceTo(last_delivered + params_.fault_handler_ns);
  fabric_.DrainQueueStats(ctx.metrics_);
  ctx.metrics_.net_messages += groups;
  ctx.metrics_.bytes_to_memory_pool += flushed * page_size;
  ctx.metrics_.syncmem_pages += flushed;
}

uint64_t MemorySystem::FlushAllCache(ExecutionContext& ctx, bool drop) {
  return FlushRange(ctx, 0, space_.used_bytes(), drop);
}

uint64_t MemorySystem::FlushRange(ExecutionContext& ctx, VAddr addr,
                                  uint64_t len, bool drop) {
  EnsurePageTables();
  if (len == 0) return 0;
  const PageId first = addr / params_.page_size;
  const PageId last =
      std::min<PageId>((addr + len - 1) / params_.page_size,
                       pages_.empty() ? 0 : pages_.size() - 1);
  uint64_t moved = 0;
  uint64_t transferred = 0;
  std::vector<uint64_t> per_shard(shards_.size(), 0);
  flushed_pages_.clear();
  ComputeNodeState& cn = cnodes_[static_cast<size_t>(ctx.node_)];
  for (PageId p = first; p <= last && p < pages_.size(); ++p) {
    PageState& s = pages_[p];
    if (s.compute_perm == Perm::kNone) continue;
    // Another client's pages are not this node's to flush.
    if (s.owner != static_cast<uint8_t>(ctx.node_)) continue;
    BumpTlbEpoch(p);  // per-page unmap / writeback
    ++moved;
    flushed_pages_.push_back(p);
    if (s.compute_dirty) {
      // Dirty pages are written back over the fabric to their home shard.
      ++transferred;
      ++per_shard[static_cast<size_t>(ShardOf(p))];
      s.compute_dirty = false;
      const int shard = ShardOf(p);
      ShardState& sh = shards_[static_cast<size_t>(shard)];
      if (!s.in_memory_pool) {
        if (sh.pool_used >= pool_capacity_pages_) EvictOnePoolPage(ctx, shard);
        s.in_memory_pool = true;
        sh.pool_lru.PushFront(p);
        ++sh.pool_used;
      }
      s.mem_dirty = true;
      JournalCommit(&ctx, p, ctx.now());
    } else {
      // Clean pages move no data but still go through the page-by-page
      // eviction path (unmap + TLB shootdown per page).
      ctx.clock_.Advance(params_.eager_sync_per_page_ns / 2);
    }
    if (drop) {
      cn.cache_lru.Remove(p);
      --cn.cache_used;
      s.compute_perm = Perm::kNone;
    }
    Notify(CoherenceEvent::Kind::kFlushPage, p, drop, ctx.now());
  }
  if (moved == 0) return 0;
  const uint64_t bytes = transferred * params_.page_size;
  if (fabric_.backend() != net::Backend::kIdeal && transferred > 0) {
    // Contended backends ride the eager writeback over the fabric: one
    // scatter-gather verb per destination shard, so queue residency and NIC
    // sharing stretch the flush. kIdeal keeps the closed-form estimate below
    // (it never touched the fabric, and committed channel residency from a
    // flush would perturb unrelated lagging sends' FIFO clamps).
    Nanos last_delivered = ctx.now();
    std::vector<uint64_t> segments;
    for (size_t sidx = 0; sidx < per_shard.size(); ++sidx) {
      if (per_shard[sidx] == 0) continue;
      segments.assign(per_shard[sidx], params_.page_size);
      last_delivered = std::max(
          last_delivered,
          fabric_.SendGatherToMemory(
              net::Link{static_cast<int>(ctx.node_), static_cast<int>(sidx)},
              ctx.now(), segments, net::MessageKind::kPageReturn));
    }
    ctx.clock_.AdvanceTo(last_delivered);
    ctx.clock_.Advance(static_cast<Nanos>(transferred) *
                       params_.eager_sync_per_page_ns);
    fabric_.DrainQueueStats(ctx.metrics_);
  } else {
    const Nanos cost =
        params_.net_latency_ns +
        static_cast<Nanos>(static_cast<double>(bytes) /
                           params_.net_bytes_per_ns) +
        static_cast<Nanos>(transferred) * params_.eager_sync_per_page_ns;
    ctx.clock_.Advance(cost);
  }
  ctx.metrics_.net_messages += transferred + 1;
  ctx.metrics_.net_bytes += bytes + 64;
  ctx.metrics_.bytes_to_memory_pool += bytes;
  return moved;
}

void MemorySystem::BulkRefetch(ExecutionContext& ctx, uint64_t pages) {
  if (pages == 0) return;
  // Repopulate the pages flushed by the last FlushAllCache(drop=true).
  uint64_t refetched = 0;
  std::vector<uint64_t> per_shard(shards_.size(), 0);
  ComputeNodeState& cn = cnodes_[static_cast<size_t>(ctx.node_)];
  for (PageId p : flushed_pages_) {
    if (refetched >= pages) break;
    PageState& s = PS(p);
    if (s.compute_perm != Perm::kNone) continue;
    if (cn.cache_used >= cache_capacity_pages_) EvictOneCachePage(ctx);
    BumpTlbEpoch(p);  // per-page refill (after the eviction's own shootdown)
    s.compute_perm = Perm::kRead;
    s.compute_dirty = false;
    s.owner = static_cast<uint8_t>(ctx.node_);
    cn.cache_lru.PushFront(p);
    ++cn.cache_used;
    ++refetched;
    ++per_shard[static_cast<size_t>(ShardOf(p))];
    Notify(CoherenceEvent::Kind::kRefetchPage, p, false, ctx.now());
  }
  const uint64_t bytes = refetched * params_.page_size;
  if (fabric_.backend() != net::Backend::kIdeal && refetched > 0) {
    // Mirror image of the FlushRange contended path: the refill streams back
    // from each home shard as one gather list over the shared controller.
    Nanos last_delivered = ctx.now();
    std::vector<uint64_t> segments;
    for (size_t sidx = 0; sidx < per_shard.size(); ++sidx) {
      if (per_shard[sidx] == 0) continue;
      segments.assign(per_shard[sidx], params_.page_size);
      last_delivered = std::max(
          last_delivered,
          fabric_.SendGatherToCompute(
              net::Link{static_cast<int>(ctx.node_), static_cast<int>(sidx)},
              ctx.now(), segments, net::MessageKind::kPageFaultReply));
    }
    ctx.clock_.AdvanceTo(last_delivered);
    ctx.clock_.Advance(static_cast<Nanos>(refetched) *
                       params_.eager_sync_per_page_ns);
    fabric_.DrainQueueStats(ctx.metrics_);
  } else {
    const Nanos cost =
        params_.net_latency_ns +
        static_cast<Nanos>(static_cast<double>(bytes) /
                           params_.net_bytes_per_ns) +
        static_cast<Nanos>(refetched) * params_.eager_sync_per_page_ns;
    ctx.clock_.Advance(cost);
  }
  ctx.metrics_.net_messages += refetched;
  ctx.metrics_.net_bytes += bytes;
  ctx.metrics_.bytes_from_memory_pool += bytes;
}

MemorySystem::RestartOutcome MemorySystem::ApplyPoolRestartsAt(
    ExecutionContext& ctx, Nanos now) {
  RestartOutcome out;
  const net::FaultInjector* inj = fabric_.fault_injector();
  if (inj == nullptr) return out;
  // Shards restart independently: a crash of shard A wipes (and replays)
  // only A's page range, journal, and epoch. Ascending order keeps the
  // event sequence deterministic when several shards restarted by `now`.
  for (int shard = 0; shard < memory_shards(); ++shard) {
    ShardState& sh = shards_[static_cast<size_t>(shard)];
    const int completed = inj->CrashRestartsCompletedBy(now, shard);
    if (completed <= sh.pool_restarts_applied) continue;
    const int windows = completed - sh.pool_restarts_applied;
    sh.pool_restarts_applied = completed;
    // Each completed crash-restart window opens a fresh lease epoch, even
    // when several windows are absorbed in one batch: sessions admitted
    // under any earlier epoch of this shard must be fenced.
    sh.pool_epoch += static_cast<uint64_t>(windows);
    EnsurePageTables();
    BumpTlbEpochAll();  // the shard's page-table slice is wiped wholesale
    // The restarted shard comes back with empty DRAM: every pool-resident
    // page of its range is dropped. Pages whose bytes were flushed to
    // storage are recoverable (refaulted on demand). Unflushed writes are
    // gone unless this shard's journal holds their redo record; writes that
    // bypassed an acknowledgement point (direct pool stores outside any
    // session) are genuinely unrecoverable and get reported. Compute-cache
    // pages and other shards are untouched.
    const bool replay =
        journal_enabled_ && mutation_ != ProtocolMutation::kSkipJournalReplay;
    uint64_t lost = 0;
    for (PageId p = static_cast<PageId>(shard) * pages_per_shard_;
         p < pages_.size() && ShardOf(p) == shard; ++p) {
      PageState& s = pages_[p];
      if (!s.in_memory_pool) continue;
      s.in_memory_pool = false;
      if (s.mem_dirty && !(replay && sh.journal.Has(p))) {
        s.mem_dirty = false;
        ++lost;
      }
    }
    sh.pool_lru.Clear();
    sh.pool_used = 0;
    out.lost += lost;
    lost_pool_writes_ += lost;
    ctx.metrics_.lost_pool_writes += lost;
    if (tracer_ != nullptr) {
      tracer_->Instant("coherence", "PoolRestart", now, sim::kTrackCoherence,
                       "\"lost_writes\":" + std::to_string(lost));
    }
    Notify(CoherenceEvent::Kind::kPoolRestart, 0, false, now, sh.pool_epoch,
           shard);
    if (replay) {
      // Replay re-materializes every journaled page into this shard's DRAM,
      // dirty again (the storage copy, if any, predates the acknowledged
      // write). Records stay live so a back-to-back crash recovers them
      // again.
      uint64_t recovered = 0;
      for (const PageId p : sh.journal.LiveRecords()) {
        PageState& s = pages_[p];
        s.in_memory_pool = true;
        s.mem_dirty = true;
        sh.pool_lru.PushFront(p);
        ++sh.pool_used;
        ++recovered;
        Notify(CoherenceEvent::Kind::kPoolRecover, p, false, now, 0, shard);
      }
      out.recovery_ns += sh.journal.ReplayCost(recovered);
      out.recovered += recovered;
      recovered_pool_writes_ += recovered;
      ctx.metrics_.recovered_pool_writes += recovered;
      if (tracer_ != nullptr) {
        tracer_->Span("recovery", "JournalReplay", now,
                      sh.journal.ReplayCost(recovered), sim::kTrackMemoryPool,
                      "\"recovered\":" + std::to_string(recovered));
      }
    }
  }
  return out;
}

bool MemorySystem::AdmitPushdown(ExecutionContext& ctx, uint64_t token,
                                 Nanos at, int shard) {
  ShardState& sh = shards_[static_cast<size_t>(shard)];
  if (token >= sh.executed_tokens.size()) {
    sh.executed_tokens.resize(token + 1, 0);
  }
  const bool duplicate = sh.executed_tokens[token] != 0;
  sh.executed_tokens[token] = 1;
  bool execute = !duplicate;
  if (duplicate) {
    if (mutation_ == ProtocolMutation::kReplayDuplicate) {
      execute = true;  // planted bug: the dedup table "forgets" the token
    } else {
      ++ctx.metrics_.dedup_hits;
    }
  }
  Notify(CoherenceEvent::Kind::kPushdownAdmit, token, execute, at, 0, shard);
  return execute;
}

void MemorySystem::JournalCommit(ExecutionContext* ctx, PageId page,
                                 Nanos at) {
  if (!journal_enabled_) return;
  const int shard = ShardOf(page);
  const Journal::AppendResult r =
      shards_[static_cast<size_t>(shard)].journal.Append(page);
  if (ctx != nullptr) {
    ctx->clock_.Advance(r.cost);
    ++ctx->metrics_.journal_appends;
    if (r.flushed) ++ctx->metrics_.journal_flushes;
    at = ctx->now();
  }
  Notify(CoherenceEvent::Kind::kJournalCommit, page, false, at, 0, shard);
}

void MemorySystem::JournalTruncate(PageId page, Nanos at) {
  if (!journal_enabled_) return;
  const int shard = ShardOf(page);
  if (shards_[static_cast<size_t>(shard)].journal.Truncate(page)) {
    Notify(CoherenceEvent::Kind::kJournalTruncate, page, false, at, 0, shard);
  }
}

uint64_t MemorySystem::CheckSwmrInvariant() const {
  uint64_t checked = 0;
  for (PageId p = 0; p < pages_.size(); ++p) {
    const PageState& s = pages_[p];
    const bool compute_w = s.compute_perm == Perm::kWrite;
    const bool temp_w = s.temp_perm == Perm::kWrite;
    TELEPORT_CHECK(!(compute_w && s.temp_perm != Perm::kNone))
        << "SWMR violated: compute W + temp " << static_cast<int>(s.temp_perm)
        << " on page " << p;
    TELEPORT_CHECK(!(temp_w && s.compute_perm != Perm::kNone))
        << "SWMR violated: temp W + compute "
        << static_cast<int>(s.compute_perm) << " on page " << p;
    ++checked;
  }
  return checked;
}

}  // namespace teleport::ddc
