#include "mr/engine.h"

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "mr/text.h"

namespace teleport::mr {
namespace {

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  TextCorpus corpus;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment MakeDeployment(ddc::Platform platform, uint64_t bytes = 1 << 20,
                          double cache_fraction = 0.05) {
  Deployment d;
  TextConfig tc;
  tc.bytes = bytes;
  ddc::DdcConfig dc;
  dc.platform = platform;
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096,
      static_cast<uint64_t>(cache_fraction * static_cast<double>(bytes)));
  dc.memory_pool_bytes = bytes * 64;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             bytes * 64);
  d.corpus = GenerateText(d.ms.get(), tc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  }
  return d;
}

std::string HostText(Deployment& d) {
  const char* p = static_cast<const char*>(
      d.ms->space().HostPtr(d.corpus.addr, d.corpus.bytes));
  return std::string(p, d.corpus.bytes);
}

/// Host reference: word -> count.
std::unordered_map<std::string, int64_t> ReferenceWordCount(
    const std::string& text) {
  std::unordered_map<std::string, int64_t> counts;
  std::string word;
  for (char ch : text) {
    if (ch != ' ' && ch != '\n') {
      word += ch;
    } else if (!word.empty()) {
      ++counts[word];
      word.clear();
    }
  }
  if (!word.empty()) ++counts[word];
  return counts;
}

/// Host reference: matching lines (a trailing unterminated line counts).
std::vector<std::string> ReferenceGrep(const std::string& text,
                                       const std::string& pattern) {
  std::vector<std::string> matches;
  std::string line;
  for (char ch : text) {
    if (ch != '\n') {
      line += ch;
      continue;
    }
    if (line.find(pattern) != std::string::npos) matches.push_back(line);
    line.clear();
  }
  if (!line.empty() && line.find(pattern) != std::string::npos) {
    matches.push_back(line);
  }
  return matches;
}

TEST(TextGenTest, CorpusIsWellFormed) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  const std::string text = HostText(d);
  for (char ch : text) {
    ASSERT_TRUE((ch >= 'a' && ch <= 'z') || ch == ' ' || ch == '\n' ||
                ch == 'w')
        << "unexpected byte " << static_cast<int>(ch);
  }
  EXPECT_GT(d.corpus.words, 1000u);
  EXPECT_GT(d.corpus.lines, 10u);
}

TEST(TextGenTest, Deterministic) {
  auto d1 = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  auto d2 = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  EXPECT_EQ(HostText(d1), HostText(d2));
}

TEST(TextGenTest, ZipfSkewInWordFrequencies) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 19);
  const auto counts = ReferenceWordCount(HostText(d));
  int64_t max_count = 0, total = 0;
  for (const auto& [w, n] : counts) {
    max_count = std::max(max_count, n);
    total += n;
  }
  // The most frequent word takes far more than a uniform share.
  EXPECT_GT(max_count * static_cast<int64_t>(counts.size()), 20 * total);
}

TEST(WordCountTest, MatchesHostReference) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 19);
  const MrResult r = RunWordCount(*d.ctx, d.corpus, MrOptions{});
  const auto ref = ReferenceWordCount(HostText(d));
  int64_t ref_pairs = 0;
  for (const auto& [w, n] : ref) ref_pairs += n;
  EXPECT_EQ(r.pairs, static_cast<uint64_t>(ref_pairs));
  EXPECT_EQ(r.distinct_keys, ref.size());
}

TEST(WordCountTest, ChunkBoundariesDoNotChangeResult) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  MrOptions one;
  one.map_tasks = 1;
  one.reduce_tasks = 1;
  const MrResult r1 = RunWordCount(*d.ctx, d.corpus, one);
  auto d2 = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  MrOptions many;
  many.map_tasks = 13;  // deliberately unaligned
  many.reduce_tasks = 5;
  const MrResult r2 = RunWordCount(*d2.ctx, d2.corpus, many);
  EXPECT_EQ(r1.pairs, r2.pairs);
  EXPECT_EQ(r1.distinct_keys, r2.distinct_keys);
  EXPECT_EQ(r1.checksum, r2.checksum);
}

TEST(WordCountTest, ChecksumIdenticalAcrossPlatformsAndPushdown) {
  auto local = MakeDeployment(ddc::Platform::kLocal);
  const MrResult r_local = RunWordCount(*local.ctx, local.corpus, MrOptions{});

  auto base = MakeDeployment(ddc::Platform::kBaseDdc);
  const MrResult r_ddc = RunWordCount(*base.ctx, base.corpus, MrOptions{});

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  MrOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_phases = DefaultTeleportPhases();
  const MrResult r_tele = RunWordCount(*tele.ctx, tele.corpus, topts);

  EXPECT_EQ(r_local.checksum, r_ddc.checksum);
  EXPECT_EQ(r_local.checksum, r_tele.checksum);
  EXPECT_TRUE(r_tele.Profile(MrPhase::kMapShuffle).pushed);
  EXPECT_FALSE(r_tele.Profile(MrPhase::kMapCompute).pushed);
}

TEST(WordCountTest, PlatformOrderingHolds) {
  auto local = MakeDeployment(ddc::Platform::kLocal);
  const Nanos t_local =
      RunWordCount(*local.ctx, local.corpus, MrOptions{}).total_ns;
  auto base = MakeDeployment(ddc::Platform::kBaseDdc);
  const Nanos t_ddc =
      RunWordCount(*base.ctx, base.corpus, MrOptions{}).total_ns;
  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  MrOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_phases = DefaultTeleportPhases();
  const Nanos t_tele = RunWordCount(*tele.ctx, tele.corpus, topts).total_ns;
  EXPECT_LT(t_local, t_tele);
  EXPECT_LT(t_tele, t_ddc);
}

TEST(WordCountTest, MapShuffleDominatesMapInDdc) {
  // §5.3: map-shuffle is ~95% of map time in a DDC. Require dominance.
  auto base = MakeDeployment(ddc::Platform::kBaseDdc, 1 << 20, 0.02);
  const MrResult r = RunWordCount(*base.ctx, base.corpus, MrOptions{});
  EXPECT_GT(r.Profile(MrPhase::kMapShuffle).time_ns,
            r.Profile(MrPhase::kMapCompute).time_ns);
}

TEST(GrepTest, MatchesHostReference) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 19);
  const std::string pattern = "wab";
  const MrResult r = RunGrep(*d.ctx, d.corpus, pattern, MrOptions{});
  const auto ref = ReferenceGrep(HostText(d), pattern);
  EXPECT_GT(ref.size(), 0u);
  EXPECT_EQ(r.pairs, ref.size());
}

TEST(GrepTest, ChunkBoundariesDoNotChangeResult) {
  auto d1 = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  MrOptions one;
  one.map_tasks = 1;
  const MrResult r1 = RunGrep(*d1.ctx, d1.corpus, "wb", one);
  auto d2 = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  MrOptions many;
  many.map_tasks = 11;
  const MrResult r2 = RunGrep(*d2.ctx, d2.corpus, "wb", many);
  EXPECT_EQ(r1.pairs, r2.pairs);
  EXPECT_EQ(r1.checksum, r2.checksum);
}

TEST(GrepTest, ChecksumIdenticalAcrossPlatformsAndPushdown) {
  auto local = MakeDeployment(ddc::Platform::kLocal);
  const MrResult r_local = RunGrep(*local.ctx, local.corpus, "wc", MrOptions{});
  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  MrOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_phases = DefaultTeleportPhases();
  const MrResult r_tele = RunGrep(*tele.ctx, tele.corpus, "wc", topts);
  EXPECT_EQ(r_local.checksum, r_tele.checksum);
}

TEST(GrepTest, NoMatchesForAbsentPattern) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 1 << 18);
  const MrResult r = RunGrep(*d.ctx, d.corpus, "zzzzzzzz", MrOptions{});
  EXPECT_EQ(r.pairs, 0u);
  EXPECT_EQ(r.distinct_keys, 0u);
}

}  // namespace
}  // namespace teleport::mr
