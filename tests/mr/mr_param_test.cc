// Parameterized sweeps of the MapReduce engine: task-count combinations,
// pushdown phase subsets, and reduce-buffer sizing are all semantically
// transparent.

#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "mr/engine.h"

namespace teleport::mr {
namespace {

struct Env {
  std::unique_ptr<ddc::MemorySystem> ms;
  TextCorpus corpus;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Env MakeEnv(ddc::Platform platform = ddc::Platform::kBaseDdc) {
  Env e;
  TextConfig tc;
  tc.bytes = 1 << 18;
  ddc::DdcConfig dc;
  dc.platform = platform;
  dc.compute_cache_bytes = 64 << 10;
  dc.memory_pool_bytes = 256 << 20;
  e.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             128 << 20);
  e.corpus = GenerateText(e.ms.get(), tc);
  e.ctx = e.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    e.runtime = std::make_unique<tp::PushdownRuntime>(e.ms.get());
  }
  return e;
}

int64_t ReferenceChecksum() {
  static const int64_t checksum = [] {
    Env e = MakeEnv(ddc::Platform::kLocal);
    MrOptions opts;
    opts.map_tasks = 1;
    opts.reduce_tasks = 1;
    return RunWordCount(*e.ctx, e.corpus, opts).checksum;
  }();
  return checksum;
}

class TaskCountTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TaskCountTest, AnyTaskSplitGivesTheSameAnswer) {
  const auto [maps, reduces] = GetParam();
  Env e = MakeEnv(ddc::Platform::kLocal);
  MrOptions opts;
  opts.map_tasks = maps;
  opts.reduce_tasks = reduces;
  const MrResult r = RunWordCount(*e.ctx, e.corpus, opts);
  EXPECT_EQ(r.checksum, ReferenceChecksum());
  EXPECT_EQ(r.Profile(MrPhase::kMapCompute).invocations,
            static_cast<uint64_t>(maps));
  EXPECT_EQ(r.Profile(MrPhase::kReduce).invocations,
            static_cast<uint64_t>(reduces));
}

INSTANTIATE_TEST_SUITE_P(
    Splits, TaskCountTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 3),
                      std::make_tuple(7, 2), std::make_tuple(8, 8),
                      std::make_tuple(16, 5), std::make_tuple(3, 16)));

class MrPhaseSubsetTest : public ::testing::TestWithParam<int> {};

TEST_P(MrPhaseSubsetTest, AnyPushedSubsetIsTransparent) {
  const int mask = GetParam();
  Env e = MakeEnv();
  MrOptions opts;
  opts.runtime = e.runtime.get();
  const MrPhase all[] = {MrPhase::kMapCompute, MrPhase::kMapShuffle,
                         MrPhase::kReduce, MrPhase::kMerge};
  for (int b = 0; b < 4; ++b) {
    if (mask & (1 << b)) opts.push_phases.insert(all[b]);
  }
  const MrResult r = RunWordCount(*e.ctx, e.corpus, opts);
  EXPECT_EQ(r.checksum, ReferenceChecksum()) << "phase mask " << mask;
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, MrPhaseSubsetTest,
                         ::testing::Range(0, 16));

TEST(MrSizingTest, DistinctHintShrinksBuffersWithoutChangingResults) {
  Env generous = MakeEnv(ddc::Platform::kLocal);
  const MrResult base = RunWordCount(*generous.ctx, generous.corpus, {});
  Env hinted = MakeEnv(ddc::Platform::kLocal);
  MrOptions opts;
  opts.distinct_hint = base.distinct_keys + 64;
  const MrResult r = RunWordCount(*hinted.ctx, hinted.corpus, opts);
  EXPECT_EQ(r.checksum, base.checksum);
  EXPECT_EQ(r.distinct_keys, base.distinct_keys);
  // The hinted run allocated far less buffer space.
  EXPECT_LT(hinted.ms->space().used_bytes(),
            generous.ms->space().used_bytes());
}

TEST(MrSizingDeathTest, UndersizedHintAborts) {
  Env e = MakeEnv(ddc::Platform::kLocal);
  MrOptions opts;
  opts.distinct_hint = 8;  // far below the real vocabulary
  EXPECT_DEATH((void)RunWordCount(*e.ctx, e.corpus, opts),
               "reduce buffer overflow");
}

TEST(MrGrepParamTest, GrepPushedVsUnpushedEquivalence) {
  Env base = MakeEnv();
  const MrResult unpushed = RunGrep(*base.ctx, base.corpus, "wb", {});
  Env tele = MakeEnv();
  MrOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_phases = DefaultTeleportPhases(/*grep=*/true);
  const MrResult pushed = RunGrep(*tele.ctx, tele.corpus, "wb", opts);
  EXPECT_EQ(unpushed.checksum, pushed.checksum);
  EXPECT_EQ(unpushed.pairs, pushed.pairs);
  EXPECT_TRUE(pushed.Profile(MrPhase::kMapCompute).pushed);
}

TEST(MrGrepParamTest, LongerPatternsMatchFewerLines) {
  Env e = MakeEnv(ddc::Platform::kLocal);
  const MrResult broad = RunGrep(*e.ctx, e.corpus, "w", {});
  Env e2 = MakeEnv(ddc::Platform::kLocal);
  const MrResult narrow = RunGrep(*e2.ctx, e2.corpus, "wabc", {});
  EXPECT_GE(broad.pairs, narrow.pairs);
  // Every line contains at least one word, so "w" matches all lines.
  EXPECT_GE(broad.pairs, e.corpus.lines);
}

}  // namespace
}  // namespace teleport::mr
