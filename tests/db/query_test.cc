#include "db/query.h"

#include <memory>

#include <gtest/gtest.h>

namespace teleport::db {
namespace {

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<TpchDatabase> db;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment MakeDeployment(ddc::Platform platform, double sf = 0.5,
                          double cache_fraction = 0.05) {
  Deployment d;
  TpchConfig cfg;
  cfg.scale_factor = sf;
  ddc::DdcConfig dc;
  dc.platform = platform;
  const uint64_t data_bytes = EstimateTpchBytes(cfg);
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096, static_cast<uint64_t>(cache_fraction *
                                       static_cast<double>(data_bytes)));
  dc.memory_pool_bytes = data_bytes * 8;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             data_bytes * 8);
  d.db = GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  }
  return d;
}

using QueryFn = QueryResult (*)(ddc::ExecutionContext&, const TpchDatabase&,
                                const QueryOptions&);

struct QueryCase {
  const char* name;
  QueryFn fn;
  size_t num_ops;
};

QueryResult RunQFilterDefault(ddc::ExecutionContext& ctx,
                              const TpchDatabase& db,
                              const QueryOptions& opts) {
  return RunQFilter(ctx, db, opts);
}

const QueryCase kQueries[] = {
    {"qfilter", &RunQFilterDefault, 3},
    {"q1", &RunQ1, 4},
    {"q6", &RunQ6, 6},
    {"q3", &RunQ3, 8},
    {"q9", &RunQ9, 8},
};

class QueryCorrectnessTest : public ::testing::TestWithParam<QueryCase> {};

TEST_P(QueryCorrectnessTest, ChecksumIdenticalAcrossPlatformsAndPushdown) {
  const QueryCase& q = GetParam();

  auto local = MakeDeployment(ddc::Platform::kLocal);
  const QueryResult r_local = q.fn(*local.ctx, *local.db, QueryOptions{});

  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc);
  const QueryResult r_ddc = q.fn(*ddc.ctx, *ddc.db, QueryOptions{});

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  QueryOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_ops = DefaultTeleportOps(q.name);
  const QueryResult r_tele = q.fn(*tele.ctx, *tele.db, topts);

  EXPECT_NE(r_local.checksum, 0);
  EXPECT_EQ(r_local.checksum, r_ddc.checksum) << q.name;
  EXPECT_EQ(r_local.checksum, r_tele.checksum) << q.name;
  EXPECT_EQ(r_local.ops.size(), q.num_ops);
}

TEST_P(QueryCorrectnessTest, PushAllAlsoCorrect) {
  const QueryCase& q = GetParam();
  auto local = MakeDeployment(ddc::Platform::kLocal, /*sf=*/0.25);
  const QueryResult r_local = q.fn(*local.ctx, *local.db, QueryOptions{});

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc, /*sf=*/0.25);
  QueryOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_all = true;
  const QueryResult r_tele = q.fn(*tele.ctx, *tele.db, topts);
  EXPECT_EQ(r_local.checksum, r_tele.checksum) << q.name;
  for (const OperatorProfile& p : r_tele.ops) EXPECT_TRUE(p.pushed) << p.name;
}

TEST_P(QueryCorrectnessTest, PlatformOrderingHolds) {
  // Local < TELEPORT < BaseDDC in execution time (Figs 12/13).
  const QueryCase& q = GetParam();
  auto local = MakeDeployment(ddc::Platform::kLocal);
  const Nanos t_local = q.fn(*local.ctx, *local.db, QueryOptions{}).total_ns;

  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc);
  const Nanos t_ddc = q.fn(*ddc.ctx, *ddc.db, QueryOptions{}).total_ns;

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  QueryOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_ops = DefaultTeleportOps(q.name);
  const Nanos t_tele = q.fn(*tele.ctx, *tele.db, topts).total_ns;

  EXPECT_LT(t_local, t_tele) << q.name;
  EXPECT_LT(t_tele, t_ddc) << q.name;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QueryCorrectnessTest,
                         ::testing::ValuesIn(kQueries),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(QueryProfileTest, Q9HasEightNamedOperators) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 0.25);
  const QueryResult r = RunQ9(*d.ctx, *d.db, QueryOptions{});
  ASSERT_EQ(r.ops.size(), 8u);
  EXPECT_EQ(r.ops[0].name, "Selection(p_name)");
  EXPECT_EQ(r.ops[1].name, "HashJoin(part)");
  EXPECT_EQ(r.ops[4].name, "MergeJoin(orders)");
  EXPECT_EQ(r.ops[7].kind, OpKind::kGroupBy);
  for (const OperatorProfile& p : r.ops) EXPECT_GT(p.time_ns, 0) << p.name;
}

TEST(QueryProfileTest, RemoteBytesOnlyOnDdc) {
  auto local = MakeDeployment(ddc::Platform::kLocal, 0.25);
  const QueryResult r_local = RunQ6(*local.ctx, *local.db, QueryOptions{});
  for (const OperatorProfile& p : r_local.ops) {
    EXPECT_EQ(p.remote_bytes, 0u) << p.name;
  }
  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc, 0.25);
  const QueryResult r_ddc = RunQ6(*ddc.ctx, *ddc.db, QueryOptions{});
  uint64_t total = 0;
  for (const OperatorProfile& p : r_ddc.ops) total += p.remote_bytes;
  EXPECT_GT(total, 0u);
}

TEST(QueryProfileTest, MemoryIntensityRankingIsStable) {
  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc, 0.5);
  const QueryResult r = RunQ9(*ddc.ctx, *ddc.db, QueryOptions{});
  const auto ranked = RankByMemoryIntensity(r);
  ASSERT_EQ(ranked.size(), 8u);
  // The ranking must be a permutation of the plan's operators with
  // non-increasing intensity.
  double prev = 1e300;
  for (const std::string& name : ranked) {
    const double mi = r.Op(name).MemoryIntensity();
    EXPECT_LE(mi, prev + 1e-9);
    prev = mi;
  }
}

TEST(QueryProfileTest, PushdownReducesRemoteTraffic) {
  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc);
  const QueryResult base = RunQ9(*ddc.ctx, *ddc.db, QueryOptions{});

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  QueryOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_ops = DefaultTeleportOps("q9");
  const QueryResult pushed = RunQ9(*tele.ctx, *tele.db, topts);

  uint64_t base_bytes = 0, pushed_bytes = 0;
  for (const auto& p : base.ops) base_bytes += p.remote_bytes;
  for (const auto& p : pushed.ops) pushed_bytes += p.remote_bytes;
  EXPECT_LT(pushed_bytes, base_bytes / 2);
}

TEST(QueryProfileTest, QFilterDateBoundControlsSelectivity) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 0.25);
  const QueryResult narrow = RunQFilter(*d.ctx, *d.db, QueryOptions{}, 100);
  auto d2 = MakeDeployment(ddc::Platform::kLocal, 0.25);
  const QueryResult wide =
      RunQFilter(*d2.ctx, *d2.db, QueryOptions{}, kDateDomainDays);
  EXPECT_LT(narrow.Op("Selection").rows_out, wide.Op("Selection").rows_out);
  EXPECT_LT(narrow.checksum, wide.checksum);
  // The full-domain bound selects every row: checksum = sum of quantities.
  int64_t all = 0;
  const int64_t* q = d2.db->lineitem.Col("l_quantity").raw();
  for (uint64_t i = 0; i < d2.db->lineitem.rows; ++i) all += q[i];
  EXPECT_EQ(wide.checksum, all);
}

}  // namespace
}  // namespace teleport::db
