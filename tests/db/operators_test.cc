#include "db/operators.h"

#include <map>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace teleport::db {
namespace {

/// Host-side reference data mirrored into a DDC column.
class OperatorsTest : public ::testing::Test {
 protected:
  OperatorsTest() {
    ddc::DdcConfig c;
    c.platform = ddc::Platform::kBaseDdc;
    c.compute_cache_bytes = 64 << 10;  // small: exercises paging
    c.memory_pool_bytes = 64 << 20;
    ms_ = std::make_unique<ddc::MemorySystem>(c, sim::CostParams::Default(),
                                              128 << 20);
    ctx_ = ms_->CreateContext(ddc::Pool::kCompute);
  }

  /// Builds a column from a host vector.
  std::unique_ptr<Column> MakeColumn(const std::vector<int64_t>& v,
                                     const std::string& name) {
    auto col = std::make_unique<Column>(ms_.get(), name, v.size());
    for (size_t i = 0; i < v.size(); ++i) col->raw()[i] = v[i];
    return col;
  }

  std::vector<int64_t> ReadArray(ddc::VAddr addr, uint64_t n) {
    std::vector<int64_t> out(n);
    for (uint64_t i = 0; i < n; ++i) out[i] = ctx_->Load<int64_t>(addr + i * 8);
    return out;
  }

  std::unique_ptr<ddc::MemorySystem> ms_;
  std::unique_ptr<ddc::ExecutionContext> ctx_;
};

TEST_F(OperatorsTest, SelectLessMatchesReference) {
  Rng rng(1);
  std::vector<int64_t> v(5000);
  for (auto& x : v) x = static_cast<int64_t>(rng.Uniform(1000));
  auto col = MakeColumn(v, "c");
  const SelVector sel =
      SelectCompare(*ctx_, *col, CmpOp::kLess, 300, 0, nullptr, "sel");
  std::vector<int64_t> expect;
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] < 300) expect.push_back(static_cast<int64_t>(i));
  }
  EXPECT_EQ(ReadArray(sel.addr, sel.count), expect);
}

TEST_F(OperatorsTest, SelectRangeAndEqualAndGreater) {
  std::vector<int64_t> v = {5, 10, 15, 20, 25, 10};
  auto col = MakeColumn(v, "c");
  const SelVector r =
      SelectCompare(*ctx_, *col, CmpOp::kRange, 10, 20, nullptr, "r");
  EXPECT_EQ(ReadArray(r.addr, r.count), (std::vector<int64_t>{1, 2, 3, 5}));
  const SelVector e =
      SelectCompare(*ctx_, *col, CmpOp::kEqual, 10, 0, nullptr, "e");
  EXPECT_EQ(ReadArray(e.addr, e.count), (std::vector<int64_t>{1, 5}));
  const SelVector g =
      SelectCompare(*ctx_, *col, CmpOp::kGreater, 15, 0, nullptr, "g");
  EXPECT_EQ(ReadArray(g.addr, g.count), (std::vector<int64_t>{3, 4}));
}

TEST_F(OperatorsTest, SelectionWithCandidateListChains) {
  std::vector<int64_t> a = {1, 9, 1, 9, 1, 9, 9};
  std::vector<int64_t> b = {0, 1, 2, 3, 4, 5, 6};
  auto ca = MakeColumn(a, "a");
  auto cb = MakeColumn(b, "b");
  const SelVector s1 =
      SelectCompare(*ctx_, *ca, CmpOp::kEqual, 9, 0, nullptr, "s1");
  const SelVector s2 =
      SelectCompare(*ctx_, *cb, CmpOp::kGreater, 3, 0, &s1, "s2");
  EXPECT_EQ(ReadArray(s2.addr, s2.count), (std::vector<int64_t>{5, 6}));
}

TEST_F(OperatorsTest, StrContainsSelectsSubstring) {
  StringColumn col(ms_.get(), "names", 4, 16);
  col.RawSet(0, "dark green oak");
  col.RawSet(1, "pale blue pine");
  col.RawSet(2, "greenish tint");
  col.RawSet(3, "red maple");
  const SelVector sel =
      SelectStrContains(*ctx_, col, "green", nullptr, "sel");
  EXPECT_EQ(ReadArray(sel.addr, sel.count), (std::vector<int64_t>{0, 2}));
}

TEST_F(OperatorsTest, ProjectGatherPullsSelectedRows) {
  std::vector<int64_t> v = {100, 200, 300, 400};
  auto col = MakeColumn(v, "c");
  auto rows = MakeColumn({3, 1}, "rows");
  const SelVector sel{rows->addr(), 2};
  const ddc::VAddr out = ProjectGather(*ctx_, *col, sel, "out");
  EXPECT_EQ(ReadArray(out, 2), (std::vector<int64_t>{400, 200}));
}

TEST_F(OperatorsTest, SumsMatchReference) {
  Rng rng(2);
  std::vector<int64_t> v(3000);
  int64_t expect = 0;
  for (auto& x : v) {
    x = rng.UniformRange(-500, 500);
    expect += x;
  }
  auto col = MakeColumn(v, "c");
  EXPECT_EQ(AggrSum(*ctx_, *ms_, col->addr(), v.size()), expect);
  EXPECT_EQ(AggrSumColumn(*ctx_, *col, nullptr), expect);
}

TEST_F(OperatorsTest, ExpressionsComputeElementwise) {
  auto a = MakeColumn({10, 20, 30}, "a");
  auto b = MakeColumn({5, 50, 100}, "b");
  const ddc::VAddr mul =
      ExprMulScaled(*ctx_, *ms_, a->addr(), b->addr(), 3, 100, "mul");
  EXPECT_EQ(ReadArray(mul, 3), (std::vector<int64_t>{0, 10, 30}));
  const ddc::VAddr rev =
      ExprRevenue(*ctx_, *ms_, a->addr(), b->addr(), 2, "rev");
  // price * (100 - discount) / 100
  EXPECT_EQ(ReadArray(rev, 2), (std::vector<int64_t>{10 * 95 / 100, 20 * 50 / 100}));
}

TEST_F(OperatorsTest, ExprAmountMatchesFormula) {
  auto price = MakeColumn({1000}, "p");
  auto disc = MakeColumn({10}, "d");
  auto cost = MakeColumn({30}, "c");
  auto qty = MakeColumn({5}, "q");
  const ddc::VAddr out = ExprAmount(*ctx_, *ms_, price->addr(), disc->addr(),
                                    cost->addr(), qty->addr(), 1, "amt");
  EXPECT_EQ(ReadArray(out, 1)[0], 1000 * 90 / 100 - 30 * 5);
}

TEST_F(OperatorsTest, HashJoinMatchesUnorderedMapReference) {
  Rng rng(3);
  // Unique build keys 0..999 shuffled into rows; probe with hits & misses.
  std::vector<int64_t> build_keys(1000);
  for (size_t i = 0; i < build_keys.size(); ++i) {
    build_keys[i] = static_cast<int64_t>(i * 7 % 1000 + 10000);
  }
  std::vector<int64_t> probe_keys(5000);
  for (auto& k : probe_keys) {
    k = static_cast<int64_t>(rng.Uniform(2000) + 10000);  // ~50% hit rate
  }
  auto bc = MakeColumn(build_keys, "build");
  auto pc = MakeColumn(probe_keys, "probe");
  const HashTable ht = HashBuild(*ctx_, *ms_, *bc, nullptr, "ht");
  const JoinResult jr = HashProbe(*ctx_, *ms_, *pc, nullptr, ht, "jr");

  std::unordered_map<int64_t, int64_t> ref;
  for (size_t i = 0; i < build_keys.size(); ++i) {
    ref[build_keys[i]] = static_cast<int64_t>(i);
  }
  std::vector<int64_t> expect_probe, expect_build;
  for (size_t i = 0; i < probe_keys.size(); ++i) {
    auto it = ref.find(probe_keys[i]);
    if (it != ref.end()) {
      expect_probe.push_back(static_cast<int64_t>(i));
      expect_build.push_back(it->second);
    }
  }
  EXPECT_EQ(ReadArray(jr.probe_rows, jr.count), expect_probe);
  EXPECT_EQ(ReadArray(jr.build_rows, jr.count), expect_build);
}

TEST_F(OperatorsTest, CompositeHashJoinRoundTrips) {
  auto hi_b = MakeColumn({1, 2, 3}, "hi_b");
  auto lo_b = MakeColumn({7, 8, 9}, "lo_b");
  auto hi_p = MakeColumn({2, 3, 2, 5}, "hi_p");
  auto lo_p = MakeColumn({8, 9, 9, 7}, "lo_p");
  const HashTable ht = HashBuildComposite(*ctx_, *ms_, *hi_b, *lo_b, 1 << 20,
                                          nullptr, "ht");
  const JoinResult jr = HashProbeComposite(*ctx_, *ms_, *hi_p, *lo_p, 1 << 20,
                                           nullptr, ht, "jr");
  // (2,8)->row1, (3,9)->row2; (2,9) and (5,7) miss.
  EXPECT_EQ(ReadArray(jr.probe_rows, jr.count), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(ReadArray(jr.build_rows, jr.count), (std::vector<int64_t>{1, 2}));
}

TEST_F(OperatorsTest, MergeJoinDenseEmitsDimensionRows) {
  // fk column sorted; dense dimension of 10 rows.
  auto fk = MakeColumn({0, 0, 3, 3, 7, 9}, "fk");
  auto rows = MakeColumn({0, 2, 3, 5}, "rows");
  const SelVector sel{rows->addr(), 4};
  const ddc::VAddr out = MergeJoinDense(*ctx_, *ms_, *fk, sel, 10, "out");
  EXPECT_EQ(ReadArray(out, 4), (std::vector<int64_t>{0, 3, 3, 9}));
}

TEST_F(OperatorsTest, GroupSumDenseMatchesReference) {
  auto keys = MakeColumn({0, 1, 0, 2, 1, 0}, "k");
  auto vals = MakeColumn({5, 7, 11, 13, 17, 19}, "v");
  const ddc::VAddr g =
      GroupSumDense(*ctx_, *ms_, keys->addr(), vals->addr(), 6, 4, "g");
  EXPECT_EQ(ReadArray(g, 4), (std::vector<int64_t>{35, 24, 13, 0}));
}

TEST_F(OperatorsTest, GroupSumHashMatchesMapReference) {
  Rng rng(4);
  std::vector<int64_t> keys(4000), vals(4000);
  std::map<int64_t, int64_t> ref;
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(rng.Uniform(300)) * 17 - 2000;
    vals[i] = rng.UniformRange(-100, 100);
    ref[keys[i]] += vals[i];
  }
  auto kc = MakeColumn(keys, "k");
  auto vc = MakeColumn(vals, "v");
  const GroupHashResult g =
      GroupSumHash(*ctx_, *ms_, kc->addr(), vc->addr(), keys.size(), "g");
  EXPECT_EQ(g.groups, ref.size());
  int64_t expect_checksum = 0;
  for (const auto& [k, v] : ref) {
    expect_checksum += (k + 7) * (v + 1'000'003);
  }
  EXPECT_EQ(ChecksumHashGroups(*ctx_, *ms_, g), expect_checksum);
}

TEST_F(OperatorsTest, DenseChecksumIsOrderSensitive) {
  auto k1 = MakeColumn({0, 1}, "k1");
  auto v1 = MakeColumn({10, 20}, "v1");
  const ddc::VAddr g1 =
      GroupSumDense(*ctx_, *ms_, k1->addr(), v1->addr(), 2, 2, "g1");
  auto v2 = MakeColumn({20, 10}, "v2");
  const ddc::VAddr g2 =
      GroupSumDense(*ctx_, *ms_, k1->addr(), v2->addr(), 2, 2, "g2");
  EXPECT_NE(ChecksumDenseGroups(*ctx_, *ms_, g1, 2),
            ChecksumDenseGroups(*ctx_, *ms_, g2, 2));
}

TEST_F(OperatorsTest, OperatorsWorkFromMemoryPoolContext) {
  // The same kernels must run in a pushed-down context and produce
  // identical results.
  Rng rng(5);
  std::vector<int64_t> v(2000);
  for (auto& x : v) x = static_cast<int64_t>(rng.Uniform(100));
  auto col = MakeColumn(v, "c");
  ms_->SeedData();
  const SelVector s_compute =
      SelectCompare(*ctx_, *col, CmpOp::kLess, 50, 0, nullptr, "sc");
  auto mem_ctx = ms_->CreateContext(ddc::Pool::kMemory);
  const SelVector s_memory =
      SelectCompare(*mem_ctx, *col, CmpOp::kLess, 50, 0, nullptr, "sm");
  EXPECT_EQ(s_compute.count, s_memory.count);
  EXPECT_EQ(ReadArray(s_compute.addr, s_compute.count),
            ReadArray(s_memory.addr, s_memory.count));
}

}  // namespace
}  // namespace teleport::db
