#include "db/advisor.h"

#include <memory>

#include <gtest/gtest.h>

namespace teleport::db {
namespace {

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<TpchDatabase> db;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment MakeDdc(double sf = 1.0) {
  Deployment d;
  TpchConfig cfg;
  cfg.scale_factor = sf;
  ddc::DdcConfig dc;
  dc.platform = ddc::Platform::kBaseDdc;
  const uint64_t bytes = EstimateTpchBytes(cfg);
  dc.compute_cache_bytes = std::max<uint64_t>(16 * 4096, bytes / 50);
  dc.memory_pool_bytes = bytes * 8;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             bytes * 12);
  d.db = GenerateTpch(d.ms.get(), cfg);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  return d;
}

TEST(AdvisorTest, ProfilesCarryCpuAndPageCounters) {
  auto d = MakeDdc();
  const QueryResult r = RunQ6(*d.ctx, *d.db, QueryOptions{});
  for (const OperatorProfile& op : r.ops) {
    EXPECT_GT(op.cpu_ops, 0u) << op.name;
  }
  // At least the scan operators move pages.
  EXPECT_GT(r.Op("Selection(shipdate)").remote_pages, 0u);
}

TEST(AdvisorTest, RecommendsMemoryBoundOperators) {
  auto d = MakeDdc();
  const QueryResult profile = RunQ9(*d.ctx, *d.db, QueryOptions{});
  const PushdownPlan plan = AdvisePushdown(profile, AdvisorParams{});
  // On the base DDC every heavy Q9 operator is remote-bound; the advisor
  // must pick up the big movers.
  EXPECT_GE(plan.push_ops.size(), 3u);
  EXPECT_TRUE(plan.push_ops.count("HashJoin(part)") ||
              plan.push_ops.count("HashJoin(partsupp)") ||
              plan.push_ops.count("Projection"));
  EXPECT_EQ(plan.advice.size(), profile.ops.size());
}

TEST(AdvisorTest, ThrottledCoresShrinkTheSet) {
  auto d = MakeDdc();
  const QueryResult profile = RunQ9(*d.ctx, *d.db, QueryOptions{});
  AdvisorParams full;
  AdvisorParams throttled;
  throttled.memory_pool_clock_ratio = 0.1;  // very weak pool cores
  const size_t n_full = AdvisePushdown(profile, full).push_ops.size();
  const size_t n_throttled =
      AdvisePushdown(profile, throttled).push_ops.size();
  EXPECT_LE(n_throttled, n_full);
}

TEST(AdvisorTest, HighOverheadSuppressesSmallOperators) {
  auto d = MakeDdc();
  const QueryResult profile = RunQFilter(*d.ctx, *d.db, QueryOptions{});
  AdvisorParams expensive;
  expensive.per_call_overhead_ns = 1'000 * kMillisecond;
  const PushdownPlan plan = AdvisePushdown(profile, expensive);
  EXPECT_TRUE(plan.push_ops.empty());
  for (const OperatorAdvice& a : plan.advice) EXPECT_FALSE(a.push);
}

TEST(AdvisorTest, AdviceEstimatesAreInternallyConsistent) {
  auto d = MakeDdc();
  const QueryResult profile = RunQ6(*d.ctx, *d.db, QueryOptions{});
  AdvisorParams params;
  params.memory_pool_clock_ratio = 0.5;
  const PushdownPlan plan = AdvisePushdown(profile, params);
  for (const OperatorAdvice& a : plan.advice) {
    EXPECT_GE(a.est_remote_saving_ns, 0);
    EXPECT_GE(a.est_cpu_penalty_ns, 0);
    EXPECT_EQ(a.push, a.NetBenefit(params.per_call_overhead_ns) > 0);
  }
}

TEST(AdvisorTest, AdvisedPlanExecutesCorrectlyAndHelps) {
  // End to end: profile, advise, execute the advised plan, compare.
  auto profile_dep = MakeDdc(2.0);
  const QueryResult profile = RunQ6(*profile_dep.ctx, *profile_dep.db, {});
  const PushdownPlan plan = AdvisePushdown(profile, AdvisorParams{});
  ASSERT_FALSE(plan.push_ops.empty());

  auto run_dep = MakeDdc(2.0);
  QueryOptions opts;
  opts.runtime = run_dep.runtime.get();
  opts.push_ops = plan.push_ops;
  const QueryResult advised = RunQ6(*run_dep.ctx, *run_dep.db, opts);
  EXPECT_EQ(advised.checksum, profile.checksum);
  EXPECT_LT(advised.total_ns, profile.total_ns);
}

TEST(Q1Test, ChecksumMatchesAcrossPlatformsAndPushdown) {
  // Local reference.
  TpchConfig cfg;
  cfg.scale_factor = 1.0;
  ddc::DdcConfig lc;
  lc.platform = ddc::Platform::kLocal;
  ddc::MemorySystem lms(lc, sim::CostParams::Default(),
                        EstimateTpchBytes(cfg) * 12);
  auto ldb = GenerateTpch(&lms, cfg);
  auto lctx = lms.CreateContext(ddc::Pool::kCompute);
  const QueryResult r_local = RunQ1(*lctx, *ldb, QueryOptions{});
  ASSERT_EQ(r_local.ops.size(), 4u);
  EXPECT_NE(r_local.checksum, 0);

  auto tele = MakeDdc();
  QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = DefaultTeleportOps("q1");
  const QueryResult r_tele = RunQ1(*tele.ctx, *tele.db, opts);
  EXPECT_EQ(r_local.checksum, r_tele.checksum);
}

TEST(Q1Test, GroupCountsSumToSelection) {
  TpchConfig cfg;
  cfg.scale_factor = 1.0;
  ddc::DdcConfig lc;
  lc.platform = ddc::Platform::kLocal;
  ddc::MemorySystem lms(lc, sim::CostParams::Default(),
                        EstimateTpchBytes(cfg) * 12);
  auto ldb = GenerateTpch(&lms, cfg);
  auto lctx = lms.CreateContext(ddc::Pool::kCompute);
  const QueryResult r = RunQ1(*lctx, *ldb, QueryOptions{});
  // Wide selection: shipdate < domain-90 keeps the large majority of rows.
  EXPECT_GT(r.Op("Selection").rows_out, ldb->lineitem.rows / 2);
  EXPECT_EQ(r.Op("Aggregation(group)").rows_out, 3u);
}

}  // namespace
}  // namespace teleport::db
