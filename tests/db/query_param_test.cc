// Parameterized query sweeps: every query must produce identical results
// across platforms, pushdown configurations, scales and cache sizes, and
// its plan-level invariants (row counts, operator structure) must hold.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "db/query.h"

namespace teleport::db {
namespace {

using QueryFn = QueryResult (*)(ddc::ExecutionContext&, const TpchDatabase&,
                                const QueryOptions&);

QueryResult RunQFilterDefault(ddc::ExecutionContext& ctx,
                              const TpchDatabase& db,
                              const QueryOptions& opts) {
  return RunQFilter(ctx, db, opts);
}

struct NamedQuery {
  const char* name;
  QueryFn fn;
};

const NamedQuery kAll[] = {
    {"qfilter", &RunQFilterDefault}, {"q1", &RunQ1}, {"q3", &RunQ3},
    {"q6", &RunQ6},                  {"q9", &RunQ9},
};

struct Env {
  std::unique_ptr<ddc::MemorySystem> ms;
  std::unique_ptr<TpchDatabase> db;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Env MakeEnv(ddc::Platform platform, double sf, double cache_fraction) {
  Env e;
  TpchConfig cfg;
  cfg.scale_factor = sf;
  ddc::DdcConfig dc;
  dc.platform = platform;
  const uint64_t bytes = EstimateTpchBytes(cfg);
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096,
      static_cast<uint64_t>(cache_fraction * static_cast<double>(bytes)));
  dc.memory_pool_bytes = bytes * 8;
  e.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             bytes * 12);
  e.db = GenerateTpch(e.ms.get(), cfg);
  e.ctx = e.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    e.runtime = std::make_unique<tp::PushdownRuntime>(e.ms.get());
  }
  return e;
}

using SweepParam = std::tuple<int /*query idx*/, double /*sf*/,
                              double /*cache fraction*/>;

class QuerySweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(QuerySweepTest, ChecksumInvariantAcrossDeployments) {
  const auto [qi, sf, cache] = GetParam();
  const NamedQuery& q = kAll[qi];

  Env local = MakeEnv(ddc::Platform::kLocal, sf, cache);
  const QueryResult r_local = q.fn(*local.ctx, *local.db, {});

  Env ssd = MakeEnv(ddc::Platform::kLinuxSsd, sf, cache);
  const QueryResult r_ssd = q.fn(*ssd.ctx, *ssd.db, {});

  Env tele = MakeEnv(ddc::Platform::kBaseDdc, sf, cache);
  QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_ops = DefaultTeleportOps(q.name);
  const QueryResult r_tele = q.fn(*tele.ctx, *tele.db, opts);

  EXPECT_EQ(r_local.checksum, r_ssd.checksum) << q.name;
  EXPECT_EQ(r_local.checksum, r_tele.checksum) << q.name;
  // Same plan structure everywhere.
  ASSERT_EQ(r_local.ops.size(), r_tele.ops.size());
  for (size_t i = 0; i < r_local.ops.size(); ++i) {
    EXPECT_EQ(r_local.ops[i].rows_out, r_tele.ops[i].rows_out)
        << q.name << " op " << r_local.ops[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuerySweepTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(0.25, 1.0),
                       ::testing::Values(0.02, 0.25)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      const int qi = std::get<0>(info.param);
      const double sf = std::get<1>(info.param);
      const double cache = std::get<2>(info.param);
      return std::string(kAll[qi].name) + "_sf" +
             (sf < 0.5 ? "quarter" : "one") + "_cache" +
             (cache < 0.1 ? "small" : "large");
    });

TEST(QueryInvariantTest, Q6SelectionChainShrinks) {
  Env e = MakeEnv(ddc::Platform::kLocal, 1.0, 0.02);
  const QueryResult r = RunQ6(*e.ctx, *e.db, {});
  const uint64_t s1 = r.Op("Selection(shipdate)").rows_out;
  const uint64_t s2 = r.Op("Selection(discount)").rows_out;
  const uint64_t s3 = r.Op("Selection(quantity)").rows_out;
  EXPECT_GT(s1, 0u);
  EXPECT_LE(s2, s1);
  EXPECT_LE(s3, s2);
  EXPECT_EQ(r.Op("Expression").rows_out, s3);
}

TEST(QueryInvariantTest, Q9JoinCardinalityChain) {
  Env e = MakeEnv(ddc::Platform::kLocal, 1.0, 0.02);
  const QueryResult r = RunQ9(*e.ctx, *e.db, {});
  const uint64_t part_matches = r.Op("HashJoin(part)").rows_out;
  // Every part-filtered lineitem row survives the partsupp and supplier
  // joins (FK integrity guaranteed by the generator).
  EXPECT_EQ(r.Op("HashJoin(partsupp)").rows_out, part_matches);
  EXPECT_EQ(r.Op("HashJoin(supplier)").rows_out, part_matches);
  EXPECT_EQ(r.Op("MergeJoin(orders)").rows_out, part_matches);
  // The LIKE selection keeps a modest fraction of parts.
  const uint64_t green = r.Op("Selection(p_name)").rows_out;
  EXPECT_GT(green, 0u);
  EXPECT_LT(green, e.db->part.rows / 2);
}

TEST(QueryInvariantTest, Q3GroupsBoundedByOrders) {
  Env e = MakeEnv(ddc::Platform::kLocal, 1.0, 0.02);
  const QueryResult r = RunQ3(*e.ctx, *e.db, {});
  EXPECT_LE(r.Op("GroupBy").rows_out, r.Op("HashJoin(customer)").rows_out);
  EXPECT_GT(r.Op("GroupBy").rows_out, 0u);
}

TEST(QueryInvariantTest, DeterministicAcrossRepeatedRuns) {
  Env a = MakeEnv(ddc::Platform::kBaseDdc, 0.5, 0.05);
  Env b = MakeEnv(ddc::Platform::kBaseDdc, 0.5, 0.05);
  const QueryResult ra = RunQ9(*a.ctx, *a.db, {});
  const QueryResult rb = RunQ9(*b.ctx, *b.db, {});
  EXPECT_EQ(ra.checksum, rb.checksum);
  EXPECT_EQ(ra.total_ns, rb.total_ns);  // bit-identical virtual time
  for (size_t i = 0; i < ra.ops.size(); ++i) {
    EXPECT_EQ(ra.ops[i].time_ns, rb.ops[i].time_ns);
    EXPECT_EQ(ra.ops[i].remote_bytes, rb.ops[i].remote_bytes);
  }
}

TEST(QueryInvariantTest, PushdownNeverChangesRowCounts) {
  Env base = MakeEnv(ddc::Platform::kBaseDdc, 0.5, 0.02);
  const QueryResult plain = RunQ3(*base.ctx, *base.db, {});
  Env tele = MakeEnv(ddc::Platform::kBaseDdc, 0.5, 0.02);
  QueryOptions opts;
  opts.runtime = tele.runtime.get();
  opts.push_all = true;
  const QueryResult pushed = RunQ3(*tele.ctx, *tele.db, opts);
  ASSERT_EQ(plain.ops.size(), pushed.ops.size());
  for (size_t i = 0; i < plain.ops.size(); ++i) {
    EXPECT_EQ(plain.ops[i].rows_out, pushed.ops[i].rows_out);
  }
}

}  // namespace
}  // namespace teleport::db
