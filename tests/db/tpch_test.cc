#include "db/tpch.h"

#include <set>
#include <string_view>

#include <gtest/gtest.h>

namespace teleport::db {
namespace {

ddc::DdcConfig LocalConfig() {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kLocal;
  return c;
}

class TpchTest : public ::testing::Test {
 protected:
  TpchTest()
      : ms_(LocalConfig(), sim::CostParams::Default(), 256 << 20) {
    TpchConfig cfg;
    cfg.scale_factor = 1.0;
    db_ = GenerateTpch(&ms_, cfg);
  }

  ddc::MemorySystem ms_;
  std::unique_ptr<TpchDatabase> db_;
};

TEST_F(TpchTest, RowCountsScale) {
  EXPECT_EQ(db_->lineitem.rows, 60'000u);
  EXPECT_EQ(db_->orders.rows, 15'000u);
  EXPECT_EQ(db_->customer.rows, 1'500u);
  EXPECT_EQ(db_->part.rows, 2'000u);
  EXPECT_EQ(db_->partsupp.rows, 8'000u);
  EXPECT_EQ(db_->nation.rows, 25u);
}

TEST_F(TpchTest, LineitemSortedByOrderkey) {
  const int64_t* ok = db_->lineitem.Col("l_orderkey").raw();
  for (uint64_t i = 1; i < db_->lineitem.rows; ++i) {
    ASSERT_GE(ok[i], ok[i - 1]) << "at row " << i;
  }
  // Dense coverage: first and last orders both appear.
  EXPECT_EQ(ok[0], 0);
  EXPECT_EQ(ok[db_->lineitem.rows - 1],
            static_cast<int64_t>(db_->orders.rows - 1));
}

TEST_F(TpchTest, ForeignKeysInDomain) {
  const auto& li = db_->lineitem;
  const int64_t* pk = li.Col("l_partkey").raw();
  const int64_t* sk = li.Col("l_suppkey").raw();
  const int64_t* ok = li.Col("l_orderkey").raw();
  for (uint64_t i = 0; i < li.rows; ++i) {
    ASSERT_LT(pk[i], static_cast<int64_t>(db_->part.rows));
    ASSERT_LT(sk[i], static_cast<int64_t>(db_->supplier.rows));
    ASSERT_LT(ok[i], static_cast<int64_t>(db_->orders.rows));
  }
  const int64_t* ck = db_->orders.Col("o_custkey").raw();
  for (uint64_t i = 0; i < db_->orders.rows; ++i) {
    ASSERT_LT(ck[i], static_cast<int64_t>(db_->customer.rows));
  }
}

TEST_F(TpchTest, EveryLineitemHasPartsuppMatch) {
  // Q9's partsupp join must not drop rows: (l_partkey, l_suppkey) pairs
  // must exist in partsupp.
  std::set<std::pair<int64_t, int64_t>> ps;
  const int64_t* ppk = db_->partsupp.Col("ps_partkey").raw();
  const int64_t* psk = db_->partsupp.Col("ps_suppkey").raw();
  for (uint64_t i = 0; i < db_->partsupp.rows; ++i) {
    ps.emplace(ppk[i], psk[i]);
  }
  EXPECT_EQ(ps.size(), db_->partsupp.rows) << "composite keys must be unique";
  const int64_t* lpk = db_->lineitem.Col("l_partkey").raw();
  const int64_t* lsk = db_->lineitem.Col("l_suppkey").raw();
  for (uint64_t i = 0; i < db_->lineitem.rows; i += 97) {  // sample
    ASSERT_TRUE(ps.count({lpk[i], lsk[i]}))
        << "lineitem row " << i << " has no partsupp entry";
  }
}

TEST_F(TpchTest, ShipdateFollowsOrderdateWithinDomain) {
  const int64_t* sd = db_->lineitem.Col("l_shipdate").raw();
  const int64_t* ok = db_->lineitem.Col("l_orderkey").raw();
  const int64_t* od = db_->orders.Col("o_orderdate").raw();
  for (uint64_t i = 0; i < db_->lineitem.rows; ++i) {
    ASSERT_GT(sd[i], od[ok[i]]);
    ASSERT_LT(sd[i], kDateDomainDays);
  }
}

TEST_F(TpchTest, GreenPartsAreASelectiveFraction) {
  const StringColumn& name = db_->part.StrCol("p_name");
  auto ctx = ms_.CreateContext(ddc::Pool::kCompute);
  uint64_t green = 0;
  for (uint64_t i = 0; i < db_->part.rows; ++i) {
    if (name.Get(*ctx, i).find("green") != std::string_view::npos) ++green;
  }
  const double frac =
      static_cast<double>(green) / static_cast<double>(db_->part.rows);
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.35);
}

TEST_F(TpchTest, DeterministicAcrossRuns) {
  ddc::MemorySystem ms2(LocalConfig(), sim::CostParams::Default(), 256 << 20);
  TpchConfig cfg;
  cfg.scale_factor = 1.0;
  auto db2 = GenerateTpch(&ms2, cfg);
  const int64_t* a = db_->lineitem.Col("l_extendedprice").raw();
  const int64_t* b = db2->lineitem.Col("l_extendedprice").raw();
  for (uint64_t i = 0; i < db_->lineitem.rows; ++i) ASSERT_EQ(a[i], b[i]);
}

TEST_F(TpchTest, SeedChangesData) {
  ddc::MemorySystem ms2(LocalConfig(), sim::CostParams::Default(), 256 << 20);
  TpchConfig cfg;
  cfg.scale_factor = 1.0;
  cfg.seed = 999;
  auto db2 = GenerateTpch(&ms2, cfg);
  const int64_t* a = db_->lineitem.Col("l_extendedprice").raw();
  const int64_t* b = db2->lineitem.Col("l_extendedprice").raw();
  bool any_diff = false;
  for (uint64_t i = 0; i < db_->lineitem.rows && !any_diff; ++i) {
    any_diff = a[i] != b[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(TpchTest, EstimateCoversActualAllocation) {
  TpchConfig cfg;
  cfg.scale_factor = 1.0;
  EXPECT_GE(EstimateTpchBytes(cfg) + (64 << 10) * 16, db_->TotalBytes());
  EXPECT_GT(db_->TotalBytes(), 4u << 20);  // ~5 MB at SF 1
}

}  // namespace
}  // namespace teleport::db
