// Edge cases of the operator library: empty inputs, single rows,
// full-match selections, and pipelines built entirely from degenerate
// intermediates.

#include <vector>

#include <gtest/gtest.h>

#include "db/operators.h"

namespace teleport::db {
namespace {

class OperatorsEdgeTest : public ::testing::Test {
 protected:
  OperatorsEdgeTest() {
    ddc::DdcConfig c;
    c.platform = ddc::Platform::kBaseDdc;
    c.compute_cache_bytes = 64 << 10;
    c.memory_pool_bytes = 64 << 20;
    ms_ = std::make_unique<ddc::MemorySystem>(c, sim::CostParams::Default(),
                                              64 << 20);
    ctx_ = ms_->CreateContext(ddc::Pool::kCompute);
  }

  std::unique_ptr<Column> MakeColumn(const std::vector<int64_t>& v,
                                     const std::string& name) {
    auto col = std::make_unique<Column>(ms_.get(), name, v.size());
    for (size_t i = 0; i < v.size(); ++i) col->raw()[i] = v[i];
    return col;
  }

  std::unique_ptr<ddc::MemorySystem> ms_;
  std::unique_ptr<ddc::ExecutionContext> ctx_;
};

TEST_F(OperatorsEdgeTest, EmptySelectionPropagatesThroughPipeline) {
  auto col = MakeColumn({1, 2, 3, 4, 5}, "c");
  const SelVector none =
      SelectCompare(*ctx_, *col, CmpOp::kLess, -100, 0, nullptr, "none");
  EXPECT_EQ(none.count, 0u);
  // Chained selection over an empty candidate list.
  const SelVector still_none =
      SelectCompare(*ctx_, *col, CmpOp::kGreater, 0, 0, &none, "still");
  EXPECT_EQ(still_none.count, 0u);
  // Projection, aggregation, expression over empty inputs.
  const ddc::VAddr proj = ProjectGather(*ctx_, *col, none, "proj");
  EXPECT_EQ(AggrSum(*ctx_, *ms_, proj, 0), 0);
  const ddc::VAddr rev = ExprRevenue(*ctx_, *ms_, proj, proj, 0, "rev");
  (void)rev;
  const GroupHashResult g = GroupSumHash(*ctx_, *ms_, proj, proj, 0, "g");
  EXPECT_EQ(g.groups, 0u);
  EXPECT_EQ(ChecksumHashGroups(*ctx_, *ms_, g), 0);
}

TEST_F(OperatorsEdgeTest, FullMatchSelectionKeepsEveryRow) {
  auto col = MakeColumn({5, 5, 5, 5}, "c");
  const SelVector all =
      SelectCompare(*ctx_, *col, CmpOp::kEqual, 5, 0, nullptr, "all");
  EXPECT_EQ(all.count, 4u);
  EXPECT_EQ(AggrSumColumn(*ctx_, *col, &all), 20);
}

TEST_F(OperatorsEdgeTest, SingleRowTable) {
  auto keys = MakeColumn({42}, "k");
  const HashTable ht = HashBuild(*ctx_, *ms_, *keys, nullptr, "ht");
  auto probe = MakeColumn({42, 41}, "p");
  const JoinResult jr = HashProbe(*ctx_, *ms_, *probe, nullptr, ht, "jr");
  EXPECT_EQ(jr.count, 1u);
  EXPECT_EQ(ctx_->Load<int64_t>(jr.probe_rows), 0);
  EXPECT_EQ(ctx_->Load<int64_t>(jr.build_rows), 0);
}

TEST_F(OperatorsEdgeTest, EmptyBuildSideMeansNoMatches) {
  auto keys = MakeColumn({7}, "k");
  const SelVector empty{keys->addr(), 0};
  const HashTable ht = HashBuild(*ctx_, *ms_, *keys, &empty, "ht");
  auto probe = MakeColumn({7, 7, 7}, "p");
  const JoinResult jr = HashProbe(*ctx_, *ms_, *probe, nullptr, ht, "jr");
  EXPECT_EQ(jr.count, 0u);
}

TEST_F(OperatorsEdgeTest, ProbeWithEmptyCandidateList) {
  auto keys = MakeColumn({1, 2, 3}, "k");
  const HashTable ht = HashBuild(*ctx_, *ms_, *keys, nullptr, "ht");
  auto probe = MakeColumn({1, 2, 3}, "p");
  const SelVector empty{probe->addr(), 0};
  const JoinResult jr = HashProbe(*ctx_, *ms_, *probe, &empty, ht, "jr");
  EXPECT_EQ(jr.count, 0u);
}

TEST_F(OperatorsEdgeTest, NegativeKeysAndValues) {
  auto keys = MakeColumn({-5, -1000000007, 0, 17}, "k");
  const HashTable ht = HashBuild(*ctx_, *ms_, *keys, nullptr, "ht");
  auto probe = MakeColumn({-1000000007, -5}, "p");
  const JoinResult jr = HashProbe(*ctx_, *ms_, *probe, nullptr, ht, "jr");
  ASSERT_EQ(jr.count, 2u);
  EXPECT_EQ(ctx_->Load<int64_t>(jr.build_rows), 1);
  EXPECT_EQ(ctx_->Load<int64_t>(jr.build_rows + 8), 0);
}

TEST_F(OperatorsEdgeTest, MergeJoinEmptySelection) {
  auto fk = MakeColumn({0, 1, 2}, "fk");
  const SelVector empty{fk->addr(), 0};
  const ddc::VAddr out = MergeJoinDense(*ctx_, *ms_, *fk, empty, 3, "out");
  (void)out;  // allocating an empty result must not crash
}

TEST_F(OperatorsEdgeTest, GroupSumDenseEmptyInputIsAllZero) {
  auto k = MakeColumn({0}, "k");
  const ddc::VAddr g =
      GroupSumDense(*ctx_, *ms_, k->addr(), k->addr(), 0, 5, "g");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ctx_->Load<int64_t>(g + i * 8), 0);
  }
}

TEST_F(OperatorsEdgeTest, StrContainsEmptyNeedleMatchesEverything) {
  StringColumn col(ms_.get(), "s", 3, 8);
  col.RawSet(0, "abc");
  col.RawSet(1, "");
  col.RawSet(2, "xyz");
  const SelVector sel = SelectStrContains(*ctx_, col, "", nullptr, "sel");
  EXPECT_EQ(sel.count, 3u);
}

TEST_F(OperatorsEdgeTest, StrContainsNeedleLongerThanWidth) {
  StringColumn col(ms_.get(), "s", 2, 4);
  col.RawSet(0, "abcd");
  col.RawSet(1, "wxyz");
  const SelVector sel =
      SelectStrContains(*ctx_, col, "abcdefgh", nullptr, "sel");
  EXPECT_EQ(sel.count, 0u);
}

TEST_F(OperatorsEdgeTest, ExprDivisorOne) {
  auto a = MakeColumn({3, -4}, "a");
  auto b = MakeColumn({7, 9}, "b");
  const ddc::VAddr out =
      ExprMulScaled(*ctx_, *ms_, a->addr(), b->addr(), 2, 1, "out");
  EXPECT_EQ(ctx_->Load<int64_t>(out), 21);
  EXPECT_EQ(ctx_->Load<int64_t>(out + 8), -36);
}

TEST_F(OperatorsEdgeTest, AggrSumColumnEmptyColumnIsZero) {
  auto col = MakeColumn({9}, "c");
  const SelVector empty{col->addr(), 0};
  EXPECT_EQ(AggrSumColumn(*ctx_, *col, &empty), 0);
}

#ifndef NDEBUG
TEST_F(OperatorsEdgeTest, DuplicateBuildKeysAbortInDebug) {
  auto keys = MakeColumn({3, 3}, "k");
  EXPECT_DEATH((void)HashBuild(*ctx_, *ms_, *keys, nullptr, "ht"),
               "duplicate build key");
}

TEST_F(OperatorsEdgeTest, UnsortedMergeJoinAbortsInDebug) {
  auto fk = MakeColumn({5, 2}, "fk");
  auto rows = MakeColumn({0, 1}, "rows");
  const SelVector sel{rows->addr(), 2};
  EXPECT_DEATH((void)MergeJoinDense(*ctx_, *ms_, *fk, sel, 10, "out"),
               "not sorted");
}
#endif

}  // namespace
}  // namespace teleport::db
