#include "dist/cost_model.h"

#include <gtest/gtest.h>

namespace teleport::dist {
namespace {

WorkloadProfile TpchLikeProfile() {
  WorkloadProfile w;
  w.local_time_ns = 20 * kSecond;  // a heavy analytic query
  w.bytes_scanned = 40ull << 30;   // 40 GB scanned
  w.bytes_shuffled = 4ull << 30;   // 10% of scan volume crosses operators
  w.num_stages = 4;
  return w;
}

TEST(DistModelTest, CostOfScalingAboveOne) {
  const auto w = TpchLikeProfile();
  EXPECT_GT(CostOfScaling(w, DistEngine::kSparkLike, DistConfig{}), 1.0);
  EXPECT_GT(CostOfScaling(w, DistEngine::kVerticaLike, DistConfig{}), 1.0);
}

TEST(DistModelTest, PaperOrderingSparkBelowVertica) {
  // Fig 1b: SparkSQL ~1.2x, Vertica ~2.3x.
  const auto w = TpchLikeProfile();
  const double spark = CostOfScaling(w, DistEngine::kSparkLike, DistConfig{});
  const double vertica =
      CostOfScaling(w, DistEngine::kVerticaLike, DistConfig{});
  EXPECT_LT(spark, vertica);
  EXPECT_GT(spark, 1.05);
  EXPECT_LT(spark, 1.6);
  EXPECT_GT(vertica, 1.7);
  EXPECT_LT(vertica, 3.2);
}

TEST(DistModelTest, MoreShuffleCostsMore) {
  WorkloadProfile w = TpchLikeProfile();
  const double base = CostOfScaling(w, DistEngine::kVerticaLike, DistConfig{});
  w.bytes_shuffled *= 4;
  EXPECT_GT(CostOfScaling(w, DistEngine::kVerticaLike, DistConfig{}), base);
}

TEST(DistModelTest, MoreWorkersMoveShuffleFaster) {
  const auto w = TpchLikeProfile();
  DistConfig few;
  few.workers = 2;
  DistConfig many;
  many.workers = 16;
  EXPECT_GT(EstimateDistributedTime(w, DistEngine::kVerticaLike, few),
            EstimateDistributedTime(w, DistEngine::kVerticaLike, many));
}

TEST(DistModelTest, BarriersDominateTinyWorkloads) {
  WorkloadProfile w;
  w.local_time_ns = 10 * kMillisecond;
  w.bytes_scanned = 1 << 20;
  w.bytes_shuffled = 1 << 18;
  w.num_stages = 4;
  // Scaling a tiny query out is counterproductive: cost >> 1.
  EXPECT_GT(CostOfScaling(w, DistEngine::kSparkLike, DistConfig{}), 5.0);
}

TEST(DistModelTest, EngineNamesStable) {
  EXPECT_EQ(DistEngineToString(DistEngine::kSparkLike), "SparkSQL-like");
  EXPECT_EQ(DistEngineToString(DistEngine::kVerticaLike), "Vertica-like");
}

}  // namespace
}  // namespace teleport::dist
