#include "common/rng.h"

#include <array>
#include <cstdint>

#include <gtest/gtest.h>

namespace teleport {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> counts{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 * 0.9);
    EXPECT_LT(c, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(23);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

TEST(ZipfTest, SkewsTowardSmallValues) {
  Rng rng(29);
  ZipfGenerator zipf(10000, 0.99);
  int head = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) < 100) ++head;  // top 1% of the key space
  }
  // Under Zipf(0.99) the top 1% of keys draw far more than 1% of samples.
  EXPECT_GT(head, kDraws / 4);
}

TEST(ZipfTest, LowerThetaIsLessSkewed) {
  Rng rng1(31), rng2(31);
  ZipfGenerator mild(10000, 0.2), strong(10000, 0.99);
  int mild_head = 0, strong_head = 0;
  for (int i = 0; i < 50000; ++i) {
    if (mild.Sample(rng1) < 100) ++mild_head;
    if (strong.Sample(rng2) < 100) ++strong_head;
  }
  EXPECT_LT(mild_head, strong_head);
}

}  // namespace
}  // namespace teleport
