#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace teleport {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("no such page");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto make = []() -> Result<int> { return Status::Internal("boom"); };
  auto use = [&]() -> Status {
    TELEPORT_ASSIGN_OR_RETURN(int v, make());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(use().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto make = []() -> Result<int> { return 9; };
  int out = 0;
  auto use = [&]() -> Status {
    TELEPORT_ASSIGN_OR_RETURN(out, make());
    return Status::OK();
  };
  EXPECT_TRUE(use().ok());
  EXPECT_EQ(out, 9);
}

}  // namespace
}  // namespace teleport
