#include "common/histogram.h"

#include <gtest/gtest.h>

namespace teleport {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, PercentilesAreOrdered) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Add(i % 1000);
  const double p10 = h.Percentile(10);
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentileWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(512);  // all in bucket [512,1024)
  EXPECT_GE(h.Percentile(50), 512.0);
  EXPECT_LE(h.Percentile(50), 1024.0);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  a.Add(10);
  a.Add(20);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  EXPECT_EQ(a.max(), 30);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(7);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

}  // namespace
}  // namespace teleport
