#include "common/histogram.h"

#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace teleport {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

// PR8 regression: an empty scope is a reachable steady state (a tenant can
// abort every transaction, so e.g. its commit-latency histogram records
// nothing). Every percentile must return the documented sentinel, not a
// value fabricated from the uninitialized INT64_MAX min_ clamp.
TEST(HistogramTest, EmptyPercentileSentinelAtEveryPercentile) {
  const Histogram h;
  for (const double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), Histogram::kEmptyPercentile) << p;
  }
  EXPECT_DOUBLE_EQ(h.Mean(), Histogram::kEmptyPercentile);
  // Reset() returns a used histogram to exactly the empty-sentinel state.
  Histogram used;
  used.Add(1 << 20);
  used.Reset();
  EXPECT_DOUBLE_EQ(used.Percentile(99), Histogram::kEmptyPercentile);
  EXPECT_EQ(used.min(), 0);
  EXPECT_EQ(used.max(), 0);
}

TEST(HistogramTest, MergeWithEmptyIsIdentityBothWays) {
  Histogram a;
  a.Add(7);
  a.Add(4096);
  Histogram merged = a;
  merged.Merge(Histogram());  // empty right operand
  EXPECT_EQ(merged.count(), a.count());
  EXPECT_EQ(merged.min(), a.min());
  EXPECT_EQ(merged.max(), a.max());
  EXPECT_DOUBLE_EQ(merged.Percentile(50), a.Percentile(50));
  Histogram from_empty;  // empty left operand
  from_empty.Merge(a);
  EXPECT_EQ(from_empty.count(), a.count());
  EXPECT_EQ(from_empty.min(), a.min());
  EXPECT_DOUBLE_EQ(from_empty.Percentile(99), a.Percentile(99));
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_DOUBLE_EQ(h.Mean(), 1000.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, PercentilesAreOrdered) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.Add(i % 1000);
  const double p10 = h.Percentile(10);
  const double p50 = h.Percentile(50);
  const double p90 = h.Percentile(90);
  const double p99 = h.Percentile(99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
}

TEST(HistogramTest, PercentileWithinBucketBounds) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(512);  // all in bucket [512,1024)
  EXPECT_GE(h.Percentile(50), 512.0);
  EXPECT_LE(h.Percentile(50), 1024.0);
}

// The doc/impl contract fixed in PR4: interpolation bounds are tightened
// to the observed [min, max], so all-equal samples report the exact value
// at every percentile (the seed reported e.g. p50=768 for 1000x 512).
TEST(HistogramTest, AllEqualSamplesReportExactPercentiles) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(777);
  for (const double p : {0.1, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 777.0) << "p" << p;
  }
  Histogram one;
  one.Add(12345);
  EXPECT_DOUBLE_EQ(one.Percentile(50), 12345.0);
}

TEST(HistogramTest, PercentilesNeverLeaveObservedRange) {
  Histogram h;
  h.Add(100);
  h.Add(900);  // same bucket as neither; range [100, 900]
  for (const double p : {1.0, 25.0, 50.0, 75.0, 99.0}) {
    EXPECT_GE(h.Percentile(p), 100.0);
    EXPECT_LE(h.Percentile(p), 900.0);
  }
}

// The top bucket has no power-of-two ceiling (1ULL << 64 is UB); its upper
// bound is the observed max. Samples at and around 2^62..2^63 must neither
// trap under UBSAN nor report values past the max.
TEST(HistogramTest, HugeValuesStayFiniteAndBounded) {
  Histogram h;
  const int64_t big = int64_t{1} << 62;
  h.Add(big);
  h.Add(big + 12345);
  h.Add(std::numeric_limits<int64_t>::max());
  for (const double p : {1.0, 50.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, static_cast<double>(h.min()));
    EXPECT_LE(v, static_cast<double>(h.max()));
  }
  EXPECT_EQ(h.max(), std::numeric_limits<int64_t>::max());
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a, b;
  a.Add(10);
  a.Add(20);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  EXPECT_EQ(a.max(), 30);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(100);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(7);
  EXPECT_NE(h.ToString().find("count=1"), std::string::npos);
}

// All externally observable state of a histogram, for exact comparison in
// the algebraic property tests below.
void ExpectSame(const Histogram& x, const Histogram& y) {
  EXPECT_EQ(x.count(), y.count());
  EXPECT_EQ(x.min(), y.min());
  EXPECT_EQ(x.max(), y.max());
  EXPECT_DOUBLE_EQ(x.Mean(), y.Mean());
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(x.Percentile(p), y.Percentile(p)) << "p" << p;
  }
  EXPECT_EQ(x.ToString(), y.ToString());
}

// Property: Merge is associative — (a + b) + c == a + (b + c) — so per-call
// histograms can be combined in any aggregation order (per-operator, then
// per-query, then per-suite) without changing a single reported number.
class HistogramMergeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistogramMergeTest, MergeIsAssociative) {
  Rng rng(GetParam());
  Histogram a, b, c;
  Histogram* parts[] = {&a, &b, &c};
  for (Histogram* h : parts) {
    const int n = static_cast<int>(rng.Uniform(500));
    for (int i = 0; i < n; ++i) {
      h->Add(static_cast<int64_t>(rng.Uniform(1u << 20)));
    }
  }
  Histogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  Histogram bc = b;     // a + (b + c)
  bc.Merge(c);
  Histogram right = a;
  right.Merge(bc);
  ExpectSame(left, right);
}

TEST_P(HistogramMergeTest, MergeIsCommutativeWithEmptyIdentity) {
  Rng rng(GetParam() ^ 0xabcdef);
  Histogram a, b;
  const int n = static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < n; ++i) a.Add(static_cast<int64_t>(rng.Uniform(1000)));
  const int m = static_cast<int>(rng.Uniform(300));
  for (int i = 0; i < m; ++i) b.Add(static_cast<int64_t>(rng.Uniform(1000)));

  Histogram ab = a;
  ab.Merge(b);
  Histogram ba = b;
  ba.Merge(a);
  ExpectSame(ab, ba);

  Histogram with_empty = a;
  with_empty.Merge(Histogram());
  ExpectSame(with_empty, a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramMergeTest,
                         ::testing::Values(7, 21, 63, 189, 567));

}  // namespace
}  // namespace teleport
