#include "common/logging.h"

#include <gtest/gtest.h>

namespace teleport {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, BelowThresholdEmitsNothing) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  TELEPORT_LOG(kInfo) << "should be dropped";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(LoggingTest, AtThresholdEmits) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  TELEPORT_LOG(kInfo) << "visible message " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("visible message 42"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ TELEPORT_CHECK(1 == 2) << "impossible"; },
               "Check failed: 1 == 2");
}

TEST(LoggingTest, CheckPassesSilently) {
  ::testing::internal::CaptureStderr();
  TELEPORT_CHECK(1 + 1 == 2) << "never printed";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

#ifndef NDEBUG
TEST(LoggingDeathTest, DcheckActiveInDebug) {
  EXPECT_DEATH({ TELEPORT_DCHECK(false) << "debug only"; }, "Check failed");
}
#else
TEST(LoggingTest, DcheckCompiledOutInRelease) {
  TELEPORT_DCHECK(false) << "no effect in NDEBUG builds";
}
#endif

}  // namespace
}  // namespace teleport
