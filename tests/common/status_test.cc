#include "common/status.h"

#include <gtest/gtest.h>

namespace teleport {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfMemory("x").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Fault("x").code(), StatusCode::kFault);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Fenced("x").code(), StatusCode::kFenced);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::TimedOut("t").IsTimedOut());
  EXPECT_TRUE(Status::Cancelled("c").IsCancelled());
  EXPECT_TRUE(Status::Unavailable("u").IsUnavailable());
  EXPECT_TRUE(Status::Fault("f").IsFault());
  EXPECT_TRUE(Status::Fenced("e").IsFenced());
  EXPECT_FALSE(Status::OK().IsTimedOut());
  EXPECT_FALSE(Status::Unavailable("u").IsFenced());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing page").ToString(),
            "NotFound: missing page");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() -> Status { return Status::Cancelled("stop"); };
  auto outer = [&]() -> Status {
    TELEPORT_RETURN_IF_ERROR(inner());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(outer().IsCancelled());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto inner = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    TELEPORT_RETURN_IF_ERROR(inner());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFault), "Fault");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFenced), "Fenced");
}

}  // namespace
}  // namespace teleport
