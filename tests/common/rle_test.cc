#include "common/rle.h"

#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace teleport {
namespace {

TEST(RleTest, EmptyList) {
  EXPECT_TRUE(RleEncode({}).empty());
  EXPECT_TRUE(RleDecode({}).empty());
  EXPECT_EQ(RleSizeBytes({}), 0u);
}

TEST(RleTest, SingleRun) {
  std::vector<PageEntry> pages;
  for (uint64_t p = 10; p < 20; ++p) pages.push_back({p, true});
  auto runs = RleEncode(pages);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (PageRun{10, 10, true}));
}

TEST(RleTest, PermissionChangeBreaksRun) {
  std::vector<PageEntry> pages = {{0, true}, {1, true}, {2, false}, {3, false}};
  auto runs = RleEncode(pages);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (PageRun{0, 2, true}));
  EXPECT_EQ(runs[1], (PageRun{2, 2, false}));
}

TEST(RleTest, GapBreaksRun) {
  std::vector<PageEntry> pages = {{0, false}, {1, false}, {5, false}};
  auto runs = RleEncode(pages);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1], (PageRun{5, 1, false}));
}

TEST(RleTest, DenseResidentListCompressesWell) {
  // The §6 claim: a mostly-contiguous resident set compresses ~20x. A fully
  // dense 1 GiB cache (262144 pages) compresses to a handful of runs.
  std::vector<PageEntry> pages;
  for (uint64_t p = 0; p < 262144; ++p) pages.push_back({p, p < 131072});
  auto runs = RleEncode(pages);
  EXPECT_EQ(runs.size(), 2u);
  EXPECT_GT(static_cast<double>(RawSizeBytes(pages.size())) /
                static_cast<double>(RleSizeBytes(runs)),
            20.0);
}

// Property: decode(encode(x)) == x for random sorted page lists.
class RleRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RleRoundtripTest, Roundtrip) {
  Rng rng(GetParam());
  std::vector<PageEntry> pages;
  uint64_t p = 0;
  const int n = static_cast<int>(rng.Uniform(2000));
  for (int i = 0; i < n; ++i) {
    p += 1 + rng.Uniform(4);  // gaps of 0-3 pages
    pages.push_back({p, rng.Bernoulli(0.5)});
  }
  auto runs = RleEncode(pages);
  EXPECT_EQ(RleDecode(runs), pages);
  // Encoded form is never larger than ~1.5x the raw form per entry and is
  // monotone in run count.
  EXPECT_LE(runs.size(), pages.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleRoundtripTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(RleTest, RunsAreMaximal) {
  // No two adjacent runs could be merged.
  Rng rng(99);
  std::vector<PageEntry> pages;
  uint64_t p = 0;
  for (int i = 0; i < 5000; ++i) {
    p += 1 + rng.Uniform(2);
    pages.push_back({p, rng.Bernoulli(0.7)});
  }
  auto runs = RleEncode(pages);
  for (size_t i = 1; i < runs.size(); ++i) {
    const bool contiguous =
        runs[i - 1].start + runs[i - 1].count == runs[i].start;
    const bool same_perm = runs[i - 1].writable == runs[i].writable;
    EXPECT_FALSE(contiguous && same_perm)
        << "runs " << i - 1 << " and " << i << " should have been merged";
  }
}

// Adversarial worst case: permissions alternate on every contiguous page,
// so no two entries ever merge — one run per page, and the encoded form
// hits its 13/9 per-entry ceiling against the raw list. Round-trip must
// still be exact.
TEST(RleTest, AlternatingPermissionsWorstCaseRoundTrips) {
  std::vector<PageEntry> pages;
  for (uint64_t p = 0; p < 4096; ++p) pages.push_back({p, (p % 2) == 0});
  const auto runs = RleEncode(pages);
  EXPECT_EQ(runs.size(), pages.size());
  EXPECT_EQ(RleDecode(runs), pages);
  EXPECT_EQ(RleSizeBytes(runs), 13u * runs.size());
  EXPECT_GT(RleSizeBytes(runs), RawSizeBytes(pages.size()));
}

// Property: singleton lists of every permission round-trip to one run.
TEST(RleTest, SingletonRoundTrips) {
  for (const bool writable : {false, true}) {
    const std::vector<PageEntry> pages = {{42, writable}};
    const auto runs = RleEncode(pages);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0], (PageRun{42, 1, writable}));
    EXPECT_EQ(RleDecode(runs), pages);
  }
}

// Property: random *adversarial* lists mixing long runs, alternations, and
// large gaps round-trip exactly, and re-encoding the decoded list is a
// fixed point (encode . decode . encode == encode).
class RleAdversarialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RleAdversarialTest, RoundTripAndEncodeIsFixedPoint) {
  Rng rng(GetParam());
  std::vector<PageEntry> pages;
  uint64_t p = 0;
  const int segments = 20 + static_cast<int>(rng.Uniform(30));
  for (int s = 0; s < segments; ++s) {
    switch (rng.Uniform(3)) {
      case 0: {  // long uniform run
        const bool w = rng.Bernoulli(0.5);
        const uint64_t len = 1 + rng.Uniform(200);
        for (uint64_t i = 0; i < len; ++i) pages.push_back({p++, w});
        break;
      }
      case 1: {  // alternating permissions, contiguous
        const uint64_t len = 1 + rng.Uniform(64);
        for (uint64_t i = 0; i < len; ++i) {
          pages.push_back({p++, (i % 2) == 0});
        }
        break;
      }
      default:  // a big hole in the address space
        p += 1 + rng.Uniform(1 << 20);
        break;
    }
  }
  const auto runs = RleEncode(pages);
  const auto decoded = RleDecode(runs);
  EXPECT_EQ(decoded, pages);
  EXPECT_EQ(RleEncode(decoded), runs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleAdversarialTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace teleport
