#include <limits>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "graph/engine.h"

namespace teleport::graph {
namespace {

constexpr int64_t kInf = int64_t{1} << 50;

std::unique_ptr<ddc::MemorySystem> LocalSystem() {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kLocal;
  return std::make_unique<ddc::MemorySystem>(c, sim::CostParams::Default(),
                                             64 << 20);
}

/// Host reference: widest path via a max-priority Dijkstra variant.
std::vector<int64_t> HostWidest(ddc::MemorySystem& ms, const Graph& g) {
  const auto* off = static_cast<const int64_t*>(
      ms.space().HostPtr(g.offsets, (g.vertices + 1) * 8));
  const auto* tgt =
      static_cast<const int64_t*>(ms.space().HostPtr(g.targets, g.edges * 8));
  const auto* wgt =
      static_cast<const int64_t*>(ms.space().HostPtr(g.weights, g.edges * 8));
  std::vector<int64_t> width(g.vertices, 0);
  width[0] = kInf;
  std::priority_queue<std::pair<int64_t, uint64_t>> pq;
  pq.push({kInf, 0});
  while (!pq.empty()) {
    auto [wv, v] = pq.top();
    pq.pop();
    if (wv < width[v]) continue;
    for (int64_t e = off[v]; e < off[v + 1]; ++e) {
      const auto t = static_cast<uint64_t>(tgt[e]);
      const int64_t nw = std::min(wv, wgt[e]);
      if (nw > width[t]) {
        width[t] = nw;
        pq.push({nw, t});
      }
    }
  }
  return width;
}

TEST(WidestPathTest, MatchesDijkstraVariant) {
  auto ms = LocalSystem();
  GraphConfig gc;
  gc.vertices = 3'000;
  gc.avg_degree = 8;
  const Graph g = GenerateGraph(ms.get(), gc);
  auto ctx = ms->CreateContext(ddc::Pool::kCompute);
  const GasResult r = RunWidestPath(*ctx, g, GasOptions{});
  const std::vector<int64_t> expect = HostWidest(*ms, g);
  for (uint64_t v = 0; v < g.vertices; ++v) {
    ASSERT_EQ(ctx->Load<int64_t>(r.values + v * 8), expect[v])
        << "vertex " << v;
  }
}

TEST(WidestPathTest, SourceHasInfiniteWidth) {
  auto ms = LocalSystem();
  GraphConfig gc;
  gc.vertices = 500;
  const Graph g = GenerateGraph(ms.get(), gc);
  auto ctx = ms->CreateContext(ddc::Pool::kCompute);
  const GasResult r = RunWidestPath(*ctx, g, GasOptions{});
  EXPECT_EQ(ctx->Load<int64_t>(r.values), kInf);
}

TEST(WidestPathTest, WidthsBoundedByMaxWeight) {
  auto ms = LocalSystem();
  GraphConfig gc;
  gc.vertices = 2'000;
  gc.max_weight = 37;
  const Graph g = GenerateGraph(ms.get(), gc);
  auto ctx = ms->CreateContext(ddc::Pool::kCompute);
  const GasResult r = RunWidestPath(*ctx, g, GasOptions{});
  for (uint64_t v = 1; v < g.vertices; ++v) {
    const int64_t w = ctx->Load<int64_t>(r.values + v * 8);
    ASSERT_GE(w, 1);   // every vertex reachable via the chain edge
    ASSERT_LE(w, 37);  // no path is wider than the widest edge
  }
}

TEST(WidestPathTest, PushdownTransparent) {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kBaseDdc;
  c.compute_cache_bytes = 64 << 10;
  c.memory_pool_bytes = 64 << 20;
  ddc::MemorySystem ms(c, sim::CostParams::Default(), 64 << 20);
  GraphConfig gc;
  gc.vertices = 2'000;
  const Graph g = GenerateGraph(&ms, gc);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  tp::PushdownRuntime runtime(&ms);
  GasOptions opts;
  opts.runtime = &runtime;
  opts.push_phases = DefaultTeleportPhases();
  const GasResult pushed = RunWidestPath(*ctx, g, opts);

  auto lms = LocalSystem();
  const Graph g2 = GenerateGraph(lms.get(), gc);
  auto lctx = lms->CreateContext(ddc::Pool::kCompute);
  const GasResult plain = RunWidestPath(*lctx, g2, GasOptions{});
  EXPECT_EQ(pushed.checksum, plain.checksum);
}

}  // namespace
}  // namespace teleport::graph
