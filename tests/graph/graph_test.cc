#include "graph/graph.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace teleport::graph {
namespace {

ddc::DdcConfig LocalConfig() {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kLocal;
  return c;
}

GraphConfig SmallConfig() {
  GraphConfig c;
  c.vertices = 5'000;
  c.avg_degree = 8;
  return c;
}

class GraphGenTest : public ::testing::Test {
 protected:
  GraphGenTest()
      : ms_(LocalConfig(), sim::CostParams::Default(), 64 << 20),
        g_(GenerateGraph(&ms_, SmallConfig())) {}

  const int64_t* Offsets() const {
    return static_cast<const int64_t*>(
        const_cast<ddc::MemorySystem&>(ms_).space().HostPtr(
            g_.offsets, (g_.vertices + 1) * 8));
  }
  const int64_t* Targets() const {
    return static_cast<const int64_t*>(
        const_cast<ddc::MemorySystem&>(ms_).space().HostPtr(g_.targets,
                                                            g_.edges * 8));
  }
  const int64_t* Weights() const {
    return static_cast<const int64_t*>(
        const_cast<ddc::MemorySystem&>(ms_).space().HostPtr(g_.weights,
                                                            g_.edges * 8));
  }

  ddc::MemorySystem ms_;
  Graph g_;
};

TEST_F(GraphGenTest, CsrIsWellFormed) {
  EXPECT_EQ(g_.vertices, 5'000u);
  EXPECT_EQ(g_.edges, (g_.vertices - 1) * 8);
  const int64_t* off = Offsets();
  EXPECT_EQ(off[0], 0);
  for (uint64_t v = 0; v < g_.vertices; ++v) ASSERT_LE(off[v], off[v + 1]);
  EXPECT_EQ(off[g_.vertices], static_cast<int64_t>(g_.edges));
  const int64_t* tgt = Targets();
  for (uint64_t e = 0; e < g_.edges; ++e) {
    ASSERT_GE(tgt[e], 0);
    ASSERT_LT(tgt[e], static_cast<int64_t>(g_.vertices));
  }
}

TEST_F(GraphGenTest, WeightsInRange) {
  const int64_t* w = Weights();
  for (uint64_t e = 0; e < g_.edges; ++e) {
    ASSERT_GE(w[e], 1);
    ASSERT_LE(w[e], SmallConfig().max_weight);
  }
}

TEST_F(GraphGenTest, EveryVertexReachableFromZero) {
  // BFS over the host CSR; the guaranteed chain edge makes the graph
  // connected from vertex 0.
  const int64_t* off = Offsets();
  const int64_t* tgt = Targets();
  std::vector<bool> seen(g_.vertices, false);
  std::vector<uint64_t> stack = {0};
  seen[0] = true;
  uint64_t visited = 1;
  while (!stack.empty()) {
    const uint64_t v = stack.back();
    stack.pop_back();
    for (int64_t e = off[v]; e < off[v + 1]; ++e) {
      const auto t = static_cast<uint64_t>(tgt[e]);
      if (!seen[t]) {
        seen[t] = true;
        ++visited;
        stack.push_back(t);
      }
    }
  }
  EXPECT_EQ(visited, g_.vertices);
}

TEST_F(GraphGenTest, DegreeDistributionIsSkewed) {
  // Preferential attachment: in-degree max far exceeds the average.
  std::vector<uint64_t> indeg(g_.vertices, 0);
  const int64_t* tgt = Targets();
  for (uint64_t e = 0; e < g_.edges; ++e) {
    ++indeg[static_cast<uint64_t>(tgt[e])];
  }
  const uint64_t max_indeg = *std::max_element(indeg.begin(), indeg.end());
  const double avg =
      static_cast<double>(g_.edges) / static_cast<double>(g_.vertices);
  EXPECT_GT(static_cast<double>(max_indeg), 10 * avg);
}

TEST_F(GraphGenTest, DeterministicInSeed) {
  ddc::MemorySystem ms2(LocalConfig(), sim::CostParams::Default(), 64 << 20);
  const Graph g2 = GenerateGraph(&ms2, SmallConfig());
  ASSERT_EQ(g2.edges, g_.edges);
  const int64_t* a = Targets();
  const int64_t* b = static_cast<const int64_t*>(
      ms2.space().HostPtr(g2.targets, g2.edges * 8));
  for (uint64_t e = 0; e < g_.edges; ++e) ASSERT_EQ(a[e], b[e]);
}

TEST_F(GraphGenTest, EstimateCoversAllocation) {
  EXPECT_GE(EstimateGraphBytes(SmallConfig()) + 3 * 4096,
            g_.TotalBytes());
}

}  // namespace
}  // namespace teleport::graph
