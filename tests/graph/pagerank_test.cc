#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/engine.h"

namespace teleport::graph {
namespace {

Graph MakeGraph(ddc::MemorySystem* ms, uint64_t vertices = 2'000) {
  GraphConfig gc;
  gc.vertices = vertices;
  gc.avg_degree = 8;
  return GenerateGraph(ms, gc);
}

std::unique_ptr<ddc::MemorySystem> LocalSystem() {
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kLocal;
  return std::make_unique<ddc::MemorySystem>(c, sim::CostParams::Default(),
                                             64 << 20);
}

/// Host replica of the engine's fixed-point PageRank, straight off the CSR
/// arrays — identical integer arithmetic, independent control flow.
std::vector<int64_t> HostPageRank(ddc::MemorySystem& ms, const Graph& g,
                                  int iterations) {
  const auto* off = static_cast<const int64_t*>(
      ms.space().HostPtr(g.offsets, (g.vertices + 1) * 8));
  const auto* tgt =
      static_cast<const int64_t*>(ms.space().HostPtr(g.targets, g.edges * 8));
  constexpr int64_t kScale = 1'000'000;
  const auto v_count = static_cast<int64_t>(g.vertices);
  std::vector<int64_t> rank(g.vertices, kScale / v_count);
  std::vector<int64_t> msg(g.vertices, 0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(msg.begin(), msg.end(), 0);
    for (uint64_t v = 0; v < g.vertices; ++v) {
      const int64_t deg = off[v + 1] - off[v];
      if (deg == 0) continue;
      const int64_t share = rank[v] / deg;
      for (int64_t e = off[v]; e < off[v + 1]; ++e) {
        msg[static_cast<uint64_t>(tgt[e])] += share;
      }
    }
    for (uint64_t v = 0; v < g.vertices; ++v) {
      rank[v] = (kScale * 15) / (100 * v_count) + (85 * msg[v]) / 100;
    }
  }
  return rank;
}

TEST(PageRankTest, MatchesHostReplicaExactly) {
  auto ms = LocalSystem();
  const Graph g = MakeGraph(ms.get());
  auto ctx = ms->CreateContext(ddc::Pool::kCompute);
  const GasResult r = RunPageRank(*ctx, g, GasOptions{}, 8);
  const std::vector<int64_t> expect = HostPageRank(*ms, g, 8);
  for (uint64_t v = 0; v < g.vertices; ++v) {
    ASSERT_EQ(ctx->Load<int64_t>(r.values + v * 8), expect[v])
        << "vertex " << v;
  }
}

TEST(PageRankTest, HighInDegreeVerticesRankHigher) {
  auto ms = LocalSystem();
  const Graph g = MakeGraph(ms.get(), 4'000);
  auto ctx = ms->CreateContext(ddc::Pool::kCompute);
  const GasResult r = RunPageRank(*ctx, g, GasOptions{}, 10);
  // Compute in-degrees on the host.
  const auto* off = static_cast<const int64_t*>(
      ms->space().HostPtr(g.offsets, (g.vertices + 1) * 8));
  const auto* tgt = static_cast<const int64_t*>(
      ms->space().HostPtr(g.targets, g.edges * 8));
  (void)off;
  std::vector<uint64_t> indeg(g.vertices, 0);
  for (uint64_t e = 0; e < g.edges; ++e) ++indeg[(uint64_t)tgt[e]];
  uint64_t top_v = 0, bot_v = 0;
  for (uint64_t v = 0; v < g.vertices; ++v) {
    if (indeg[v] > indeg[top_v]) top_v = v;
    if (indeg[v] < indeg[bot_v]) bot_v = v;
  }
  EXPECT_GT(ctx->Load<int64_t>(r.values + top_v * 8),
            ctx->Load<int64_t>(r.values + bot_v * 8));
}

TEST(PageRankTest, MoreIterationsConverge) {
  auto ms1 = LocalSystem();
  const Graph g1 = MakeGraph(ms1.get());
  auto c1 = ms1->CreateContext(ddc::Pool::kCompute);
  const GasResult r10 = RunPageRank(*c1, g1, GasOptions{}, 10);
  auto ms2 = LocalSystem();
  const Graph g2 = MakeGraph(ms2.get());
  auto c2 = ms2->CreateContext(ddc::Pool::kCompute);
  const GasResult r11 = RunPageRank(*c2, g2, GasOptions{}, 11);
  // The per-vertex delta between successive iterations shrinks: compare
  // total absolute change against an early-iteration pair.
  auto ms3 = LocalSystem();
  const Graph g3 = MakeGraph(ms3.get());
  auto c3 = ms3->CreateContext(ddc::Pool::kCompute);
  const GasResult r1 = RunPageRank(*c3, g3, GasOptions{}, 1);
  auto ms4 = LocalSystem();
  const Graph g4 = MakeGraph(ms4.get());
  auto c4 = ms4->CreateContext(ddc::Pool::kCompute);
  const GasResult r2 = RunPageRank(*c4, g4, GasOptions{}, 2);
  int64_t early_delta = 0, late_delta = 0;
  for (uint64_t v = 0; v < g1.vertices; ++v) {
    early_delta += std::abs(c3->Load<int64_t>(r1.values + v * 8) -
                            c4->Load<int64_t>(r2.values + v * 8));
    late_delta += std::abs(c1->Load<int64_t>(r10.values + v * 8) -
                           c2->Load<int64_t>(r11.values + v * 8));
  }
  EXPECT_LT(late_delta, early_delta);
}

/// Property: ANY subset of phases may be Teleported without changing the
/// result — the engine's pushdown wrapping is semantically transparent.
class PhaseSubsetTest : public ::testing::TestWithParam<int> {};

TEST_P(PhaseSubsetTest, AnyPushedSubsetIsTransparent) {
  const int mask = GetParam();
  ddc::DdcConfig c;
  c.platform = ddc::Platform::kBaseDdc;
  c.compute_cache_bytes = 64 << 10;
  c.memory_pool_bytes = 64 << 20;
  ddc::MemorySystem ms(c, sim::CostParams::Default(), 64 << 20);
  const Graph g = MakeGraph(&ms);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  tp::PushdownRuntime runtime(&ms);
  GasOptions opts;
  opts.runtime = &runtime;
  const Phase all[] = {Phase::kFinalize, Phase::kGather, Phase::kApply,
                       Phase::kScatter};
  for (int b = 0; b < 4; ++b) {
    if (mask & (1 << b)) opts.push_phases.insert(all[b]);
  }
  const GasResult r = RunSssp(*ctx, g, opts);

  // Reference (no pushdown) on an identical fresh deployment.
  ddc::MemorySystem ms2(c, sim::CostParams::Default(), 64 << 20);
  const Graph g2 = MakeGraph(&ms2);
  auto ctx2 = ms2.CreateContext(ddc::Pool::kCompute);
  const GasResult ref = RunSssp(*ctx2, g2, GasOptions{});
  EXPECT_EQ(r.checksum, ref.checksum) << "phase mask " << mask;
  EXPECT_EQ(r.iterations, ref.iterations);
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, PhaseSubsetTest,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace teleport::graph
