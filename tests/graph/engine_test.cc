#include "graph/engine.h"

#include <limits>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

namespace teleport::graph {
namespace {

constexpr int64_t kInf = int64_t{1} << 50;

struct Deployment {
  std::unique_ptr<ddc::MemorySystem> ms;
  Graph graph;
  std::unique_ptr<ddc::ExecutionContext> ctx;
  std::unique_ptr<tp::PushdownRuntime> runtime;
};

Deployment MakeDeployment(ddc::Platform platform, uint64_t vertices = 4'000,
                          double cache_fraction = 0.06) {
  Deployment d;
  GraphConfig gc;
  gc.vertices = vertices;
  gc.avg_degree = 8;
  ddc::DdcConfig dc;
  dc.platform = platform;
  const uint64_t bytes = EstimateGraphBytes(gc);
  dc.compute_cache_bytes = std::max<uint64_t>(
      16 * 4096,
      static_cast<uint64_t>(cache_fraction * static_cast<double>(bytes)));
  dc.memory_pool_bytes = bytes * 16;
  d.ms = std::make_unique<ddc::MemorySystem>(dc, sim::CostParams::Default(),
                                             bytes * 16);
  d.graph = GenerateGraph(d.ms.get(), gc);
  d.ctx = d.ms->CreateContext(ddc::Pool::kCompute);
  if (platform == ddc::Platform::kBaseDdc) {
    d.runtime = std::make_unique<tp::PushdownRuntime>(d.ms.get());
  }
  return d;
}

/// Host-side reference structures read straight from the backing store.
struct HostGraph {
  const int64_t* off;
  const int64_t* tgt;
  const int64_t* wgt;
  uint64_t v, e;
};

HostGraph HostView(Deployment& d) {
  return {static_cast<const int64_t*>(
              d.ms->space().HostPtr(d.graph.offsets, (d.graph.vertices + 1) * 8)),
          static_cast<const int64_t*>(
              d.ms->space().HostPtr(d.graph.targets, d.graph.edges * 8)),
          static_cast<const int64_t*>(
              d.ms->space().HostPtr(d.graph.weights, d.graph.edges * 8)),
          d.graph.vertices, d.graph.edges};
}

std::vector<int64_t> Dijkstra(const HostGraph& h) {
  std::vector<int64_t> dist(h.v, kInf);
  dist[0] = 0;
  using Item = std::pair<int64_t, uint64_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, 0});
  while (!pq.empty()) {
    auto [dv, v] = pq.top();
    pq.pop();
    if (dv > dist[v]) continue;
    for (int64_t e = h.off[v]; e < h.off[v + 1]; ++e) {
      const auto t = static_cast<uint64_t>(h.tgt[e]);
      const int64_t nd = dv + h.wgt[e];
      if (nd < dist[t]) {
        dist[t] = nd;
        pq.push({nd, t});
      }
    }
  }
  return dist;
}

std::vector<int64_t> ReadValues(Deployment& d, ddc::VAddr values) {
  std::vector<int64_t> out(d.graph.vertices);
  for (uint64_t v = 0; v < d.graph.vertices; ++v) {
    out[v] = d.ctx->Load<int64_t>(values + v * 8);
  }
  return out;
}

TEST(GasEngineTest, SsspMatchesDijkstra) {
  auto d = MakeDeployment(ddc::Platform::kLocal);
  const GasResult r = RunSssp(*d.ctx, d.graph, GasOptions{});
  const std::vector<int64_t> expect = Dijkstra(HostView(d));
  EXPECT_EQ(ReadValues(d, r.values), expect);
  EXPECT_GT(r.iterations, 1);
}

TEST(GasEngineTest, ReachabilityMatchesBfs) {
  auto d = MakeDeployment(ddc::Platform::kLocal);
  const GasResult r = RunReachability(*d.ctx, d.graph, GasOptions{});
  const std::vector<int64_t> vals = ReadValues(d, r.values);
  // The generator guarantees full reachability from vertex 0.
  for (uint64_t v = 0; v < d.graph.vertices; ++v) {
    ASSERT_EQ(vals[v], 1) << "vertex " << v;
  }
}

TEST(GasEngineTest, ConnectedComponentsConvergeToZero) {
  auto d = MakeDeployment(ddc::Platform::kLocal);
  const GasResult r = RunConnectedComponents(*d.ctx, d.graph, GasOptions{});
  const std::vector<int64_t> vals = ReadValues(d, r.values);
  // Label propagation over a graph connected from 0 via ascending chain
  // edges converges every label to 0.
  for (uint64_t v = 0; v < d.graph.vertices; ++v) {
    ASSERT_EQ(vals[v], 0) << "vertex " << v;
  }
}

TEST(GasEngineTest, PageRankMassApproximatelyConserved) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 2'000);
  const GasResult r = RunPageRank(*d.ctx, d.graph, GasOptions{}, 10);
  const std::vector<int64_t> vals = ReadValues(d, r.values);
  int64_t total = 0;
  for (int64_t v : vals) {
    ASSERT_GE(v, 0);
    total += v;
  }
  // Fixed-point 1e6 total mass, up to damping leakage via sinks and
  // integer truncation.
  EXPECT_GT(total, 300'000);
  EXPECT_LE(total, 1'100'000);
  EXPECT_EQ(r.iterations, 10);
}

TEST(GasEngineTest, ChecksumIdenticalAcrossPlatformsAndPushdown) {
  auto local = MakeDeployment(ddc::Platform::kLocal);
  auto ddc = MakeDeployment(ddc::Platform::kBaseDdc);
  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  GasOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_phases = DefaultTeleportPhases();

  for (auto run : {&RunSssp, &RunReachability, &RunConnectedComponents}) {
    const GasResult r_local = run(*local.ctx, local.graph, GasOptions{});
    const GasResult r_ddc = run(*ddc.ctx, ddc.graph, GasOptions{});
    const GasResult r_tele = run(*tele.ctx, tele.graph, topts);
    EXPECT_EQ(r_local.checksum, r_ddc.checksum);
    EXPECT_EQ(r_local.checksum, r_tele.checksum);
    EXPECT_EQ(r_local.iterations, r_tele.iterations);
  }
}

TEST(GasEngineTest, PlatformOrderingHolds) {
  auto local = MakeDeployment(ddc::Platform::kLocal);
  const Nanos t_local = RunSssp(*local.ctx, local.graph, GasOptions{}).total_ns;

  auto base = MakeDeployment(ddc::Platform::kBaseDdc);
  const Nanos t_ddc = RunSssp(*base.ctx, base.graph, GasOptions{}).total_ns;

  auto tele = MakeDeployment(ddc::Platform::kBaseDdc);
  GasOptions topts;
  topts.runtime = tele.runtime.get();
  topts.push_phases = DefaultTeleportPhases();
  const Nanos t_tele = RunSssp(*tele.ctx, tele.graph, topts).total_ns;

  EXPECT_LT(t_local, t_tele);
  EXPECT_LT(t_tele, t_ddc);
}

TEST(GasEngineTest, PhaseProfilesArePopulated) {
  auto d = MakeDeployment(ddc::Platform::kBaseDdc, 2'000);
  const GasResult r = RunSssp(*d.ctx, d.graph, GasOptions{});
  EXPECT_EQ(r.Profile(Phase::kFinalize).invocations, 1u);
  EXPECT_EQ(r.Profile(Phase::kScatter).invocations,
            static_cast<uint64_t>(r.iterations));
  EXPECT_GT(r.Profile(Phase::kFinalize).time_ns, 0);
  EXPECT_GT(r.Profile(Phase::kScatter).remote_bytes, 0u);
}

TEST(GasEngineTest, PushedPhasesAreMarked) {
  auto d = MakeDeployment(ddc::Platform::kBaseDdc, 2'000);
  GasOptions opts;
  opts.runtime = d.runtime.get();
  opts.push_phases = {Phase::kScatter};
  const GasResult r = RunSssp(*d.ctx, d.graph, opts);
  EXPECT_TRUE(r.Profile(Phase::kScatter).pushed);
  EXPECT_FALSE(r.Profile(Phase::kGather).pushed);
}

TEST(GasEngineTest, MaxIterationsBoundsWork) {
  auto d = MakeDeployment(ddc::Platform::kLocal, 2'000);
  GasOptions opts;
  opts.max_iterations = 2;
  const GasResult r = RunSssp(*d.ctx, d.graph, opts);
  EXPECT_EQ(r.iterations, 2);
}

}  // namespace
}  // namespace teleport::graph
