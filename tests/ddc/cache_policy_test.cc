#include <cstdint>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

MemorySystem MakeSystem(CachePolicy policy, uint64_t cache_pages = 4) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = cache_pages * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  c.cache_policy = policy;
  return MemorySystem(c, sim::CostParams::Default(), 8 << 20);
}

TEST(CachePolicyTest, LruKeepsRecentlyTouchedPage) {
  MemorySystem ms = MakeSystem(CachePolicy::kLru);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 4; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  (void)ctx->Load<int64_t>(a);        // promote page 0
  (void)ctx->Load<int64_t>(a + 4 * kPage);  // evicts page 1
  EXPECT_NE(ms.compute_perm(0), Perm::kNone);
  EXPECT_EQ(ms.compute_perm(1), Perm::kNone);
}

TEST(CachePolicyTest, FifoEvictsOldestDespiteHits) {
  MemorySystem ms = MakeSystem(CachePolicy::kFifo);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 4; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  (void)ctx->Load<int64_t>(a);        // hit on page 0: no promotion
  (void)ctx->Load<int64_t>(a + 4 * kPage);  // evicts page 0 anyway
  EXPECT_EQ(ms.compute_perm(0), Perm::kNone);
  EXPECT_NE(ms.compute_perm(1), Perm::kNone);
}

TEST(CachePolicyTest, ClockGivesReferencedPageASecondChance) {
  MemorySystem ms = MakeSystem(CachePolicy::kClock);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 4; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
  (void)ctx->Load<int64_t>(a);        // sets page 0's reference bit
  (void)ctx->Load<int64_t>(a + 4 * kPage);
  // Page 0 was spared (bit cleared, moved up); page 1 went instead.
  EXPECT_NE(ms.compute_perm(0), Perm::kNone);
  EXPECT_EQ(ms.compute_perm(1), Perm::kNone);
  // A second insertion without intervening touches now claims page 0's
  // slot later than 2 and 3 (it was re-queued at the front).
  (void)ctx->Load<int64_t>(a + 5 * kPage);  // evicts page 2 (unreferenced)
  EXPECT_EQ(ms.compute_perm(2), Perm::kNone);
  EXPECT_NE(ms.compute_perm(0), Perm::kNone);
}

TEST(CachePolicyTest, PolicyNamesAreStable) {
  EXPECT_EQ(CachePolicyToString(CachePolicy::kLru), "LRU");
  EXPECT_EQ(CachePolicyToString(CachePolicy::kFifo), "FIFO");
  EXPECT_EQ(CachePolicyToString(CachePolicy::kClock), "CLOCK");
}

/// Property: the replacement policy changes timing, never data. Random
/// read/write traces must produce identical final memory contents under
/// every policy.
class PolicyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyEquivalenceTest, DataIdenticalUnderEveryPolicy) {
  constexpr int kPages = 48;
  int64_t reference[kPages] = {};
  bool first = true;
  for (const CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::kFifo, CachePolicy::kClock}) {
    MemorySystem ms = MakeSystem(policy, /*cache_pages=*/6);
    const VAddr a = ms.space().Alloc(kPages * kPage, "d");
    ms.SeedData();
    auto ctx = ms.CreateContext(Pool::kCompute);
    Rng rng(GetParam());
    for (int i = 0; i < 4000; ++i) {
      const auto p = static_cast<uint64_t>(rng.Uniform(kPages));
      if (rng.Bernoulli(0.5)) {
        ctx->Store<int64_t>(a + p * kPage, static_cast<int64_t>(i));
      } else {
        (void)ctx->Load<int64_t>(a + p * kPage);
      }
      ASSERT_LE(ms.cache_pages_used(), 6u);
    }
    for (int p = 0; p < kPages; ++p) {
      const int64_t v = ctx->Load<int64_t>(a + p * kPage);
      if (first) {
        reference[p] = v;
      } else {
        ASSERT_EQ(v, reference[p])
            << "policy " << CachePolicyToString(policy) << " page " << p;
      }
    }
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyEquivalenceTest,
                         ::testing::Values(19, 23, 29, 31));

TEST(CachePolicyTest, ScanResistanceOrdering) {
  // A loop over a working set slightly larger than the cache is LRU's
  // worst case (every access misses); FIFO behaves the same; CLOCK also
  // degenerates. This documents WHY §2.2 says caching cannot rescue
  // scan-heavy operators: no policy gets hits on a cyclic scan.
  auto misses = [](CachePolicy policy) {
    MemorySystem ms = MakeSystem(policy, /*cache_pages=*/8);
    const VAddr a = ms.space().Alloc(10 * kPage, "d");
    ms.SeedData();
    auto ctx = ms.CreateContext(Pool::kCompute);
    for (int round = 0; round < 20; ++round) {
      for (int p = 0; p < 10; ++p) (void)ctx->Load<int64_t>(a + p * kPage);
    }
    return ctx->metrics().cache_misses;
  };
  const uint64_t lru = misses(CachePolicy::kLru);
  const uint64_t fifo = misses(CachePolicy::kFifo);
  const uint64_t clock = misses(CachePolicy::kClock);
  // All policies miss on the large majority of the 200 accesses.
  EXPECT_GT(lru, 150u);
  EXPECT_GT(fifo, 150u);
  EXPECT_GT(clock, 150u);
}

}  // namespace
}  // namespace teleport::ddc
