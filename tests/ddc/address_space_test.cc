#include "ddc/address_space.h"

#include <cstring>

#include <gtest/gtest.h>

namespace teleport::ddc {
namespace {

TEST(AddressSpaceTest, AllocReturnsPageAlignedRegions) {
  AddressSpace as(1 << 20, 4096);
  const VAddr a = as.Alloc(100, "a");
  const VAddr b = as.Alloc(5000, "b");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4096u);          // "a" rounded up to one page
  EXPECT_EQ(as.used_bytes(), 4096u + 8192u);
  EXPECT_EQ(as.num_pages(), 3u);
}

TEST(AddressSpaceTest, RegionsAreNamed) {
  AddressSpace as(1 << 20, 4096);
  as.Alloc(10, "lineitem.quantity");
  ASSERT_EQ(as.regions().size(), 1u);
  EXPECT_EQ(as.regions()[0].name, "lineitem.quantity");
  EXPECT_EQ(as.regions()[0].bytes, 4096u);
}

TEST(AddressSpaceTest, MemoryIsZeroInitialized) {
  AddressSpace as(1 << 20, 4096);
  const VAddr a = as.Alloc(4096, "z");
  const auto* p = static_cast<const unsigned char*>(as.HostPtr(a, 4096));
  for (int i = 0; i < 4096; ++i) EXPECT_EQ(p[i], 0);
}

TEST(AddressSpaceTest, HostPtrRoundTripsData) {
  AddressSpace as(1 << 20, 4096);
  const VAddr a = as.Alloc(8192, "data");
  int64_t v = 0x1122334455667788;
  std::memcpy(as.HostPtr(a + 100, sizeof(v)), &v, sizeof(v));
  int64_t out = 0;
  std::memcpy(&out, as.HostPtr(a + 100, sizeof(out)), sizeof(out));
  EXPECT_EQ(out, v);
}

TEST(AddressSpaceTest, PointersStableAcrossGrowth) {
  // Alloc must never reallocate the backing store (pointers are handed out).
  AddressSpace as(64 << 20, 4096);
  const VAddr a = as.Alloc(4096, "first");
  void* p0 = as.HostPtr(a, 1);
  for (int i = 0; i < 1000; ++i) as.Alloc(16384, "filler");
  EXPECT_EQ(as.HostPtr(a, 1), p0);
}

TEST(AddressSpaceTest, PageOf) {
  AddressSpace as(1 << 20, 4096);
  EXPECT_EQ(as.PageOf(0), 0u);
  EXPECT_EQ(as.PageOf(4095), 0u);
  EXPECT_EQ(as.PageOf(4096), 1u);
  EXPECT_EQ(as.PageOf(12345), 3u);
}

TEST(AddressSpaceDeathTest, ExhaustionAborts) {
  AddressSpace as(8192, 4096);
  as.Alloc(8192, "all");
  EXPECT_DEATH(as.Alloc(1, "overflow"), "exhausted");
}

}  // namespace
}  // namespace teleport::ddc
