// Property test for the extent fast path: a randomized program of scalar
// accesses, spans, fills, memcpys, cursors, and pushdown sessions is run on
// twin MemorySystems — one with the fast path live (default), one with
// TELEPORT's scalar data path forced (set_scalar_datapath) — and every
// observable must match bit for bit: loaded values, final memory image,
// both contexts' virtual clocks, and the full sim::Metrics of each side.
// Spans are drawn with random alignment and lengths that straddle pages;
// the sweep covers all four coherence modes, and one variant runs with
// network faults armed (drops, delays, dups, link flaps, a pool crash)
// so the fault paths are equivalence-checked too.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"
#include "net/faults.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;
constexpr uint64_t kDataBytes = 16 * kPage;
constexpr uint64_t kWords = kDataBytes / 8;

struct Op {
  enum Kind {
    kLoad,
    kStore,
    kLoadSpan,
    kStoreSpan,
    kFill,
    kMemcpy,
    kReadRange,
    kCursorWalk,     // short sequential cursor run (loads + stores)
    kSessionToggle,  // begin/end a pushdown session
    kMemLoad,        // memory-side accesses (only while a session is open)
    kMemStore,
  };
  Kind kind;
  uint64_t addr = 0;   // word-aligned offset into the region
  uint64_t count = 0;  // elements (spans) or bytes (ReadRange)
  uint64_t addr2 = 0;  // memcpy source
  int64_t value = 0;
};

std::vector<Op> MakeProgram(uint64_t seed, int n_ops) {
  Rng rng(seed);
  std::vector<Op> ops;
  auto word_addr = [&](uint64_t max_words) {
    return rng.Uniform(kWords - max_words) * 8;
  };
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.kind = static_cast<Op::Kind>(rng.Uniform(11));
    switch (op.kind) {
      case Op::kLoad:
      case Op::kStore:
      case Op::kMemLoad:
      case Op::kMemStore:
        op.addr = word_addr(1);
        op.value = static_cast<int64_t>(rng.Uniform(1u << 30));
        break;
      case Op::kLoadSpan:
      case Op::kStoreSpan:
      case Op::kFill:
      case Op::kCursorWalk:
        // Up to ~1.5 pages of elements so runs regularly straddle pages.
        op.count = 1 + rng.Uniform(768);
        op.addr = word_addr(op.count);
        op.value = static_cast<int64_t>(rng.Uniform(1u << 30));
        break;
      case Op::kMemcpy:
        op.count = 1 + rng.Uniform(768);
        op.addr = word_addr(op.count);
        op.addr2 = word_addr(op.count);
        break;
      case Op::kReadRange:
        // Unaligned, arbitrary-length reads (page-straddling included).
        op.count = 1 + rng.Uniform(300);
        op.addr = rng.Uniform(kDataBytes - op.count);
        break;
      case Op::kSessionToggle:
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

net::FaultSpec LossySpec() {
  net::FaultSpec spec;
  spec.drop_p = 0.10;
  spec.delay_p = 0.10;
  spec.delay_ns = 2 * kMicrosecond;
  spec.dup_p = 0.05;
  return spec;
}

struct Observed {
  uint64_t digest = 0;
  Nanos compute_now = 0;
  Nanos memory_now = 0;
  std::string compute_metrics;
  std::string memory_metrics;
  std::vector<std::byte> image;
};

Observed RunProgram(Platform platform, CoherenceMode mode, uint64_t seed,
                    bool scalar, bool faults) {
  DdcConfig c;
  c.platform = platform;
  c.compute_cache_bytes = 4 * kPage;  // tiny: constant eviction pressure
  c.memory_pool_bytes = 8 * kPage;    // pool evicts to storage too
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  if (scalar) ms.set_scalar_datapath(true);
  const VAddr base = ms.space().Alloc(kDataBytes, "prop");
  // Deterministic initial image, staged before SeedData.
  auto* host = static_cast<int64_t*>(ms.space().HostPtr(base, kDataBytes));
  for (uint64_t w = 0; w < kWords; ++w) {
    host[w] = static_cast<int64_t>(w * 2654435761u);
  }
  ms.SeedData();
  net::FaultInjector inj(seed);
  if (faults) {
    inj.SetSpecAll(LossySpec());
    inj.AddLinkFlaps(/*start=*/1 * kMillisecond,
                     /*duration=*/100 * kMicrosecond,
                     /*period=*/3 * kMillisecond, /*count=*/2);
    inj.ScheduleCrashRestart(/*at=*/5 * kMillisecond,
                             /*down_for=*/500 * kMicrosecond);
    ms.fabric().set_fault_injector(&inj);
    ms.set_retry_seed(0xb01);
  }
  const bool ddc = platform == Platform::kBaseDdc;
  auto cc = ms.CreateContext(Pool::kCompute);
  auto mc = ddc ? ms.CreateContext(Pool::kMemory) : nullptr;
  bool session = false;
  Observed o;
  auto mix = [&o](int64_t v) {
    o.digest = o.digest * 1099511628211ULL + static_cast<uint64_t>(v);
  };
  std::vector<int64_t> buf(768 + 1);
  for (const Op& op : MakeProgram(seed, 400)) {
    switch (op.kind) {
      case Op::kLoad:
        mix(cc->Load<int64_t>(base + op.addr));
        break;
      case Op::kStore:
        cc->Store<int64_t>(base + op.addr, op.value);
        break;
      case Op::kLoadSpan:
        cc->LoadSpan<int64_t>(base + op.addr, buf.data(), op.count);
        for (uint64_t i = 0; i < op.count; ++i) mix(buf[i]);
        break;
      case Op::kStoreSpan:
        for (uint64_t i = 0; i < op.count; ++i) {
          buf[i] = op.value + static_cast<int64_t>(i);
        }
        cc->StoreSpan<int64_t>(base + op.addr, buf.data(), op.count);
        break;
      case Op::kFill:
        cc->Fill<int64_t>(base + op.addr, op.value, op.count);
        break;
      case Op::kMemcpy:
        cc->Memcpy<int64_t>(base + op.addr, base + op.addr2, op.count);
        break;
      case Op::kReadRange: {
        const auto* p =
            static_cast<const unsigned char*>(
                cc->ReadRange(base + op.addr, op.count));
        mix(p[0]);
        mix(p[op.count - 1]);
        break;
      }
      case Op::kCursorWalk: {
        Cursor cur(*cc);
        for (uint64_t i = 0; i < op.count; ++i) {
          const VAddr a = base + op.addr + i * 8;
          const int64_t v = cur.Load<int64_t>(a);
          if ((i & 3) == 0) cur.Store<int64_t>(a, v + 1);
          mix(v);
        }
        break;
      }
      case Op::kSessionToggle:
        if (!ddc) break;
        if (session) {
          ms.EndPushdownSession();
        } else {
          ms.BeginPushdownSession(mode);
        }
        session = !session;
        break;
      case Op::kMemLoad:
        if (session) mix(mc->Load<int64_t>(base + op.addr));
        break;
      case Op::kMemStore:
        if (session) mc->Store<int64_t>(base + op.addr, op.value);
        break;
    }
  }
  if (session) ms.EndPushdownSession();

  o.compute_now = cc->now();
  o.compute_metrics = cc->metrics().ToString();
  if (mc != nullptr) {
    o.memory_now = mc->now();
    o.memory_metrics = mc->metrics().ToString();
  }
  const auto* img =
      static_cast<const std::byte*>(ms.space().HostPtr(base, kDataBytes));
  o.image.assign(img, img + kDataBytes);
  return o;
}

struct Case {
  Platform platform;
  CoherenceMode mode;
  bool faults;
};

class BulkAccessEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(BulkAccessEquivalenceTest, ScalarAndBulkPathsAreBitIdentical) {
  const Case c = GetParam();
  for (const uint64_t seed : {11u, 22u, 33u}) {
    const Observed bulk =
        RunProgram(c.platform, c.mode, seed, /*scalar=*/false, c.faults);
    const Observed scalar =
        RunProgram(c.platform, c.mode, seed, /*scalar=*/true, c.faults);
    EXPECT_EQ(bulk.digest, scalar.digest) << "seed " << seed;
    EXPECT_EQ(bulk.compute_now, scalar.compute_now) << "seed " << seed;
    EXPECT_EQ(bulk.memory_now, scalar.memory_now) << "seed " << seed;
    EXPECT_EQ(bulk.compute_metrics, scalar.compute_metrics)
        << "seed " << seed;
    EXPECT_EQ(bulk.memory_metrics, scalar.memory_metrics) << "seed " << seed;
    EXPECT_TRUE(bulk.image == scalar.image) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BulkAccessEquivalenceTest,
    ::testing::Values(
        Case{Platform::kBaseDdc, CoherenceMode::kMesi, false},
        Case{Platform::kBaseDdc, CoherenceMode::kPso, false},
        Case{Platform::kBaseDdc, CoherenceMode::kWeakOrdering, false},
        Case{Platform::kBaseDdc, CoherenceMode::kNone, false},
        Case{Platform::kBaseDdc, CoherenceMode::kMesi, true},
        Case{Platform::kLinuxSsd, CoherenceMode::kNone, false},
        Case{Platform::kLocal, CoherenceMode::kNone, false}));

// The one-entry TLB on the plain Load/Store path (no cursor, no span) must
// also be invisible: a mixed sequential/random scalar program matches the
// forced-scalar twin exactly.
TEST(BulkAccessTest, PlainLoadStoreTlbIsInvisible) {
  for (const uint64_t seed : {7u, 19u}) {
    auto run = [&](bool scalar) {
      DdcConfig c;
      c.platform = Platform::kBaseDdc;
      c.compute_cache_bytes = 4 * kPage;
      c.memory_pool_bytes = 32 * kPage;
      MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
      if (scalar) ms.set_scalar_datapath(true);
      const VAddr a = ms.space().Alloc(kDataBytes, "d");
      ms.SeedData();
      auto ctx = ms.CreateContext(Pool::kCompute);
      Rng rng(seed);
      uint64_t digest = 0;
      uint64_t off = 0;
      for (int i = 0; i < 20000; ++i) {
        if (rng.Bernoulli(0.9)) {
          off = (off + 8) % kDataBytes;  // sequential walk
        } else {
          off = rng.Uniform(kWords) * 8;  // random jump
        }
        if (rng.Bernoulli(0.25)) {
          ctx->Store<int64_t>(a + off, static_cast<int64_t>(i));
        } else {
          digest = digest * 31 +
                   static_cast<uint64_t>(ctx->Load<int64_t>(a + off));
        }
      }
      return std::make_pair(digest, ctx->now());
    };
    const auto bulk = run(false);
    const auto scalar = run(true);
    EXPECT_EQ(bulk.first, scalar.first) << "seed " << seed;
    EXPECT_EQ(bulk.second, scalar.second) << "seed " << seed;
  }
}

// Spans degrade to the exact scalar sequence when a yield hook is
// installed — the explore tier depends on per-access granularity.
TEST(BulkAccessTest, YieldHookForcesPerElementGranularity) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 16 * kPage;
  c.memory_pool_bytes = 64 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  uint64_t yields = 0;
  ctx->set_yield_hook(
      [](void* arg) { ++*static_cast<uint64_t*>(arg); }, &yields);
  std::vector<int64_t> buf(600);
  ctx->LoadSpan<int64_t>(a, buf.data(), buf.size());
  // One yield per element, exactly as a scalar loop would fire.
  EXPECT_EQ(yields, buf.size());
}

}  // namespace
}  // namespace teleport::ddc
