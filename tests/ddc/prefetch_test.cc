#include <cstdint>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

MemorySystem MakeSystem(int prefetch, uint64_t cache_pages = 16) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = cache_pages * kPage;
  c.memory_pool_bytes = 4096 * kPage;
  c.prefetch_pages = prefetch;
  return MemorySystem(c, sim::CostParams::Default(), 64 << 20);
}

TEST(PrefetchTest, SequentialScanPullsAheadPages) {
  MemorySystem ms = MakeSystem(/*prefetch=*/4);
  const VAddr a = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  // Two sequential faults establish the stream; subsequent pages arrive
  // via prefetch.
  for (int p = 0; p < 16; ++p) ctx->Load<int64_t>(a + p * kPage);
  EXPECT_GT(ctx->metrics().prefetched_pages, 0u);
  EXPECT_LT(ctx->metrics().cache_misses, 16u);
}

TEST(PrefetchTest, RandomAccessPrefetchesNothing) {
  MemorySystem ms = MakeSystem(/*prefetch=*/4);
  const VAddr a = ms.space().Alloc(256 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int i = 0; i < 32; ++i) {
    ctx->Load<int64_t>(a + ((i * 97 + 13) % 256) * kPage);
  }
  EXPECT_EQ(ctx->metrics().prefetched_pages, 0u);
}

TEST(PrefetchTest, DepthZeroDisables) {
  MemorySystem ms = MakeSystem(/*prefetch=*/0);
  const VAddr a = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 16; ++p) ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(ctx->metrics().prefetched_pages, 0u);
  EXPECT_EQ(ctx->metrics().cache_misses, 16u);
}

TEST(PrefetchTest, SequentialScanFasterWithPrefetch) {
  auto scan = [](int depth) {
    MemorySystem ms = MakeSystem(depth);
    const VAddr a = ms.space().Alloc(512 * kPage, "d");
    ms.SeedData();
    auto ctx = ms.CreateContext(Pool::kCompute);
    for (uint64_t off = 0; off < 512 * kPage; off += 8) {
      (void)ctx->Load<int64_t>(a + off);
    }
    return ctx->now();
  };
  const Nanos without = scan(0);
  const Nanos with = scan(8);
  EXPECT_LT(with, without);
}

TEST(PrefetchTest, PrefetchedPagesAreCleanReadOnly) {
  MemorySystem ms = MakeSystem(/*prefetch=*/4);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);          // fault page 0
  ctx->Load<int64_t>(a + kPage);  // sequential fault -> prefetch 2..5
  EXPECT_EQ(ms.compute_perm(3), Perm::kRead);
  EXPECT_FALSE(ms.compute_dirty(3));
  // A later write upgrades locally as usual.
  ctx->Store<int64_t>(a + 3 * kPage, 9);
  EXPECT_EQ(ms.compute_perm(3), Perm::kWrite);
}

TEST(PrefetchTest, DataStillCorrect) {
  MemorySystem ms = MakeSystem(/*prefetch=*/8);
  const VAddr a = ms.space().Alloc(64 * kPage, "d");
  auto* host = static_cast<int64_t*>(ms.space().HostPtr(a, 64 * kPage));
  for (uint64_t i = 0; i < 64 * kPage / 8; ++i) {
    host[i] = static_cast<int64_t>(i * 3 + 1);
  }
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  int64_t sum = 0;
  for (uint64_t i = 0; i < 64 * kPage / 8; ++i) {
    sum += ctx->Load<int64_t>(a + i * 8);
  }
  int64_t expect = 0;
  for (uint64_t i = 0; i < 64 * kPage / 8; ++i) {
    expect += static_cast<int64_t>(i * 3 + 1);
  }
  EXPECT_EQ(sum, expect);
}

TEST(PrefetchTest, DisabledDuringPushdownSessions) {
  MemorySystem ms = MakeSystem(/*prefetch=*/4);
  const VAddr a = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);  // establish the fault stream
  ms.BeginPushdownSession(CoherenceMode::kMesi);
  ctx->Load<int64_t>(a + kPage);  // sequential, but session active
  EXPECT_EQ(ctx->metrics().prefetched_pages, 0u);
  ms.EndPushdownSession();
}

TEST(PrefetchTest, StopsAtAlreadyCachedPages) {
  MemorySystem ms = MakeSystem(/*prefetch=*/8);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a + 3 * kPage);  // cache page 3 out of order
  ctx->Load<int64_t>(a);              // fault page 0 (random)
  ctx->Load<int64_t>(a + kPage);      // sequential: prefetch 2, stop at 3
  EXPECT_EQ(ctx->metrics().prefetched_pages, 1u);
}

}  // namespace
}  // namespace teleport::ddc
