#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ddc/memory_system.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

/// Reference model of the compute cache: an LRU list with the same
/// capacity, driven by the same access trace. The simulator's cache
/// contents must match the oracle exactly after every access.
class CacheOracle {
 public:
  explicit CacheOracle(size_t capacity) : capacity_(capacity) {}

  void Touch(PageId p) {
    auto it = pos_.find(p);
    if (it != pos_.end()) {
      lru_.erase(it->second);
    } else if (lru_.size() >= capacity_) {
      pos_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(p);
    pos_[p] = lru_.begin();
  }

  bool Contains(PageId p) const { return pos_.count(p) > 0; }
  size_t size() const { return lru_.size(); }

 private:
  size_t capacity_;
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> pos_;
};

class LruPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruPropertyTest, CacheContentsMatchOracle) {
  constexpr size_t kCapacity = 12;
  constexpr uint64_t kPages = 64;
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = kCapacity * kPage;
  c.memory_pool_bytes = 1024 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 4 << 20);
  const VAddr base = ms.space().Alloc(kPages * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  CacheOracle oracle(kCapacity);

  Rng rng(GetParam());
  for (int i = 0; i < 3000; ++i) {
    const PageId p = rng.Uniform(kPages);
    const VAddr addr = base + p * kPage + rng.Uniform(kPage / 8) * 8;
    if (rng.Bernoulli(0.4)) {
      ctx->Store<int64_t>(addr, static_cast<int64_t>(i));
    } else {
      (void)ctx->Load<int64_t>(addr);
    }
    oracle.Touch(p);
    ASSERT_EQ(ms.cache_pages_used(), oracle.size());
    for (PageId q = 0; q < kPages; ++q) {
      ASSERT_EQ(ms.compute_perm(q) != Perm::kNone, oracle.Contains(q))
          << "page " << q << " after op " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(PoolCapacityTest, PoolNeverExceedsCapacity) {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 4 * kPage;
  c.memory_pool_bytes = 8 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 4 << 20);
  const VAddr base = ms.space().Alloc(64 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const PageId p = rng.Uniform(64);
    ctx->Store<int64_t>(base + p * kPage, i);
    ASSERT_LE(ms.memory_pool_pages_used(), 8u);
    ASSERT_LE(ms.cache_pages_used(), 4u);
  }
  EXPECT_GT(ctx->metrics().storage_writes, 0u);  // the pool spilled
}

TEST(PoolCapacityTest, EvictedDataSurvivesRoundTrips) {
  // Pages bounce cache -> pool -> storage -> pool -> cache; values must
  // survive every hop.
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 2 * kPage;
  c.memory_pool_bytes = 4 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 4 << 20);
  const VAddr base = ms.space().Alloc(32 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (PageId p = 0; p < 32; ++p) {
    ctx->Store<int64_t>(base + p * kPage, static_cast<int64_t>(p) * 7 + 1);
  }
  // Thrash through everything twice more.
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const PageId p = rng.Uniform(32);
    (void)ctx->Load<int64_t>(base + p * kPage);
  }
  for (PageId p = 0; p < 32; ++p) {
    ASSERT_EQ(ctx->Load<int64_t>(base + p * kPage),
              static_cast<int64_t>(p) * 7 + 1);
  }
}

TEST(PoolCapacityTest, LinuxSsdCacheMatchesOracleToo) {
  constexpr size_t kCapacity = 8;
  DdcConfig c;
  c.platform = Platform::kLinuxSsd;
  c.compute_cache_bytes = kCapacity * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 4 << 20);
  const VAddr base = ms.space().Alloc(40 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  // SeedData put the first kCapacity pages in DRAM already.
  CacheOracle oracle(kCapacity);
  for (PageId p = 0; p < kCapacity; ++p) oracle.Touch(p);
  // Note: seeded pages entered in ascending order; page 0 is the LRU tail
  // in both models (PushFront order matches).
  Rng rng(5);
  for (int i = 0; i < 1500; ++i) {
    const PageId p = rng.Uniform(40);
    (void)ctx->Load<int64_t>(base + p * kPage);
    oracle.Touch(p);
    ASSERT_EQ(ms.cache_pages_used(), oracle.size());
  }
}

}  // namespace
}  // namespace teleport::ddc
