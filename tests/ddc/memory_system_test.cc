#include "ddc/memory_system.h"

#include <cstdint>

#include <gtest/gtest.h>

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

DdcConfig SmallDdc() {
  DdcConfig c;
  c.platform = Platform::kBaseDdc;
  c.compute_cache_bytes = 4 * kPage;
  c.memory_pool_bytes = 64 * kPage;
  return c;
}

TEST(MemorySystemTest, StoreLoadRoundTrip) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(8 * kPage, "data");
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Store<int64_t>(a + 16, 424242);
  EXPECT_EQ(ctx->Load<int64_t>(a + 16), 424242);
}

TEST(MemorySystemTest, FirstTouchAllocatesWithoutPageTransfer) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(kPage, "fresh");
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Store<int64_t>(a, 1);
  EXPECT_EQ(ctx->metrics().cache_misses, 1u);
  EXPECT_EQ(ctx->metrics().bytes_from_memory_pool, 0u);
  // But the allocation still round-trips to the pool controller (§3).
  EXPECT_EQ(ctx->metrics().net_messages, 2u);
}

TEST(MemorySystemTest, SeededPageFetchTransfersPage) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(kPage, "seeded");
  ms.SeedData();
  ASSERT_TRUE(ms.in_memory_pool(0));
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);
  EXPECT_EQ(ctx->metrics().cache_misses, 1u);
  EXPECT_EQ(ctx->metrics().bytes_from_memory_pool, kPage);
}

TEST(MemorySystemTest, SecondAccessIsCacheHit) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);
  const Nanos after_miss = ctx->now();
  ctx->Load<int64_t>(a + 8);
  EXPECT_EQ(ctx->metrics().cache_hits, 1u);
  // A hit is orders of magnitude cheaper than the fault.
  EXPECT_LT(ctx->now() - after_miss, after_miss / 10);
}

TEST(MemorySystemTest, SequentialAccessCheaperThanPageCrossing) {
  DdcConfig c = SmallDdc();
  c.platform = Platform::kLocal;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "d");
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);  // establish last_page
  const Nanos t0 = ctx->now();
  ctx->Load<int64_t>(a + 8);  // same page
  const Nanos seq = ctx->now() - t0;
  ctx->Load<int64_t>(a + kPage);  // crosses a page
  const Nanos cross = ctx->now() - t0 - seq;
  EXPECT_LT(seq, cross);
}

TEST(MemorySystemTest, LruEvictionWritesBackDirtyPages) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(8 * kPage, "d");
  auto ctx = ms.CreateContext(Pool::kCompute);
  // Dirty 5 pages; cache holds 4 -> one dirty eviction.
  for (int p = 0; p < 5; ++p) ctx->Store<int64_t>(a + p * kPage, p);
  EXPECT_EQ(ctx->metrics().cache_evictions, 1u);
  EXPECT_EQ(ctx->metrics().dirty_writebacks, 1u);
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool, kPage);
  // The evicted page (page 0, least recently used) now lives in the pool.
  EXPECT_TRUE(ms.in_memory_pool(0));
  EXPECT_EQ(ms.compute_perm(0), Perm::kNone);
}

TEST(MemorySystemTest, LruOrderIsRecencyBased) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(8 * kPage, "d");
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 4; ++p) ctx->Store<int64_t>(a + p * kPage, p);
  // Touch page 0 again so page 1 becomes LRU.
  ctx->Load<int64_t>(a);
  ctx->Store<int64_t>(a + 4 * kPage, 4);  // evicts page 1
  EXPECT_EQ(ms.compute_perm(0), Perm::kWrite);
  EXPECT_EQ(ms.compute_perm(1), Perm::kNone);
}

TEST(MemorySystemTest, CleanEvictionCostsNoTraffic) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(8 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 5; ++p) ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(ctx->metrics().cache_evictions, 1u);
  EXPECT_EQ(ctx->metrics().dirty_writebacks, 0u);
  EXPECT_EQ(ctx->metrics().bytes_to_memory_pool, 0u);
}

TEST(MemorySystemTest, MemoryPoolSpillsToStorage) {
  DdcConfig c = SmallDdc();
  c.memory_pool_bytes = 2 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  ms.space().Alloc(4 * kPage, "big");
  ms.SeedData();
  // Only 2 of 4 pages fit in the pool; the rest went to storage.
  int in_pool = 0, on_storage = 0;
  for (PageId p = 0; p < 4; ++p) {
    in_pool += ms.in_memory_pool(p) ? 1 : 0;
    on_storage += ms.on_storage(p) ? 1 : 0;
  }
  EXPECT_EQ(in_pool, 2);
  EXPECT_EQ(on_storage, 2);
}

TEST(MemorySystemTest, RecursivePageFaultReadsStorage) {
  DdcConfig c = SmallDdc();
  c.memory_pool_bytes = 2 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "big");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  // Find a page that spilled and fault it: compute fault -> pool fault ->
  // storage read (the recursive path of §2.1).
  PageId spilled = 0;
  for (PageId p = 0; p < 4; ++p) {
    if (ms.on_storage(p)) {
      spilled = p;
      break;
    }
  }
  ctx->Load<int64_t>(a + spilled * kPage);
  EXPECT_EQ(ctx->metrics().storage_reads, 1u);
  EXPECT_EQ(ctx->metrics().cache_misses, 1u);
}

TEST(MemorySystemTest, MemoryPoolContextHitsPoolDram) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "d");
  ms.SeedData();
  auto mem_ctx = ms.CreateContext(Pool::kMemory);
  for (int p = 0; p < 4; ++p) mem_ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(mem_ctx->metrics().memory_pool_hits, 4u);
  EXPECT_EQ(mem_ctx->metrics().net_messages, 0u);
  EXPECT_EQ(mem_ctx->metrics().bytes_from_memory_pool, 0u);
}

TEST(MemorySystemTest, MemoryPoolContextTrueFaultToStorage) {
  DdcConfig c = SmallDdc();
  c.memory_pool_bytes = 2 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "big");
  ms.SeedData();
  auto mem_ctx = ms.CreateContext(Pool::kMemory);
  for (int p = 0; p < 4; ++p) mem_ctx->Load<int64_t>(a + p * kPage);
  EXPECT_GT(mem_ctx->metrics().memory_pool_faults, 0u);
  EXPECT_GT(mem_ctx->metrics().storage_reads, 0u);
  EXPECT_EQ(mem_ctx->metrics().net_messages, 0u);  // no compute involvement
}

TEST(MemorySystemTest, WriteUpgradeIsLocalOutsidePushdown) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->Load<int64_t>(a);  // fetch read-only
  ASSERT_EQ(ms.compute_perm(0), Perm::kRead);
  const uint64_t msgs = ctx->metrics().net_messages;
  ctx->Store<int64_t>(a, 5);  // upgrade
  EXPECT_EQ(ms.compute_perm(0), Perm::kWrite);
  EXPECT_EQ(ctx->metrics().net_messages, msgs);  // no traffic
  EXPECT_TRUE(ms.compute_dirty(0));
}

TEST(MemorySystemTest, MultiPageRangeTouchesEveryPage) {
  MemorySystem ms(SmallDdc(), sim::CostParams::Default(), 1 << 20);
  const VAddr a = ms.space().Alloc(4 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  ctx->ReadRange(a + 100, 2 * kPage);  // spans 3 pages
  EXPECT_EQ(ctx->metrics().cache_misses, 3u);
}

TEST(MemorySystemTest, ChargeCpuScalesWithPoolClock) {
  DdcConfig c = SmallDdc();
  c.memory_pool_clock_ratio = 0.5;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 20);
  auto cc = ms.CreateContext(Pool::kCompute);
  auto mc = ms.CreateContext(Pool::kMemory);
  cc->ChargeCpu(1'000'000);
  mc->ChargeCpu(1'000'000);
  EXPECT_NEAR(static_cast<double>(mc->now()),
              2.0 * static_cast<double>(cc->now()),
              static_cast<double>(cc->now()) * 0.01);
}

}  // namespace
}  // namespace teleport::ddc
