#include <cstdint>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"

namespace teleport::ddc {
namespace {

constexpr uint64_t kPage = 4096;

/// Scans `pages` pages sequentially (one int64 per 8 bytes), returning the
/// context's elapsed virtual time.
Nanos SequentialScan(MemorySystem& ms, VAddr base, int pages) {
  auto ctx = ms.CreateContext(Pool::kCompute);
  int64_t sum = 0;
  for (uint64_t off = 0; off < static_cast<uint64_t>(pages) * kPage;
       off += 8) {
    sum += ctx->Load<int64_t>(base + off);
  }
  EXPECT_EQ(sum, 0);  // zero-initialized data
  return ctx->now();
}

TEST(PlatformTest, LocalPlatformNeverFaults) {
  DdcConfig c;
  c.platform = Platform::kLocal;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 22);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 16; ++p) ctx->Load<int64_t>(a + p * kPage);
  EXPECT_EQ(ctx->metrics().cache_misses, 0u);
  EXPECT_EQ(ctx->metrics().net_messages, 0u);
  EXPECT_EQ(ctx->metrics().storage_reads, 0u);
}

TEST(PlatformTest, LinuxSsdFaultsOnSwappedPages) {
  DdcConfig c;
  c.platform = Platform::kLinuxSsd;
  c.compute_cache_bytes = 4 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 22);
  const VAddr a = ms.space().Alloc(16 * kPage, "d");
  ms.SeedData();  // 4 pages in DRAM, 12 swapped out
  auto ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 0; p < 16; ++p) ctx->Load<int64_t>(a + p * kPage);
  EXPECT_GT(ctx->metrics().storage_reads, 0u);
  EXPECT_EQ(ctx->metrics().net_messages, 0u);  // no fabric on a single box
}

TEST(PlatformTest, SsdSequentialReadaheadCheaperThanRandom) {
  DdcConfig c;
  c.platform = Platform::kLinuxSsd;
  c.compute_cache_bytes = 4 * kPage;
  MemorySystem ms(c, sim::CostParams::Default(), 1 << 24);
  const VAddr a = ms.space().Alloc(512 * kPage, "d");
  ms.SeedData();
  // Sequential pass over swapped pages.
  auto seq_ctx = ms.CreateContext(Pool::kCompute);
  for (int p = 100; p < 200; ++p) seq_ctx->Load<int64_t>(a + p * kPage);
  // Random pass over a disjoint set of swapped pages (stride breaks
  // readahead).
  auto rnd_ctx = ms.CreateContext(Pool::kCompute);
  for (int i = 0; i < 100; ++i) {
    rnd_ctx->Load<int64_t>(a + ((203 + i * 7) % 512) * kPage);
  }
  EXPECT_LT(seq_ctx->now(), rnd_ctx->now());
}

TEST(PlatformTest, CostOfScalingOrdering) {
  // The structural result of Figs 1/3/14: for an out-of-core sequential
  // scan, Local < BaseDDC < LinuxSSD in execution time.
  const uint64_t data_pages = 256;
  auto run = [&](Platform platform) {
    DdcConfig c;
    c.platform = platform;
    c.compute_cache_bytes = 16 * kPage;  // ~6% of the working set
    c.memory_pool_bytes = 1024 * kPage;
    MemorySystem ms(c, sim::CostParams::Default(), 1 << 24);
    const VAddr a = ms.space().Alloc(data_pages * kPage, "d");
    ms.SeedData();
    return SequentialScan(ms, a, static_cast<int>(data_pages));
  };
  const Nanos local = run(Platform::kLocal);
  const Nanos ddc = run(Platform::kBaseDdc);
  const Nanos ssd = run(Platform::kLinuxSsd);
  EXPECT_LT(local, ddc);
  EXPECT_LT(ddc, ssd);
  // DDC pays a scaling cost but stays within ~1 order of magnitude of
  // local for sequential scans (Fig 3's lower end).
  EXPECT_LT(ddc, 20 * local);
}

TEST(PlatformTest, RandomAccessAmplifiesDdcOverhead) {
  // Fig 3's upper end: random probes over a working set much larger than
  // the cache produce far bigger slowdowns than sequential scans.
  const uint64_t data_pages = 512;
  auto run = [&](Platform platform, bool random) {
    DdcConfig c;
    c.platform = platform;
    c.compute_cache_bytes = 16 * kPage;
    c.memory_pool_bytes = 4096 * kPage;
    MemorySystem ms(c, sim::CostParams::Default(), 1 << 24);
    const VAddr a = ms.space().Alloc(data_pages * kPage, "d");
    ms.SeedData();
    auto ctx = ms.CreateContext(Pool::kCompute);
    for (int i = 0; i < 2000; ++i) {
      const VAddr addr =
          random ? a + ((static_cast<uint64_t>(i) * 2654435761u) %
                        (data_pages * kPage / 8)) * 8
                 : a + static_cast<uint64_t>(i) * 8;  // streaming
      ctx->Load<int64_t>(addr);
    }
    return ctx->now();
  };
  const double seq_slowdown =
      static_cast<double>(run(Platform::kBaseDdc, false)) /
      static_cast<double>(run(Platform::kLocal, false));
  const double rnd_slowdown =
      static_cast<double>(run(Platform::kBaseDdc, true)) /
      static_cast<double>(run(Platform::kLocal, true));
  EXPECT_GT(rnd_slowdown, seq_slowdown);
}

TEST(PlatformTest, PlatformNamesAreStable) {
  EXPECT_EQ(PlatformToString(Platform::kLocal), "Local");
  EXPECT_EQ(PlatformToString(Platform::kLinuxSsd), "LinuxSSD");
  EXPECT_EQ(PlatformToString(Platform::kBaseDdc), "BaseDDC");
}

}  // namespace
}  // namespace teleport::ddc
