#include "bench/micro.h"

#include <gtest/gtest.h>

namespace teleport::bench {
namespace {

MicroConfig TinyConfig() {
  MicroConfig cfg;
  cfg.region_bytes = 8 << 20;
  cfg.cache_bytes = 512 << 10;
  cfg.accesses = 5'000;
  cfg.write_fraction = 0.3;
  return cfg;
}

TEST(MicroTest, Deterministic) {
  const MicroConfig cfg = TinyConfig();
  const MicroResult a = RunMicro(cfg, MicroScenario::kPushCoherence);
  const MicroResult b = RunMicro(cfg, MicroScenario::kPushCoherence);
  EXPECT_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.coherence_messages, b.coherence_messages);
}

TEST(MicroTest, LocalIsFastestBaseDdcSlowest) {
  const MicroConfig cfg = TinyConfig();
  const MicroResult local = RunMicro(cfg, MicroScenario::kLocal);
  const MicroResult base = RunMicro(cfg, MicroScenario::kBaseDdc);
  const MicroResult coherent = RunMicro(cfg, MicroScenario::kPushCoherence);
  EXPECT_LT(local.time_ns, coherent.time_ns);
  EXPECT_LT(coherent.time_ns, base.time_ns);
}

TEST(MicroTest, Fig6OrderingOnTinyConfig) {
  MicroConfig cfg = TinyConfig();
  cfg.region_bytes = 32 << 20;
  cfg.cache_bytes = 2 << 20;
  const Nanos full =
      RunMicro(cfg, MicroScenario::kPushFullProcess).time_ns;
  const Nanos per_thread =
      RunMicro(cfg, MicroScenario::kPushPerThread).time_ns;
  const Nanos coherent =
      RunMicro(cfg, MicroScenario::kPushCoherence).time_ns;
  EXPECT_LT(coherent, per_thread);
  EXPECT_LT(per_thread, full);
}

TEST(MicroTest, ContentionGeneratesMessagesOnlyUnderDefaultProtocol) {
  MicroConfig cfg = TinyConfig();
  cfg.contention_rate = 0.02;
  const MicroResult def = RunMicro(cfg, MicroScenario::kPushCoherence);
  const MicroResult wo = RunMicro(cfg, MicroScenario::kPushWeakOrdering);
  EXPECT_GT(def.coherence_messages, 20u);
  EXPECT_EQ(wo.coherence_messages, 0u);
}

TEST(MicroTest, MoreContentionMoreMessages) {
  MicroConfig low = TinyConfig();
  low.contention_rate = 0.001;
  MicroConfig high = TinyConfig();
  high.contention_rate = 0.05;
  EXPECT_LT(RunMicro(low, MicroScenario::kPushCoherence).coherence_messages,
            RunMicro(high, MicroScenario::kPushCoherence).coherence_messages);
}

TEST(MicroTest, LocalPlatformHasNoNetworkTraffic) {
  const MicroResult r = RunMicro(TinyConfig(), MicroScenario::kLocal);
  EXPECT_EQ(r.net_messages, 0u);
  EXPECT_EQ(r.remote_bytes, 0u);
}

TEST(MicroTest, FalseSharingPingPongsOnlyWithCoherence) {
  MicroConfig cfg = TinyConfig();
  cfg.false_sharing = true;
  cfg.contention_rate = 0.02;
  const MicroResult coherent = RunMicro(cfg, MicroScenario::kPushCoherence);
  const MicroResult manual =
      RunMicro(cfg, MicroScenario::kPushNoCoherenceSyncmem);
  EXPECT_GT(coherent.coherence_messages, 10 * (manual.coherence_messages + 1));
  EXPECT_LE(manual.time_ns, coherent.time_ns);
}

TEST(MicroTest, PsoEliminatesReaderWriterPingPong) {
  MicroConfig cfg = TinyConfig();
  cfg.contention_rate = 0.02;
  cfg.reader_writer = true;  // compute reads, pushed thread writes
  // Subtract the contention-free floor (region-page coherence) so the
  // comparison isolates the contention-attributable traffic.
  MicroConfig quiet = cfg;
  quiet.contention_rate = 0;
  const uint64_t mesi_floor =
      RunMicro(quiet, MicroScenario::kPushCoherence).coherence_messages;
  const uint64_t pso_floor =
      RunMicro(quiet, MicroScenario::kPushPso).coherence_messages;
  const MicroResult mesi = RunMicro(cfg, MicroScenario::kPushCoherence);
  const MicroResult pso = RunMicro(cfg, MicroScenario::kPushPso);
  const uint64_t mesi_contention = mesi.coherence_messages - mesi_floor;
  const uint64_t pso_contention = pso.coherence_messages - pso_floor;
  EXPECT_LT(pso_contention, mesi_contention / 2 + 8);
  EXPECT_LE(pso.time_ns, mesi.time_ns);
}

TEST(MicroTest, ScenarioNamesAreStable) {
  EXPECT_EQ(MicroScenarioToString(MicroScenario::kLocal), "Local");
  EXPECT_EQ(MicroScenarioToString(MicroScenario::kPushCoherence),
            "TELEPORT(coherence)");
  EXPECT_EQ(MicroScenarioToString(MicroScenario::kPushWeakOrdering),
            "TELEPORT(relaxed)");
}

}  // namespace
}  // namespace teleport::bench
