// PR7 satellite: per-tenant metric scopes must obey the same merge algebra
// as the global view. The property tests here drive every X-macro-generated
// field through scoped attribution and assert the merged view equals the
// element-wise sum of everything recorded, the latency merge preserves
// counts/extrema, all-equal per-tenant samples report that exact value at
// every percentile (the clamping guarantee), and the Jain fairness index
// behaves at its boundary points.

#include "sim/tenant_scopes.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace teleport::sim {
namespace {

Metrics MakeMetrics(uint64_t base) {
  Metrics m;
  uint64_t v = base;
#define TELEPORT_TENANT_TEST_SET(field, group, label) m.field = v++;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_TENANT_TEST_SET)
#undef TELEPORT_TENANT_TEST_SET
  return m;
}

TEST(TenantScopesTest, SingleTenantDegeneratesToGlobalView) {
  TenantScopes scopes(1);
  const Metrics d = MakeMetrics(7);
  scopes.Record(0, d, 1234);
  const Metrics merged = scopes.MergedMetrics();
#define TELEPORT_TENANT_TEST_EQ(field, group, label) \
  EXPECT_EQ(merged.field, d.field) << #field;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_TENANT_TEST_EQ)
#undef TELEPORT_TENANT_TEST_EQ
  EXPECT_EQ(scopes.MergedLatency().count(), 1u);
  EXPECT_EQ(scopes.completed(0), 1u);
  EXPECT_DOUBLE_EQ(scopes.CompletionFairness(), 1.0);
}

TEST(TenantScopesTest, MergedMetricsEqualSumOfScopesEveryField) {
  // Property: for a random attribution stream, the merged view is exactly
  // the field-wise sum of every recorded diff — scoped accounting is a
  // partition of the global totals.
  Rng rng(0x7e2a);
  TenantScopes scopes(5);
  Metrics expected;
  for (int i = 0; i < 200; ++i) {
    const int tenant = static_cast<int>(rng.Uniform(5));
    const Metrics d = MakeMetrics(rng.Uniform(1000));
    expected.Add(d);
    scopes.Record(tenant, d, static_cast<int64_t>(rng.Uniform(1'000'000)));
  }
  const Metrics merged = scopes.MergedMetrics();
#define TELEPORT_TENANT_TEST_SUM(field, group, label) \
  EXPECT_EQ(merged.field, expected.field) << #field;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_TENANT_TEST_SUM)
#undef TELEPORT_TENANT_TEST_SUM
}

TEST(TenantScopesTest, MergedLatencyPreservesCountAndExtrema) {
  Rng rng(0x51ab);
  TenantScopes scopes(4);
  uint64_t n = 0;
  int64_t lo = INT64_MAX;
  int64_t hi = INT64_MIN;
  for (int i = 0; i < 500; ++i) {
    const int tenant = static_cast<int>(rng.Uniform(4));
    const int64_t sample = static_cast<int64_t>(rng.Uniform(1 << 20)) + 1;
    scopes.Record(tenant, Metrics{}, sample);
    ++n;
    lo = std::min(lo, sample);
    hi = std::max(hi, sample);
  }
  const Histogram merged = scopes.MergedLatency();
  EXPECT_EQ(merged.count(), n);
  EXPECT_EQ(merged.min(), lo);
  EXPECT_EQ(merged.max(), hi);
  uint64_t per_tenant = 0;
  for (int t = 0; t < scopes.tenants(); ++t) per_tenant += scopes.completed(t);
  EXPECT_EQ(per_tenant, n);
}

TEST(TenantScopesTest, AllEqualSamplesReportExactPercentiles) {
  // Percentile clamping: a tenant whose sessions all took exactly the same
  // virtual time must see that exact value at every percentile, both in its
  // own scope and after the cross-tenant merge of identical scopes.
  TenantScopes scopes(3);
  constexpr int64_t kExact = 48'000;
  for (int t = 0; t < 3; ++t) {
    for (int i = 0; i < 10; ++i) scopes.Record(t, Metrics{}, kExact);
  }
  for (int t = 0; t < 3; ++t) {
    for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(scopes.latency(t).Percentile(p),
                       static_cast<double>(kExact))
          << "tenant " << t << " p" << p;
    }
  }
  const Histogram merged = scopes.MergedLatency();
  EXPECT_EQ(merged.count(), 30u);
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(merged.Percentile(p), static_cast<double>(kExact));
  }
}

TEST(TenantScopesTest, IdleTenantPercentileIsDefined) {
  // PR8 regression: an OLTP tenant can abort every transaction, so its
  // latency scope records nothing. Querying it — and merging it — must
  // yield the documented empty sentinel, not uninitialized-min garbage.
  TenantScopes scopes(3);
  scopes.Record(/*tenant=*/0, Metrics{}, /*latency_ns=*/5'000);
  EXPECT_EQ(scopes.completed(1), 0u);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(scopes.latency(1).Percentile(p),
                     Histogram::kEmptyPercentile)
        << "p" << p;
    EXPECT_DOUBLE_EQ(scopes.latency(2).Percentile(p),
                     Histogram::kEmptyPercentile)
        << "p" << p;
  }
  // Idle scopes are merge identities: the global view sees only tenant 0.
  const Histogram merged = scopes.MergedLatency();
  EXPECT_EQ(merged.count(), 1u);
  EXPECT_DOUBLE_EQ(merged.Percentile(50), 5'000.0);
}

TEST(TenantScopesTest, JainIndexBoundaries) {
  // Perfect fairness.
  EXPECT_DOUBLE_EQ(TenantScopes::JainIndex({5, 5, 5, 5}), 1.0);
  // One tenant got everything: 1/n.
  EXPECT_DOUBLE_EQ(TenantScopes::JainIndex({10, 0, 0, 0}), 0.25);
  // Nothing allocated at all: defined as fair.
  EXPECT_DOUBLE_EQ(TenantScopes::JainIndex({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(TenantScopes::JainIndex({}), 1.0);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(TenantScopes::JainIndex({1, 2, 3}),
                   TenantScopes::JainIndex({10, 20, 30}));
}

TEST(TenantScopesTest, FairnessCountersTrackScopes) {
  TenantScopes scopes(2);
  Metrics heavy;
  heavy.bytes_from_memory_pool = 1000;
  scopes.Record(0, heavy, 100);
  scopes.Record(0, heavy, 100);
  scopes.Record(1, Metrics{}, 100);
  // Completions 2:1, remote bytes 2000:0.
  EXPECT_DOUBLE_EQ(scopes.CompletionFairness(), TenantScopes::JainIndex({2, 1}));
  EXPECT_DOUBLE_EQ(scopes.RemoteBytesFairness(),
                   TenantScopes::JainIndex({2000, 0}));
  EXPECT_EQ(scopes.MergedMetrics().bytes_from_memory_pool, 2000u);
}

}  // namespace
}  // namespace teleport::sim
