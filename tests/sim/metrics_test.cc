#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace teleport::sim {
namespace {

TEST(MetricsTest, DefaultAllZero) {
  Metrics m;
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.coherence_messages, 0u);
  EXPECT_EQ(m.RemoteMemoryBytes(), 0u);
}

TEST(MetricsTest, AddAccumulatesEveryField) {
  Metrics a, b;
  a.cache_hits = 1;
  a.bytes_from_memory_pool = 100;
  b.cache_hits = 2;
  b.bytes_to_memory_pool = 50;
  b.coherence_messages = 4;
  b.pushdown_calls = 1;
  a.Add(b);
  EXPECT_EQ(a.cache_hits, 3u);
  EXPECT_EQ(a.bytes_from_memory_pool, 100u);
  EXPECT_EQ(a.bytes_to_memory_pool, 50u);
  EXPECT_EQ(a.coherence_messages, 4u);
  EXPECT_EQ(a.pushdown_calls, 1u);
  EXPECT_EQ(a.RemoteMemoryBytes(), 150u);
}

TEST(MetricsTest, DiffInvertsAdd) {
  Metrics base;
  base.cache_hits = 5;
  base.storage_reads = 2;
  Metrics later = base;
  later.cache_hits = 9;
  later.storage_reads = 3;
  later.cpu_ops = 77;
  const Metrics d = later.Diff(base);
  EXPECT_EQ(d.cache_hits, 4u);
  EXPECT_EQ(d.storage_reads, 1u);
  EXPECT_EQ(d.cpu_ops, 77u);
}

TEST(MetricsTest, ToStringContainsSections) {
  Metrics m;
  m.coherence_messages = 12;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("coherence"), std::string::npos);
  EXPECT_NE(s.find("messages=12"), std::string::npos);
}

}  // namespace
}  // namespace teleport::sim
