#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace teleport::sim {
namespace {

TEST(MetricsTest, DefaultAllZero) {
  Metrics m;
  EXPECT_EQ(m.cache_hits, 0u);
  EXPECT_EQ(m.coherence_messages, 0u);
  EXPECT_EQ(m.RemoteMemoryBytes(), 0u);
}

TEST(MetricsTest, AddAccumulatesEveryField) {
  Metrics a, b;
  a.cache_hits = 1;
  a.bytes_from_memory_pool = 100;
  b.cache_hits = 2;
  b.bytes_to_memory_pool = 50;
  b.coherence_messages = 4;
  b.pushdown_calls = 1;
  a.Add(b);
  EXPECT_EQ(a.cache_hits, 3u);
  EXPECT_EQ(a.bytes_from_memory_pool, 100u);
  EXPECT_EQ(a.bytes_to_memory_pool, 50u);
  EXPECT_EQ(a.coherence_messages, 4u);
  EXPECT_EQ(a.pushdown_calls, 1u);
  EXPECT_EQ(a.RemoteMemoryBytes(), 150u);
}

TEST(MetricsTest, DiffInvertsAdd) {
  Metrics base;
  base.cache_hits = 5;
  base.storage_reads = 2;
  Metrics later = base;
  later.cache_hits = 9;
  later.storage_reads = 3;
  later.cpu_ops = 77;
  const Metrics d = later.Diff(base);
  EXPECT_EQ(d.cache_hits, 4u);
  EXPECT_EQ(d.storage_reads, 1u);
  EXPECT_EQ(d.cpu_ops, 77u);
}

TEST(MetricsTest, ToStringContainsSections) {
  Metrics m;
  m.coherence_messages = 12;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("coherence"), std::string::npos);
  EXPECT_NE(s.find("messages=12"), std::string::npos);
}

// The X-macro is now the single source of truth for the field list; these
// exercise Add/Diff/ToString over EVERY field it generates, so a field
// added to the macro but mishandled anywhere shows up here (and a field
// added outside the macro trips the sizeof static_assert in the header).
TEST(MetricsTest, XMacroCoversEveryFieldExactlyOnce) {
  int fields = 0;
#define TELEPORT_METRICS_TEST_COUNT(field, group, label) ++fields;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_METRICS_TEST_COUNT)
#undef TELEPORT_METRICS_TEST_COUNT
  EXPECT_EQ(fields, kNumMetricsFields);
  EXPECT_EQ(sizeof(Metrics),
            static_cast<size_t>(kNumMetricsFields) * sizeof(uint64_t));
}

TEST(MetricsTest, AddAndDiffRoundTripEveryGeneratedField) {
  // Give every field a distinct nonzero value via the macro itself.
  Metrics base, delta;
  uint64_t v = 1;
#define TELEPORT_METRICS_TEST_SET(field, group, label) \
  base.field = v;                                      \
  delta.field = 2 * v + 1;                             \
  v += 3;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_METRICS_TEST_SET)
#undef TELEPORT_METRICS_TEST_SET

  Metrics sum = base;
  sum.Add(delta);
  const Metrics back = sum.Diff(delta);
#define TELEPORT_METRICS_TEST_CHECK(field, group, label)          \
  EXPECT_EQ(sum.field, base.field + delta.field) << #field;       \
  EXPECT_EQ(back.field, base.field) << #field;
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_METRICS_TEST_CHECK)
#undef TELEPORT_METRICS_TEST_CHECK
}

TEST(MetricsTest, EveryDumpedLabelAppearsInToString) {
  Metrics m;
  // The txn, netq, and par groups are elided while all-zero (pre-OLTP,
  // pre-contended-fabric, and serial-engine dumps stay byte-identical);
  // make each nonzero so their labels are dumped too.
  m.txn_commits = 1;
  m.netq_queued_sends = 1;
  m.par_batches = 1;
  const std::string s = m.ToString();
#define TELEPORT_METRICS_TEST_LABEL(field, group, label)                   \
  if (std::string(#group) != "none") {                                     \
    EXPECT_NE(s.find(std::string(#label) + "="), std::string::npos)        \
        << #label;                                                         \
  }
  TELEPORT_SIM_METRICS_FIELDS(TELEPORT_METRICS_TEST_LABEL)
#undef TELEPORT_METRICS_TEST_LABEL
}

}  // namespace
}  // namespace teleport::sim
