#include "sim/interleaver.h"

#include <vector>

#include <gtest/gtest.h>

#include "sim/clock.h"

namespace teleport::sim {
namespace {

/// Task advancing its clock by a fixed quantum per step, recording the
/// global interleaving order into a shared log.
class TickTask : public Task {
 public:
  TickTask(int id, Nanos quantum, int steps, std::vector<int>* log)
      : id_(id), quantum_(quantum), steps_(steps), log_(log) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return steps_ == 0; }
  void Step() override {
    log_->push_back(id_);
    clock_.Advance(quantum_);
    --steps_;
  }

 private:
  int id_;
  Nanos quantum_;
  int steps_;
  std::vector<int>* log_;
  VirtualClock clock_;
};

TEST(InterleaverTest, RunsAllTasksToCompletion) {
  std::vector<int> log;
  TickTask a(0, 10, 5, &log);
  TickTask b(1, 10, 5, &log);
  Interleaver il;
  il.Add(&a);
  il.Add(&b);
  const Nanos end = il.Run();
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
  EXPECT_EQ(end, 50);
  EXPECT_EQ(log.size(), 10u);
}

TEST(InterleaverTest, MinClockTaskGoesFirst) {
  std::vector<int> log;
  TickTask fast(0, 1, 10, &log);   // finishes at t=10
  TickTask slow(1, 100, 2, &log);  // finishes at t=200
  Interleaver il;
  il.Add(&slow);
  il.Add(&fast);
  il.Run();
  // After slow's first step (t=100), all 10 fast steps (t<=10) must run
  // before slow's second.
  // log: slow(tie: added first), then fast x10, then slow.
  ASSERT_EQ(log.size(), 12u);
  EXPECT_EQ(log[0], 1);  // tie at t=0 broken by registration order
  for (int i = 1; i <= 10; ++i) EXPECT_EQ(log[i], 0);
  EXPECT_EQ(log[11], 1);
}

TEST(InterleaverTest, TieBrokenByRegistrationOrder) {
  std::vector<int> log;
  TickTask a(0, 10, 3, &log);
  TickTask b(1, 10, 3, &log);
  Interleaver il;
  il.Add(&a);
  il.Add(&b);
  il.Run();
  // Perfectly alternating: a,b,a,b,a,b.
  EXPECT_EQ(log, (std::vector<int>{0, 1, 0, 1, 0, 1}));
}

TEST(InterleaverTest, Deterministic) {
  auto run = [] {
    std::vector<int> log;
    TickTask a(0, 7, 13, &log);
    TickTask b(1, 11, 9, &log);
    TickTask c(2, 3, 20, &log);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.Add(&c);
    il.Run();
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(InterleaverTest, RunUntilStopsAtDeadline) {
  std::vector<int> log;
  TickTask a(0, 10, 100, &log);
  Interleaver il;
  il.Add(&a);
  il.RunUntil(55);
  EXPECT_FALSE(a.done());
  // Steps at t=0..50 executed (6 steps); clock now 60 >= deadline.
  EXPECT_EQ(log.size(), 6u);
  EXPECT_GE(a.clock(), 55);
}

TEST(InterleaverTest, EmptyInterleaverReturnsZero) {
  Interleaver il;
  EXPECT_EQ(il.Run(), 0);
}

TEST(InterleaverTest, ReturnsMaxFinishingClock) {
  std::vector<int> log;
  TickTask a(0, 10, 2, &log);   // ends 20
  TickTask b(1, 50, 3, &log);   // ends 150
  Interleaver il;
  il.Add(&a);
  il.Add(&b);
  EXPECT_EQ(il.Run(), 150);
}

}  // namespace
}  // namespace teleport::sim
