#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace teleport::sim {
namespace {

TEST(CostModelTest, DefaultMatchesPaperTestbed) {
  const CostParams p = CostParams::Default();
  EXPECT_EQ(p.page_size, 4096u);
  // 56 Gb/s InfiniBand, 1.2 us latency (§7 experimental setup).
  EXPECT_EQ(p.net_latency_ns, 1200);
  EXPECT_DOUBLE_EQ(p.net_bytes_per_ns, 7.0);
}

TEST(CostModelTest, NetTransferIsLatencyPlusSerialization) {
  CostParams p;
  p.net_latency_ns = 1000;
  p.net_bytes_per_ns = 2.0;
  EXPECT_EQ(p.NetTransfer(0), 1000);
  EXPECT_EQ(p.NetTransfer(2000), 2000);
}

TEST(CostModelTest, PageTransferUsesPageSize) {
  const CostParams p = CostParams::Default();
  EXPECT_EQ(p.NetPageTransfer(), p.NetTransfer(p.page_size));
  // A 4 KiB page at 7 GB/s serializes in ~585 ns on top of 1.2 us latency.
  EXPECT_GT(p.NetPageTransfer(), 1700);
  EXPECT_LT(p.NetPageTransfer(), 1900);
}

TEST(CostModelTest, CpuScalesWithClockRatio) {
  const CostParams p = CostParams::Default();
  const Nanos full = p.Cpu(1'000'000, 1.0);
  const Nanos half = p.Cpu(1'000'000, 0.5);
  EXPECT_NEAR(static_cast<double>(half), 2.0 * static_cast<double>(full),
              static_cast<double>(full) * 0.01);
}

TEST(CostModelTest, RemoteFaultDominatesLocalAccess) {
  // The structural fact behind the paper's Figs 1/3: a remote page fetch is
  // more than an order of magnitude costlier than a local DRAM row miss.
  const CostParams p = CostParams::Default();
  const Nanos fault = p.NetPageTransfer() + p.fault_handler_ns;
  EXPECT_GT(fault, 10 * p.dram_random_access_ns);
}

TEST(CostModelTest, SsdFaultDominatesRemoteMemoryFault) {
  // Fig 1a/14: paging to remote memory beats paging to NVMe SSD by ~10x.
  const CostParams p = CostParams::Default();
  const Nanos remote = 2 * p.net_latency_ns + p.fault_handler_ns +
                       p.NetPageTransfer();
  EXPECT_GT(p.ssd_random_page_ns, 5 * remote);
}

}  // namespace
}  // namespace teleport::sim
