#include "sim/parallel.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "ddc/memory_system.h"
#include "rack/traffic.h"
#include "sim/coop_task.h"
#include "sim/interleaver.h"

namespace teleport::sim {
namespace {

constexpr uint64_t kPage = 4096;

// --- TELEPORT_HOST_THREADS parsing ------------------------------------------

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
    had_ = v != nullptr;
  }
  ~EnvGuard() {
    if (had_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

TEST(HostThreadsFromEnvTest, DefaultsAndClamping) {
  EnvGuard guard("TELEPORT_HOST_THREADS");
  ::unsetenv("TELEPORT_HOST_THREADS");
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "8", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 8);
  ::setenv("TELEPORT_HOST_THREADS", "0", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "-3", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "banana", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "8x", 1);
  EXPECT_EQ(HostThreadsFromEnv(), 1);
  ::setenv("TELEPORT_HOST_THREADS", "100000", 1);
  EXPECT_EQ(HostThreadsFromEnv(), kMaxHostThreads);
}

// --- LegRunner determinism ---------------------------------------------------

/// Deterministic per-leg computation with a controllable amount of work.
uint64_t LegWork(uint64_t seed, uint64_t iters) {
  uint64_t x = seed;
  for (uint64_t i = 0; i < iters; ++i) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
  }
  return x;
}

std::vector<uint64_t> RunLegFleet(int threads, uint64_t skew_leg_iters) {
  const size_t kLegs = 12;
  std::vector<uint64_t> out(kLegs, 0);
  std::vector<std::function<void()>> jobs;
  for (size_t i = 0; i < kLegs; ++i) {
    const uint64_t iters = i == 0 ? skew_leg_iters : 1000;
    jobs.push_back([&out, i, iters] { out[i] = LegWork(i + 1, iters); });
  }
  LegRunner(threads).Run(jobs);
  return out;
}

TEST(LegRunnerTest, BitIdenticalAcrossThreadCountsAndReps) {
  const std::vector<uint64_t> golden = RunLegFleet(1, 1000);
  for (const int threads : {1, 2, 8}) {
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(RunLegFleet(threads, 1000), golden)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(LegRunnerTest, PathologicalSkewLegStaysDeterministic) {
  // Leg 0 runs 100x longer than the rest, so every other worker drains the
  // queue and exits while it is still running.
  const std::vector<uint64_t> golden = RunLegFleet(1, 100'000);
  for (const int threads : {2, 8}) {
    EXPECT_EQ(RunLegFleet(threads, 100'000), golden) << "threads=" << threads;
  }
}

TEST(LegRunnerTest, HandlesEmptyAndSingleJob) {
  LegRunner(8).Run({});
  int hits = 0;
  LegRunner(8).Run({[&hits] { ++hits; }});
  EXPECT_EQ(hits, 1);
}

// --- RunLegs JSONL ordering --------------------------------------------------

std::string EmitFleetJson(int threads) {
  const std::string path =
      ::testing::TempDir() + "/parallel_test_bench_" +
      std::to_string(threads) + ".jsonl";
  std::remove(path.c_str());
  EnvGuard guard("TELEPORT_BENCH_JSON");
  ::setenv("TELEPORT_BENCH_JSON", path.c_str(), 1);
  std::vector<std::function<void()>> legs;
  for (int i = 0; i < 8; ++i) {
    legs.push_back([i] {
      // Reverse-skewed work so under real parallelism later legs tend to
      // finish first; the flush must still order records by leg index.
      LegWork(static_cast<uint64_t>(i), static_cast<uint64_t>(8 - i) * 2000);
      bench::EmitBenchRecord({"pr10_test", "leg" + std::to_string(i), "x",
                              static_cast<Nanos>(i), 0, 0, ""});
    });
  }
  bench::RunLegs(legs, threads);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

TEST(RunLegsTest, JsonlByteIdenticalToSerial) {
  const std::string serial = EmitFleetJson(1);
  ASSERT_NE(serial.find("\"workload\":\"leg0\""), std::string::npos);
  ASSERT_LT(serial.find("\"leg0\""), serial.find("\"leg7\""));
  EXPECT_EQ(EmitFleetJson(2), serial);
  EXPECT_EQ(EmitFleetJson(8), serial);
}

// --- Diagonal rack: Tier B identity -----------------------------------------

struct RackOutcome {
  std::vector<uint64_t> digests;
  std::vector<Nanos> clocks;
  std::vector<std::string> metrics;
  std::vector<uint32_t> trace;
  Nanos makespan = 0;
  Interleaver::ParCounters par;
};

struct RackOpts {
  int host_threads = 1;
  bool record_trace = false;
  bool explicit_schedule = false;  ///< pre-PR10 unbatched serial reference
  bool exclusive = false;          ///< drop partitions (forces serial order)
  int ops = 300;
  int rounds = 3;
};

RackOutcome RunDiagonalRack(int n, const RackOpts& o) {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_nodes = n;
  cfg.memory_shards = n;
  cfg.compute_cache_bytes = 8 * kPage;
  cfg.memory_pool_bytes = 64ULL * kPage * static_cast<uint64_t>(n);
  const uint64_t slice_pages = 16;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(),
                       static_cast<uint64_t>(n) * slice_pages * kPage);
  EXPECT_EQ(ms.pages_per_shard(), slice_pages);
  EXPECT_TRUE(ParallelEligible(ms));

  std::vector<ddc::VAddr> slices;
  for (int t = 0; t < n; ++t) {
    const ddc::VAddr s =
        ms.space().Alloc(slice_pages * kPage, "slice" + std::to_string(t));
    EXPECT_EQ(ms.ShardOf(ms.space().PageOf(s)), t);
    EXPECT_EQ(ms.ShardOf(ms.space().PageOf(s + slice_pages * kPage - 1)), t);
    slices.push_back(s);
  }
  ms.SeedData();

  RackOutcome out;
  out.digests.assign(static_cast<size_t>(n), 0);
  std::vector<std::unique_ptr<ddc::ExecutionContext>> ctxs;
  std::vector<std::unique_ptr<CoopTask>> tasks;
  Interleaver il;
  SmallestClockSchedule reference;
  for (int t = 0; t < n; ++t) {
    ctxs.push_back(ms.CreateContext(ddc::Pool::kCompute, t, t));
    ddc::ExecutionContext* ctx = ctxs.back().get();
    const ddc::VAddr slice = slices[static_cast<size_t>(t)];
    uint64_t* digest = &out.digests[static_cast<size_t>(t)];
    const int rounds = o.rounds;
    const int ops = o.ops;
    const TaskPartition part =
        o.exclusive ? TaskPartition{} : TaskPartition{t, t};
    tasks.push_back(std::make_unique<CoopTask>(
        std::vector<ddc::ExecutionContext*>{ctx},
        [ctx, slice, slice_pages, rounds, ops, t, digest] {
          for (int r = 0; r < rounds; ++r) {
            const auto kind = static_cast<rack::WorkloadKind>((t + r) % 4);
            *digest += rack::RunKernel(*ctx, kind, slice, slice_pages * kPage,
                                       ops, 77 + 13 * t + r);
          }
        },
        /*quantum=*/4, part));
    il.Add(tasks.back().get());
  }
  il.set_host_threads(o.host_threads);
  il.set_lookahead(ms.fabric().MinDeliveryLatencyNs());
  if (o.explicit_schedule) il.set_schedule(&reference);
  if (o.record_trace) il.set_record_trace(true);
  out.makespan = il.Run();
  out.par = il.par_counters();
  out.trace = il.trace();
  for (int t = 0; t < n; ++t) {
    out.clocks.push_back(ctxs[static_cast<size_t>(t)]->now());
    out.metrics.push_back(ctxs[static_cast<size_t>(t)]->metrics().ToString());
  }
  return out;
}

void ExpectSameVirtual(const RackOutcome& a, const RackOutcome& b) {
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.clocks, b.clocks);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(ParallelEngineTest, BatchedSerialMatchesUnbatchedReferenceExactly) {
  // satellite 6: the StepBatch handoff elision must reproduce the explicit
  // SmallestClockSchedule run including the per-quantum schedule trace.
  for (const int n : {2, 4}) {
    RackOpts ref;
    ref.explicit_schedule = true;
    ref.record_trace = true;
    RackOpts batched;
    batched.record_trace = true;
    const RackOutcome a = RunDiagonalRack(n, ref);
    const RackOutcome b = RunDiagonalRack(n, batched);
    ExpectSameVirtual(a, b);
    EXPECT_EQ(a.trace, b.trace) << "n=" << n;
    EXPECT_GT(b.par.batched_quanta, 0u) << "n=" << n;
    // Every elided quantum is a saved park/unpark round trip.
    EXPECT_EQ(a.par.handoff_waits,
              b.par.handoff_waits + b.par.batched_quanta);
  }
}

TEST(ParallelEngineTest, ParallelBitIdenticalAtTwoFleetScales) {
  for (const int n : {2, 4}) {
    RackOpts serial;
    const RackOutcome golden = RunDiagonalRack(n, serial);
    for (const int threads : {2, 8}) {
      for (int rep = 0; rep < 5; ++rep) {
        RackOpts par;
        par.host_threads = threads;
        const RackOutcome p = RunDiagonalRack(n, par);
        ExpectSameVirtual(golden, p);
        EXPECT_GT(p.par.batches, 0u);
      }
    }
  }
}

TEST(ParallelEngineTest, ParallelEngineActuallyCoSteps) {
  RackOpts par;
  par.host_threads = 8;
  const RackOutcome p = RunDiagonalRack(4, par);
  EXPECT_GT(p.par.parallel_steps, 0u);
}

TEST(ParallelEngineTest, ExclusiveTasksSerializeButStayCorrect) {
  RackOpts serial;
  const RackOutcome golden = RunDiagonalRack(4, serial);
  RackOpts excl;
  excl.host_threads = 8;
  excl.exclusive = true;
  const RackOutcome e = RunDiagonalRack(4, excl);
  ExpectSameVirtual(golden, e);
  // Conflicting partitions: every batch must have collapsed to size 1.
  EXPECT_EQ(e.par.parallel_steps, 0u);
}

TEST(ParallelEngineTest, TraceRecordingFallsBackToSerial) {
  RackOpts ref;
  ref.record_trace = true;
  const RackOutcome golden = RunDiagonalRack(2, ref);
  RackOpts par;
  par.host_threads = 8;
  par.record_trace = true;
  const RackOutcome p = RunDiagonalRack(2, par);
  ExpectSameVirtual(golden, p);
  EXPECT_EQ(golden.trace, p.trace);
}

TEST(ParallelEngineTest, FlushParCountersLandsInParGroupAndResets) {
  RackOpts par;
  par.host_threads = 2;
  // Flush through a live interleaver: rebuild a tiny run inline.
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_nodes = 2;
  cfg.memory_shards = 2;
  cfg.compute_cache_bytes = 8 * kPage;
  cfg.memory_pool_bytes = 64 * kPage;
  ddc::MemorySystem ms(cfg, sim::CostParams::Default(), 2 * 16 * kPage);
  const ddc::VAddr a = ms.space().Alloc(16 * kPage, "a");
  const ddc::VAddr b = ms.space().Alloc(16 * kPage, "b");
  ms.SeedData();
  auto c0 = ms.CreateContext(ddc::Pool::kCompute, 0, 0);
  auto c1 = ms.CreateContext(ddc::Pool::kCompute, 1, 1);
  CoopTask t0({c0.get()},
              [&] {
                rack::RunKernel(*c0, rack::WorkloadKind::kDb, a, 16 * kPage,
                                200, 1);
              },
              4, TaskPartition{0, 0});
  CoopTask t1({c1.get()},
              [&] {
                rack::RunKernel(*c1, rack::WorkloadKind::kMr, b, 16 * kPage,
                                200, 2);
              },
              4, TaskPartition{1, 1});
  Interleaver il;
  il.Add(&t0);
  il.Add(&t1);
  il.set_host_threads(2);
  il.set_lookahead(Interleaver::kUnboundedLookahead);
  il.Run();
  EXPECT_GT(il.par_counters().batches, 0u);
  Metrics m;
  il.FlushParCounters(m);
  EXPECT_GT(m.par_batches, 0u);
  EXPECT_NE(m.ToString().find("par: batches="), std::string::npos);
  EXPECT_EQ(il.par_counters().batches, 0u);  // flush resets the engine side
}

}  // namespace
}  // namespace teleport::sim
