#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ddc/memory_system.h"
#include "sim/clock.h"
#include "sim/coop_task.h"
#include "sim/cost_model.h"
#include "sim/explorer.h"
#include "sim/interleaver.h"

namespace teleport::sim {
namespace {

using ddc::VAddr;

class TickTask : public Task {
 public:
  TickTask(int id, Nanos quantum, int steps, std::vector<int>* log)
      : id_(id), quantum_(quantum), steps_(steps), log_(log) {}

  Nanos clock() const override { return clock_.now(); }
  bool done() const override { return steps_ == 0; }
  void Step() override {
    if (log_ != nullptr) log_->push_back(id_);
    clock_.Advance(quantum_);
    --steps_;
  }

 private:
  int id_;
  Nanos quantum_;
  int steps_;
  std::vector<int>* log_;
  VirtualClock clock_;
};

// --- Schedule policies -------------------------------------------------------

TEST(ScheduleTest, ExplicitSmallestClockMatchesDefault) {
  auto run = [](Schedule* s) {
    std::vector<int> log;
    TickTask a(0, 7, 13, &log);
    TickTask b(1, 11, 9, &log);
    TickTask c(2, 3, 20, &log);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.Add(&c);
    il.set_schedule(s);
    il.Run();
    return log;
  };
  SmallestClockSchedule sc;
  EXPECT_EQ(run(nullptr), run(&sc));
}

TEST(ScheduleTest, RandomScheduleSameSeedReplaysBitIdentically) {
  auto run = [](uint64_t seed) {
    std::vector<int> log;
    TickTask a(0, 7, 20, &log);
    TickTask b(1, 11, 20, &log);
    RandomSchedule rs(seed);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.set_schedule(&rs);
    il.Run();
    return log;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(ScheduleTest, RandomScheduleSeedsProduceManyDistinctOrders) {
  std::set<std::string> seen;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    std::vector<int> log;
    TickTask a(0, 1, 12, &log);
    TickTask b(1, 1, 12, &log);
    RandomSchedule rs(seed);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.set_schedule(&rs);
    il.set_record_trace(true);
    il.Run();
    seen.insert(TraceToString(il.trace()));
  }
  // 2^24 possible orders; 64 seeds colliding would mean a broken RNG.
  EXPECT_GE(seen.size(), 60u);
}

TEST(ScheduleTest, RandomScheduleBoundedSkewKeepsClocksClose) {
  constexpr Nanos kSkew = 10;
  TickTask a(0, 5, 200, nullptr);
  TickTask b(1, 5, 200, nullptr);
  RandomSchedule rs(7, kSkew);
  Interleaver il;
  il.Add(&a);
  il.Add(&b);
  il.set_schedule(&rs);
  // Step manually through RunUntil slices to observe the invariant.
  for (Nanos t = 100; t <= 1000; t += 100) {
    il.RunUntil(t);
    if (!a.done() && !b.done()) {
      const Nanos gap = a.clock() > b.clock() ? a.clock() - b.clock()
                                              : b.clock() - a.clock();
      // One step can overshoot the bound by at most its own quantum.
      EXPECT_LE(gap, kSkew + 5);
    }
  }
}

TEST(ScheduleTest, TraceRoundTripsThroughText) {
  const std::vector<uint32_t> trace = {0, 1, 1, 0, 2, 1, 0};
  EXPECT_EQ(TraceToString(trace), "0,1,1,0,2,1,0");
  EXPECT_EQ(TraceFromString("0,1,1,0,2,1,0"), trace);
  EXPECT_TRUE(TraceFromString("").empty());
}

TEST(ScheduleTest, RecordedTraceReplaysTheExactInterleaving) {
  std::vector<int> log1;
  std::vector<uint32_t> trace;
  {
    TickTask a(0, 7, 15, &log1);
    TickTask b(1, 11, 15, &log1);
    RandomSchedule rs(99);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.set_schedule(&rs);
    il.set_record_trace(true);
    il.Run();
    trace = il.trace();
  }
  std::vector<int> log2;
  {
    TickTask a(0, 7, 15, &log2);
    TickTask b(1, 11, 15, &log2);
    ReplaySchedule replay(trace);
    Interleaver il;
    il.Add(&a);
    il.Add(&b);
    il.set_schedule(&replay);
    il.Run();
    EXPECT_EQ(replay.divergences(), 0u);
  }
  EXPECT_EQ(log1, log2);
}

TEST(ScheduleTest, ReplayCountsDivergenceOnEditedScenario) {
  // Trace recorded against a longer task 1 than the replay scenario has.
  std::vector<int> log;
  TickTask a(0, 1, 8, &log);
  TickTask b(1, 1, 2, &log);
  ReplaySchedule replay(TraceFromString("1,1,1,1,0,0,0,0,0,0"));
  Interleaver il;
  il.Add(&a);
  il.Add(&b);
  il.set_schedule(&replay);
  il.Run();
  EXPECT_TRUE(a.done());
  EXPECT_TRUE(b.done());
  EXPECT_GT(replay.divergences(), 0u);
}

// --- DFS explorer ------------------------------------------------------------

/// Two independent counters; the interesting property is only the schedule
/// count, which must be C(a_steps + b_steps, a_steps).
class TwoTaskScenario : public ExplorationScenario {
 public:
  TwoTaskScenario(int a_steps, int b_steps, std::set<std::string>* traces)
      : a_(0, 10, a_steps, nullptr), b_(1, 10, b_steps, nullptr),
        traces_(traces) {}

  std::vector<Task*> tasks() override { return {&a_, &b_}; }
  void OnComplete(const std::vector<uint32_t>& trace) override {
    if (traces_ != nullptr) traces_->insert(TraceToString(trace));
  }

 private:
  TickTask a_, b_;
  std::set<std::string>* traces_;
};

TEST(DfsExplorerTest, EnumeratesAllInterleavingsOfTwoTasks) {
  std::set<std::string> traces;
  DfsExplorer::Options opts;
  const DfsExplorer::Stats stats = DfsExplorer::Explore(
      [&traces] { return std::make_unique<TwoTaskScenario>(3, 3, &traces); },
      opts);
  // C(6,3) = 20 distinct interleavings of 3 steps of A with 3 of B.
  EXPECT_EQ(stats.schedules_run, 20u);
  EXPECT_EQ(traces.size(), 20u);
  EXPECT_FALSE(stats.truncated);
  // Lexicographically first and last schedules are present.
  EXPECT_TRUE(traces.count("0,0,0,1,1,1"));
  EXPECT_TRUE(traces.count("1,1,1,0,0,0"));
}

TEST(DfsExplorerTest, AsymmetricTaskLengths) {
  const DfsExplorer::Stats stats = DfsExplorer::Explore(
      [] { return std::make_unique<TwoTaskScenario>(2, 4, nullptr); },
      DfsExplorer::Options{});
  EXPECT_EQ(stats.schedules_run, 15u);  // C(6,2)
}

TEST(DfsExplorerTest, MaxSchedulesBoundTruncates) {
  DfsExplorer::Options opts;
  opts.max_schedules = 7;
  const DfsExplorer::Stats stats = DfsExplorer::Explore(
      [] { return std::make_unique<TwoTaskScenario>(3, 3, nullptr); }, opts);
  EXPECT_EQ(stats.schedules_run, 7u);
  EXPECT_TRUE(stats.truncated);
}

TEST(DfsExplorerTest, MaxStepsBoundTruncates) {
  DfsExplorer::Options opts;
  opts.max_steps = 4;  // schedules need 6 steps
  const DfsExplorer::Stats stats = DfsExplorer::Explore(
      [] { return std::make_unique<TwoTaskScenario>(3, 3, nullptr); }, opts);
  EXPECT_EQ(stats.schedules_run, 0u);
  EXPECT_TRUE(stats.truncated);
}

/// Scenario whose state is fully captured by the two progress counters, so
/// interleavings that transpose to the same point are equivalent and the
/// visited-state hash collapses the lattice: the explorer should execute
/// far fewer than C(2k, k) schedules while still covering every state.
class CountingScenario : public ExplorationScenario {
 public:
  CountingScenario(int a_steps, int b_steps, uint64_t* completes)
      : a_(0, 10, a_steps, &log_), b_(1, 10, b_steps, &log_),
        completes_(completes) {}

  std::vector<Task*> tasks() override { return {&a_, &b_}; }
  uint64_t StateHash() override {
    uint64_t a_done = 0, b_done = 0;
    for (int id : log_) (id == 0 ? a_done : b_done)++;
    return a_done * 64 + b_done;
  }
  void OnComplete(const std::vector<uint32_t>&) override {
    if (completes_ != nullptr) ++*completes_;
  }

 private:
  std::vector<int> log_;
  TickTask a_, b_;
  uint64_t* completes_ = nullptr;
};

TEST(DfsExplorerTest, VisitedStateHashingPrunesEquivalentPrefixes) {
  DfsExplorer::Options opts;
  opts.prune_visited = true;
  uint64_t completes = 0;
  const DfsExplorer::Stats stats = DfsExplorer::Explore(
      [&completes] {
        return std::make_unique<CountingScenario>(4, 4, &completes);
      },
      opts);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.prunes, 0u);
  // The 5x5 progress lattice has 25 states, minus the terminal corner which
  // is never hashed (completion is detected before the next decision).
  EXPECT_EQ(stats.states_visited, 24u);
  // Far fewer complete schedules than the unpruned C(8,4) = 70.
  EXPECT_EQ(completes, stats.schedules_run);
  EXPECT_LT(stats.schedules_run, 70u);
  EXPECT_GE(stats.schedules_run, 1u);
}

// --- CoopTask ----------------------------------------------------------------

sim::CostParams TestParams() {
  sim::CostParams p;
  p.page_size = 4096;
  return p;
}

ddc::DdcConfig TestConfig() {
  ddc::DdcConfig cfg;
  cfg.platform = ddc::Platform::kBaseDdc;
  cfg.compute_cache_bytes = 16 * 4096;
  cfg.memory_pool_bytes = 1 << 20;
  return cfg;
}

TEST(CoopTaskTest, RunsBodyToCompletionUnderInterleaver) {
  ddc::MemorySystem ms(TestConfig(), TestParams(), 64 * 4096);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  ms.space().Alloc(8 * 4096, "data");
  ms.SeedData();
  uint64_t sum = 0;
  CoopTask task({ctx.get()}, [&] {
    for (VAddr a = 0; a < 8 * 4096; a += 8) {
      ctx->Store<uint64_t>(a, a);
    }
    for (VAddr a = 0; a < 8 * 4096; a += 8) {
      sum += ctx->Load<uint64_t>(a);
    }
  });
  Interleaver il;
  il.Add(&task);
  const Nanos end = il.Run();
  EXPECT_TRUE(task.done());
  EXPECT_GT(end, 0);
  uint64_t expect = 0;
  for (VAddr a = 0; a < 8 * 4096; a += 8) expect += a;
  EXPECT_EQ(sum, expect);
}

TEST(CoopTaskTest, TwoBodiesInterleaveDeterministically) {
  auto run = [] {
    ddc::MemorySystem ms(TestConfig(), TestParams(), 64 * 4096);
    auto ca = ms.CreateContext(ddc::Pool::kCompute);
    auto cb = ms.CreateContext(ddc::Pool::kCompute);
    ms.space().Alloc(16 * 4096, "data");
    ms.SeedData();
    CoopTask ta({ca.get()}, [&] {
      for (VAddr a = 0; a < 4 * 4096; a += 64) ca->Store<uint64_t>(a, 1);
    });
    CoopTask tb({cb.get()}, [&] {
      for (VAddr a = 8 * 4096; a < 12 * 4096; a += 64) {
        cb->Store<uint64_t>(a, 2);
      }
    });
    Interleaver il;
    il.Add(&ta);
    il.Add(&tb);
    il.set_record_trace(true);
    il.Run();
    return TraceToString(il.trace());
  };
  const std::string t1 = run();
  EXPECT_EQ(t1, run());
  EXPECT_GT(t1.size(), 0u);
}

TEST(CoopTaskTest, AbandonedTaskUnwindsCleanly) {
  ddc::MemorySystem ms(TestConfig(), TestParams(), 64 * 4096);
  auto ctx = ms.CreateContext(ddc::Pool::kCompute);
  ms.space().Alloc(8 * 4096, "data");
  ms.SeedData();
  bool finished = false;
  {
    CoopTask task({ctx.get()}, [&] {
      for (VAddr a = 0; a < 8 * 4096; a += 8) ctx->Store<uint64_t>(a, a);
      finished = true;
    });
    Interleaver il;
    il.Add(&task);
    il.RunUntil(1);  // a slice, then abandon the task mid-body
  }  // destructor unwinds the parked body
  EXPECT_FALSE(finished);
}

}  // namespace
}  // namespace teleport::sim
