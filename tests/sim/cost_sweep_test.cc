// Property tests on the cost model: ordering invariants must survive
// random perturbations of the parameters, so benches that swap hardware
// assumptions cannot silently invert the model's structure.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/cost_model.h"

namespace teleport::sim {
namespace {

CostParams Perturb(Rng& rng) {
  CostParams p;
  p.net_latency_ns = rng.UniformRange(300, 5'000);
  p.net_bytes_per_ns = 1.0 + rng.NextDouble() * 24.0;  // 8..200 Gb/s
  p.fault_handler_ns = rng.UniformRange(200, 4'000);
  p.dram_seq_access_ns = rng.UniformRange(1, 6);
  p.dram_random_access_ns = rng.UniformRange(60, 200);
  p.cpu_ns_per_op = 0.2 + rng.NextDouble();
  p.ssd_random_page_ns = rng.UniformRange(40'000, 200'000);
  p.ssd_seq_page_ns = rng.UniformRange(10'000, 39'000);
  return p;
}

class CostSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CostSweepTest, TransferMonotoneInBytes) {
  Rng rng(GetParam());
  const CostParams p = Perturb(rng);
  Nanos prev = 0;
  for (uint64_t bytes = 0; bytes < (1 << 20); bytes += 64 * 1024) {
    const Nanos t = p.NetTransfer(bytes);
    EXPECT_GE(t, prev);
    EXPECT_GE(t, p.net_latency_ns);
    prev = t;
  }
}

TEST_P(CostSweepTest, CpuMonotoneInOpsAndInverseInClock) {
  Rng rng(GetParam());
  const CostParams p = Perturb(rng);
  EXPECT_LE(p.Cpu(100), p.Cpu(1'000));
  EXPECT_GE(p.Cpu(1'000, 0.5), p.Cpu(1'000, 1.0));
  EXPECT_LE(p.Cpu(1'000, 2.0), p.Cpu(1'000, 1.0));
}

TEST_P(CostSweepTest, MemoryHierarchyOrderingPreserved) {
  Rng rng(GetParam());
  const CostParams p = Perturb(rng);
  // DRAM hit < DRAM row miss < remote page fetch < SSD page read: the
  // structural hierarchy every experiment depends on.
  const Nanos remote = 2 * p.net_latency_ns + p.fault_handler_ns +
                       p.NetPageTransfer();
  EXPECT_LT(p.dram_seq_access_ns, p.dram_random_access_ns);
  EXPECT_LT(p.dram_random_access_ns, remote);
  EXPECT_LT(remote, p.ssd_random_page_ns + remote);  // SSD adds on top
  EXPECT_LT(p.ssd_seq_page_ns, p.ssd_random_page_ns);
}

TEST_P(CostSweepTest, PageTransferConsistentWithGenericTransfer) {
  Rng rng(GetParam());
  const CostParams p = Perturb(rng);
  EXPECT_EQ(p.NetPageTransfer(), p.NetTransfer(p.page_size));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostSweepTest,
                         ::testing::Values(1, 7, 42, 1337, 9001, 271828,
                                           314159, 2022));

TEST(CostDefaultsTest, DefaultsAreSane) {
  const CostParams p = CostParams::Default();
  // A remote page fetch must sit an order of magnitude above DRAM and an
  // order of magnitude below the SSD swap path — the regime of Figs 1/3.
  const Nanos remote = 2 * p.net_latency_ns + p.fault_handler_ns +
                       p.NetPageTransfer();
  EXPECT_GT(remote, 10 * p.dram_random_access_ns);
  EXPECT_GT(p.ssd_random_page_ns, 10 * remote / 2);
  // Coherence messages land near the paper's 1.6 us one-way figure.
  EXPECT_NEAR(static_cast<double>(p.net_latency_ns +
                                  p.coherence_overhead_ns),
              1600.0, 400.0);
}

}  // namespace
}  // namespace teleport::sim
